//===- Generator.cpp - Synthetic benchmark generator --------------------------===//

#include "synth/Generator.h"

#include "support/Prng.h"

namespace optabs {
namespace synth {

using namespace ir;

namespace {

enum class UnitKind : uint8_t {
  TsChain,
  TsKill,
  EscLocal,
  EscEscape,
  EscHandoff,
  EscConfuser,
  EscConfuserEscaping,
  Noise,
};

/// Units that leave no abstract-state residue (variables nulled, no field
/// or global effects) may sit under loops and branches without multiplying
/// downstream states.
bool isResidueFree(UnitKind K) {
  return K == UnitKind::TsChain || K == UnitKind::TsKill ||
         K == UnitKind::EscConfuser;
}

class GeneratorImpl {
public:
  GeneratorImpl(Benchmark &B) : B(B), P(B.P), Rng(B.Config.Seed) {}

  void run() {
    const BenchConfig &C = B.Config;
    G = P.makeGlobal("g");
    Work = P.makeMethod("work");
    TsTag = P.makeSymbol("ts");
    EscTag = P.makeSymbol("esc");

    // Library procedures: noise only, shared by all application procs.
    std::vector<ProcId> Libs;
    for (unsigned I = 0; I < C.LibProcs; ++I) {
      ProcId Proc = P.makeProc("lib" + std::to_string(I));
      CurProc = Proc;
      std::vector<StmtId> Body;
      for (unsigned U = 0; U < C.UnitsPerLibProc; ++U)
        Body.push_back(unitNoise());
      P.setProcBody(Proc, P.stmtSeq(std::move(Body)));
      Libs.push_back(Proc);
    }

    // Application procedures, chained main -> app0 -> app1 -> ... so that
    // queries sit at increasing call depth.
    std::vector<ProcId> Apps;
    for (unsigned I = 0; I < C.AppProcs; ++I)
      Apps.push_back(P.makeProc("app" + std::to_string(I)));
    for (unsigned I = 0; I < C.AppProcs; ++I) {
      CurProc = Apps[I];
      std::vector<StmtId> Body;
      for (unsigned U = 0; U < C.UnitsPerAppProc; ++U) {
        UnitKind Kind = pickUnitKind(I * C.UnitsPerAppProc + U);
        StmtId Unit = emitUnit(Kind);
        Body.push_back(wrapUnit(Kind, Unit));
        if (!Libs.empty() && U < C.LibCallsPerProc)
          Body.push_back(P.stmtAtom(
              P.cmdInvoke(Libs[Rng.nextBelow(Libs.size())])));
      }
      if (I + 1 < C.AppProcs)
        Body.push_back(P.stmtAtom(P.cmdInvoke(Apps[I + 1])));
      P.setProcBody(Apps[I], P.stmtSeq(std::move(Body)));
    }

    ProcId Main = P.makeProc("main");
    CurProc = Main;
    P.setProcBody(Main, P.stmtSeq({P.stmtAtom(P.cmdInvoke(Apps[0]))}));
    P.setMain(Main);
  }

private:
  //===--- naming -----------------------------------------------------------===

  std::string uid() { return "u" + std::to_string(UnitCounter); }
  VarId var(const std::string &Suffix) {
    return P.makeVar(uid() + "_" + Suffix);
  }
  AllocId site(const std::string &Suffix) {
    return P.makeAlloc(uid() + "_" + Suffix);
  }
  FieldId field(const std::string &Suffix) {
    return P.makeField(uid() + "_" + Suffix);
  }

  //===--- statement helpers ------------------------------------------------===

  void emit(std::vector<StmtId> &Out, CommandId Cmd) {
    Out.push_back(P.stmtAtom(Cmd));
  }

  void tsCheck(std::vector<StmtId> &Out, VarId V) {
    emit(Out, P.cmdCheck(V, TsTag, CurProc));
    B.TsChecks.push_back(CheckId(P.numChecks() - 1));
  }

  void escCheck(std::vector<StmtId> &Out, VarId V) {
    emit(Out, P.cmdCheck(V, EscTag, CurProc));
    B.EscChecks.push_back(CheckId(P.numChecks() - 1));
  }

  void nullOut(std::vector<StmtId> &Out, const std::vector<VarId> &Vars) {
    for (VarId V : Vars)
      emit(Out, P.cmdNull(V));
  }

  //===--- unit selection ---------------------------------------------------===

  UnitKind pickUnitKind(unsigned Index) {
    // The first units cycle through the kinds so every benchmark exercises
    // each idiom; the rest are drawn with fixed weights.
    static const UnitKind All[] = {
        UnitKind::TsChain,     UnitKind::EscLocal,
        UnitKind::EscConfuser, UnitKind::TsKill,
        UnitKind::EscEscape,   UnitKind::EscHandoff,
        UnitKind::EscConfuserEscaping};
    constexpr unsigned NumAll = sizeof(All) / sizeof(All[0]);
    if (Index < NumAll)
      return All[Index];
    // Weights chosen so the proven/impossible/unresolved mix tracks
    // Figure 12: most type-state queries are unprovable under the stress
    // property, and thread-escape splits roughly 40/45/15.
    unsigned Roll = static_cast<unsigned>(Rng.nextBelow(100));
    if (Roll < 15)
      return UnitKind::TsChain;
    if (Roll < 40)
      return UnitKind::TsKill;
    if (Roll < 50)
      return UnitKind::EscLocal;
    if (Roll < 72)
      return UnitKind::EscEscape;
    if (Roll < 80)
      return UnitKind::EscHandoff;
    if (Roll < 88)
      return UnitKind::EscConfuser;
    if (Roll < 98)
      return UnitKind::EscConfuserEscaping;
    return UnitKind::Noise;
  }

  StmtId emitUnit(UnitKind Kind) {
    ++UnitCounter;
    switch (Kind) {
    case UnitKind::TsChain:
      return unitTsChain();
    case UnitKind::TsKill:
      return unitTsKill();
    case UnitKind::EscLocal:
      return unitEscLocal();
    case UnitKind::EscEscape:
      return unitEscEscape();
    case UnitKind::EscHandoff:
      return unitEscHandoff();
    case UnitKind::EscConfuser:
      return unitEscConfuser(/*Escaping=*/false);
    case UnitKind::EscConfuserEscaping:
      return unitEscConfuser(/*Escaping=*/true);
    case UnitKind::Noise:
      return unitNoise();
    }
    return P.stmtSkip();
  }

  StmtId wrapUnit(UnitKind Kind, StmtId Unit) {
    if (!isResidueFree(Kind))
      return Unit;
    unsigned Roll = static_cast<unsigned>(Rng.nextBelow(100));
    if (Roll < B.Config.LoopPercent)
      return P.stmtStar(Unit);
    if (Roll < B.Config.LoopPercent + B.Config.BranchPercent)
      return P.stmtChoice({Unit, P.stmtSkip()});
    return Unit;
  }

  //===--- idiom units ------------------------------------------------------===

  /// x0 = new h; x1 = x0; ...; calls through the chain ends. Proving the
  /// query at x_i requires tracking {x0..x_i}: cheapest size i+1. Larger
  /// benchmarks skew towards deep chains, which is what drives the large
  /// average abstraction sizes the paper reports for avrora (Table 3).
  StmtId unitTsChain() {
    unsigned Len;
    if (B.Config.TsChainMax >= 6 && Rng.chance(2, 5))
      Len = B.Config.TsChainMax / 2 +
            static_cast<unsigned>(
                Rng.nextBelow(B.Config.TsChainMax / 2 + 1));
    else
      Len = 1 + static_cast<unsigned>(Rng.nextBelow(B.Config.TsChainMax));
    AllocId H = site("h");
    std::vector<VarId> Xs;
    for (unsigned I = 0; I <= Len; ++I)
      Xs.push_back(var("x" + std::to_string(I)));

    std::vector<StmtId> Out;
    emit(Out, P.cmdNew(Xs[0], H));
    for (unsigned I = 1; I <= Len; ++I)
      emit(Out, P.cmdCopy(Xs[I], Xs[I - 1]));
    if (Len >= 2) {
      VarId Mid = Xs[Len / 2];
      emit(Out, P.cmdMethodCall(Mid, Work));
      tsCheck(Out, Mid);
    }
    // Several calls through the chain's end: all these queries share one
    // cheapest abstraction (the whole chain), populating Table 4's groups.
    unsigned Calls = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned I = 0; I < Calls; ++I) {
      emit(Out, P.cmdMethodCall(Xs[Len], Work));
      tsCheck(Out, Xs[Len]);
    }
    nullOut(Out, Xs);
    return P.stmtSeq(std::move(Out));
  }

  /// A call through a variable merged from two different objects: its
  /// must-alias set is empty under every abstraction, so the call errs and
  /// the query after it is impossible.
  StmtId unitTsKill() {
    AllocId H1 = site("h1"), H2 = site("h2");
    VarId X = var("x"), X2 = var("x2"), Y = var("y");
    std::vector<StmtId> Out;
    emit(Out, P.cmdNew(X, H1));
    emit(Out, P.cmdMethodCall(X, Work));
    tsCheck(Out, X); // provable with {x}
    emit(Out, P.cmdNew(X2, H2));
    Out.push_back(P.stmtChoice({P.stmtAtom(P.cmdCopy(Y, X)),
                                P.stmtAtom(P.cmdCopy(Y, X2))}));
    emit(Out, P.cmdMethodCall(Y, Work));
    tsCheck(Out, Y); // impossible for both sites
    // Downstream of the precision loss, every further call-site query on
    // these objects is unprovable too (the error state is absorbing).
    VarId Y2 = var("y2");
    for (unsigned I = 0; I < 2; ++I) {
      emit(Out, P.cmdCopy(Y2, Y));
      emit(Out, P.cmdMethodCall(Y2, Work));
      tsCheck(Out, Y2); // impossible for both sites
    }
    nullOut(Out, {X, X2, Y, Y2});
    return P.stmtSeq(std::move(Out));
  }

  /// An object that never escapes: the access on v needs 1 L-site, the
  /// access on the loaded u needs 2.
  StmtId unitEscLocal() {
    AllocId H1 = site("h1"), H2 = site("h2");
    FieldId F = field("f");
    VarId V = var("v"), W = var("w"), U = var("u");
    std::vector<StmtId> Out;
    emit(Out, P.cmdNew(V, H1));
    emit(Out, P.cmdNew(W, H2));
    // Repeated accesses to the same local object: all share the cheapest
    // abstraction {h1} (the paper's Table 4 reuse groups).
    unsigned Accesses = 2 + static_cast<unsigned>(Rng.nextBelow(5));
    for (unsigned I = 0; I < Accesses; ++I)
      escCheck(Out, V); // cost 1
    emit(Out, P.cmdStoreField(V, F, W));
    emit(Out, P.cmdLoadField(U, V, F));
    for (unsigned I = 0; I < 1 + Rng.nextBelow(2); ++I)
      escCheck(Out, U); // cost 2
    nullOut(Out, {V, W, U});
    return P.stmtSeq(std::move(Out));
  }

  /// An object published through the global: local before the store,
  /// escaping ever after - those queries are impossible.
  StmtId unitEscEscape() {
    AllocId H = site("h");
    VarId V = var("v"), T = var("t");
    std::vector<StmtId> Out;
    emit(Out, P.cmdNew(V, H));
    escCheck(Out, V); // cost 1
    emit(Out, P.cmdStoreGlobal(G, V));
    emit(Out, P.cmdLoadGlobal(T, G));
    escCheck(Out, T); // impossible
    escCheck(Out, V); // impossible
    // Every later access to the published object is unprovable as well.
    VarId T2 = var("t2");
    for (unsigned I = 0; I < 2; ++I) {
      emit(Out, P.cmdCopy(T2, T));
      escCheck(Out, T2); // impossible
    }
    nullOut(Out, {V, T, T2});
    return P.stmtSeq(std::move(Out));
  }

  /// A chain of objects linked through fields; the i-th load is provable
  /// with exactly i+1 L-sites.
  StmtId unitEscHandoff() {
    unsigned Len = 1 + static_cast<unsigned>(
                           Rng.nextBelow(B.Config.EscChainMax));
    std::vector<VarId> Vs, Us;
    std::vector<AllocId> Hs;
    std::vector<FieldId> Fs;
    for (unsigned I = 0; I <= Len; ++I) {
      Vs.push_back(var("v" + std::to_string(I)));
      Hs.push_back(site("h" + std::to_string(I)));
    }
    for (unsigned I = 1; I <= Len; ++I) {
      Us.push_back(var("uu" + std::to_string(I)));
      Fs.push_back(field("f" + std::to_string(I)));
    }
    std::vector<StmtId> Out;
    for (unsigned I = 0; I <= Len; ++I)
      emit(Out, P.cmdNew(Vs[I], Hs[I]));
    for (unsigned I = 1; I <= Len; ++I)
      emit(Out, P.cmdStoreField(Vs[I - 1], Fs[I - 1], Vs[I]));
    VarId Cur = Vs[0];
    for (unsigned I = 1; I <= Len; ++I) {
      emit(Out, P.cmdLoadField(Us[I - 1], Cur, Fs[I - 1]));
      escCheck(Out, Us[I - 1]); // cost I + 1
      Cur = Us[I - 1];
    }
    nullOut(Out, Vs);
    nullOut(Out, Us);
    return P.stmtSeq(std::move(Out));
  }

  /// An n-way allocation choice: every branch must be local, so the query
  /// needs all n sites mapped to L and TRACER spends roughly one iteration
  /// per site. The escaping variant stores the object into an escaped
  /// container afterwards, making the second query impossible (slowly so
  /// for small beam widths).
  StmtId unitEscConfuser(bool Escaping) {
    unsigned Ways = confuserWays();
    VarId V = var("v");
    std::vector<StmtId> Branches;
    for (unsigned I = 0; I < Ways; ++I)
      Branches.push_back(
          P.stmtAtom(P.cmdNew(V, site("h" + std::to_string(I)))));
    std::vector<StmtId> Out;
    Out.push_back(P.stmtChoice(std::move(Branches)));
    escCheck(Out, V); // cost = Ways
    escCheck(Out, V); // second access: shares the cheapest abstraction
    std::vector<VarId> ToNull{V};
    if (Escaping) {
      VarId W = var("w");
      FieldId K = field("k");
      emit(Out, P.cmdLoadGlobal(W, G));
      emit(Out, P.cmdStoreField(W, K, V)); // escaped base: may esc()
      escCheck(Out, V);                    // impossible
      ToNull.push_back(W);
    }
    nullOut(Out, ToNull);
    return P.stmtSeq(std::move(Out));
  }

  /// Heavy-tailed width: mostly 1-2, occasionally up to the maximum, with
  /// one guaranteed maximal confuser per benchmark (pins Figure 14's max).
  unsigned confuserWays() {
    if (!EmittedMaxConfuser) {
      EmittedMaxConfuser = true;
      return std::max(1u, B.Config.ConfuserMaxWays);
    }
    // Occasionally a wide confuser (Figure 14's tail; beyond the iteration
    // budget these become Figure 12's unresolved queries), otherwise a
    // geometric tail concentrated on 1-2 sites.
    if (B.Config.ConfuserMaxWays >= 8 && Rng.chance(1, 5))
      return B.Config.ConfuserMaxWays / 2 +
             static_cast<unsigned>(Rng.nextBelow(B.Config.ConfuserMaxWays / 2));
    unsigned Ways = 1;
    while (Ways < B.Config.ConfuserMaxWays && Rng.chance(1, 2))
      ++Ways;
    return Ways;
  }

  /// Analyzed-but-unqueried code (the JDK analogue).
  StmtId unitNoise() {
    ++UnitCounter;
    AllocId H1 = site("h1"), H2 = site("h2");
    FieldId F = field("f");
    VarId A = var("a"), C = var("c"), D = var("d");
    std::vector<StmtId> Out;
    emit(Out, P.cmdNew(A, H1));
    emit(Out, P.cmdCopy(C, A));
    emit(Out, P.cmdMethodCall(C, Work));
    emit(Out, P.cmdStoreField(A, F, C));
    emit(Out, P.cmdLoadField(D, A, F));
    emit(Out, P.cmdNew(D, H2));
    Out.push_back(P.stmtChoice(
        {P.stmtAtom(P.cmdCopy(D, A)), P.stmtAtom(P.cmdNull(D))}));
    nullOut(Out, {A, C, D});
    return P.stmtSeq(std::move(Out));
  }

  Benchmark &B;
  Program &P;
  Prng Rng;
  GlobalId G;
  MethodId Work;
  SymbolId TsTag, EscTag;
  ProcId CurProc;
  unsigned UnitCounter = 0;
  bool EmittedMaxConfuser = false;
};

} // namespace

Benchmark generate(const BenchConfig &Config) {
  Benchmark B;
  B.Config = Config;
  GeneratorImpl(B).run();
  return B;
}

const std::vector<BenchConfig> &paperSuite() {
  static const std::vector<BenchConfig> Suite = [] {
    std::vector<BenchConfig> S;
    auto Add = [&S](const char *Name, const char *Desc, uint64_t Seed,
                    unsigned App, unsigned Lib, unsigned UnitsApp,
                    unsigned UnitsLib, unsigned TsChain, unsigned EscChain,
                    unsigned Confuser) {
      BenchConfig C;
      C.Name = Name;
      C.Description = Desc;
      C.Seed = Seed;
      C.AppProcs = App;
      C.LibProcs = Lib;
      C.UnitsPerAppProc = UnitsApp;
      C.UnitsPerLibProc = UnitsLib;
      C.TsChainMax = TsChain;
      C.EscChainMax = EscChain;
      C.ConfuserMaxWays = Confuser;
      S.push_back(std::move(C));
    };
    // Mirrors Table 1's relative sizes at laptop scale: tsp/elevator are
    // small, hedc/weblech medium, antlr/avrora/lusearch large, with avrora
    // the largest and the one with the deepest must-alias chains.
    Add("tsp", "Traveling Salesman implementation", 101, 5, 5, 3, 3, 2, 2,
        3);
    Add("elevator", "discrete event simulator", 102, 4, 5, 3, 3, 2, 1, 3);
    Add("hedc", "web crawler from ETH", 103, 8, 7, 4, 3, 3, 2, 5);
    Add("weblech", "website download/mirror tool", 104, 10, 7, 4, 3, 3, 3,
        8);
    Add("antlr", "a parser/translator generator", 105, 13, 8, 5, 4, 8, 3,
        30);
    Add("avrora", "microcontroller simulator/analyzer", 106, 18, 10, 5, 4,
        14, 3, 48);
    Add("lusearch", "text indexing and search tool", 107, 13, 8, 5, 4, 9, 3,
        36);
    return S;
  }();
  return Suite;
}

std::vector<BenchConfig> smallSuite() {
  const auto &All = paperSuite();
  return std::vector<BenchConfig>(All.begin(), All.begin() + 4);
}

} // namespace synth
} // namespace optabs
