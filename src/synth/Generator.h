//===- Generator.h - Synthetic benchmark generator -------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of synthetic benchmark programs standing in for
/// the paper's seven Java benchmarks (Table 1). Each benchmark is a
/// procedure forest (main -> application procedures -> shared "library"
/// procedures, the analogue of analyzed-but-unqueried JDK code) whose
/// bodies are composed of idiom units that drive the phenomena the paper's
/// evaluation measures:
///
///   ts-chain      must-alias copy chains ending in method calls: queries
///                 provable with exactly the chain's variables (drives
///                 Table 3's type-state abstraction sizes and Table 2's
///                 iteration counts);
///   ts-kill       a call through a variable merged from two objects: its
///                 must-alias set is empty under every abstraction, so the
///                 queries after it are impossible to prove;
///   esc-local     an object that never escapes: provable with 1-2 L-sites;
///   esc-escape    an object published through a global: impossible;
///   esc-handoff   a chain of objects linked through fields: the i-th load
///                 is provable with exactly i+1 L-sites;
///   esc-confuser  an n-way allocation choice: provable only with all n
///                 sites mapped to L, one CEGAR iteration per site (drives
///                 Figure 14's tail and, when n exceeds the iteration
///                 budget, Figure 12's unresolved queries); the escaping
///                 variant is impossible but takes ~n iterations to refute;
///   noise         allocations, copies, loads, stores and calls without
///                 queries (library code).
///
/// Queries are generated pervasively, as in §6: a type-state check after
/// every method call (the paper's fictitious stress property) and a
/// thread-escape check at every field access. Units reset their variables
/// when done, so abstract-state multiplicity stays bounded and the
/// analyses scale the way the paper's per-method frames make them scale.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SYNTH_GENERATOR_H
#define OPTABS_SYNTH_GENERATOR_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace optabs {
namespace synth {

/// Shape parameters of one synthetic benchmark.
struct BenchConfig {
  std::string Name;
  std::string Description;
  uint64_t Seed = 1;

  unsigned AppProcs = 6;        ///< queried application procedures
  unsigned LibProcs = 6;        ///< analyzed, query-free library procedures
  unsigned UnitsPerAppProc = 3; ///< idiom units per application procedure
  unsigned UnitsPerLibProc = 3; ///< noise units per library procedure
  unsigned LibCallsPerProc = 2; ///< library invocations per app procedure

  unsigned TsChainMax = 3;    ///< longest must-alias chain
  unsigned EscChainMax = 2;   ///< longest field hand-off chain
  unsigned ConfuserMaxWays = 4; ///< widest allocation confuser
  unsigned LoopPercent = 30;   ///< chance a residue-free unit sits in a loop
  unsigned BranchPercent = 20; ///< chance it sits in a branch instead
};

/// A generated benchmark: the program plus its query lists.
struct Benchmark {
  ir::Program P;
  BenchConfig Config;
  /// Type-state queries: one check per method call (receiver as the
  /// queried variable). A TRACER query is a (check, may-pointed site) pair;
  /// see planTypestateQueries in reporting/Harness.h.
  std::vector<ir::CheckId> TsChecks;
  /// Thread-escape queries: one check per field access (base variable).
  std::vector<ir::CheckId> EscChecks;
};

/// Generates the benchmark for \p Config. Deterministic in Config.Seed.
Benchmark generate(const BenchConfig &Config);

/// The seven-benchmark suite mirroring Table 1's relative sizes at
/// laptop scale (tsp, elevator, hedc, weblech, antlr, avrora, lusearch).
const std::vector<BenchConfig> &paperSuite();

/// The four smallest benchmarks of the suite (used by Figure 13, which the
/// paper restricts to them because k=1 and k=10 exhaust memory elsewhere).
std::vector<BenchConfig> smallSuite();

} // namespace synth
} // namespace optabs

#endif // OPTABS_SYNTH_GENERATOR_H
