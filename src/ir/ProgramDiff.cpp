//===- ProgramDiff.cpp - Content hashing & versioned program diffs --------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramDiff.h"

#include "ir/Liveness.h"

#include <cassert>

namespace optabs {
namespace ir {

namespace {

//===----------------------------------------------------------------------===//
// Hashing primitives (FNV-1a over 64-bit lanes).
//===----------------------------------------------------------------------===//

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

inline uint64_t mix(uint64_t H, uint64_t V) {
  // Fold the value byte-agnostically but cheaply: one multiply per lane is
  // plenty for a change-detection hash (we never unhash).
  return (H ^ (V + 0x9e3779b97f4a7c15ULL)) * FnvPrime;
}

inline uint64_t mixStr(uint64_t H, const std::string &S) {
  H = mix(H, S.size());
  for (char C : S)
    H = mix(H, static_cast<unsigned char>(C));
  return H;
}

/// Folds one command: kind, raw id, every operand id, and the names the
/// valid operand ids intern to (so a renumbered entity table can never
/// collide with an unchanged one).
uint64_t hashCommand(const Program &P, CommandId Id) {
  const Command &C = P.command(Id);
  uint64_t H = FnvOffset;
  H = mix(H, static_cast<uint64_t>(C.Kind));
  H = mix(H, Id.index());
  H = mix(H, C.Dst.Value);
  H = mix(H, C.Src.Value);
  H = mix(H, C.Global.Value);
  H = mix(H, C.Field.Value);
  H = mix(H, C.Alloc.Value);
  H = mix(H, C.Method.Value);
  H = mix(H, C.Callee.Value);
  H = mix(H, C.Check.Value);
  if (C.Dst.isValid())
    H = mixStr(H, P.varName(C.Dst));
  if (C.Src.isValid())
    H = mixStr(H, P.varName(C.Src));
  if (C.Global.isValid())
    H = mixStr(H, P.globalName(C.Global));
  if (C.Field.isValid())
    H = mixStr(H, P.fieldName(C.Field));
  if (C.Alloc.isValid())
    H = mixStr(H, P.allocName(C.Alloc));
  if (C.Method.isValid())
    H = mixStr(H, P.methodName(C.Method));
  if (C.Callee.isValid())
    H = mixStr(H, P.proc(C.Callee).Name);
  if (C.Check.isValid()) {
    const CheckSite &CS = P.checkSite(C.Check);
    H = mix(H, CS.Var.Value);
    H = mix(H, CS.Payload.Value);
    if (CS.Payload.isValid())
      H = mixStr(H, P.symbolName(CS.Payload));
  }
  return H;
}

/// Memoized per-statement content hash. The statement pool is a DAG
/// (children may be shared), so each node hashes once.
class StmtHasher {
public:
  explicit StmtHasher(const Program &P)
      : P(P), Memo(P.numStmts(), 0), Done(P.numStmts(), false) {}

  uint64_t hash(StmtId S) {
    assert(S.index() < Memo.size());
    if (Done[S.index()])
      return Memo[S.index()];
    const Stmt &St = P.stmt(S);
    uint64_t H = FnvOffset;
    H = mix(H, static_cast<uint64_t>(St.Kind));
    H = mix(H, S.index());
    if (St.Kind == StmtKind::Atom) {
      H = mix(H, hashCommand(P, St.Cmd));
    } else {
      H = mix(H, St.Children.size());
      for (StmtId Child : St.Children)
        H = mix(H, hash(Child));
    }
    Memo[S.index()] = H;
    Done[S.index()] = true;
    return H;
  }

private:
  const Program &P;
  std::vector<uint64_t> Memo;
  std::vector<bool> Done;
};

/// Memoized per-statement liveness hash: folds the live-out set of every
/// command in the subtree (in DAG order).
class LivenessHasher {
public:
  LivenessHasher(const Program &P, const CommandLiveness &L)
      : P(P), L(L), Memo(P.numStmts(), 0), Done(P.numStmts(), false) {}

  uint64_t hash(StmtId S) {
    assert(S.index() < Memo.size());
    if (Done[S.index()])
      return Memo[S.index()];
    const Stmt &St = P.stmt(S);
    uint64_t H = FnvOffset;
    if (St.Kind == StmtKind::Atom) {
      const BitSet &Out = L.liveOut(St.Cmd);
      H = mix(H, Out.size());
      Out.forEach([&](size_t I) { H = mix(H, I); });
    } else {
      H = mix(H, St.Children.size());
      for (StmtId Child : St.Children)
        H = mix(H, hash(Child));
    }
    Memo[S.index()] = H;
    Done[S.index()] = true;
    return H;
  }

private:
  const Program &P;
  const CommandLiveness &L;
  std::vector<uint64_t> Memo;
  std::vector<bool> Done;
};

//===----------------------------------------------------------------------===//
// Footprints.
//===----------------------------------------------------------------------===//

/// Collects, per statement (memoized over the DAG), the set of procedures
/// that may run while the statement executes: union of the call-graph
/// closures of every invoked callee in the subtree.
class StmtExec {
public:
  StmtExec(const Program &P, const std::vector<BitSet> &ProcExec)
      : P(P), ProcExec(ProcExec), Memo(P.numStmts()),
        Done(P.numStmts(), false) {}

  const BitSet &execOf(StmtId S) {
    assert(S.index() < Memo.size());
    if (Done[S.index()])
      return Memo[S.index()];
    BitSet Out(P.numProcs());
    const Stmt &St = P.stmt(S);
    if (St.Kind == StmtKind::Atom) {
      const Command &C = P.command(St.Cmd);
      if (C.Kind == CmdKind::Invoke && C.Callee.isValid())
        Out.unionWith(ProcExec[C.Callee.index()]);
    } else {
      for (StmtId Child : St.Children)
        Out.unionWith(execOf(Child));
    }
    Memo[S.index()] = std::move(Out);
    Done[S.index()] = true;
    return Memo[S.index()];
  }

private:
  const Program &P;
  const std::vector<BitSet> &ProcExec;
  std::vector<BitSet> Memo;
  std::vector<bool> Done;
};

/// Walks one procedure body threading the may-have-executed-before set
/// through the statement algebra: Seq accumulates left to right, Choice
/// forks, Star feeds its own body's effect back before re-entry. Invokes
/// widen the callee's entry set; Checks record their footprint.
class FootprintWalker {
public:
  FootprintWalker(const Program &P, StmtExec &Exec,
                  std::vector<BitSet> &EntryOf, std::vector<bool> &InWorklist,
                  std::vector<uint32_t> &Worklist, std::vector<BitSet> *Before)
      : P(P), Exec(Exec), EntryOf(EntryOf), InWorklist(InWorklist),
        Worklist(Worklist), Before(Before) {}

  void walkProc(uint32_t ProcIndex) {
    BitSet Pre = EntryOf[ProcIndex];
    Pre.set(ProcIndex);
    const Procedure &Proc = P.proc(ProcId(ProcIndex));
    if (Proc.Body.isValid())
      walk(Proc.Body, Pre);
  }

private:
  void walk(StmtId S, BitSet &Pre) {
    const Stmt &St = P.stmt(S);
    switch (St.Kind) {
    case StmtKind::Atom: {
      const Command &C = P.command(St.Cmd);
      if (C.Kind == CmdKind::Invoke && C.Callee.isValid()) {
        uint32_t Callee = C.Callee.index();
        if (EntryOf[Callee].unionWith(Pre) && !InWorklist[Callee]) {
          InWorklist[Callee] = true;
          Worklist.push_back(Callee);
        }
      } else if (C.Kind == CmdKind::Check && Before && C.Check.isValid()) {
        (*Before)[C.Check.index()].unionWith(Pre);
      }
      break;
    }
    case StmtKind::Seq:
      for (StmtId Child : St.Children) {
        walk(Child, Pre);
        Pre.unionWith(Exec.execOf(Child));
      }
      break;
    case StmtKind::Choice:
      for (StmtId Child : St.Children) {
        BitSet Fork = Pre;
        walk(Child, Fork);
      }
      Pre.unionWith(Exec.execOf(S));
      break;
    case StmtKind::Star: {
      // The body may re-enter after itself, so everything the body can
      // execute precedes any command in it.
      Pre.unionWith(Exec.execOf(S));
      walk(St.Children.front(), Pre);
      break;
    }
    }
  }

  const Program &P;
  StmtExec &Exec;
  std::vector<BitSet> &EntryOf;
  std::vector<bool> &InWorklist;
  std::vector<uint32_t> &Worklist;
  std::vector<BitSet> *Before;
};

} // namespace

uint64_t procContentHash(const Program &P, ProcId Proc) {
  StmtHasher Hasher(P);
  const Procedure &Pr = P.proc(Proc);
  uint64_t H = FnvOffset;
  H = mixStr(H, Pr.Name);
  H = mix(H, Pr.Body.Value);
  if (Pr.Body.isValid())
    H = mix(H, Hasher.hash(Pr.Body));
  return H;
}

ProgramFingerprint fingerprintProgram(const Program &P,
                                      const CommandLiveness &L) {
  ProgramFingerprint F;
  F.NumVars = P.numVars();
  F.NumGlobals = P.numGlobals();
  F.NumFields = P.numFields();
  F.NumAllocs = P.numAllocs();
  F.NumMethods = P.numMethods();
  F.NumSymbols = P.numSymbols();
  F.NumChecks = P.numChecks();
  F.MainProc = P.main().Value;

  StmtHasher Content(P);
  LivenessHasher Live(P, L);
  F.Procs.reserve(P.numProcs());
  for (uint32_t I = 0; I < P.numProcs(); ++I) {
    const Procedure &Pr = P.proc(ProcId(I));
    ProgramFingerprint::ProcPrint PP;
    PP.Name = Pr.Name;
    uint64_t H = FnvOffset;
    H = mixStr(H, Pr.Name);
    H = mix(H, Pr.Body.Value);
    if (Pr.Body.isValid()) {
      H = mix(H, Content.hash(Pr.Body));
      PP.LivenessHash = Live.hash(Pr.Body);
    }
    PP.ContentHash = H;
    F.Procs.push_back(std::move(PP));
  }
  return F;
}

ProgramFingerprint fingerprintProgram(const Program &P) {
  CommandLiveness L(P);
  return fingerprintProgram(P, L);
}

ProgramDiff diffPrograms(const ProgramFingerprint &Old,
                         const ProgramFingerprint &New) {
  ProgramDiff D;
  D.DirtyProcs = BitSet(New.Procs.size());
  D.Comparable = Old.NumVars == New.NumVars &&
                 Old.NumGlobals == New.NumGlobals &&
                 Old.NumFields == New.NumFields &&
                 Old.NumAllocs == New.NumAllocs &&
                 Old.NumMethods == New.NumMethods &&
                 Old.NumSymbols == New.NumSymbols &&
                 Old.MainProc == New.MainProc;
  for (size_t I = 0; I < New.Procs.size(); ++I) {
    bool Dirty = !D.Comparable || I >= Old.Procs.size() ||
                 Old.Procs[I].Name != New.Procs[I].Name ||
                 Old.Procs[I].ContentHash != New.Procs[I].ContentHash ||
                 Old.Procs[I].LivenessHash != New.Procs[I].LivenessHash;
    if (Dirty) {
      D.DirtyProcs.set(I);
      D.DirtyProcNames.push_back(New.Procs[I].Name);
    }
  }
  return D;
}

std::vector<BitSet> checkFootprints(const Program &P) {
  const uint32_t NumProcs = P.numProcs();
  std::vector<BitSet> Before(P.numChecks());
  for (uint32_t C = 0; C < P.numChecks(); ++C) {
    Before[C] = BitSet(NumProcs);
    ProcId Encl = P.checkSite(CheckId(C)).Proc;
    if (Encl.isValid())
      Before[C].set(Encl.index());
  }
  if (NumProcs == 0 || !P.main().isValid())
    return Before;

  // 1. Call-graph closure: ProcExec[p] = procedures that may run while p
  // runs to completion (p itself plus every transitively invoked callee).
  std::vector<BitSet> ProcExec(NumProcs, BitSet(NumProcs));
  for (uint32_t I = 0; I < NumProcs; ++I)
    ProcExec[I].set(I);
  // Direct call edges via a dedicated memoized statement pass.
  {
    bool Changed = true;
    // Collect direct callees once.
    std::vector<std::vector<uint32_t>> Callees(NumProcs);
    {
      for (uint32_t I = 0; I < NumProcs; ++I) {
        const Procedure &Pr = P.proc(ProcId(I));
        if (!Pr.Body.isValid())
          continue;
        std::vector<StmtId> Stack{Pr.Body};
        std::vector<bool> Local(P.numStmts(), false);
        while (!Stack.empty()) {
          StmtId S = Stack.back();
          Stack.pop_back();
          if (Local[S.index()])
            continue;
          Local[S.index()] = true;
          const Stmt &St = P.stmt(S);
          if (St.Kind == StmtKind::Atom) {
            const Command &C = P.command(St.Cmd);
            if (C.Kind == CmdKind::Invoke && C.Callee.isValid())
              Callees[I].push_back(C.Callee.index());
          } else {
            for (StmtId Child : St.Children)
              Stack.push_back(Child);
          }
        }
      }
    }
    while (Changed) {
      Changed = false;
      for (uint32_t I = 0; I < NumProcs; ++I)
        for (uint32_t Callee : Callees[I])
          Changed |= ProcExec[I].unionWith(ProcExec[Callee]);
    }
  }

  StmtExec Exec(P, ProcExec);

  // 2. Entry-set fixpoint from main: EntryOf[p] = procedures that may have
  // executed (fully or partially) before p is entered, in any context.
  std::vector<BitSet> EntryOf(NumProcs, BitSet(NumProcs));
  std::vector<bool> InWorklist(NumProcs, false);
  std::vector<bool> Reached(NumProcs, false);
  std::vector<uint32_t> Worklist{P.main().index()};
  InWorklist[P.main().index()] = true;
  FootprintWalker Fix(P, Exec, EntryOf, InWorklist, Worklist, nullptr);
  while (!Worklist.empty()) {
    uint32_t Proc = Worklist.back();
    Worklist.pop_back();
    InWorklist[Proc] = false;
    Reached[Proc] = true;
    Fix.walkProc(Proc);
  }

  // 3. Recording pass with the converged entry sets.
  FootprintWalker Record(P, Exec, EntryOf, InWorklist, Worklist, &Before);
  for (uint32_t I = 0; I < NumProcs; ++I)
    if (Reached[I])
      Record.walkProc(I);
  // The recording pass may have widened some entry set on a back edge the
  // fixpoint already saturated; it cannot (the fixpoint converged), so the
  // worklist stays empty.
  assert(Worklist.empty() && "entry fixpoint had not converged");

  return Before;
}

} // namespace ir
} // namespace optabs
