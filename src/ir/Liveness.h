//===- Liveness.h - Per-command live-variable sets -------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classical backward live-variable analysis over the statement algebra,
/// computed once per program. The forward dataflow engine uses the result
/// to forget dead local variables from abstract states before interning
/// them (dataflow/Forward.h): states that differ only in dead variables
/// collapse to one interned id, shrinking the disjunctive state sets, the
/// transfer memo, and every downstream trace.
///
/// The use/def table is the union over both client analyses (type-state,
/// thread-escape) of which variable components of the abstract state each
/// command reads and overwrites:
///
///   command        use                def
///   -------        ---                ---
///   assume         -                  -
///   new            -                  Dst
///   copy           Src                Dst
///   null           -                  Dst
///   load-global    -                  Dst
///   store-global   Src                -      (escape: every var may flip
///   load-field     Src (base)         Dst     to E via esc(), so nothing
///   store-field    Dst (base), Src    -       is treated as overwritten)
///   method-call    Dst (receiver)     -
///   check          Dst                -
///
/// Def must under-approximate "output independent of input" across every
/// client and parameter, so commands whose transfer can consult arbitrary
/// variables (the escape esc() closure on store-global/store-field) define
/// nothing. Globals, fields and type-state components are not variables and
/// are never pruned.
///
/// The fixpoint runs over the statement DAG: a statement shared by several
/// contexts accumulates the union of its contexts' live-out sets, and each
/// command's LiveOut is the union over all Atom occurrences - exactly the
/// "could any continuation still read v?" question pruning needs. Invoke
/// propagates live-out into the callee body and the body's live-in back to
/// the call site; Star feeds the body's live-in back into its own live-out.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_LIVENESS_H
#define OPTABS_IR_LIVENESS_H

#include "ir/Program.h"
#include "support/BitSet.h"

#include <vector>

namespace optabs {
namespace ir {

/// Per-command live-variable sets for one program. Immutable after
/// construction; safe to share across threads.
class CommandLiveness {
public:
  explicit CommandLiveness(const Program &P);

  /// Variables possibly read by some continuation after \p C executes, in
  /// any context in which \p C occurs. A variable outside this set may be
  /// soundly forgotten from the post-state of \p C.
  const BitSet &liveOut(CommandId C) const {
    assert(C.index() < CmdOut.size());
    return CmdOut[C.index()];
  }

  size_t numCommands() const { return CmdOut.size(); }

private:
  std::vector<BitSet> CmdOut;
};

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_LIVENESS_H
