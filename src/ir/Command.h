//===- Command.h - Atomic commands of the mini-IR --------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic commands of the paper's imperative language (§3.1). The command
/// set is the union of what the two client analyses consume: the type-state
/// analysis interprets New/Copy/Null/MethodCall (Fig. 4) and the
/// thread-escape analysis interprets New/Copy/Null/LoadGlobal/StoreGlobal/
/// LoadField/StoreField (Fig. 5). Invoke transfers control to a procedure
/// (handled by the interprocedural engine, not by client transfer
/// functions), and Check anchors a query at a program point.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_COMMAND_H
#define OPTABS_IR_COMMAND_H

#include "ir/Ids.h"

#include <cstdint>

namespace optabs {
namespace ir {

enum class CmdKind : uint8_t {
  Assume,      ///< assume(*): no-op for both clients.
  New,         ///< Dst = new Alloc
  Copy,        ///< Dst = Src
  Null,        ///< Dst = null
  LoadGlobal,  ///< Dst = Global
  StoreGlobal, ///< Global = Src
  LoadField,   ///< Dst = Src.Field
  StoreField,  ///< Dst.Field = Src
  MethodCall,  ///< Dst.Method()
  Invoke,      ///< call Callee()
  Check,       ///< query anchor; identity transfer for all clients
};

/// One atomic command. A plain aggregate: which members are meaningful
/// depends on Kind (see CmdKind). Commands live in the Program's pool and
/// are referred to by CommandId.
struct Command {
  CmdKind Kind = CmdKind::Assume;
  VarId Dst;       ///< New/Copy/Null/LoadGlobal/LoadField/StoreField(base)/
                   ///< MethodCall(receiver)/Check(queried variable)
  VarId Src;       ///< Copy/StoreGlobal/LoadField(base)/StoreField(value)
  GlobalId Global; ///< LoadGlobal/StoreGlobal
  FieldId Field;   ///< LoadField/StoreField
  AllocId Alloc;   ///< New
  MethodId Method; ///< MethodCall
  ProcId Callee;   ///< Invoke
  CheckId Check;   ///< Check
};

/// Returns true if the command is interpreted by client transfer functions
/// (i.e. everything except Invoke, which the interprocedural engine expands,
/// and which therefore never appears in extracted traces).
inline bool isClientCommand(CmdKind K) { return K != CmdKind::Invoke; }

/// Returns a short mnemonic for diagnostics ("new", "copy", ...).
const char *cmdKindName(CmdKind K);

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_COMMAND_H
