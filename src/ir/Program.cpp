//===- Program.cpp - Programs of the mini-IR -------------------------------===//

#include "ir/Program.h"

namespace optabs {
namespace ir {

const char *cmdKindName(CmdKind K) {
  switch (K) {
  case CmdKind::Assume:
    return "assume";
  case CmdKind::New:
    return "new";
  case CmdKind::Copy:
    return "copy";
  case CmdKind::Null:
    return "null";
  case CmdKind::LoadGlobal:
    return "loadg";
  case CmdKind::StoreGlobal:
    return "storeg";
  case CmdKind::LoadField:
    return "load";
  case CmdKind::StoreField:
    return "store";
  case CmdKind::MethodCall:
    return "call";
  case CmdKind::Invoke:
    return "invoke";
  case CmdKind::Check:
    return "check";
  }
  return "?";
}

namespace {
/// Interns \p Name into \p Names / \p Index and returns its dense index.
uint32_t internName(const std::string &Name, std::vector<std::string> &Names,
                    std::unordered_map<std::string, uint32_t> &Index) {
  auto [It, Inserted] =
      Index.emplace(Name, static_cast<uint32_t>(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}
} // namespace

VarId Program::makeVar(const std::string &Name) {
  return VarId(internName(Name, VarNames, VarIndex));
}
GlobalId Program::makeGlobal(const std::string &Name) {
  return GlobalId(internName(Name, GlobalNames, GlobalIndex));
}
FieldId Program::makeField(const std::string &Name) {
  return FieldId(internName(Name, FieldNames, FieldIndex));
}
AllocId Program::makeAlloc(const std::string &Name) {
  return AllocId(internName(Name, AllocNames, AllocIndex));
}
MethodId Program::makeMethod(const std::string &Name) {
  return MethodId(internName(Name, MethodNames, MethodIndex));
}
SymbolId Program::makeSymbol(const std::string &Name) {
  return SymbolId(internName(Name, SymbolNames, SymbolIndex));
}

ProcId Program::makeProc(const std::string &Name) {
  auto [It, Inserted] =
      ProcIndex.emplace(Name, static_cast<uint32_t>(Procs.size()));
  if (Inserted)
    Procs.push_back(Procedure{Name, StmtId()});
  return ProcId(It->second);
}

namespace {
template <typename IdT>
IdT findIn(const std::unordered_map<std::string, uint32_t> &Index,
           const std::string &Name) {
  auto It = Index.find(Name);
  return It == Index.end() ? IdT() : IdT(It->second);
}
} // namespace

VarId Program::findVar(const std::string &Name) const {
  return findIn<VarId>(VarIndex, Name);
}
GlobalId Program::findGlobal(const std::string &Name) const {
  return findIn<GlobalId>(GlobalIndex, Name);
}
FieldId Program::findField(const std::string &Name) const {
  return findIn<FieldId>(FieldIndex, Name);
}
AllocId Program::findAlloc(const std::string &Name) const {
  return findIn<AllocId>(AllocIndex, Name);
}
ProcId Program::findProc(const std::string &Name) const {
  return findIn<ProcId>(ProcIndex, Name);
}
SymbolId Program::findSymbol(const std::string &Name) const {
  return findIn<SymbolId>(SymbolIndex, Name);
}

CommandId Program::addCommand(Command C) {
  CommandId Id(static_cast<uint32_t>(Commands.size()));
  Commands.push_back(C);
  return Id;
}

CommandId Program::cmdAssume() {
  Command C;
  C.Kind = CmdKind::Assume;
  return addCommand(C);
}

CommandId Program::cmdNew(VarId Dst, AllocId H) {
  assert(Dst.isValid() && H.isValid());
  Command C;
  C.Kind = CmdKind::New;
  C.Dst = Dst;
  C.Alloc = H;
  return addCommand(C);
}

CommandId Program::cmdCopy(VarId Dst, VarId Src) {
  assert(Dst.isValid() && Src.isValid());
  Command C;
  C.Kind = CmdKind::Copy;
  C.Dst = Dst;
  C.Src = Src;
  return addCommand(C);
}

CommandId Program::cmdNull(VarId Dst) {
  assert(Dst.isValid());
  Command C;
  C.Kind = CmdKind::Null;
  C.Dst = Dst;
  return addCommand(C);
}

CommandId Program::cmdLoadGlobal(VarId Dst, GlobalId G) {
  assert(Dst.isValid() && G.isValid());
  Command C;
  C.Kind = CmdKind::LoadGlobal;
  C.Dst = Dst;
  C.Global = G;
  return addCommand(C);
}

CommandId Program::cmdStoreGlobal(GlobalId G, VarId Src) {
  assert(G.isValid() && Src.isValid());
  Command C;
  C.Kind = CmdKind::StoreGlobal;
  C.Global = G;
  C.Src = Src;
  return addCommand(C);
}

CommandId Program::cmdLoadField(VarId Dst, VarId Base, FieldId F) {
  assert(Dst.isValid() && Base.isValid() && F.isValid());
  Command C;
  C.Kind = CmdKind::LoadField;
  C.Dst = Dst;
  C.Src = Base;
  C.Field = F;
  return addCommand(C);
}

CommandId Program::cmdStoreField(VarId Base, FieldId F, VarId Src) {
  assert(Base.isValid() && F.isValid() && Src.isValid());
  Command C;
  C.Kind = CmdKind::StoreField;
  C.Dst = Base;
  C.Field = F;
  C.Src = Src;
  return addCommand(C);
}

CommandId Program::cmdMethodCall(VarId Recv, MethodId M) {
  assert(Recv.isValid() && M.isValid());
  Command C;
  C.Kind = CmdKind::MethodCall;
  C.Dst = Recv;
  C.Method = M;
  return addCommand(C);
}

CommandId Program::cmdInvoke(ProcId Callee) {
  assert(Callee.isValid());
  Command C;
  C.Kind = CmdKind::Invoke;
  C.Callee = Callee;
  return addCommand(C);
}

CommandId Program::cmdCheck(VarId V, SymbolId Payload, ProcId Proc) {
  assert(V.isValid());
  CheckId Check(static_cast<uint32_t>(Checks.size()));
  Command C;
  C.Kind = CmdKind::Check;
  C.Dst = V;
  C.Check = Check;
  CommandId Cmd = addCommand(C);
  Checks.push_back(CheckSite{V, Payload, Proc, Cmd});
  return Cmd;
}

StmtId Program::stmtAtom(CommandId C) {
  StmtId Id(static_cast<uint32_t>(Stmts.size()));
  Stmt S;
  S.Kind = StmtKind::Atom;
  S.Cmd = C;
  Stmts.push_back(std::move(S));
  return Id;
}

StmtId Program::stmtSeq(std::vector<StmtId> Children) {
  StmtId Id(static_cast<uint32_t>(Stmts.size()));
  Stmt S;
  S.Kind = StmtKind::Seq;
  S.Children = std::move(Children);
  Stmts.push_back(std::move(S));
  return Id;
}

StmtId Program::stmtChoice(std::vector<StmtId> Children) {
  assert(!Children.empty() && "choice needs at least one branch");
  StmtId Id(static_cast<uint32_t>(Stmts.size()));
  Stmt S;
  S.Kind = StmtKind::Choice;
  S.Children = std::move(Children);
  Stmts.push_back(std::move(S));
  return Id;
}

StmtId Program::stmtStar(StmtId Body) {
  StmtId Id(static_cast<uint32_t>(Stmts.size()));
  Stmt S;
  S.Kind = StmtKind::Star;
  S.Children = {Body};
  Stmts.push_back(std::move(S));
  return Id;
}

StmtId Program::stmtSkip() { return stmtSeq({}); }

void Program::setProcBody(ProcId P, StmtId Body) {
  assert(P.index() < Procs.size());
  assert(!Procs[P.index()].Body.isValid() && "procedure body already set");
  Procs[P.index()].Body = Body;
}

} // namespace ir
} // namespace optabs
