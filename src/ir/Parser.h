//===- Parser.h - Textual frontend for the mini-IR -------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual form of the mini-IR. The concrete syntax:
///
/// \code
///   global g;                       // globals must be declared up front
///   proc main {
///     x = new h1;                   // allocation (site named h1)
///     y = x;                        // copy
///     z = null;
///     if { z = x; } else { }       // nondeterministic branch (choice)
///     choice { x.open(); } or { }  // n-way choice
///     loop { y = y.next; }         // iteration (star)
///     g = x;                        // store to a declared global
///     x.f = y;  y = x.f;            // field store / load
///     x.open();                     // type-state method call
///     call helper;                  // procedure invocation
///     check(x, closed);             // query anchor (payload optional)
///     assume(*);
///   }
///   proc helper { ... }
/// \endcode
///
/// Comments run from "//" to end of line. The parser distinguishes global
/// from local variables by the up-front declarations; fields, methods and
/// allocation sites live in their own namespaces (position disambiguates).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_PARSER_H
#define OPTABS_IR_PARSER_H

#include "ir/Program.h"

#include <string>

namespace optabs {
namespace ir {

/// Parses \p Source into \p P, which must be empty. Returns true on success.
/// On failure returns false and sets \p Error to a "line N: message" string.
/// The procedure named "main" (required) becomes the program entry.
bool parseProgram(const std::string &Source, Program &P, std::string &Error);

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_PARSER_H
