//===- ProgramDiff.h - Content hashing & versioned program diffs -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental re-analysis support: per-procedure content hashes, program
/// fingerprints captured at registration time, version diffs, and per-check
/// dependence footprints.
///
/// The analysis service caches whole-program forward runs and learned
/// verdicts keyed by program epoch. When a program is re-registered, the
/// diff below decides which cached artifacts are still valid against the
/// new IR and may migrate into the new epoch instead of being evicted.
///
/// The soundness contract has three pieces:
///
///  * Procedure hashes are *id-inclusive*: they fold the statement DAG
///    structure, raw StmtId/CommandId values, command kinds, raw operand
///    entity ids, and the names those ids intern to. Hash-equal therefore
///    means the procedure is byte-identical *in place*: every id a cached
///    artifact recorded against the old program (check indices, trace
///    command ids, state variable indices) denotes the same thing in the
///    new program. Edits that shift the id layout of untouched procedures
///    (e.g. inserting a command early in the file) conservatively dirty
///    every shifted procedure.
///
///  * Cleanliness additionally requires liveness-hash equality. The forward
///    engine prunes dead variables using per-command live-out sets, which
///    depend on *continuations* - code sequenced after a command, possibly
///    in other procedures. A procedure whose own text is untouched can
///    still produce different (pruned) states when an edit elsewhere
///    changes what is live across it, so a check is clean only when every
///    procedure in its footprint has both hashes unchanged.
///
///  * Per-check footprints over-approximate "procedures whose commands may
///    execute before the check" along any path from main. The disjunctive
///    states the driver reads at a check - and every counterexample trace
///    ending at it - are functions of that prefix only, so a check whose
///    footprint is entirely clean sees bitwise-identical states in the new
///    program.
///
/// Programs whose entity tables differ in size, or whose main procedure
/// moved, are *incomparable*: parameter spaces and state bit-widths may
/// differ, and the diff reports every procedure dirty (full invalidation).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_PROGRAMDIFF_H
#define OPTABS_IR_PROGRAMDIFF_H

#include "ir/Program.h"
#include "support/BitSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace optabs {
namespace ir {

class CommandLiveness;

/// An immutable snapshot of everything the diff needs to know about one
/// registered program version. Captured at registration time so that
/// diffing never reads the retiring Program object (which the scheduler
/// may still be mutating through lazy entity interning).
struct ProgramFingerprint {
  struct ProcPrint {
    std::string Name;
    uint64_t ContentHash = 0;  ///< id-inclusive statement-DAG hash
    uint64_t LivenessHash = 0; ///< hash of the proc's command live-out sets
  };

  std::vector<ProcPrint> Procs; ///< indexed by ProcId

  // Entity-table shape. Any mismatch makes two versions incomparable.
  uint32_t NumVars = 0, NumGlobals = 0, NumFields = 0, NumAllocs = 0,
           NumMethods = 0, NumSymbols = 0;
  uint32_t NumChecks = 0;
  uint32_t MainProc = ~0u; ///< index of main, ~0u when unset
};

/// Fingerprints \p P using the already-computed liveness \p L.
ProgramFingerprint fingerprintProgram(const Program &P,
                                      const CommandLiveness &L);

/// Convenience overload computing liveness internally.
ProgramFingerprint fingerprintProgram(const Program &P);

/// Id-inclusive content hash of one procedure's statement DAG (see the
/// file comment for what it folds). Exposed for tests.
uint64_t procContentHash(const Program &P, ProcId Proc);

/// The result of diffing a retiring fingerprint against its replacement.
struct ProgramDiff {
  /// False when entity shapes or main differ: parameter spaces may not
  /// line up and nothing can migrate. DirtyProcs then covers every
  /// procedure of the new program.
  bool Comparable = false;

  /// Over the NEW program's procedure indices: true when the procedure is
  /// new, renamed, content-changed, or liveness-changed.
  BitSet DirtyProcs;

  /// Names of the dirty procedures, in procedure-index order (for
  /// protocol reporting).
  std::vector<std::string> DirtyProcNames;

  size_t numDirty() const { return DirtyProcs.count(); }
};

/// Diffs two fingerprints. \p Old is the retiring version, \p New the one
/// replacing it.
ProgramDiff diffPrograms(const ProgramFingerprint &Old,
                         const ProgramFingerprint &New);

/// For every check of \p P, the set of procedures (as a BitSet over
/// procedure indices) whose commands may execute before control reaches
/// the check on some path from main. Always includes the check's own
/// enclosing procedure. Checks unreachable from main get the empty set
/// plus their enclosing procedure.
std::vector<BitSet> checkFootprints(const Program &P);

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_PROGRAMDIFF_H
