//===- Printer.cpp - Pretty-printing for the mini-IR ------------------------===//

#include "ir/Printer.h"

namespace optabs {
namespace ir {

std::string commandToString(const Program &P, CommandId Id) {
  const Command &C = P.command(Id);
  switch (C.Kind) {
  case CmdKind::Assume:
    return "assume(*)";
  case CmdKind::New:
    return P.varName(C.Dst) + " = new " + P.allocName(C.Alloc);
  case CmdKind::Copy:
    return P.varName(C.Dst) + " = " + P.varName(C.Src);
  case CmdKind::Null:
    return P.varName(C.Dst) + " = null";
  case CmdKind::LoadGlobal:
    return P.varName(C.Dst) + " = " + P.globalName(C.Global);
  case CmdKind::StoreGlobal:
    return P.globalName(C.Global) + " = " + P.varName(C.Src);
  case CmdKind::LoadField:
    return P.varName(C.Dst) + " = " + P.varName(C.Src) + "." +
           P.fieldName(C.Field);
  case CmdKind::StoreField:
    return P.varName(C.Dst) + "." + P.fieldName(C.Field) + " = " +
           P.varName(C.Src);
  case CmdKind::MethodCall:
    return P.varName(C.Dst) + "." + P.methodName(C.Method) + "()";
  case CmdKind::Invoke:
    return "call " + P.proc(C.Callee).Name;
  case CmdKind::Check: {
    const CheckSite &Site = P.checkSite(C.Check);
    std::string S = "check(" + P.varName(Site.Var);
    if (Site.Payload.isValid())
      S += ", " + P.symbolName(Site.Payload);
    return S + ")";
  }
  }
  return "?";
}

void printTrace(std::ostream &OS, const Program &P, const Trace &T,
                const std::string &Indent) {
  for (CommandId C : T)
    OS << Indent << commandToString(P, C) << ";\n";
}

namespace {

void printStmt(std::ostream &OS, const Program &P, StmtId Id,
               unsigned Depth) {
  std::string Pad(Depth * 2, ' ');
  const Stmt &S = P.stmt(Id);
  switch (S.Kind) {
  case StmtKind::Atom:
    OS << Pad << commandToString(P, S.Cmd) << ";\n";
    return;
  case StmtKind::Seq:
    for (StmtId Child : S.Children)
      printStmt(OS, P, Child, Depth);
    return;
  case StmtKind::Choice:
    OS << Pad << "choice {\n";
    for (size_t I = 0; I < S.Children.size(); ++I) {
      if (I > 0)
        OS << Pad << "} or {\n";
      printStmt(OS, P, S.Children[I], Depth + 1);
    }
    OS << Pad << "}\n";
    return;
  case StmtKind::Star:
    OS << Pad << "loop {\n";
    printStmt(OS, P, S.Children[0], Depth + 1);
    OS << Pad << "}\n";
    return;
  }
}

} // namespace

void printProgram(std::ostream &OS, const Program &P) {
  for (uint32_t I = 0; I < P.numGlobals(); ++I)
    OS << "global " << P.globalName(GlobalId(I)) << ";\n";
  for (uint32_t I = 0; I < P.numProcs(); ++I) {
    const Procedure &Proc = P.proc(ProcId(I));
    OS << "proc " << Proc.Name << " {\n";
    if (Proc.Body.isValid())
      printStmt(OS, P, Proc.Body, 1);
    OS << "}\n";
  }
}

} // namespace ir
} // namespace optabs
