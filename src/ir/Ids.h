//===- Ids.h - Strongly-typed dense identifiers ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifiers for the entities of the mini-IR: local
/// variables, global variables, object fields, allocation sites, type-state
/// methods, procedures, statements, atomic commands, and check (query)
/// sites. Each kind gets its own type so they cannot be mixed up.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_IDS_H
#define OPTABS_IR_IDS_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace optabs {
namespace ir {

/// A strongly-typed wrapper around a dense 32-bit index. The default value
/// is invalid; valid ids are handed out by the Program's interners.
template <typename Tag> struct Id {
  uint32_t Value = UINT32_MAX;

  Id() = default;
  explicit Id(uint32_t V) : Value(V) {}

  bool isValid() const { return Value != UINT32_MAX; }
  uint32_t index() const { return Value; }

  friend bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend bool operator<(Id A, Id B) { return A.Value < B.Value; }
};

struct VarTag {};
struct GlobalTag {};
struct FieldTag {};
struct AllocTag {};
struct MethodTag {};
struct ProcTag {};
struct StmtTag {};
struct CommandTag {};
struct CheckTag {};
struct SymbolTag {};

/// A local (pointer-typed) variable. Type-state abstractions are subsets of
/// these.
using VarId = Id<VarTag>;
/// A global variable (thread-shared root in the escape analysis).
using GlobalId = Id<GlobalTag>;
/// An instance field.
using FieldId = Id<FieldTag>;
/// An object allocation site. Thread-escape abstractions map these to L/E.
using AllocId = Id<AllocTag>;
/// A type-state method name (e.g. open/close), interpreted by an automaton.
using MethodId = Id<MethodTag>;
/// A procedure.
using ProcId = Id<ProcTag>;
/// A statement AST node.
using StmtId = Id<StmtTag>;
/// An atomic command.
using CommandId = Id<CommandTag>;
/// A check (query) site.
using CheckId = Id<CheckTag>;
/// A client-interpreted symbol (e.g. the allowed type-state of a check).
using SymbolId = Id<SymbolTag>;

} // namespace ir
} // namespace optabs

namespace std {
template <typename Tag> struct hash<optabs::ir::Id<Tag>> {
  size_t operator()(optabs::ir::Id<Tag> I) const {
    return std::hash<uint32_t>()(I.Value);
  }
};
} // namespace std

#endif // OPTABS_IR_IDS_H
