//===- Program.h - Programs of the mini-IR ---------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program class: pools of named entities (variables, globals, fields,
/// allocation sites, methods, procedures), a pool of atomic commands, and a
/// statement AST realizing the paper's statement algebra
///   s ::= a | s ; s' | s + s' | s*         (§3.1)
/// extended with procedures (each procedure has a body statement; Invoke
/// commands transfer to a callee). Programs are built through the mutating
/// builder API below or parsed from text (see Parser.h).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_PROGRAM_H
#define OPTABS_IR_PROGRAM_H

#include "ir/Command.h"
#include "ir/Ids.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace optabs {
namespace ir {

enum class StmtKind : uint8_t {
  Atom,   ///< a single atomic command
  Seq,    ///< s1 ; s2 ; ... (n-ary for convenience; empty = skip)
  Choice, ///< s1 + s2 + ... (n-ary; must have >= 1 child)
  Star,   ///< s*  (exactly 1 child)
};

/// One statement AST node. Nodes live in the Program's pool and refer to
/// children by StmtId; sharing is allowed (the AST is a DAG).
struct Stmt {
  StmtKind Kind = StmtKind::Seq;
  CommandId Cmd;                ///< valid iff Kind == Atom
  std::vector<StmtId> Children; ///< Seq/Choice: any arity; Star: exactly 1
};

/// A procedure: a name and a body statement.
struct Procedure {
  std::string Name;
  StmtId Body;
};

/// A check (query) site: the queried variable plus a client-interpreted
/// symbol payload (e.g. the allowed type-state). Each check site appears as
/// exactly one Check command in the program.
struct CheckSite {
  VarId Var;
  SymbolId Payload;  ///< invalid for payload-less checks (escape queries)
  ProcId Proc;       ///< enclosing procedure (for diagnostics)
  CommandId Command; ///< the Check command anchoring this site
};

/// A whole program: entity tables, command pool, statement pool, procedures.
class Program {
public:
  //===--------------------------------------------------------------------===
  // Entity interning. Each returns the existing id when the name is known.
  //===--------------------------------------------------------------------===

  VarId makeVar(const std::string &Name);
  GlobalId makeGlobal(const std::string &Name);
  FieldId makeField(const std::string &Name);
  AllocId makeAlloc(const std::string &Name);
  MethodId makeMethod(const std::string &Name);
  ProcId makeProc(const std::string &Name);
  SymbolId makeSymbol(const std::string &Name);

  /// Looks up an existing entity by name; returns an invalid id if unknown.
  VarId findVar(const std::string &Name) const;
  GlobalId findGlobal(const std::string &Name) const;
  FieldId findField(const std::string &Name) const;
  AllocId findAlloc(const std::string &Name) const;
  ProcId findProc(const std::string &Name) const;
  SymbolId findSymbol(const std::string &Name) const;

  //===--------------------------------------------------------------------===
  // Command builders. Each appends a command and returns its id.
  //===--------------------------------------------------------------------===

  CommandId cmdAssume();
  CommandId cmdNew(VarId Dst, AllocId H);
  CommandId cmdCopy(VarId Dst, VarId Src);
  CommandId cmdNull(VarId Dst);
  CommandId cmdLoadGlobal(VarId Dst, GlobalId G);
  CommandId cmdStoreGlobal(GlobalId G, VarId Src);
  CommandId cmdLoadField(VarId Dst, VarId Base, FieldId F);
  CommandId cmdStoreField(VarId Base, FieldId F, VarId Src);
  CommandId cmdMethodCall(VarId Recv, MethodId M);
  CommandId cmdInvoke(ProcId Callee);
  /// Creates both the Check command and its CheckSite record. \p Proc is the
  /// enclosing procedure (used only for reporting).
  CommandId cmdCheck(VarId V, SymbolId Payload, ProcId Proc);

  //===--------------------------------------------------------------------===
  // Statement builders.
  //===--------------------------------------------------------------------===

  StmtId stmtAtom(CommandId C);
  StmtId stmtSeq(std::vector<StmtId> Children);
  StmtId stmtChoice(std::vector<StmtId> Children);
  StmtId stmtStar(StmtId Body);
  /// An empty statement (Seq with no children).
  StmtId stmtSkip();

  /// Sets the body of \p P. A procedure's body may be set exactly once.
  void setProcBody(ProcId P, StmtId Body);
  void setMain(ProcId P) { Main = P; }
  ProcId main() const { return Main; }

  //===--------------------------------------------------------------------===
  // Accessors.
  //===--------------------------------------------------------------------===

  const Command &command(CommandId C) const {
    assert(C.index() < Commands.size());
    return Commands[C.index()];
  }
  const Stmt &stmt(StmtId S) const {
    assert(S.index() < Stmts.size());
    return Stmts[S.index()];
  }
  const Procedure &proc(ProcId P) const {
    assert(P.index() < Procs.size());
    return Procs[P.index()];
  }
  const CheckSite &checkSite(CheckId C) const {
    assert(C.index() < Checks.size());
    return Checks[C.index()];
  }

  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }
  uint32_t numGlobals() const {
    return static_cast<uint32_t>(GlobalNames.size());
  }
  uint32_t numFields() const {
    return static_cast<uint32_t>(FieldNames.size());
  }
  uint32_t numAllocs() const {
    return static_cast<uint32_t>(AllocNames.size());
  }
  uint32_t numMethods() const {
    return static_cast<uint32_t>(MethodNames.size());
  }
  uint32_t numProcs() const { return static_cast<uint32_t>(Procs.size()); }
  uint32_t numCommands() const {
    return static_cast<uint32_t>(Commands.size());
  }
  uint32_t numStmts() const { return static_cast<uint32_t>(Stmts.size()); }
  uint32_t numChecks() const { return static_cast<uint32_t>(Checks.size()); }
  uint32_t numSymbols() const {
    return static_cast<uint32_t>(SymbolNames.size());
  }

  const std::string &varName(VarId V) const { return VarNames[V.index()]; }
  const std::string &globalName(GlobalId G) const {
    return GlobalNames[G.index()];
  }
  const std::string &fieldName(FieldId F) const {
    return FieldNames[F.index()];
  }
  const std::string &allocName(AllocId H) const {
    return AllocNames[H.index()];
  }
  const std::string &methodName(MethodId M) const {
    return MethodNames[M.index()];
  }
  const std::string &symbolName(SymbolId S) const {
    return SymbolNames[S.index()];
  }

private:
  CommandId addCommand(Command C);

  std::vector<std::string> VarNames, GlobalNames, FieldNames, AllocNames,
      MethodNames, SymbolNames;
  std::unordered_map<std::string, uint32_t> VarIndex, GlobalIndex, FieldIndex,
      AllocIndex, MethodIndex, ProcIndex, SymbolIndex;
  std::vector<Command> Commands;
  std::vector<Stmt> Stmts;
  std::vector<Procedure> Procs;
  std::vector<CheckSite> Checks;
  ProcId Main;
};

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_PROGRAM_H
