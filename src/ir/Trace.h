//===- Trace.h - Abstract counterexample traces ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace is a finite sequence of atomic commands recording the steps of
/// one program execution (§3.1). Traces extracted by the forward analysis
/// are fully interprocedural: Invoke commands are expanded into the
/// callee's steps, so a trace contains only client-interpreted commands.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_TRACE_H
#define OPTABS_IR_TRACE_H

#include "ir/Ids.h"

#include <vector>

namespace optabs {
namespace ir {

/// A finite sequence a1 a2 ... an of atomic commands.
using Trace = std::vector<CommandId>;

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_TRACE_H
