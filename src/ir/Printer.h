//===- Printer.h - Pretty-printing for the mini-IR -------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders programs, single commands, and traces back to the textual
/// syntax accepted by the parser. Used by diagnostics, the examples, and
/// the round-trip parser tests.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_IR_PRINTER_H
#define OPTABS_IR_PRINTER_H

#include "ir/Program.h"
#include "ir/Trace.h"

#include <ostream>
#include <string>

namespace optabs {
namespace ir {

/// Renders a single atomic command, e.g. "x = new h1" or "y.close()".
std::string commandToString(const Program &P, CommandId C);

/// Prints \p T one command per line, prefixed by \p Indent.
void printTrace(std::ostream &OS, const Program &P, const Trace &T,
                const std::string &Indent = "  ");

/// Prints the whole program in parseable concrete syntax.
void printProgram(std::ostream &OS, const Program &P);

} // namespace ir
} // namespace optabs

#endif // OPTABS_IR_PRINTER_H
