//===- Parser.cpp - Textual frontend for the mini-IR -----------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>

namespace optabs {
namespace ir {

namespace {

enum class TokKind : uint8_t {
  Ident,
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semi,
  Comma,
  Dot,
  Equals,
  Star,
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  unsigned Line = 0;
};

/// A single-pass lexer + recursive-descent parser. Errors are reported by
/// setting Failed/Error and unwinding through early returns.
class ParserImpl {
public:
  ParserImpl(const std::string &Source, Program &P, std::string &Error)
      : Source(Source), P(P), Error(Error) {
    advance();
  }

  bool run() {
    while (!Failed && Cur.Kind != TokKind::Eof)
      parseDecl();
    if (Failed)
      return false;
    // Every referenced procedure must have been defined.
    for (uint32_t I = 0; I < P.numProcs(); ++I) {
      if (!P.proc(ProcId(I)).Body.isValid())
        return fail(0, "procedure '" + P.proc(ProcId(I)).Name +
                           "' referenced but never defined");
    }
    ProcId Main = P.findProc("main");
    if (!Main.isValid())
      return fail(0, "program has no 'proc main'");
    P.setMain(Main);
    return true;
  }

private:
  //===---------------------------- Lexer --------------------------------===

  void advance() {
    // Skip whitespace and // comments.
    while (Pos < Source.size()) {
      char C = Source[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Source.size() &&
                 Source[Pos + 1] == '/') {
        while (Pos < Source.size() && Source[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    Cur.Line = Line;
    Cur.Text.clear();
    if (Pos >= Source.size()) {
      Cur.Kind = TokKind::Eof;
      return;
    }
    char C = Source[Pos];
    auto Single = [&](TokKind K) {
      Cur.Kind = K;
      Cur.Text = C;
      ++Pos;
    };
    switch (C) {
    case '{':
      return Single(TokKind::LBrace);
    case '}':
      return Single(TokKind::RBrace);
    case '(':
      return Single(TokKind::LParen);
    case ')':
      return Single(TokKind::RParen);
    case ';':
      return Single(TokKind::Semi);
    case ',':
      return Single(TokKind::Comma);
    case '.':
      return Single(TokKind::Dot);
    case '=':
      return Single(TokKind::Equals);
    case '*':
      return Single(TokKind::Star);
    default:
      break;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '_' || Source[Pos] == '$'))
        ++Pos;
      Cur.Kind = TokKind::Ident;
      Cur.Text = Source.substr(Start, Pos - Start);
      return;
    }
    Cur.Kind = TokKind::Eof;
    fail(Line, std::string("unexpected character '") + C + "'");
  }

  bool fail(unsigned AtLine, const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Error = "line " + std::to_string(AtLine) + ": " + Msg;
    }
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (Failed)
      return false;
    if (Cur.Kind != K)
      return fail(Cur.Line, std::string("expected ") + What + ", found '" +
                                (Cur.Kind == TokKind::Eof ? "<eof>"
                                                          : Cur.Text) +
                                "'");
    advance();
    return true;
  }

  /// Consumes and returns an identifier token's text.
  std::string expectIdent(const char *What) {
    if (Failed)
      return "";
    if (Cur.Kind != TokKind::Ident) {
      fail(Cur.Line, std::string("expected ") + What);
      return "";
    }
    std::string Text = Cur.Text;
    advance();
    return Text;
  }

  bool isIdent(const char *Text) const {
    return Cur.Kind == TokKind::Ident && Cur.Text == Text;
  }

  //===---------------------------- Parser -------------------------------===

  void parseDecl() {
    if (isIdent("global")) {
      advance();
      std::string Name = expectIdent("global variable name");
      if (Failed)
        return;
      P.makeGlobal(Name);
      expect(TokKind::Semi, "';'");
      return;
    }
    if (isIdent("proc")) {
      advance();
      std::string Name = expectIdent("procedure name");
      if (Failed)
        return;
      ProcId Proc = P.makeProc(Name);
      if (P.proc(Proc).Body.isValid()) {
        fail(Cur.Line, "procedure '" + Name + "' redefined");
        return;
      }
      CurProc = Proc;
      if (!expect(TokKind::LBrace, "'{'"))
        return;
      StmtId Body = parseStmts();
      if (Failed)
        return;
      expect(TokKind::RBrace, "'}'");
      P.setProcBody(Proc, Body);
      return;
    }
    fail(Cur.Line, "expected 'global' or 'proc' declaration");
  }

  /// Parses statements up to the next '}' (not consumed) and returns the
  /// sequence statement.
  StmtId parseStmts() {
    std::vector<StmtId> Children;
    while (!Failed && Cur.Kind != TokKind::RBrace &&
           Cur.Kind != TokKind::Eof) {
      StmtId S = parseStmt();
      if (Failed)
        break;
      Children.push_back(S);
    }
    return P.stmtSeq(std::move(Children));
  }

  StmtId parseBlock() {
    if (!expect(TokKind::LBrace, "'{'"))
      return StmtId();
    StmtId S = parseStmts();
    expect(TokKind::RBrace, "'}'");
    return S;
  }

  StmtId parseStmt() {
    if (isIdent("if")) {
      advance();
      StmtId Then = parseBlock();
      StmtId Else = P.stmtSkip();
      if (isIdent("else")) {
        advance();
        Else = parseBlock();
      }
      return P.stmtChoice({Then, Else});
    }
    if (isIdent("choice")) {
      advance();
      std::vector<StmtId> Branches;
      Branches.push_back(parseBlock());
      while (!Failed && isIdent("or")) {
        advance();
        Branches.push_back(parseBlock());
      }
      return P.stmtChoice(std::move(Branches));
    }
    if (isIdent("loop")) {
      advance();
      return P.stmtStar(parseBlock());
    }
    StmtId S = parseAtom();
    expect(TokKind::Semi, "';'");
    return S;
  }

  /// Interns \p Name as a local variable, rejecting clashes with globals.
  VarId localVar(const std::string &Name, unsigned AtLine) {
    if (P.findGlobal(Name).isValid()) {
      fail(AtLine, "global '" + Name + "' used where a local is required");
      return VarId();
    }
    return P.makeVar(Name);
  }

  StmtId parseAtom() {
    unsigned AtLine = Cur.Line;
    if (isIdent("assume")) {
      advance();
      expect(TokKind::LParen, "'('");
      expect(TokKind::Star, "'*'");
      expect(TokKind::RParen, "')'");
      return P.stmtAtom(P.cmdAssume());
    }
    if (isIdent("call")) {
      advance();
      std::string Callee = expectIdent("procedure name");
      if (Failed)
        return StmtId();
      return P.stmtAtom(P.cmdInvoke(P.makeProc(Callee)));
    }
    if (isIdent("check")) {
      advance();
      expect(TokKind::LParen, "'('");
      std::string Var = expectIdent("variable");
      SymbolId Payload;
      if (Cur.Kind == TokKind::Comma) {
        advance();
        std::string Sym = expectIdent("check payload");
        if (!Failed)
          Payload = P.makeSymbol(Sym);
      }
      expect(TokKind::RParen, "')'");
      if (Failed)
        return StmtId();
      return P.stmtAtom(P.cmdCheck(localVar(Var, AtLine), Payload, CurProc));
    }

    // Remaining forms start with an identifier: assignments, field ops,
    // method calls.
    std::string First = expectIdent("statement");
    if (Failed)
      return StmtId();

    if (Cur.Kind == TokKind::Dot) {
      advance();
      std::string Member = expectIdent("field or method name");
      if (Failed)
        return StmtId();
      if (Cur.Kind == TokKind::LParen) {
        // v.m()
        advance();
        expect(TokKind::RParen, "')'");
        return P.stmtAtom(
            P.cmdMethodCall(localVar(First, AtLine), P.makeMethod(Member)));
      }
      // v.f = w
      expect(TokKind::Equals, "'='");
      std::string Rhs = expectIdent("variable");
      if (Failed)
        return StmtId();
      return P.stmtAtom(P.cmdStoreField(localVar(First, AtLine),
                                        P.makeField(Member),
                                        localVar(Rhs, AtLine)));
    }

    if (!expect(TokKind::Equals, "'=' or '.'"))
      return StmtId();

    // g = v (store to a declared global).
    GlobalId G = P.findGlobal(First);
    if (G.isValid()) {
      std::string Rhs = expectIdent("variable");
      if (Failed)
        return StmtId();
      return P.stmtAtom(P.cmdStoreGlobal(G, localVar(Rhs, AtLine)));
    }

    VarId Dst = localVar(First, AtLine);
    if (Failed)
      return StmtId();

    if (isIdent("new")) {
      advance();
      std::string Site = expectIdent("allocation site name");
      if (Failed)
        return StmtId();
      return P.stmtAtom(P.cmdNew(Dst, P.makeAlloc(Site)));
    }
    if (isIdent("null")) {
      advance();
      return P.stmtAtom(P.cmdNull(Dst));
    }

    std::string Rhs = expectIdent("right-hand side");
    if (Failed)
      return StmtId();
    if (Cur.Kind == TokKind::Dot) {
      // v = w.f
      advance();
      std::string Field = expectIdent("field name");
      if (Failed)
        return StmtId();
      return P.stmtAtom(
          P.cmdLoadField(Dst, localVar(Rhs, AtLine), P.makeField(Field)));
    }
    // v = g (load of a declared global) or v = w (copy).
    GlobalId SrcG = P.findGlobal(Rhs);
    if (SrcG.isValid())
      return P.stmtAtom(P.cmdLoadGlobal(Dst, SrcG));
    return P.stmtAtom(P.cmdCopy(Dst, localVar(Rhs, AtLine)));
  }

  const std::string &Source;
  Program &P;
  std::string &Error;
  size_t Pos = 0;
  unsigned Line = 1;
  Token Cur;
  ProcId CurProc;
  bool Failed = false;
};

} // namespace

bool parseProgram(const std::string &Source, Program &P, std::string &Error) {
  assert(P.numProcs() == 0 && "parse into an empty program");
  return ParserImpl(Source, P, Error).run();
}

} // namespace ir
} // namespace optabs
