//===- Liveness.cpp - Per-command live-variable sets ------------------------===//

#include "ir/Liveness.h"

namespace optabs {
namespace ir {

namespace {

/// Removes the variables overwritten by \p C from \p Live and adds the
/// variables it reads, turning a live-out set into the live-in set. See the
/// use/def table in Liveness.h.
void applyUseDef(const Command &C, BitSet &Live) {
  switch (C.Kind) {
  case CmdKind::Assume:
  case CmdKind::Invoke:
    break;
  case CmdKind::New:
  case CmdKind::Null:
  case CmdKind::LoadGlobal:
    Live.reset(C.Dst.index());
    break;
  case CmdKind::Copy:
    Live.reset(C.Dst.index());
    Live.set(C.Src.index());
    break;
  case CmdKind::LoadField:
    Live.reset(C.Dst.index());
    Live.set(C.Src.index());
    break;
  case CmdKind::StoreGlobal:
    Live.set(C.Src.index());
    break;
  case CmdKind::StoreField:
    Live.set(C.Dst.index());
    Live.set(C.Src.index());
    break;
  case CmdKind::MethodCall:
  case CmdKind::Check:
    Live.set(C.Dst.index());
    break;
  }
}

} // namespace

CommandLiveness::CommandLiveness(const Program &P) {
  const uint32_t NumVars = P.numVars();
  const uint32_t NumStmts = P.numStmts();
  CmdOut.assign(P.numCommands(), BitSet(NumVars));
  // Per-statement live-in/live-out, each the union over every context the
  // statement occurs in (the AST is a DAG; sharing just unions contexts).
  std::vector<BitSet> In(NumStmts, BitSet(NumVars));
  std::vector<BitSet> Out(NumStmts, BitSet(NumVars));
  BitSet Tmp(NumVars);

  // Monotone fixpoint: all sets only grow, bounded by NumVars bits each.
  // Statements are pooled children-before-parents, so the descending sweep
  // pushes live-out down the tree quickly; live-in flows upward across
  // sweeps until stable.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t SI = NumStmts; SI-- > 0;) {
      const Stmt &S = P.stmt(StmtId(SI));
      switch (S.Kind) {
      case StmtKind::Atom: {
        const Command &C = P.command(S.Cmd);
        if (C.Kind == CmdKind::Invoke) {
          if (C.Callee.isValid() && P.proc(C.Callee).Body.isValid()) {
            uint32_t Body = P.proc(C.Callee).Body.index();
            Changed |= Out[Body].unionWith(Out[SI]);
            Changed |= In[SI].unionWith(In[Body]);
          } else {
            Changed |= In[SI].unionWith(Out[SI]);
          }
          break;
        }
        Changed |= CmdOut[S.Cmd.index()].unionWith(Out[SI]);
        Tmp = Out[SI];
        applyUseDef(C, Tmp);
        Changed |= In[SI].unionWith(Tmp);
        break;
      }
      case StmtKind::Seq: {
        if (S.Children.empty()) {
          Changed |= In[SI].unionWith(Out[SI]);
          break;
        }
        Changed |= Out[S.Children.back().index()].unionWith(Out[SI]);
        for (size_t I = S.Children.size(); I-- > 1;)
          Changed |= Out[S.Children[I - 1].index()].unionWith(
              In[S.Children[I].index()]);
        Changed |= In[SI].unionWith(In[S.Children.front().index()]);
        break;
      }
      case StmtKind::Choice: {
        if (S.Children.empty()) {
          Changed |= In[SI].unionWith(Out[SI]);
          break;
        }
        for (StmtId Child : S.Children) {
          Changed |= Out[Child.index()].unionWith(Out[SI]);
          Changed |= In[SI].unionWith(In[Child.index()]);
        }
        break;
      }
      case StmtKind::Star: {
        uint32_t Body = S.Children.front().index();
        // Zero iterations: live-out passes straight through. One or more:
        // the body's live-in is live at the loop head, hence also live at
        // the end of every earlier iteration (feed In[Body] into Out[Body]).
        Changed |= Out[Body].unionWith(Out[SI]);
        Changed |= Out[Body].unionWith(In[Body]);
        Changed |= In[SI].unionWith(Out[SI]);
        Changed |= In[SI].unionWith(In[Body]);
        break;
      }
      }
    }
  }
}

} // namespace ir
} // namespace optabs
