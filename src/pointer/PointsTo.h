//===- PointsTo.h - Flow-insensitive may-points-to substrate ---*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 0-CFA-style, flow- and context-insensitive, field-sensitive (on
/// allocation-site abstractions) may-points-to analysis, plus call-graph
/// reachability from main. The paper's evaluation (§6) uses exactly such an
/// analysis as a substrate: the type-state client consults it to decide
/// whether a call v.m() may affect the tracked object, and queries are only
/// generated at reachable program points.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_POINTER_POINTSTO_H
#define OPTABS_POINTER_POINTSTO_H

#include "ir/Program.h"
#include "support/BitSet.h"

#include <vector>

namespace optabs {
namespace pointer {

/// Results of the may-points-to analysis over a fixed program.
class PointsToResult {
public:
  /// True if \p V may point to an object allocated at \p H.
  bool mayPoint(ir::VarId V, ir::AllocId H) const {
    return VarPts[V.index()].test(H.index());
  }

  /// True if \p V and \p W may point to a common allocation site.
  bool mayAlias(ir::VarId V, ir::VarId W) const;

  /// The may-points-to set of \p V as a bitset over allocation sites.
  const BitSet &pointsTo(ir::VarId V) const { return VarPts[V.index()]; }

  /// True if \p P is reachable from main via Invoke edges.
  bool isReachable(ir::ProcId P) const { return ReachableProcs[P.index()]; }

  /// All commands occurring in reachable procedures, in program order.
  const std::vector<ir::CommandId> &reachableCommands() const {
    return ReachableCmds;
  }

  friend PointsToResult runPointsTo(const ir::Program &P);

private:
  std::vector<BitSet> VarPts;    ///< per variable
  std::vector<BitSet> GlobalPts; ///< per global
  std::vector<BitSet> FieldPts;  ///< per field, merged over base objects
  std::vector<bool> ReachableProcs;
  std::vector<ir::CommandId> ReachableCmds;
};

/// Runs the analysis to fixpoint. Field points-to sets are merged over all
/// base objects (field-based), which over-approximates the field-sensitive
/// solution and matches the coarse 0-CFA substrate in the paper's setup.
PointsToResult runPointsTo(const ir::Program &P);

} // namespace pointer
} // namespace optabs

#endif // OPTABS_POINTER_POINTSTO_H
