//===- PointsTo.cpp - Flow-insensitive may-points-to substrate --------------===//

#include "pointer/PointsTo.h"

#include <deque>

namespace optabs {
namespace pointer {

using namespace ir;

bool PointsToResult::mayAlias(VarId V, VarId W) const {
  const BitSet &A = VarPts[V.index()];
  const BitSet &B = VarPts[W.index()];
  bool Alias = false;
  A.forEach([&](size_t H) { Alias |= B.test(H); });
  return Alias;
}

namespace {

/// Collects every command reachable from a statement, in syntactic order.
void collectCommands(const Program &P, StmtId S,
                     std::vector<CommandId> &Out) {
  const Stmt &Node = P.stmt(S);
  if (Node.Kind == StmtKind::Atom) {
    Out.push_back(Node.Cmd);
    return;
  }
  for (StmtId Child : Node.Children)
    collectCommands(P, Child, Out);
}

} // namespace

PointsToResult runPointsTo(const Program &P) {
  PointsToResult R;
  R.VarPts.assign(P.numVars(), BitSet(P.numAllocs()));
  R.GlobalPts.assign(P.numGlobals(), BitSet(P.numAllocs()));
  R.FieldPts.assign(P.numFields(), BitSet(P.numAllocs()));
  R.ReachableProcs.assign(P.numProcs(), false);

  // Call-graph reachability from main. Invoke targets are direct, so this
  // is a plain graph reachability pass.
  assert(P.main().isValid() && "program has no entry procedure");
  std::deque<ProcId> Work{P.main()};
  R.ReachableProcs[P.main().index()] = true;
  while (!Work.empty()) {
    ProcId Proc = Work.front();
    Work.pop_front();
    std::vector<CommandId> Cmds;
    if (P.proc(Proc).Body.isValid())
      collectCommands(P, P.proc(Proc).Body, Cmds);
    for (CommandId C : Cmds) {
      R.ReachableCmds.push_back(C);
      const Command &Cmd = P.command(C);
      if (Cmd.Kind == CmdKind::Invoke &&
          !R.ReachableProcs[Cmd.Callee.index()]) {
        R.ReachableProcs[Cmd.Callee.index()] = true;
        Work.push_back(Cmd.Callee);
      }
    }
  }

  // Subset-constraint fixpoint over reachable commands. The command set is
  // small enough that round-robin iteration is simpler and fast enough.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (CommandId C : R.ReachableCmds) {
      const Command &Cmd = P.command(C);
      switch (Cmd.Kind) {
      case CmdKind::New:
        if (!R.VarPts[Cmd.Dst.index()].test(Cmd.Alloc.index())) {
          R.VarPts[Cmd.Dst.index()].set(Cmd.Alloc.index());
          Changed = true;
        }
        break;
      case CmdKind::Copy:
        Changed |=
            R.VarPts[Cmd.Dst.index()].unionWith(R.VarPts[Cmd.Src.index()]);
        break;
      case CmdKind::LoadGlobal:
        Changed |= R.VarPts[Cmd.Dst.index()].unionWith(
            R.GlobalPts[Cmd.Global.index()]);
        break;
      case CmdKind::StoreGlobal:
        Changed |= R.GlobalPts[Cmd.Global.index()].unionWith(
            R.VarPts[Cmd.Src.index()]);
        break;
      case CmdKind::LoadField:
        // Field-based: v = w.f reads the merged f summary when w may point
        // anywhere at all.
        if (R.VarPts[Cmd.Src.index()].any())
          Changed |= R.VarPts[Cmd.Dst.index()].unionWith(
              R.FieldPts[Cmd.Field.index()]);
        break;
      case CmdKind::StoreField:
        if (R.VarPts[Cmd.Dst.index()].any())
          Changed |= R.FieldPts[Cmd.Field.index()].unionWith(
              R.VarPts[Cmd.Src.index()]);
        break;
      case CmdKind::Null:
      case CmdKind::Assume:
      case CmdKind::MethodCall:
      case CmdKind::Invoke:
      case CmdKind::Check:
        break;
      }
    }
  }
  return R;
}

} // namespace pointer
} // namespace optabs
