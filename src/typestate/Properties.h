//===- Properties.h - Canonical type-state properties ----------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small library of classic type-state properties (the kind Fink et
/// al.'s verifier - the paper's reference [7] - ships with), expressed as
/// TypestateSpec automata over a program's method names. Each builder
/// interns the methods it needs into the program.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TYPESTATE_PROPERTIES_H
#define OPTABS_TYPESTATE_PROPERTIES_H

#include "typestate/Typestate.h"

namespace optabs {
namespace typestate {

/// File discipline (the paper's Figure 1): closed <-> opened via
/// open()/close(); re-opening or re-closing errs. Initial state "closed".
TypestateSpec makeFileProperty(ir::Program &P);

/// Iterator discipline: next() is only legal after hasNext(); calling
/// next() in the initial/consumed state errs. States: "unknown" (init),
/// "ready". hasNext: unknown->ready, ready->ready; next: ready->unknown,
/// unknown->ERR.
TypestateSpec makeIteratorProperty(ir::Program &P);

/// Socket discipline: connect() before send()/recv(), close() ends the
/// session; send/recv after close or before connect errs, double connect
/// errs. States: "fresh" (init), "connected", "closed".
TypestateSpec makeSocketProperty(ir::Program &P);

/// Resource handle: acquire() then release(), strictly alternating;
/// double acquire or release-without-acquire errs. States: "idle" (init),
/// "held".
TypestateSpec makeResourceProperty(ir::Program &P);

} // namespace typestate
} // namespace optabs

#endif // OPTABS_TYPESTATE_PROPERTIES_H
