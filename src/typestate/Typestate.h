//===- Typestate.h - Parametric type-state analysis ------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parametric type-state analysis of §3.2 / Figure 4 together with its
/// backward meta-analysis (Figures 9/10), packaged as an Analysis bundle
/// for the generic forward engine, backward engine and TRACER driver.
///
/// The analysis tracks a single allocation site h per instance. Abstract
/// states are (ts, vs) or TOP: ts over-approximates the possible
/// type-states of objects allocated at h, vs is a must-alias set of
/// variables definitely pointing to the most recent such object, and TOP
/// records a detected type-state error. The abstraction p (a subset of the
/// program's variables, cost |p|) bounds which variables may appear in vs.
///
/// Method-call semantics comes from a TypestateSpec, which is either
///  - an automaton: [m] : T -> T u {TOP} per method (e.g. File open/close,
///    Figure 1), unknown methods leaving the state unchanged; or
///  - the paper's "fictitious" stress property (§6): any call v.m() with v
///    may-aliasing the tracked site but absent from the must-alias set
///    drives the state to TOP, so the property precisely detects must-alias
///    precision loss.
/// A call whose receiver cannot point to the tracked site (per the 0-CFA
/// may-points-to substrate) never affects the state, in both modes.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TYPESTATE_TYPESTATE_H
#define OPTABS_TYPESTATE_TYPESTATE_H

#include "formula/Formula.h"
#include "formula/Normalize.h"
#include "ir/Program.h"
#include "pointer/PointsTo.h"
#include "support/BitSet.h"

#include <optional>
#include <string>
#include <vector>

namespace optabs {
namespace typestate {

/// A type-state property. State 0 is always `init`.
class TypestateSpec {
public:
  static constexpr uint32_t MaxStates = 30;

  /// Creates an automaton-mode spec whose initial state is named \p
  /// InitName ("init" by default; Figure 1 uses "closed").
  explicit TypestateSpec(const std::string &InitName = "init");

  /// Creates the §6 stress property: two conceptual states (init and the
  /// error TOP); any weakly-updated call errs.
  static TypestateSpec stress();

  /// Interns a type-state; returns its dense id (init is 0).
  uint32_t addState(const std::string &Name);

  /// Declares [m](From) = To.
  void addTransition(ir::MethodId M, uint32_t From, uint32_t To);
  /// Declares [m](From) = TOP (a type-state error).
  void addErrorTransition(ir::MethodId M, uint32_t From);

  bool isStress() const { return Stress; }
  uint32_t numStates() const {
    return static_cast<uint32_t>(StateNames.size());
  }
  const std::string &stateName(uint32_t S) const { return StateNames[S]; }
  /// Looks up a state by name; nullopt if unknown.
  std::optional<uint32_t> findState(const std::string &Name) const;

  /// [m](S): the successor state, or nullopt for TOP. Methods without a
  /// declared transition leave the state unchanged.
  std::optional<uint32_t> apply(ir::MethodId M, uint32_t S) const;

private:
  bool Stress = false;
  std::vector<std::string> StateNames;
  /// (method, from) -> successor; SuccTop marks TOP.
  static constexpr uint32_t SuccTop = UINT32_MAX;
  std::vector<std::pair<uint64_t, uint32_t>> Transitions; // sorted on demand
  std::optional<uint32_t> lookup(ir::MethodId M, uint32_t S) const;
};

/// Abstract state d in D = (2^T x 2^V) u {TOP} (Figure 4).
struct AbsState {
  bool Top = false;
  uint32_t Ts = 0;              ///< bitset over spec states (<= MaxStates)
  std::vector<uint32_t> Vs;     ///< sorted variable indices (subset of p)

  friend bool operator==(const AbsState &A, const AbsState &B) {
    return A.Top == B.Top && A.Ts == B.Ts && A.Vs == B.Vs;
  }
  friend bool operator<(const AbsState &A, const AbsState &B) {
    if (A.Top != B.Top)
      return A.Top < B.Top;
    if (A.Ts != B.Ts)
      return A.Ts < B.Ts;
    return A.Vs < B.Vs;
  }
};

/// The abstraction p: the set of variables the analysis may track in
/// must-alias sets. Cost = |p| (the paper's preorder).
struct TsParam {
  BitSet Tracked;
};

/// The full Analysis bundle for one tracked allocation site. See
/// tracer/QueryDriver.h for the interface contract.
class TypestateAnalysis {
public:
  using Param = TsParam;
  using State = AbsState;

  struct StateHash {
    size_t operator()(const AbsState &S) const {
      uint64_t H = S.Top ? 0x9e3779b97f4a7c15ULL : 0x85ebca6b0f4a7c15ULL;
      H = (H ^ S.Ts) * 0xff51afd7ed558ccdULL;
      for (uint32_t V : S.Vs)
        H = (H ^ V) * 0xc4ceb9fe1a85ec53ULL;
      return static_cast<size_t>(H ^ (H >> 33));
    }
  };

  /// \p Tracked is the allocation site this instance tracks; \p Pt supplies
  /// the may-alias oracle; both must outlive the analysis.
  TypestateAnalysis(const ir::Program &P, const TypestateSpec &Spec,
                    ir::AllocId Tracked, const pointer::PointsToResult &Pt);

  //===--- forward ---------------------------------------------------------===
  State initialState() const;
  State transfer(const ir::Command &Cmd, const State &In,
                 const Param &Prm) const;

  /// Forgets dead variables (optional engine hook, see dataflow/Forward.h):
  /// drops must-alias entries outside \p Live. Ts and Top are not
  /// variable-indexed and stay untouched.
  void pruneState(State &S, const BitSet &Live) const {
    size_t W = 0;
    for (uint32_t V : S.Vs)
      if (V < Live.size() && Live.test(V))
        S.Vs[W++] = V;
    S.Vs.resize(W);
  }

  //===--- queries ---------------------------------------------------------===
  /// Failure condition not(q) for a check(v, allowed): err or any
  /// disallowed type-state reachable. In stress mode (or without payload):
  /// err alone.
  formula::Dnf notQ(ir::CheckId Check) const;

  //===--- backward meta-analysis ------------------------------------------===
  formula::Formula wpAtom(const ir::Command &Cmd, formula::AtomId A) const;
  bool evalAtom(formula::AtomId A, const Param &Prm, const State &D) const;
  bool isParamAtom(formula::AtomId A) const;
  std::string atomName(formula::AtomId A) const;

  /// Semantic normalization hooks (Figure 9's domain): err excludes every
  /// var/type atom, since those describe non-TOP states. There are no
  /// multi-valued locations in this domain.
  std::optional<formula::LocationInfo> atomLocation(formula::AtomId) const {
    return std::nullopt;
  }
  std::optional<formula::Cube> refineCube(const formula::Cube &C) const;

  //===--- parameter codec --------------------------------------------------===
  uint32_t numParamBits() const { return P.numVars(); }
  std::pair<uint32_t, bool> decodeParamAtom(formula::AtomId A) const;
  Param paramFromBits(const std::vector<bool> &Bits) const;
  uint32_t paramCost(const Param &Prm) const {
    return static_cast<uint32_t>(Prm.Tracked.count());
  }
  std::string paramToString(const Param &Prm) const;

  //===--- atom constructors (public for tests and examples) ----------------===
  static formula::AtomId atomErr() { return 0; }
  static formula::AtomId atomParam(ir::VarId X) {
    return (X.index() << 2) | 1;
  }
  static formula::AtomId atomVar(ir::VarId X) { return (X.index() << 2) | 2; }
  static formula::AtomId atomType(uint32_t S) { return (S << 2) | 3; }

  ir::AllocId trackedSite() const { return Tracked; }
  const TypestateSpec &spec() const { return Spec; }

private:
  bool mayAffect(ir::VarId Receiver) const {
    return Pt.mayPoint(Receiver, Tracked);
  }

  const ir::Program &P;
  const TypestateSpec &Spec;
  ir::AllocId Tracked;
  const pointer::PointsToResult &Pt;
};

} // namespace typestate
} // namespace optabs

#endif // OPTABS_TYPESTATE_TYPESTATE_H
