//===- Typestate.cpp - Parametric type-state analysis -----------------------===//

#include "typestate/Typestate.h"

#include <algorithm>

namespace optabs {
namespace typestate {

using namespace ir;
using formula::AtomId;
using formula::Dnf;
using formula::Formula;

//===----------------------------------------------------------------------===//
// TypestateSpec
//===----------------------------------------------------------------------===//

TypestateSpec::TypestateSpec(const std::string &InitName) {
  StateNames.push_back(InitName);
}

TypestateSpec TypestateSpec::stress() {
  TypestateSpec Spec("init");
  Spec.Stress = true;
  return Spec;
}

uint32_t TypestateSpec::addState(const std::string &Name) {
  for (uint32_t I = 0; I < StateNames.size(); ++I)
    if (StateNames[I] == Name)
      return I;
  assert(StateNames.size() < MaxStates && "too many type-states");
  StateNames.push_back(Name);
  return static_cast<uint32_t>(StateNames.size() - 1);
}

void TypestateSpec::addTransition(MethodId M, uint32_t From, uint32_t To) {
  assert(From < numStates() && To < numStates());
  assert(!lookup(M, From) && "duplicate transition");
  Transitions.push_back(
      {(static_cast<uint64_t>(M.index()) << 32) | From, To});
}

void TypestateSpec::addErrorTransition(MethodId M, uint32_t From) {
  assert(From < numStates());
  assert(!lookup(M, From) && "duplicate transition");
  Transitions.push_back(
      {(static_cast<uint64_t>(M.index()) << 32) | From, SuccTop});
}

std::optional<uint32_t> TypestateSpec::findState(
    const std::string &Name) const {
  for (uint32_t I = 0; I < StateNames.size(); ++I)
    if (StateNames[I] == Name)
      return I;
  return std::nullopt;
}

std::optional<uint32_t> TypestateSpec::lookup(MethodId M, uint32_t S) const {
  uint64_t Key = (static_cast<uint64_t>(M.index()) << 32) | S;
  for (const auto &[K, To] : Transitions)
    if (K == Key)
      return To;
  return std::nullopt;
}

std::optional<uint32_t> TypestateSpec::apply(MethodId M, uint32_t S) const {
  assert(!Stress && "stress mode has no automaton");
  if (auto To = lookup(M, S))
    return *To == SuccTop ? std::nullopt : std::optional<uint32_t>(*To);
  return S; // undeclared methods leave the type-state unchanged
}

//===----------------------------------------------------------------------===//
// Forward analysis (Figure 4 + may-alias refinement)
//===----------------------------------------------------------------------===//

TypestateAnalysis::TypestateAnalysis(const Program &P,
                                     const TypestateSpec &Spec,
                                     AllocId Tracked,
                                     const pointer::PointsToResult &Pt)
    : P(P), Spec(Spec), Tracked(Tracked), Pt(Pt) {
  assert(Spec.numStates() <= TypestateSpec::MaxStates);
}

AbsState TypestateAnalysis::initialState() const {
  AbsState D;
  D.Ts = 1; // { init }
  return D;
}

namespace {

bool vsContains(const std::vector<uint32_t> &Vs, VarId X) {
  return std::binary_search(Vs.begin(), Vs.end(), X.index());
}

void vsRemove(std::vector<uint32_t> &Vs, VarId X) {
  auto It = std::lower_bound(Vs.begin(), Vs.end(), X.index());
  if (It != Vs.end() && *It == X.index())
    Vs.erase(It);
}

void vsInsert(std::vector<uint32_t> &Vs, VarId X) {
  auto It = std::lower_bound(Vs.begin(), Vs.end(), X.index());
  if (It == Vs.end() || *It != X.index())
    Vs.insert(It, X.index());
}

AbsState topState() {
  AbsState D;
  D.Top = true;
  return D;
}

} // namespace

AbsState TypestateAnalysis::transfer(const Command &Cmd, const AbsState &In,
                                     const Param &Prm) const {
  if (In.Top)
    return In; // TOP is absorbing
  AbsState Out = In;
  switch (Cmd.Kind) {
  case CmdKind::Assume:
  case CmdKind::Check:
  case CmdKind::StoreGlobal:
  case CmdKind::StoreField:
    return In; // object state and aliasing of locals unaffected
  case CmdKind::New:
    if (Cmd.Alloc == Tracked) {
      // A fresh object starts in init; earlier must-aliases pointed to the
      // previous object and are dropped. Dst joins vs only if tracked by p.
      Out.Ts = In.Ts | 1u;
      Out.Vs.clear();
      if (Prm.Tracked.test(Cmd.Dst.index()))
        Out.Vs.push_back(Cmd.Dst.index());
    } else {
      vsRemove(Out.Vs, Cmd.Dst); // Dst now points elsewhere
    }
    return Out;
  case CmdKind::Copy:
    if (vsContains(In.Vs, Cmd.Src) && Prm.Tracked.test(Cmd.Dst.index()))
      vsInsert(Out.Vs, Cmd.Dst);
    else
      vsRemove(Out.Vs, Cmd.Dst);
    return Out;
  case CmdKind::Null:
  case CmdKind::LoadGlobal:
  case CmdKind::LoadField:
    // Dst may no longer point to the tracked object (loads are handled
    // conservatively: the must-alias set only shrinks).
    vsRemove(Out.Vs, Cmd.Dst);
    return Out;
  case CmdKind::MethodCall: {
    if (!mayAffect(Cmd.Dst))
      return In; // receiver cannot point to the tracked site
    bool Must = vsContains(In.Vs, Cmd.Dst);
    if (Spec.isStress())
      return Must ? In : topState();
    uint32_t Image = 0;
    for (uint32_t S = 0; S < Spec.numStates(); ++S) {
      if (!(In.Ts & (1u << S)))
        continue;
      auto Next = Spec.apply(Cmd.Method, S);
      if (!Next)
        return topState(); // some possible state errs on this call
      Image |= 1u << *Next;
    }
    Out.Ts = Must ? Image : (In.Ts | Image); // strong vs. weak update
    return Out;
  }
  case CmdKind::Invoke:
    break;
  }
  assert(false && "Invoke must be expanded by the engine");
  return In;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

Dnf TypestateAnalysis::notQ(CheckId Check) const {
  std::vector<formula::Cube> Cubes;
  auto AddLit = [&](AtomId A) {
    Cubes.push_back(*formula::Cube::make({formula::Lit::pos(A)}));
  };
  AddLit(atomErr());
  const CheckSite &Site = P.checkSite(Check);
  if (!Spec.isStress() && Site.Payload.isValid()) {
    auto Allowed = Spec.findState(P.symbolName(Site.Payload));
    assert(Allowed && "check payload names an unknown type-state");
    for (uint32_t S = 0; S < Spec.numStates(); ++S)
      if (S != *Allowed)
        AddLit(atomType(S));
  }
  return Dnf::fromCubes(std::move(Cubes));
}

//===----------------------------------------------------------------------===//
// Backward meta-analysis (Figures 9/10)
//===----------------------------------------------------------------------===//

namespace {
enum AtomKind { KErr = 0, KParam = 1, KVar = 2, KType = 3 };
}

formula::Formula TypestateAnalysis::wpAtom(const Command &Cmd,
                                           AtomId A) const {
  unsigned Kind = A & 3;
  uint32_t Payload = A >> 2;
  Formula Same = Formula::atom(A);

  // param(z) is untouched by every command (p never changes mid-run).
  if (Kind == KParam)
    return Same;

  switch (Cmd.Kind) {
  case CmdKind::Assume:
  case CmdKind::Check:
  case CmdKind::StoreGlobal:
  case CmdKind::StoreField:
    return Same;

  case CmdKind::New:
    if (Cmd.Alloc == Tracked) {
      if (Kind == KErr)
        return Same;
      if (Kind == KVar) {
        // vs' = {Dst} ^ p: only Dst can be in vs', and only if tracked.
        if (Payload != Cmd.Dst.index())
          return Formula::constant(false);
        return Formula::conj(
            {Formula::negAtom(atomErr()), Formula::atom(atomParam(Cmd.Dst))});
      }
      // ts' = ts u {init}: init is present whenever pre is non-TOP.
      if (Payload == 0)
        return Formula::negAtom(atomErr());
      return Same;
    }
    // Untracked allocation behaves like Dst = null.
    [[fallthrough]];
  case CmdKind::Null:
  case CmdKind::LoadGlobal:
  case CmdKind::LoadField:
    if (Kind == KVar && Payload == Cmd.Dst.index())
      return Formula::constant(false);
    return Same;

  case CmdKind::Copy:
    if (Kind == KVar && Payload == Cmd.Dst.index()) {
      // Dst in vs' iff Src was in vs and Dst is tracked by p (Figure 10).
      return Formula::conj({Formula::atom(atomVar(Cmd.Src)),
                            Formula::atom(atomParam(Cmd.Dst))});
    }
    return Same;

  case CmdKind::MethodCall: {
    if (!mayAffect(Cmd.Dst))
      return Same;
    if (Spec.isStress()) {
      // d' = d if Dst in vs, TOP otherwise.
      if (Kind == KErr)
        return Formula::disj({Same, Formula::negAtom(atomVar(Cmd.Dst))});
      return Formula::conj({Formula::atom(atomVar(Cmd.Dst)), Same});
    }
    // Automaton mode. Pre-states with an error transition reach TOP.
    std::vector<Formula> ErrSources;
    for (uint32_t S = 0; S < Spec.numStates(); ++S)
      if ((Cmd.Method.isValid()) && !Spec.apply(Cmd.Method, S))
        ErrSources.push_back(Formula::atom(atomType(S)));
    if (Kind == KErr)
      return Formula::disj(
          {Same, Formula::disj(std::vector<Formula>(ErrSources))});
    std::vector<Formula> NoErr;
    for (const Formula &F : ErrSources)
      NoErr.push_back(Formula::negate(F));
    if (Kind == KVar)
      return Formula::conj(
          {Same, Formula::conj(std::vector<Formula>(NoErr))});
    // type(s'): either some pre-state maps to s', or the update was weak
    // (receiver not in vs) and s' was already present (Figure 10).
    std::vector<Formula> Producers;
    for (uint32_t S = 0; S < Spec.numStates(); ++S)
      if (Spec.apply(Cmd.Method, S) == std::optional<uint32_t>(Payload))
        Producers.push_back(Formula::atom(atomType(S)));
    Formula Weak =
        Formula::conj({Formula::negAtom(atomVar(Cmd.Dst)), Same});
    return Formula::conj(
        {Formula::negAtom(atomErr()), Formula::conj(std::move(NoErr)),
         Formula::disj({Formula::disj(std::move(Producers)), Weak})});
  }

  case CmdKind::Invoke:
    break;
  }
  assert(false && "Invoke must be expanded by the engine");
  return Same;
}

bool TypestateAnalysis::evalAtom(AtomId A, const Param &Prm,
                                 const AbsState &D) const {
  unsigned Kind = A & 3;
  uint32_t Payload = A >> 2;
  switch (Kind) {
  case KErr:
    return D.Top;
  case KParam:
    return Prm.Tracked.test(Payload);
  case KVar:
    return !D.Top && std::binary_search(D.Vs.begin(), D.Vs.end(), Payload);
  case KType:
    return !D.Top && (D.Ts & (1u << Payload));
  }
  return false;
}

bool TypestateAnalysis::isParamAtom(AtomId A) const {
  return (A & 3) == KParam;
}

std::string TypestateAnalysis::atomName(AtomId A) const {
  unsigned Kind = A & 3;
  uint32_t Payload = A >> 2;
  switch (Kind) {
  case KErr:
    return "err";
  case KParam:
    return "param(" + P.varName(VarId(Payload)) + ")";
  case KVar:
    return "var(" + P.varName(VarId(Payload)) + ")";
  case KType:
    return "type(" + Spec.stateName(Payload) + ")";
  }
  return "?";
}

std::optional<optabs::formula::Cube> TypestateAnalysis::refineCube(
    const optabs::formula::Cube &C) const {
  using optabs::formula::Lit;
  bool ErrPos = false;
  bool StatePos = false; // some var(x) or type(s) positively present
  for (Lit L : C.literals()) {
    unsigned Kind = L.atom() & 3;
    if (Kind == KParam)
      continue;
    if (Kind == KErr)
      ErrPos |= !L.isNeg();
    else if (!L.isNeg())
      StatePos = true;
  }
  if (ErrPos && StatePos)
    return std::nullopt; // var/type atoms hold only of non-TOP states
  if (!ErrPos && !StatePos)
    return C;
  std::vector<Lit> Lits;
  for (Lit L : C.literals()) {
    unsigned Kind = L.atom() & 3;
    if (ErrPos && Kind != KErr && Kind != KParam && L.isNeg())
      continue; // err implies !var(x), !type(s)
    if (StatePos && Kind == KErr && L.isNeg())
      continue; // a positive var/type already implies !err
    Lits.push_back(L);
  }
  return optabs::formula::Cube::make(std::move(Lits));
}

std::pair<uint32_t, bool> TypestateAnalysis::decodeParamAtom(
    AtomId A) const {
  assert(isParamAtom(A));
  return {A >> 2, true};
}

TsParam TypestateAnalysis::paramFromBits(const std::vector<bool> &Bits) const {
  TsParam Prm;
  Prm.Tracked = BitSet(P.numVars());
  for (size_t I = 0; I < Bits.size() && I < P.numVars(); ++I)
    if (Bits[I])
      Prm.Tracked.set(I);
  return Prm;
}

std::string TypestateAnalysis::paramToString(const Param &Prm) const {
  std::string S = "{";
  bool First = true;
  Prm.Tracked.forEach([&](size_t I) {
    if (!First)
      S += ",";
    First = false;
    S += P.varName(VarId(static_cast<uint32_t>(I)));
  });
  return S + "}";
}

} // namespace typestate
} // namespace optabs
