//===- Properties.cpp - Canonical type-state properties -----------------------===//

#include "typestate/Properties.h"

namespace optabs {
namespace typestate {

using ir::MethodId;
using ir::Program;

TypestateSpec makeFileProperty(Program &P) {
  TypestateSpec Spec("closed");
  uint32_t Closed = 0;
  uint32_t Opened = Spec.addState("opened");
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  Spec.addTransition(Open, Closed, Opened);
  Spec.addErrorTransition(Open, Opened);
  Spec.addTransition(Close, Opened, Closed);
  Spec.addErrorTransition(Close, Closed);
  return Spec;
}

TypestateSpec makeIteratorProperty(Program &P) {
  TypestateSpec Spec("unknown");
  uint32_t Unknown = 0;
  uint32_t Ready = Spec.addState("ready");
  MethodId HasNext = P.makeMethod("hasNext");
  MethodId Next = P.makeMethod("next");
  Spec.addTransition(HasNext, Unknown, Ready);
  Spec.addTransition(HasNext, Ready, Ready);
  Spec.addTransition(Next, Ready, Unknown);
  Spec.addErrorTransition(Next, Unknown);
  return Spec;
}

TypestateSpec makeSocketProperty(Program &P) {
  TypestateSpec Spec("fresh");
  uint32_t Fresh = 0;
  uint32_t Connected = Spec.addState("connected");
  uint32_t Closed = Spec.addState("closed");
  MethodId Connect = P.makeMethod("connect");
  MethodId Send = P.makeMethod("send");
  MethodId Recv = P.makeMethod("recv");
  MethodId Close = P.makeMethod("close");
  Spec.addTransition(Connect, Fresh, Connected);
  Spec.addErrorTransition(Connect, Connected);
  Spec.addErrorTransition(Connect, Closed);
  for (MethodId M : {Send, Recv}) {
    Spec.addTransition(M, Connected, Connected);
    Spec.addErrorTransition(M, Fresh);
    Spec.addErrorTransition(M, Closed);
  }
  Spec.addTransition(Close, Connected, Closed);
  Spec.addTransition(Close, Fresh, Closed);
  Spec.addErrorTransition(Close, Closed);
  return Spec;
}

TypestateSpec makeResourceProperty(Program &P) {
  TypestateSpec Spec("idle");
  uint32_t Idle = 0;
  uint32_t Held = Spec.addState("held");
  MethodId Acquire = P.makeMethod("acquire");
  MethodId Release = P.makeMethod("release");
  Spec.addTransition(Acquire, Idle, Held);
  Spec.addErrorTransition(Acquire, Held);
  Spec.addTransition(Release, Held, Idle);
  Spec.addErrorTransition(Release, Idle);
  return Spec;
}

} // namespace typestate
} // namespace optabs
