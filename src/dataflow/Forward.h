//===- Forward.h - Generic parametric forward analysis ---------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic parametric (disjunctive) forward dataflow analysis of §3.2 /
/// Figure 3, instantiated over a client analysis:
///
/// \code
///   struct Client {
///     using Param = ...;                 // the abstraction p in P
///     using State = ...;                 // an element d of the finite D
///     struct StateHash { size_t operator()(const State&) const; };
///     // The parameterized transfer function [a]_p : D -> D. Only called
///     // for client commands (never Invoke).
///     State transfer(const ir::Command &Cmd, const State &In,
///                    const Param &P) const;
///     // Optional: forget the variable components outside Live (detected
///     // by SFINAE). When present and the engine is built with a
///     // CommandLiveness, every transfer output is pruned to the command's
///     // live-out variables before interning, so states differing only in
///     // dead variables collapse to one id. Exact for verdicts: a dead
///     // variable is, by construction, never read by any continuation.
///     void pruneState(State &S, const BitSet &Live) const;
///   };
/// \endcode
///
/// The engine computes, on demand from main's body and an initial state,
/// the least solution of
///
///   F_p[a](D)     = { [a]_p(d) | d in D }
///   F_p[s;s'](D)  = F_p[s'](F_p[s](D))
///   F_p[s+s'](D)  = F_p[s](D) u F_p[s'](D)
///   F_p[s*](D)    = leastFix lam D0. D u F_p[s](D0)
///
/// extended with procedure summaries for Invoke commands (the RHS-style
/// tabulation of the paper's implementation: an Invoke is analyzed by
/// tabulating its callee's body per entry state, with chaotic iteration to
/// a global fixpoint, so the analysis is fully context-sensitive).
///
/// Because the analysis is disjunctive, Lemma 1 applies: every abstract
/// state reaching a check site is witnessed by a single trace whose
/// per-command semantics is deterministic. extractTrace() reconstructs such
/// an abstract counterexample trace for the backward meta-analysis.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_DATAFLOW_FORWARD_H
#define OPTABS_DATAFLOW_FORWARD_H

#include "dataflow/StateInterner.h"
#include "ir/Liveness.h"
#include "ir/Program.h"
#include "ir/Trace.h"
#include "support/BitSet.h"
#include "support/Budget.h"
#include "support/Metrics.h"

#include <algorithm>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace optabs {
namespace dataflow {

/// A set of interned states, kept sorted and duplicate-free.
using StateSet = std::vector<StateId>;

/// Statistics of one forward run, reported by the benchmark harnesses.
struct ForwardStats {
  size_t NumStates = 0;   ///< distinct abstract states interned
  size_t NumPairs = 0;    ///< tabulated (statement, entry-state) pairs
  size_t NumVisits = 0;   ///< visit() evaluations across all rounds
  size_t NumRounds = 0;   ///< outer chaotic-iteration rounds
};

namespace detail {
/// True when the client exposes the optional pruneState(State&, BitSet)
/// dead-variable hook (see the file comment).
template <typename ClientT, typename StateT, typename = void>
struct HasPruneState : std::false_type {};
template <typename ClientT, typename StateT>
struct HasPruneState<
    ClientT, StateT,
    std::void_t<decltype(std::declval<const ClientT &>().pruneState(
        std::declval<StateT &>(), std::declval<const BitSet &>()))>>
    : std::true_type {};
} // namespace detail

template <typename Client> class ForwardAnalysis {
public:
  using Param = typename Client::Param;
  using State = typename Client::State;

  /// When \p Live is non-null and the client exposes pruneState, every
  /// transfer output is restricted to the command's live-out variables
  /// before interning. \p Live must outlive the analysis.
  ForwardAnalysis(const ir::Program &P, const Client &C, Param Prm,
                  const ir::CommandLiveness *Live = nullptr)
      : P(P), C(C), Prm(std::move(Prm)), Live(Live) {}

  /// Runs the analysis from \p Init to the global least fixpoint. When
  /// \p G is set, every state visit charges it; an exhausted gate stops the
  /// chaotic iteration at the next visit and leaves the run in a *partial*
  /// under-fixpoint state — exhausted() is then true and the caller must
  /// not classify queries against or cache this run (the table may still
  /// grow, so "no bad state reached" proves nothing). Because visits are
  /// counted by this task alone, the cut point is the same at any worker
  /// count.
  void run(const State &Init, support::BudgetGate *G = nullptr) {
    Gate = G;
    Exhaustion.reset();
    InitId = Interner.intern(Init);
    ir::StmtId Root = P.proc(P.main()).Body;
    do {
      Changed = false;
      ++Round; // invalidates every cell's RoundSeen mark at once
      ++Stats.NumRounds;
      visit(Root, InitId);
    } while (Changed && !Exhaustion);
    Gate = nullptr;
    if (support::metricsEnabled()) {
      auto &Reg = support::MetricRegistry::global();
      static auto &Rounds = Reg.histogram("optabs_forward_fixpoint_rounds");
      static auto &States = Reg.histogram("optabs_forward_states");
      static auto &Visits = Reg.counter("optabs_forward_visits_total");
      Rounds.record(Stats.NumRounds);
      States.record(Interner.size());
      Visits.add(Stats.NumVisits);
    }
  }

  /// True when the last run() was cut short by its budget gate. A run in
  /// this state is a partial under-fixpoint: sound to extract nothing
  /// from, unsound to classify against or cache.
  bool exhausted() const { return Exhaustion.has_value(); }
  const std::optional<support::Exhausted> &exhaustion() const {
    return Exhaustion;
  }

  /// All abstract states reaching check site \p Check (i.e. flowing into
  /// its Check command), across all calling contexts.
  std::vector<State> statesAtCheck(ir::CheckId Check) const {
    std::vector<State> Result;
    for (StateId Id : statesAtCheckIds(Check))
      Result.push_back(Interner.state(Id));
    return Result;
  }

  /// Id-based variant of statesAtCheck(): the sorted interned ids, without
  /// copying any state. Resolve ids with state(). This is what the TRACER
  /// driver iterates every CEGAR iteration; it is read-only and safe to
  /// call concurrently as long as no thread mutates this analysis (trace
  /// extraction and replay mutate).
  const StateSet &statesAtCheckIds(ir::CheckId Check) const {
    static const StateSet Empty;
    auto It = CheckStates.find(Check.index());
    return It == CheckStates.end() ? Empty : It->second;
  }

  /// Reconstructs an abstract counterexample trace from program entry to
  /// check site \p Check along which the analysis computes \p Target at the
  /// check. Invoke commands are expanded into callee steps; the trace
  /// contains only client commands. Returns nullopt only if \p Target does
  /// not actually reach the check (callers pass states from
  /// statesAtCheck(), so a result is guaranteed).
  std::optional<ir::Trace> extractTrace(ir::CheckId Check,
                                        const State &Target) {
    auto Traces = extractTraces(Check, Target, 1);
    if (Traces.empty())
      return std::nullopt;
    return std::move(Traces.front());
  }

  /// Extracts up to \p MaxCount *distinct* counterexample traces for the
  /// same failing state by rotating the exploration order of Choice
  /// branches. Distinct traces expose independent failure causes, which
  /// the multi-counterexample mode of the TRACER driver conjoins (§8's
  /// DAG-counterexample direction).
  std::vector<ir::Trace> extractTraces(ir::CheckId Check,
                                       const State &Target,
                                       size_t MaxCount) {
    std::vector<ir::Trace> Result;
    auto It = CheckStates.find(Check.index());
    if (It == CheckStates.end())
      return Result;
    StateId TargetId = Interner.intern(Target);
    if (!contains(It->second, TargetId))
      return Result;
    ir::CommandId CheckCmd = P.checkSite(Check).Command;
    for (unsigned R = 0; R < 2 * MaxCount + 1 && Result.size() < MaxCount;
         ++R) {
      Rotation = R;
      ir::Trace T;
      PrefixStack.clear();
      ThroughStack.clear();
      if (!findPrefix(P.proc(P.main()).Body, InitId, CheckCmd, TargetId, T))
        break;
      if (std::find(Result.begin(), Result.end(), T) == Result.end())
        Result.push_back(std::move(T));
    }
    Rotation = 0;
    return Result;
  }

  /// Replays \p T from \p Init, returning the state sequence d0..dn with
  /// d0 = Init and d_{i} the state after command i. Used by the backward
  /// meta-analysis, which needs F_p[t](d) at every trace point (Figure 7).
  /// \p IdsOut, when non-null, additionally receives the interned id of
  /// every state in the sequence (same indexing); the trace-segment
  /// detector compares these ids instead of state values.
  std::vector<State> replay(const ir::Trace &T, const State &Init,
                            std::vector<StateId> *IdsOut = nullptr) {
    std::vector<State> States;
    States.reserve(T.size() + 1);
    if (IdsOut) {
      IdsOut->clear();
      IdsOut->reserve(T.size() + 1);
    }
    StateId Cur = Interner.intern(Init);
    States.push_back(Interner.state(Cur));
    if (IdsOut)
      IdsOut->push_back(Cur);
    for (ir::CommandId Cmd : T) {
      Cur = applyCommand(Cmd, Cur);
      States.push_back(Interner.state(Cur));
      if (IdsOut)
        IdsOut->push_back(Cur);
    }
    return States;
  }

  const ForwardStats &stats() const {
    Stats.NumStates = Interner.size();
    Stats.NumPairs = Values.size();
    return Stats;
  }

  const State &state(StateId Id) const { return Interner.state(Id); }

  /// Serializes the complete fixpoint state through \p S, which must
  /// provide u32(uint32_t), u64(uint64_t), and state(const State &). The
  /// encoding is deterministic: interned states are emitted in id order
  /// (so a round-trip preserves every StateId) and the unordered tables
  /// are emitted sorted by key. Exhausted runs are never cached, so
  /// exhaustion state is not part of the format; loadFrom() yields a
  /// non-exhausted run.
  template <typename SinkT> void saveTo(SinkT &S) const {
    S.u64(Round);
    S.u32(static_cast<uint32_t>(Interner.size()));
    for (StateId Id = 0; Id < Interner.size(); ++Id)
      S.state(Interner.state(Id));
    S.u32(InitId);
    auto SortedKeys = [](const auto &Map) {
      std::vector<Key> Keys;
      Keys.reserve(Map.size());
      for (const auto &KV : Map)
        Keys.push_back(KV.first);
      std::sort(Keys.begin(), Keys.end());
      return Keys;
    };
    S.u32(static_cast<uint32_t>(Values.size()));
    for (Key K : SortedKeys(Values)) {
      const StateSet &Set = Values.find(K)->second.Set;
      S.u64(K);
      S.u32(static_cast<uint32_t>(Set.size()));
      for (StateId Id : Set)
        S.u32(Id);
    }
    S.u32(static_cast<uint32_t>(TransferMemo.size()));
    for (Key K : SortedKeys(TransferMemo)) {
      S.u64(K);
      S.u32(TransferMemo.find(K)->second);
    }
    std::vector<uint32_t> Checks;
    Checks.reserve(CheckStates.size());
    for (const auto &KV : CheckStates)
      Checks.push_back(KV.first);
    std::sort(Checks.begin(), Checks.end());
    S.u32(static_cast<uint32_t>(Checks.size()));
    for (uint32_t C : Checks) {
      const StateSet &Set = CheckStates.find(C)->second;
      S.u32(C);
      S.u32(static_cast<uint32_t>(Set.size()));
      for (StateId Id : Set)
        S.u32(Id);
    }
  }

  /// Restores a run saved by saveTo() into this (freshly constructed)
  /// analysis. \p S must provide bool u32(uint32_t&), bool u64(uint64_t&),
  /// bool state(State&), and void fail(const std::string&). Returns false
  /// on any framing or consistency violation - truncated records, state
  /// ids out of range, or duplicate interned states (which would renumber
  /// ids) - leaving a structured reason in the source. A run that fails to
  /// load must be discarded; nothing about it is usable.
  template <typename SourceT> bool loadFrom(SourceT &S) {
    uint32_t NumStates = 0;
    if (!S.u64(Round) || !S.u32(NumStates))
      return false;
    for (uint32_t I = 0; I < NumStates; ++I) {
      State St;
      if (!S.state(St))
        return false;
      if (Interner.intern(St) != I) {
        S.fail("duplicate interned state (ids would renumber)");
        return false;
      }
    }
    auto ValidId = [&](uint32_t Id) { return Id < NumStates; };
    uint32_t Init32 = 0;
    if (!S.u32(Init32))
      return false;
    if (NumStates > 0 && !ValidId(Init32)) {
      S.fail("initial state id out of range");
      return false;
    }
    InitId = Init32;
    auto LoadSet = [&](StateSet &Set) {
      uint32_t N = 0;
      if (!S.u32(N))
        return false;
      // A valid set is strictly increasing ids below NumStates, so its
      // size is bounded by the interned table; a larger claim is damage
      // and must fail before it can drive the reserve below.
      if (N > NumStates) {
        S.fail("state set larger than the interned state table");
        return false;
      }
      Set.clear();
      Set.reserve(N);
      uint32_t Prev = 0;
      for (uint32_t I = 0; I < N; ++I) {
        uint32_t Id = 0;
        if (!S.u32(Id))
          return false;
        if (!ValidId(Id) || (I > 0 && Id <= Prev)) {
          S.fail("state set not a sorted set of valid ids");
          return false;
        }
        Prev = Id;
        Set.push_back(Id);
      }
      return true;
    };
    uint32_t NumValues = 0;
    if (!S.u32(NumValues))
      return false;
    for (uint32_t I = 0; I < NumValues; ++I) {
      uint64_t K = 0;
      if (!S.u64(K))
        return false;
      Cell C;
      if (!LoadSet(C.Set))
        return false;
      Values.emplace(K, std::move(C));
    }
    uint32_t NumMemo = 0;
    if (!S.u32(NumMemo))
      return false;
    for (uint32_t I = 0; I < NumMemo; ++I) {
      uint64_t K = 0;
      uint32_t Out = 0;
      if (!S.u64(K) || !S.u32(Out))
        return false;
      if (!ValidId(Out)) {
        S.fail("transfer memo output id out of range");
        return false;
      }
      TransferMemo.emplace(K, Out);
    }
    uint32_t NumChecks = 0;
    if (!S.u32(NumChecks))
      return false;
    for (uint32_t I = 0; I < NumChecks; ++I) {
      uint32_t C = 0;
      if (!S.u32(C))
        return false;
      if (!LoadSet(CheckStates[C]))
        return false;
    }
    return true;
  }

  /// Approximate heap footprint of this run: interned states plus the
  /// tabulation/memo tables. Feeds the forward-run cache's resident-bytes
  /// gauge; an estimate, not exact accounting.
  size_t approxMemoryBytes() const {
    size_t Bytes = Interner.approxBytes();
    size_t SetBytes = 0;
    for (const auto &KV : Values)
      SetBytes += KV.second.Set.capacity() * sizeof(StateId);
    Bytes += SetBytes + Values.size() * (sizeof(Key) + sizeof(Cell));
    Bytes += TransferMemo.size() * (sizeof(Key) + sizeof(StateId));
    for (const auto &KV : CheckStates)
      Bytes += KV.second.capacity() * sizeof(StateId) + sizeof(KV);
    return Bytes;
  }

private:
  //===--------------------------------------------------------------------===
  // Fixpoint engine
  //===--------------------------------------------------------------------===

  using Key = uint64_t;
  static Key makeKey(ir::StmtId S, StateId In) {
    return (static_cast<uint64_t>(S.index()) << 32) | In;
  }

  /// One tabulation entry: the accumulated value of a (statement, entry)
  /// pair plus the per-round visit mark and recursion flag. One hash lookup
  /// where three (value map, round-mark set, on-stack set) used to be.
  struct Cell {
    StateSet Set;
    uint64_t RoundSeen = 0; ///< Round of the last evaluation (0 = never)
    bool OnStack = false;   ///< currently on the evaluation stack
  };

  /// Applies the client transfer (or expands summaries for Invoke) for a
  /// single command on a single state, memoized.
  StateId applyCommand(ir::CommandId Cmd, StateId In) {
    const ir::Command &Command = P.command(Cmd);
    assert(ir::isClientCommand(Command.Kind) &&
           "Invoke is expanded by the engine, not by transfer functions");
    Key K = (static_cast<uint64_t>(Cmd.index()) << 32) | In;
    auto It = TransferMemo.find(K);
    if (It != TransferMemo.end())
      return It->second;
    State OutState = C.transfer(Command, Interner.state(In), Prm);
    if constexpr (detail::HasPruneState<Client, State>::value) {
      if (Live)
        C.pruneState(OutState, Live->liveOut(Cmd));
    }
    StateId Out = Interner.intern(OutState);
    TransferMemo.emplace(K, Out);
    return Out;
  }

  static void addState(StateSet &Set, StateId Id) {
    auto It = std::lower_bound(Set.begin(), Set.end(), Id);
    if (It == Set.end() || *It != Id)
      Set.insert(It, Id);
  }

  static bool contains(const StateSet &Set, StateId Id) {
    return std::binary_search(Set.begin(), Set.end(), Id);
  }

  /// Evaluates F_p[S]({In}) under the current table, updating the table
  /// monotonically. Within one outer round each key is evaluated once;
  /// recursion through Invoke is broken by returning the current value for
  /// keys already on the evaluation stack, with the outer rounds restoring
  /// the fixpoint.
  const StateSet &visit(ir::StmtId S, StateId In) {
    Key K = makeKey(S, In);
    auto [ValueIt, Inserted] = Values.try_emplace(K);
    Cell &Slot = ValueIt->second;
    if (!Inserted && (Slot.RoundSeen == Round || Slot.OnStack))
      return Slot.Set;
    if (Gate && !Gate->charge()) {
      // Budget exhausted: refuse the evaluation (the key stays unmarked and
      // NumVisits unbumped) and return the stored value so the recursion
      // unwinds quickly — every enclosing Seq/Star loop sees a stable value
      // and the outer loop stops on the Exhaustion flag.
      Exhaustion = Gate->why();
      return Slot.Set;
    }
    Slot.RoundSeen = Round;
    Slot.OnStack = true;
    ++Stats.NumVisits;

    StateSet Fresh = evaluate(S, In);

    // evaluate() visits other keys and may rehash Values: re-find the cell
    // instead of trusting Slot.
    Cell &Stored = Values.find(K)->second;
    Stored.OnStack = false;
    for (StateId Id : Fresh) {
      if (!contains(Stored.Set, Id)) {
        addState(Stored.Set, Id);
        Changed = true;
      }
    }
    return Stored.Set;
  }

  StateSet evaluate(ir::StmtId S, StateId In) {
    const ir::Stmt &Node = P.stmt(S);
    switch (Node.Kind) {
    case ir::StmtKind::Atom: {
      const ir::Command &Cmd = P.command(Node.Cmd);
      if (Cmd.Kind == ir::CmdKind::Invoke) {
        // Tabulate the callee: F_p[invoke q]({In}) = F_p[body(q)]({In}).
        return visit(P.proc(Cmd.Callee).Body, In);
      }
      if (Cmd.Kind == ir::CmdKind::Check)
        addState(CheckStates[Cmd.Check.index()], In);
      return {applyCommand(Node.Cmd, In)};
    }
    case ir::StmtKind::Seq: {
      StateSet Cur{In};
      for (ir::StmtId Child : Node.Children) {
        StateSet Next;
        for (StateId Id : Cur)
          for (StateId Out : visit(Child, Id))
            addState(Next, Out);
        Cur = std::move(Next);
        if (Cur.empty())
          break;
      }
      return Cur;
    }
    case ir::StmtKind::Choice: {
      StateSet Result;
      for (ir::StmtId Child : Node.Children)
        for (StateId Out : visit(Child, In))
          addState(Result, Out);
      return Result;
    }
    case ir::StmtKind::Star: {
      // leastFix lam D0. {In} u F_p[child](D0), iterated locally; stale
      // child values within this round are repaired by the outer rounds.
      StateSet D{In};
      bool Grew = true;
      while (Grew) {
        Grew = false;
        StateSet Snapshot = D;
        for (StateId Id : Snapshot) {
          for (StateId Out : visit(Node.Children[0], Id)) {
            if (!contains(D, Out)) {
              addState(D, Out);
              Grew = true;
            }
          }
        }
      }
      return D;
    }
    }
    return {};
  }

  //===--------------------------------------------------------------------===
  // Witness (abstract counterexample trace) reconstruction
  //===--------------------------------------------------------------------===

  /// Final tabulated value for (S, In); empty set when never demanded.
  const StateSet &finalValue(ir::StmtId S, StateId In) const {
    static const StateSet Empty;
    auto It = Values.find(makeKey(S, In));
    return It == Values.end() ? Empty : It->second.Set;
  }

  struct TripleHash {
    size_t operator()(const std::tuple<uint32_t, StateId, StateId> &T) const {
      auto [A, B, C] = T;
      uint64_t X = (static_cast<uint64_t>(A) << 32) ^
                   (static_cast<uint64_t>(B) << 16) ^ C;
      X *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(X ^ (X >> 29));
    }
  };

  /// Finds a full trace through S transforming In to Out. Completeness
  /// relies on minimal derivations never repeating a (S, In, Out) triple on
  /// one derivation path, so such repetitions are pruned.
  bool findThrough(ir::StmtId S, StateId In, StateId Out, ir::Trace &T) {
    std::tuple<uint32_t, StateId, StateId> Trip{S.index(), In, Out};
    if (ThroughStack.count(Trip))
      return false;
    if (!contains(finalValue(S, In), Out))
      return false;
    ThroughStack.insert(Trip);
    bool Found = findThroughImpl(S, In, Out, T);
    ThroughStack.erase(Trip);
    return Found;
  }

  bool findThroughImpl(ir::StmtId S, StateId In, StateId Out, ir::Trace &T) {
    const ir::Stmt &Node = P.stmt(S);
    switch (Node.Kind) {
    case ir::StmtKind::Atom: {
      const ir::Command &Cmd = P.command(Node.Cmd);
      if (Cmd.Kind == ir::CmdKind::Invoke)
        return findThrough(P.proc(Cmd.Callee).Body, In, Out, T);
      if (applyCommand(Node.Cmd, In) != Out)
        return false;
      T.push_back(Node.Cmd);
      return true;
    }
    case ir::StmtKind::Seq:
      return findThroughSeq(Node.Children, 0, Node.Children.size(), In, Out,
                            T);
    case ir::StmtKind::Choice: {
      size_t N = Node.Children.size();
      for (size_t J = 0; J < N; ++J) {
        ir::StmtId Child = Node.Children[(J + Rotation) % N];
        size_t Mark = T.size();
        if (findThrough(Child, In, Out, T))
          return true;
        T.resize(Mark);
      }
      return false;
    }
    case ir::StmtKind::Star: {
      StateSet OnPath{In};
      return starSearch(Node.Children[0], In, Out, OnPath, T);
    }
    }
    return false;
  }

  /// DFS over the one-iteration successor relation of a star body: finds a
  /// simple path of states In = s0 -> s1 -> ... -> Out (each step one full
  /// body execution) and expands each step with findThrough. A witness over
  /// a simple state path always exists when Out is star-reachable from In,
  /// because repeated states can be excised from any witness.
  bool starSearch(ir::StmtId Body, StateId Cur, StateId Out,
                  StateSet &OnPath, ir::Trace &T) {
    if (Cur == Out)
      return true;
    for (StateId Succ : finalValue(Body, Cur)) {
      if (contains(OnPath, Succ))
        continue;
      size_t Mark = T.size();
      if (findThrough(Body, Cur, Succ, T)) {
        addState(OnPath, Succ);
        if (starSearch(Body, Succ, Out, OnPath, T))
          return true;
        // Keep Succ on the path for this search: a different route through
        // it cannot reach Out either (reachability is route-independent).
      }
      T.resize(Mark);
    }
    return false;
  }

  bool findThroughSeq(const std::vector<ir::StmtId> &Children, size_t Begin,
                      size_t End, StateId In, StateId Out, ir::Trace &T) {
    if (Begin == End)
      return In == Out;
    // Forward-propagate reachable sets to prune the backward choice.
    std::vector<StateSet> Reach;
    Reach.push_back({In});
    for (size_t I = Begin; I < End; ++I) {
      StateSet Next;
      for (StateId Id : Reach.back())
        for (StateId Succ : finalValue(Children[I], Id))
          addState(Next, Succ);
      Reach.push_back(std::move(Next));
    }
    if (!contains(Reach.back(), Out))
      return false;
    return findThroughSeqRec(Children, Begin, End, Reach, Out, T);
  }

  /// Recurses on the last child of the (sub-)sequence: chooses an
  /// intermediate state X before it, solves the shorter prefix first (so
  /// the trace is emitted left-to-right), then expands the last child.
  /// Backtracks over candidate X on failure.
  bool findThroughSeqRec(const std::vector<ir::StmtId> &Children,
                         size_t Begin, size_t End,
                         const std::vector<StateSet> &Reach, StateId Out,
                         ir::Trace &T) {
    size_t N = End - Begin;
    if (N == 0)
      return Out == Reach[0][0];
    ir::StmtId Last = Children[End - 1];
    for (StateId X : Reach[N - 1]) {
      if (!contains(finalValue(Last, X), Out))
        continue;
      size_t Mark = T.size();
      if (findThroughSeqRec(Children, Begin, End - 1, Reach, X, T) &&
          findThrough(Last, X, Out, T))
        return true;
      T.resize(Mark);
    }
    return false;
  }

  /// Finds a trace prefix through S from In that ends exactly at CheckCmd
  /// with incoming state Target.
  bool findPrefix(ir::StmtId S, StateId In, ir::CommandId CheckCmd,
                  StateId Target, ir::Trace &T) {
    std::tuple<uint32_t, StateId, StateId> Trip{S.index(), In, Target};
    if (PrefixStack.count(Trip))
      return false;
    PrefixStack.insert(Trip);
    bool Found = findPrefixImpl(S, In, CheckCmd, Target, T);
    PrefixStack.erase(Trip);
    return Found;
  }

  bool findPrefixImpl(ir::StmtId S, StateId In, ir::CommandId CheckCmd,
                      StateId Target, ir::Trace &T) {
    const ir::Stmt &Node = P.stmt(S);
    switch (Node.Kind) {
    case ir::StmtKind::Atom: {
      const ir::Command &Cmd = P.command(Node.Cmd);
      if (Node.Cmd == CheckCmd)
        return In == Target;
      if (Cmd.Kind == ir::CmdKind::Invoke)
        return findPrefix(P.proc(Cmd.Callee).Body, In, CheckCmd, Target, T);
      return false;
    }
    case ir::StmtKind::Seq: {
      // The check lies inside child I; the trace passes fully through
      // children [0, I) and then a prefix of child I.
      std::vector<StateSet> Reach;
      Reach.push_back({In});
      for (size_t I = 0; I < Node.Children.size(); ++I) {
        StateSet Next;
        for (StateId Id : Reach.back())
          for (StateId Succ : finalValue(Node.Children[I], Id))
            addState(Next, Succ);
        Reach.push_back(std::move(Next));
      }
      for (size_t I = 0; I < Node.Children.size(); ++I) {
        for (StateId X : Reach[I]) {
          // Probe the cheap leg first: whether the check (with state
          // Target) is reachable from X inside child I. Only the winning
          // candidate pays for the full witness of the children before I.
          // The accepted (I, X) pair is the first for which both legs
          // succeed - the same pair the through-first order accepts - and
          // both legs emit their subtraces deterministically, so the
          // resulting trace is unchanged.
          ir::Trace Suffix;
          if (!findPrefix(Node.Children[I], X, CheckCmd, Target, Suffix))
            continue;
          size_t Mark = T.size();
          if (!findThroughSeq(Node.Children, 0, I, In, X, T)) {
            T.resize(Mark);
            continue;
          }
          T.insert(T.end(), Suffix.begin(), Suffix.end());
          return true;
        }
      }
      return false;
    }
    case ir::StmtKind::Choice: {
      size_t N = Node.Children.size();
      for (size_t J = 0; J < N; ++J) {
        ir::StmtId Child = Node.Children[(J + Rotation) % N];
        size_t Mark = T.size();
        if (findPrefix(Child, In, CheckCmd, Target, T))
          return true;
        T.resize(Mark);
      }
      return false;
    }
    case ir::StmtKind::Star: {
      // The check occurs within some iteration: reach X via the star, then
      // take a prefix of the body from X.
      StateSet Reachable{In};
      bool Grew = true;
      while (Grew) {
        Grew = false;
        StateSet Snapshot = Reachable;
        for (StateId Id : Snapshot)
          for (StateId Succ : finalValue(Node.Children[0], Id))
            if (!contains(Reachable, Succ)) {
              addState(Reachable, Succ);
              Grew = true;
            }
      }
      for (StateId X : Reachable) {
        size_t Mark = T.size();
        StateSet OnPath{In};
        if (starSearch(Node.Children[0], In, X, OnPath, T) &&
            findPrefix(Node.Children[0], X, CheckCmd, Target, T))
          return true;
        T.resize(Mark);
      }
      return false;
    }
    }
    return false;
  }

  const ir::Program &P;
  const Client &C;
  Param Prm;
  const ir::CommandLiveness *Live = nullptr;

  StateInterner<State, typename Client::StateHash> Interner;
  StateId InitId = 0;

  std::unordered_map<Key, Cell> Values;
  std::unordered_map<Key, StateId> TransferMemo;
  std::unordered_map<uint32_t, StateSet> CheckStates;
  uint64_t Round = 0;
  bool Changed = false;
  support::BudgetGate *Gate = nullptr;
  std::optional<support::Exhausted> Exhaustion;

  std::unordered_set<std::tuple<uint32_t, StateId, StateId>, TripleHash>
      PrefixStack, ThroughStack;
  unsigned Rotation = 0;

  mutable ForwardStats Stats;
};

} // namespace dataflow
} // namespace optabs

#endif // OPTABS_DATAFLOW_FORWARD_H
