//===- StateInterner.h - Hash-consing of abstract states -------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns abstract states to dense 32-bit ids so the disjunctive forward
/// analysis can represent sets of states as sorted id vectors and compare
/// states by id.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_DATAFLOW_STATEINTERNER_H
#define OPTABS_DATAFLOW_STATEINTERNER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace optabs {
namespace dataflow {

/// A dense id for an interned abstract state.
using StateId = uint32_t;

/// Hash-consing table: State -> StateId and back. States must be
/// equality-comparable; \p HashT hashes them.
template <typename State, typename HashT> class StateInterner {
public:
  StateId intern(const State &S) {
    auto [It, Inserted] =
        Index.emplace(S, static_cast<StateId>(States.size()));
    if (Inserted)
      States.push_back(S);
    return It->second;
  }

  const State &state(StateId Id) const {
    assert(Id < States.size());
    return States[Id];
  }

  size_t size() const { return States.size(); }

  /// Approximate heap footprint of the interned states: both the forward
  /// copy in States and the hash-index copy, plus one bucket pointer per
  /// index slot. A footprint estimate for the cache resident-bytes gauge,
  /// not an exact accounting.
  size_t approxBytes() const {
    size_t PerState = sizeof(State) + sizeof(StateId);
    return States.capacity() * sizeof(State) + Index.size() * PerState +
           Index.bucket_count() * sizeof(void *);
  }

private:
  std::unordered_map<State, StateId, HashT> Index;
  std::vector<State> States;
};

} // namespace dataflow
} // namespace optabs

#endif // OPTABS_DATAFLOW_STATEINTERNER_H
