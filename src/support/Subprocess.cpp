//===- Subprocess.cpp - Child-process spawn/liveness/kill helpers ---------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

namespace optabs {
namespace support {

ChildProcess ChildProcess::spawn(const std::vector<std::string> &Argv,
                                 std::string &Err) {
  ChildProcess C;
  if (Argv.empty()) {
    Err = "spawn needs at least argv[0]";
    return C;
  }
  if (::access(Argv[0].c_str(), X_OK) != 0) {
    Err = "'" + Argv[0] + "' is not executable: " + std::strerror(errno);
    return C;
  }
  std::vector<char *> Raw;
  Raw.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Raw.push_back(const_cast<char *>(A.c_str()));
  Raw.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    Err = std::string("fork failed: ") + std::strerror(errno);
    return C;
  }
  if (Pid == 0) {
    // Child: reset the dispositions the parent may have customized (the
    // supervisor ignores SIGPIPE; workers must start from a clean slate).
    ::signal(SIGPIPE, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::execv(Raw[0], Raw.data());
    ::_exit(127); // exec failed; 127 matches the shell convention
  }
  C.Pid = Pid;
  C.Reaped = false;
  return C;
}

bool ChildProcess::alive() {
  if (Pid <= 0 || Reaped)
    return false;
  int St = 0;
  pid_t R = ::waitpid(Pid, &St, WNOHANG);
  if (R == 0)
    return true; // still running
  if (R == Pid) {
    Status = St;
    Reaped = true;
    return false;
  }
  // ECHILD etc.: treat as gone but unreaped-by-us.
  Reaped = true;
  return false;
}

void ChildProcess::kill(int Signal) {
  if (Pid > 0 && !Reaped)
    ::kill(Pid, Signal);
}

int ChildProcess::reap(int TimeoutMs) {
  if (Pid <= 0 || Reaped)
    return Status;
  if (TimeoutMs < 0) {
    int St = 0;
    if (::waitpid(Pid, &St, 0) == Pid)
      Status = St;
    Reaped = true;
    return Status;
  }
  // Bounded wait: poll WNOHANG in small sleeps. Coarse but only used by
  // tests and supervisor shutdown, where tens of milliseconds are fine.
  for (int Waited = 0;; Waited += 10) {
    int St = 0;
    pid_t R = ::waitpid(Pid, &St, WNOHANG);
    if (R == Pid) {
      Status = St;
      Reaped = true;
      return Status;
    }
    if (R < 0) {
      Reaped = true;
      return Status;
    }
    if (Waited >= TimeoutMs)
      return -1;
    ::usleep(10 * 1000);
  }
}

} // namespace support
} // namespace optabs
