//===- Metrics.cpp - Registry/profiler singletons and exporters -----------===//

#include "support/Metrics.h"

#include <cstdio>
#include <fstream>

namespace optabs {
namespace support {

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

MetricRegistry &MetricRegistry::global() {
  static MetricRegistry R;
  return R;
}

Counter &MetricRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

LogHistogram &MetricRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  std::unique_ptr<LogHistogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<LogHistogram>();
  return *Slot;
}

void MetricRegistry::resetAll() {
  std::lock_guard<std::mutex> L(M);
  for (auto &KV : Counters)
    KV.second->reset();
  for (auto &KV : Gauges)
    KV.second->reset();
  for (auto &KV : Histograms)
    KV.second->reset();
}

std::vector<std::string> MetricRegistry::counterNames() const {
  std::lock_guard<std::mutex> L(M);
  std::vector<std::string> Names;
  Names.reserve(Counters.size());
  for (const auto &KV : Counters)
    Names.push_back(KV.first);
  return Names;
}

namespace {
/// Span paths flattened for the Prometheus dump: "a/b/c" -> node.
void flattenSpans(const Profiler::AggNode &Node, const std::string &Prefix,
                  std::ostream &OS) {
  for (const auto &KV : Node.Children) {
    std::string Path = Prefix.empty() ? KV.first : Prefix + "/" + KV.first;
    OS << "optabs_span_nanos_total{span=\"" << Path
       << "\"} " << KV.second.Nanos << "\n";
    OS << "optabs_span_calls_total{span=\"" << Path
       << "\"} " << KV.second.Count << "\n";
    flattenSpans(KV.second, Path, OS);
  }
}
} // namespace

void MetricRegistry::dumpPrometheus(std::ostream &OS) const {
  std::lock_guard<std::mutex> L(M);
  for (const auto &KV : Counters) {
    OS << "# TYPE " << KV.first << " counter\n";
    OS << KV.first << " " << KV.second->value() << "\n";
  }
  for (const auto &KV : Gauges) {
    OS << "# TYPE " << KV.first << " gauge\n";
    OS << KV.first << " " << KV.second->value() << "\n";
  }
  for (const auto &KV : Histograms) {
    const LogHistogram &H = *KV.second;
    OS << "# TYPE " << KV.first << " histogram\n";
    uint64_t Cumulative = 0;
    unsigned LastNonEmpty = 0;
    for (unsigned B = 0; B < LogHistogram::NumBuckets; ++B)
      if (H.bucketCount(B))
        LastNonEmpty = B;
    for (unsigned B = 0; B <= LastNonEmpty; ++B) {
      Cumulative += H.bucketCount(B);
      OS << KV.first << "_bucket{le=\"" << H.bucketHigh(B) << "\"} "
         << Cumulative << "\n";
    }
    OS << KV.first << "_bucket{le=\"+Inf\"} " << H.count() << "\n";
    OS << KV.first << "_sum " << H.sum() << "\n";
    OS << KV.first << "_count " << H.count() << "\n";
    OS << KV.first << "_min " << H.min() << "\n";
    OS << KV.first << "_max " << H.max() << "\n";
    // Quantile summaries so SLO histograms are consumable without a
    // scraper-side histogram_quantile (log2-bucket estimates, clamped to
    // the exact min/max envelope - see LogHistogram::quantile).
    OS << KV.first << "_p50 " << H.quantile(0.50) << "\n";
    OS << KV.first << "_p90 " << H.quantile(0.90) << "\n";
    OS << KV.first << "_p99 " << H.quantile(0.99) << "\n";
  }
  // Per-span totals from the profiler (read outside our mutex domain; the
  // profiler takes its own locks).
  flattenSpans(Profiler::global().aggregate(), "", OS);
}

bool MetricRegistry::writePrometheusFile(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS)
    return false;
  dumpPrometheus(OS);
  return static_cast<bool>(OS);
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

Profiler &Profiler::global() {
  static Profiler P;
  return P;
}

const char *Profiler::internName(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  for (const std::unique_ptr<std::string> &S : NameArena)
    if (*S == Name)
      return S->c_str();
  NameArena.push_back(std::make_unique<std::string>(Name));
  return NameArena.back()->c_str();
}

Profiler::ThreadRecord *Profiler::threadRecord() {
  // One record per OS thread, created on first use and owned by the
  // profiler forever (records outlive their threads so export works after
  // a pool is destroyed).
  thread_local ThreadRecord *Rec = nullptr;
  if (Rec)
    return Rec;
  std::lock_guard<std::mutex> L(M);
  auto Owned = std::make_unique<ThreadRecord>();
  Rec = Owned.get();
  Rec->Tid = static_cast<uint32_t>(Records.size());
  int W = detail::WorkerLabel;
  Rec->Label = W < 0 ? (Records.empty() ? std::string("main")
                                        : "thread-" + std::to_string(Rec->Tid))
                     : "worker-" + std::to_string(W);
  Records.push_back(std::move(Owned));
  return Rec;
}

size_t Profiler::spanCount() const {
  std::lock_guard<std::mutex> L(M);
  size_t N = 0;
  for (const std::unique_ptr<ThreadRecord> &R : Records) {
    std::lock_guard<std::mutex> RL(R->M);
    for (const SpanEvent &E : R->Events)
      if (E.DurNs != UINT64_MAX)
        ++N;
  }
  return N;
}

uint64_t Profiler::droppedSpans() const {
  std::lock_guard<std::mutex> L(M);
  uint64_t N = 0;
  for (const std::unique_ptr<ThreadRecord> &R : Records) {
    std::lock_guard<std::mutex> RL(R->M);
    N += R->Dropped;
  }
  return N;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> L(M);
  for (const std::unique_ptr<ThreadRecord> &R : Records) {
    std::lock_guard<std::mutex> RL(R->M);
    R->Events.clear();
    R->OpenStack.clear();
    R->Dropped = 0;
    ++R->Generation;
  }
  CurrentPhase.store(nullptr, std::memory_order_relaxed);
  Epoch.reset();
}

Profiler::AggNode Profiler::aggregate() const {
  std::lock_guard<std::mutex> L(M);
  AggNode Root;
  for (const std::unique_ptr<ThreadRecord> &R : Records) {
    std::lock_guard<std::mutex> RL(R->M);
    // Per-event path cache: Paths[I] = the AggNode for event I, so
    // children resolve their parent in O(1).
    std::vector<AggNode *> Paths(R->Events.size(), nullptr);
    for (size_t I = 0; I < R->Events.size(); ++I) {
      const SpanEvent &E = R->Events[I];
      if (E.DurNs == UINT64_MAX)
        continue; // still open: not aggregated
      AggNode *ParentNode = &Root;
      if (E.Parent != UINT32_MAX && Paths[E.Parent])
        ParentNode = Paths[E.Parent];
      else if (E.PhaseHint)
        ParentNode = &Root.Children[E.PhaseHint]; // cross-thread reparent
      AggNode &Node = ParentNode->Children[E.Name];
      Node.Count += 1;
      Node.Nanos += E.DurNs;
      Paths[I] = &Node;
    }
  }
  return Root;
}

namespace {
/// Minimal JSON string escaping for the Chrome trace (support cannot
/// depend on tracer/EventTrace.h).
void appendJsonString(std::string &Out, const char *S) {
  Out.push_back('"');
  for (; *S; ++S) {
    char C = *S;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}
} // namespace

void Profiler::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"traceEvents\":[";
  bool First = true;
  writeChromeTraceEvents(OS, First);
  OS << "\n]}\n";
}

void Profiler::writeChromeTraceEvents(std::ostream &OS, bool &First) const {
  std::lock_guard<std::mutex> L(M);
  auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n";
  };
  for (const std::unique_ptr<ThreadRecord> &R : Records) {
    std::lock_guard<std::mutex> RL(R->M);
    std::string Name;
    Name.clear();
    appendJsonString(Name, R->Label.c_str());
    Sep();
    OS << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
       << R->Tid << ",\"args\":{\"name\":" << Name << "}}";
    for (const SpanEvent &E : R->Events) {
      if (E.DurNs == UINT64_MAX)
        continue;
      std::string EName;
      appendJsonString(EName, E.Name);
      Sep();
      // Chrome expects microsecond doubles; keep sub-microsecond precision
      // so nested spans do not collapse to zero width.
      OS << "{\"ph\":\"X\",\"name\":" << EName << ",\"cat\":\"optabs\""
         << ",\"pid\":1,\"tid\":" << R->Tid
         << ",\"ts\":" << static_cast<double>(E.StartNs) / 1000.0
         << ",\"dur\":" << static_cast<double>(E.DurNs) / 1000.0 << "}";
    }
  }
}

bool Profiler::writeChromeTraceFile(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS)
    return false;
  writeChromeTrace(OS);
  return static_cast<bool>(OS);
}

//===----------------------------------------------------------------------===//
// ScopedSpan
//===----------------------------------------------------------------------===//

ScopedSpan::ScopedSpan(const char *Name, bool Publish) {
  if (!metricsEnabled())
    return; // the disabled-mode fast path: one relaxed load, no allocation
  Profiler &P = Profiler::global();
  Rec = P.threadRecord();
  std::lock_guard<std::mutex> L(Rec->M);
  if (Rec->Events.size() >= Profiler::MaxEventsPerThread) {
    ++Rec->Dropped;
    Rec = nullptr;
    return;
  }
  Profiler::SpanEvent E;
  E.Name = Name;
  E.StartNs = P.nowNs();
  if (!Rec->OpenStack.empty()) {
    E.Parent = Rec->OpenStack.back();
  } else {
    // Thread-root span: adopt the globally published phase (if any) so
    // pool-worker tasks aggregate under the driving phase.
    const char *Phase = P.CurrentPhase.load(std::memory_order_relaxed);
    if (Phase && Phase != Name)
      E.PhaseHint = Phase;
  }
  Idx = static_cast<uint32_t>(Rec->Events.size());
  Generation = Rec->Generation;
  Rec->Events.push_back(E);
  Rec->OpenStack.push_back(Idx);
  Active = true;
  if (Publish) {
    PrevPhase = P.CurrentPhase.exchange(Name, std::memory_order_relaxed);
    Published = true;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!Active)
    return;
  Profiler &P = Profiler::global();
  if (Published)
    P.CurrentPhase.store(PrevPhase, std::memory_order_relaxed);
  std::lock_guard<std::mutex> L(Rec->M);
  if (Rec->Generation != Generation)
    return; // profiler was reset while we were open; nothing to close
  Profiler::SpanEvent &E = Rec->Events[Idx];
  E.DurNs = P.nowNs() - E.StartNs;
  if (!Rec->OpenStack.empty() && Rec->OpenStack.back() == Idx)
    Rec->OpenStack.pop_back();
}

} // namespace support
} // namespace optabs
