//===- Prng.h - Deterministic pseudo-random number generation --*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by the synthetic
/// benchmark generator and the property-based tests. We deliberately avoid
/// <random> engines so that generated benchmarks are bit-identical across
/// standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_PRNG_H
#define OPTABS_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace optabs {

/// SplitMix64 generator. Deterministic for a given seed on every platform.
class Prng {
public:
  explicit Prng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Rejection-free multiply-shift; bias is negligible for Bound << 2^64
    // and, more importantly, deterministic.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "malformed probability");
    return nextBelow(Den) < Num;
  }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derives an independent child generator; used to give each benchmark
  /// component its own stream so edits to one component do not perturb
  /// others.
  Prng split() { return Prng(next() ^ 0xd1b54a32d192ed03ULL); }

private:
  uint64_t State;
};

} // namespace optabs

#endif // OPTABS_SUPPORT_PRNG_H
