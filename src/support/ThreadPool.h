//===- ThreadPool.h - Fixed-size worker pool -------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool (C++20, standard library only) used by
/// the TRACER driver to parallelize the per-round forward analyses and the
/// per-counterexample backward meta-analysis runs.
///
/// Design constraints, in order:
///
///  * Determinism support: parallelFor() hands every task its index and the
///    index of the worker executing it, so callers can write results into
///    pre-sized slots and keep per-worker scratch (e.g. one
///    BackwardMetaAnalysis instance per worker) without any shared mutable
///    state. The pool itself imposes no ordering; merging in a fixed order
///    is the caller's job.
///  * The calling thread participates as worker 0, so a pool constructed
///    with one worker spawns no threads at all and parallelFor() degenerates
///    to an in-order sequential loop - the NumThreads = 1 configuration is
///    bit-for-bit the sequential driver.
///  * Exceptions thrown by tasks are captured and the first one is rethrown
///    from parallelFor()/the submit() future once the batch has drained.
///    Exceptions are additionally routed to an optional InvariantSink so the
///    driver's audit layer sees them as structured records, and anything
///    that escapes a worker outside a batch (which would otherwise hit the
///    std::thread boundary and terminate the process) is captured and
///    rethrown at the next parallelFor() barrier.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_THREADPOOL_H
#define OPTABS_SUPPORT_THREADPOOL_H

#include "support/Invariants.h"
#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace optabs {
namespace support {

class ThreadPool {
public:
  /// Creates a pool of \p NumThreads workers (clamped to >= 1). Worker 0 is
  /// the thread calling parallelFor(); only NumThreads - 1 threads are
  /// spawned. Task exceptions are reported to \p Sink (when non-null) as
  /// structured invariant records in addition to being rethrown.
  explicit ThreadPool(unsigned NumThreads, InvariantSink *Sink = nullptr)
      : NumWorkers(NumThreads < 1 ? 1 : NumThreads), Sink(Sink) {
    for (unsigned W = 1; W < NumWorkers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ShuttingDown = true;
    }
    WorkAvailable.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned numWorkers() const { return NumWorkers; }

  /// A convenient default for "use all cores": hardware concurrency,
  /// clamped to >= 1 for platforms that report 0.
  static unsigned hardwareWorkers() {
    unsigned N = std::thread::hardware_concurrency();
    return N < 1 ? 1 : N;
  }

  /// Runs Fn(TaskIndex, WorkerIndex) for every TaskIndex in [0, NumTasks)
  /// and blocks until all tasks finished. WorkerIndex < numWorkers(). With
  /// one worker, tasks run inline on the caller in ascending index order.
  /// The first task exception (if any) is rethrown here after the batch
  /// drains.
  ///
  /// Scheduling is dynamic via a shared atomic index: the queue receives
  /// one "runner" closure per helper worker (not one per task), and every
  /// participant claims indices with fetch_add until they run out. Per-task
  /// overhead is therefore one atomic increment, which keeps fine-grained
  /// batches (thousands of sub-microsecond tasks) cheap.
  void parallelFor(size_t NumTasks,
                   const std::function<void(size_t, unsigned)> &Fn) {
    if (NumTasks == 0)
      return;
    if (NumWorkers == 1 || NumTasks == 1) {
      for (size_t I = 0; I < NumTasks; ++I)
        Fn(I, 0);
      return;
    }
    auto State = std::make_shared<Batch>();
    State->Fn = &Fn;
    State->NumTasks = NumTasks;
    State->Remaining = NumTasks;
    State->Sink = Sink;
    size_t Helpers =
        std::min<size_t>(NumWorkers - 1, NumTasks - 1);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      for (size_t H = 0; H < Helpers; ++H)
        Queue.push_back([State](unsigned Worker) { runBatch(*State, Worker); });
    }
    WorkAvailable.notify_all();

    // Participate as worker 0, then wait for stragglers on other workers.
    // A helper dequeued after the batch drained claims an out-of-range
    // index and exits without touching Fn (the shared_ptr keeps the batch
    // state alive for it).
    runBatch(*State, 0);
    {
      std::unique_lock<std::mutex> Lock(State->Mutex);
      State->Done.wait(Lock, [&] { return State->Remaining.load() == 0; });
    }
    if (State->FirstException)
      std::rethrow_exception(State->FirstException);
    // A stray exception captured in workerLoop() (outside any batch) is
    // rethrown here, at the first join/wait barrier after it happened.
    std::exception_ptr Stray;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stray = std::exchange(StrayException, nullptr);
    }
    if (Stray)
      std::rethrow_exception(Stray);
  }

  /// Submits a single task for asynchronous execution on some worker; the
  /// returned future carries the result (or the exception). The task
  /// receives no worker index; use parallelFor for worker-indexed scratch.
  template <typename F>
  auto submit(F &&Fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    if (NumWorkers == 1) {
      (*Task)();
      return Result;
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push_back([Task](unsigned) { (*Task)(); });
    }
    WorkAvailable.notify_one();
    return Result;
  }

private:
  using Task = std::function<void(unsigned)>;

  struct Batch {
    const std::function<void(size_t, unsigned)> *Fn = nullptr;
    size_t NumTasks = 0;
    std::atomic<size_t> NextIndex{0};
    std::atomic<size_t> Remaining{0};
    std::mutex Mutex;
    std::condition_variable Done;
    std::exception_ptr FirstException;
    InvariantSink *Sink = nullptr;
  };

  /// Renders an exception_ptr as a one-line message for invariant records.
  static std::string describeException(const std::exception_ptr &E) {
    try {
      std::rethrow_exception(E);
    } catch (const std::exception &Ex) {
      return Ex.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  /// Claims and runs tasks of \p B until the index space is exhausted.
  static void runBatch(Batch &B, unsigned Worker) {
    for (;;) {
      size_t I = B.NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= B.NumTasks)
        return;
      try {
        (*B.Fn)(I, Worker);
      } catch (...) {
        std::exception_ptr E = std::current_exception();
        // Sink only: the exception is also rethrown at the barrier, so the
        // no-sink stderr fallback would double-report.
        if (B.Sink)
          B.Sink->report("task-exception", "ThreadPool::runBatch",
                         describeException(E));
        std::lock_guard<std::mutex> Lock(B.Mutex);
        if (!B.FirstException)
          B.FirstException = E;
      }
      if (B.Remaining.fetch_sub(1) == 1) {
        // Take the batch mutex before notifying so the waiter cannot miss
        // the wakeup between its predicate check and its wait.
        std::lock_guard<std::mutex> Lock(B.Mutex);
        B.Done.notify_all();
      }
    }
  }

  void workerLoop(unsigned Worker) {
    // Thread-local store only; lets the span profiler label this thread's
    // trace track "worker-N" even when metrics are enabled later.
    setMetricsWorkerLabel(Worker);
    while (true) {
      Task T;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkAvailable.wait(Lock,
                           [&] { return ShuttingDown || !Queue.empty(); });
        if (ShuttingDown && Queue.empty())
          return;
        T = std::move(Queue.front());
        Queue.pop_front();
      }
      try {
        T(Worker);
      } catch (...) {
        // A task that escaped the per-task capture in runBatch (e.g. a
        // throw from invoking the closure itself). Without this it would
        // cross the std::thread boundary and std::terminate the process.
        // Record it and rethrow the first one at the next parallelFor
        // barrier.
        std::exception_ptr E = std::current_exception();
        reportInvariant(Sink, "worker-exception", "ThreadPool::workerLoop",
                        describeException(E));
        std::lock_guard<std::mutex> Lock(Mutex);
        if (!StrayException)
          StrayException = E;
      }
    }
  }

  const unsigned NumWorkers;
  InvariantSink *Sink = nullptr;
  std::vector<std::thread> Threads;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<Task> Queue;
  std::exception_ptr StrayException; ///< guarded by Mutex
  bool ShuttingDown = false;
};

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_THREADPOOL_H
