//===- Stats.h - Min/max/avg accumulators and histograms -------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics accumulators used by the benchmark harnesses. The
/// paper's Tables 2-4 all report (min, max, avg) triples; Figure 14 reports
/// a size histogram.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_STATS_H
#define OPTABS_SUPPORT_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

namespace optabs {

/// Accumulates a stream of samples and reports min/max/avg.
class MinMaxAvg {
public:
  void add(double Sample) {
    Min = Count == 0 ? Sample : std::min(Min, Sample);
    Max = Count == 0 ? Sample : std::max(Max, Sample);
    Sum += Sample;
    ++Count;
  }

  bool empty() const { return Count == 0; }
  uint64_t count() const { return Count; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }
  double avg() const { return Count ? Sum / static_cast<double>(Count) : 0; }

private:
  double Min = 0;
  double Max = 0;
  double Sum = 0;
  uint64_t Count = 0;
};

/// Integer-bucket histogram (Figure 14 style).
class Histogram {
public:
  void add(int64_t Bucket) { ++Buckets[Bucket]; }

  const std::map<int64_t, uint64_t> &buckets() const { return Buckets; }

  uint64_t total() const {
    uint64_t N = 0;
    for (const auto &[Bucket, Cnt] : Buckets)
      N += Cnt;
    return N;
  }

private:
  std::map<int64_t, uint64_t> Buckets;
};

} // namespace optabs

#endif // OPTABS_SUPPORT_STATS_H
