//===- BitSet.h - Dense dynamic bitset -------------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-universe dense bitset with the handful of operations the
/// points-to fixpoint and the abstraction representations need: set/test,
/// union-with (reporting change), population count, and iteration.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_BITSET_H
#define OPTABS_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace optabs {

/// Dense bitset over the universe [0, size()).
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t Universe) : NumBits(Universe) {
    Words.resize((Universe + 63) / 64, 0);
  }

  size_t size() const { return NumBits; }

  bool test(size_t I) const {
    assert(I < NumBits);
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits);
    Words[I >> 6] |= uint64_t(1) << (I & 63);
  }

  void reset(size_t I) {
    assert(I < NumBits);
    Words[I >> 6] &= ~(uint64_t(1) << (I & 63));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other; returns true if any bit changed.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t Merged = Words[I] | Other.Words[I];
      Changed |= Merged != Words[I];
      Words[I] = Merged;
    }
    return Changed;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Calls \p Fn(index) for every set bit, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  friend bool operator==(const BitSet &A, const BitSet &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace optabs

#endif // OPTABS_SUPPORT_BITSET_H
