//===- Config.h - Unified public configuration surface ---------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// optabs::Config is the one public knob surface of the library. Every
/// entry point - the CLI, the analysis service, the experiment harness -
/// builds its execution options from a Config, and the legacy option
/// structs (tracer::TracerOptions, reporting::HarnessOptions) are thin
/// deprecated aliases constructed from it.
///
/// Three rules, enforced in exactly one place each:
///
///  * Precedence: explicit > environment (OPTABS_*) > defaults. Start from
///    Config::fromEnv() (defaults overlaid with the environment) and apply
///    explicit settings on top; nothing else reads OPTABS_* variables.
///  * Validation: validate() returns structured ConfigErrors for every
///    invalid combination. The checks below replace what used to be
///    comments scattered across TracerOptions (e.g. "a nonzero backward
///    timeout makes results timing-dependent").
///  * Sections: Execution (how the search runs), Budgets (when it stops),
///    Observability (what it records), Audit (how it is checked), Service
///    (multi-tenant quotas).
///
/// Documented invalid configurations rejected by validate():
///
///   1. execution.strategy not in {tracer, eliminate-current, greedy-grow}
///   2. execution.traces_per_iteration == 0 (at least one counterexample
///      per failed iteration)
///   3. execution.max_iters_per_query == 0 (the CEGAR loop needs a round)
///   4. budgets.time_budget_seconds <= 0 (and any negative budget)
///   5. budgets.backward_timeout_seconds > 0 while execution.deterministic
///      claims worker-count reproducibility (wall-clock timeouts are
///      schedule-dependent; use budgets.backward_step_budget instead)
///   6. budgets.memory_budget_bytes > 0 under the greedy-grow strategy
///      (the degradation ladder runs at TRACER round boundaries only)
///   7. observability.event_trace_label set without an event_trace_path
///   8. service.max_pending_per_session == 0 (a tenant must be able to
///      queue at least one job)
///   9. observability.service_trace_capacity == 0 while
///      observability.service_trace is on (the flight recorder must be
///      able to hold at least one event)
///  10. observability.service_trace_jsonl_path or _chrome_path set while
///      observability.service_trace is off (the export would be empty)
///  11. observability.slow_query_seconds < 0 (0 disables the slow-query
///      log; negative thresholds are meaningless)
///  12. service.spill_bytes or service.persist_on_shutdown set without a
///      service.cache_dir (the persistent tier has nowhere to write)
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_CONFIG_H
#define OPTABS_SUPPORT_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace optabs {

/// One structured validation (or environment-parse) error: which field is
/// wrong, dotted-path style ("budgets.backward_timeout_seconds"), and why.
struct ConfigError {
  std::string Field;
  std::string Message;
};

/// Renders a list of errors as one human-readable line per error.
std::string formatConfigErrors(const std::vector<ConfigError> &Errors);

struct Config {
  /// How the search executes: the paper's operating point plus the
  /// parallelism and caching knobs of the production driver.
  struct ExecutionConfig {
    unsigned K = 5;                  ///< dropk beam width; 0 = exact
    unsigned MaxItersPerQuery = 100; ///< per-query CEGAR iteration budget
    bool GroupQueries = true;        ///< §6 unviable-set grouping
    size_t ProductSoftCap = 4096;    ///< Dnf::product growth cap
    unsigned TracesPerIteration = 1; ///< counterexamples per failed round
    /// Strategy name: "tracer", "eliminate-current" or "greedy-grow".
    std::string Strategy = "tracer";
    /// Worker threads (1 = sequential, 0 = hardware concurrency).
    unsigned NumThreads = 1;
    /// Forward-run cache entry cap (LRU); 0 = unbounded.
    size_t ForwardCacheCapacity = 0;
    /// Liveness-based dead-variable pruning of forward states (exact
    /// optimization; disable only to debug or to compare footprints).
    bool PruneDeadVars = true;
    /// Loop-segment compression of counterexample traces in the backward
    /// meta-analysis (exact optimization; see meta/TraceSegments.h).
    bool CompressTraces = true;
    /// Claim bitwise worker-count reproducibility. Purely declarative: it
    /// does not change execution, but validate() rejects any knob (e.g. a
    /// wall-clock backward timeout) that would break the claim.
    bool Deterministic = false;
  };

  /// When the search stops: deterministic logical-step budgets per kernel,
  /// plus the schedule-dependent wall-clock limits.
  struct BudgetConfig {
    double TimeBudgetSeconds = 1e12;   ///< whole-driver wall clock
    double BackwardTimeoutSeconds = 0; ///< per-trace meta-analysis timeout
    uint64_t ForwardStepBudget = 0;    ///< forward state visits per fixpoint
    uint64_t BackwardStepBudget = 0;   ///< backward wp steps per trace
    uint64_t SolverDecisionBudget = 0; ///< MinCostSat branch decisions
    uint64_t MemoryBudgetBytes = 0;    ///< cache ceiling -> degradation ladder
  };

  /// What the run records. All default from OPTABS_* via fromEnv().
  struct ObservabilityConfig {
    std::string MetricsPath;     ///< Prometheus text dump (OPTABS_METRICS)
    std::string ProfilePath;     ///< Chrome trace JSON (OPTABS_CHROME_TRACE)
    std::string EventTracePath;  ///< JSONL CEGAR trace (OPTABS_EVENT_TRACE)
    std::string EventTraceLabel; ///< label stamped on every event line
    /// Request-scoped tracing in the analysis service (support/Trace.h):
    /// per-job lifecycle timelines in a bounded flight recorder, drained
    /// by the `trace`/`explain` protocol ops. Service-level, never part of
    /// a session's options signature (OPTABS_SERVICE_TRACE, 0/1).
    bool ServiceTrace = false;
    /// Flight-recorder ring capacity in events (oldest evicted first).
    size_t ServiceTraceCapacity = 4096;
    /// Service trace JSONL export written at service shutdown.
    std::string ServiceTraceJsonlPath;
    /// Merged Chrome trace (service track + profiler worker tracks)
    /// written at service shutdown.
    std::string ServiceTraceChromePath;
    /// End-to-end latency above which a job lands in the slow-query log
    /// (a "slow-query" trace event + counter). 0 disables.
    double SlowQuerySeconds = 0;
  };

  /// How verdicts are double-checked (tracer/Certificates.h).
  struct AuditConfig {
    bool Enabled = false; ///< certificate-check every verdict (OPTABS_AUDIT)
  };

  /// Multi-tenant quotas of the analysis service (src/service/).
  struct ServiceConfig {
    unsigned MaxSessions = 64;          ///< concurrently open sessions
    unsigned MaxPendingPerSession = 1024; ///< queued jobs before rejection
    uint64_t MaxJobsPerSession = 0;     ///< lifetime job quota; 0 = unlimited
    /// Diff programs on re-registration and migrate cached runs / stored
    /// verdicts whose dependence footprint is untouched into the new epoch
    /// (see ir/ProgramDiff.h). Off restores the historical evict-everything
    /// invalidation exactly: every re-registration discards every cached
    /// artifact of older epochs. (Independently of this flag, jobs still
    /// queued against a retiring epoch fail with a structured stale-epoch
    /// reason unless an incremental diff proves their check untouched;
    /// silently re-running them against different IR was a bug.)
    bool IncrementalReRegister = true;
    /// Directory for the persistent cache tier (snapshots written by the
    /// `cache` op / shutdown persist, spill files written under memory
    /// pressure, warm loads on registration). Empty disables every
    /// on-disk path (OPTABS_CACHE_DIR).
    std::string CacheDir;
    /// Ceiling on bytes of spill files under service.cache_dir; once
    /// reached, cold entries fall back to plain eviction instead of
    /// spilling. Pre-existing spill files count against it (the service
    /// scans the dir on first spill), and the budget is enforced per
    /// worker - shardd workers sharing one dir each apply their own
    /// ceiling against the shared contents. 0 = unbounded
    /// (OPTABS_SPILL_BYTES).
    uint64_t SpillBytes = 0;
    /// Snapshot every registered program to service.cache_dir when the
    /// service shuts down, so the next process starts warm
    /// (OPTABS_PERSIST_ON_SHUTDOWN, 0/1).
    bool PersistOnShutdown = false;
  };

  ExecutionConfig Execution;
  BudgetConfig Budgets;
  ObservabilityConfig Observability;
  AuditConfig Audit;
  ServiceConfig Service;

  /// The built-in defaults (the paper's k=5 operating point, sequential,
  /// unbounded budgets, no observability).
  static Config defaults() { return Config(); }

  /// Defaults overlaid with the OPTABS_* environment: OPTABS_AUDIT,
  /// OPTABS_METRICS, OPTABS_CHROME_TRACE, OPTABS_EVENT_TRACE,
  /// OPTABS_THREADS, OPTABS_K, OPTABS_STRATEGY, OPTABS_STEP_BUDGET (arms
  /// all three step budgets), OPTABS_TIME_BUDGET_SECONDS,
  /// OPTABS_CACHE_CAPACITY, OPTABS_MEMORY_BUDGET_MB, OPTABS_INCREMENTAL
  /// (0/1, service.incremental_re_register), OPTABS_SERVICE_TRACE (0/1,
  /// observability.service_trace), OPTABS_CACHE_DIR (service.cache_dir),
  /// OPTABS_SPILL_BYTES (service.spill_bytes), OPTABS_PERSIST_ON_SHUTDOWN
  /// (0/1, service.persist_on_shutdown). Malformed values are
  /// reported through \p Errors (when non-null) and leave the default in
  /// place. This is the only function in the codebase that reads OPTABS_*
  /// configuration variables.
  static Config fromEnv(std::vector<ConfigError> *Errors = nullptr);

  /// Structural validation; empty result = valid. See the file comment for
  /// the documented rejected combinations.
  std::vector<ConfigError> validate() const;

  /// True when \p Name is a known strategy ("tracer", "eliminate-current",
  /// "greedy-grow").
  static bool isKnownStrategy(const std::string &Name);
};

} // namespace optabs

#endif // OPTABS_SUPPORT_CONFIG_H
