//===- TablePrinter.h - Paper-shaped text tables ---------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table renderer used by the benchmark harnesses to
/// print rows shaped like the paper's Tables 1-4 and Figures 12-14.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_TABLEPRINTER_H
#define OPTABS_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace optabs {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
public:
  /// Sets the header row. Column count is inferred from it.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal rule before the next added row.
  void addRule();

  /// Renders the table to \p OS. \p Title, when nonempty, is printed first.
  void print(std::ostream &OS, const std::string &Title = "") const;

  /// Convenience cell formatters.
  static std::string cell(long long V);
  static std::string cell(double V, int Precision = 1);
  static std::string percent(double Fraction, int Precision = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<size_t> RulesBeforeRow;
};

/// Renders a labelled horizontal-bar histogram (used for Figures 13/14).
/// Each entry is (label, value); bars are scaled to \p Width characters.
void printBarChart(std::ostream &OS, const std::string &Title,
                   const std::vector<std::pair<std::string, double>> &Entries,
                   unsigned Width = 50);

} // namespace optabs

#endif // OPTABS_SUPPORT_TABLEPRINTER_H
