//===- Trace.cpp - Flight recorder ring and exporters ---------------------===//

#include "support/Trace.h"

#include "support/Metrics.h"

#include <cstdio>
#include <fstream>

namespace optabs {
namespace support {

void FlightRecorder::record(TraceEvent E) {
  // Stamp the timestamp outside the lock (nowNs is a clock read); the
  // sequence number inside it so drain order and Seq order agree.
  if (E.TsNs == 0)
    E.TsNs = Profiler::global().nowNs();
  std::lock_guard<std::mutex> L(M);
  E.Seq = NextSeq++;
  if (Ring.size() >= Capacity) {
    Ring.pop_front(); // oldest-first eviction
    ++Dropped;
  }
  Ring.push_back(std::move(E));
}

std::vector<TraceEvent> FlightRecorder::drain() {
  std::lock_guard<std::mutex> L(M);
  std::vector<TraceEvent> Out(Ring.begin(), Ring.end());
  Ring.clear();
  return Out;
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  return std::vector<TraceEvent>(Ring.begin(), Ring.end());
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> L(M);
  return Ring.size();
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> L(M);
  return Dropped;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> L(M);
  return NextSeq - 1;
}

namespace {
/// Minimal JSON string escaping (support cannot depend on
/// tracer/EventTrace.h; same rules as the profiler's Chrome writer).
void appendJsonString(std::string &Out, const char *S) {
  Out.push_back('"');
  for (; *S; ++S) {
    char C = *S;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

std::string jsonlLine(const TraceEvent &E) {
  std::string S;
  S += "{\"seq\":" + std::to_string(E.Seq);
  S += ",\"kind\":";
  appendJsonString(S, E.Kind);
  S += ",\"trace\":" + std::to_string(E.TraceId);
  S += ",\"span\":" + std::to_string(E.SpanId);
  S += ",\"job\":" + std::to_string(E.Job);
  S += ",\"session\":" + std::to_string(E.Session);
  S += ",\"batch\":" + std::to_string(E.Batch);
  S += ",\"ts_ns\":" + std::to_string(E.TsNs);
  S += ",\"u0\":" + std::to_string(E.U0);
  S += ",\"u1\":" + std::to_string(E.U1);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", E.D0);
  S += ",\"seconds\":";
  S += Buf;
  S += ",\"note\":";
  appendJsonString(S, E.Note.c_str());
  S += "}";
  return S;
}
} // namespace

void FlightRecorder::writeJsonl(std::ostream &OS) const {
  for (const TraceEvent &E : snapshot())
    OS << jsonlLine(E) << "\n";
}

bool FlightRecorder::writeJsonlFile(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS)
    return false;
  writeJsonl(OS);
  return static_cast<bool>(OS);
}

void FlightRecorder::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"traceEvents\":[";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n";
  };
  // The profiler's per-thread tracks first (same timebase: both sides
  // stamp Profiler::global().nowNs()).
  Profiler::global().writeChromeTraceEvents(OS, First);
  // The service track on its own tid, after every profiler thread.
  constexpr unsigned ServiceTid = 9999;
  Sep();
  OS << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
     << ServiceTid << ",\"args\":{\"name\":\"service\"}}";
  for (const TraceEvent &E : snapshot()) {
    std::string Name;
    if (E.Kind == std::string("fulfilled") && E.D0 > 0) {
      // A complete job span: end-to-end duration backdated from the
      // fulfillment timestamp.
      Name = "job " + std::to_string(E.Job);
      std::string JName;
      appendJsonString(JName, Name.c_str());
      double DurUs = E.D0 * 1e6;
      double EndUs = static_cast<double>(E.TsNs) / 1000.0;
      Sep();
      OS << "{\"ph\":\"X\",\"name\":" << JName << ",\"cat\":\"service\""
         << ",\"pid\":1,\"tid\":" << ServiceTid
         << ",\"ts\":" << (EndUs - DurUs) << ",\"dur\":" << DurUs
         << ",\"args\":{\"session\":" << E.Session << ",\"batch\":"
         << E.Batch << "}}";
      continue;
    }
    std::string KName;
    appendJsonString(KName, E.Kind);
    Sep();
    OS << "{\"ph\":\"i\",\"s\":\"t\",\"name\":" << KName
       << ",\"cat\":\"service\",\"pid\":1,\"tid\":" << ServiceTid
       << ",\"ts\":" << static_cast<double>(E.TsNs) / 1000.0
       << ",\"args\":{\"job\":" << E.Job << ",\"batch\":" << E.Batch
       << "}}";
  }
  OS << "\n]}\n";
}

bool FlightRecorder::writeChromeTraceFile(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::trunc);
  if (!OS)
    return false;
  writeChromeTrace(OS);
  return static_cast<bool>(OS);
}

} // namespace support
} // namespace optabs
