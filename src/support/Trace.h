//===- Trace.h - Request-scoped tracing and the flight recorder -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped tracing for the analysis service: a Dapper-style
/// TraceContext minted at every ingress and threaded through the
/// scheduler, batch formation, driver runs, and cache lookups, plus a
/// bounded in-memory FlightRecorder that the `trace` protocol op drains
/// and the service exports as JSONL or a Chrome trace on shutdown.
///
/// The overhead contract mirrors support/Metrics.h: instrumentation is
/// always compiled in, and a disabled site costs one ordinary load and a
/// branch - every recording site is gated on a `FlightRecorder *` being
/// non-null, so no TraceEvent is even constructed when tracing is off:
///
/// \code
///   if (FlightRecorder *R = traceSink())
///     R->record({.Kind = "cache-hit", ...});
/// \endcode
///
/// Tracing never feeds back into the analysis: events go only to the
/// recorder (never the CEGAR event trace), and every recording site runs
/// either on the scheduler thread or in the driver's sequential plan
/// phase, so the event sequence - excluding timestamps - is identical at
/// any worker count, and verdicts are bitwise identical with tracing on
/// or off.
///
/// The recorder is a fixed-capacity ring: under pressure the oldest
/// events are evicted first and counted in dropped(). Timestamps come
/// from Profiler::global().nowNs(), so service events and profiler spans
/// share one timebase and writeChromeTrace() can merge the service track
/// with the per-worker profiler tracks into a single trace file.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_TRACE_H
#define OPTABS_SUPPORT_TRACE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace optabs {
namespace support {

/// Propagated request identity: minted at an ingress (protocol line or
/// Session::submit), carried through every stage a request touches. A
/// zero TraceId means "no caller-supplied context"; the service then uses
/// the job id as the trace id so every job always has a usable identity.
struct TraceContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
};

/// One lifecycle event. Kind is a static-duration string ("submitted",
/// "rejected", "batched", "replayed", "cache-hit", "cache-miss",
/// "cache-shared-hit", "cache-stale-miss", "phase", "run", "fulfilled",
/// "slow-query"); U0/U1/D0 carry kind-specific payload (documented at the
/// recording sites), Note carries kind-specific text (rejection reason,
/// phase name, clean-footprint procedures, terminal status).
struct TraceEvent {
  uint64_t Seq = 0;        ///< recorder-assigned, monotonically increasing
  const char *Kind = "";   ///< static string; never owned
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t Job = 0;        ///< 0 when not job-scoped (e.g. pre-admission)
  uint64_t Session = 0;
  uint64_t Batch = 0;      ///< 0 before batch formation
  uint64_t TsNs = 0;       ///< Profiler timebase; stamped by record()
  uint64_t U0 = 0;
  uint64_t U1 = 0;
  double D0 = 0;           ///< kind-specific seconds payload
  std::string Note;
};

/// A bounded, thread-safe ring of TraceEvents. All mutation takes one
/// mutex - recording happens on the submit path and the scheduler thread,
/// both far from any inner loop. Oldest events are evicted first when the
/// ring is full; dropped() counts them.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 4096)
      : Capacity(Capacity == 0 ? 1 : Capacity) {}

  size_t capacity() const { return Capacity; }

  /// Stamps Seq (and TsNs, unless the caller pre-stamped it to share one
  /// reading with its own bookkeeping) and appends, evicting oldest-first
  /// when full.
  void record(TraceEvent E);

  /// Removes and returns every buffered event, oldest first. The dropped
  /// counter is NOT reset: it reports lifetime pressure.
  std::vector<TraceEvent> drain();

  /// Copies the buffered events without removing them (shutdown export).
  std::vector<TraceEvent> snapshot() const;

  size_t size() const;
  uint64_t dropped() const;  ///< events evicted under pressure, lifetime
  uint64_t recorded() const; ///< events ever recorded, lifetime

  /// One JSON object per buffered event, one per line, all fields always
  /// present (stable schema for the scrub step and offline tooling).
  void writeJsonl(std::ostream &OS) const;
  bool writeJsonlFile(const std::string &Path) const;

  /// A Chrome trace merging the service track with every profiler thread
  /// track (same timebase; see the file comment). "fulfilled" events with
  /// a D0 end-to-end duration render as complete ("X") job spans; every
  /// other event renders as an instant.
  void writeChromeTrace(std::ostream &OS) const;
  bool writeChromeTraceFile(const std::string &Path) const;

private:
  mutable std::mutex M;
  size_t Capacity;
  std::deque<TraceEvent> Ring;
  uint64_t NextSeq = 1;
  uint64_t Dropped = 0;
};

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_TRACE_H
