//===- FaultInjection.h - Deterministic fault injection for recovery tests ===//
//
// A tiny site registry that lets tests (and CI) force the rare failure paths
// the resource governor must survive: an allocation failure at a specific
// site, a forced cancellation, or an injected invariant breakage. Faults are
// armed either programmatically (FaultRegistry::global().arm(Spec, Err)) or
// through the OPTABS_FAULTS environment variable, using the spec grammar
//
//   SPEC  ::= ARM (';' ARM)*
//   ARM   ::= SITE ':' KIND ('@' N)?      // fire on the N-th hit (default 1)
//   KIND  ::= 'alloc' | 'cancel' | 'invariant'
//
// e.g. OPTABS_FAULTS="dnf.product:alloc@3;driver.schedule:cancel". Each arm
// fires exactly once. Sites are validated against knownSites() so a typo in
// a spec is an error, not a silent no-op.
//
// When nothing is armed the cost at every site is a single relaxed atomic
// load (same pattern as support::metricsEnabled()).
//
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_FAULTINJECTION_H
#define OPTABS_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <vector>

namespace optabs::support {

enum class FaultKind : uint8_t {
  Alloc,     // simulate an allocation failure: faultPoint throws bad_alloc
  Cancel,    // simulate an external cancellation request
  Invariant, // simulate corrupted internal state (an invariant breakage)
};

inline const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Alloc:
    return "alloc";
  case FaultKind::Cancel:
    return "cancel";
  case FaultKind::Invariant:
    return "invariant";
  }
  return "?";
}

/// Global flag mirroring "is at least one fault armed". Kept outside the
/// registry so faultPoint() can bail with one relaxed load in the (normal)
/// disarmed case without touching the registry mutex.
extern std::atomic<bool> FaultsArmed;

inline bool faultsEnabled() {
  return FaultsArmed.load(std::memory_order_relaxed);
}

/// Process-wide registry of armed faults. Self-initializes from the
/// OPTABS_FAULTS environment variable on first use.
class FaultRegistry {
public:
  static FaultRegistry &global();

  /// Parse and arm a spec (additive: existing arms stay). Returns false and
  /// fills Err on a malformed spec or an unknown site; in that case nothing
  /// from the spec is armed.
  bool arm(const std::string &Spec, std::string &Err);

  /// Remove every armed fault and reset hit counters.
  void disarm();

  /// Called from instrumented sites. Returns the fault kind if an arm for
  /// this site reaches its trigger count on this call (each arm fires
  /// exactly once), nullopt otherwise.
  std::optional<FaultKind> hit(const char *Site);

  /// Every site name a spec may reference.
  static const std::vector<std::string> &knownSites();

private:
  FaultRegistry();

  struct Arm {
    std::string Site;
    FaultKind Kind;
    uint64_t Nth = 1;  // fire when the site's hit count reaches Nth
    uint64_t Hits = 0; // hits observed so far
    bool Fired = false;
  };

  std::mutex Mutex;
  std::vector<Arm> Arms;
};

/// The per-site hook. Returns nullopt when no fault fires here. An armed
/// Alloc fault is realized directly (throws std::bad_alloc, exactly what a
/// failed allocation inside the site would do); Cancel and Invariant are
/// returned for the caller to realize against its own cancellation token /
/// invariant sink.
inline std::optional<FaultKind> faultPoint(const char *Site) {
  if (!faultsEnabled())
    return std::nullopt;
  auto K = FaultRegistry::global().hit(Site);
  if (K && *K == FaultKind::Alloc)
    throw std::bad_alloc();
  return K;
}

} // namespace optabs::support

#endif // OPTABS_SUPPORT_FAULTINJECTION_H
