//===- TablePrinter.cpp - Paper-shaped text tables -------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace optabs {

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TablePrinter::addRule() { RulesBeforeRow.push_back(Rows.size()); }

std::string TablePrinter::cell(long long V) { return std::to_string(V); }

std::string TablePrinter::cell(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string TablePrinter::percent(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}

void TablePrinter::print(std::ostream &OS, const std::string &Title) const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  auto PrintRule = [&] { OS << std::string(Total, '-') << '\n'; };
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      OS << Cell << std::string(Widths[I] - Cell.size() + 2, ' ');
    }
    OS << '\n';
  };

  if (!Title.empty())
    OS << Title << '\n';
  if (!Header.empty()) {
    PrintRow(Header);
    PrintRule();
  }
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (std::count(RulesBeforeRow.begin(), RulesBeforeRow.end(), I))
      PrintRule();
    PrintRow(Rows[I]);
  }
}

void printBarChart(std::ostream &OS, const std::string &Title,
                   const std::vector<std::pair<std::string, double>> &Entries,
                   unsigned Width) {
  if (!Title.empty())
    OS << Title << '\n';
  double Max = 0;
  size_t LabelWidth = 0;
  for (const auto &[Label, Value] : Entries) {
    Max = std::max(Max, Value);
    LabelWidth = std::max(LabelWidth, Label.size());
  }
  for (const auto &[Label, Value] : Entries) {
    unsigned Bar =
        Max > 0 ? static_cast<unsigned>(std::lround(Value / Max * Width)) : 0;
    OS << Label << std::string(LabelWidth - Label.size() + 2, ' ')
       << std::string(Bar, '#') << ' ' << TablePrinter::cell(Value, 2) << '\n';
  }
}

} // namespace optabs
