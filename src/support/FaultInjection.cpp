//===- FaultInjection.cpp - Deterministic fault injection -----------------===//

#include "support/FaultInjection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace optabs::support {

std::atomic<bool> FaultsArmed{false};

const std::vector<std::string> &FaultRegistry::knownSites() {
  static const std::vector<std::string> Sites = {
      "forward.visit",  "backward.step", "dnf.product",
      "mincostsat.decision", "cache.insert", "driver.schedule",
  };
  return Sites;
}

FaultRegistry &FaultRegistry::global() {
  static FaultRegistry R;
  return R;
}

FaultRegistry::FaultRegistry() {
  if (const char *Env = std::getenv("OPTABS_FAULTS")) {
    std::string Err;
    if (!arm(Env, Err))
      std::fprintf(stderr, "optabs: ignoring OPTABS_FAULTS: %s\n",
                   Err.c_str());
  }
}

bool FaultRegistry::arm(const std::string &Spec, std::string &Err) {
  std::vector<Arm> Parsed;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Part = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Part.empty()) {
      if (Pos > Spec.size())
        break;
      Err = "empty arm in spec '" + Spec + "'";
      return false;
    }

    size_t Colon = Part.find(':');
    if (Colon == std::string::npos) {
      Err = "arm '" + Part + "' is missing ':kind'";
      return false;
    }
    Arm A;
    A.Site = Part.substr(0, Colon);
    std::string Rest = Part.substr(Colon + 1);

    size_t At = Rest.find('@');
    std::string KindStr = Rest.substr(0, At);
    if (At != std::string::npos) {
      std::string NStr = Rest.substr(At + 1);
      char *EndPtr = nullptr;
      unsigned long long N = std::strtoull(NStr.c_str(), &EndPtr, 10);
      if (NStr.empty() || *EndPtr != '\0' || N == 0) {
        Err = "bad hit count '" + NStr + "' in arm '" + Part + "'";
        return false;
      }
      A.Nth = N;
    }

    if (KindStr == "alloc")
      A.Kind = FaultKind::Alloc;
    else if (KindStr == "cancel")
      A.Kind = FaultKind::Cancel;
    else if (KindStr == "invariant")
      A.Kind = FaultKind::Invariant;
    else {
      Err = "unknown fault kind '" + KindStr + "' in arm '" + Part +
            "' (want alloc|cancel|invariant)";
      return false;
    }

    const auto &Sites = knownSites();
    if (std::find(Sites.begin(), Sites.end(), A.Site) == Sites.end()) {
      Err = "unknown fault site '" + A.Site + "'";
      return false;
    }
    Parsed.push_back(std::move(A));
  }

  if (Parsed.empty()) {
    Err = "empty fault spec";
    return false;
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &A : Parsed)
    Arms.push_back(std::move(A));
  FaultsArmed.store(true, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::disarm() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Arms.clear();
  FaultsArmed.store(false, std::memory_order_relaxed);
}

std::optional<FaultKind> FaultRegistry::hit(const char *Site) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &A : Arms) {
    if (A.Fired || A.Site != Site)
      continue;
    if (++A.Hits == A.Nth) {
      A.Fired = true;
      return A.Kind;
    }
  }
  return std::nullopt;
}

} // namespace optabs::support
