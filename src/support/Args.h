//===- Args.h - Small shared command-line parser ---------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative `--flag=VALUE` parser shared by optabs-cli and
/// optabs-serve, replacing the per-flag substr checks each tool used to
/// hand-roll. Flags are registered with a typed destination (or a custom
/// callback); parse() walks argv once, filling destinations, collecting
/// positionals, and failing with a structured message on an unknown flag
/// or a malformed value (the old std::stoul calls threw raw exceptions on
/// junk like `--k=banana`).
///
///   support::ArgParser Args;
///   Args.option("--k", &Opts.K, "dropk beam width");
///   Args.flag("--audit", &Opts.Audit, "certificate-check every verdict");
///   std::string Err;
///   if (!Args.parse(Argc, Argv, Err)) { ... Err names flag and value ... }
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_ARGS_H
#define OPTABS_SUPPORT_ARGS_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace optabs {
namespace support {

class ArgParser {
public:
  /// A boolean switch: `--name` (no value).
  ArgParser &flag(const char *Name, bool *Out, const char *Help = "") {
    Specs.push_back({Name, Help, /*TakesValue=*/false,
                     [Out](const std::string &, std::string &) {
                       *Out = true;
                       return true;
                     }});
    return *this;
  }

  /// `--name=VALUE` into a string; any text accepted.
  ArgParser &option(const char *Name, std::string *Out,
                    const char *Help = "") {
    Specs.push_back({Name, Help, /*TakesValue=*/true,
                     [Out](const std::string &V, std::string &) {
                       *Out = V;
                       return true;
                     }});
    return *this;
  }

  /// `--name=N` into an unsigned integer type (unsigned, size_t, uint64_t).
  template <typename UIntT>
  ArgParser &option(const char *Name, UIntT *Out, const char *Help = "") {
    static_assert(std::is_unsigned_v<UIntT>,
                  "numeric flags are unsigned; use a callback otherwise");
    Specs.push_back({Name, Help, /*TakesValue=*/true,
                     [Out](const std::string &V, std::string &Err) {
                       uint64_t N;
                       if (!parseU64(V, N)) {
                         Err = "expected an unsigned integer";
                         return false;
                       }
                       *Out = static_cast<UIntT>(N);
                       return true;
                     }});
    return *this;
  }

  /// `--name=X.Y` into a double.
  ArgParser &option(const char *Name, double *Out, const char *Help = "") {
    Specs.push_back({Name, Help, /*TakesValue=*/true,
                     [Out](const std::string &V, std::string &Err) {
                       char *End = nullptr;
                       errno = 0;
                       double D = std::strtod(V.c_str(), &End);
                       if (V.empty() || errno != 0 ||
                           End != V.c_str() + V.size()) {
                         Err = "expected a number";
                         return false;
                       }
                       *Out = D;
                       return true;
                     }});
    return *this;
  }

  /// `--name=VALUE` through a custom validator/setter. The callback sets
  /// \p Err and returns false to reject the value.
  ArgParser &
  callback(const char *Name,
           std::function<bool(const std::string &, std::string &)> Fn,
           const char *Help = "") {
    Specs.push_back({Name, Help, /*TakesValue=*/true, std::move(Fn)});
    return *this;
  }

  /// Non-flag arguments are appended here, in order.
  ArgParser &positional(std::vector<std::string> *Out) {
    Positionals = Out;
    return *this;
  }

  /// Parses argv[1..]; on failure \p Err describes the offending flag or
  /// value and the destinations already parsed keep their values.
  bool parse(int Argc, char **Argv, std::string &Err) const {
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.empty() || Arg[0] != '-') {
        if (Positionals)
          Positionals->push_back(Arg);
        else {
          Err = "unexpected argument '" + Arg + "'";
          return false;
        }
        continue;
      }
      size_t Eq = Arg.find('=');
      std::string Name = Arg.substr(0, Eq);
      const Spec *S = findSpec(Name);
      if (!S) {
        Err = "unknown option '" + Name + "'";
        return false;
      }
      if (S->TakesValue != (Eq != std::string::npos)) {
        Err = S->TakesValue
                  ? "option '" + Name + "' requires a value ('" + Name +
                        "=...')"
                  : "option '" + Name + "' takes no value";
        return false;
      }
      std::string Value =
          Eq == std::string::npos ? std::string() : Arg.substr(Eq + 1);
      std::string Detail;
      if (!S->Apply(Value, Detail)) {
        Err = "invalid value '" + Value + "' for '" + Name + "'" +
              (Detail.empty() ? "" : ": " + Detail);
        return false;
      }
    }
    return true;
  }

private:
  struct Spec {
    std::string Name;
    std::string Help;
    bool TakesValue;
    std::function<bool(const std::string &, std::string &)> Apply;
  };

  static bool parseU64(const std::string &Text, uint64_t &Out) {
    if (Text.empty() || Text[0] == '-')
      return false;
    char *End = nullptr;
    errno = 0;
    unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
    if (errno != 0 || End != Text.c_str() + Text.size())
      return false;
    Out = static_cast<uint64_t>(V);
    return true;
  }

  const Spec *findSpec(const std::string &Name) const {
    for (const Spec &S : Specs)
      if (S.Name == Name)
        return &S;
    return nullptr;
  }

  std::vector<Spec> Specs;
  std::vector<std::string> *Positionals = nullptr;
};

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_ARGS_H
