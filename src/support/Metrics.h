//===- Metrics.h - Process-wide metrics registry and profiler --*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Performance observability for the TRACER pipeline: a process-wide
/// MetricRegistry of sharded thread-safe counters, gauges, and log-scale
/// histograms, plus a hierarchical span profiler with Chrome-trace export.
///
/// The design constraint, in the spirit of the overhead-conscious
/// instrumentation of parametric monitoring (Rosu & Chen), is that the
/// instrumentation is *always compiled in* but costs a single
/// relaxed-atomic load and branch when disabled:
///
/// \code
///   if (support::metricsEnabled()) {
///     static auto &Runs =
///         support::MetricRegistry::global().counter("optabs_forward_runs");
///     Runs.add(1);
///   }
///   support::ScopedSpan Span("tracer.forward");  // no-op when disabled
/// \endcode
///
/// Counters are sharded across cache lines and bumped with relaxed atomics
/// so pool workers never contend; histograms use log2 buckets (bucket B
/// holds [2^(B-1), 2^B - 1], bucket 0 holds {0}) and subsume the
/// MinMaxAvg / Histogram accumulators of support/Stats.h: summary() and
/// toHistogram() convert into those types for the bench harnesses.
///
/// Spans form a per-thread hierarchy (strict nesting per thread). A span
/// opened on a pool worker while its thread-local stack is empty is
/// *reparented* under the phase currently published by the driving thread
/// (ScopedSpan with Publish = true), so per-task worker spans aggregate
/// under the pipeline phase that scheduled them. The profiler exports
///
///  * an aggregate tree (name path -> call count + total nanoseconds),
///  * a Chrome trace-event JSON (chrome://tracing / Perfetto: one "X"
///    event per span, one track per thread, workers labeled by their
///    ThreadPool index),
///
/// and MetricRegistry::dumpPrometheus writes a Prometheus-style text dump
/// of every metric plus per-span-path totals.
///
/// Registry entries and profiler thread records are created on demand and
/// never removed, so references returned by counter()/gauge()/histogram()
/// stay valid for the process lifetime; resetAll()/reset() zero values in
/// place (tests rely on this).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_METRICS_H
#define OPTABS_SUPPORT_METRICS_H

#include "support/Stats.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace optabs {
namespace support {

//===----------------------------------------------------------------------===//
// Global enable flag
//===----------------------------------------------------------------------===//

namespace detail {
inline std::atomic<bool> MetricsOn{false};
/// Worker index published by ThreadPool for span-track labeling; -1 on
/// threads that are not pool workers (e.g. main).
inline thread_local int WorkerLabel = -1;
} // namespace detail

/// The single relaxed-atomic branch every instrumentation site pays when
/// metrics are disabled.
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}

inline void setMetricsEnabled(bool On) {
  detail::MetricsOn.store(On, std::memory_order_relaxed);
}

/// Called by ThreadPool workers so the profiler can label their tracks
/// "worker-N". Plain thread-local store: safe to call with metrics off.
inline void setMetricsWorkerLabel(unsigned Index) {
  detail::WorkerLabel = static_cast<int>(Index);
}

//===----------------------------------------------------------------------===//
// Counter / Gauge / LogHistogram
//===----------------------------------------------------------------------===//

namespace detail {
inline constexpr size_t NumShards = 8;

struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> V{0};
};

/// Stable per-thread shard index (round-robin assignment), so two pool
/// workers bumping the same counter rarely share a cache line.
inline size_t shardIndex() {
  static std::atomic<unsigned> Next{0};
  thread_local size_t Shard =
      Next.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shard;
}
} // namespace detail

/// A monotonically increasing counter, sharded across cache lines.
class Counter {
public:
  void add(uint64_t N = 1) {
    Shards[detail::shardIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const detail::PaddedAtomic &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (detail::PaddedAtomic &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  detail::PaddedAtomic Shards[detail::NumShards];
};

/// A point-in-time signed value (e.g. resident bytes of a cache).
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { set(0); }

private:
  std::atomic<int64_t> Value{0};
};

/// A log2-bucketed histogram of unsigned samples with exact count, sum,
/// min, and max. Subsumes the Stats.h accumulators: summary() yields the
/// MinMaxAvg triple, toHistogram() the integer-bucket Histogram (keyed by
/// bucket index).
class LogHistogram {
public:
  static constexpr unsigned NumBuckets = 65; // bucket 0 = {0}, 1..64 = log2

  /// Bucket index of \p Sample: 0 for 0, otherwise floor(log2(S)) + 1, so
  /// bucket B >= 1 holds [2^(B-1), 2^B - 1].
  static unsigned bucketOf(uint64_t Sample) {
    unsigned B = 0;
    while (Sample) {
      Sample >>= 1;
      ++B;
    }
    return B;
  }

  /// Smallest value of bucket \p B (inclusive).
  static uint64_t bucketLow(unsigned B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  /// Largest value of bucket \p B (inclusive).
  static uint64_t bucketHigh(unsigned B) {
    if (B == 0)
      return 0;
    if (B >= 64)
      return UINT64_MAX;
    return (uint64_t(1) << B) - 1;
  }

  void record(uint64_t Sample) {
    Buckets[bucketOf(Sample)].V.fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Sample, std::memory_order_relaxed);
    atomicMin(Min, Sample);
    atomicMax(Max, Sample);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t min() const {
    uint64_t M = Min.load(std::memory_order_relaxed);
    return M == UINT64_MAX && count() == 0 ? 0 : M;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double avg() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0;
  }
  uint64_t bucketCount(unsigned B) const {
    return B < NumBuckets ? Buckets[B].V.load(std::memory_order_relaxed) : 0;
  }

  /// Quantile estimate from the log2 buckets: the upper bound of the
  /// bucket holding the rank-ceil(Q*N) sample, clamped to the exact
  /// [min, max] envelope (so single-valued distributions report the exact
  /// value). Deterministic given the same samples, which is what lets the
  /// serve transcript goldens pin p50/p90/p99 fields byte for byte.
  uint64_t quantile(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0;
    if (Q <= 0)
      return min();
    if (Q >= 1)
      return max();
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
    if (static_cast<double>(Rank) < Q * static_cast<double>(N))
      ++Rank; // ceil
    if (Rank == 0)
      Rank = 1;
    uint64_t Cumulative = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      Cumulative += bucketCount(B);
      if (Cumulative >= Rank) {
        uint64_t V = bucketHigh(B);
        V = std::max(V, min());
        return std::min(V, max());
      }
    }
    return max();
  }

  /// The Stats.h min/max/avg view of this histogram.
  MinMaxAvg summary() const {
    MinMaxAvg S;
    uint64_t N = count();
    if (N == 0)
      return S;
    // Reconstruct the triple without replaying samples: add min and max
    // once each, then pad the count and sum.
    S.add(static_cast<double>(min()));
    if (N > 1)
      S.add(static_cast<double>(max()));
    for (uint64_t I = 2; I < N; ++I)
      S.add(avg()); // preserves count and (approximately) the average
    return S;
  }

  /// The Stats.h integer-bucket view: bucket index -> count (non-empty
  /// buckets only), Figure 14 style.
  Histogram toHistogram() const {
    Histogram H;
    for (unsigned B = 0; B < NumBuckets; ++B)
      for (uint64_t N = bucketCount(B); N > 0; --N)
        H.add(static_cast<int64_t>(B));
    return H;
  }

  void reset() {
    for (detail::PaddedAtomic &B : Buckets)
      B.V.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Min.store(UINT64_MAX, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  static void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V < Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V > Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  detail::PaddedAtomic Buckets[NumBuckets];
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

//===----------------------------------------------------------------------===//
// MetricRegistry
//===----------------------------------------------------------------------===//

/// Process-wide named metrics. Lookup takes a mutex, so hot sites should
/// cache the returned reference (e.g. in a function-local static); the
/// metric objects themselves are lock-free. Entries are never removed.
class MetricRegistry {
public:
  static MetricRegistry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  LogHistogram &histogram(const std::string &Name);

  /// Prometheus text exposition: counters as `# TYPE c counter`, gauges as
  /// gauge, histograms as cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count`/`_min`/`_max`, and (when the profiler has spans) one
  /// `optabs_span_nanos_total{span="a/b"}` / `optabs_span_calls_total`
  /// pair per aggregated span path.
  void dumpPrometheus(std::ostream &OS) const;

  /// dumpPrometheus to \p Path (truncating). Returns false when the file
  /// cannot be opened.
  bool writePrometheusFile(const std::string &Path) const;

  /// Zeroes every metric in place (addresses stay valid).
  void resetAll();

  /// Snapshot of all metric names of one kind, for tests and exporters.
  std::vector<std::string> counterNames() const;

private:
  mutable std::mutex M;
  // std::map: stable iteration order for deterministic dumps; unique_ptr:
  // stable addresses across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<LogHistogram>> Histograms;
};

//===----------------------------------------------------------------------===//
// Profiler and ScopedSpan
//===----------------------------------------------------------------------===//

/// The hierarchical span profiler. One record per thread (created on the
/// thread's first span, kept for the process lifetime); spans nest
/// strictly within a thread, and root-level worker spans reparent under
/// the currently published phase.
class Profiler {
public:
  static Profiler &global();

  /// Nanoseconds since the profiler's epoch (process start / last reset).
  uint64_t nowNs() const { return Epoch.elapsedNanos(); }

  /// Interns a dynamic span name; the returned pointer lives as long as
  /// the process. Span names that are string literals need no interning.
  const char *internName(const std::string &Name);

  /// Aggregate node: call count and total self+children nanoseconds per
  /// hierarchical name path, merged across threads.
  struct AggNode {
    uint64_t Count = 0;
    uint64_t Nanos = 0;
    std::map<std::string, AggNode> Children;

    const AggNode *child(const std::string &Name) const {
      auto It = Children.find(Name);
      return It == Children.end() ? nullptr : &It->second;
    }
  };

  /// Merges every thread's closed spans into one tree (root children are
  /// phases / top-level spans).
  AggNode aggregate() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}, one complete ("X")
  /// event per closed span, one track (tid) per thread with thread_name
  /// metadata ("main", "worker-N"), timestamps in microseconds since the
  /// profiler epoch. Loads in chrome://tracing and Perfetto.
  void writeChromeTrace(std::ostream &OS) const;

  /// writeChromeTrace to \p Path (truncating). False if unopenable.
  bool writeChromeTraceFile(const std::string &Path) const;

  /// Emits this profiler's thread_name metadata and span events as raw
  /// Chrome trace-event objects into an already-open JSON array (no
  /// {"traceEvents": wrapper). \p First carries the comma state across
  /// writers, so a caller can merge additional tracks into the same file
  /// (the service's FlightRecorder composes its request track this way).
  void writeChromeTraceEvents(std::ostream &OS, bool &First) const;

  /// Total closed spans across all threads (tests).
  size_t spanCount() const;

  /// Spans dropped because a thread hit its event cap.
  uint64_t droppedSpans() const;

  /// Clears all recorded spans and restarts the epoch. Must not be called
  /// while any span is open (open spans would be silently discarded).
  void reset();

private:
  friend class ScopedSpan;

  struct SpanEvent {
    const char *Name = nullptr;
    /// Phase published at open time; only set for thread-root spans
    /// (reparenting hint). Null otherwise.
    const char *PhaseHint = nullptr;
    uint64_t StartNs = 0;
    uint64_t DurNs = UINT64_MAX; ///< UINT64_MAX = still open
    uint32_t Parent = UINT32_MAX; ///< index into the same thread's Events
  };

  struct ThreadRecord {
    mutable std::mutex M;
    std::string Label;
    uint32_t Tid = 0;
    uint64_t Generation = 0; ///< bumped by reset(); stale spans skip close
    std::vector<SpanEvent> Events;
    uint64_t Dropped = 0;
    /// Owner-thread-only: indices of currently open spans.
    std::vector<uint32_t> OpenStack;
  };

  /// Hard cap per thread so a pathological run cannot exhaust memory.
  static constexpr size_t MaxEventsPerThread = 1u << 20;

  ThreadRecord *threadRecord();

  /// The phase under which stack-empty worker spans reparent. Published by
  /// Publish spans on the driving thread; static-storage string required.
  std::atomic<const char *> CurrentPhase{nullptr};

  mutable std::mutex M;
  std::vector<std::unique_ptr<ThreadRecord>> Records;
  std::vector<std::unique_ptr<std::string>> NameArena;
  Timer Epoch;
};

/// RAII span. When metrics are disabled at construction this is a no-op
/// (no allocation, no clock read). With Publish = true the span also
/// becomes the globally published phase for its lifetime, adopting spans
/// opened on pool workers with an empty local stack.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, bool Publish = false);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  Profiler::ThreadRecord *Rec = nullptr;
  uint32_t Idx = 0;
  uint64_t Generation = 0;
  const char *PrevPhase = nullptr;
  bool Published = false;
  bool Active = false;
};

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_METRICS_H
