//===- Timer.cpp - Wall-clock timing helpers ------------------------------===//

#include "support/Timer.h"

#include <cmath>
#include <cstdio>

namespace optabs {

std::string formatDuration(double Seconds) {
  char Buf[32];
  if (Seconds < 0.9995) {
    std::snprintf(Buf, sizeof(Buf), "%.0fms", Seconds * 1e3);
  } else if (Seconds < 120) {
    std::snprintf(Buf, sizeof(Buf), "%.0fs", Seconds);
  } else if (Seconds < 7200) {
    std::snprintf(Buf, sizeof(Buf), "%.0fm", Seconds / 60);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.1fh", Seconds / 3600);
  }
  return Buf;
}

} // namespace optabs
