//===- Budget.h - Deterministic work budgets and cooperative cancellation -===//
//
// The resource governor for every long-running kernel. Two complementary
// mechanisms:
//
//  * Logical-step budgets. Each kernel invocation counts its own units of
//    work (forward state visits, backward wp steps, Dnf::product terms,
//    MinCostSat decisions) against a per-task BudgetGate. Because the count
//    is local to one deterministic task — never a counter shared between
//    pool workers — a step-budget exhaustion fires at exactly the same point
//    of the computation at any NumThreads, so budgeted runs stay bitwise
//    reproducible (unlike wall-clock timeouts).
//
//  * Cooperative cancellation + wall-clock deadlines. A CancelToken can be
//    shared across all tasks of a driver run; gates poll it (and an optional
//    deadline) so a stuck kernel unwinds at its next charge() instead of
//    hanging a pool worker forever. These are inherently nondeterministic
//    and are off unless explicitly requested.
//
// Exhaustion is a value, not an exception: charge() returns false (sticky)
// and why() says which resource ran out at which site. Callers unwind to a
// safe boundary and surface Exhausted{resource, site}; QueryDriver maps it
// to the Unresolved verdict path.
//
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_BUDGET_H
#define OPTABS_SUPPORT_BUDGET_H

#include "support/FaultInjection.h"
#include "support/Invariants.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <optional>

namespace optabs::support {

enum class Resource : uint8_t {
  Steps,     // a logical-step budget ran out (deterministic)
  WallClock, // a deadline passed
  Memory,    // MemoryBudgetBytes ceiling or a contained bad_alloc
  Cancelled, // the shared CancelToken was triggered
};

inline const char *resourceName(Resource R) {
  switch (R) {
  case Resource::Steps:
    return "steps";
  case Resource::WallClock:
    return "wall_clock";
  case Resource::Memory:
    return "memory";
  case Resource::Cancelled:
    return "cancelled";
  }
  return "?";
}

/// Structured "this computation was cut short" outcome. Site is a static
/// string naming the kernel that ran out (one of FaultRegistry::knownSites()
/// plus driver-level sites such as "driver.run").
struct Exhausted {
  Resource Res = Resource::Steps;
  const char *Site = "";
};

/// Shared cooperative-cancellation flag. request() may be called from any
/// thread; kernels observe it at their next charge().
class CancelToken {
public:
  void request() { Flag.store(true, std::memory_order_relaxed); }
  bool requested() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Per-task budget meter. Create one gate per kernel invocation (one forward
/// run, one backward trace run, one solver call), charge units of work as
/// they happen, and unwind when charge() returns false. Not thread-safe by
/// design: sharing a gate between workers would reintroduce schedule
/// dependence.
class BudgetGate {
public:
  /// StepLimit 0 = unbounded. DeadlineSeconds 0 = no deadline. The deadline
  /// clock starts at construction.
  explicit BudgetGate(const char *Site, uint64_t StepLimit = 0,
                      const CancelToken *Cancel = nullptr,
                      double DeadlineSeconds = 0,
                      InvariantSink *Sink = nullptr)
      : SiteName(Site), StepLimit(StepLimit), Cancel(Cancel),
        DeadlineSeconds(DeadlineSeconds), Sink(Sink) {}

  /// Charge N units of work. Returns false once the gate is exhausted
  /// (sticky); callers must then stop producing work and unwind. The step
  /// check is purely arithmetic, so it trips at the same unit of work on
  /// every schedule; cancellation and the wall clock are checked after it
  /// and only matter when explicitly armed.
  bool charge(uint64_t N = 1) {
    if (Why)
      return false;
    Used += N;
    if (faultsEnabled())
      if (auto K = faultPoint(SiteName)) { // throws bad_alloc for Alloc
        if (*K == FaultKind::Invariant)
          reportInvariant(Sink, "injected-fault", SiteName,
                          "fault injection: forced invariant breakage");
        Why = Exhausted{Resource::Cancelled, SiteName};
        return false;
      }
    if (StepLimit && Used > StepLimit) {
      Why = Exhausted{Resource::Steps, SiteName};
      return false;
    }
    if (Cancel && Cancel->requested()) {
      Why = Exhausted{Resource::Cancelled, SiteName};
      return false;
    }
    // The wall clock is polled sparsely: deadlines are a coarse safety net,
    // and a syscall per unit of work would dominate small kernels.
    if (DeadlineSeconds > 0 && (Used & 1023) == 0 &&
        Clock.seconds() > DeadlineSeconds) {
      Why = Exhausted{Resource::WallClock, SiteName};
      return false;
    }
    return true;
  }

  /// Force exhaustion from outside the charge path (e.g. a caller realizing
  /// a Cancel fault at a site that has no gate of its own, or mapping a
  /// hard cap to a Memory outcome).
  void exhaust(Resource R) {
    if (!Why)
      Why = Exhausted{R, SiteName};
  }

  bool exhausted() const { return Why.has_value(); }
  const std::optional<Exhausted> &why() const { return Why; }
  uint64_t stepsUsed() const { return Used; }
  const char *site() const { return SiteName; }

private:
  const char *SiteName;
  uint64_t StepLimit;
  const CancelToken *Cancel;
  double DeadlineSeconds;
  InvariantSink *Sink;
  Timer Clock;
  uint64_t Used = 0;
  std::optional<Exhausted> Why;
};

} // namespace optabs::support

#endif // OPTABS_SUPPORT_BUDGET_H
