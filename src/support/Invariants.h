//===- Invariants.h - Checked-error invariant reporting --------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on invariant checking. The paper proves several invariants that
/// the algorithm's correctness rests on - Theorem 3's progress guarantee in
/// dropk, the backward soundness invariant "(p, d) stays inside the
/// formula", the trace/state-length preconditions of B[t] - and a plain
/// `assert` of those compiles out under NDEBUG, turning a violation into a
/// silent unsound pruning of viable abstractions.
///
/// This header replaces those asserts with a *checked-error* mechanism: a
/// violated invariant produces a structured InvariantViolation record in an
/// InvariantSink (thread-safe, so the parallel backward stage can report
/// concurrently), the violating computation recovers along a sound path
/// (e.g. the backward run is discarded like a timeout), and the driver
/// surfaces every record through DriverStats and the CEGAR event trace.
/// When no sink is installed the violation is written to stderr - never a
/// silent no-op, in any build type.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_INVARIANTS_H
#define OPTABS_SUPPORT_INVARIANTS_H

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace optabs {
namespace support {

/// One violated invariant, as recorded by reportInvariant().
struct InvariantViolation {
  /// Stable identifier of the invariant, e.g. "dropk-progress". The audit
  /// layer and the event trace key on this string.
  std::string Check;
  /// The function that detected the violation, e.g. "Dnf::dropK".
  std::string Where;
  /// Human-readable details (sizes, indices, query numbers).
  std::string Message;
};

/// Collects violations. Thread-safe: the driver's parallel backward stage
/// reports from worker threads while the sequential phases read counts.
class InvariantSink {
public:
  void report(std::string Check, std::string Where, std::string Message) {
    std::lock_guard<std::mutex> Lock(M);
    Violations.push_back(
        {std::move(Check), std::move(Where), std::move(Message)});
  }

  size_t count() const {
    std::lock_guard<std::mutex> Lock(M);
    return Violations.size();
  }

  std::vector<InvariantViolation> snapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    return Violations;
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Violations.clear();
  }

private:
  mutable std::mutex M;
  std::vector<InvariantViolation> Violations;
};

/// Records a violation in \p Sink when one is installed; otherwise writes
/// one diagnostic line to stderr. Either way the caller is expected to
/// recover soundly (discard the tainted result, fall back to a weaker but
/// correct step) - reporting never aborts.
inline void reportInvariant(InvariantSink *Sink, const char *Check,
                            const char *Where, std::string Message) {
  if (Sink) {
    Sink->report(Check, Where, std::move(Message));
    return;
  }
  std::fprintf(stderr, "optabs: invariant violation [%s] in %s: %s\n", Check,
               Where, Message.c_str());
}

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_INVARIANTS_H
