//===- Subprocess.h - Child-process spawn/liveness/kill helpers -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX process helpers for the multi-process serving layer
/// (DESIGN.md §13): the shard supervisor spawns `optabs-serve` workers,
/// probes whether they are still alive, kills hung ones, and reaps their
/// exit status. Everything is fork/exec/waitpid under the hood - no shell
/// is ever involved, so worker argv strings are never re-tokenized.
///
/// Liveness is edge-triggered through waitpid(WNOHANG): once a child has
/// been reaped its pid may be recycled by the kernel, so callers must not
/// probe a pid after reap() (ChildProcess tracks that state for them).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_SUBPROCESS_H
#define OPTABS_SUPPORT_SUBPROCESS_H

#include <string>
#include <sys/types.h>
#include <vector>

namespace optabs {
namespace support {

/// One spawned child. Movable, not copyable; the destructor never blocks
/// and never kills - callers decide between kill() + reap() and leaks.
class ChildProcess {
public:
  ChildProcess() = default;
  ChildProcess(ChildProcess &&O) noexcept
      : Pid(O.Pid), Reaped(O.Reaped), Status(O.Status) {
    O.Pid = -1;
    O.Reaped = true;
    O.Status = -1;
  }
  /// Assigning over a live, unreaped child abandons it untracked (never
  /// killed, never reaped) - callers must kill()+reap() the target first.
  ChildProcess &operator=(ChildProcess &&O) noexcept {
    Pid = O.Pid;
    Reaped = O.Reaped;
    Status = O.Status;
    O.Pid = -1;
    O.Reaped = true;
    O.Status = -1;
    return *this;
  }
  ChildProcess(const ChildProcess &) = delete;
  ChildProcess &operator=(const ChildProcess &) = delete;

  /// fork + execv. \p Argv[0] is the executable path (no PATH search).
  /// Returns an invalid ChildProcess with \p Err set when the fork fails
  /// or the exec target is obviously unusable. An exec failure after a
  /// successful fork surfaces as the child exiting 127.
  static ChildProcess spawn(const std::vector<std::string> &Argv,
                            std::string &Err);

  bool valid() const { return Pid > 0; }
  pid_t pid() const { return Pid; }

  /// True while the child exists and has not been reaped. Reaps
  /// opportunistically: a child that exited is collected here and reported
  /// dead (its exit status is retained for exitStatus()).
  bool alive();

  /// Sends \p Signal (default SIGKILL). No-op once reaped.
  void kill(int Signal = 9);

  /// Blocks until the child exits (or \p TimeoutMs elapses; -1 = forever)
  /// and reaps it. Returns the raw waitpid status, or -1 on timeout.
  int reap(int TimeoutMs = -1);

  /// The raw waitpid status once reaped (-1 before).
  int exitStatus() const { return Status; }

private:
  pid_t Pid = -1;
  bool Reaped = true;
  int Status = -1;
};

} // namespace support
} // namespace optabs

#endif // OPTABS_SUPPORT_SUBPROCESS_H
