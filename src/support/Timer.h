//===- Timer.h - Wall-clock timing helpers ---------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the TRACER driver (per-query budgets)
/// and the benchmark harnesses (per-benchmark running times).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_TIMER_H
#define OPTABS_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>
#include <string>

namespace optabs {

/// Measures elapsed time from construction or the last reset().
///
/// Reads std::chrono::steady_clock — monotonic, immune to wall-clock
/// adjustments (NTP steps, DST) — so per-query budgets and profiler spans
/// can never observe negative or jumping durations.
class Timer {
public:
  /// The monotonic clock every duration in the project is measured on.
  using Clock = std::chrono::steady_clock;

  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction or reset() at the clock's full
  /// (nanosecond) resolution; the primitive ScopedSpan timestamps with.
  std::chrono::nanoseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                Start);
  }

  /// elapsed() as a raw nanosecond count.
  uint64_t elapsedNanos() const {
    return static_cast<uint64_t>(elapsed().count());
  }

  /// Elapsed seconds since construction or reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  Clock::time_point Start;
};

/// Formats a duration the way the paper's Table 2 does: "14s", "6m", "3h".
std::string formatDuration(double Seconds);

} // namespace optabs

#endif // OPTABS_SUPPORT_TIMER_H
