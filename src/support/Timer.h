//===- Timer.h - Wall-clock timing helpers ---------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the TRACER driver (per-query budgets)
/// and the benchmark harnesses (per-benchmark running times).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SUPPORT_TIMER_H
#define OPTABS_SUPPORT_TIMER_H

#include <chrono>
#include <string>

namespace optabs {

/// Measures elapsed wall-clock time from construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Formats a duration the way the paper's Table 2 does: "14s", "6m", "3h".
std::string formatDuration(double Seconds);

} // namespace optabs

#endif // OPTABS_SUPPORT_TIMER_H
