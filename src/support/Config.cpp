//===- Config.cpp - Unified public configuration surface ----------------------===//

#include "support/Config.h"

#include <cstdlib>

namespace optabs {

namespace {

void addError(std::vector<ConfigError> *Errors, const std::string &Field,
              const std::string &Message) {
  if (Errors)
    Errors->push_back(ConfigError{Field, Message});
}

/// Parses \p Text fully as an unsigned integer; false on any junk.
bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(Text.c_str(), &End, 10);
  if (errno != 0 || End != Text.c_str() + Text.size() || Text[0] == '-')
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

bool parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Text.c_str(), &End);
  if (errno != 0 || End != Text.c_str() + Text.size())
    return false;
  Out = V;
  return true;
}

/// One environment override: reads \p Var and hands the raw text to
/// \p Apply, which reports a malformed value by returning false.
template <typename ApplyFn>
void envOverride(const char *Var, const std::string &Field,
                 std::vector<ConfigError> *Errors, ApplyFn Apply) {
  const char *Raw = std::getenv(Var);
  if (!Raw)
    return;
  if (!Apply(std::string(Raw)))
    addError(Errors, Field,
             std::string("malformed value '") + Raw + "' in " + Var);
}

} // namespace

std::string formatConfigErrors(const std::vector<ConfigError> &Errors) {
  std::string Out;
  for (const ConfigError &E : Errors)
    Out += "config error: " + E.Field + ": " + E.Message + "\n";
  return Out;
}

bool Config::isKnownStrategy(const std::string &Name) {
  return Name == "tracer" || Name == "eliminate-current" ||
         Name == "greedy-grow";
}

Config Config::fromEnv(std::vector<ConfigError> *Errors) {
  Config C;
  if (std::getenv("OPTABS_AUDIT"))
    C.Audit.Enabled = true;
  if (const char *Path = std::getenv("OPTABS_METRICS"))
    C.Observability.MetricsPath = Path;
  if (const char *Path = std::getenv("OPTABS_CHROME_TRACE"))
    C.Observability.ProfilePath = Path;
  if (const char *Path = std::getenv("OPTABS_EVENT_TRACE"))
    C.Observability.EventTracePath = Path;
  envOverride("OPTABS_THREADS", "execution.num_threads", Errors,
              [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N))
                  return false;
                C.Execution.NumThreads = static_cast<unsigned>(N);
                return true;
              });
  envOverride("OPTABS_K", "execution.k", Errors, [&](const std::string &V) {
    uint64_t N;
    if (!parseU64(V, N))
      return false;
    C.Execution.K = static_cast<unsigned>(N);
    return true;
  });
  envOverride("OPTABS_STRATEGY", "execution.strategy", Errors,
              [&](const std::string &V) {
                if (!isKnownStrategy(V))
                  return false;
                C.Execution.Strategy = V;
                return true;
              });
  envOverride("OPTABS_CACHE_CAPACITY", "execution.forward_cache_capacity",
              Errors, [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N))
                  return false;
                C.Execution.ForwardCacheCapacity = static_cast<size_t>(N);
                return true;
              });
  envOverride("OPTABS_STEP_BUDGET", "budgets.step_budget", Errors,
              [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N))
                  return false;
                C.Budgets.ForwardStepBudget = N;
                C.Budgets.BackwardStepBudget = N;
                C.Budgets.SolverDecisionBudget = N;
                return true;
              });
  envOverride("OPTABS_TIME_BUDGET_SECONDS", "budgets.time_budget_seconds",
              Errors, [&](const std::string &V) {
                double D;
                if (!parseDouble(V, D))
                  return false;
                C.Budgets.TimeBudgetSeconds = D;
                return true;
              });
  envOverride("OPTABS_MEMORY_BUDGET_MB", "budgets.memory_budget_bytes",
              Errors, [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N))
                  return false;
                C.Budgets.MemoryBudgetBytes = N * 1024 * 1024;
                return true;
              });
  envOverride("OPTABS_INCREMENTAL", "service.incremental_re_register",
              Errors, [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N) || N > 1)
                  return false;
                C.Service.IncrementalReRegister = N == 1;
                return true;
              });
  envOverride("OPTABS_SERVICE_TRACE", "observability.service_trace",
              Errors, [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N) || N > 1)
                  return false;
                C.Observability.ServiceTrace = N == 1;
                return true;
              });
  if (const char *Dir = std::getenv("OPTABS_CACHE_DIR"))
    C.Service.CacheDir = Dir;
  envOverride("OPTABS_SPILL_BYTES", "service.spill_bytes", Errors,
              [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N))
                  return false;
                C.Service.SpillBytes = N;
                return true;
              });
  envOverride("OPTABS_PERSIST_ON_SHUTDOWN", "service.persist_on_shutdown",
              Errors, [&](const std::string &V) {
                uint64_t N;
                if (!parseU64(V, N) || N > 1)
                  return false;
                C.Service.PersistOnShutdown = N == 1;
                return true;
              });
  return C;
}

std::vector<ConfigError> Config::validate() const {
  std::vector<ConfigError> Errors;
  auto Reject = [&](const std::string &Field, const std::string &Message) {
    Errors.push_back(ConfigError{Field, Message});
  };

  // (1) Strategy must name one of the three implemented searches.
  if (!isKnownStrategy(Execution.Strategy))
    Reject("execution.strategy",
           "unknown strategy '" + Execution.Strategy +
               "' (expected tracer, eliminate-current or greedy-grow)");
  // (2)/(3) Degenerate loop bounds that would make the CEGAR loop a no-op.
  if (Execution.TracesPerIteration == 0)
    Reject("execution.traces_per_iteration",
           "must analyze at least one counterexample per failed iteration");
  if (Execution.MaxItersPerQuery == 0)
    Reject("execution.max_iters_per_query",
           "the CEGAR loop needs at least one iteration per query");
  if (Execution.ProductSoftCap == 0)
    Reject("execution.product_soft_cap",
           "the Dnf::product soft cap must be at least 1");
  // (4) Budgets must be positive where zero has no 'unbounded' meaning.
  if (Budgets.TimeBudgetSeconds <= 0)
    Reject("budgets.time_budget_seconds", "must be positive");
  if (Budgets.BackwardTimeoutSeconds < 0)
    Reject("budgets.backward_timeout_seconds", "must be non-negative");
  // (5) Wall-clock timeouts are schedule-dependent; they cannot coexist
  // with a determinism claim (previously only a comment on TracerOptions).
  if (Execution.Deterministic && Budgets.BackwardTimeoutSeconds > 0)
    Reject("budgets.backward_timeout_seconds",
           "a wall-clock backward timeout is schedule-dependent and "
           "conflicts with execution.deterministic; use "
           "budgets.backward_step_budget for a reproducible cutoff");
  // (6) The degradation ladder runs at TRACER round boundaries only.
  if (Budgets.MemoryBudgetBytes > 0 && Execution.Strategy == "greedy-grow")
    Reject("budgets.memory_budget_bytes",
           "the memory degradation ladder only runs under the tracer "
           "strategy (greedy-grow has no round boundaries)");
  // (7) A trace label without a trace file records nothing.
  if (!Observability.EventTraceLabel.empty() &&
      Observability.EventTracePath.empty())
    Reject("observability.event_trace_label",
           "an event-trace label requires observability.event_trace_path");
  // (9) The flight recorder must be able to hold at least one event.
  if (Observability.ServiceTrace && Observability.ServiceTraceCapacity == 0)
    Reject("observability.service_trace_capacity",
           "the flight recorder needs capacity for at least one event");
  // (10) Trace exports without tracing would silently write nothing.
  if (!Observability.ServiceTrace &&
      (!Observability.ServiceTraceJsonlPath.empty() ||
       !Observability.ServiceTraceChromePath.empty()))
    Reject("observability.service_trace_jsonl_path",
           "a service trace export path requires "
           "observability.service_trace");
  // (11) A negative slow-query threshold is meaningless (0 disables).
  if (Observability.SlowQuerySeconds < 0)
    Reject("observability.slow_query_seconds", "must be non-negative");
  // (8) Service quotas must admit at least one job per tenant.
  if (Service.MaxPendingPerSession == 0)
    Reject("service.max_pending_per_session",
           "a session must be able to queue at least one job");
  if (Service.MaxSessions == 0)
    Reject("service.max_sessions",
           "the service must admit at least one session");
  // (12) The persistent cache tier needs a directory to write into.
  if (Service.CacheDir.empty()) {
    if (Service.SpillBytes > 0)
      Reject("service.spill_bytes",
             "a spill budget requires service.cache_dir (nowhere to "
             "write spill files)");
    if (Service.PersistOnShutdown)
      Reject("service.persist_on_shutdown",
             "persisting at shutdown requires service.cache_dir (nowhere "
             "to write snapshots)");
  }
  return Errors;
}

} // namespace optabs
