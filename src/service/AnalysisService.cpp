//===- AnalysisService.cpp - Multi-tenant analysis service ----------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes (see the header and DESIGN.md §9 for the model):
//
//  * One mutex guards programs, sessions, queues, and stats. The scheduler
//    thread is the only code that runs drivers or touches the per-program
//    cache shards, so every ForwardRunCache keeps its single-threaded
//    mutating contract even though sessions submit concurrently.
//  * Program registrations are immutable once published: re-registering a
//    name installs a fresh ProgramEntry under the next epoch and retires
//    the old one. Retired entries stay alive while any cache entry's
//    *data* epoch still references their IR (cached forward runs hold
//    references into it); under incremental re-registration a migrated
//    run keeps its original data epoch, so a retired program can outlive
//    several re-registrations.
//  * Incremental re-registration (Config::ServiceConfig, default on):
//    registerProgram fingerprints every version at registration time
//    (ir/ProgramDiff.h) - never by re-reading the retiring Program, which
//    the scheduler may still be mutating through lazy method interning -
//    and diffs fingerprints under the lock. Checks whose dependence
//    footprint avoids every dirty procedure keep their CheckLastDirty
//    epoch; the scheduler then migrates forward runs into the new epoch
//    wholesale (stale ones are shadowed by the per-check MinDataEpoch
//    freshness floor at lookup time) and stored verdicts are filtered
//    right in registerProgram. Jobs answered from a stored verdict replay
//    the whole recorded outcome - including its event-trace verdict line -
//    rather than seeding the driver's viable sets: seeding shortens the
//    search and changes reported iteration counts, and the contract here
//    is bitwise identity with a cold re-registration.
//  * Batch picking: the session with the fewest served jobs leads; its
//    best pending job (priority, then submission order) defines the shard
//    key, and every compatible pending job across all sessions rides in
//    the same driver run, ordered by global submission sequence. That
//    order is what makes batch composition - and therefore cache-hit
//    accounting - deterministic under AutoDispatch = false.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "escape/Escape.h"
#include "ir/Liveness.h"
#include "ir/Parser.h"
#include "ir/ProgramDiff.h"
#include "pointer/PointsTo.h"
#include "service/CacheCodecs.h"
#include "support/Budget.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "tracer/CachePersist.h"
#include "typestate/Typestate.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include <dirent.h>
#include <sys/stat.h>

namespace optabs {
namespace service {

namespace {

/// A property automaton parsed from the "init=...; method: from->to, ..."
/// syntax without touching any Program (method names stay strings). Parsing
/// happens at openSession so tenants get syntax errors synchronously;
/// interning the method names into the (scheduler-owned) Program is
/// deferred to first use.
struct PropertySpec {
  struct Rule {
    std::string Method;
    std::string From;
    std::string To; ///< empty when Error
    bool Error = false;
  };
  std::string Init;
  std::vector<Rule> Rules;
};

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  size_t E = S.find_last_not_of(" \t");
  return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
}

bool parsePropertySpec(const std::string &Spec, PropertySpec &Out,
                       std::string &Err) {
  std::vector<std::string> Clauses;
  std::stringstream SS(Spec);
  std::string Clause;
  while (std::getline(SS, Clause, ';'))
    if (!trim(Clause).empty())
      Clauses.push_back(trim(Clause));
  if (Clauses.empty() || Clauses[0].rfind("init=", 0) != 0) {
    Err = "property must start with 'init=<state>'";
    return false;
  }
  Out.Init = trim(Clauses[0].substr(5));
  for (size_t I = 1; I < Clauses.size(); ++I) {
    size_t Colon = Clauses[I].find(':');
    if (Colon == std::string::npos) {
      Err = "expected 'method: from->to, ...' in '" + Clauses[I] + "'";
      return false;
    }
    std::string Method = trim(Clauses[I].substr(0, Colon));
    std::stringstream TS(Clauses[I].substr(Colon + 1));
    std::string Rule;
    while (std::getline(TS, Rule, ',')) {
      size_t Arrow = Rule.find("->");
      if (Arrow == std::string::npos) {
        Err = "expected 'from->to' in '" + Rule + "'";
        return false;
      }
      PropertySpec::Rule R;
      R.Method = Method;
      R.From = trim(Rule.substr(0, Arrow));
      std::string To = trim(Rule.substr(Arrow + 2));
      if (To == "ERR" || To == "err" || To == "error")
        R.Error = true;
      else
        R.To = To;
      Out.Rules.push_back(std::move(R));
    }
  }
  return true;
}

/// Interns a parsed property into \p P (scheduler thread only - makeMethod
/// mutates the Program).
std::unique_ptr<typestate::TypestateSpec>
materializeSpec(const PropertySpec &PS, ir::Program &P) {
  auto Spec = std::make_unique<typestate::TypestateSpec>(PS.Init);
  for (const PropertySpec::Rule &R : PS.Rules) {
    ir::MethodId M = P.makeMethod(R.Method);
    uint32_t From = Spec->addState(R.From);
    if (R.Error)
      Spec->addErrorTransition(M, From);
    else
      Spec->addTransition(M, From, Spec->addState(R.To));
  }
  return Spec;
}

/// The execution-relevant slice of a session's Config, serialized so
/// sessions coalesce into one batch exactly when a shared driver run would
/// behave identically for both. Observability paths are included (a batch
/// writes one trace/metrics dump, so sessions wanting different files must
/// not share).
std::string optionsSignature(const Config &C) {
  std::ostringstream S;
  S << C.Execution.K << '|' << C.Execution.MaxItersPerQuery << '|'
    << C.Execution.GroupQueries << '|' << C.Execution.ProductSoftCap << '|'
    << C.Execution.TracesPerIteration << '|' << C.Execution.Strategy << '|'
    << C.Budgets.TimeBudgetSeconds << '|' << C.Budgets.BackwardTimeoutSeconds
    << '|' << C.Budgets.ForwardStepBudget << '|'
    << C.Budgets.BackwardStepBudget << '|' << C.Budgets.SolverDecisionBudget
    << '|' << C.Budgets.MemoryBudgetBytes << '|'
    << C.Observability.EventTracePath << '|' << C.Observability.MetricsPath
    << '|' << C.Observability.ProfilePath;
  return S.str();
}

QueryResult rejected(uint64_t Session, std::string Why) {
  QueryResult R;
  R.Session = Session;
  R.Status = JobStatus::Rejected;
  R.Error = std::move(Why);
  return R;
}

std::future<QueryResult> readyFuture(QueryResult R) {
  std::promise<QueryResult> P;
  P.set_value(std::move(R));
  return P.get_future();
}

void bumpServiceCounter(const char *Name, uint64_t N = 1) {
  if (support::metricsEnabled())
    support::MetricRegistry::global().counter(Name).add(N);
}

// -- persistent cache tier helpers ---------------------------------------

std::string hex16(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[I] = Digits[V & 0xf];
    V >>= 4;
  }
  return S;
}

/// mkdir -p: creates \p Dir and its parents; EEXIST is success.
bool ensureDir(const std::string &Dir) {
  if (Dir.empty())
    return false;
  for (size_t I = 1; I <= Dir.size(); ++I) {
    if (I != Dir.size() && Dir[I] != '/')
      continue;
    std::string Prefix = Dir.substr(0, I);
    if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  return true;
}

/// A stable hash of one program version's fingerprint: procedure names and
/// id-inclusive content/liveness hashes plus the entity-table shape.
/// Stamped into every spill file and snapshot so a loaded artifact is
/// provably from a byte-identical (or per-check footprint-clean) program,
/// across process restarts where registration epochs restart from 1.
uint64_t fingerprintHashOf(const ir::ProgramFingerprint &Fp) {
  uint64_t H = tracer::snapshotHash(nullptr, 0);
  auto Mix = [&H](uint64_t V) {
    unsigned char B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<unsigned char>(V >> (8 * I));
    H = tracer::snapshotHash(B, 8, H);
  };
  Mix(Fp.Procs.size());
  for (const auto &P : Fp.Procs) {
    H = tracer::snapshotHash(P.Name.data(), P.Name.size(), H);
    Mix(P.ContentHash);
    Mix(P.LivenessHash);
  }
  Mix(Fp.NumVars);
  Mix(Fp.NumGlobals);
  Mix(Fp.NumFields);
  Mix(Fp.NumAllocs);
  Mix(Fp.NumMethods);
  Mix(Fp.NumSymbols);
  Mix(Fp.NumChecks);
  Mix(Fp.MainProc);
  return H;
}

void saveCnf(tracer::SnapshotWriter &W, const tracer::Cnf &C) {
  const auto &Clauses = C.clauses();
  W.u32(static_cast<uint32_t>(Clauses.size()));
  for (const auto &Clause : Clauses) {
    W.u32(static_cast<uint32_t>(Clause.size()));
    for (const tracer::BoolLit &L : Clause) {
      W.u32(L.Var);
      W.u8(L.Positive ? 1 : 0);
    }
  }
}

bool loadCnf(tracer::SnapshotReader &R, tracer::Cnf &C) {
  uint32_t NumClauses = 0;
  if (!R.u32(NumClauses))
    return false;
  for (uint32_t I = 0; I < NumClauses; ++I) {
    uint32_t NumLits = 0;
    if (!R.u32(NumLits))
      return false;
    std::vector<tracer::BoolLit> Lits;
    Lits.reserve(NumLits);
    for (uint32_t J = 0; J < NumLits; ++J) {
      tracer::BoolLit L;
      uint8_t Pos = 0;
      if (!R.u32(L.Var) || !R.u8(Pos))
        return false;
      L.Positive = Pos != 0;
      Lits.push_back(L);
    }
    C.addClause(std::move(Lits));
  }
  return true;
}

} // namespace

struct AnalysisService::Impl {
  using EscForward = dataflow::ForwardAnalysis<escape::EscapeAnalysis>;
  using TsForward = dataflow::ForwardAnalysis<typestate::TypestateAnalysis>;

  /// A type-state analysis family: one property automaton plus its
  /// per-tracked-site analysis instances. Everything lives here, stably,
  /// because cached forward runs hold references into the analysis.
  struct TsFamily {
    uint64_t Index = 0; ///< >= 1; composes the cache keys' Family field
    std::unique_ptr<typestate::TypestateSpec> Spec;
    std::map<uint32_t, std::unique_ptr<typestate::TypestateAnalysis>> PerSite;
  };

  /// One immutable registration of a program. Lazily grown (analyses,
  /// points-to, families) by the scheduler thread only.
  struct ProgramEntry {
    std::unique_ptr<ir::Program> P;
    uint64_t Epoch = 0;
    std::unique_ptr<escape::EscapeAnalysis> Esc;
    std::unique_ptr<pointer::PointsToResult> Pt;
    std::map<std::string, TsFamily> Families; ///< by property text
    /// Entry-owned liveness tables for forward runs rehydrated from disk.
    /// A driver-computed run points at its driver's liveness; a loaded run
    /// must outlive any driver, so it points here instead. CommandLiveness
    /// is a pure function of P, so pruning - and therefore every verdict -
    /// is bitwise identical either way. Scheduler thread only.
    std::unique_ptr<ir::CommandLiveness> Live;
  };

  /// A stored resolved verdict, replayable across re-registrations while
  /// the check's dependence footprint stays clean. DataEpoch is the epoch
  /// of the program version that computed it (never rewritten: the
  /// CheckLastDirty comparison is against the compute-time version).
  struct VerdictKey {
    bool Typestate = false;
    std::string Property;
    uint32_t Site = 0;
    std::string OptionsSig;
    uint32_t Check = 0;
    bool operator<(const VerdictKey &O) const {
      return std::tie(Typestate, Property, Site, OptionsSig, Check) <
             std::tie(O.Typestate, O.Property, O.Site, O.OptionsSig, O.Check);
    }
  };
  struct VerdictEntry {
    tracer::Verdict V = tracer::Verdict::Unresolved;
    unsigned Iterations = 0;
    uint32_t CheapestCost = 0;
    std::string CheapestParam;
    /// The learned viable set at resolution, migrated alongside the
    /// verdict (kept for audit tooling and future warm-start use; the
    /// replay path never seeds it - see the file comment).
    tracer::Cnf Viable;
    /// Replay fields for the "verdict" event-trace line (round + short vs
    /// full form; see tracer::QueryOutcome::TraceForm).
    unsigned TraceRound = 0;
    uint8_t TraceForm = 0;
    uint64_t DataEpoch = 0;
    /// True for entries rehydrated from a snapshot. They are stamped with
    /// the live epoch their load-time footprint diff validated against,
    /// and replay within that epoch too (a driver-computed verdict only
    /// replays across re-registrations - see pickBatch). Never lowers any
    /// CheckLastDirty floor: the floors also shadow migrated forward runs
    /// and must keep reflecting the last dirtying edit.
    bool Loaded = false;
  };

  /// The per-name slot: survives re-registration and owns the cache shards
  /// (which is the whole point - a new epoch keeps hitting the warm shard
  /// for keys it shares, while stale epochs are evicted below).
  struct ProgramSlot {
    std::shared_ptr<ProgramEntry> Current;
    /// Entries replaced by a re-registration, kept alive until the shards
    /// no longer cache runs whose data epoch references their IR.
    std::vector<std::shared_ptr<ProgramEntry>> Retired;
    bool NeedsInvalidation = false;
    tracer::ForwardRunCache<EscForward> EscCache;
    tracer::ForwardRunCache<TsForward> TsCache;
    /// Per-check dependence footprints of Current (proc indices into
    /// Fingerprint.Procs), kept when incremental re-registration is on so
    /// replay events and `explain` can name the clean footprint.
    std::vector<BitSet> CheckFootprints;

    // -- incremental re-registration state (lock held for all of these) --
    /// Fingerprint of Current, captured at registration (empty Procs when
    /// the feature is off - fingerprinting is skipped entirely).
    ir::ProgramFingerprint Fingerprint;
    /// Per-check epoch of the last re-registration that dirtied the
    /// check's dependence footprint. Sized numChecks of Current when the
    /// feature is on; empty otherwise. A cached artifact with
    /// DataEpoch >= CheckLastDirty[check] is still exact for that check.
    std::vector<uint64_t> CheckLastDirty;
    /// Epoch re-keying the scheduler still has to apply to the forward
    /// shards ((from, to) pairs, in re-registration order).
    std::vector<std::pair<uint64_t, uint64_t>> PendingMigrations;
    /// Stored resolved verdicts; filtered against the diff at re-register.
    std::map<VerdictKey, VerdictEntry> Verdicts;
    /// Family indices must survive re-registration: cache keys fold
    /// (family index << 32) | site, and migrated type-state entries are
    /// only valid if the same property maps to the same index in every
    /// epoch. Scheduler thread only (like the Families map itself).
    uint64_t NextFamilyId = 1;
    std::map<std::string, uint64_t> FamilyIndex; ///< by property text
  };

  struct PendingJob {
    uint64_t Id = 0; ///< global submission sequence; batch execution order
    JobSpec Spec;
    /// Program epoch current at submission. A job still queued when its
    /// program is re-registered fails with a structured stale-epoch reason
    /// unless the diff proves its check's footprint untouched; silently
    /// re-running it against different IR was a bug.
    uint64_t Epoch = 0;
    /// Request identity: the caller's trace id (or the job id when the
    /// caller minted none) + the job id as span id.
    support::TraceContext Ctx;
    /// Submission timestamp (Profiler timebase); 0 when neither tracing
    /// nor metrics were on at submit, so no clock was read.
    uint64_t SubmitNs = 0;
    std::promise<QueryResult> Promise;
  };

  struct SessionState {
    uint64_t Id = 0;
    std::string ProgramName;
    bool Typestate = false;
    std::string Property;
    Config Cfg;
    std::string OptionsSig;
    std::deque<PendingJob> Pending;
    uint64_t SubmittedTotal = 0;
    uint64_t Served = 0; ///< fair-share: lowest goes first
    size_t Running = 0;
    bool Closed = false;
  };

  /// One coalesced unit of driver work, extracted under the lock, executed
  /// without it.
  struct Batch {
    std::string ProgramName;
    bool Typestate = false;
    std::string Property;
    uint32_t Site = 0;
    Config Cfg;
    std::string OptionsSig;
    std::vector<PendingJob> Jobs; ///< sorted by Id (submission order)
    std::vector<uint64_t> JobSessions; ///< parallel to Jobs
    std::shared_ptr<ProgramEntry> Entry;
    ProgramSlot *Slot = nullptr;
    /// Snapshot of the slot's CheckLastDirty, copied under the lock (the
    /// driver reads it without the lock as its per-check data-freshness
    /// floor; a concurrent re-registration must not mutate it mid-run).
    std::vector<uint64_t> MinDataByCheck;
    /// Stored verdicts serving jobs without a driver run, copied under the
    /// lock in pickBatch (parallel to Jobs; nullopt = run the driver).
    /// Only cross-epoch survivors replay - a repeat submission in the same
    /// epoch still exercises the driver and its forward-run cache.
    std::vector<std::optional<VerdictEntry>> Replays;
    /// Batch sequence number (1-based, assigned in pickBatch; 0 only
    /// before assignment). Stable across thread counts: batch formation
    /// runs on the scheduler thread alone.
    uint64_t Id = 0;
    /// Timestamp of batch formation; 0 when neither tracing nor metrics
    /// are on (queue-wait ends, batch-wait starts).
    uint64_t PickNs = 0;
    /// Batch span: the lead job's trace id with the batch id as span.
    support::TraceContext Ctx;
    /// Clean-footprint procedure names for replayed jobs (parallel to
    /// Jobs; empty where the job runs the driver), resolved under the
    /// lock in pickBatch while the slot's footprints are stable.
    std::vector<std::string> ReplayFootprints;
    /// Nonzero arms the disk spill tier for this batch's run: the hash of
    /// the slot's fingerprint, snapshotted under the lock in pickBatch
    /// (executeBatch runs without it, and a concurrent re-registration
    /// may replace the fingerprint). Stamped into spill files so only an
    /// identical program version ever re-warms from them.
    uint64_t FpHash = 0;
  };

  struct BatchResult {
    std::vector<QueryResult> Results; ///< parallel to Batch::Jobs
    /// Per-job verdict-recording material (parallel to Jobs; TraceForm 0
    /// where the job did not run or did not resolve).
    std::vector<unsigned> TraceRound;
    std::vector<uint8_t> TraceForm;
    std::vector<tracer::Cnf> Viable;
    tracer::DriverStats DS;
    bool Ran = false;
    double Seconds = 0;
    /// Timestamp of the moment executeBatch took over (after batch-wait,
    /// before the driver); 0 when neither tracing nor metrics are on.
    uint64_t RunStartNs = 0;
  };

  explicit Impl(Options O) : Opts(std::move(O)) {
    if (Opts.Base.Observability.ServiceTrace)
      Recorder = std::make_unique<support::FlightRecorder>(
          Opts.Base.Observability.ServiceTraceCapacity);
    unsigned Workers = Opts.Base.Execution.NumThreads == 0
                           ? support::ThreadPool::hardwareWorkers()
                           : Opts.Base.Execution.NumThreads;
    Pool = std::make_unique<support::ThreadPool>(Workers);
    Scheduler = std::thread([this] { schedulerLoop(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> Lock(M);
      ShuttingDown = true;
    }
    WorkCV.notify_all();
    IdleCV.notify_all();
    Scheduler.join();
    // Export whatever the flight recorder still holds. After the join no
    // other thread touches the recorder, so the snapshot is complete.
    if (Recorder) {
      const auto &Obs = Opts.Base.Observability;
      if (!Obs.ServiceTraceJsonlPath.empty())
        Recorder->writeJsonlFile(Obs.ServiceTraceJsonlPath);
      if (!Obs.ServiceTraceChromePath.empty())
        Recorder->writeChromeTraceFile(Obs.ServiceTraceChromePath);
    }
  }

  // -- state (guarded by M unless noted) ---------------------------------
  Options Opts;
  mutable std::mutex M;
  std::condition_variable WorkCV; ///< wakes the scheduler
  std::condition_variable IdleCV; ///< wakes drain() waiters
  bool ShuttingDown = false;
  unsigned DrainWaiters = 0;

  std::unique_ptr<support::ThreadPool> Pool; ///< immutable after ctor
  std::thread Scheduler;

  std::map<std::string, ProgramSlot> Programs;
  std::map<uint64_t, SessionState> Sessions;
  uint64_t NextEpoch = 1;   ///< > 0: standalone drivers use epoch 0
  uint64_t NextSession = 1;
  uint64_t NextJob = 1;
  uint64_t NextBatch = 1;
  ServiceStats Stats;

  /// One queued cache-admin operation (cacheOp or the register-time
  /// auto-warm). Executed on the scheduler thread between batches, where
  /// the single-threaded cache contract and the epoch invariants hold.
  struct AdminCmd {
    std::string Action; ///< stats | persist | load | spill | evict
    std::string Program; ///< empty = every registered program
    std::promise<CacheOpResult> Promise;
  };
  std::deque<AdminCmd> AdminQueue; ///< guarded by M
  /// Bytes of spill files on disk, compared against
  /// Config::ServiceConfig::SpillBytes. Seeded from the cache dir's
  /// existing spill files on first use (see ensureSpillAccounting), so a
  /// restart - or a shared cache dir - does not reset the budget; a
  /// rewrite of an existing spill path replaces its old bytes instead of
  /// double-counting. Scheduler thread only (the spill hooks run inside
  /// executeBatch or an admin op, both scheduler-side). The budget is
  /// enforced per worker: shardd workers sharing one dir each apply
  /// their own service.spill_bytes against the shared contents.
  uint64_t SpillBytesUsed = 0;
  bool SpillBytesScanned = false;

  // -- request tracing (guarded by M except where noted) -----------------
  /// Null when observability.service_trace is off: every recording site
  /// below is gated on this one pointer test, so disabled mode costs a
  /// single ordinary load + branch and never constructs a TraceEvent.
  /// The recorder itself is internally synchronized (record() from the
  /// scheduler thread runs outside M in executeBatch).
  std::unique_ptr<support::FlightRecorder> Recorder;
  /// Per-job lifecycle timelines for `explain`, FIFO-bounded at the
  /// recorder's capacity (JobLogOrder is the eviction queue).
  std::map<uint64_t, JobTimeline> JobLog;
  std::deque<uint64_t> JobLogOrder;
  /// Jobs-per-batch distribution. Recorded unconditionally (batch
  /// formation is deterministic, so the stats-op quantiles stay
  /// transcript-stable whether or not metrics are on).
  support::LogHistogram BatchJobsHist;

  bool timingOn() const {
    return Recorder != nullptr || support::metricsEnabled();
  }
  static uint64_t nowNs() { return support::Profiler::global().nowNs(); }

  /// Lock held. Inserts a fresh timeline, evicting oldest-first so the
  /// explain log is bounded by the same capacity as the event ring.
  void logJob(JobTimeline T) {
    while (JobLogOrder.size() >= Recorder->capacity()) {
      JobLog.erase(JobLogOrder.front());
      JobLogOrder.pop_front();
    }
    JobLogOrder.push_back(T.Job);
    JobLog[T.Job] = std::move(T);
  }

  /// Lock held. Null when the job's timeline was evicted (or never made).
  JobTimeline *timeline(uint64_t JobId) {
    auto It = JobLog.find(JobId);
    return It == JobLog.end() ? nullptr : &It->second;
  }

  /// Lock held. Records the terminal event for a job that never reached a
  /// driver run (cancelled, failed stale, shut down).
  void noteTerminal(const PendingJob &J, uint64_t SessionId,
                    const char *Status) {
    if (!Recorder)
      return;
    support::TraceEvent E;
    E.Kind = "fulfilled";
    E.TraceId = J.Ctx.TraceId;
    E.SpanId = J.Ctx.SpanId;
    E.Job = J.Id;
    E.Session = SessionId;
    E.Note = Status;
    Recorder->record(E);
    if (JobTimeline *T = timeline(J.Id)) {
      T->Status = Status;
      T->FulfillNs = nowNs();
    }
  }

  /// Lock held. Records an admission rejection. No job id was minted, so
  /// the event carries only the caller's context and the reason.
  void noteRejected(uint64_t SessionId, const support::TraceContext &Parent,
                    const char *Why) {
    if (!Recorder)
      return;
    support::TraceEvent E;
    E.Kind = "rejected";
    E.TraceId = Parent.TraceId;
    E.SpanId = Parent.SpanId;
    E.Session = SessionId;
    E.Note = Why;
    Recorder->record(E);
  }

  /// Lock held. Comma-joined names of the procedures in \p Check's
  /// dependence footprint (the set a replay proves clean).
  std::string footprintNames(const ProgramSlot &Slot, uint32_t Check) const {
    if (Check >= Slot.CheckFootprints.size())
      return {};
    std::string Out;
    Slot.CheckFootprints[Check].forEach([&](size_t P) {
      if (P < Slot.Fingerprint.Procs.size()) {
        if (!Out.empty())
          Out += ',';
        Out += Slot.Fingerprint.Procs[P].Name;
      }
    });
    return Out;
  }

  // -- helpers -----------------------------------------------------------

  size_t queuedJobs() const {
    size_t N = 0;
    for (const auto &[Id, S] : Sessions)
      N += S.Pending.size() + S.Running;
    return N;
  }

  void setQueueDepth() {
    Stats.QueueDepth = queuedJobs();
    if (support::metricsEnabled()) {
      auto &Reg = support::MetricRegistry::global();
      Reg.gauge("optabs_service_queue_depth")
          .set(static_cast<int64_t>(Stats.QueueDepth));
      // Per-tenant pending gauges (pending + running, i.e. what counts
      // against the session's in-flight quota). Registry entries are
      // never removed, so a closed session's gauge just stays at zero.
      for (const auto &[Id, S] : Sessions)
        Reg.gauge("optabs_service_session_" + std::to_string(Id) +
                  "_pending")
            .set(static_cast<int64_t>(S.Closed ? 0
                                               : S.Pending.size() +
                                                     S.Running));
    }
  }

  /// Scheduler only, lock held. Applies pending epoch migrations to the
  /// forward shards, evicts whatever is left under a stale key, fails (or
  /// re-validates) still-queued jobs from retired epochs, and drops
  /// retired registrations no cached run references any more.
  void processInvalidations() {
    for (auto &[Name, Slot] : Programs) {
      if (!Slot.NeedsInvalidation)
        continue;
      uint64_t Live = Slot.Current->Epoch;

      // Migrations first (incremental path; empty otherwise): re-key every
      // surviving epoch's entries into the new one, in re-registration
      // order. Stale data inside migrated entries is shadowed by the
      // per-check MinDataEpoch floor at lookup time, so re-keying is
      // sound wholesale.
      size_t Migrated = 0;
      for (const auto &[From, To] : Slot.PendingMigrations)
        Migrated += Slot.EscCache.migrateEpoch(From, To) +
                    Slot.TsCache.migrateEpoch(From, To);
      Slot.PendingMigrations.clear();
      if (Migrated) {
        Stats.EntriesMigrated += Migrated;
        bumpServiceCounter("optabs_service_entries_migrated_total", Migrated);
      }

      auto Stale = [Live](const auto &K) { return K.ProgramEpoch != Live; };
      size_t N = Slot.EscCache.evictKeysWhere(Stale) +
                 Slot.TsCache.evictKeysWhere(Stale);
      Stats.StaleEntriesInvalidated += N;
      if (Opts.Base.Service.IncrementalReRegister)
        Stats.EntriesInvalidated += N;
      bumpServiceCounter("optabs_service_stale_invalidated_total", N);

      sweepStalePending(Name, Slot, Live);
      pruneRetired(Slot, Live);
      Slot.NeedsInvalidation = false;
    }
  }

  /// Lock held. Jobs queued before a re-registration either survive (their
  /// check's footprint is provably untouched) or fail with a structured
  /// stale-epoch reason. Fulfilling promises under the lock follows the
  /// shutdown path's precedent.
  void sweepStalePending(const std::string &Name, ProgramSlot &Slot,
                         uint64_t Live) {
    bool Incr = Opts.Base.Service.IncrementalReRegister;
    size_t Failed = 0;
    for (auto &[SId, S] : Sessions) {
      if (S.ProgramName != Name)
        continue;
      for (auto It = S.Pending.begin(); It != S.Pending.end();) {
        PendingJob &J = *It;
        if (J.Epoch == Live) {
          ++It;
          continue;
        }
        bool Clean = Incr && J.Spec.Check < Slot.CheckLastDirty.size() &&
                     Slot.CheckLastDirty[J.Spec.Check] <= J.Epoch;
        if (Clean) {
          // Same check, same footprint, both hashes unchanged: the job's
          // result against the new version is bitwise what it would have
          // been against the one it was submitted under.
          J.Epoch = Live;
          ++It;
          continue;
        }
        QueryResult Res;
        Res.Job = J.Id;
        Res.Session = SId;
        Res.Status = JobStatus::Failed;
        Res.Error = "stale epoch: program '" + Name +
                    "' was re-registered (epoch " + std::to_string(J.Epoch) +
                    " -> " + std::to_string(Live) + ") and check " +
                    std::to_string(J.Spec.Check) +
                    " could not be proven unaffected while the job was queued";
        noteTerminal(J, SId, "failed");
        J.Promise.set_value(std::move(Res));
        ++Stats.JobsFailed;
        ++Failed;
        It = S.Pending.erase(It);
      }
    }
    if (Failed) {
      setQueueDepth();
      IdleCV.notify_all();
    }
  }

  /// Lock held. A retired registration stays alive while any cached run's
  /// data epoch references it (migrated entries keep their original data
  /// epoch, so retired IR can outlive several re-registrations).
  void pruneRetired(ProgramSlot &Slot, uint64_t Live) {
    if (Slot.Retired.empty())
      return;
    std::vector<uint64_t> Referenced;
    auto Note = [&](uint64_t E) { Referenced.push_back(E); };
    Slot.EscCache.forEachDataEpoch(Note);
    Slot.TsCache.forEachDataEpoch(Note);
    Slot.Retired.erase(
        std::remove_if(Slot.Retired.begin(), Slot.Retired.end(),
                       [&](const std::shared_ptr<ProgramEntry> &E) {
                         return E->Epoch != Live &&
                                std::find(Referenced.begin(), Referenced.end(),
                                          E->Epoch) == Referenced.end();
                       }),
        Slot.Retired.end());
  }

  /// Extracts the next coalesced batch. Returns false when nothing is
  /// runnable. Lock held.
  bool pickBatch(Batch &B) {
    // Fair share: the open session with the fewest served jobs (ties to
    // the older session) leads.
    SessionState *Lead = nullptr;
    for (auto &[Id, S] : Sessions) {
      if (S.Closed || S.Pending.empty())
        continue;
      if (!Lead || S.Served < Lead->Served)
        Lead = &S;
    }
    if (!Lead)
      return false;

    // The lead's best job (priority, then submission order) fixes the
    // shard: program, client, property, options - and, for type-state,
    // the tracked site, since one driver run handles one site.
    const PendingJob *Best = nullptr;
    for (const PendingJob &J : Lead->Pending)
      if (!Best || J.Spec.Priority > Best->Spec.Priority ||
          (J.Spec.Priority == Best->Spec.Priority && J.Id < Best->Id))
        Best = &J;

    B.ProgramName = Lead->ProgramName;
    B.Typestate = Lead->Typestate;
    B.Property = Lead->Property;
    B.Site = Best->Spec.Site;
    B.Cfg = Lead->Cfg;
    B.OptionsSig = Lead->OptionsSig;

    // Coalesce matching jobs from every compatible session.
    for (auto &[Id, S] : Sessions) {
      if (S.Closed || S.Pending.empty())
        continue;
      if (S.ProgramName != B.ProgramName || S.Typestate != B.Typestate ||
          S.Property != B.Property || S.OptionsSig != Lead->OptionsSig)
        continue;
      for (auto It = S.Pending.begin(); It != S.Pending.end();) {
        if (B.Typestate && It->Spec.Site != B.Site) {
          ++It;
          continue;
        }
        B.Jobs.push_back(std::move(*It));
        B.JobSessions.push_back(Id);
        It = S.Pending.erase(It);
        ++S.Running;
      }
    }
    // Global submission order: what the "one client submitting the same
    // list to a standalone driver" order would have been.
    std::vector<size_t> Order(B.Jobs.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
      return B.Jobs[X].Id < B.Jobs[Y].Id;
    });
    std::vector<PendingJob> Jobs;
    std::vector<uint64_t> JobSessions;
    Jobs.reserve(Order.size());
    for (size_t I : Order) {
      Jobs.push_back(std::move(B.Jobs[I]));
      JobSessions.push_back(B.JobSessions[I]);
    }
    B.Jobs = std::move(Jobs);
    B.JobSessions = std::move(JobSessions);

    auto SlotIt = Programs.find(B.ProgramName);
    if (SlotIt != Programs.end()) {
      B.Slot = &SlotIt->second;
      B.Entry = SlotIt->second.Current;
    }
    B.Replays.resize(B.Jobs.size());
    if (B.Slot && B.Entry && Opts.Base.Service.IncrementalReRegister) {
      // Snapshot the per-check freshness floor (the driver reads it
      // without the lock) and resolve which jobs replay a stored verdict.
      B.MinDataByCheck = B.Slot->CheckLastDirty;
      for (size_t I = 0; I < B.Jobs.size(); ++I) {
        VerdictKey K;
        K.Typestate = B.Typestate;
        K.Property = B.Property;
        K.Site = B.Site;
        K.OptionsSig = B.OptionsSig;
        K.Check = B.Jobs[I].Spec.Check;
        auto It = B.Slot->Verdicts.find(K);
        if (It == B.Slot->Verdicts.end())
          continue;
        const VerdictEntry &E = It->second;
        // Cross-epoch survivors replay: E outlived at least one
        // re-registration with its check's footprint clean (the filter at
        // re-register erased it otherwise; the comparison here re-checks
        // defensively). Snapshot-loaded verdicts replay within the epoch
        // that admitted them as well - their load-time footprint diff is
        // the same proof a survivor gets from re-registration.
        if ((E.Loaded || E.DataEpoch < B.Entry->Epoch) &&
            K.Check < B.MinDataByCheck.size() &&
            B.MinDataByCheck[K.Check] <= E.DataEpoch)
          B.Replays[I] = E;
      }
    }

    // Disk spill tier: armed for this batch when persistence is on and a
    // fingerprint exists to stamp spill files with. Snapshot the hash
    // here, under the lock - a re-registration may replace the
    // fingerprint while executeBatch runs without it.
    if (B.Slot && B.Entry && persistenceEnabled() &&
        !B.Slot->Fingerprint.Procs.empty())
      B.FpHash = fingerprintHashOf(B.Slot->Fingerprint);

    // Trace identity: the batch rides the lead (first-by-submission) job's
    // trace, with the batch sequence number as its span.
    B.Id = NextBatch++;
    if (timingOn())
      B.PickNs = nowNs();
    B.Ctx.TraceId = B.Jobs.empty() ? B.Id : B.Jobs.front().Ctx.TraceId;
    B.Ctx.SpanId = B.Id;
    B.ReplayFootprints.resize(B.Jobs.size());
    if (B.Slot)
      for (size_t I = 0; I < B.Jobs.size(); ++I)
        if (I < B.Replays.size() && B.Replays[I])
          B.ReplayFootprints[I] =
              footprintNames(*B.Slot, B.Jobs[I].Spec.Check);
    if (Recorder) {
      for (size_t I = 0; I < B.Jobs.size(); ++I) {
        const PendingJob &J = B.Jobs[I];
        support::TraceEvent E;
        E.Kind = "batched";
        E.TraceId = J.Ctx.TraceId;
        E.SpanId = J.Ctx.SpanId;
        E.Job = J.Id;
        E.Session = B.JobSessions[I];
        E.Batch = B.Id;
        E.TsNs = B.PickNs;
        E.U0 = B.Jobs.size(); // peer count, this job included
        E.U1 = J.Spec.Check;
        Recorder->record(E);
        if (JobTimeline *T = timeline(J.Id)) {
          T->Status = "batched";
          T->Batch = B.Id;
          T->Peers = B.Jobs.size();
          T->PickNs = B.PickNs;
        }
      }
    }
    return true;
  }

  /// Scheduler only, lock NOT held: runs the batch's driver.
  BatchResult executeBatch(Batch &B) {
    BatchResult R;
    if (timingOn())
      R.RunStartNs = nowNs();
    R.Results.resize(B.Jobs.size());
    R.TraceRound.assign(B.Jobs.size(), 0);
    R.TraceForm.assign(B.Jobs.size(), 0);
    R.Viable.resize(B.Jobs.size());
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      R.Results[I].Job = B.Jobs[I].Id;
      R.Results[I].Session = B.JobSessions[I];
      R.Results[I].Status = JobStatus::Failed;
    }
    if (!B.Entry) {
      for (QueryResult &Res : R.Results)
        Res.Error = "program '" + B.ProgramName + "' is not registered";
      return R;
    }
    ir::Program &P = *B.Entry->P;

    std::string TraceLabel =
        "service/" + B.ProgramName + "/" +
        (B.Typestate ? "typestate/site=" + std::to_string(B.Site) : "escape");

    // Jobs with a stored verdict replay it wholesale - result fields and
    // the event-trace verdict line the original run emitted - and never
    // reach the driver. The line is byte-identical to what a cold run
    // would write: §6 grouping is exact, so a query's resolution round,
    // iterations and witness are independent of batch composition, and
    // the "query" field is the check id, not a batch position.
    std::vector<ir::CheckId> Queries;
    std::vector<size_t> QueryJob; ///< batch-job index per query
    tracer::EventTraceWriter ReplayTrace;
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      const JobSpec &Spec = B.Jobs[I].Spec;
      if (Spec.Check >= P.numChecks()) {
        R.Results[I].Error = "check " + std::to_string(Spec.Check) +
                             " out of range (program has " +
                             std::to_string(P.numChecks()) + " checks)";
        continue;
      }
      if (B.Typestate && Spec.Site >= P.numAllocs()) {
        R.Results[I].Error = "site " + std::to_string(Spec.Site) +
                             " out of range (program has " +
                             std::to_string(P.numAllocs()) +
                             " allocation sites)";
        continue;
      }
      if (I < B.Replays.size() && B.Replays[I]) {
        const VerdictEntry &E = *B.Replays[I];
        if (Recorder) {
          support::TraceEvent TE;
          TE.Kind = "replayed";
          TE.TraceId = B.Jobs[I].Ctx.TraceId;
          TE.SpanId = B.Jobs[I].Ctx.SpanId;
          TE.Job = B.Jobs[I].Id;
          TE.Session = B.JobSessions[I];
          TE.Batch = B.Id;
          TE.U0 = E.DataEpoch; // epoch of the run the verdict came from
          TE.Note = B.ReplayFootprints[I];
          Recorder->record(TE);
        }
        QueryResult &Res = R.Results[I];
        Res.Status = JobStatus::Done;
        Res.V = E.V;
        Res.Iterations = E.Iterations;
        Res.CheapestCost = E.CheapestCost;
        Res.CheapestParam = E.CheapestParam;
        if (E.TraceForm != 0 &&
            !B.Cfg.Observability.EventTracePath.empty()) {
          if (!ReplayTrace.enabled())
            ReplayTrace.open(B.Cfg.Observability.EventTracePath, TraceLabel);
          tracer::JsonObject O = ReplayTrace.event("verdict");
          O.field("round", E.TraceRound)
              .field("query", Spec.Check)
              .field("verdict", tracer::verdictName(E.V))
              .field("iterations", E.Iterations);
          if (E.TraceForm == 2)
            O.field("cost", E.CheapestCost).field("param", E.CheapestParam);
          ReplayTrace.write(O);
        }
        continue;
      }
      QueryJob.push_back(I);
      Queries.push_back(ir::CheckId(Spec.Check));
    }
    if (Queries.empty())
      return R;

    tracer::TracerOptions O = tracer::TracerOptions::fromConfig(B.Cfg);
    O.EventTraceLabel = TraceLabel;
    const std::vector<uint64_t> *MinData =
        B.MinDataByCheck.empty() ? nullptr : &B.MinDataByCheck;

    // Arm the disk spill tier for the duration of the run: the ladder's
    // first rung then demotes cold entries to spill files instead of
    // dropping them, and cache misses consult the spill dir before
    // recomputing (how a freshly restarted worker re-warms lazily).
    if (B.FpHash && B.Slot)
      armSpill(*B.Slot, B.Entry, B.FpHash);

    Timer BatchTimer;
    try {
      std::vector<tracer::QueryOutcome> Outcomes;
      std::vector<tracer::Cnf> Viable;
      if (!B.Typestate) {
        if (!B.Entry->Esc)
          B.Entry->Esc = std::make_unique<escape::EscapeAnalysis>(P);
        tracer::QueryDriver<escape::EscapeAnalysis> D(P, *B.Entry->Esc, O);
        D.borrowExecution(Pool.get(), &B.Slot->EscCache, B.Entry->Epoch,
                          /*Family=*/0, MinData, Recorder.get(), B.Ctx,
                          B.Id);
        Outcomes = D.run(Queries);
        R.DS = D.stats();
        Viable = D.finalViableSets();
      } else {
        std::string Err;
        TsFamily *Fam = materializeFamily(*B.Slot, *B.Entry, B.Property, Err);
        if (!Fam) {
          for (size_t I : QueryJob)
            R.Results[I].Error = "invalid property: " + Err;
          return R;
        }
        if (!B.Entry->Pt)
          B.Entry->Pt = std::make_unique<pointer::PointsToResult>(
              pointer::runPointsTo(P));
        auto &A = Fam->PerSite[B.Site];
        if (!A)
          A = std::make_unique<typestate::TypestateAnalysis>(
              P, *Fam->Spec, ir::AllocId(B.Site), *B.Entry->Pt);
        tracer::QueryDriver<typestate::TypestateAnalysis> D(P, *A, O);
        // Family: property automaton index in the high half, tracked site
        // in the low half, so every (family, site) analysis keys its own
        // disjoint slice of the shared shard.
        uint64_t Family = (Fam->Index << 32) | B.Site;
        D.borrowExecution(Pool.get(), &B.Slot->TsCache, B.Entry->Epoch,
                          Family, MinData, Recorder.get(), B.Ctx, B.Id);
        Outcomes = D.run(Queries);
        R.DS = D.stats();
        Viable = D.finalViableSets();
      }
      R.Ran = true;
      for (size_t Q = 0; Q < Outcomes.size(); ++Q) {
        QueryResult &Res = R.Results[QueryJob[Q]];
        const tracer::QueryOutcome &Out = Outcomes[Q];
        Res.Status = JobStatus::Done;
        Res.V = Out.V;
        Res.Iterations = Out.Iterations;
        Res.CheapestCost = Out.CheapestCost;
        Res.CheapestParam = Out.CheapestParam;
        if (Out.Exhaustion) {
          Res.ExhaustedResource = support::resourceName(Out.Exhaustion->Res);
          Res.ExhaustedSite = Out.Exhaustion->Site;
        }
        R.TraceRound[QueryJob[Q]] = Out.TraceRound;
        R.TraceForm[QueryJob[Q]] = Out.TraceForm;
        if (Q < Viable.size())
          R.Viable[QueryJob[Q]] = Viable[Q];
      }
    } catch (const std::exception &E) {
      for (size_t I : QueryJob)
        if (R.Results[I].Status != JobStatus::Done)
          R.Results[I].Error = std::string("batch execution failed: ") +
                               E.what();
    }
    R.Seconds = BatchTimer.seconds();
    // Detach the trace sink: the next batch on this slot re-arms it with
    // its own context via borrowExecution. Likewise the spill hooks, which
    // validate against this batch's entry and epoch.
    if (Recorder && B.Slot) {
      B.Slot->EscCache.setTraceSink(nullptr);
      B.Slot->TsCache.setTraceSink(nullptr);
    }
    if (B.FpHash && B.Slot)
      disarmSpill(*B.Slot);
    if (Recorder && R.Ran) {
      auto Phase = [&](const char *Name, double S) {
        support::TraceEvent E;
        E.Kind = "phase";
        E.TraceId = B.Ctx.TraceId;
        E.SpanId = B.Ctx.SpanId;
        E.Batch = B.Id;
        E.Note = Name;
        E.D0 = S;
        Recorder->record(E);
      };
      Phase("plan", R.DS.Phases.Plan);
      Phase("forward", R.DS.Phases.Forward);
      Phase("classify", R.DS.Phases.Classify);
      Phase("extract", R.DS.Phases.Extract);
      Phase("backward", R.DS.Phases.Backward);
      Phase("merge", R.DS.Phases.Merge);
      support::TraceEvent E;
      E.Kind = "run";
      E.TraceId = B.Ctx.TraceId;
      E.SpanId = B.Ctx.SpanId;
      E.Batch = B.Id;
      E.U0 = R.DS.CacheHits;
      E.U1 = R.DS.CacheMisses;
      E.D0 = R.Seconds;
      Recorder->record(E);
    }
    return R;
  }

  TsFamily *materializeFamily(ProgramSlot &Slot, ProgramEntry &E,
                              const std::string &Prop, std::string &Err) {
    auto It = E.Families.find(Prop);
    if (It != E.Families.end())
      return &It->second;
    TsFamily F;
    auto IdxIt = Slot.FamilyIndex.find(Prop);
    if (IdxIt != Slot.FamilyIndex.end()) {
      F.Index = IdxIt->second;
    } else {
      F.Index = Slot.NextFamilyId++;
      Slot.FamilyIndex.emplace(Prop, F.Index);
    }
    if (Prop.empty()) {
      F.Spec = std::make_unique<typestate::TypestateSpec>(
          typestate::TypestateSpec::stress());
    } else {
      PropertySpec PS;
      if (!parsePropertySpec(Prop, PS, Err))
        return nullptr; // openSession validated; defensive for re-registers
      F.Spec = materializeSpec(PS, *E.P);
    }
    return &E.Families.emplace(Prop, std::move(F)).first->second;
  }

  // -- persistent cache tier (scheduler thread only) ---------------------

  using EscKey = tracer::ForwardRunCache<EscForward>::Key;
  using TsKey = tracer::ForwardRunCache<TsForward>::Key;

  /// True when the on-disk tier is usable at all: it needs a directory to
  /// write into and the fingerprint machinery (incremental re-register)
  /// to prove loaded artifacts current.
  bool persistenceEnabled() const {
    return !Opts.Base.Service.CacheDir.empty() &&
           Opts.Base.Service.IncrementalReRegister;
  }

  /// Lazily built per-entry liveness tables (see ProgramEntry::Live).
  const ir::CommandLiveness *entryLiveness(ProgramEntry &E) {
    if (!E.Live)
      E.Live = std::make_unique<ir::CommandLiveness>(*E.P);
    return E.Live.get();
  }

  std::string snapshotPathFor(const std::string &Name) const {
    return Opts.Base.Service.CacheDir + "/prog-" +
           hex16(tracer::snapshotHash(Name.data(), Name.size())) + ".snap";
  }

  /// Spill files are keyed by (program fingerprint, client, family, salt,
  /// bits) - deliberately NOT by registration epoch, which restarts at 1
  /// in every process. Two processes (or two registrations) of the same
  /// program re-warm from each other's spill files; any other program
  /// hashes elsewhere, and the fields stored inside the file re-verify
  /// the match on load.
  std::string spillPathFor(uint64_t FpHash, uint8_t ClientKind,
                           uint64_t Family, uint32_t Salt,
                           const std::vector<bool> &Bits) const {
    uint64_t H = tracer::snapshotHash(nullptr, 0);
    auto Mix = [&H](uint64_t V) {
      unsigned char B[8];
      for (int I = 0; I < 8; ++I)
        B[I] = static_cast<unsigned char>(V >> (8 * I));
      H = tracer::snapshotHash(B, 8, H);
    };
    Mix(FpHash);
    Mix(ClientKind);
    Mix(Family);
    Mix(Salt);
    std::vector<uint8_t> Bytes(Bits.size());
    for (size_t I = 0; I < Bits.size(); ++I)
      Bytes[I] = Bits[I] ? 1 : 0;
    H = tracer::snapshotHash(Bytes.data(), Bytes.size(), H);
    return Opts.Base.Service.CacheDir + "/spill-" + hex16(H) + ".spill";
  }

  /// First-use seeding of the spill-byte accounting: spill files already
  /// in the cache dir (this worker's previous life, or a peer's in a
  /// shared dir) count against the budget from the start, so a restart
  /// never resets it.
  void ensureSpillAccounting() {
    if (SpillBytesScanned)
      return;
    SpillBytesScanned = true;
    DIR *D = ::opendir(Opts.Base.Service.CacheDir.c_str());
    if (!D)
      return;
    while (struct dirent *Ent = ::readdir(D)) {
      std::string N = Ent->d_name;
      if (N.size() < 12 || N.compare(0, 6, "spill-") != 0 ||
          N.compare(N.size() - 6, 6, ".spill") != 0)
        continue;
      struct stat SB;
      if (::stat((Opts.Base.Service.CacheDir + "/" + N).c_str(), &SB) == 0)
        SpillBytesUsed += static_cast<uint64_t>(SB.st_size);
    }
    ::closedir(D);
  }

  /// Writes one spilled run: the validation stamp (fingerprint hash +
  /// full key + client kind), then the run payload. Returns false when
  /// the spill-byte budget is exhausted or the write fails - the caller
  /// (ForwardRunCache::spillUnpinned) then evicts without spilling.
  template <typename RunT, typename CodecT>
  bool writeSpill(uint64_t FpHash, uint8_t ClientKind, uint64_t Family,
                  uint32_t Salt, const std::vector<bool> &Bits,
                  const RunT &Run, const CodecT &Codec) {
    ensureSpillAccounting();
    std::string Path = spillPathFor(FpHash, ClientKind, Family, Salt, Bits);
    // A rewrite replaces its old file, so only the net usage counts -
    // both for the budget gate and for the post-commit accounting.
    struct stat SB;
    uint64_t OldBytes =
        ::stat(Path.c_str(), &SB) == 0 ? static_cast<uint64_t>(SB.st_size)
                                       : 0;
    uint64_t NetUsed =
        SpillBytesUsed > OldBytes ? SpillBytesUsed - OldBytes : 0;
    uint64_t Budget = Opts.Base.Service.SpillBytes;
    if (Budget > 0 && NetUsed >= Budget)
      return false;
    tracer::SnapshotWriter W;
    W.u64(FpHash);
    W.u8(ClientKind);
    W.u64(Family);
    W.u32(Salt);
    W.bits(Bits);
    tracer::RunSink<CodecT> S{W, Codec};
    Run.saveTo(S);
    std::string Err;
    if (!ensureDir(Opts.Base.Service.CacheDir) || !W.commit(Path, Err))
      return false;
    SpillBytesUsed = NetUsed + W.payloadBytes() + 20; // + header/checksum
    return true;
  }

  /// Opens and stamp-validates one spill file; true when it matches the
  /// requested key exactly (hash-collision paths fail here, not later).
  bool openSpill(tracer::SnapshotReader &R, uint64_t FpHash,
                 uint8_t ClientKind, uint64_t Family, uint32_t Salt,
                 const std::vector<bool> &Bits) {
    if (!R.open(spillPathFor(FpHash, ClientKind, Family, Salt, Bits)))
      return false;
    uint64_t GotFp = 0, GotFamily = 0;
    uint8_t GotKind = 0;
    uint32_t GotSalt = 0;
    std::vector<bool> GotBits;
    if (!R.u64(GotFp) || !R.u8(GotKind) || !R.u64(GotFamily) ||
        !R.u32(GotSalt) || !R.bits(GotBits))
      return false;
    if (GotFp != FpHash || GotKind != ClientKind || GotFamily != Family ||
        GotSalt != Salt || GotBits != Bits) {
      R.fail("spill stamp does not match the requested key");
      return false;
    }
    return true;
  }

  /// Arms both of \p Slot's cache shards with disk-tier hooks bound to
  /// \p Entry and \p FpHash. The hooks run on the scheduler thread only
  /// (inside executeBatch's driver run, or inside an admin spill op) and
  /// must be disarmed with disarmSpill afterwards: they capture the entry
  /// they validate against, and a later batch may run a newer epoch.
  void armSpill(ProgramSlot &Slot, std::shared_ptr<ProgramEntry> Entry,
                uint64_t FpHash) {
    ProgramSlot *SlotP = &Slot;
    Slot.EscCache.setSpillStore(
        [this, Entry, FpHash](const EscKey &K, const EscForward &Run,
                              uint64_t DataEpoch) {
          // Only runs computed against this exact program version spill:
          // a migrated run (older data epoch) contains stale values for
          // dirty procedures, shadowed in memory by the per-check
          // freshness floor - but a reload would stamp it fresh, so it
          // must evict instead.
          if (DataEpoch != Entry->Epoch)
            return false;
          return writeSpill(FpHash, /*ClientKind=*/0, K.Family, K.Salt,
                            K.Bits, Run, EscStateCodec());
        },
        [this, Entry, FpHash](const EscKey &K, uint64_t *DataEpoch)
            -> std::unique_ptr<EscForward> {
          tracer::SnapshotReader R;
          if (!openSpill(R, FpHash, /*ClientKind=*/0, K.Family, K.Salt,
                         K.Bits))
            return nullptr;
          if (!Entry->Esc)
            Entry->Esc = std::make_unique<escape::EscapeAnalysis>(*Entry->P);
          auto Run = std::make_unique<EscForward>(
              *Entry->P, *Entry->Esc, Entry->Esc->paramFromBits(K.Bits),
              entryLiveness(*Entry));
          tracer::RunSource<EscStateCodec> S{R, EscStateCodec()};
          if (!Run->loadFrom(S) || R.failed())
            return nullptr;
          *DataEpoch = Entry->Epoch;
          return Run;
        });
    Slot.TsCache.setSpillStore(
        [this, Entry, FpHash](const TsKey &K, const TsForward &Run,
                              uint64_t DataEpoch) {
          if (DataEpoch != Entry->Epoch)
            return false;
          return writeSpill(FpHash, /*ClientKind=*/1, K.Family, K.Salt,
                            K.Bits, Run, TsStateCodec());
        },
        [this, SlotP, Entry, FpHash](const TsKey &K, uint64_t *DataEpoch)
            -> std::unique_ptr<TsForward> {
          tracer::SnapshotReader R;
          if (!openSpill(R, FpHash, /*ClientKind=*/1, K.Family, K.Salt,
                         K.Bits))
            return nullptr;
          typestate::TypestateAnalysis *A =
              tsAnalysisForFamily(*SlotP, *Entry, K.Family);
          if (!A)
            return nullptr;
          auto Run = std::make_unique<TsForward>(
              *Entry->P, *A, A->paramFromBits(K.Bits),
              entryLiveness(*Entry));
          tracer::RunSource<TsStateCodec> S{R, TsStateCodec()};
          if (!Run->loadFrom(S) || R.failed())
            return nullptr;
          *DataEpoch = Entry->Epoch;
          return Run;
        });
  }

  void disarmSpill(ProgramSlot &Slot) {
    Slot.EscCache.setSpillStore(nullptr, nullptr);
    Slot.TsCache.setSpillStore(nullptr, nullptr);
  }

  /// Resolves a composite type-state cache family ((property index << 32)
  /// | tracked site) back to its analysis instance, materializing the
  /// family and points-to on demand exactly like executeBatch does.
  typestate::TypestateAnalysis *
  tsAnalysisForFamily(ProgramSlot &Slot, ProgramEntry &E, uint64_t Family) {
    uint64_t Index = Family >> 32;
    uint32_t Site = static_cast<uint32_t>(Family & 0xffffffffu);
    const std::string *Prop = nullptr;
    for (const auto &[P, Idx] : Slot.FamilyIndex)
      if (Idx == Index) {
        Prop = &P;
        break;
      }
    if (!Prop || Site >= E.P->numAllocs())
      return nullptr;
    std::string Err;
    TsFamily *Fam = materializeFamily(Slot, E, *Prop, Err);
    if (!Fam)
      return nullptr;
    if (!E.Pt)
      E.Pt = std::make_unique<pointer::PointsToResult>(
          pointer::runPointsTo(*E.P));
    auto &A = Fam->PerSite[Site];
    if (!A)
      A = std::make_unique<typestate::TypestateAnalysis>(
          *E.P, *Fam->Spec, ir::AllocId(Site), *E.Pt);
    return A.get();
  }

  /// Still-valid entries of an existing on-disk snapshot, collected on
  /// the side by loadProgram's merge mode so persistProgram can union
  /// them into the file it writes WITHOUT touching the live slot: a
  /// persist must stay read-only on verdicts, caches, and freshness
  /// floors (a "persist" that loaded would also widen the trigger
  /// surface of any load-path bug to every shutdown snapshot). Entries
  /// here passed the same per-entry validation a live load applies and
  /// are absent from the live slot, so re-serializing them against the
  /// live fingerprint is sound.
  struct SnapshotMerge {
    std::map<VerdictKey, VerdictEntry> Verdicts;
    std::vector<std::pair<EscKey, std::unique_ptr<EscForward>>> EscRuns;
    std::vector<std::pair<TsKey, std::unique_ptr<TsForward>>> TsRuns;
  };

  /// Snapshots one program slot - fingerprint, family index, stored
  /// verdicts, and every cached forward run computed against the live
  /// version - into CacheDir. Lock held (enumeration only; no waiting).
  void persistProgram(const std::string &Name, ProgramSlot &Slot,
                      CacheOpResult &Res) {
    if (!Slot.Current) {
      Res.Notes.push_back("program '" + Name + "': no live registration");
      return;
    }
    // Merge-on-persist: several processes may share one cache dir (the
    // shard fleet does), and each persists to the same per-program path.
    // Collecting the existing snapshot's still-valid entries on the side
    // and unioning them into the write makes it a union instead of a
    // clobber - an idle shard persisting a program it never analyzed
    // re-writes its peers' runs rather than erasing them - while the
    // live verdict store, caches, and freshness floors stay untouched
    // (the only live effect is the append-only family-index union, which
    // keeps merged type-state keys index-stable). Stale or corrupt
    // snapshots contribute nothing (the merge validates per entry
    // exactly like a live load).
    SnapshotMerge Merge;
    struct stat SB;
    if (::stat(snapshotPathFor(Name).c_str(), &SB) == 0)
      loadProgram(Name, Slot, Res, &Merge);
    uint64_t Live = Slot.Current->Epoch;
    tracer::SnapshotWriter W;
    W.str(Name);
    W.u64(Live);
    const ir::ProgramFingerprint &Fp = Slot.Fingerprint;
    W.u32(static_cast<uint32_t>(Fp.Procs.size()));
    for (const auto &P : Fp.Procs) {
      W.str(P.Name);
      W.u64(P.ContentHash);
      W.u64(P.LivenessHash);
    }
    W.u32(Fp.NumVars);
    W.u32(Fp.NumGlobals);
    W.u32(Fp.NumFields);
    W.u32(Fp.NumAllocs);
    W.u32(Fp.NumMethods);
    W.u32(Fp.NumSymbols);
    W.u32(Fp.NumChecks);
    W.u32(Fp.MainProc);

    W.u32(static_cast<uint32_t>(Slot.FamilyIndex.size()));
    for (const auto &[Prop, Idx] : Slot.FamilyIndex) {
      W.str(Prop);
      W.u64(Idx);
    }

    auto WriteVerdict = [&](const VerdictKey &K, const VerdictEntry &E) {
      W.u8(K.Typestate ? 1 : 0);
      W.str(K.Property);
      W.u32(K.Site);
      W.str(K.OptionsSig);
      W.u32(K.Check);
      W.u8(static_cast<uint8_t>(E.V));
      W.u32(E.Iterations);
      W.u32(E.CheapestCost);
      W.str(E.CheapestParam);
      W.u32(E.TraceRound);
      W.u8(E.TraceForm);
      saveCnf(W, E.Viable);
      ++Res.VerdictsPersisted;
    };
    W.u32(static_cast<uint32_t>(Slot.Verdicts.size() +
                                Merge.Verdicts.size()));
    for (const auto &[K, E] : Slot.Verdicts)
      WriteVerdict(K, E);
    for (const auto &[K, E] : Merge.Verdicts)
      WriteVerdict(K, E);

    // Forward runs: only those computed against the live version persist
    // (see the spill-hook comment on migrated runs). Snapshot loading
    // requires a bitwise-identical program anyway, so nothing of value is
    // lost - a migrated run's data epoch proves it predates this version.
    uint64_t Skipped = 0;
    std::vector<std::pair<const EscKey *, const EscForward *>> EscRuns;
    Slot.EscCache.forEachEntry(
        [&](const EscKey &K, const EscForward &Run, uint64_t DataEpoch) {
          if (K.ProgramEpoch == Live && DataEpoch == Live)
            EscRuns.emplace_back(&K, &Run);
          else
            ++Skipped;
        });
    W.u32(static_cast<uint32_t>(EscRuns.size() + Merge.EscRuns.size()));
    for (const auto &[K, Run] : EscRuns) {
      W.u32(K->Salt);
      W.bits(K->Bits);
      tracer::RunSink<EscStateCodec> S{W, EscStateCodec()};
      Run->saveTo(S);
      ++Res.RunsPersisted;
    }
    for (const auto &[K, Run] : Merge.EscRuns) {
      W.u32(K.Salt);
      W.bits(K.Bits);
      tracer::RunSink<EscStateCodec> S{W, EscStateCodec()};
      Run->saveTo(S);
      ++Res.RunsPersisted;
    }
    std::vector<std::pair<const TsKey *, const TsForward *>> TsRuns;
    Slot.TsCache.forEachEntry(
        [&](const TsKey &K, const TsForward &Run, uint64_t DataEpoch) {
          if (K.ProgramEpoch == Live && DataEpoch == Live)
            TsRuns.emplace_back(&K, &Run);
          else
            ++Skipped;
        });
    W.u32(static_cast<uint32_t>(TsRuns.size() + Merge.TsRuns.size()));
    for (const auto &[K, Run] : TsRuns) {
      W.u64(K->Family);
      W.u32(K->Salt);
      W.bits(K->Bits);
      tracer::RunSink<TsStateCodec> S{W, TsStateCodec()};
      Run->saveTo(S);
      ++Res.RunsPersisted;
    }
    for (const auto &[K, Run] : Merge.TsRuns) {
      W.u64(K.Family);
      W.u32(K.Salt);
      W.bits(K.Bits);
      tracer::RunSink<TsStateCodec> S{W, TsStateCodec()};
      Run->saveTo(S);
      ++Res.RunsPersisted;
    }
    if (Skipped) {
      Res.RunsSkipped += Skipped;
      Res.Notes.push_back(
          "program '" + Name + "': skipped " + std::to_string(Skipped) +
          " cached run(s) not computed against the live version");
    }

    std::string Err;
    if (!ensureDir(Opts.Base.Service.CacheDir)) {
      Res.Ok = false;
      Res.Error = "cannot create cache directory '" +
                  Opts.Base.Service.CacheDir + "'";
      return;
    }
    if (!W.commit(snapshotPathFor(Name), Err)) {
      Res.Ok = false;
      Res.Error = Err;
    }
  }

  /// Warms one program slot from its snapshot, validating every artifact
  /// against the live fingerprint exactly like a re-registration diff:
  /// verdicts load per-check when the check's dependence footprint avoids
  /// every procedure that changed since the snapshot; forward runs load
  /// only when the program is bitwise identical to the snapshot version.
  /// Anything else - and any structural damage - is skipped with a note,
  /// never served. With \p Merge set, validated entries absent from the
  /// live slot are collected there instead of inserted (the merge half
  /// of persistProgram); verdicts, caches, and freshness floors of the
  /// live slot are then untouched. Lock held.
  void loadProgram(const std::string &Name, ProgramSlot &Slot,
                   CacheOpResult &Res, SnapshotMerge *Merge = nullptr) {
    if (!Slot.Current) {
      Res.Notes.push_back("program '" + Name + "': no live registration");
      return;
    }
    tracer::SnapshotReader R;
    if (!R.open(snapshotPathFor(Name))) {
      Res.Notes.push_back(R.error());
      return;
    }
    std::string SnapName;
    uint64_t SnapEpoch = 0;
    if (!R.str(SnapName) || !R.u64(SnapEpoch)) {
      Res.Notes.push_back(R.error());
      return;
    }
    if (SnapName != Name) {
      Res.Notes.push_back("snapshot " + snapshotPathFor(Name) +
                          ": names program '" + SnapName + "', not '" +
                          Name + "'");
      return;
    }
    ir::ProgramFingerprint SnapFp;
    uint32_t NumProcs = 0;
    if (!R.u32(NumProcs)) {
      Res.Notes.push_back(R.error());
      return;
    }
    // Each proc record is at least 20 bytes (length-prefixed name plus
    // two u64 hashes); a larger count is provably truncated and must not
    // size the resize below.
    if (NumProcs > R.remaining() / 20) {
      R.fail("fingerprint proc count exceeds the remaining payload");
      Res.Notes.push_back(R.error());
      return;
    }
    SnapFp.Procs.resize(NumProcs);
    for (auto &P : SnapFp.Procs)
      if (!R.str(P.Name) || !R.u64(P.ContentHash) ||
          !R.u64(P.LivenessHash)) {
        Res.Notes.push_back(R.error());
        return;
      }
    if (!R.u32(SnapFp.NumVars) || !R.u32(SnapFp.NumGlobals) ||
        !R.u32(SnapFp.NumFields) || !R.u32(SnapFp.NumAllocs) ||
        !R.u32(SnapFp.NumMethods) || !R.u32(SnapFp.NumSymbols) ||
        !R.u32(SnapFp.NumChecks) || !R.u32(SnapFp.MainProc)) {
      Res.Notes.push_back(R.error());
      return;
    }

    // The snapshot-to-live diff: the same comparison a re-registration
    // makes between the retiring and new versions, and the sole authority
    // on what may load. Identical program = everything; comparable =
    // per-check verdicts; incomparable = nothing.
    ir::ProgramDiff D = ir::diffPrograms(SnapFp, Slot.Fingerprint);
    const bool Identical = D.Comparable && D.numDirty() == 0;
    if (!D.Comparable)
      Res.Notes.push_back("program '" + Name +
                          "': snapshot version is incomparable with the "
                          "live version (entity tables or main differ); "
                          "nothing loaded");

    // Family index: merge-or-verify. Cache keys fold the property index,
    // so a loaded type-state run is only valid if its property maps to
    // the same index live; a conflict skips that family's runs.
    uint32_t NumFams = 0;
    if (!R.u32(NumFams)) {
      Res.Notes.push_back(R.error());
      return;
    }
    std::map<uint64_t, std::string> SnapFamilyProp;
    std::set<uint64_t> ConflictFams;
    for (uint32_t I = 0; I < NumFams; ++I) {
      std::string Prop;
      uint64_t Idx = 0;
      if (!R.str(Prop) || !R.u64(Idx)) {
        Res.Notes.push_back(R.error());
        return;
      }
      SnapFamilyProp[Idx] = Prop;
      auto It = Slot.FamilyIndex.find(Prop);
      if (It == Slot.FamilyIndex.end()) {
        Slot.FamilyIndex.emplace(Prop, Idx);
        Slot.NextFamilyId = std::max(Slot.NextFamilyId, Idx + 1);
      } else if (It->second != Idx) {
        ConflictFams.insert(Idx);
        Res.Notes.push_back("program '" + Name + "': property family '" +
                            Prop +
                            "' has a different index live; skipping its "
                            "cached runs");
      }
    }

    auto FootprintClean = [&](uint32_t Check) {
      if (!D.Comparable || Check >= Slot.CheckFootprints.size())
        return false;
      bool Hit = false;
      D.DirtyProcs.forEach([&](size_t P) {
        if (P < Slot.CheckFootprints[Check].size() &&
            Slot.CheckFootprints[Check].test(P))
          Hit = true;
      });
      return !Hit;
    };

    // Stored verdicts: per-check validation, exactly the re-registration
    // filter. A loaded verdict is stamped with the live epoch - the
    // version the footprint comparison just proved it exact for - plus
    // the Loaded flag that lets it replay within that epoch. The
    // CheckLastDirty floors are deliberately never touched: they also
    // shadow stale migrated forward runs in the in-memory caches, and
    // lowering one to admit a verdict would serve those runs as fresh.
    uint32_t NumVerdicts = 0;
    if (!R.u32(NumVerdicts)) {
      Res.Notes.push_back(R.error());
      return;
    }
    uint64_t StaleVerdicts = 0;
    for (uint32_t I = 0; I < NumVerdicts; ++I) {
      VerdictKey K;
      VerdictEntry E;
      uint8_t Ts = 0, V = 0;
      uint32_t Iter = 0, Round = 0;
      if (!R.u8(Ts) || !R.str(K.Property) || !R.u32(K.Site) ||
          !R.str(K.OptionsSig) || !R.u32(K.Check) || !R.u8(V) ||
          !R.u32(Iter) || !R.u32(E.CheapestCost) ||
          !R.str(E.CheapestParam) || !R.u32(Round) || !R.u8(E.TraceForm) ||
          !loadCnf(R, E.Viable)) {
        Res.Notes.push_back(R.error());
        return;
      }
      if (Ts > 1 || V > 2 || E.TraceForm > 2) {
        R.fail("verdict record field out of range");
        Res.Notes.push_back(R.error());
        return;
      }
      K.Typestate = Ts == 1;
      E.V = static_cast<tracer::Verdict>(V);
      E.Iterations = Iter;
      E.TraceRound = Round;
      E.DataEpoch = Slot.Current->Epoch;
      E.Loaded = true;
      if (!FootprintClean(K.Check)) {
        ++StaleVerdicts;
        continue;
      }
      if (Slot.Verdicts.count(K)) {
        ++Res.VerdictsSkipped;
        continue; // a live verdict is always at least as fresh
      }
      if (Merge) {
        Merge->Verdicts.emplace(std::move(K), std::move(E));
        continue;
      }
      Slot.Verdicts.emplace(std::move(K), std::move(E));
      ++Res.VerdictsLoaded;
    }
    if (StaleVerdicts) {
      Res.VerdictsSkipped += StaleVerdicts;
      Res.Notes.push_back("program '" + Name + "': skipped " +
                          std::to_string(StaleVerdicts) +
                          " stored verdict(s) whose check footprint "
                          "changed since the snapshot");
    }

    // Forward runs: all-or-nothing on program identity. Their values are
    // indexed by statement/command ids across the whole program, so any
    // dirty procedure poisons the address space; per-check shadowing
    // cannot save them the way it does live migrated entries, because a
    // load stamps the current epoch as the data epoch.
    uint32_t NumEsc = 0;
    if (!R.u32(NumEsc)) {
      Res.Notes.push_back(R.error());
      return;
    }
    ProgramEntry &E = *Slot.Current;
    if (!Identical && D.Comparable)
      Res.Notes.push_back("program '" + Name + "': " +
                          std::to_string(D.numDirty()) +
                          " procedure(s) changed since the snapshot; "
                          "cached runs not loaded");
    for (uint32_t I = 0; I < NumEsc; ++I) {
      EscKey K;
      if (!R.u32(K.Salt) || !R.bits(K.Bits)) {
        Res.Notes.push_back(R.error());
        return;
      }
      K.ProgramEpoch = E.Epoch;
      if (!E.Esc)
        E.Esc = std::make_unique<escape::EscapeAnalysis>(*E.P);
      auto Run = std::make_unique<EscForward>(
          *E.P, *E.Esc, E.Esc->paramFromBits(K.Bits), entryLiveness(E));
      tracer::RunSource<EscStateCodec> S{R, EscStateCodec()};
      if (!Run->loadFrom(S) || R.failed()) {
        // The stream is sequential: a payload that fails to parse means
        // the rest of the record stream is unrecoverable. Keep what
        // loaded so far; it was each individually validated.
        Res.Notes.push_back(R.failed() ? R.error()
                                       : "snapshot " +
                                             snapshotPathFor(Name) +
                                             ": invalid forward-run "
                                             "payload");
        return;
      }
      if (!Identical || Slot.EscCache.contains(K)) {
        ++Res.RunsSkipped;
        continue;
      }
      if (Merge) {
        Merge->EscRuns.emplace_back(K, std::move(Run));
        continue;
      }
      Slot.EscCache.insert(std::move(K), std::move(Run), E.Epoch);
      ++Res.RunsLoaded;
    }
    uint32_t NumTs = 0;
    if (!R.u32(NumTs)) {
      Res.Notes.push_back(R.error());
      return;
    }
    for (uint32_t I = 0; I < NumTs; ++I) {
      TsKey K;
      if (!R.u64(K.Family) || !R.u32(K.Salt) || !R.bits(K.Bits)) {
        Res.Notes.push_back(R.error());
        return;
      }
      K.ProgramEpoch = E.Epoch;
      typestate::TypestateAnalysis *A = nullptr;
      if (Identical && !ConflictFams.count(K.Family >> 32))
        A = tsAnalysisForFamily(Slot, E, K.Family);
      if (!A) {
        // Still must parse past the payload to reach later records; a
        // throwaway analysis instance is not available, so parse the run
        // into a scratch instance only when one exists. Without one the
        // stream cannot advance - stop with a note.
        if (!Identical) {
          Res.Notes.push_back("program '" + Name +
                              "': remaining type-state runs not loaded "
                              "(program changed since the snapshot)");
        } else {
          Res.Notes.push_back("program '" + Name +
                              "': cannot resolve analysis family " +
                              std::to_string(K.Family >> 32) +
                              " for a cached run; remaining runs "
                              "skipped");
        }
        Res.RunsSkipped += NumTs - I;
        return;
      }
      auto Run = std::make_unique<TsForward>(
          *E.P, *A, A->paramFromBits(K.Bits), entryLiveness(E));
      tracer::RunSource<TsStateCodec> S{R, TsStateCodec()};
      if (!Run->loadFrom(S) || R.failed()) {
        Res.Notes.push_back(R.failed() ? R.error()
                                       : "snapshot " +
                                             snapshotPathFor(Name) +
                                             ": invalid forward-run "
                                             "payload");
        return;
      }
      if (Slot.TsCache.contains(K)) {
        ++Res.RunsSkipped;
        continue;
      }
      if (Merge) {
        Merge->TsRuns.emplace_back(K, std::move(Run));
        continue;
      }
      Slot.TsCache.insert(std::move(K), std::move(Run), E.Epoch);
      ++Res.RunsLoaded;
    }
  }

  /// Lock held. Executes one queued cache-admin command against the
  /// matching program slots and fulfills its promise.
  void runAdminCmd(AdminCmd &Cmd) {
    CacheOpResult Res;
    Res.Ok = true;
    auto ForEachTarget = [&](auto Fn) {
      if (!Cmd.Program.empty()) {
        auto It = Programs.find(Cmd.Program);
        if (It == Programs.end()) {
          Res.Ok = false;
          Res.Error = "program '" + Cmd.Program + "' is not registered";
          return;
        }
        Fn(It->first, It->second);
        return;
      }
      for (auto &[Name, Slot] : Programs)
        Fn(Name, Slot);
    };

    if (Cmd.Action == "stats") {
      ForEachTarget([&](const std::string &, ProgramSlot &Slot) {
        auto Fold = [&](const tracer::ForwardCacheCounters &C,
                        size_t Size) {
          Res.Entries += Size;
          Res.ResidentBytes += C.ResidentBytes;
          Res.SpillWrites += C.SpillWrites;
          Res.SpillLoads += C.SpillLoads;
        };
        Fold(Slot.EscCache.counters(), Slot.EscCache.size());
        Fold(Slot.TsCache.counters(), Slot.TsCache.size());
      });
    } else if (Cmd.Action == "persist" || Cmd.Action == "load") {
      if (!persistenceEnabled()) {
        Res.Ok = false;
        Res.Error = Opts.Base.Service.CacheDir.empty()
                        ? "cache persistence is disabled: no "
                          "service.cache_dir configured"
                        : "cache persistence requires "
                          "service.incremental_re_register (fingerprints "
                          "prove loaded entries current)";
      } else if (Cmd.Action == "persist") {
        ForEachTarget([&](const std::string &Name, ProgramSlot &Slot) {
          persistProgram(Name, Slot, Res);
        });
      } else {
        ForEachTarget([&](const std::string &Name, ProgramSlot &Slot) {
          loadProgram(Name, Slot, Res);
        });
      }
    } else if (Cmd.Action == "spill" || Cmd.Action == "evict") {
      bool Spill = Cmd.Action == "spill" && persistenceEnabled();
      if (Cmd.Action == "spill" && !persistenceEnabled())
        Res.Notes.push_back("no cache_dir configured (or incremental "
                            "re-register off); evicting without "
                            "spilling");
      ForEachTarget([&](const std::string &, ProgramSlot &Slot) {
        // A new cache round first: between batches no driver holds run
        // pointers, so unpinning everything (and flushing deferred
        // replacements) is safe and lets the whole shard demote.
        Slot.EscCache.beginEpoch();
        Slot.TsCache.beginEpoch();
        uint64_t FpHash =
            Spill && Slot.Current && !Slot.Fingerprint.Procs.empty()
                ? fingerprintHashOf(Slot.Fingerprint)
                : 0;
        if (FpHash)
          armSpill(Slot, Slot.Current, FpHash);
        auto Before = [&] {
          return Slot.EscCache.counters().SpillWrites +
                 Slot.TsCache.counters().SpillWrites;
        };
        uint64_t WritesBefore = Before();
        size_t Left = Slot.EscCache.spillUnpinned() +
                      Slot.TsCache.spillUnpinned();
        uint64_t Wrote = Before() - WritesBefore;
        Res.Spilled += Wrote;
        Res.Evicted += Left - std::min<size_t>(Left, Wrote);
        if (FpHash)
          disarmSpill(Slot);
        // Post-operation footprint plus the lifetime spill counters, so
        // the response is self-describing (no follow-up stats op needed
        // to see where the entries went).
        auto Fold = [&](const tracer::ForwardCacheCounters &C,
                        size_t Size) {
          Res.Entries += Size;
          Res.ResidentBytes += C.ResidentBytes;
          Res.SpillWrites += C.SpillWrites;
          Res.SpillLoads += C.SpillLoads;
        };
        Fold(Slot.EscCache.counters(), Slot.EscCache.size());
        Fold(Slot.TsCache.counters(), Slot.TsCache.size());
      });
    } else {
      Res.Ok = false;
      Res.Error = "unknown cache action '" + Cmd.Action +
                  "' (expected stats, persist, load, spill or evict)";
    }
    Cmd.Promise.set_value(std::move(Res));
  }

  /// Lock held. Drains the admin queue in submission order - notably
  /// before the next batch is picked, so a register-time auto-warm is
  /// visible to the first batch on that program.
  void processAdminCommands() {
    while (!AdminQueue.empty()) {
      AdminCmd Cmd = std::move(AdminQueue.front());
      AdminQueue.pop_front();
      runAdminCmd(Cmd);
    }
  }

  void schedulerLoop() {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      processInvalidations();
      if (ShuttingDown)
        break;
      processAdminCommands();
      Batch B;
      if ((Opts.AutoDispatch || DrainWaiters > 0) && pickBatch(B)) {
        Lock.unlock();
        BatchResult R = executeBatch(B);
        Lock.lock();
        // Record stats and replayable verdicts BEFORE the results are
        // moved into the promises: moving hollows out the string fields
        // (witness param, error text) that the verdict store keeps.
        finishBatch(B, R);
        for (size_t I = 0; I < B.Jobs.size(); ++I)
          B.Jobs[I].Promise.set_value(std::move(R.Results[I]));
        IdleCV.notify_all();
        continue;
      }
      if (queuedJobs() == 0)
        IdleCV.notify_all();
      WorkCV.wait(Lock);
    }
    // Shutdown persist: snapshot every program so the next process starts
    // warm. Runs before the promises are doomed - the caches are quiet
    // (no batch is running) and the fingerprints are final.
    if (Opts.Base.Service.PersistOnShutdown && persistenceEnabled()) {
      for (auto &[Name, Slot] : Programs) {
        CacheOpResult Res;
        Res.Ok = true;
        persistProgram(Name, Slot, Res);
      }
    }
    // Queued admin operations complete with a structured shutdown error.
    for (AdminCmd &Cmd : AdminQueue) {
      CacheOpResult Res;
      Res.Error = "service shut down";
      Cmd.Promise.set_value(std::move(Res));
    }
    AdminQueue.clear();
    // Shutdown: everything still queued completes as Cancelled.
    std::vector<std::promise<QueryResult>> Doomed;
    for (auto &[Id, S] : Sessions) {
      for (PendingJob &J : S.Pending) {
        QueryResult Res;
        Res.Job = J.Id;
        Res.Session = Id;
        Res.Status = JobStatus::Cancelled;
        Res.Error = "service shut down";
        noteTerminal(J, Id, "cancelled");
        J.Promise.set_value(std::move(Res));
        ++Stats.JobsCancelled;
      }
      S.Pending.clear();
    }
    setQueueDepth();
    IdleCV.notify_all();
  }

  /// Lock held: folds a finished batch into stats and session accounting,
  /// and records freshly resolved verdicts for cross-epoch replay.
  void finishBatch(const Batch &B, const BatchResult &R) {
    ++Stats.Batches;
    Stats.CoalescedJobs += B.Jobs.size() - 1;
    BatchJobsHist.record(B.Jobs.size());
    uint64_t FulfillNs = timingOn() ? nowNs() : 0;
    bool Incr = Opts.Base.Service.IncrementalReRegister;
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      if (R.Results[I].Status == JobStatus::Done)
        ++Stats.JobsCompleted;
      else
        ++Stats.JobsFailed;
      auto It = Sessions.find(B.JobSessions[I]);
      if (It != Sessions.end()) {
        ++It->second.Served;
        --It->second.Running;
      }
      if (I < B.Replays.size() && B.Replays[I]) {
        ++Stats.VerdictsReplayed;
        bumpServiceCounter("optabs_service_verdicts_replayed_total");
        // A replayed verdict is a whole fixpoint search the batch never
        // re-ran; count it alongside in-run cache hits below.
        ++Stats.FixpointsAmortized;
        bumpServiceCounter("optabs_service_fixpoints_amortized_total");
        continue;
      }
      // Record resolved driver verdicts (never budget-unresolved ones:
      // a later run under the same options must re-attempt those). The
      // entry's DataEpoch is the epoch the batch actually ran against;
      // if the program was re-registered mid-batch, the replay-time
      // CheckLastDirty comparison decides whether it is still exact.
      if (Incr && B.Slot && R.Ran &&
          R.Results[I].Status == JobStatus::Done &&
          (R.Results[I].V == tracer::Verdict::Proven ||
           R.Results[I].V == tracer::Verdict::Impossible)) {
        VerdictKey K;
        K.Typestate = B.Typestate;
        K.Property = B.Property;
        K.Site = B.Site;
        K.OptionsSig = B.OptionsSig;
        K.Check = B.Jobs[I].Spec.Check;
        VerdictEntry E;
        E.V = R.Results[I].V;
        E.Iterations = R.Results[I].Iterations;
        E.CheapestCost = R.Results[I].CheapestCost;
        E.CheapestParam = R.Results[I].CheapestParam;
        E.Viable = R.Viable[I];
        E.TraceRound = R.TraceRound[I];
        E.TraceForm = R.TraceForm[I];
        E.DataEpoch = B.Entry->Epoch;
        B.Slot->Verdicts[K] = std::move(E);
      }
    }
    if (R.Ran) {
      Stats.ForwardRuns += R.DS.ForwardRuns;
      Stats.BackwardRuns += R.DS.BackwardRuns;
      Stats.CacheHits += R.DS.CacheHits;
      Stats.CacheMisses += R.DS.CacheMisses;
      Stats.CacheEvictions += R.DS.CacheEvictions;
      Stats.FixpointsAmortized += R.DS.CacheHits;
      bumpServiceCounter("optabs_service_fixpoints_amortized_total",
                         R.DS.CacheHits);
    }

    // Per-job fulfillment: SLO histograms, slow-query log, trace events
    // and `explain` timelines. One FulfillNs per batch keeps the latency
    // decomposition exact: e2e = queue-wait + batch-wait + run by ns
    // arithmetic, no residual.
    const double SlowS = Opts.Base.Observability.SlowQuerySeconds;
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      const PendingJob &J = B.Jobs[I];
      const QueryResult &Res = R.Results[I];
      double E2eS = 0;
      if (FulfillNs && J.SubmitNs) {
        uint64_t QueueNs = B.PickNs - J.SubmitNs;
        uint64_t BatchNs = R.RunStartNs - B.PickNs;
        uint64_t RunNs = FulfillNs - R.RunStartNs;
        uint64_t E2eNs = FulfillNs - J.SubmitNs;
        E2eS = static_cast<double>(E2eNs) / 1e9;
        if (support::metricsEnabled()) {
          auto &Reg = support::MetricRegistry::global();
          std::string P =
              "optabs_service_session_" + std::to_string(B.JobSessions[I]);
          Reg.histogram(P + "_queue_wait_micros").record(QueueNs / 1000);
          Reg.histogram(P + "_batch_wait_micros").record(BatchNs / 1000);
          Reg.histogram(P + "_run_micros").record(RunNs / 1000);
          Reg.histogram(P + "_e2e_micros").record(E2eNs / 1000);
        }
        if (SlowS > 0 && E2eS > SlowS) {
          ++Stats.SlowQueries;
          bumpServiceCounter("optabs_service_slow_queries_total");
          if (Recorder) {
            support::TraceEvent E;
            E.Kind = "slow-query";
            E.TraceId = J.Ctx.TraceId;
            E.SpanId = J.Ctx.SpanId;
            E.Job = J.Id;
            E.Session = B.JobSessions[I];
            E.Batch = B.Id;
            E.D0 = E2eS;
            Recorder->record(E);
          }
        }
      }
      if (Recorder) {
        support::TraceEvent E;
        E.Kind = "fulfilled";
        E.TraceId = J.Ctx.TraceId;
        E.SpanId = J.Ctx.SpanId;
        E.Job = J.Id;
        E.Session = B.JobSessions[I];
        E.Batch = B.Id;
        E.TsNs = FulfillNs;
        E.D0 = E2eS;
        E.Note = jobStatusName(Res.Status);
        if (Res.Status == JobStatus::Done) {
          E.Note += ':';
          E.Note += tracer::verdictName(Res.V);
        }
        Recorder->record(E);
        if (JobTimeline *T = timeline(J.Id)) {
          T->Status = jobStatusName(Res.Status);
          if (Res.Status == JobStatus::Done)
            T->Verdict = tracer::verdictName(Res.V);
          T->Batch = B.Id;
          T->Peers = B.Jobs.size();
          T->PickNs = B.PickNs;
          T->RunStartNs = R.RunStartNs;
          T->FulfillNs = FulfillNs;
          if (R.Ran) {
            T->PlanS = R.DS.Phases.Plan;
            T->ForwardS = R.DS.Phases.Forward;
            T->ClassifyS = R.DS.Phases.Classify;
            T->ExtractS = R.DS.Phases.Extract;
            T->BackwardS = R.DS.Phases.Backward;
            T->MergeS = R.DS.Phases.Merge;
            T->CacheHits = R.DS.CacheHits;
            T->CacheMisses = R.DS.CacheMisses;
          }
          if (I < B.Replays.size() && B.Replays[I]) {
            T->Replayed = true;
            T->ReplayDataEpoch = B.Replays[I]->DataEpoch;
            T->CleanFootprint = B.ReplayFootprints[I];
          }
        }
      }
    }
    setQueueDepth();
    if (support::metricsEnabled()) {
      auto &Reg = support::MetricRegistry::global();
      Reg.counter("optabs_service_batches_total").add(1);
      Reg.histogram("optabs_service_batch_jobs").record(B.Jobs.size());
      auto Micros = static_cast<uint64_t>(R.Seconds * 1e6);
      Reg.histogram("optabs_service_batch_micros").record(Micros);
      // Per-tenant phase attribution: one histogram per session that had
      // jobs in this batch (entries are never removed from the registry,
      // so the references stay valid).
      std::vector<uint64_t> Tenants(B.JobSessions);
      std::sort(Tenants.begin(), Tenants.end());
      Tenants.erase(std::unique(Tenants.begin(), Tenants.end()),
                    Tenants.end());
      for (uint64_t T : Tenants)
        Reg.histogram("optabs_service_session_" + std::to_string(T) +
                      "_batch_micros")
            .record(Micros);
    }
  }
};

AnalysisService::AnalysisService() : AnalysisService(Options()) {}

AnalysisService::AnalysisService(Options Opts)
    : I(std::make_unique<Impl>(std::move(Opts))) {}

AnalysisService::~AnalysisService() = default;

RegisterResult AnalysisService::registerProgram(const std::string &Name,
                                                const std::string &IrText) {
  RegisterResult R;
  if (Name.empty()) {
    R.Error = "program name must be non-empty";
    return R;
  }
  auto Entry = std::make_shared<Impl::ProgramEntry>();
  Entry->P = std::make_unique<ir::Program>();
  std::string Err;
  if (!ir::parseProgram(IrText, *Entry->P, Err)) {
    R.Error = Err;
    return R;
  }
  // Fingerprint and footprints of the NEW version, computed outside the
  // lock (both walk the whole program). The diff later compares this
  // against the fingerprint stored when the retiring version registered -
  // never against the retiring Program object itself, which the scheduler
  // may still be mutating through lazy method interning.
  const bool Incr = I->Opts.Base.Service.IncrementalReRegister;
  ir::ProgramFingerprint NewFp;
  std::vector<BitSet> NewFoot;
  if (Incr) {
    NewFp = ir::fingerprintProgram(*Entry->P);
    NewFoot = ir::checkFootprints(*Entry->P);
  }
  auto FootprintDirty = [](const BitSet &Foot, const BitSet &Dirty) {
    bool Hit = false;
    Dirty.forEach([&](size_t P) {
      if (P < Foot.size() && Foot.test(P))
        Hit = true;
    });
    return Hit;
  };
  {
    std::lock_guard<std::mutex> Lock(I->M);
    Entry->Epoch = I->NextEpoch++;
    Impl::ProgramSlot &Slot = I->Programs[Name];
    if (!Slot.Current) {
      size_t Cap = I->Opts.Base.Execution.ForwardCacheCapacity;
      Slot.EscCache.setCapacity(Cap);
      Slot.TsCache.setCapacity(Cap);
      if (Incr)
        Slot.CheckLastDirty.assign(Entry->P->numChecks(), Entry->Epoch);
    } else {
      R.ReRegistered = true;
      bool DidIncremental = false;
      if (Incr) {
        ir::ProgramDiff D = ir::diffPrograms(Slot.Fingerprint, NewFp);
        if (D.Comparable) {
          DidIncremental = true;
          R.Incremental = true;
          R.DirtyProcs = D.DirtyProcNames;
          I->Stats.ProceduresDirty += D.numDirty();
          uint32_t NumChecks = Entry->P->numChecks();
          std::vector<uint64_t> NewCLD(NumChecks, Entry->Epoch);
          for (uint32_t C = 0; C < NumChecks; ++C) {
            bool Dirty = C >= Slot.CheckLastDirty.size() ||
                         FootprintDirty(NewFoot[C], D.DirtyProcs);
            if (!Dirty)
              NewCLD[C] = Slot.CheckLastDirty[C];
            else
              ++R.DirtyChecks;
          }
          Slot.CheckLastDirty = std::move(NewCLD);
          Slot.PendingMigrations.emplace_back(Slot.Current->Epoch,
                                              Entry->Epoch);
          // Filter stored verdicts right here: the counts are part of the
          // registration receipt's accounting, and the scheduler's later
          // shard migration never consults them again.
          for (auto It = Slot.Verdicts.begin(); It != Slot.Verdicts.end();) {
            bool Keep = It->first.Check < Slot.CheckLastDirty.size() &&
                        Slot.CheckLastDirty[It->first.Check] <=
                            It->second.DataEpoch;
            if (Keep) {
              ++I->Stats.EntriesMigrated;
              ++It;
            } else {
              ++I->Stats.EntriesInvalidated;
              It = Slot.Verdicts.erase(It);
            }
          }
        }
      }
      if (!DidIncremental) {
        // Full invalidation: the feature is off, or the versions are
        // incomparable (entity tables or main moved) - parameter spaces
        // may not line up, so nothing migrates and every check is dirty.
        if (Incr) {
          I->Stats.EntriesInvalidated += Slot.Verdicts.size();
          I->Stats.ProceduresDirty += NewFp.Procs.size();
          R.DirtyChecks = Entry->P->numChecks();
        }
        Slot.Verdicts.clear();
        Slot.PendingMigrations.clear();
        Slot.CheckLastDirty.assign(Incr ? Entry->P->numChecks() : 0,
                                   Entry->Epoch);
      }
      Slot.Retired.push_back(std::move(Slot.Current));
      Slot.NeedsInvalidation = true;
    }
    Slot.Fingerprint = std::move(NewFp);
    Slot.CheckFootprints = std::move(NewFoot);
    Slot.Current = Entry;
    ++I->Stats.ProgramsRegistered;
    R.Ok = true;
    R.Epoch = Entry->Epoch;
    R.Checks = Entry->P->numChecks();
    R.Allocs = Entry->P->numAllocs();
    // Auto-warm: queue a snapshot load for this program so the scheduler
    // rehydrates whatever a previous process persisted before it picks
    // the first batch. Stale/corrupt snapshots degrade to a cold start
    // with notes; nobody waits on this promise.
    if (I->persistenceEnabled()) {
      Impl::AdminCmd Cmd;
      Cmd.Action = "load";
      Cmd.Program = Name;
      I->AdminQueue.push_back(std::move(Cmd));
    }
  }
  bumpServiceCounter("optabs_service_programs_registered_total");
  I->WorkCV.notify_all(); // stale-epoch eviction runs promptly
  return R;
}

Session AnalysisService::openSession(const SessionSpec &Spec,
                                     std::string &Error) {
  if (Spec.Client != "escape" && Spec.Client != "typestate") {
    Error = "client must be 'escape' or 'typestate', got '" + Spec.Client +
            "'";
    return Session();
  }
  if (Spec.Client == "escape" && !Spec.Property.empty()) {
    Error = "the escape client takes no property";
    return Session();
  }
  std::vector<ConfigError> Errs = Spec.SessionConfig.validate();
  if (!Errs.empty()) {
    Error = "invalid session config: " + formatConfigErrors(Errs);
    return Session();
  }
  if (!Spec.Property.empty()) {
    PropertySpec PS;
    if (!parsePropertySpec(Spec.Property, PS, Error))
      return Session();
  }
  std::lock_guard<std::mutex> Lock(I->M);
  if (I->Programs.find(Spec.Program) == I->Programs.end()) {
    Error = "program '" + Spec.Program + "' is not registered";
    return Session();
  }
  size_t Open = 0;
  for (const auto &[Id, S] : I->Sessions)
    if (!S.Closed)
      ++Open;
  if (Open >= I->Opts.Base.Service.MaxSessions) {
    Error = "session quota exceeded (" +
            std::to_string(I->Opts.Base.Service.MaxSessions) +
            " open sessions)";
    return Session();
  }
  uint64_t Id = I->NextSession++;
  Impl::SessionState &S = I->Sessions[Id];
  S.Id = Id;
  S.ProgramName = Spec.Program;
  S.Typestate = Spec.Client == "typestate";
  S.Property = Spec.Property;
  S.Cfg = Spec.SessionConfig;
  S.OptionsSig = optionsSignature(Spec.SessionConfig);
  ++I->Stats.SessionsOpened;
  bumpServiceCounter("optabs_service_sessions_opened_total");
  return Session(this, Id);
}

std::future<QueryResult> AnalysisService::submitJob(uint64_t SessionId,
                                                    const JobSpec &Job,
                                                    uint64_t *JobId) {
  if (JobId)
    *JobId = 0;
  std::unique_lock<std::mutex> Lock(I->M);
  ++I->Stats.JobsSubmitted;
  bumpServiceCounter("optabs_service_jobs_submitted_total");
  auto It = I->Sessions.find(SessionId);
  if (It == I->Sessions.end() || It->second.Closed || I->ShuttingDown) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    I->noteRejected(SessionId, Job.Parent, "unknown or closed session");
    return readyFuture(rejected(SessionId, "unknown or closed session"));
  }
  Impl::SessionState &S = It->second;
  // Admission control. Quotas are per-tenant (the session's own config),
  // so one tenant flooding its queue never affects another's admissions.
  const Config::ServiceConfig &Q = S.Cfg.Service;
  if (S.Pending.size() + S.Running >= Q.MaxPendingPerSession) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    I->noteRejected(SessionId, Job.Parent, "pending-job quota exceeded");
    return readyFuture(
        rejected(SessionId, "pending-job quota exceeded (" +
                                std::to_string(Q.MaxPendingPerSession) +
                                " jobs in flight)"));
  }
  if (Q.MaxJobsPerSession > 0 && S.SubmittedTotal >= Q.MaxJobsPerSession) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    I->noteRejected(SessionId, Job.Parent, "lifetime job quota exceeded");
    return readyFuture(
        rejected(SessionId, "lifetime job quota exceeded (" +
                                std::to_string(Q.MaxJobsPerSession) +
                                " jobs per session)"));
  }
  Impl::PendingJob P;
  P.Id = I->NextJob++;
  if (JobId)
    *JobId = P.Id;
  P.Spec = Job;
  // Request identity: adopt the caller's trace id when it minted one
  // (protocol ingress does); otherwise the job id doubles as the trace.
  // The span is always the job id.
  P.Ctx.TraceId = Job.Parent.TraceId ? Job.Parent.TraceId : P.Id;
  P.Ctx.SpanId = P.Id;
  if (I->timingOn())
    P.SubmitNs = Impl::nowNs();
  if (I->Recorder) {
    support::TraceEvent E;
    E.Kind = "submitted";
    E.TraceId = P.Ctx.TraceId;
    E.SpanId = P.Ctx.SpanId;
    E.Job = P.Id;
    E.Session = SessionId;
    E.TsNs = P.SubmitNs;
    E.U0 = Job.Check;
    E.U1 = Job.Site;
    I->Recorder->record(E);
    JobTimeline T;
    T.Found = true;
    T.Job = P.Id;
    T.Session = SessionId;
    T.Check = Job.Check;
    T.Site = Job.Site;
    T.TraceId = P.Ctx.TraceId;
    T.SpanId = P.Ctx.SpanId;
    T.Status = "queued";
    T.SubmitNs = P.SubmitNs;
    I->logJob(std::move(T));
  }
  auto ProgIt = I->Programs.find(S.ProgramName);
  if (ProgIt != I->Programs.end() && ProgIt->second.Current)
    P.Epoch = ProgIt->second.Current->Epoch;
  std::future<QueryResult> F = P.Promise.get_future();
  S.Pending.push_back(std::move(P));
  ++S.SubmittedTotal;
  I->setQueueDepth();
  Lock.unlock();
  I->WorkCV.notify_all();
  return F;
}

size_t AnalysisService::cancelSessionPending(uint64_t SessionId) {
  std::vector<Impl::PendingJob> Cancelled;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    auto It = I->Sessions.find(SessionId);
    if (It == I->Sessions.end())
      return 0;
    for (Impl::PendingJob &J : It->second.Pending) {
      I->noteTerminal(J, SessionId, "cancelled");
      Cancelled.push_back(std::move(J));
    }
    It->second.Pending.clear();
    I->Stats.JobsCancelled += Cancelled.size();
    bumpServiceCounter("optabs_service_jobs_cancelled_total",
                       Cancelled.size());
    I->setQueueDepth();
  }
  for (Impl::PendingJob &J : Cancelled) {
    QueryResult R;
    R.Job = J.Id;
    R.Session = SessionId;
    R.Status = JobStatus::Cancelled;
    R.Error = "cancelled by client";
    J.Promise.set_value(std::move(R));
  }
  I->IdleCV.notify_all();
  return Cancelled.size();
}

void AnalysisService::closeSession(uint64_t SessionId) {
  cancelSessionPending(SessionId);
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Sessions.find(SessionId);
  if (It == I->Sessions.end() || It->second.Closed)
    return;
  It->second.Closed = true;
  ++I->Stats.SessionsClosed;
  bumpServiceCounter("optabs_service_sessions_closed_total");
}

void AnalysisService::drain() {
  std::unique_lock<std::mutex> Lock(I->M);
  ++I->DrainWaiters;
  I->WorkCV.notify_all();
  I->IdleCV.wait(Lock, [this] {
    return I->queuedJobs() == 0 || I->ShuttingDown;
  });
  --I->DrainWaiters;
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> Lock(I->M);
  ServiceStats S = I->Stats;
  S.BatchJobsP50 = I->BatchJobsHist.quantile(0.50);
  S.BatchJobsP90 = I->BatchJobsHist.quantile(0.90);
  S.BatchJobsP99 = I->BatchJobsHist.quantile(0.99);
  for (const auto &[Id, Sess] : I->Sessions)
    if (!Sess.Closed)
      S.PendingBySession.emplace_back(Id,
                                      Sess.Pending.size() + Sess.Running);
  return S;
}

bool AnalysisService::tracingEnabled() const {
  return I->Recorder != nullptr;
}

std::vector<support::TraceEvent> AnalysisService::drainTrace() {
  return I->Recorder ? I->Recorder->drain()
                     : std::vector<support::TraceEvent>();
}

uint64_t AnalysisService::traceDropped() const {
  return I->Recorder ? I->Recorder->dropped() : 0;
}

JobTimeline AnalysisService::explain(uint64_t JobId) const {
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->JobLog.find(JobId);
  return It == I->JobLog.end() ? JobTimeline() : It->second;
}

CacheOpResult AnalysisService::cacheOp(const std::string &Action,
                                       const std::string &Program) {
  std::future<CacheOpResult> F;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    if (I->ShuttingDown) {
      CacheOpResult R;
      R.Error = "service shut down";
      return R;
    }
    Impl::AdminCmd Cmd;
    Cmd.Action = Action;
    Cmd.Program = Program;
    F = Cmd.Promise.get_future();
    I->AdminQueue.push_back(std::move(Cmd));
  }
  I->WorkCV.notify_all();
  return F.get();
}

unsigned AnalysisService::poolWorkers() const { return I->Pool->numWorkers(); }

} // namespace service
} // namespace optabs
