//===- AnalysisService.cpp - Multi-tenant analysis service ----------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes (see the header and DESIGN.md §9 for the model):
//
//  * One mutex guards programs, sessions, queues, and stats. The scheduler
//    thread is the only code that runs drivers or touches the per-program
//    cache shards, so every ForwardRunCache keeps its single-threaded
//    mutating contract even though sessions submit concurrently.
//  * Program registrations are immutable once published: re-registering a
//    name installs a fresh ProgramEntry under the next epoch and retires
//    the old one. Retired entries stay alive until the scheduler has
//    evicted every cache entry of their epochs (cached forward runs hold
//    references into the retired IR), then both are dropped together.
//  * Batch picking: the session with the fewest served jobs leads; its
//    best pending job (priority, then submission order) defines the shard
//    key, and every compatible pending job across all sessions rides in
//    the same driver run, ordered by global submission sequence. That
//    order is what makes batch composition - and therefore cache-hit
//    accounting - deterministic under AutoDispatch = false.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "support/Budget.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "typestate/Typestate.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace optabs {
namespace service {

namespace {

/// A property automaton parsed from the "init=...; method: from->to, ..."
/// syntax without touching any Program (method names stay strings). Parsing
/// happens at openSession so tenants get syntax errors synchronously;
/// interning the method names into the (scheduler-owned) Program is
/// deferred to first use.
struct PropertySpec {
  struct Rule {
    std::string Method;
    std::string From;
    std::string To; ///< empty when Error
    bool Error = false;
  };
  std::string Init;
  std::vector<Rule> Rules;
};

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  size_t E = S.find_last_not_of(" \t");
  return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
}

bool parsePropertySpec(const std::string &Spec, PropertySpec &Out,
                       std::string &Err) {
  std::vector<std::string> Clauses;
  std::stringstream SS(Spec);
  std::string Clause;
  while (std::getline(SS, Clause, ';'))
    if (!trim(Clause).empty())
      Clauses.push_back(trim(Clause));
  if (Clauses.empty() || Clauses[0].rfind("init=", 0) != 0) {
    Err = "property must start with 'init=<state>'";
    return false;
  }
  Out.Init = trim(Clauses[0].substr(5));
  for (size_t I = 1; I < Clauses.size(); ++I) {
    size_t Colon = Clauses[I].find(':');
    if (Colon == std::string::npos) {
      Err = "expected 'method: from->to, ...' in '" + Clauses[I] + "'";
      return false;
    }
    std::string Method = trim(Clauses[I].substr(0, Colon));
    std::stringstream TS(Clauses[I].substr(Colon + 1));
    std::string Rule;
    while (std::getline(TS, Rule, ',')) {
      size_t Arrow = Rule.find("->");
      if (Arrow == std::string::npos) {
        Err = "expected 'from->to' in '" + Rule + "'";
        return false;
      }
      PropertySpec::Rule R;
      R.Method = Method;
      R.From = trim(Rule.substr(0, Arrow));
      std::string To = trim(Rule.substr(Arrow + 2));
      if (To == "ERR" || To == "err" || To == "error")
        R.Error = true;
      else
        R.To = To;
      Out.Rules.push_back(std::move(R));
    }
  }
  return true;
}

/// Interns a parsed property into \p P (scheduler thread only - makeMethod
/// mutates the Program).
std::unique_ptr<typestate::TypestateSpec>
materializeSpec(const PropertySpec &PS, ir::Program &P) {
  auto Spec = std::make_unique<typestate::TypestateSpec>(PS.Init);
  for (const PropertySpec::Rule &R : PS.Rules) {
    ir::MethodId M = P.makeMethod(R.Method);
    uint32_t From = Spec->addState(R.From);
    if (R.Error)
      Spec->addErrorTransition(M, From);
    else
      Spec->addTransition(M, From, Spec->addState(R.To));
  }
  return Spec;
}

/// The execution-relevant slice of a session's Config, serialized so
/// sessions coalesce into one batch exactly when a shared driver run would
/// behave identically for both. Observability paths are included (a batch
/// writes one trace/metrics dump, so sessions wanting different files must
/// not share).
std::string optionsSignature(const Config &C) {
  std::ostringstream S;
  S << C.Execution.K << '|' << C.Execution.MaxItersPerQuery << '|'
    << C.Execution.GroupQueries << '|' << C.Execution.ProductSoftCap << '|'
    << C.Execution.TracesPerIteration << '|' << C.Execution.Strategy << '|'
    << C.Budgets.TimeBudgetSeconds << '|' << C.Budgets.BackwardTimeoutSeconds
    << '|' << C.Budgets.ForwardStepBudget << '|'
    << C.Budgets.BackwardStepBudget << '|' << C.Budgets.SolverDecisionBudget
    << '|' << C.Budgets.MemoryBudgetBytes << '|'
    << C.Observability.EventTracePath << '|' << C.Observability.MetricsPath
    << '|' << C.Observability.ProfilePath;
  return S.str();
}

QueryResult rejected(uint64_t Session, std::string Why) {
  QueryResult R;
  R.Session = Session;
  R.Status = JobStatus::Rejected;
  R.Error = std::move(Why);
  return R;
}

std::future<QueryResult> readyFuture(QueryResult R) {
  std::promise<QueryResult> P;
  P.set_value(std::move(R));
  return P.get_future();
}

void bumpServiceCounter(const char *Name, uint64_t N = 1) {
  if (support::metricsEnabled())
    support::MetricRegistry::global().counter(Name).add(N);
}

} // namespace

struct AnalysisService::Impl {
  using EscForward = dataflow::ForwardAnalysis<escape::EscapeAnalysis>;
  using TsForward = dataflow::ForwardAnalysis<typestate::TypestateAnalysis>;

  /// A type-state analysis family: one property automaton plus its
  /// per-tracked-site analysis instances. Everything lives here, stably,
  /// because cached forward runs hold references into the analysis.
  struct TsFamily {
    uint64_t Index = 0; ///< >= 1; composes the cache keys' Family field
    std::unique_ptr<typestate::TypestateSpec> Spec;
    std::map<uint32_t, std::unique_ptr<typestate::TypestateAnalysis>> PerSite;
  };

  /// One immutable registration of a program. Lazily grown (analyses,
  /// points-to, families) by the scheduler thread only.
  struct ProgramEntry {
    std::unique_ptr<ir::Program> P;
    uint64_t Epoch = 0;
    uint64_t NextFamilyId = 1;
    std::unique_ptr<escape::EscapeAnalysis> Esc;
    std::unique_ptr<pointer::PointsToResult> Pt;
    std::map<std::string, TsFamily> Families; ///< by property text
  };

  /// The per-name slot: survives re-registration and owns the cache shards
  /// (which is the whole point - a new epoch keeps hitting the warm shard
  /// for keys it shares, while stale epochs are evicted below).
  struct ProgramSlot {
    std::shared_ptr<ProgramEntry> Current;
    /// Entries replaced by a re-registration, kept alive until the shards
    /// no longer cache runs referencing their IR.
    std::vector<std::shared_ptr<ProgramEntry>> Retired;
    bool NeedsInvalidation = false;
    tracer::ForwardRunCache<EscForward> EscCache;
    tracer::ForwardRunCache<TsForward> TsCache;
  };

  struct PendingJob {
    uint64_t Id = 0; ///< global submission sequence; batch execution order
    JobSpec Spec;
    std::promise<QueryResult> Promise;
  };

  struct SessionState {
    uint64_t Id = 0;
    std::string ProgramName;
    bool Typestate = false;
    std::string Property;
    Config Cfg;
    std::string OptionsSig;
    std::deque<PendingJob> Pending;
    uint64_t SubmittedTotal = 0;
    uint64_t Served = 0; ///< fair-share: lowest goes first
    size_t Running = 0;
    bool Closed = false;
  };

  /// One coalesced unit of driver work, extracted under the lock, executed
  /// without it.
  struct Batch {
    std::string ProgramName;
    bool Typestate = false;
    std::string Property;
    uint32_t Site = 0;
    Config Cfg;
    std::vector<PendingJob> Jobs; ///< sorted by Id (submission order)
    std::vector<uint64_t> JobSessions; ///< parallel to Jobs
    std::shared_ptr<ProgramEntry> Entry;
    ProgramSlot *Slot = nullptr;
  };

  struct BatchResult {
    std::vector<QueryResult> Results; ///< parallel to Batch::Jobs
    tracer::DriverStats DS;
    bool Ran = false;
    double Seconds = 0;
  };

  explicit Impl(Options O) : Opts(std::move(O)) {
    unsigned Workers = Opts.Base.Execution.NumThreads == 0
                           ? support::ThreadPool::hardwareWorkers()
                           : Opts.Base.Execution.NumThreads;
    Pool = std::make_unique<support::ThreadPool>(Workers);
    Scheduler = std::thread([this] { schedulerLoop(); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> Lock(M);
      ShuttingDown = true;
    }
    WorkCV.notify_all();
    IdleCV.notify_all();
    Scheduler.join();
  }

  // -- state (guarded by M unless noted) ---------------------------------
  Options Opts;
  mutable std::mutex M;
  std::condition_variable WorkCV; ///< wakes the scheduler
  std::condition_variable IdleCV; ///< wakes drain() waiters
  bool ShuttingDown = false;
  unsigned DrainWaiters = 0;

  std::unique_ptr<support::ThreadPool> Pool; ///< immutable after ctor
  std::thread Scheduler;

  std::map<std::string, ProgramSlot> Programs;
  std::map<uint64_t, SessionState> Sessions;
  uint64_t NextEpoch = 1;   ///< > 0: standalone drivers use epoch 0
  uint64_t NextSession = 1;
  uint64_t NextJob = 1;
  ServiceStats Stats;

  // -- helpers -----------------------------------------------------------

  size_t queuedJobs() const {
    size_t N = 0;
    for (const auto &[Id, S] : Sessions)
      N += S.Pending.size() + S.Running;
    return N;
  }

  void setQueueDepth() {
    Stats.QueueDepth = queuedJobs();
    if (support::metricsEnabled())
      support::MetricRegistry::global()
          .gauge("optabs_service_queue_depth")
          .set(static_cast<int64_t>(Stats.QueueDepth));
  }

  /// Scheduler only. Evicts every cache entry of a stale epoch and drops
  /// the retired registrations those entries referenced.
  void processInvalidations() {
    for (auto &[Name, Slot] : Programs) {
      if (!Slot.NeedsInvalidation)
        continue;
      uint64_t Live = Slot.Current->Epoch;
      auto Stale = [Live](const auto &K) { return K.ProgramEpoch != Live; };
      size_t N = Slot.EscCache.evictKeysWhere(Stale) +
                 Slot.TsCache.evictKeysWhere(Stale);
      Stats.StaleEntriesInvalidated += N;
      bumpServiceCounter("optabs_service_stale_invalidated_total", N);
      Slot.Retired.clear();
      Slot.NeedsInvalidation = false;
    }
  }

  /// Extracts the next coalesced batch. Returns false when nothing is
  /// runnable. Lock held.
  bool pickBatch(Batch &B) {
    // Fair share: the open session with the fewest served jobs (ties to
    // the older session) leads.
    SessionState *Lead = nullptr;
    for (auto &[Id, S] : Sessions) {
      if (S.Closed || S.Pending.empty())
        continue;
      if (!Lead || S.Served < Lead->Served)
        Lead = &S;
    }
    if (!Lead)
      return false;

    // The lead's best job (priority, then submission order) fixes the
    // shard: program, client, property, options - and, for type-state,
    // the tracked site, since one driver run handles one site.
    const PendingJob *Best = nullptr;
    for (const PendingJob &J : Lead->Pending)
      if (!Best || J.Spec.Priority > Best->Spec.Priority ||
          (J.Spec.Priority == Best->Spec.Priority && J.Id < Best->Id))
        Best = &J;

    B.ProgramName = Lead->ProgramName;
    B.Typestate = Lead->Typestate;
    B.Property = Lead->Property;
    B.Site = Best->Spec.Site;
    B.Cfg = Lead->Cfg;

    // Coalesce matching jobs from every compatible session.
    for (auto &[Id, S] : Sessions) {
      if (S.Closed || S.Pending.empty())
        continue;
      if (S.ProgramName != B.ProgramName || S.Typestate != B.Typestate ||
          S.Property != B.Property || S.OptionsSig != Lead->OptionsSig)
        continue;
      for (auto It = S.Pending.begin(); It != S.Pending.end();) {
        if (B.Typestate && It->Spec.Site != B.Site) {
          ++It;
          continue;
        }
        B.Jobs.push_back(std::move(*It));
        B.JobSessions.push_back(Id);
        It = S.Pending.erase(It);
        ++S.Running;
      }
    }
    // Global submission order: what the "one client submitting the same
    // list to a standalone driver" order would have been.
    std::vector<size_t> Order(B.Jobs.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t X, size_t Y) {
      return B.Jobs[X].Id < B.Jobs[Y].Id;
    });
    std::vector<PendingJob> Jobs;
    std::vector<uint64_t> JobSessions;
    Jobs.reserve(Order.size());
    for (size_t I : Order) {
      Jobs.push_back(std::move(B.Jobs[I]));
      JobSessions.push_back(B.JobSessions[I]);
    }
    B.Jobs = std::move(Jobs);
    B.JobSessions = std::move(JobSessions);

    auto SlotIt = Programs.find(B.ProgramName);
    if (SlotIt != Programs.end()) {
      B.Slot = &SlotIt->second;
      B.Entry = SlotIt->second.Current;
    }
    return true;
  }

  /// Scheduler only, lock NOT held: runs the batch's driver.
  BatchResult executeBatch(Batch &B) {
    BatchResult R;
    R.Results.resize(B.Jobs.size());
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      R.Results[I].Job = B.Jobs[I].Id;
      R.Results[I].Session = B.JobSessions[I];
      R.Results[I].Status = JobStatus::Failed;
    }
    if (!B.Entry) {
      for (QueryResult &Res : R.Results)
        Res.Error = "program '" + B.ProgramName + "' is not registered";
      return R;
    }
    ir::Program &P = *B.Entry->P;

    std::vector<ir::CheckId> Queries;
    std::vector<size_t> QueryJob; ///< batch-job index per query
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      const JobSpec &Spec = B.Jobs[I].Spec;
      if (Spec.Check >= P.numChecks()) {
        R.Results[I].Error = "check " + std::to_string(Spec.Check) +
                             " out of range (program has " +
                             std::to_string(P.numChecks()) + " checks)";
        continue;
      }
      if (B.Typestate && Spec.Site >= P.numAllocs()) {
        R.Results[I].Error = "site " + std::to_string(Spec.Site) +
                             " out of range (program has " +
                             std::to_string(P.numAllocs()) +
                             " allocation sites)";
        continue;
      }
      QueryJob.push_back(I);
      Queries.push_back(ir::CheckId(Spec.Check));
    }
    if (Queries.empty())
      return R;

    tracer::TracerOptions O = tracer::TracerOptions::fromConfig(B.Cfg);
    O.EventTraceLabel =
        "service/" + B.ProgramName + "/" +
        (B.Typestate ? "typestate/site=" + std::to_string(B.Site) : "escape");

    Timer BatchTimer;
    try {
      std::vector<tracer::QueryOutcome> Outcomes;
      if (!B.Typestate) {
        if (!B.Entry->Esc)
          B.Entry->Esc = std::make_unique<escape::EscapeAnalysis>(P);
        tracer::QueryDriver<escape::EscapeAnalysis> D(P, *B.Entry->Esc, O);
        D.borrowExecution(Pool.get(), &B.Slot->EscCache, B.Entry->Epoch,
                          /*Family=*/0);
        Outcomes = D.run(Queries);
        R.DS = D.stats();
      } else {
        std::string Err;
        TsFamily *Fam = materializeFamily(*B.Entry, B.Property, Err);
        if (!Fam) {
          for (size_t I : QueryJob)
            R.Results[I].Error = "invalid property: " + Err;
          return R;
        }
        if (!B.Entry->Pt)
          B.Entry->Pt = std::make_unique<pointer::PointsToResult>(
              pointer::runPointsTo(P));
        auto &A = Fam->PerSite[B.Site];
        if (!A)
          A = std::make_unique<typestate::TypestateAnalysis>(
              P, *Fam->Spec, ir::AllocId(B.Site), *B.Entry->Pt);
        tracer::QueryDriver<typestate::TypestateAnalysis> D(P, *A, O);
        // Family: property automaton index in the high half, tracked site
        // in the low half, so every (family, site) analysis keys its own
        // disjoint slice of the shared shard.
        uint64_t Family = (Fam->Index << 32) | B.Site;
        D.borrowExecution(Pool.get(), &B.Slot->TsCache, B.Entry->Epoch,
                          Family);
        Outcomes = D.run(Queries);
        R.DS = D.stats();
      }
      R.Ran = true;
      for (size_t Q = 0; Q < Outcomes.size(); ++Q) {
        QueryResult &Res = R.Results[QueryJob[Q]];
        const tracer::QueryOutcome &Out = Outcomes[Q];
        Res.Status = JobStatus::Done;
        Res.V = Out.V;
        Res.Iterations = Out.Iterations;
        Res.CheapestCost = Out.CheapestCost;
        Res.CheapestParam = Out.CheapestParam;
        if (Out.Exhaustion) {
          Res.ExhaustedResource = support::resourceName(Out.Exhaustion->Res);
          Res.ExhaustedSite = Out.Exhaustion->Site;
        }
      }
    } catch (const std::exception &E) {
      for (size_t I : QueryJob)
        if (R.Results[I].Status != JobStatus::Done)
          R.Results[I].Error = std::string("batch execution failed: ") +
                               E.what();
    }
    R.Seconds = BatchTimer.seconds();
    return R;
  }

  TsFamily *materializeFamily(ProgramEntry &E, const std::string &Prop,
                              std::string &Err) {
    auto It = E.Families.find(Prop);
    if (It != E.Families.end())
      return &It->second;
    TsFamily F;
    F.Index = E.NextFamilyId++;
    if (Prop.empty()) {
      F.Spec = std::make_unique<typestate::TypestateSpec>(
          typestate::TypestateSpec::stress());
    } else {
      PropertySpec PS;
      if (!parsePropertySpec(Prop, PS, Err))
        return nullptr; // openSession validated; defensive for re-registers
      F.Spec = materializeSpec(PS, *E.P);
    }
    return &E.Families.emplace(Prop, std::move(F)).first->second;
  }

  void schedulerLoop() {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      processInvalidations();
      if (ShuttingDown)
        break;
      Batch B;
      if ((Opts.AutoDispatch || DrainWaiters > 0) && pickBatch(B)) {
        Lock.unlock();
        BatchResult R = executeBatch(B);
        for (size_t I = 0; I < B.Jobs.size(); ++I)
          B.Jobs[I].Promise.set_value(std::move(R.Results[I]));
        Lock.lock();
        finishBatch(B, R);
        IdleCV.notify_all();
        continue;
      }
      if (queuedJobs() == 0)
        IdleCV.notify_all();
      WorkCV.wait(Lock);
    }
    // Shutdown: everything still queued completes as Cancelled.
    std::vector<std::promise<QueryResult>> Doomed;
    for (auto &[Id, S] : Sessions) {
      for (PendingJob &J : S.Pending) {
        QueryResult Res;
        Res.Job = J.Id;
        Res.Session = Id;
        Res.Status = JobStatus::Cancelled;
        Res.Error = "service shut down";
        J.Promise.set_value(std::move(Res));
        ++Stats.JobsCancelled;
      }
      S.Pending.clear();
    }
    setQueueDepth();
    IdleCV.notify_all();
  }

  /// Lock held: folds a finished batch into stats and session accounting.
  void finishBatch(const Batch &B, const BatchResult &R) {
    ++Stats.Batches;
    Stats.CoalescedJobs += B.Jobs.size() - 1;
    for (size_t I = 0; I < B.Jobs.size(); ++I) {
      if (R.Results[I].Status == JobStatus::Done)
        ++Stats.JobsCompleted;
      else
        ++Stats.JobsFailed;
      auto It = Sessions.find(B.JobSessions[I]);
      if (It != Sessions.end()) {
        ++It->second.Served;
        --It->second.Running;
      }
    }
    if (R.Ran) {
      Stats.ForwardRuns += R.DS.ForwardRuns;
      Stats.BackwardRuns += R.DS.BackwardRuns;
      Stats.CacheHits += R.DS.CacheHits;
      Stats.CacheMisses += R.DS.CacheMisses;
      Stats.CacheEvictions += R.DS.CacheEvictions;
    }
    setQueueDepth();
    if (support::metricsEnabled()) {
      auto &Reg = support::MetricRegistry::global();
      Reg.counter("optabs_service_batches_total").add(1);
      Reg.histogram("optabs_service_batch_jobs").record(B.Jobs.size());
      auto Micros = static_cast<uint64_t>(R.Seconds * 1e6);
      Reg.histogram("optabs_service_batch_micros").record(Micros);
      // Per-tenant phase attribution: one histogram per session that had
      // jobs in this batch (entries are never removed from the registry,
      // so the references stay valid).
      std::vector<uint64_t> Tenants(B.JobSessions);
      std::sort(Tenants.begin(), Tenants.end());
      Tenants.erase(std::unique(Tenants.begin(), Tenants.end()),
                    Tenants.end());
      for (uint64_t T : Tenants)
        Reg.histogram("optabs_service_session_" + std::to_string(T) +
                      "_batch_micros")
            .record(Micros);
    }
  }
};

AnalysisService::AnalysisService() : AnalysisService(Options()) {}

AnalysisService::AnalysisService(Options Opts)
    : I(std::make_unique<Impl>(std::move(Opts))) {}

AnalysisService::~AnalysisService() = default;

RegisterResult AnalysisService::registerProgram(const std::string &Name,
                                                const std::string &IrText) {
  RegisterResult R;
  if (Name.empty()) {
    R.Error = "program name must be non-empty";
    return R;
  }
  auto Entry = std::make_shared<Impl::ProgramEntry>();
  Entry->P = std::make_unique<ir::Program>();
  std::string Err;
  if (!ir::parseProgram(IrText, *Entry->P, Err)) {
    R.Error = Err;
    return R;
  }
  {
    std::lock_guard<std::mutex> Lock(I->M);
    Entry->Epoch = I->NextEpoch++;
    Impl::ProgramSlot &Slot = I->Programs[Name];
    if (!Slot.Current) {
      size_t Cap = I->Opts.Base.Execution.ForwardCacheCapacity;
      Slot.EscCache.setCapacity(Cap);
      Slot.TsCache.setCapacity(Cap);
    } else {
      Slot.Retired.push_back(std::move(Slot.Current));
      Slot.NeedsInvalidation = true;
    }
    Slot.Current = Entry;
    ++I->Stats.ProgramsRegistered;
    R.Ok = true;
    R.Epoch = Entry->Epoch;
    R.Checks = Entry->P->numChecks();
    R.Allocs = Entry->P->numAllocs();
  }
  bumpServiceCounter("optabs_service_programs_registered_total");
  I->WorkCV.notify_all(); // stale-epoch eviction runs promptly
  return R;
}

Session AnalysisService::openSession(const SessionSpec &Spec,
                                     std::string &Error) {
  if (Spec.Client != "escape" && Spec.Client != "typestate") {
    Error = "client must be 'escape' or 'typestate', got '" + Spec.Client +
            "'";
    return Session();
  }
  if (Spec.Client == "escape" && !Spec.Property.empty()) {
    Error = "the escape client takes no property";
    return Session();
  }
  std::vector<ConfigError> Errs = Spec.SessionConfig.validate();
  if (!Errs.empty()) {
    Error = "invalid session config: " + formatConfigErrors(Errs);
    return Session();
  }
  if (!Spec.Property.empty()) {
    PropertySpec PS;
    if (!parsePropertySpec(Spec.Property, PS, Error))
      return Session();
  }
  std::lock_guard<std::mutex> Lock(I->M);
  if (I->Programs.find(Spec.Program) == I->Programs.end()) {
    Error = "program '" + Spec.Program + "' is not registered";
    return Session();
  }
  size_t Open = 0;
  for (const auto &[Id, S] : I->Sessions)
    if (!S.Closed)
      ++Open;
  if (Open >= I->Opts.Base.Service.MaxSessions) {
    Error = "session quota exceeded (" +
            std::to_string(I->Opts.Base.Service.MaxSessions) +
            " open sessions)";
    return Session();
  }
  uint64_t Id = I->NextSession++;
  Impl::SessionState &S = I->Sessions[Id];
  S.Id = Id;
  S.ProgramName = Spec.Program;
  S.Typestate = Spec.Client == "typestate";
  S.Property = Spec.Property;
  S.Cfg = Spec.SessionConfig;
  S.OptionsSig = optionsSignature(Spec.SessionConfig);
  ++I->Stats.SessionsOpened;
  bumpServiceCounter("optabs_service_sessions_opened_total");
  return Session(this, Id);
}

std::future<QueryResult> AnalysisService::submitJob(uint64_t SessionId,
                                                    const JobSpec &Job,
                                                    uint64_t *JobId) {
  if (JobId)
    *JobId = 0;
  std::unique_lock<std::mutex> Lock(I->M);
  ++I->Stats.JobsSubmitted;
  bumpServiceCounter("optabs_service_jobs_submitted_total");
  auto It = I->Sessions.find(SessionId);
  if (It == I->Sessions.end() || It->second.Closed || I->ShuttingDown) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    return readyFuture(rejected(SessionId, "unknown or closed session"));
  }
  Impl::SessionState &S = It->second;
  // Admission control. Quotas are per-tenant (the session's own config),
  // so one tenant flooding its queue never affects another's admissions.
  const Config::ServiceConfig &Q = S.Cfg.Service;
  if (S.Pending.size() + S.Running >= Q.MaxPendingPerSession) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    return readyFuture(
        rejected(SessionId, "pending-job quota exceeded (" +
                                std::to_string(Q.MaxPendingPerSession) +
                                " jobs in flight)"));
  }
  if (Q.MaxJobsPerSession > 0 && S.SubmittedTotal >= Q.MaxJobsPerSession) {
    ++I->Stats.JobsRejected;
    bumpServiceCounter("optabs_service_jobs_rejected_total");
    return readyFuture(
        rejected(SessionId, "lifetime job quota exceeded (" +
                                std::to_string(Q.MaxJobsPerSession) +
                                " jobs per session)"));
  }
  Impl::PendingJob P;
  P.Id = I->NextJob++;
  if (JobId)
    *JobId = P.Id;
  P.Spec = Job;
  std::future<QueryResult> F = P.Promise.get_future();
  S.Pending.push_back(std::move(P));
  ++S.SubmittedTotal;
  I->setQueueDepth();
  Lock.unlock();
  I->WorkCV.notify_all();
  return F;
}

size_t AnalysisService::cancelSessionPending(uint64_t SessionId) {
  std::vector<Impl::PendingJob> Cancelled;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    auto It = I->Sessions.find(SessionId);
    if (It == I->Sessions.end())
      return 0;
    for (Impl::PendingJob &J : It->second.Pending)
      Cancelled.push_back(std::move(J));
    It->second.Pending.clear();
    I->Stats.JobsCancelled += Cancelled.size();
    bumpServiceCounter("optabs_service_jobs_cancelled_total",
                       Cancelled.size());
    I->setQueueDepth();
  }
  for (Impl::PendingJob &J : Cancelled) {
    QueryResult R;
    R.Job = J.Id;
    R.Session = SessionId;
    R.Status = JobStatus::Cancelled;
    R.Error = "cancelled by client";
    J.Promise.set_value(std::move(R));
  }
  I->IdleCV.notify_all();
  return Cancelled.size();
}

void AnalysisService::closeSession(uint64_t SessionId) {
  cancelSessionPending(SessionId);
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Sessions.find(SessionId);
  if (It == I->Sessions.end() || It->second.Closed)
    return;
  It->second.Closed = true;
  ++I->Stats.SessionsClosed;
  bumpServiceCounter("optabs_service_sessions_closed_total");
}

void AnalysisService::drain() {
  std::unique_lock<std::mutex> Lock(I->M);
  ++I->DrainWaiters;
  I->WorkCV.notify_all();
  I->IdleCV.wait(Lock, [this] {
    return I->queuedJobs() == 0 || I->ShuttingDown;
  });
  --I->DrainWaiters;
}

ServiceStats AnalysisService::stats() const {
  std::lock_guard<std::mutex> Lock(I->M);
  return I->Stats;
}

unsigned AnalysisService::poolWorkers() const { return I->Pool->numWorkers(); }

} // namespace service
} // namespace optabs
