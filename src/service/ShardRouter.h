//===- ShardRouter.h - Shard supervisor for multi-process serving -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervisor behind `optabs-shardd` (DESIGN.md §13): it spawns N
/// `optabs-serve` worker shards, routes the JSONL protocol to them, and
/// treats worker failure as a first-class input instead of a fatal error.
///
///  * Partitioning: sessions are routed by fnv1a(program, client) mod N,
///    so every query against one (program, client) pair lands on the same
///    shard and that shard's ForwardRunCache stays hot. Program
///    registrations are broadcast to all shards (any shard may be asked
///    to open a session on any program).
///
///  * Journaling: the supervisor records every successful registration
///    (name -> latest text), every open session (its original request
///    line), and every in-flight submit. Worker shards are therefore
///    disposable: the journal is exactly the state needed to rebuild one.
///
///  * Failure handling: every request to a shard runs under a
///    per-request timeout with bounded retries. A dead or hung shard is
///    killed and restarted with exponential backoff plus deterministic
///    jitter (capped, and reset after a healthy interval); the restart
///    replays the registration journal, re-opens the shard's sessions,
///    and requeues its unfulfilled jobs. Requeues are never silent: the
///    drain summary carries a "requeued" count and the per-job `explain`
///    response carries a structured requeued note. Re-running a requeued
///    job on a fresh shard cannot change its verdict - §6 grouping makes
///    verdicts batch-composition-independent (DESIGN.md §11), and a
///    worker's state dies with it, so a requeue is exactly-once per
///    surviving incarnation (the idempotency argument in DESIGN.md §13).
///
///  * Work stealing (StealThreshold > 0): at drain time, when one shard's
///    pending depth reaches the threshold while another shard sits idle,
///    the supervisor re-homes whole sessions - replaying the journaled
///    open-session line on the thief, re-submitting the session's pending
///    jobs there, then cancelling the victim's copies. The move is
///    transactional (any failure aborts with the victim untouched) and
///    verdict-neutral: §6 grouping makes verdicts batch-composition-
///    independent, so a job answers identically no matter which shard
///    runs it. When the shards share a --cache-dir, the thief re-warms
///    the stolen program's forward runs from the common spill tier
///    instead of recomputing them.
///
///  * Cache admin: the {"op":"cache"} family is fanned out to every
///    shard and the per-shard counters summed into one response, so
///    "persist"/"load"/"spill" act on the whole deployment at once.
///
/// The router is single-threaded: one supervisor loop calls handleLine()
/// per request. The ShardHost / ShardEndpoint / RouterClock seams exist
/// so tests can drive every failure path with scripted fakes and a fake
/// clock (tests/ShardRouterTest.cpp) while production uses real
/// subprocesses over Unix sockets (ProcessShardHost below, chaos-tested
/// by tests/ChaosTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_SHARDROUTER_H
#define OPTABS_SERVICE_SHARDROUTER_H

#include "service/Transport.h"
#include "support/Prng.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace optabs {
namespace service {

/// One connected worker shard, as the router sees it. Production wraps a
/// child process plus a socket channel; tests script these.
class ShardEndpoint {
public:
  enum class RecvStatus : uint8_t { Line, Timeout, Closed };

  virtual ~ShardEndpoint() = default;
  /// Sends one request line. False when the shard is unreachable.
  virtual bool sendLine(const std::string &Line) = 0;
  /// Receives one response line, bounded by \p TimeoutMs.
  virtual RecvStatus recvLine(std::string &Out, int TimeoutMs) = 0;
  /// Cheap process-level liveness probe (no IO).
  virtual bool alive() = 0;
  /// Hard-kills the worker (hung shard, chaos injection).
  virtual void kill() = 0;
};

/// Spawns (and respawns) shard workers.
class ShardHost {
public:
  virtual ~ShardHost() = default;
  /// Starts worker \p Shard and returns a connected endpoint, or null
  /// with \p Err. Any previous incarnation of the shard is dead by the
  /// time this is called again.
  virtual std::unique_ptr<ShardEndpoint> spawn(unsigned Shard,
                                               std::string &Err) = 0;
};

/// Time source for backoff; injectable so restart ladders are testable
/// without real sleeps.
class RouterClock {
public:
  virtual ~RouterClock() = default;
  virtual uint64_t nowMs() = 0;
  virtual void sleepMs(uint64_t Ms) = 0;
};

/// The default steady-clock implementation.
class SteadyRouterClock : public RouterClock {
public:
  uint64_t nowMs() override;
  void sleepMs(uint64_t Ms) override;
};

struct ShardRouterOptions {
  unsigned NumShards = 2;
  /// Per request-response round trip to a shard; a shard that does not
  /// answer in time is considered hung, killed, and restarted.
  int RequestTimeoutMs = 120000;
  /// Restart-and-retry attempts per routed request before it fails with
  /// a structured error (the client-side retry bound).
  unsigned MaxRequestRetries = 2;
  /// Exponential restart backoff: initial delay, doubling to the cap,
  /// reset to the initial value when the shard stayed healthy for
  /// BackoffResetMs since its last restart.
  uint64_t BackoffInitialMs = 100;
  uint64_t BackoffMaxMs = 5000;
  uint64_t BackoffResetMs = 60000;
  /// Jitter fraction added on top of the base delay (delay in
  /// [base, base * (1 + Jitter)]), drawn from a deterministic PRNG.
  double BackoffJitter = 0.25;
  uint64_t JitterSeed = 0x0050bacc; ///< deterministic jitter stream
  /// Spawn attempts within one restart episode before giving up.
  unsigned MaxRestartAttempts = 6;
  /// Accept {"op":"chaos-kill","shard":K}: SIGKILL a worker on request.
  /// For the chaos harness only (optabs-shardd --chaos).
  bool AllowChaosOps = false;
  /// Work stealing: when a shard's pending depth reaches this value while
  /// another shard has nothing pending, drain re-homes whole sessions to
  /// the idle shard first. 0 (the default) disables stealing, preserving
  /// pure hash partitioning.
  uint64_t StealThreshold = 0;
};

/// Monotonic supervisor counters (stats op, tests).
struct ShardRouterStats {
  uint64_t Restarts = 0; ///< successful worker restarts, all shards
  uint64_t Requeued = 0;  ///< job requeue events (a job can recur)
  uint64_t Registered = 0;
  uint64_t SessionsOpened = 0;
  uint64_t Submitted = 0;
  uint64_t Fulfilled = 0;
  uint64_t Failed = 0; ///< jobs failed after retry exhaustion
  uint64_t Pending = 0;
  uint64_t Steals = 0;     ///< sessions re-homed by work stealing
  uint64_t StolenJobs = 0; ///< pending jobs moved along with them
  std::vector<uint64_t> RestartsByShard;
};

/// See the file comment.
class ShardRouter {
public:
  ShardRouter(ShardRouterOptions Opts, ShardHost &Host,
              RouterClock *Clock = nullptr);
  ~ShardRouter();

  ShardRouter(const ShardRouter &) = delete;
  ShardRouter &operator=(const ShardRouter &) = delete;

  /// Spawns every shard (no backoff on first start). False + \p Err when
  /// any shard cannot be brought up at all.
  bool start(std::string &Err);

  /// Routes one protocol request line; appends every response line to
  /// \p Out. Returns false when the request was "shutdown" (the
  /// responses, including the shutdown ack, are still appended).
  bool handleLine(const std::string &Line, std::vector<std::string> &Out);

  /// Which shard serves (program, client) sessions. Deterministic
  /// fnv1a64 - never std::hash, so scripted transcripts are portable.
  unsigned shardFor(const std::string &Program,
                    const std::string &Client) const;

  ShardRouterStats stats() const;

  /// Chaos seam: SIGKILL worker \p Shard and wait until it is gone, as
  /// the chaos-kill op does. Thread-compatible with a concurrent
  /// handleLine only through ProcessShardHost::killWorker - use that from
  /// other threads.
  void killShardForTesting(unsigned Shard);

  /// The shard's next restart delay base (fake-clock backoff tests).
  uint64_t nextBackoffMsForTesting(unsigned Shard) const;

private:
  struct Registration {
    std::string Name;
    std::string Text;
    uint32_t Checks = 0;
    uint32_t Allocs = 0;
  };
  struct SessionRec {
    uint64_t SupId = 0;
    unsigned Shard = 0;
    uint64_t ShardId = 0;
    std::string OpenLine; ///< original request, replayed verbatim
    bool Closed = false;
  };
  enum class JobState : uint8_t { Pending, Fulfilled, Failed };
  struct JobRec {
    uint64_t SupId = 0;
    uint64_t SupSession = 0;
    unsigned Shard = 0;
    uint64_t ShardJob = 0;
    uint32_t Check = 0;
    uint64_t Site = 0;
    int64_t Priority = 0;
    bool HasSite = false;
    bool HasPriority = false;
    bool CancelRequested = false;
    JobState State = JobState::Pending;
    unsigned Requeues = 0;
    bool Emitted = false;
    std::string ResultLine; ///< rewritten to supervisor ids
  };
  struct Shard {
    std::unique_ptr<ShardEndpoint> Ep;
    bool Up = false;
    bool EverStarted = false;
    uint64_t NextBackoffMs = 0;
    uint64_t LastRestartMs = 0;
    uint64_t Restarts = 0;
    /// shard-local job id -> supervisor job id, for the live incarnation.
    std::map<uint64_t, uint64_t> JobsByShardId;
  };

  enum class RpcStatus : uint8_t { Ok, Died, TimedOut };

  bool ensureUp(unsigned I, std::string &Err);
  bool restartShard(unsigned I, std::string &Err);
  bool replayShard(unsigned I);
  RpcStatus rpcOnce(unsigned I, const std::string &Line, std::string &Resp);
  /// ensureUp + rpcOnce with restart-and-retry up to MaxRequestRetries.
  /// \p MakeLine is re-invoked after every ensureUp: a restart renumbers
  /// shard-local session ids (replay skips closed sessions, the fresh
  /// worker mints ids from 1), so any line embedding a shard-local id
  /// must be rebuilt from SessionRec::ShardId per attempt.
  bool rpcWithRetry(unsigned I,
                    const std::function<std::string()> &MakeLine,
                    std::string &Resp, std::string &Err);
  bool rpcWithRetry(unsigned I, const std::string &Line, std::string &Resp,
                    std::string &Err);
  void markDown(unsigned I);
  std::string submitLineFor(const JobRec &J, uint64_t ShardSession) const;
  std::string rewriteResultLine(const std::string &ShardLine,
                                const JobRec &J) const;
  void synthesizeResult(JobRec &J, const char *Status,
                        const std::string &Error);
  void handleDrain(std::vector<std::string> &Out);
  /// Re-homes session \p SessId from \p Victim to \p Thief: open-session
  /// replay + pending-job re-submission on the thief, then best-effort
  /// close of the victim's copy. All-or-nothing; false leaves every
  /// record pointing at the victim.
  bool stealSession(uint64_t SessId, unsigned Victim, unsigned Thief);
  /// The drain-time rebalance loop (no-op unless StealThreshold > 0).
  void maybeStealWork();

  ShardRouterOptions Opts;
  ShardHost &Host;
  RouterClock *Clock;
  std::unique_ptr<RouterClock> OwnedClock;
  Prng Jitter;
  Timer Uptime;

  std::vector<Shard> Shards;
  std::vector<Registration> Journal; ///< in first-registration order
  std::map<uint64_t, SessionRec> Sessions;
  std::map<uint64_t, JobRec> Jobs;
  uint64_t NextSession = 1;
  uint64_t NextJob = 1;
  uint64_t RegEpoch = 0; ///< supervisor registration epoch counter
  uint64_t DrainRequeues = 0;
  ShardRouterStats Stats;
};

/// Production ShardHost: each shard is an `optabs-serve --listen=unix:...`
/// child process; endpoints are socket LineChannels. Thread-safe where it
/// matters for chaos tests: workerPid()/killWorker() may be called from
/// another thread while the router (single-threaded) is mid-request.
class ProcessShardHost : public ShardHost {
public:
  struct Options {
    std::string ServeBinary;           ///< path to optabs-serve
    std::string SocketDir = "/tmp";    ///< unix sockets live here
    std::vector<std::string> WorkerArgs; ///< extra worker flags
    int ConnectTimeoutMs = 10000;      ///< spawn-to-accepting budget
    size_t MaxLineBytes = DefaultMaxLineBytes;
  };

  explicit ProcessShardHost(Options O);
  ~ProcessShardHost() override; ///< kills and reaps every worker

  std::unique_ptr<ShardEndpoint> spawn(unsigned Shard,
                                       std::string &Err) override;

  /// The live worker's pid (-1 when none). For chaos tests that kill by
  /// pid from a second thread without touching endpoint state.
  pid_t workerPid(unsigned Shard) const;

  /// SIGKILLs worker \p Shard by pid (thread-safe, does not reap).
  void killWorker(unsigned Shard);

private:
  friend class ProcessShardEndpoint;
  bool workerAlive(unsigned Shard, pid_t Pid);
  void killAndReap(unsigned Shard, pid_t Pid);

  mutable std::mutex M;
  Options O;
  std::map<unsigned, support::ChildProcess> Workers;
  /// Live incarnation's socket file per shard, unlinked when the worker
  /// is killed/replaced so restarts don't litter SocketDir.
  std::map<unsigned, std::string> SocketPaths;
  uint64_t Incarnation = 0; ///< unique socket path per respawn
};

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_SHARDROUTER_H
