//===- CacheCodecs.h - Client state codecs for cache persistence -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-specific halves of the persistent cache tier. The tracer
/// library (tracer/CachePersist.h) deliberately knows nothing about
/// EscState/AbsState; these codecs plug client state serialization into
/// the RunSink/RunSource adapters so the service - which links both
/// analysis clients anyway - can snapshot and rehydrate whole
/// ForwardAnalysis runs.
///
/// Round-trip contract: save() followed by load() reconstructs a state
/// that compares equal and hashes identically, so re-interning the saved
/// states in id order reproduces every StateId bit-for-bit (the property
/// ForwardAnalysis::loadFrom verifies and warm-restart verdict identity
/// rests on).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_CACHECODECS_H
#define OPTABS_SERVICE_CACHECODECS_H

#include "escape/Escape.h"
#include "tracer/CachePersist.h"
#include "typestate/Typestate.h"

namespace optabs {
namespace service {

/// Escape-client states are byte vectors of per-variable lattice values.
struct EscStateCodec {
  void save(tracer::SnapshotWriter &W, const escape::EscState &S) const {
    W.bytes(S.Vals);
  }
  bool load(tracer::SnapshotReader &R, escape::EscState &S) const {
    return R.bytes(S.Vals);
  }
};

/// Type-state client states: the Top flag, the automaton state, and the
/// per-variable abstract values.
struct TsStateCodec {
  void save(tracer::SnapshotWriter &W, const typestate::AbsState &S) const {
    W.u8(S.Top ? 1 : 0);
    W.u32(S.Ts);
    W.u32(static_cast<uint32_t>(S.Vs.size()));
    for (uint32_t V : S.Vs)
      W.u32(V);
  }
  bool load(tracer::SnapshotReader &R, typestate::AbsState &S) const {
    uint8_t Top = 0;
    if (!R.u8(Top))
      return false;
    if (Top > 1) {
      R.fail("AbsState top flag out of range");
      return false;
    }
    S.Top = Top == 1;
    uint32_t Count = 0;
    if (!R.u32(S.Ts) || !R.u32(Count))
      return false;
    // Each value is a u32 still to be read; a count beyond the remaining
    // payload is provably truncated and must not size the reserve.
    if (Count > R.remaining() / 4) {
      R.fail("AbsState value count exceeds the remaining payload");
      return false;
    }
    S.Vs.clear();
    S.Vs.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t V = 0;
      if (!R.u32(V))
        return false;
      S.Vs.push_back(V);
    }
    return true;
  }
};

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_CACHECODECS_H
