//===- Transport.cpp - Socket/stdio line transport for the protocol -------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace optabs {
namespace service {

//===----------------------------------------------------------------------===//
// ListenSpec
//===----------------------------------------------------------------------===//

bool ListenSpec::parse(const std::string &Text, ListenSpec &Out,
                       std::string &Err) {
  if (Text == "stdio") {
    Out = ListenSpec();
    return true;
  }
  if (Text.rfind("unix:", 0) == 0) {
    std::string Path = Text.substr(5);
    if (Path.empty()) {
      Err = "unix listen spec needs a path ('unix:/run/optabs.sock')";
      return false;
    }
    // sockaddr_un::sun_path is ~108 bytes; fail here with a clear message
    // rather than from bind() with ENAMETOOLONG.
    if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      Err = "unix socket path exceeds " +
            std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes";
      return false;
    }
    Out.K = Kind::Unix;
    Out.Path = std::move(Path);
    Out.Port = 0;
    return true;
  }
  if (Text.rfind("tcp:", 0) == 0) {
    const std::string PortText = Text.substr(4);
    if (PortText.empty()) {
      Err = "tcp listen spec needs a port ('tcp:7077')";
      return false;
    }
    uint64_t Port = 0;
    for (char C : PortText) {
      if (C < '0' || C > '9') {
        Err = "tcp port '" + PortText + "' is not a number";
        return false;
      }
      Port = Port * 10 + static_cast<uint64_t>(C - '0');
      if (Port > 65535) {
        Err = "tcp port '" + PortText + "' is out of range";
        return false;
      }
    }
    Out.K = Kind::Tcp;
    Out.Path.clear();
    Out.Port = static_cast<uint16_t>(Port);
    return true;
  }
  Err = "listen spec must be 'stdio', 'unix:PATH', or 'tcp:PORT', got '" +
        Text + "'";
  return false;
}

std::string ListenSpec::str() const {
  switch (K) {
  case Kind::Stdio:
    return "stdio";
  case Kind::Unix:
    return "unix:" + Path;
  case Kind::Tcp:
    return "tcp:" + std::to_string(Port);
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// LineChannel
//===----------------------------------------------------------------------===//

LineChannel::LineChannel(int ReadFd, int WriteFd, bool OwnsFds,
                         size_t MaxLineBytes)
    : RFd(ReadFd), WFd(WriteFd), Owns(OwnsFds),
      MaxLine(MaxLineBytes ? MaxLineBytes : DefaultMaxLineBytes) {}

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel &&O) noexcept
    : RFd(O.RFd), WFd(O.WFd), Owns(O.Owns), MaxLine(O.MaxLine),
      Buf(std::move(O.Buf)), Scanned(O.Scanned), SawEof(O.SawEof),
      Discarding(O.Discarding) {
  O.RFd = O.WFd = -1;
  O.Owns = false;
}

LineChannel &LineChannel::operator=(LineChannel &&O) noexcept {
  if (this != &O) {
    close();
    RFd = O.RFd;
    WFd = O.WFd;
    Owns = O.Owns;
    MaxLine = O.MaxLine;
    Buf = std::move(O.Buf);
    Scanned = O.Scanned;
    SawEof = O.SawEof;
    Discarding = O.Discarding;
    O.RFd = O.WFd = -1;
    O.Owns = false;
  }
  return *this;
}

void LineChannel::close() {
  if (Owns) {
    if (RFd >= 0)
      ::close(RFd);
    if (WFd >= 0 && WFd != RFd)
      ::close(WFd);
  }
  RFd = WFd = -1;
  Owns = false;
}

LineChannel::ReadStatus LineChannel::readLine(std::string &Out,
                                              int TimeoutMs) {
  if (RFd < 0)
    return ReadStatus::Error;
  for (;;) {
    // Scan only bytes not seen by a previous pass.
    size_t Nl = Buf.find('\n', Scanned);
    Scanned = Buf.size();
    if (Nl != std::string::npos) {
      if (Discarding) {
        // End of the over-long line: drop it and report the overflow.
        Buf.erase(0, Nl + 1);
        Scanned = 0;
        Discarding = false;
        return ReadStatus::Overflow;
      }
      if (Nl > MaxLine) {
        // The whole over-long line arrived in one buffered gulp; still an
        // overflow - length is the contract, not arrival pattern.
        Buf.erase(0, Nl + 1);
        Scanned = 0;
        return ReadStatus::Overflow;
      }
      Out.assign(Buf, 0, Nl);
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      Buf.erase(0, Nl + 1);
      Scanned = 0;
      return ReadStatus::Line;
    }
    if (Buf.size() > MaxLine && !Discarding) {
      // Too long without a newline: switch to discard mode and keep
      // consuming until the terminator so the stream stays line-aligned.
      Discarding = true;
      Buf.clear();
      Scanned = 0;
    }
    if (Discarding) {
      Buf.clear();
      Scanned = 0;
    }
    if (SawEof) {
      // A final unterminated fragment still counts as a line; overflow
      // trumps it.
      if (Discarding) {
        Discarding = false;
        return ReadStatus::Overflow;
      }
      if (!Buf.empty()) {
        Out = std::move(Buf);
        Buf.clear();
        Scanned = 0;
        return ReadStatus::Line;
      }
      return ReadStatus::Eof;
    }

    if (TimeoutMs >= 0) {
      pollfd P{RFd, POLLIN, 0};
      int R = ::poll(&P, 1, TimeoutMs);
      if (R == 0)
        return ReadStatus::Timeout;
      if (R < 0) {
        if (errno == EINTR)
          return ReadStatus::Interrupted;
        return ReadStatus::Error;
      }
    }
    char Chunk[4096];
    ssize_t N = ::read(RFd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      SawEof = true;
      continue;
    }
    if (errno == EINTR)
      return ReadStatus::Interrupted;
    return ReadStatus::Error;
  }
}

bool LineChannel::writeLine(const std::string &Line) {
  if (WFd < 0)
    return false;
  std::string Data = Line;
  Data += '\n';
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(WFd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

const char *LineChannel::statusName(ReadStatus S) {
  switch (S) {
  case ReadStatus::Line:
    return "line";
  case ReadStatus::Eof:
    return "eof";
  case ReadStatus::Timeout:
    return "timeout";
  case ReadStatus::Overflow:
    return "overflow";
  case ReadStatus::Interrupted:
    return "interrupted";
  case ReadStatus::Error:
    return "error";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Listener / connectChannel
//===----------------------------------------------------------------------===//

namespace {

int makeSocket(const ListenSpec &Spec, std::string &Err) {
  int Fd = ::socket(Spec.K == ListenSpec::Kind::Unix ? AF_UNIX : AF_INET,
                    SOCK_STREAM, 0);
  if (Fd < 0)
    Err = std::string("socket failed: ") + std::strerror(errno);
  return Fd;
}

} // namespace

Listener::~Listener() { close(); }

Listener::Listener(Listener &&O) noexcept : Fd(O.Fd), Spec(O.Spec) {
  O.Fd = -1;
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Spec = O.Spec;
    O.Fd = -1;
  }
  return *this;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
    if (Spec.K == ListenSpec::Kind::Unix)
      ::unlink(Spec.Path.c_str());
  }
}

bool Listener::open(const ListenSpec &Spec, Listener &Out, std::string &Err) {
  Out.close();
  if (Spec.K == ListenSpec::Kind::Stdio) {
    Err = "cannot listen on stdio";
    return false;
  }
  int Fd = makeSocket(Spec, Err);
  if (Fd < 0)
    return false;
  if (Spec.K == ListenSpec::Kind::Unix) {
    ::unlink(Spec.Path.c_str()); // a stale file from a dead server
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Spec.Path.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      Err = "bind(" + Spec.Path + ") failed: " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
  } else {
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Spec.Port);
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // never routable
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      Err = "bind(127.0.0.1:" + std::to_string(Spec.Port) +
            ") failed: " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
  }
  if (::listen(Fd, 16) != 0) {
    Err = std::string("listen failed: ") + std::strerror(errno);
    ::close(Fd);
    if (Spec.K == ListenSpec::Kind::Unix)
      ::unlink(Spec.Path.c_str());
    return false;
  }
  Out.Fd = Fd;
  Out.Spec = Spec;
  if (Spec.K == ListenSpec::Kind::Tcp && Spec.Port == 0) {
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
      Out.Spec.Port = ntohs(Bound.sin_port);
  }
  return true;
}

LineChannel Listener::acceptChannel(int TimeoutMs, bool &TimedOut,
                                    bool &Interrupted, size_t MaxLineBytes) {
  TimedOut = Interrupted = false;
  if (Fd < 0)
    return LineChannel();
  if (TimeoutMs >= 0) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, TimeoutMs);
    if (R == 0) {
      TimedOut = true;
      return LineChannel();
    }
    if (R < 0) {
      Interrupted = errno == EINTR;
      return LineChannel();
    }
  }
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    Interrupted = errno == EINTR;
    return LineChannel();
  }
  return LineChannel(Conn, Conn, /*OwnsFds=*/true, MaxLineBytes);
}

LineChannel connectChannel(const ListenSpec &Spec, int TimeoutMs,
                           std::string &Err, size_t MaxLineBytes) {
  if (Spec.K == ListenSpec::Kind::Stdio) {
    Err = "cannot connect to stdio";
    return LineChannel();
  }
  // Retry the whole connect while the server is still coming up: a
  // freshly spawned worker binds its socket some milliseconds after
  // exec, so ENOENT/ECONNREFUSED are transient here.
  int Waited = 0;
  for (;;) {
    int Fd = makeSocket(Spec, Err);
    if (Fd < 0)
      return LineChannel();
    int RC;
    if (Spec.K == ListenSpec::Kind::Unix) {
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, Spec.Path.c_str(),
                   sizeof(Addr.sun_path) - 1);
      RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    } else {
      sockaddr_in Addr{};
      Addr.sin_family = AF_INET;
      Addr.sin_port = htons(Spec.Port);
      Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    }
    if (RC == 0) {
      Err.clear();
      return LineChannel(Fd, Fd, /*OwnsFds=*/true, MaxLineBytes);
    }
    int E = errno;
    ::close(Fd);
    if (E != ECONNREFUSED && E != ENOENT && E != EAGAIN) {
      Err = "connect(" + Spec.str() + ") failed: " + std::strerror(E);
      return LineChannel();
    }
    if (Waited >= TimeoutMs) {
      Err = "connect(" + Spec.str() + ") timed out after " +
            std::to_string(TimeoutMs) + "ms: " + std::strerror(E);
      return LineChannel();
    }
    ::usleep(10 * 1000);
    Waited += 10;
  }
}

} // namespace service
} // namespace optabs
