//===- AnalysisService.h - Long-lived multi-tenant analysis service -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived, multi-tenant front door to the TRACER engine. Where a
/// standalone tracer::QueryDriver is a one-shot object owning its own
/// thread pool and forward-run cache, an AnalysisService amortizes both
/// across every client: tenants register programs, open Sessions bound to
/// a program, submit (query, abstraction-family, budget, priority) jobs,
/// and receive futures; a batch scheduler coalesces jobs that target the
/// same (program, client, options) shard into one driver run, so a CEGAR
/// round's forward fixpoints are planned once across all pending queries
/// and memoized for every later one.
///
/// Architecture (DESIGN.md §9):
///
///  * One process-wide support::ThreadPool, borrowed by every driver run
///    for its parallel phases (QueryDriver::borrowExecution).
///  * One ForwardRunCache shard per (program, client family), shared
///    across sessions and batches. Cache keys carry the program's
///    registration epoch, so re-registering a program under the same name
///    invalidates cleanly: new keys never match stale runs, and the stale
///    entries (plus the retired IR they reference) are reclaimed by the
///    scheduler before the next batch on that program.
///  * A single scheduler thread executes batches one at a time: the
///    caches keep their single-threaded contract, verdicts stay bitwise
///    identical to standalone driver runs, and intra-batch parallelism
///    still comes from the shared pool.
///  * Admission control: per-session pending and lifetime job quotas
///    (Config::ServiceConfig). A tenant over quota has its submissions
///    rejected with a structured reason; other tenants are unaffected.
///    Fair-share scheduling picks the next batch from the session with
///    the fewest jobs served so far, then coalesces every compatible
///    pending job across all sessions into the same run.
///
/// All public methods are thread-safe. Batch execution order is
/// deterministic given a deterministic submission order (single scheduler,
/// fair-share tie-broken by session id and submission sequence), and
/// verdicts are independent of batch composition altogether: batching only
/// changes which forward fixpoints are shared, never what any query
/// concludes.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_ANALYSISSERVICE_H
#define OPTABS_SERVICE_ANALYSISSERVICE_H

#include "support/Config.h"
#include "tracer/QueryDriver.h"

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace optabs {
namespace service {

/// How one submitted job ended.
enum class JobStatus : uint8_t {
  Done,      ///< the driver resolved the query (see QueryResult::V)
  Rejected,  ///< admission control refused it (quota, bad session/query)
  Cancelled, ///< cancelled before it was scheduled
  Failed,    ///< the batch failed (program re-registered away, internal)
};

inline const char *jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Done:
    return "done";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Cancelled:
    return "cancelled";
  case JobStatus::Failed:
    return "failed";
  }
  return "?";
}

/// The resolution of one job, delivered through the future returned by
/// submit(). For Status == Done the verdict fields mirror
/// tracer::QueryOutcome; otherwise Error says what happened.
struct QueryResult {
  uint64_t Job = 0;
  uint64_t Session = 0;
  JobStatus Status = JobStatus::Failed;
  tracer::Verdict V = tracer::Verdict::Unresolved;
  unsigned Iterations = 0;
  uint32_t CheapestCost = 0;
  std::string CheapestParam;
  std::string ExhaustedResource; ///< for budget-unresolved verdicts
  std::string ExhaustedSite;
  std::string Error; ///< Rejected/Cancelled/Failed reason
};

/// A registration receipt (or a structured refusal).
struct RegisterResult {
  bool Ok = false;
  std::string Error;
  uint64_t Epoch = 0;   ///< bumped every time the name is re-registered
  uint32_t Checks = 0;  ///< check sites in the parsed program
  uint32_t Allocs = 0;  ///< allocation sites (typestate site domain)
  /// True when this was a re-registration (the name was already bound).
  bool ReRegistered = false;
  /// True when the retiring and new versions were comparable and the diff
  /// drove invalidation (Config::ServiceConfig::IncrementalReRegister on);
  /// false on first registration, incomparable versions, or with the
  /// feature off - those fall back to full invalidation.
  bool Incremental = false;
  /// Procedures whose content (or liveness) changed, by name, when
  /// Incremental; empty otherwise. DirtyChecks counts the check sites
  /// whose dependence footprint intersects those procedures - the only
  /// checks whose cached artifacts the re-registration discards.
  std::vector<std::string> DirtyProcs;
  uint32_t DirtyChecks = 0;
};

/// What a session analyzes: the thread-escape client, or the type-state
/// client (stress property when Property is empty, otherwise a property
/// automaton in the CLI's "init=...; method: from->to, ..." syntax).
struct SessionSpec {
  std::string Program; ///< registered program name
  std::string Client;  ///< "escape" or "typestate"
  std::string Property;
  /// Per-session execution/budget configuration. Validated at open;
  /// Execution.NumThreads and Execution.ForwardCacheCapacity are
  /// service-owned and ignored here. Sessions with identical effective
  /// options coalesce into shared batches; differing options (a different
  /// K, strategy, or budget) keep their runs apart.
  Config SessionConfig;
};

/// One submitted query.
struct JobSpec {
  uint32_t Check = 0; ///< check-site index in the program
  /// Type-state tracked allocation-site index; ignored by the escape
  /// client. One driver run handles one site, so jobs coalesce per site.
  uint32_t Site = 0;
  /// Larger = served earlier within this session's queue. Priority orders
  /// batch *selection*; it never changes any query's verdict.
  int32_t Priority = 0;
};

/// Aggregate service counters (monotonic except QueueDepth). Exposed to
/// the stats protocol op and mirrored as optabs_service_* metrics.
struct ServiceStats {
  uint64_t ProgramsRegistered = 0;
  uint64_t SessionsOpened = 0;
  uint64_t SessionsClosed = 0;
  uint64_t JobsSubmitted = 0;
  uint64_t JobsRejected = 0;
  uint64_t JobsCancelled = 0;
  uint64_t JobsCompleted = 0;
  uint64_t JobsFailed = 0;
  uint64_t Batches = 0;
  /// Jobs that rode in a coalesced batch beyond the first of each batch:
  /// BatchedJobs - Batches. The amortization the service exists for.
  uint64_t CoalescedJobs = 0;
  uint64_t QueueDepth = 0; ///< pending + running jobs right now
  /// Summed driver statistics across every batch (deltas per run).
  uint64_t ForwardRuns = 0;
  uint64_t BackwardRuns = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t StaleEntriesInvalidated = 0; ///< re-registration evictions
  /// Incremental re-registration accounting (ir/ProgramDiff.h): cached
  /// artifacts (forward runs and stored verdicts) carried into the new
  /// epoch vs discarded because a dirty procedure sat in their dependence
  /// footprint; ProceduresDirty sums diff sizes across re-registrations
  /// and VerdictsReplayed counts jobs answered from a migrated verdict
  /// without running the driver at all.
  uint64_t EntriesMigrated = 0;
  uint64_t EntriesInvalidated = 0;
  uint64_t ProceduresDirty = 0;
  uint64_t VerdictsReplayed = 0;
};

class AnalysisService;

/// A tenant's handle: a session id plus the service it lives in. Thin and
/// copyable; close() (or closing the service) invalidates all copies.
class Session {
public:
  Session() = default;

  uint64_t id() const { return Id; }
  bool valid() const { return Svc != nullptr; }

  /// Submits one query; the future always completes (Rejected results
  /// complete immediately, scheduled ones when their batch finishes).
  /// \p JobId (when non-null) receives the assigned job id, or 0 when the
  /// submission was rejected without being queued.
  std::future<QueryResult> submit(const JobSpec &Job,
                                  uint64_t *JobId = nullptr);

  /// Cancels this session's still-pending jobs; running batches finish.
  /// Returns how many were cancelled.
  size_t cancelPending();

  /// Closes the session: pending jobs are cancelled, further submissions
  /// rejected. Idempotent.
  void close();

private:
  friend class AnalysisService;
  Session(AnalysisService *Svc, uint64_t Id) : Svc(Svc), Id(Id) {}

  AnalysisService *Svc = nullptr;
  uint64_t Id = 0;
};

/// See the file comment. Construction spins up the shared pool and the
/// scheduler thread; destruction drains nothing - still-pending jobs
/// complete as Cancelled.
class AnalysisService {
public:
  struct Options {
    /// Service-wide execution defaults: NumThreads sizes the shared pool
    /// (0 = hardware concurrency), ForwardCacheCapacity caps every cache
    /// shard, and Service.* carries the tenant quotas.
    Config Base;
    /// When false, submitted jobs only run inside drain() calls - every
    /// pending job is visible to the scheduler at once, so batch
    /// composition (and therefore cache-hit accounting) is a pure
    /// function of the submission order. The JSONL server runs this way
    /// to keep scripted transcripts byte-stable; interactive embedders
    /// keep the default and batches form as the scheduler frees up.
    bool AutoDispatch = true;
  };

  AnalysisService(); ///< default Options
  explicit AnalysisService(Options Opts);
  ~AnalysisService();

  AnalysisService(const AnalysisService &) = delete;
  AnalysisService &operator=(const AnalysisService &) = delete;

  /// Parses and (re-)registers a program under \p Name. Re-registration
  /// bumps the epoch; what happens to queued jobs and cached artifacts
  /// depends on Config::ServiceConfig::IncrementalReRegister:
  ///
  ///  * Incremental (default): the new version is diffed against the
  ///    retiring one per procedure (ir/ProgramDiff.h). Cached forward runs
  ///    and stored verdicts whose dependence footprint is entirely clean
  ///    migrate into the new epoch; only artifacts touching a dirty
  ///    procedure are discarded. Still-queued jobs survive when their
  ///    check's footprint is clean and fail with a structured stale-epoch
  ///    reason otherwise. Verdicts after an incremental re-registration
  ///    are bitwise identical to a cold re-registration; the service
  ///    replays whole stored verdicts rather than seeding viable sets
  ///    (seeding shortens the search and changes reported iteration
  ///    counts - see tracer::QueryDriver::seedViableSets).
  ///  * Full (flag off, incomparable versions, or first registration):
  ///    every cached artifact of older epochs is invalidated before the
  ///    next batch and every still-queued job against the retiring epoch
  ///    fails with the stale-epoch reason.
  RegisterResult registerProgram(const std::string &Name,
                                 const std::string &IrText);

  /// Opens a session; on failure the returned Session is !valid() and
  /// \p Error explains why (unknown program/client, invalid config,
  /// session quota).
  Session openSession(const SessionSpec &Spec, std::string &Error);

  /// Blocks until every job pending at (or submitted during) this call
  /// has completed. With AutoDispatch = false this is also what runs them.
  void drain();

  ServiceStats stats() const;

  /// The number of workers in the shared pool (diagnostics/tests).
  unsigned poolWorkers() const;

private:
  friend class Session;

  std::future<QueryResult> submitJob(uint64_t SessionId, const JobSpec &Job,
                                     uint64_t *JobId);
  size_t cancelSessionPending(uint64_t SessionId);
  void closeSession(uint64_t SessionId);

  struct Impl;
  std::unique_ptr<Impl> I;
};

inline std::future<QueryResult> Session::submit(const JobSpec &Job,
                                                uint64_t *JobId) {
  if (JobId)
    *JobId = 0;
  if (!Svc) {
    std::promise<QueryResult> P;
    QueryResult R;
    R.Status = JobStatus::Rejected;
    R.Error = "invalid session handle";
    P.set_value(std::move(R));
    return P.get_future();
  }
  return Svc->submitJob(Id, Job, JobId);
}
inline size_t Session::cancelPending() {
  return Svc ? Svc->cancelSessionPending(Id) : 0;
}
inline void Session::close() {
  if (Svc)
    Svc->closeSession(Id);
  Svc = nullptr;
}

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_ANALYSISSERVICE_H
