//===- AnalysisService.h - Long-lived multi-tenant analysis service -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived, multi-tenant front door to the TRACER engine. Where a
/// standalone tracer::QueryDriver is a one-shot object owning its own
/// thread pool and forward-run cache, an AnalysisService amortizes both
/// across every client: tenants register programs, open Sessions bound to
/// a program, submit (query, abstraction-family, budget, priority) jobs,
/// and receive futures; a batch scheduler coalesces jobs that target the
/// same (program, client, options) shard into one driver run, so a CEGAR
/// round's forward fixpoints are planned once across all pending queries
/// and memoized for every later one.
///
/// Architecture (DESIGN.md §9):
///
///  * One process-wide support::ThreadPool, borrowed by every driver run
///    for its parallel phases (QueryDriver::borrowExecution).
///  * One ForwardRunCache shard per (program, client family), shared
///    across sessions and batches. Cache keys carry the program's
///    registration epoch, so re-registering a program under the same name
///    invalidates cleanly: new keys never match stale runs, and the stale
///    entries (plus the retired IR they reference) are reclaimed by the
///    scheduler before the next batch on that program.
///  * A single scheduler thread executes batches one at a time: the
///    caches keep their single-threaded contract, verdicts stay bitwise
///    identical to standalone driver runs, and intra-batch parallelism
///    still comes from the shared pool.
///  * Admission control: per-session pending and lifetime job quotas
///    (Config::ServiceConfig). A tenant over quota has its submissions
///    rejected with a structured reason; other tenants are unaffected.
///    Fair-share scheduling picks the next batch from the session with
///    the fewest jobs served so far, then coalesces every compatible
///    pending job across all sessions into the same run.
///
/// All public methods are thread-safe. Batch execution order is
/// deterministic given a deterministic submission order (single scheduler,
/// fair-share tie-broken by session id and submission sequence), and
/// verdicts are independent of batch composition altogether: batching only
/// changes which forward fixpoints are shared, never what any query
/// concludes.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_ANALYSISSERVICE_H
#define OPTABS_SERVICE_ANALYSISSERVICE_H

#include "support/Config.h"
#include "support/Trace.h"
#include "tracer/QueryDriver.h"

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace optabs {
namespace service {

/// How one submitted job ended.
enum class JobStatus : uint8_t {
  Done,      ///< the driver resolved the query (see QueryResult::V)
  Rejected,  ///< admission control refused it (quota, bad session/query)
  Cancelled, ///< cancelled before it was scheduled
  Failed,    ///< the batch failed (program re-registered away, internal)
};

inline const char *jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Done:
    return "done";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Cancelled:
    return "cancelled";
  case JobStatus::Failed:
    return "failed";
  }
  return "?";
}

/// The resolution of one job, delivered through the future returned by
/// submit(). For Status == Done the verdict fields mirror
/// tracer::QueryOutcome; otherwise Error says what happened.
struct QueryResult {
  uint64_t Job = 0;
  uint64_t Session = 0;
  JobStatus Status = JobStatus::Failed;
  tracer::Verdict V = tracer::Verdict::Unresolved;
  unsigned Iterations = 0;
  uint32_t CheapestCost = 0;
  std::string CheapestParam;
  std::string ExhaustedResource; ///< for budget-unresolved verdicts
  std::string ExhaustedSite;
  std::string Error; ///< Rejected/Cancelled/Failed reason
};

/// A registration receipt (or a structured refusal).
struct RegisterResult {
  bool Ok = false;
  std::string Error;
  uint64_t Epoch = 0;   ///< bumped every time the name is re-registered
  uint32_t Checks = 0;  ///< check sites in the parsed program
  uint32_t Allocs = 0;  ///< allocation sites (typestate site domain)
  /// True when this was a re-registration (the name was already bound).
  bool ReRegistered = false;
  /// True when the retiring and new versions were comparable and the diff
  /// drove invalidation (Config::ServiceConfig::IncrementalReRegister on);
  /// false on first registration, incomparable versions, or with the
  /// feature off - those fall back to full invalidation.
  bool Incremental = false;
  /// Procedures whose content (or liveness) changed, by name, when
  /// Incremental; empty otherwise. DirtyChecks counts the check sites
  /// whose dependence footprint intersects those procedures - the only
  /// checks whose cached artifacts the re-registration discards.
  std::vector<std::string> DirtyProcs;
  uint32_t DirtyChecks = 0;
};

/// What a session analyzes: the thread-escape client, or the type-state
/// client (stress property when Property is empty, otherwise a property
/// automaton in the CLI's "init=...; method: from->to, ..." syntax).
struct SessionSpec {
  std::string Program; ///< registered program name
  std::string Client;  ///< "escape" or "typestate"
  std::string Property;
  /// Per-session execution/budget configuration. Validated at open;
  /// Execution.NumThreads and Execution.ForwardCacheCapacity are
  /// service-owned and ignored here. Sessions with identical effective
  /// options coalesce into shared batches; differing options (a different
  /// K, strategy, or budget) keep their runs apart.
  Config SessionConfig;
};

/// One submitted query.
struct JobSpec {
  JobSpec() = default;
  JobSpec(uint32_t Check, uint32_t Site = 0, int32_t Priority = 0,
          support::TraceContext Parent = {})
      : Check(Check), Site(Site), Priority(Priority), Parent(Parent) {}

  uint32_t Check = 0; ///< check-site index in the program
  /// Type-state tracked allocation-site index; ignored by the escape
  /// client. One driver run handles one site, so jobs coalesce per site.
  uint32_t Site = 0;
  /// Larger = served earlier within this session's queue. Priority orders
  /// batch *selection*; it never changes any query's verdict.
  int32_t Priority = 0;
  /// Caller-minted trace context (support/Trace.h). When TraceId is 0 the
  /// service uses the assigned job id as the trace id, so every job has a
  /// usable identity; the span id is always the job id. Purely
  /// observational - never affects scheduling or verdicts.
  support::TraceContext Parent;
};

/// Aggregate service counters (monotonic except QueueDepth). Exposed to
/// the stats protocol op and mirrored as optabs_service_* metrics.
struct ServiceStats {
  uint64_t ProgramsRegistered = 0;
  uint64_t SessionsOpened = 0;
  uint64_t SessionsClosed = 0;
  uint64_t JobsSubmitted = 0;
  uint64_t JobsRejected = 0;
  uint64_t JobsCancelled = 0;
  uint64_t JobsCompleted = 0;
  uint64_t JobsFailed = 0;
  uint64_t Batches = 0;
  /// Jobs that rode in a coalesced batch beyond the first of each batch:
  /// BatchedJobs - Batches. The amortization the service exists for.
  uint64_t CoalescedJobs = 0;
  uint64_t QueueDepth = 0; ///< pending + running jobs right now
  /// Summed driver statistics across every batch (deltas per run).
  uint64_t ForwardRuns = 0;
  uint64_t BackwardRuns = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t StaleEntriesInvalidated = 0; ///< re-registration evictions
  /// Incremental re-registration accounting (ir/ProgramDiff.h): cached
  /// artifacts (forward runs and stored verdicts) carried into the new
  /// epoch vs discarded because a dirty procedure sat in their dependence
  /// footprint; ProceduresDirty sums diff sizes across re-registrations
  /// and VerdictsReplayed counts jobs answered from a migrated verdict
  /// without running the driver at all.
  uint64_t EntriesMigrated = 0;
  uint64_t EntriesInvalidated = 0;
  uint64_t ProceduresDirty = 0;
  uint64_t VerdictsReplayed = 0;
  /// Forward fixpoints a job got without computing one: cache hits inside
  /// batch runs plus whole-verdict replays. The amortization the batching
  /// and incremental layers buy, as one number.
  uint64_t FixpointsAmortized = 0;
  /// Jobs whose end-to-end latency exceeded
  /// Config::ObservabilityConfig::SlowQuerySeconds (0 when that log is
  /// disabled or tracing/metrics never stamped timestamps).
  uint64_t SlowQueries = 0;
  /// Jobs-per-batch quantiles (log2-bucket estimates clamped to min/max;
  /// support::LogHistogram::quantile). Recorded unconditionally - batch
  /// composition is deterministic under AutoDispatch = false, so these are
  /// transcript-stable.
  uint64_t BatchJobsP50 = 0;
  uint64_t BatchJobsP90 = 0;
  uint64_t BatchJobsP99 = 0;
  /// (session id, pending + running jobs) for every open session at
  /// snapshot time, ascending by session id. The per-tenant companion to
  /// the process-wide QueueDepth gauge.
  std::vector<std::pair<uint64_t, uint64_t>> PendingBySession;
};

/// One job's recorded lifecycle, returned by AnalysisService::explain()
/// (and the `explain` protocol op). Only populated while tracing is on;
/// the service keeps the most recent trace-capacity timelines and evicts
/// oldest-first, like the flight recorder itself.
struct JobTimeline {
  bool Found = false; ///< false: tracing off, never admitted, or evicted
  uint64_t Job = 0;
  uint64_t Session = 0;
  uint32_t Check = 0;
  uint32_t Site = 0;
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  std::string Status;  ///< "queued", "batched", or a terminal JobStatus name
  std::string Verdict; ///< verdict name when Status == "done"
  uint64_t Batch = 0;  ///< 0 until batched
  uint64_t Peers = 0;  ///< jobs in the batch, this one included
  /// Lifecycle timestamps (Profiler timebase, ns): submission, batch
  /// formation, driver start, fulfillment. 0 = not reached yet.
  uint64_t SubmitNs = 0;
  uint64_t PickNs = 0;
  uint64_t RunStartNs = 0;
  uint64_t FulfillNs = 0;
  /// Per-phase driver seconds of the batch that served this job (batch
  /// attribution: one driver run resolves every non-replayed peer).
  double PlanS = 0;
  double ForwardS = 0;
  double ClassifyS = 0;
  double ExtractS = 0;
  double BackwardS = 0;
  double MergeS = 0;
  /// Forward-cache hit/miss deltas of the serving batch's run.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Whole-verdict replay attribution: the job was answered from a stored
  /// verdict computed at DataEpoch, legal because every procedure in the
  /// check's dependence footprint (CleanFootprint, by name) survived the
  /// re-registration unchanged.
  bool Replayed = false;
  uint64_t ReplayDataEpoch = 0;
  std::string CleanFootprint;

  /// The latency decomposition; by construction
  /// endToEndNs() == queueWaitNs() + batchWaitNs() + runNs() once the job
  /// is fulfilled. Each stage reads 0 while its later stamp is missing
  /// (job still queued/batched, or clocks off).
  uint64_t queueWaitNs() const {
    return PickNs >= SubmitNs && PickNs ? PickNs - SubmitNs : 0;
  }
  uint64_t batchWaitNs() const {
    return RunStartNs >= PickNs && PickNs ? RunStartNs - PickNs : 0;
  }
  uint64_t runNs() const {
    return FulfillNs >= RunStartNs && RunStartNs ? FulfillNs - RunStartNs
                                                : 0;
  }
  uint64_t endToEndNs() const {
    return FulfillNs >= SubmitNs && FulfillNs ? FulfillNs - SubmitNs : 0;
  }
};

/// The outcome of one cache-admin operation (AnalysisService::cacheOp and
/// the `cache` protocol op): what was persisted, loaded, spilled, evicted
/// or skipped, plus structured per-artifact notes ("skipped stale verdict
/// ...", "snapshot <path>: checksum mismatch ..."). A damaged or stale
/// snapshot never fails the operation as a whole - it is skipped with a
/// note, because a warm start degrading to a cold one is normal.
struct CacheOpResult {
  bool Ok = false;
  std::string Error; ///< unknown action/program, persistence disabled, ...
  uint64_t RunsPersisted = 0;
  uint64_t VerdictsPersisted = 0;
  uint64_t RunsLoaded = 0;
  uint64_t VerdictsLoaded = 0;
  uint64_t RunsSkipped = 0;    ///< stale/duplicate/corrupt, see Notes
  uint64_t VerdictsSkipped = 0;
  uint64_t Spilled = 0; ///< entries written to spill files then evicted
  uint64_t Evicted = 0;
  uint64_t SpillLoads = 0;  ///< lifetime spill-file rehydrations (stats)
  uint64_t SpillWrites = 0; ///< lifetime spill-file writes (stats)
  uint64_t ResidentBytes = 0; ///< in-memory cache footprint (stats)
  uint64_t Entries = 0;       ///< resident cache entries (stats)
  std::vector<std::string> Notes;
};

class AnalysisService;

/// A tenant's handle: a session id plus the service it lives in. Thin and
/// copyable; close() (or closing the service) invalidates all copies.
class Session {
public:
  Session() = default;

  uint64_t id() const { return Id; }
  bool valid() const { return Svc != nullptr; }

  /// Submits one query; the future always completes (Rejected results
  /// complete immediately, scheduled ones when their batch finishes).
  /// \p JobId (when non-null) receives the assigned job id, or 0 when the
  /// submission was rejected without being queued.
  std::future<QueryResult> submit(const JobSpec &Job,
                                  uint64_t *JobId = nullptr);

  /// Cancels this session's still-pending jobs; running batches finish.
  /// Returns how many were cancelled.
  size_t cancelPending();

  /// Closes the session: pending jobs are cancelled, further submissions
  /// rejected. Idempotent.
  void close();

private:
  friend class AnalysisService;
  Session(AnalysisService *Svc, uint64_t Id) : Svc(Svc), Id(Id) {}

  AnalysisService *Svc = nullptr;
  uint64_t Id = 0;
};

/// See the file comment. Construction spins up the shared pool and the
/// scheduler thread; destruction drains nothing - still-pending jobs
/// complete as Cancelled.
class AnalysisService {
public:
  struct Options {
    /// Service-wide execution defaults: NumThreads sizes the shared pool
    /// (0 = hardware concurrency), ForwardCacheCapacity caps every cache
    /// shard, and Service.* carries the tenant quotas.
    Config Base;
    /// When false, submitted jobs only run inside drain() calls - every
    /// pending job is visible to the scheduler at once, so batch
    /// composition (and therefore cache-hit accounting) is a pure
    /// function of the submission order. The JSONL server runs this way
    /// to keep scripted transcripts byte-stable; interactive embedders
    /// keep the default and batches form as the scheduler frees up.
    bool AutoDispatch = true;
  };

  AnalysisService(); ///< default Options
  explicit AnalysisService(Options Opts);
  ~AnalysisService();

  AnalysisService(const AnalysisService &) = delete;
  AnalysisService &operator=(const AnalysisService &) = delete;

  /// Parses and (re-)registers a program under \p Name. Re-registration
  /// bumps the epoch; what happens to queued jobs and cached artifacts
  /// depends on Config::ServiceConfig::IncrementalReRegister:
  ///
  ///  * Incremental (default): the new version is diffed against the
  ///    retiring one per procedure (ir/ProgramDiff.h). Cached forward runs
  ///    and stored verdicts whose dependence footprint is entirely clean
  ///    migrate into the new epoch; only artifacts touching a dirty
  ///    procedure are discarded. Still-queued jobs survive when their
  ///    check's footprint is clean and fail with a structured stale-epoch
  ///    reason otherwise. Verdicts after an incremental re-registration
  ///    are bitwise identical to a cold re-registration; the service
  ///    replays whole stored verdicts rather than seeding viable sets
  ///    (seeding shortens the search and changes reported iteration
  ///    counts - see tracer::QueryDriver::seedViableSets).
  ///  * Full (flag off, incomparable versions, or first registration):
  ///    every cached artifact of older epochs is invalidated before the
  ///    next batch and every still-queued job against the retiring epoch
  ///    fails with the stale-epoch reason.
  RegisterResult registerProgram(const std::string &Name,
                                 const std::string &IrText);

  /// Opens a session; on failure the returned Session is !valid() and
  /// \p Error explains why (unknown program/client, invalid config,
  /// session quota).
  Session openSession(const SessionSpec &Spec, std::string &Error);

  /// Blocks until every job pending at (or submitted during) this call
  /// has completed. With AutoDispatch = false this is also what runs them.
  void drain();

  ServiceStats stats() const;

  /// The number of workers in the shared pool (diagnostics/tests).
  unsigned poolWorkers() const;

  /// True when the flight recorder is live
  /// (Config::ObservabilityConfig::ServiceTrace at construction).
  bool tracingEnabled() const;

  /// Removes and returns every buffered trace event, oldest first (the
  /// `trace` protocol op). Empty when tracing is disabled.
  std::vector<support::TraceEvent> drainTrace();

  /// Trace events evicted under ring pressure, lifetime.
  uint64_t traceDropped() const;

  /// The recorded timeline of one job (the `explain` protocol op).
  /// !Found when tracing is off, the job was never admitted, or its
  /// timeline was evicted (bounded like the recorder ring).
  JobTimeline explain(uint64_t JobId) const;

  /// The unified cache-admin API (the `cache` protocol op). \p Action is
  /// one of:
  ///
  ///  * "stats"   - resident entries/bytes and lifetime spill counters
  ///  * "persist" - snapshot cached forward runs and stored verdicts of
  ///                \p Program (every program when empty) to
  ///                Config::ServiceConfig::CacheDir
  ///  * "load"    - warm the caches from snapshots on disk; entries are
  ///                validated against the live program fingerprint exactly
  ///                like a re-registration diff (ir/ProgramDiff.h) and
  ///                stale or corrupt artifacts are skipped with notes
  ///  * "spill"   - demote every unpinned cached run to a spill file (or
  ///                plain-evict when no cache_dir is configured)
  ///  * "evict"   - drop every unpinned cached run without spilling
  ///
  /// Runs on the scheduler thread between batches, so cache invariants
  /// (single-threaded shards, epoch pinning) hold throughout; the call
  /// blocks until the operation completes. persist/load require
  /// service.cache_dir and service.incremental_re_register (fingerprints
  /// are what make a loaded entry provably current).
  CacheOpResult cacheOp(const std::string &Action,
                        const std::string &Program = std::string());

private:
  friend class Session;

  std::future<QueryResult> submitJob(uint64_t SessionId, const JobSpec &Job,
                                     uint64_t *JobId);
  size_t cancelSessionPending(uint64_t SessionId);
  void closeSession(uint64_t SessionId);

  struct Impl;
  std::unique_ptr<Impl> I;
};

inline std::future<QueryResult> Session::submit(const JobSpec &Job,
                                                uint64_t *JobId) {
  if (JobId)
    *JobId = 0;
  if (!Svc) {
    std::promise<QueryResult> P;
    QueryResult R;
    R.Status = JobStatus::Rejected;
    R.Error = "invalid session handle";
    P.set_value(std::move(R));
    return P.get_future();
  }
  return Svc->submitJob(Id, Job, JobId);
}
inline size_t Session::cancelPending() {
  return Svc ? Svc->cancelSessionPending(Id) : 0;
}
inline void Session::close() {
  if (Svc)
    Svc->closeSession(Id);
  Svc = nullptr;
}

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_ANALYSISSERVICE_H
