//===- ShardRouter.cpp - Shard supervisor for multi-process serving -------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "service/ShardRouter.h"

#include "service/Protocol.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <set>
#include <thread>
#include <unistd.h>

namespace optabs {
namespace service {

using tracer::JsonObject;

//===----------------------------------------------------------------------===//
// Clock
//===----------------------------------------------------------------------===//

uint64_t SteadyRouterClock::nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SteadyRouterClock::sleepMs(uint64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

//===----------------------------------------------------------------------===//
// Partitioning
//===----------------------------------------------------------------------===//

namespace {

/// fnv1a64 over (program, '\0', client). Hand-rolled on purpose:
/// std::hash is implementation-defined, and the shard a session lands on
/// is observable in scripted chaos transcripts.
uint64_t sessionHash(const std::string &Program, const std::string &Client) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ULL;
    }
  };
  Mix(Program);
  H ^= 0;
  H *= 0x100000001b3ULL;
  Mix(Client);
  return H;
}

} // namespace

unsigned ShardRouter::shardFor(const std::string &Program,
                               const std::string &Client) const {
  if (Opts.NumShards <= 1)
    return 0;
  return static_cast<unsigned>(sessionHash(Program, Client) % Opts.NumShards);
}

//===----------------------------------------------------------------------===//
// Construction / lifecycle
//===----------------------------------------------------------------------===//

ShardRouter::ShardRouter(ShardRouterOptions O, ShardHost &H, RouterClock *C)
    : Opts(O), Host(H), Clock(C), Jitter(Opts.JitterSeed) {
  if (Opts.NumShards == 0)
    Opts.NumShards = 1;
  if (!Clock) {
    OwnedClock = std::make_unique<SteadyRouterClock>();
    Clock = OwnedClock.get();
  }
  Shards.resize(Opts.NumShards);
  Stats.RestartsByShard.assign(Opts.NumShards, 0);
}

ShardRouter::~ShardRouter() = default;

bool ShardRouter::start(std::string &Err) {
  for (unsigned I = 0; I < Opts.NumShards; ++I)
    if (!ensureUp(I, Err))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Restart ladder
//===----------------------------------------------------------------------===//

void ShardRouter::markDown(unsigned I) { Shards[I].Up = false; }

bool ShardRouter::ensureUp(unsigned I, std::string &Err) {
  Shard &Sh = Shards[I];
  if (Sh.Up && Sh.Ep && Sh.Ep->alive())
    return true;
  return restartShard(I, Err);
}

bool ShardRouter::restartShard(unsigned I, std::string &Err) {
  Shard &Sh = Shards[I];
  const bool IsRestart = Sh.EverStarted;
  if (Sh.Ep)
    Sh.Ep->kill();
  Sh.Up = false;

  // A shard that stayed healthy long enough earns a fresh ladder.
  if (IsRestart) {
    if (Sh.NextBackoffMs == 0)
      Sh.NextBackoffMs = Opts.BackoffInitialMs;
    if (Sh.LastRestartMs != 0 &&
        Clock->nowMs() - Sh.LastRestartMs >= Opts.BackoffResetMs)
      Sh.NextBackoffMs = Opts.BackoffInitialMs;
  }

  unsigned Attempts = std::max(1u, Opts.MaxRestartAttempts);
  std::string SpawnErr;
  for (unsigned Attempt = 0; Attempt < Attempts; ++Attempt) {
    // The very first spawn of a shard is not a failure - no delay. Every
    // later attempt sleeps the current ladder step plus jitter, then
    // escalates toward the cap.
    if (IsRestart || Attempt > 0) {
      uint64_t Base =
          Sh.NextBackoffMs ? Sh.NextBackoffMs : Opts.BackoffInitialMs;
      uint64_t Extra = 0;
      if (Opts.BackoffJitter > 0.0)
        Extra = Jitter.nextBelow(
            static_cast<uint64_t>(static_cast<double>(Base) *
                                  Opts.BackoffJitter) +
            1);
      Clock->sleepMs(Base + Extra);
      Sh.NextBackoffMs = std::min(Base * 2, Opts.BackoffMaxMs);
    }
    Sh.EverStarted = true;

    Sh.Ep = Host.spawn(I, SpawnErr);
    if (!Sh.Ep)
      continue;
    // Readiness handshake: the worker answers ping once it is accepting.
    std::string Resp;
    if (!Sh.Ep->sendLine("{\"op\":\"ping\"}") ||
        Sh.Ep->recvLine(Resp, Opts.RequestTimeoutMs) !=
            ShardEndpoint::RecvStatus::Line) {
      Sh.Ep->kill();
      continue;
    }
    Sh.Up = true;
    if (!replayShard(I)) {
      Sh.Ep->kill();
      Sh.Up = false;
      continue;
    }
    Sh.LastRestartMs = Clock->nowMs();
    if (IsRestart) {
      ++Sh.Restarts;
      ++Stats.Restarts;
      ++Stats.RestartsByShard[I];
    }
    return true;
  }
  Err = "shard " + std::to_string(I) + " failed to start after " +
        std::to_string(Attempts) + " attempts" +
        (SpawnErr.empty() ? "" : (": " + SpawnErr));
  return false;
}

//===----------------------------------------------------------------------===//
// RPC
//===----------------------------------------------------------------------===//

ShardRouter::RpcStatus ShardRouter::rpcOnce(unsigned I,
                                            const std::string &Line,
                                            std::string &Resp) {
  Shard &Sh = Shards[I];
  if (!Sh.Ep || !Sh.Up)
    return RpcStatus::Died;
  if (!Sh.Ep->sendLine(Line))
    return RpcStatus::Died;
  switch (Sh.Ep->recvLine(Resp, Opts.RequestTimeoutMs)) {
  case ShardEndpoint::RecvStatus::Line:
    return RpcStatus::Ok;
  case ShardEndpoint::RecvStatus::Closed:
    return RpcStatus::Died;
  case ShardEndpoint::RecvStatus::Timeout:
    // A hung shard is indistinguishable from a slow one; past the
    // deadline we treat it as dead so the restart path can requeue.
    Sh.Ep->kill();
    return RpcStatus::TimedOut;
  }
  return RpcStatus::Died;
}

bool ShardRouter::rpcWithRetry(unsigned I,
                               const std::function<std::string()> &MakeLine,
                               std::string &Resp, std::string &Err) {
  unsigned Tries = Opts.MaxRequestRetries + 1;
  for (unsigned A = 0; A < Tries; ++A) {
    if (!ensureUp(I, Err))
      return false;
    // Build the line after ensureUp: a restart in there renumbered the
    // shard-local session ids, and a line minted before the replay would
    // target a stale id - at best "unknown session", at worst a different
    // session entirely.
    if (rpcOnce(I, MakeLine(), Resp) == RpcStatus::Ok)
      return true;
    markDown(I);
  }
  Err = "shard " + std::to_string(I) + " did not answer after " +
        std::to_string(Tries) + " attempts";
  return false;
}

bool ShardRouter::rpcWithRetry(unsigned I, const std::string &Line,
                               std::string &Resp, std::string &Err) {
  return rpcWithRetry(
      I, [&Line]() { return Line; }, Resp, Err);
}

//===----------------------------------------------------------------------===//
// Replay: rebuild a fresh worker from the journal
//===----------------------------------------------------------------------===//

std::string ShardRouter::submitLineFor(const JobRec &J,
                                       uint64_t ShardSession) const {
  JsonObject O;
  O.field("op", "submit");
  O.field("session", ShardSession);
  O.field("check", J.Check);
  if (J.HasSite)
    O.field("site", J.Site);
  if (J.HasPriority)
    O.field("priority", J.Priority);
  return O.str();
}

void ShardRouter::synthesizeResult(JobRec &J, const char *Status,
                                   const std::string &Error) {
  JsonObject O = response(true);
  O.field("op", "result");
  O.field("job", J.SupId);
  O.field("session", J.SupSession);
  O.field("status", Status);
  O.field("error", Error);
  J.ResultLine = O.str();
}

bool ShardRouter::replayShard(unsigned I) {
  Shard &Sh = Shards[I];
  Sh.JobsByShardId.clear();

  auto Rpc = [&](const std::string &Line, JsonLine &Parsed) -> bool {
    std::string Resp;
    if (rpcOnce(I, Line, Resp) != RpcStatus::Ok)
      return false;
    std::string PErr;
    if (!JsonLine::parse(Resp, Parsed, PErr))
      return false;
    return Parsed.getBool("ok").value_or(false);
  };

  // 1. Registrations, oldest first, so re-registrations land last and the
  //    worker converges on the same latest-epoch view the journal holds.
  for (const Registration &R : Journal) {
    JsonObject O;
    O.field("op", "register-program");
    O.field("name", R.Name);
    O.field("text", R.Text);
    JsonLine Resp;
    if (!Rpc(O.str(), Resp))
      return false;
  }

  // 2. This shard's live sessions, in supervisor-id order, replaying the
  //    original open-session lines verbatim (config flags included).
  for (auto &[Id, S] : Sessions) {
    if (S.Shard != I || S.Closed)
      continue;
    JsonLine Resp;
    if (!Rpc(S.OpenLine, Resp))
      return false;
    auto NewId = Resp.getUInt("session");
    if (!NewId)
      return false;
    S.ShardId = *NewId;
  }

  // 3. Requeue the shard's unfulfilled jobs, in supervisor-id order.
  //    Jobs whose cancel was already acknowledged are not re-run: they
  //    complete here with the same cancelled result line the worker
  //    would have produced at drain.
  for (auto &[Id, J] : Jobs) {
    if (J.Shard != I || J.State != JobState::Pending)
      continue;
    if (J.CancelRequested) {
      synthesizeResult(J, "cancelled", "cancelled by client");
      J.State = JobState::Fulfilled;
      ++Stats.Fulfilled;
      continue;
    }
    auto SIt = Sessions.find(J.SupSession);
    if (SIt == Sessions.end())
      return false;
    JsonLine Resp;
    if (!Rpc(submitLineFor(J, SIt->second.ShardId), Resp)) {
      // A deterministic rejection (not a dead shard) would recur on
      // every replay; fail the job rather than loop forever.
      if (!Sh.Up || !Sh.Ep || !Sh.Ep->alive())
        return false;
      synthesizeResult(J, "failed", "shard rejected requeued job");
      J.State = JobState::Failed;
      ++Stats.Failed;
      continue;
    }
    auto NewJob = Resp.getUInt("job");
    if (!NewJob)
      return false;
    J.ShardJob = *NewJob;
    Sh.JobsByShardId[*NewJob] = J.SupId;
    ++J.Requeues;
    ++Stats.Requeued;
    ++DrainRequeues;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Work stealing
//===----------------------------------------------------------------------===//

bool ShardRouter::stealSession(uint64_t SessId, unsigned Victim,
                               unsigned Thief) {
  SessionRec &S = Sessions[SessId];
  std::string Err;
  if (!ensureUp(Thief, Err))
    return false;
  // No retries inside a steal: a thief restart mid-move would renumber
  // the half-built shard-local ids. Any hiccup aborts; the victim keeps
  // the session and ordinary drain handles it.
  auto Rpc = [&](const std::string &L, JsonLine &P) -> bool {
    std::string Resp, PErr;
    if (rpcOnce(Thief, L, Resp) != RpcStatus::Ok) {
      markDown(Thief);
      return false;
    }
    return JsonLine::parse(Resp, P, PErr) && P.getBool("ok").value_or(false);
  };

  JsonLine OpenResp;
  if (!Rpc(S.OpenLine, OpenResp))
    return false;
  auto NewSess = OpenResp.getUInt("session");
  if (!NewSess)
    return false;

  // Re-submit the session's pending jobs on the thief, in supervisor-id
  // order, collecting the new shard-local ids before committing anything.
  std::vector<std::pair<uint64_t, uint64_t>> Moved; // sup id -> thief job
  bool Failed = false;
  for (auto &[Id, J] : Jobs) {
    if (J.SupSession != SessId || J.State != JobState::Pending ||
        J.CancelRequested)
      continue;
    JsonLine SubResp;
    if (!Rpc(submitLineFor(J, *NewSess), SubResp)) {
      Failed = true;
      break;
    }
    auto NewJob = SubResp.getUInt("job");
    if (!NewJob) {
      Failed = true;
      break;
    }
    Moved.push_back({Id, *NewJob});
  }
  if (Failed) {
    // Roll back: closing the half-built thief session cancels whatever
    // was already submitted there; the victim was never touched.
    JsonObject C;
    C.field("op", "close-session");
    C.field("session", *NewSess);
    JsonLine Dummy;
    Rpc(C.str(), Dummy);
    return false;
  }

  // Commit: re-point the records and drop the victim's job mappings so
  // its (now duplicate) result lines are ignored at collection. Then
  // cancel the victim's copy best-effort - correctness does not depend
  // on it (unmapped results are dropped), it only saves wasted compute.
  for (auto &[SupId, ThiefJob] : Moved) {
    JobRec &J = Jobs[SupId];
    Shards[Victim].JobsByShardId.erase(J.ShardJob);
    J.Shard = Thief;
    J.ShardJob = ThiefJob;
    Shards[Thief].JobsByShardId[ThiefJob] = SupId;
    ++Stats.StolenJobs;
  }
  if (Shards[Victim].Up && Shards[Victim].Ep) {
    JsonObject C;
    C.field("op", "close-session");
    C.field("session", S.ShardId);
    std::string Resp;
    if (rpcOnce(Victim, C.str(), Resp) != RpcStatus::Ok)
      markDown(Victim);
  }
  S.Shard = Thief;
  S.ShardId = *NewSess;
  ++Stats.Steals;
  return true;
}

void ShardRouter::maybeStealWork() {
  if (Opts.StealThreshold == 0 || Opts.NumShards < 2)
    return;
  // Bounded by the session count: every successful steal moves at least
  // one pending job off the victim, and a failed steal ends the loop.
  for (size_t Guard = 0; Guard <= Sessions.size(); ++Guard) {
    std::vector<uint64_t> Pending(Opts.NumShards, 0);
    for (const auto &[Id, J] : Jobs)
      if (J.State == JobState::Pending && !J.CancelRequested)
        ++Pending[J.Shard];
    unsigned Victim = 0, Thief = 0;
    for (unsigned I = 1; I < Opts.NumShards; ++I) {
      if (Pending[I] > Pending[Victim])
        Victim = I;
      if (Pending[I] < Pending[Thief])
        Thief = I;
    }
    if (Pending[Victim] < Opts.StealThreshold || Pending[Thief] != 0)
      return;
    // Deterministic pick: the victim's lowest-id open session that has
    // at least one pending job (sessions whose last jobs were cancelled
    // contribute nothing and are skipped).
    uint64_t SessId = 0;
    for (const auto &[Id, S] : Sessions) {
      if (S.Shard != Victim || S.Closed)
        continue;
      bool HasPending = false;
      for (const auto &[JId, J] : Jobs)
        if (J.SupSession == Id && J.State == JobState::Pending &&
            !J.CancelRequested) {
          HasPending = true;
          break;
        }
      if (HasPending) {
        SessId = Id;
        break;
      }
    }
    if (SessId == 0 || !stealSession(SessId, Victim, Thief))
      return;
  }
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

void ShardRouter::handleDrain(std::vector<std::string> &Out) {
  // Rebalance before fanning the drains out: a steal is only useful while
  // the jobs are still queued.
  maybeStealWork();

  auto PendingShards = [this] {
    std::set<unsigned> S;
    for (const auto &[Id, J] : Jobs)
      if (J.State == JobState::Pending)
        S.insert(J.Shard);
    return S;
  };

  std::string Err;
  for (unsigned Round = 0; Round <= Opts.MaxRequestRetries; ++Round) {
    std::set<unsigned> Need = PendingShards();
    if (Need.empty())
      break;

    // Phase 1: issue drain on every shard with outstanding jobs before
    // collecting from any, so worker batches run concurrently - this is
    // where N shards buy N-way throughput (bench_shard_scaling).
    std::vector<unsigned> Sent;
    for (unsigned I : Need) {
      if (!ensureUp(I, Err))
        continue; // replay failed outright; next round retries
      if (!Shards[I].Ep->sendLine("{\"op\":\"drain\"}")) {
        markDown(I);
        continue;
      }
      Sent.push_back(I);
    }

    // Phase 2: collect result lines until each shard's drain summary. A
    // shard dying mid-collection leaves its unfulfilled jobs Pending; the
    // next round restarts it (requeueing them) and drains again.
    for (unsigned I : Sent) {
      Shard &Sh = Shards[I];
      // A healthy worker sends one result line per pending job plus the
      // summary. Anything past that budget (plus slack for interleaved
      // noise) is a worker streaming garbage - each line landing inside
      // RequestTimeoutMs, so without this bound it would pin the
      // supervisor forever. Treat it like a hung shard.
      uint64_t PendingHere = 0;
      for (const auto &[Id, J] : Jobs)
        if (J.State == JobState::Pending && J.Shard == I)
          ++PendingHere;
      uint64_t LineBudget = 2 * PendingHere + 64;
      for (;;) {
        if (LineBudget-- == 0) {
          Sh.Ep->kill();
          markDown(I);
          break;
        }
        std::string Resp;
        ShardEndpoint::RecvStatus RS =
            Sh.Ep->recvLine(Resp, Opts.RequestTimeoutMs);
        if (RS != ShardEndpoint::RecvStatus::Line) {
          if (RS == ShardEndpoint::RecvStatus::Timeout)
            Sh.Ep->kill();
          markDown(I);
          break;
        }
        JsonLine R;
        std::string PErr;
        if (!JsonLine::parse(Resp, R, PErr))
          continue;
        auto ROp = R.getString("op");
        if (ROp && *ROp == "drain")
          break; // the shard's summary: its batch is fully delivered
        if (!ROp || *ROp != "result")
          continue;
        auto ShardJob = R.getUInt("job");
        if (!ShardJob)
          continue;
        auto MIt = Sh.JobsByShardId.find(*ShardJob);
        if (MIt == Sh.JobsByShardId.end())
          continue;
        JobRec &J = Jobs[MIt->second];
        if (J.State != JobState::Pending)
          continue;
        J.ResultLine = rewriteResultLine(Resp, J);
        J.State = JobState::Fulfilled;
        ++Stats.Fulfilled;
      }
    }
  }

  // Retry budget exhausted: whatever is still pending fails loudly with
  // its requeue history rather than hanging the client.
  for (auto &[Id, J] : Jobs) {
    if (J.State != JobState::Pending)
      continue;
    synthesizeResult(J, "failed",
                     "shard " + std::to_string(J.Shard) +
                         " unavailable after " + std::to_string(J.Requeues) +
                         " requeue(s); job abandoned");
    J.State = JobState::Failed;
    ++Stats.Failed;
  }

  // Emit every not-yet-delivered result in supervisor job-id order - the
  // same order a single optabs-serve would use, so transcripts diff
  // cleanly against a single-process oracle.
  size_t N = 0;
  for (auto &[Id, J] : Jobs) {
    if (J.Emitted || J.State == JobState::Pending)
      continue;
    Out.push_back(J.ResultLine);
    J.Emitted = true;
    ++N;
  }
  JsonObject O = response(true);
  O.field("op", "drain");
  O.field("results", N);
  // Requeue events since the previous drain summary: restarts between
  // drains affect the jobs reported here, so they count too.
  O.field("requeued", DrainRequeues);
  Out.push_back(O.str());
  DrainRequeues = 0;
}

std::string ShardRouter::rewriteResultLine(const std::string &ShardLine,
                                           const JobRec &J) const {
  JsonLine R;
  std::string PErr;
  if (!JsonLine::parse(ShardLine, R, PErr))
    return ShardLine; // unreachable: caller already parsed it
  JsonObject O = response(true);
  O.field("op", "result");
  O.field("job", J.SupId);
  O.field("session", J.SupSession);
  std::string Status = R.getString("status").value_or("failed");
  O.field("status", Status);
  if (Status == "done") {
    O.field("verdict", R.getString("verdict").value_or(""));
    O.field("iterations", R.getUInt("iterations").value_or(0));
    if (auto Cost = R.getUInt("cost")) {
      O.field("cost", *Cost);
      O.field("param", R.getString("param").value_or(""));
    }
    if (auto Ex = R.getString("exhausted")) {
      O.field("exhausted", *Ex);
      O.field("site", R.getString("site").value_or(""));
    }
  } else {
    O.field("error", R.getString("error").value_or(""));
  }
  return O.str();
}

//===----------------------------------------------------------------------===//
// Request routing
//===----------------------------------------------------------------------===//

ShardRouterStats ShardRouter::stats() const {
  ShardRouterStats S = Stats;
  S.Pending = 0;
  for (const auto &[Id, J] : Jobs)
    if (J.State == JobState::Pending)
      ++S.Pending;
  return S;
}

void ShardRouter::killShardForTesting(unsigned Shard) {
  if (Shard < Shards.size() && Shards[Shard].Ep)
    Shards[Shard].Ep->kill();
}

uint64_t ShardRouter::nextBackoffMsForTesting(unsigned Shard) const {
  return Shard < Shards.size() ? Shards[Shard].NextBackoffMs : 0;
}

bool ShardRouter::handleLine(const std::string &Line,
                             std::vector<std::string> &Out) {
  auto Emit = [&Out](const std::string &S) { Out.push_back(S); };
  auto EmitObj = [&Out](const JsonObject &O) { Out.push_back(O.str()); };

  JsonLine Req;
  std::string Err;
  if (!JsonLine::parse(Line, Req, Err)) {
    EmitObj(JsonObject(response(false))
                .field("error", "malformed request: " + Err));
    return true;
  }
  auto Op = Req.getString("op");
  if (!Op) {
    EmitObj(JsonObject(response(false)).field("error", "missing 'op' field"));
    return true;
  }

  if (*Op == "register-program") {
    auto Name = Req.getString("name");
    auto Text = Req.getString("text");
    if (!Name || !Text) {
      Emit(errorLine(*Op, "register-program needs 'name' and 'text'"));
      return true;
    }
    // Broadcast: any shard can be asked to open sessions on any program.
    // The journal is updated only after every shard acked, so a shard
    // that dies mid-broadcast replays the pre-broadcast state and then
    // receives this registration through the per-shard retry below.
    uint32_t Checks = 0, Allocs = 0;
    for (unsigned I = 0; I < Opts.NumShards; ++I) {
      std::string Resp, RpcErr;
      if (!rpcWithRetry(I, Line, Resp, RpcErr)) {
        Emit(errorLine(*Op, "registration aborted: " + RpcErr));
        return true;
      }
      JsonLine R;
      std::string PErr;
      if (!JsonLine::parse(Resp, R, PErr) ||
          !R.getBool("ok").value_or(false)) {
        // Worker validation is deterministic over (journal, text), so the
        // first rejection is every shard's rejection: forward it as-is.
        Emit(Resp);
        return true;
      }
      if (I == 0) {
        Checks = static_cast<uint32_t>(R.getUInt("checks").value_or(0));
        Allocs = static_cast<uint32_t>(R.getUInt("allocs").value_or(0));
      }
    }
    auto It = std::find_if(Journal.begin(), Journal.end(),
                           [&](const Registration &R) {
                             return R.Name == *Name;
                           });
    if (It != Journal.end())
      Journal.erase(It); // re-registration: the latest text moves to the end
    Registration R;
    R.Name = *Name;
    R.Text = *Text;
    R.Checks = Checks;
    R.Allocs = Allocs;
    Journal.push_back(std::move(R));
    ++RegEpoch;
    ++Stats.Registered;
    // The epoch is supervisor-minted: restarted workers have divergent
    // internal epochs, and the client must see one consistent stream.
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("name", *Name);
    O.field("epoch", RegEpoch);
    O.field("checks", Checks);
    O.field("allocs", Allocs);
    EmitObj(O);
  } else if (*Op == "open-session") {
    std::string Program = Req.getString("program").value_or("");
    std::string Client = Req.getString("client").value_or("");
    unsigned I = shardFor(Program, Client);
    std::string Resp, RpcErr;
    if (!rpcWithRetry(I, Line, Resp, RpcErr)) {
      Emit(errorLine(*Op, RpcErr));
      return true;
    }
    JsonLine R;
    std::string PErr;
    if (!JsonLine::parse(Resp, R, PErr) || !R.getBool("ok").value_or(false)) {
      Emit(Resp); // the worker's structured rejection, id-free
      return true;
    }
    auto ShardId = R.getUInt("session");
    if (!ShardId) {
      Emit(errorLine(*Op, "shard returned a malformed session id"));
      return true;
    }
    SessionRec S;
    S.SupId = NextSession++;
    S.Shard = I;
    S.ShardId = *ShardId;
    S.OpenLine = Line;
    uint64_t SupId = S.SupId;
    Sessions[SupId] = std::move(S);
    ++Stats.SessionsOpened;
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("session", SupId);
    EmitObj(O);
  } else if (*Op == "submit") {
    auto Sess = Req.getUInt("session");
    auto Check = Req.getUInt("check");
    if (!Sess || !Check) {
      Emit(errorLine(*Op, "submit needs 'session' and 'check'"));
      return true;
    }
    auto SIt = Sessions.find(*Sess);
    if (SIt == Sessions.end() || SIt->second.Closed) {
      Emit(errorLine(*Op, "unknown session " + std::to_string(*Sess)));
      return true;
    }
    JobRec J;
    J.SupSession = *Sess;
    J.Shard = SIt->second.Shard;
    J.Check = static_cast<uint32_t>(*Check);
    if (auto Site = Req.getUInt("site")) {
      J.Site = *Site;
      J.HasSite = true;
    }
    if (auto Prio = Req.getInt("priority")) {
      J.Priority = *Prio;
      J.HasPriority = true;
    }
    std::string Resp, RpcErr;
    if (!rpcWithRetry(
            J.Shard,
            [&]() { return submitLineFor(J, SIt->second.ShardId); }, Resp,
            RpcErr)) {
      Emit(errorLine(*Op, RpcErr));
      return true;
    }
    JsonLine R;
    std::string PErr;
    if (!JsonLine::parse(Resp, R, PErr) || !R.getBool("ok").value_or(false)) {
      Emit(Resp); // worker rejection (queue full, ...), id-free
      return true;
    }
    auto ShardJob = R.getUInt("job");
    if (!ShardJob) {
      Emit(errorLine(*Op, "shard returned a malformed job id"));
      return true;
    }
    J.SupId = NextJob++;
    J.ShardJob = *ShardJob;
    Shards[J.Shard].JobsByShardId[*ShardJob] = J.SupId;
    uint64_t SupId = J.SupId;
    Jobs[SupId] = std::move(J);
    ++Stats.Submitted;
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("job", SupId);
    EmitObj(O);
  } else if (*Op == "cancel" || *Op == "close-session") {
    auto Sess = Req.getUInt("session");
    auto SIt = Sess ? Sessions.find(*Sess) : Sessions.end();
    if (SIt == Sessions.end() || SIt->second.Closed) {
      Emit(errorLine(*Op, "unknown session"));
      return true;
    }
    std::string Resp, RpcErr;
    if (!rpcWithRetry(
            SIt->second.Shard,
            [&]() {
              JsonObject Fwd;
              Fwd.field("op", *Op);
              Fwd.field("session", SIt->second.ShardId);
              return Fwd.str();
            },
            Resp, RpcErr)) {
      Emit(errorLine(*Op, RpcErr));
      return true;
    }
    JsonLine R;
    std::string PErr;
    bool Ok = JsonLine::parse(Resp, R, PErr) &&
              R.getBool("ok").value_or(false);
    if (Ok) {
      // Both ops cancel the session's outstanding work on the worker;
      // remember that so a replay after a crash does not resurrect it.
      for (auto &[Id, J] : Jobs)
        if (J.SupSession == *Sess && J.State == JobState::Pending)
          J.CancelRequested = true;
      if (*Op == "close-session")
        SIt->second.Closed = true;
    }
    Emit(Resp); // id-free either way: forward verbatim
  } else if (*Op == "drain") {
    handleDrain(Out);
  } else if (*Op == "ping") {
    unsigned Alive = 0;
    for (Shard &Sh : Shards)
      if (Sh.Up && Sh.Ep && Sh.Ep->alive())
        ++Alive;
    uint64_t Pending = 0;
    for (const auto &[Id, J] : Jobs)
      if (J.State == JobState::Pending)
        ++Pending;
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("server", "optabs-shardd");
    O.field("protocol", ProtocolVersion);
    O.field("uptime_s", Uptime.seconds());
    O.field("shards", Opts.NumShards);
    O.field("alive", Alive);
    O.field("pending", Pending);
    EmitObj(O);
  } else if (*Op == "stats") {
    ShardRouterStats S = stats();
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("shards", Opts.NumShards);
    O.field("restarts", S.Restarts);
    O.field("requeued", S.Requeued);
    O.field("registered", S.Registered);
    O.field("sessions_opened", S.SessionsOpened);
    O.field("submitted", S.Submitted);
    O.field("fulfilled", S.Fulfilled);
    O.field("failed", S.Failed);
    O.field("pending", S.Pending);
    O.field("steals", S.Steals);
    O.field("stolen_jobs", S.StolenJobs);
    EmitObj(O);
  } else if (*Op == "cache") {
    auto Action = Req.getString("action");
    if (!Action) {
      Emit(errorLine(*Op,
                     "cache needs 'action' (stats|persist|load|spill|evict)"));
      return true;
    }
    // Fan out to every shard and sum the counters: with a shared
    // --cache-dir the shards form one cache deployment, so "persist"
    // snapshots all of it and "stats" reports the whole fleet.
    static const char *const SumKeys[] = {
        "entries",       "resident_bytes",     "runs_persisted",
        "verdicts_persisted", "runs_loaded",   "verdicts_loaded",
        "runs_skipped",  "verdicts_skipped",   "spilled",
        "evicted",       "spill_writes",       "spill_loads"};
    constexpr size_t NumSumKeys = sizeof(SumKeys) / sizeof(SumKeys[0]);
    uint64_t Totals[NumSumKeys] = {};
    std::string Notes;
    for (unsigned I = 0; I < Opts.NumShards; ++I) {
      std::string Resp, RpcErr;
      if (!rpcWithRetry(I, Line, Resp, RpcErr)) {
        Emit(errorLine(*Op, "shard " + std::to_string(I) + ": " + RpcErr));
        return true;
      }
      JsonLine R;
      std::string PErr;
      if (!JsonLine::parse(Resp, R, PErr) ||
          !R.getBool("ok").value_or(false)) {
        // Worker rejections are deterministic over the shared config
        // (unknown action, missing cache dir): forward the first one.
        Emit(Resp);
        return true;
      }
      for (size_t K = 0; K < NumSumKeys; ++K)
        Totals[K] += R.getUInt(SumKeys[K]).value_or(0);
      if (auto N = R.getString("notes"); N && !N->empty()) {
        if (!Notes.empty())
          Notes += ';';
        Notes += "shard" + std::to_string(I) + ": " + *N;
      }
    }
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("action", *Action);
    O.field("shards", Opts.NumShards);
    for (size_t K = 0; K < NumSumKeys; ++K)
      O.field(SumKeys[K], Totals[K]);
    O.field("notes", Notes);
    EmitObj(O);
  } else if (*Op == "explain") {
    auto JobN = Req.getUInt("job");
    if (!JobN) {
      Emit(errorLine(*Op, "explain needs 'job'"));
      return true;
    }
    auto JIt = Jobs.find(*JobN);
    if (JIt == Jobs.end()) {
      Emit(errorLine(*Op,
                     "no timeline recorded for job " + std::to_string(*JobN)));
      return true;
    }
    const JobRec &J = JIt->second;
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("job", J.SupId);
    O.field("session", J.SupSession);
    O.field("shard", J.Shard);
    const char *St = J.State == JobState::Pending
                         ? (J.CancelRequested ? "cancelled" : "pending")
                         : (J.State == JobState::Fulfilled ? "fulfilled"
                                                           : "failed");
    O.field("status", St);
    O.field("requeues", J.Requeues);
    if (J.Requeues > 0)
      O.field("note", "requeued after shard restart; verdict unaffected "
                      "(batch-composition independence)");
    EmitObj(O);
  } else if (*Op == "chaos-kill") {
    if (!Opts.AllowChaosOps) {
      Emit(errorLine(*Op, "chaos ops are disabled (start with --chaos)"));
      return true;
    }
    auto ShardN = Req.getUInt("shard");
    if (!ShardN || *ShardN >= Opts.NumShards) {
      Emit(errorLine(*Op, "chaos-kill needs a valid 'shard'"));
      return true;
    }
    killShardForTesting(static_cast<unsigned>(*ShardN));
    JsonObject O = response(true);
    O.field("op", *Op);
    O.field("shard", *ShardN);
    EmitObj(O);
  } else if (*Op == "shutdown") {
    // Best effort: ask every live worker to run its own graceful path
    // (drain, metrics, trace dumps) before we acknowledge.
    for (unsigned I = 0; I < Opts.NumShards; ++I) {
      Shard &Sh = Shards[I];
      if (!Sh.Up || !Sh.Ep || !Sh.Ep->alive())
        continue;
      std::string Resp;
      if (Sh.Ep->sendLine("{\"op\":\"shutdown\"}"))
        Sh.Ep->recvLine(Resp, Opts.RequestTimeoutMs);
      Sh.Up = false;
    }
    JsonObject O = response(true);
    O.field("op", *Op);
    EmitObj(O);
    return false;
  } else {
    Emit(errorLine(*Op, "unknown op '" + *Op + "'"));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ProcessShardHost: real optabs-serve workers over unix sockets
//===----------------------------------------------------------------------===//

/// Endpoint over a connected LineChannel; liveness and kill go through
/// the host so they stay pid-exact across respawns.
class ProcessShardEndpoint : public ShardEndpoint {
public:
  ProcessShardEndpoint(LineChannel C, ProcessShardHost &H, unsigned Shard,
                       pid_t Pid)
      : Ch(std::move(C)), H(H), Shard(Shard), Pid(Pid) {}

  bool sendLine(const std::string &Line) override {
    return Ch.writeLine(Line);
  }

  RecvStatus recvLine(std::string &Out, int TimeoutMs) override {
    for (;;) {
      switch (Ch.readLine(Out, TimeoutMs)) {
      case LineChannel::ReadStatus::Line:
        return RecvStatus::Line;
      case LineChannel::ReadStatus::Timeout:
        return RecvStatus::Timeout;
      case LineChannel::ReadStatus::Interrupted:
        continue; // a signal aimed at the supervisor, not this worker
      default:
        return RecvStatus::Closed; // EOF, IO error, oversized response
      }
    }
  }

  bool alive() override { return H.workerAlive(Shard, Pid); }
  void kill() override { H.killAndReap(Shard, Pid); }

private:
  LineChannel Ch;
  ProcessShardHost &H;
  unsigned Shard;
  pid_t Pid;
};

ProcessShardHost::ProcessShardHost(Options Opt) : O(std::move(Opt)) {}

ProcessShardHost::~ProcessShardHost() {
  std::lock_guard<std::mutex> L(M);
  for (auto &[Shard, W] : Workers) {
    W.kill();
    W.reap(5000);
  }
  for (auto &[Shard, Path] : SocketPaths)
    ::unlink(Path.c_str());
}

std::unique_ptr<ShardEndpoint> ProcessShardHost::spawn(unsigned Shard,
                                                       std::string &Err) {
  std::string SockPath;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Workers.find(Shard);
    if (It != Workers.end()) {
      It->second.kill();
      It->second.reap(5000);
      Workers.erase(It);
    }
    // The previous incarnation was SIGKILLed, so its socket file is an
    // orphan nothing will ever unlink but us.
    auto PIt = SocketPaths.find(Shard);
    if (PIt != SocketPaths.end()) {
      ::unlink(PIt->second.c_str());
      SocketPaths.erase(PIt);
    }
    // A fresh socket path per incarnation: never connect to a socket a
    // dying previous worker might still own.
    SockPath = O.SocketDir + "/optabs-shard-" +
               std::to_string(static_cast<long>(::getpid())) + "-" +
               std::to_string(Shard) + "-" + std::to_string(++Incarnation) +
               ".sock";
  }

  std::vector<std::string> Argv;
  Argv.push_back(O.ServeBinary);
  Argv.push_back("--listen=unix:" + SockPath);
  for (const std::string &A : O.WorkerArgs)
    Argv.push_back(A);

  support::ChildProcess C = support::ChildProcess::spawn(Argv, Err);
  if (!C.valid())
    return nullptr;
  pid_t Pid = C.pid();

  ListenSpec Spec;
  std::string SpecErr;
  if (!ListenSpec::parse("unix:" + SockPath, Spec, SpecErr)) {
    Err = SpecErr;
    C.kill();
    C.reap(5000);
    ::unlink(SockPath.c_str());
    return nullptr;
  }
  std::string ConnErr;
  LineChannel Ch =
      connectChannel(Spec, O.ConnectTimeoutMs, ConnErr, O.MaxLineBytes);
  if (!Ch.valid()) {
    Err = "worker for shard " + std::to_string(Shard) +
          " never started accepting: " + ConnErr;
    C.kill();
    C.reap(5000);
    ::unlink(SockPath.c_str());
    return nullptr;
  }

  {
    std::lock_guard<std::mutex> L(M);
    Workers[Shard] = std::move(C);
    SocketPaths[Shard] = SockPath;
  }
  return std::make_unique<ProcessShardEndpoint>(std::move(Ch), *this, Shard,
                                                Pid);
}

pid_t ProcessShardHost::workerPid(unsigned Shard) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Workers.find(Shard);
  return It == Workers.end() ? -1 : It->second.pid();
}

void ProcessShardHost::killWorker(unsigned Shard) {
  std::lock_guard<std::mutex> L(M);
  auto It = Workers.find(Shard);
  if (It != Workers.end())
    It->second.kill();
}

bool ProcessShardHost::workerAlive(unsigned Shard, pid_t Pid) {
  std::lock_guard<std::mutex> L(M);
  auto It = Workers.find(Shard);
  if (It == Workers.end() || It->second.pid() != Pid)
    return false;
  return It->second.alive();
}

void ProcessShardHost::killAndReap(unsigned Shard, pid_t Pid) {
  std::lock_guard<std::mutex> L(M);
  auto It = Workers.find(Shard);
  if (It == Workers.end() || It->second.pid() != Pid)
    return;
  It->second.kill();
  It->second.reap(5000);
  auto PIt = SocketPaths.find(Shard);
  if (PIt != SocketPaths.end()) {
    ::unlink(PIt->second.c_str());
    SocketPaths.erase(PIt);
  }
}

} // namespace service
} // namespace optabs
