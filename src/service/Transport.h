//===- Transport.h - Socket/stdio line transport for the protocol -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer under service/Protocol.h: newline-delimited JSON objects
/// over stdio, Unix-domain sockets, or loopback TCP. `optabs-serve
/// --listen=unix:PATH|tcp:PORT` serves the same versioned JSONL protocol
/// it speaks on stdin/stdout, and the shard supervisor
/// (service/ShardRouter.h, tools/optabs_shardd.cpp) connects to its
/// workers through the client half of this file.
///
/// Three pieces:
///
///  * ListenSpec - parses "stdio", "unix:PATH", "tcp:PORT" (loopback
///    only; this service has no auth layer, so it never listens on a
///    routable address).
///  * LineChannel - buffered line IO over a read fd + write fd with
///    poll()-based read timeouts, a bounded maximum line length (an
///    over-long line is consumed through its newline and reported as
///    Overflow so the server can answer with a structured error instead
///    of dying or desynchronizing), and EINTR surfaced as Interrupted so
///    signal handlers can request a graceful shutdown mid-read.
///  * Listener / connectChannel - the accept and connect halves.
///
/// Everything is blocking-with-timeout and single-threaded by design: one
/// channel is owned by one thread, matching the one-connection-at-a-time
/// serve loop and the supervisor's one-channel-per-shard layout
/// (DESIGN.md §13).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_TRANSPORT_H
#define OPTABS_SERVICE_TRANSPORT_H

#include <cstdint>
#include <string>

namespace optabs {
namespace service {

/// Default cap on one protocol line (requests carry whole program texts,
/// so this is generous; the flag --max-line-bytes overrides it).
inline constexpr size_t DefaultMaxLineBytes = 8u << 20;

/// Where a server listens or a client connects.
struct ListenSpec {
  enum class Kind : uint8_t { Stdio, Unix, Tcp };
  Kind K = Kind::Stdio;
  std::string Path; ///< Unix socket path
  uint16_t Port = 0; ///< TCP port on 127.0.0.1

  /// Parses "stdio" | "unix:PATH" | "tcp:PORT". Returns false with a
  /// structured \p Err on anything else (empty path, port out of range).
  static bool parse(const std::string &Text, ListenSpec &Out,
                    std::string &Err);

  /// The canonical string form ("unix:/run/x.sock", "tcp:7077", "stdio").
  std::string str() const;
};

/// Buffered newline-delimited IO over a pair of file descriptors (equal
/// for sockets, 0/1 for stdio). Does not own stdio fds; owns socket fds.
class LineChannel {
public:
  enum class ReadStatus : uint8_t {
    Line,        ///< a complete line was read (without its '\n')
    Eof,         ///< orderly close with no buffered partial line
    Timeout,     ///< the per-call timeout elapsed first
    Overflow,    ///< line exceeded the cap; it was consumed and discarded
    Interrupted, ///< EINTR with no data - caller checks its shutdown flag
    Error,       ///< read error (ECONNRESET and friends)
  };

  LineChannel() = default;
  /// \p OwnsFds: close on destruction (sockets yes, stdio no).
  LineChannel(int ReadFd, int WriteFd, bool OwnsFds,
              size_t MaxLineBytes = DefaultMaxLineBytes);
  ~LineChannel();
  LineChannel(LineChannel &&O) noexcept;
  LineChannel &operator=(LineChannel &&O) noexcept;
  LineChannel(const LineChannel &) = delete;
  LineChannel &operator=(const LineChannel &) = delete;

  bool valid() const { return RFd >= 0; }

  /// Reads the next line into \p Out (newline stripped).
  /// \p TimeoutMs < 0 blocks forever. On Overflow the offending line has
  /// been consumed through its terminating newline (or EOF), so the next
  /// call starts clean. On Interrupted no input was lost.
  ReadStatus readLine(std::string &Out, int TimeoutMs = -1);

  /// Writes \p Line plus '\n', retrying partial writes and EINTR.
  /// Returns false on a write error (e.g. the peer died; callers must
  /// ignore SIGPIPE - both tools do).
  bool writeLine(const std::string &Line);

  /// Human-readable name for error messages.
  static const char *statusName(ReadStatus S);

  size_t maxLineBytes() const { return MaxLine; }
  void close();

private:
  int RFd = -1;
  int WFd = -1;
  bool Owns = false;
  size_t MaxLine = DefaultMaxLineBytes;
  std::string Buf;     ///< bytes read but not yet returned
  size_t Scanned = 0;  ///< prefix of Buf already searched for '\n'
  bool SawEof = false;
  bool Discarding = false; ///< inside an over-long line, eating to '\n'
};

/// A bound, listening server socket for ListenSpec::Kind::Unix/Tcp.
class Listener {
public:
  Listener() = default;
  ~Listener();
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens. For unix specs a stale socket file is unlinked
  /// first; the file is unlinked again on destruction.
  static bool open(const ListenSpec &Spec, Listener &Out, std::string &Err);

  bool valid() const { return Fd >= 0; }

  /// Accepts one connection. Returns an invalid channel on timeout
  /// (\p TimedOut set), on EINTR (\p Interrupted set), or on error.
  LineChannel acceptChannel(int TimeoutMs, bool &TimedOut, bool &Interrupted,
                            size_t MaxLineBytes = DefaultMaxLineBytes);

  /// The spec this listener is bound to; for tcp:0 the kernel-assigned
  /// port is filled in, so tests can listen on an ephemeral port.
  const ListenSpec &spec() const { return Spec; }

  void close();

private:
  int Fd = -1;
  ListenSpec Spec;
};

/// Connects to a unix/tcp spec, retrying ECONNREFUSED/ENOENT until
/// \p TimeoutMs elapses (workers bind their socket asynchronously after
/// being spawned, so the supervisor polls). Invalid channel + \p Err on
/// failure.
LineChannel connectChannel(const ListenSpec &Spec, int TimeoutMs,
                           std::string &Err,
                           size_t MaxLineBytes = DefaultMaxLineBytes);

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_TRANSPORT_H
