//===- Protocol.h - Versioned JSONL service protocol -----------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response protocol spoken by `optabs-serve` over
/// stdin/stdout: one JSON object per line in each direction. Both
/// directions carry `"v": 1` - the protocol schema version, versioned
/// independently of the event-trace schema (tracer/EventTrace.h) but with
/// the same compatibility rule: adding fields is compatible, renaming or
/// re-typing one bumps the version. The golden-transcript test
/// (tools/testdata/serve_session.jsonl against its .golden) pins the exact
/// serialized form of every response kind.
///
/// Requests (fields beyond "op" per operation; unknown ops and malformed
/// lines produce an `"ok": false` error response and the server keeps
/// reading):
///
///   {"op":"register-program","name":N,"text":IR}
///   {"op":"open-session","program":N,"client":"escape"|"typestate"
///        [,"property":SPEC] [,"k":K] [,"strategy":S] [,"max-iters":N]
///        [,"step-budget":N] [,"max-pending":N] [,"max-jobs":N]}
///   {"op":"submit","session":S,"check":C [,"site":H] [,"priority":P]}
///   {"op":"cancel","session":S}
///   {"op":"close-session","session":S}
///   {"op":"drain"}            -> one result line per job, in job-id order
///   {"op":"stats"}
///   {"op":"trace"}            -> drains the flight recorder: one
///        "trace-event" line per buffered event, then a summary line with
///        the drop count (error when the server runs without tracing)
///   {"op":"explain","job":J}  -> one job's recorded timeline: latency
///        decomposition, batch id/peers, per-phase seconds, cache and
///        replay attribution
///   {"op":"ping"}             -> liveness probe: "server" ("optabs-serve"
///        or "optabs-shardd"), "protocol", "uptime_s", and the pending job
///        count; the shard supervisor also answers it itself and uses it
///        as the worker health check after every (re)spawn
///   {"op":"cache","action":A [,"program":N]} -> unified cache admin:
///        A is "stats" (resident entries/bytes and the persistence
///        counters), "persist" (snapshot one program - or all, when
///        "program" is absent - to the configured cache dir), "load"
///        (rehydrate snapshots; stale or corrupt entries are skipped
///        with a structured note, never served), "spill" (demote every
///        unpinned forward run to the spill tier on disk), or "evict"
///        (drop unpinned forward runs without writing anything).
///        "persist"/"load" require --cache-dir and --incremental=1;
///        the response carries the per-action counters plus a "notes"
///        field joining every skip/conflict reason with ';'. The shard
///        supervisor fans the op out to every worker and sums the
///        counters. Responses are deterministic (no wall-clock fields),
///        pinned by tools/testdata/serve_cache.jsonl and its .golden.
///   {"op":"shutdown"}
///
/// Responses always carry "v", "ok", and (echoed) "op". Job results (the
/// lines emitted by "drain") additionally carry "job", "session",
/// "status", and - for status "done" - "verdict", "iterations", "cost",
/// "param". Outside "trace"/"explain"/"ping", responses contain no
/// wall-clock or other nondeterministic fields, so a scripted session's
/// transcript is byte-stable; that is enforced in CI by diffing a live
/// server run against the golden file. The exceptions confine
/// nondeterminism to their timestamp/seconds fields ("*_ns", "*_s",
/// "seconds") - everything else in them is deterministic, and the CI
/// transcripts zero exactly those fields before the diff
/// (RunServeTranscript.cmake SCRUB).
///
/// The parser below handles exactly the flat JSON objects the protocol
/// uses: string values (with escapes), integers, doubles, and booleans -
/// no nesting, no arrays. Lines that need more than that are not valid
/// protocol lines.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_SERVICE_PROTOCOL_H
#define OPTABS_SERVICE_PROTOCOL_H

#include "tracer/EventTrace.h" // JsonObject: the response builder

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>

namespace optabs {
namespace service {

/// Schema version stamped as `"v":1` on every request and response line.
inline constexpr int ProtocolVersion = 1;

/// One parsed flat JSON object: every value kept as a string plus a tag.
/// Accessors coerce on demand and report absence/mismatch via optional.
class JsonLine {
public:
  enum class Kind : uint8_t { String, Number, Bool };

  /// Parses one line. Returns false (with \p Err set) on anything that is
  /// not a single flat JSON object.
  static bool parse(const std::string &Line, JsonLine &Out,
                    std::string &Err) {
    Out.Fields.clear();
    size_t I = 0;
    auto Skip = [&] {
      while (I < Line.size() &&
             (Line[I] == ' ' || Line[I] == '\t' || Line[I] == '\r'))
        ++I;
    };
    // Escape failures set EscErr with the exact defect; callers prefer it
    // over their generic "unterminated string"/"expected a key" messages
    // (a bad escape used to be reported as an unterminated string, which
    // sent people hunting for a missing quote that was never the problem).
    std::string EscErr;
    auto ParseString = [&](std::string &S) -> bool {
      if (I >= Line.size() || Line[I] != '"')
        return false;
      ++I;
      S.clear();
      while (I < Line.size() && Line[I] != '"') {
        char C = Line[I];
        if (C == '\\') {
          if (I + 1 >= Line.size()) {
            EscErr = "truncated escape at end of line";
            return false;
          }
          char E = Line[++I];
          switch (E) {
          case '"':
            S += '"';
            break;
          case '\\':
            S += '\\';
            break;
          case '/':
            S += '/';
            break;
          case 'b':
            S += '\b';
            break;
          case 'f':
            S += '\f';
            break;
          case 'n':
            S += '\n';
            break;
          case 'r':
            S += '\r';
            break;
          case 't':
            S += '\t';
            break;
          case 'u': {
            if (I + 4 >= Line.size()) {
              EscErr = "truncated \\u escape (needs 4 hex digits)";
              return false;
            }
            unsigned V = 0;
            for (int K = 0; K < 4; ++K) {
              char H = Line[++I];
              V <<= 4;
              if (H >= '0' && H <= '9')
                V |= static_cast<unsigned>(H - '0');
              else if (H >= 'a' && H <= 'f')
                V |= static_cast<unsigned>(H - 'a' + 10);
              else if (H >= 'A' && H <= 'F')
                V |= static_cast<unsigned>(H - 'A' + 10);
              else {
                EscErr = std::string("non-hex digit '") + H +
                         "' in \\u escape";
                return false;
              }
            }
            // The protocol only escapes control characters; anything above
            // ASCII would have been sent as UTF-8 directly.
            if (V > 0x7f) {
              char Buf[8];
              std::snprintf(Buf, sizeof(Buf), "%04x", V);
              EscErr = std::string("\\u") + Buf +
                       " is above 0x7f (send non-ASCII as raw UTF-8)";
              return false;
            }
            S += static_cast<char>(V);
            break;
          }
          default:
            EscErr = std::string("invalid escape '\\") + E + "'";
            return false;
          }
        } else {
          S += C;
        }
        ++I;
      }
      if (I >= Line.size())
        return false;
      ++I; // closing quote
      return true;
    };

    Skip();
    if (I >= Line.size() || Line[I] != '{') {
      Err = "expected a JSON object";
      return false;
    }
    ++I;
    Skip();
    if (I < Line.size() && Line[I] == '}') {
      ++I;
    } else {
      for (;;) {
        Skip();
        std::string Key;
        if (!ParseString(Key)) {
          Err = EscErr.empty() ? std::string("expected a string key")
                               : EscErr + " in object key";
          return false;
        }
        Skip();
        if (I >= Line.size() || Line[I] != ':') {
          Err = "expected ':' after key '" + Key + "'";
          return false;
        }
        ++I;
        Skip();
        Value V;
        if (I < Line.size() && Line[I] == '"') {
          V.K = Kind::String;
          if (!ParseString(V.S)) {
            Err = EscErr.empty()
                      ? "unterminated string value for key '" + Key + "'"
                      : EscErr + " in string value for key '" + Key + "'";
            return false;
          }
        } else if (Line.compare(I, 4, "true") == 0) {
          V.K = Kind::Bool;
          V.S = "true";
          I += 4;
        } else if (Line.compare(I, 5, "false") == 0) {
          V.K = Kind::Bool;
          V.S = "false";
          I += 5;
        } else {
          size_t Start = I;
          if (I < Line.size() && (Line[I] == '-' || Line[I] == '+'))
            ++I;
          while (I < Line.size() &&
                 ((Line[I] >= '0' && Line[I] <= '9') || Line[I] == '.' ||
                  Line[I] == 'e' || Line[I] == 'E' || Line[I] == '-' ||
                  Line[I] == '+'))
            ++I;
          if (I == Start) {
            Err = "expected a value for key '" + Key + "'";
            return false;
          }
          V.K = Kind::Number;
          V.S = Line.substr(Start, I - Start);
        }
        Out.Fields[Key] = std::move(V);
        Skip();
        if (I < Line.size() && Line[I] == ',') {
          ++I;
          continue;
        }
        if (I < Line.size() && Line[I] == '}') {
          ++I;
          break;
        }
        Err = "expected ',' or '}'";
        return false;
      }
    }
    Skip();
    if (I != Line.size()) {
      Err = "trailing characters after object";
      return false;
    }
    return true;
  }

  bool has(const std::string &Key) const { return Fields.count(Key) > 0; }

  std::optional<std::string> getString(const std::string &Key) const {
    auto It = Fields.find(Key);
    if (It == Fields.end() || It->second.K != Kind::String)
      return std::nullopt;
    return It->second.S;
  }

  std::optional<uint64_t> getUInt(const std::string &Key) const {
    auto It = Fields.find(Key);
    if (It == Fields.end() || It->second.K != Kind::Number)
      return std::nullopt;
    const std::string &S = It->second.S;
    if (S.empty() || S[0] == '-')
      return std::nullopt;
    uint64_t V = 0;
    for (char C : S) {
      if (C < '0' || C > '9')
        return std::nullopt; // doubles are not valid where uints go
      V = V * 10 + static_cast<uint64_t>(C - '0');
    }
    return V;
  }

  std::optional<int64_t> getInt(const std::string &Key) const {
    auto It = Fields.find(Key);
    if (It == Fields.end() || It->second.K != Kind::Number)
      return std::nullopt;
    const std::string &S = It->second.S;
    bool Neg = !S.empty() && S[0] == '-';
    uint64_t V = 0;
    for (size_t I = Neg ? 1 : 0; I < S.size(); ++I) {
      char C = S[I];
      if (C < '0' || C > '9')
        return std::nullopt;
      V = V * 10 + static_cast<uint64_t>(C - '0');
    }
    if (S.size() == (Neg ? 1u : 0u))
      return std::nullopt;
    return Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
  }

  std::optional<bool> getBool(const std::string &Key) const {
    auto It = Fields.find(Key);
    if (It == Fields.end() || It->second.K != Kind::Bool)
      return std::nullopt;
    return It->second.S == "true";
  }

private:
  struct Value {
    Kind K = Kind::String;
    std::string S;
  };
  std::map<std::string, Value> Fields;
};

/// Starts a response object with the common "v" and "ok" fields; the
/// caller adds "op" and the payload. tracer::JsonObject handles escaping
/// and field ordering (insertion order, so transcripts are stable).
inline tracer::JsonObject response(bool Ok) {
  tracer::JsonObject O;
  O.field("v", ProtocolVersion);
  O.field("ok", Ok);
  return O;
}

/// A complete error-response line.
inline std::string errorLine(const std::string &Op, const std::string &Msg) {
  tracer::JsonObject O = response(false);
  if (!Op.empty())
    O.field("op", Op);
  O.field("error", Msg);
  return O.str();
}

} // namespace service
} // namespace optabs

#endif // OPTABS_SERVICE_PROTOCOL_H
