//===- Aggregates.h - Statistics the paper's tables report -----*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small aggregation helpers mapping per-query outcomes (reporting::
/// ClientResults) to the statistics of Tables 2-4 and Figures 12/14.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_REPORTING_AGGREGATES_H
#define OPTABS_REPORTING_AGGREGATES_H

#include "reporting/Harness.h"
#include "support/Stats.h"

#include <map>

namespace optabs {
namespace reporting {

/// Min/max/avg of CEGAR iterations over queries with verdict \p V
/// (Table 2's iteration columns).
inline MinMaxAvg iterationStats(const ClientResults &R, tracer::Verdict V) {
  MinMaxAvg S;
  for (const QueryStat &Q : R.Queries)
    if (Q.V == V)
      S.add(Q.Iterations);
  return S;
}

/// Min/max/avg of per-query resolution time over queries with verdict \p V
/// (Table 2's running-time columns).
inline MinMaxAvg timeStats(const ClientResults &R, tracer::Verdict V) {
  MinMaxAvg S;
  for (const QueryStat &Q : R.Queries)
    if (Q.V == V)
      S.add(Q.Seconds);
  return S;
}

/// Min/max/avg of the cheapest-abstraction size over proven queries
/// (Table 3).
inline MinMaxAvg cheapestSizeStats(const ClientResults &R) {
  MinMaxAvg S;
  for (const QueryStat &Q : R.Queries)
    if (Q.V == tracer::Verdict::Proven)
      S.add(Q.Cost);
  return S;
}

/// Cheapest-abstraction reuse (Table 4): groups of proven queries sharing
/// an identical cheapest abstraction.
struct ReuseStats {
  unsigned NumGroups = 0;
  MinMaxAvg GroupSize;
};

inline ReuseStats reuseStats(const ClientResults &R) {
  std::map<std::string, unsigned> Groups;
  for (const QueryStat &Q : R.Queries)
    if (Q.V == tracer::Verdict::Proven)
      ++Groups[Q.ParamKey];
  ReuseStats S;
  S.NumGroups = static_cast<unsigned>(Groups.size());
  for (const auto &[Key, Size] : Groups) {
    (void)Key;
    S.GroupSize.add(Size);
  }
  return S;
}

/// Histogram of cheapest-abstraction sizes over proven queries (Figure 14).
inline Histogram cheapestSizeHistogram(const ClientResults &R) {
  Histogram H;
  for (const QueryStat &Q : R.Queries)
    if (Q.V == tracer::Verdict::Proven)
      H.add(Q.Cost);
  return H;
}

} // namespace reporting
} // namespace optabs

#endif // OPTABS_REPORTING_AGGREGATES_H
