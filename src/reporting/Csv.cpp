//===- Csv.cpp - CSV export of experiment results ------------------------------===//

#include "reporting/Csv.h"

namespace optabs {
namespace reporting {

void writeCsvHeader(std::ostream &OS) {
  OS << "benchmark,client,query,verdict,iterations,seconds,cheapest_size,"
        "cheapest_abstraction,exhausted_resource,exhausted_site\n";
}

namespace {

/// Quotes a field for CSV (the abstraction strings contain commas).
std::string quote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  return Out + "\"";
}

void writeClient(std::ostream &OS, const std::string &Bench,
                 const char *Client, const ClientResults &R) {
  for (size_t I = 0; I < R.Queries.size(); ++I) {
    const QueryStat &Q = R.Queries[I];
    OS << Bench << ',' << Client << ',' << I << ','
       << tracer::verdictName(Q.V) << ',' << Q.Iterations << ','
       << Q.Seconds << ',';
    if (Q.V == tracer::Verdict::Proven)
      OS << Q.Cost << ',' << quote(Q.ParamKey);
    else
      OS << ',';
    OS << ',' << Q.ExhaustedResource << ',' << Q.ExhaustedSite << '\n';
  }
}

} // namespace

void writeCsvRows(std::ostream &OS, const BenchRun &Run) {
  writeClient(OS, Run.Config.Name, "typestate", Run.Ts);
  writeClient(OS, Run.Config.Name, "thread-escape", Run.Esc);
}

void writeCsvSummaryHeader(std::ostream &OS) {
  OS << "benchmark,client,config,queries,proven,impossible,unresolved,"
        "seconds,forward_runs,backward_runs,cache_hits,cache_misses,"
        "cache_evictions,budget_exhausted,degradations,invariant_violations,"
        "certificates_checked,certificate_failures,plan_seconds,"
        "forward_seconds,classify_seconds,extract_seconds,backward_seconds,"
        "merge_seconds\n";
}

void writeCsvSummaryRow(std::ostream &OS, const std::string &Bench,
                        const char *Client, const std::string &Label,
                        const ClientResults &R) {
  OS << Bench << ',' << Client << ',' << Label << ',' << R.Queries.size()
     << ',' << R.count(tracer::Verdict::Proven) << ','
     << R.count(tracer::Verdict::Impossible) << ','
     << R.count(tracer::Verdict::Unresolved) << ',' << R.TotalSeconds << ','
     << R.ForwardRuns << ',' << R.BackwardRuns << ',' << R.CacheHits << ','
     << R.CacheMisses << ',' << R.CacheEvictions << ','
     << R.BudgetExhausted << ',' << R.Degradations << ','
     << R.InvariantViolations << ',' << R.CertificatesChecked << ','
     << R.CertificateFailures << ',' << R.Phases.Plan << ','
     << R.Phases.Forward << ',' << R.Phases.Classify << ','
     << R.Phases.Extract << ',' << R.Phases.Backward << ','
     << R.Phases.Merge << '\n';
}

} // namespace reporting
} // namespace optabs
