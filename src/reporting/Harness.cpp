//===- Harness.cpp - Experiment harness shared by the benches -----------------===//

#include "reporting/Harness.h"

#include "escape/Escape.h"
#include "pointer/PointsTo.h"
#include "support/Budget.h"
#include "support/Timer.h"
#include "tracer/Certificates.h"
#include "typestate/Typestate.h"

#include <cstdlib>
#include <map>

namespace optabs {
namespace reporting {

using namespace ir;

namespace {

QueryStat statOf(const tracer::QueryOutcome &O) {
  QueryStat S;
  S.V = O.V;
  S.Iterations = O.Iterations;
  S.Seconds = O.Seconds;
  S.Cost = O.CheapestCost;
  S.ParamKey = O.CheapestParam;
  if (O.Exhaustion) {
    S.ExhaustedResource = support::resourceName(O.Exhaustion->Res);
    S.ExhaustedSite = O.Exhaustion->Site;
  }
  return S;
}

/// Folds one driver run's audit evidence (invariant records, certificate
/// checks) into the client results.
template <typename Analysis>
void auditRun(const ir::Program &P, const Analysis &A,
              const HarnessOptions &Options,
              const tracer::QueryDriver<Analysis> &Driver,
              const std::vector<tracer::QueryOutcome> &Outcomes,
              const std::string &Label, ClientResults &Out) {
  const auto &Violations = Driver.stats().Violations;
  Out.InvariantViolations += Violations.size();
  for (const auto &V : Violations)
    Out.AuditNotes.push_back(Label + ": invariant [" + V.Check + "] in " +
                             V.Where + ": " + V.Message);
  if (!Options.Audit)
    return;
  tracer::CertificateOptions CertOpts;
  // GreedyGrow never promises minimal abstractions, so a cost mismatch
  // against the (empty) viable CNF would be a false alarm.
  CertOpts.CheckMinimality =
      Options.Tracer.Strategy != tracer::SearchStrategy::GreedyGrow;
  tracer::CertificateChecker<Analysis> Checker(P, A, CertOpts);
  tracer::CertificateReport Report =
      Checker.check(Outcomes, Driver.finalViableSets());
  Out.CertificatesChecked += Report.ProvenChecked + Report.ImpossibleChecked +
                             Report.MinimalityChecked +
                             Report.EliminatedSampled;
  Out.CertificateFailures += static_cast<unsigned>(Report.Issues.size());
  for (const tracer::CertificateIssue &Issue : Report.Issues)
    Out.AuditNotes.push_back(Label + ": certificate [" + Issue.Kind +
                             "] query " + std::to_string(Issue.Query) + ": " +
                             Issue.Detail);
}

void runEscape(const synth::Benchmark &B, const HarnessOptions &Options,
               ClientResults &Out) {
  Timer Total;
  escape::EscapeAnalysis A(B.P);
  tracer::TracerOptions Opts = Options.Tracer;
  if (!Options.EventTracePath.empty()) {
    Opts.EventTracePath = Options.EventTracePath;
    Opts.EventTraceLabel = "escape";
  }
  Opts.MetricsPath = Options.MetricsPath;
  Opts.ProfilePath = Options.ChromeTracePath;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Opts);
  std::vector<tracer::QueryOutcome> Outcomes = Driver.run(B.EscChecks);
  for (const tracer::QueryOutcome &O : Outcomes)
    Out.Queries.push_back(statOf(O));
  Out.ForwardRuns += Driver.stats().ForwardRuns;
  Out.BackwardRuns += Driver.stats().BackwardRuns;
  Out.CacheHits += Driver.stats().CacheHits;
  Out.CacheMisses += Driver.stats().CacheMisses;
  Out.CacheEvictions += Driver.stats().CacheEvictions;
  Out.Phases += Driver.stats().Phases;
  Out.BudgetExhausted += Driver.stats().BudgetExhausted;
  Out.Degradations += Driver.stats().Degradations;
  auditRun(B.P, A, Options, Driver, Outcomes, "escape", Out);
  Out.TotalSeconds = Total.seconds();
}

void runTypestate(const synth::Benchmark &B, const HarnessOptions &Options,
                  ClientResults &Out) {
  Timer Total;
  pointer::PointsToResult Pt = pointer::runPointsTo(B.P);
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();

  // A TRACER query is a (check, site) pair for every application site the
  // receiver may point to (§6). Queries of one site share an analysis
  // instance and a driver run.
  std::map<uint32_t, std::vector<CheckId>> BySite;
  for (CheckId Check : B.TsChecks) {
    VarId V = B.P.checkSite(Check).Var;
    Pt.pointsTo(V).forEach(
        [&](size_t H) { BySite[static_cast<uint32_t>(H)].push_back(Check); });
  }

  double Budget = Options.Tracer.TimeBudgetSeconds;
  for (auto &[SiteIdx, Checks] : BySite) {
    double Remaining = Budget - Total.seconds();
    if (Remaining <= 0) {
      // The shared wall-clock budget is spent. Record a clean exhaustion
      // verdict per query instead of constructing a driver doomed to burn
      // setup time resolving nothing.
      for (size_t I = 0; I < Checks.size(); ++I) {
        QueryStat S;
        S.V = tracer::Verdict::Unresolved;
        S.ExhaustedResource = "wall_clock";
        S.ExhaustedSite = "harness.budget";
        Out.Queries.push_back(std::move(S));
        ++Out.BudgetExhausted;
      }
      continue;
    }
    typestate::TypestateAnalysis A(B.P, Spec, AllocId(SiteIdx), Pt);
    tracer::TracerOptions PerSite = Options.Tracer;
    PerSite.TimeBudgetSeconds = Remaining;
    std::string Label = "typestate/site=" + std::to_string(SiteIdx);
    if (!Options.EventTracePath.empty()) {
      PerSite.EventTracePath = Options.EventTracePath;
      PerSite.EventTraceLabel = Label;
    }
    PerSite.MetricsPath = Options.MetricsPath;
    PerSite.ProfilePath = Options.ChromeTracePath;
    tracer::QueryDriver<typestate::TypestateAnalysis> Driver(B.P, A,
                                                             PerSite);
    std::vector<tracer::QueryOutcome> Outcomes = Driver.run(Checks);
    for (const tracer::QueryOutcome &O : Outcomes)
      Out.Queries.push_back(statOf(O));
    Out.ForwardRuns += Driver.stats().ForwardRuns;
    Out.BackwardRuns += Driver.stats().BackwardRuns;
    Out.CacheHits += Driver.stats().CacheHits;
    Out.CacheMisses += Driver.stats().CacheMisses;
    Out.CacheEvictions += Driver.stats().CacheEvictions;
    Out.Phases += Driver.stats().Phases;
    Out.BudgetExhausted += Driver.stats().BudgetExhausted;
    Out.Degradations += Driver.stats().Degradations;
    auditRun(B.P, A, Options, Driver, Outcomes, Label, Out);
  }
  Out.TotalSeconds = Total.seconds();
}

} // namespace

HarnessOptions::HarnessOptions() {
  // The operating point of §6: k = 5, bounded per-query iterations
  // (standing in for the paper's 1000-minute timeout at laptop scale).
  Tracer.K = 5;
  Tracer.MaxItersPerQuery = 32;
  Tracer.TimeBudgetSeconds = 180;
  Audit = std::getenv("OPTABS_AUDIT") != nullptr;
  if (const char *Path = std::getenv("OPTABS_METRICS"))
    MetricsPath = Path;
  if (const char *Path = std::getenv("OPTABS_CHROME_TRACE"))
    ChromeTracePath = Path;
}

BenchRun runBenchmark(const synth::BenchConfig &Config,
                      const HarnessOptions &Options) {
  synth::Benchmark B = synth::generate(Config);
  BenchRun Run;
  Run.Config = Config;
  Run.Procs = B.P.numProcs();
  Run.Commands = B.P.numCommands();
  Run.Vars = B.P.numVars();
  Run.Sites = B.P.numAllocs();
  Run.Fields = B.P.numFields();
  Run.EscQueries = static_cast<uint32_t>(B.EscChecks.size());

  if (Options.RunEscape)
    runEscape(B, Options, Run.Esc);
  if (Options.RunTypestate) {
    runTypestate(B, Options, Run.Ts);
    Run.TsQueries = static_cast<uint32_t>(Run.Ts.Queries.size());
  } else {
    Run.TsQueries = static_cast<uint32_t>(B.TsChecks.size());
  }
  return Run;
}

} // namespace reporting
} // namespace optabs
