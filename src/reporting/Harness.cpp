//===- Harness.cpp - Experiment harness shared by the benches -----------------===//

#include "reporting/Harness.h"

#include "support/Timer.h" // internal: wall-clock attribution

#include <cstdlib>
#include <map>
#include <sstream>

namespace optabs {
namespace reporting {

using namespace ir;

namespace {

QueryStat statOf(const tracer::QueryOutcome &O) {
  QueryStat S;
  S.V = O.V;
  S.Iterations = O.Iterations;
  S.Seconds = O.Seconds;
  S.Cost = O.CheapestCost;
  S.ParamKey = O.CheapestParam;
  if (O.Exhaustion) {
    S.ExhaustedResource = support::resourceName(O.Exhaustion->Res);
    S.ExhaustedSite = O.Exhaustion->Site;
  }
  return S;
}

/// Folds one driver run's audit evidence (invariant records, certificate
/// checks) into the client results.
template <typename Analysis>
void auditRun(const ir::Program &P, const Analysis &A,
              const HarnessOptions &Options,
              const tracer::QueryDriver<Analysis> &Driver,
              const std::vector<tracer::QueryOutcome> &Outcomes,
              const std::string &Label, ClientResults &Out) {
  const auto &Violations = Driver.stats().Violations;
  Out.InvariantViolations += Violations.size();
  for (const auto &V : Violations)
    Out.AuditNotes.push_back(Label + ": invariant [" + V.Check + "] in " +
                             V.Where + ": " + V.Message);
  if (!Options.Cfg.Audit.Enabled)
    return;
  tracer::CertificateOptions CertOpts;
  // GreedyGrow never promises minimal abstractions, so a cost mismatch
  // against the (empty) viable CNF would be a false alarm.
  CertOpts.CheckMinimality =
      tracer::TracerOptions::fromConfig(Options.Cfg).Strategy !=
      tracer::SearchStrategy::GreedyGrow;
  tracer::CertificateChecker<Analysis> Checker(P, A, CertOpts);
  tracer::CertificateReport Report =
      Checker.check(Outcomes, Driver.finalViableSets());
  Out.CertificatesChecked += Report.ProvenChecked + Report.ImpossibleChecked +
                             Report.MinimalityChecked +
                             Report.EliminatedSampled;
  Out.CertificateFailures += static_cast<unsigned>(Report.Issues.size());
  for (const tracer::CertificateIssue &Issue : Report.Issues)
    Out.AuditNotes.push_back(Label + ": certificate [" + Issue.Kind +
                             "] query " + std::to_string(Issue.Query) + ": " +
                             Issue.Detail);
}

void runEscape(const synth::Benchmark &B, const HarnessOptions &Options,
               ClientResults &Out) {
  Timer Total;
  escape::EscapeAnalysis A(B.P);
  tracer::TracerOptions Opts = tracer::TracerOptions::fromConfig(Options.Cfg);
  if (!Opts.EventTracePath.empty())
    Opts.EventTraceLabel = "escape";
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Opts);
  std::vector<tracer::QueryOutcome> Outcomes = Driver.run(B.EscChecks);
  for (const tracer::QueryOutcome &O : Outcomes)
    Out.Queries.push_back(statOf(O));
  Out.ForwardRuns += Driver.stats().ForwardRuns;
  Out.BackwardRuns += Driver.stats().BackwardRuns;
  Out.CacheHits += Driver.stats().CacheHits;
  Out.CacheMisses += Driver.stats().CacheMisses;
  Out.CacheEvictions += Driver.stats().CacheEvictions;
  Out.Phases += Driver.stats().Phases;
  Out.BudgetExhausted += Driver.stats().BudgetExhausted;
  Out.Degradations += Driver.stats().Degradations;
  auditRun(B.P, A, Options, Driver, Outcomes, "escape", Out);
  Out.TotalSeconds = Total.seconds();
}

void runTypestate(const synth::Benchmark &B, const HarnessOptions &Options,
                  ClientResults &Out) {
  Timer Total;
  pointer::PointsToResult Pt = pointer::runPointsTo(B.P);
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();

  // A TRACER query is a (check, site) pair for every application site the
  // receiver may point to (§6). Queries of one site share an analysis
  // instance and a driver run.
  std::map<uint32_t, std::vector<CheckId>> BySite;
  for (CheckId Check : B.TsChecks) {
    VarId V = B.P.checkSite(Check).Var;
    Pt.pointsTo(V).forEach(
        [&](size_t H) { BySite[static_cast<uint32_t>(H)].push_back(Check); });
  }

  tracer::TracerOptions Base = tracer::TracerOptions::fromConfig(Options.Cfg);
  double Budget = Base.TimeBudgetSeconds;
  for (auto &[SiteIdx, Checks] : BySite) {
    double Remaining = Budget - Total.seconds();
    if (Remaining <= 0) {
      // The shared wall-clock budget is spent. Record a clean exhaustion
      // verdict per query instead of constructing a driver doomed to burn
      // setup time resolving nothing.
      for (size_t I = 0; I < Checks.size(); ++I) {
        QueryStat S;
        S.V = tracer::Verdict::Unresolved;
        S.ExhaustedResource = "wall_clock";
        S.ExhaustedSite = "harness.budget";
        Out.Queries.push_back(std::move(S));
        ++Out.BudgetExhausted;
      }
      continue;
    }
    typestate::TypestateAnalysis A(B.P, Spec, AllocId(SiteIdx), Pt);
    tracer::TracerOptions PerSite = Base;
    PerSite.TimeBudgetSeconds = Remaining;
    std::string Label = "typestate/site=" + std::to_string(SiteIdx);
    if (!PerSite.EventTracePath.empty())
      PerSite.EventTraceLabel = Label;
    tracer::QueryDriver<typestate::TypestateAnalysis> Driver(B.P, A,
                                                             PerSite);
    std::vector<tracer::QueryOutcome> Outcomes = Driver.run(Checks);
    for (const tracer::QueryOutcome &O : Outcomes)
      Out.Queries.push_back(statOf(O));
    Out.ForwardRuns += Driver.stats().ForwardRuns;
    Out.BackwardRuns += Driver.stats().BackwardRuns;
    Out.CacheHits += Driver.stats().CacheHits;
    Out.CacheMisses += Driver.stats().CacheMisses;
    Out.CacheEvictions += Driver.stats().CacheEvictions;
    Out.Phases += Driver.stats().Phases;
    Out.BudgetExhausted += Driver.stats().BudgetExhausted;
    Out.Degradations += Driver.stats().Degradations;
    auditRun(B.P, A, Options, Driver, Outcomes, Label, Out);
  }
  Out.TotalSeconds = Total.seconds();
}

QueryStat statOf(const service::QueryResult &R) {
  QueryStat S;
  S.V = R.V;
  S.Iterations = R.Iterations;
  S.Cost = R.CheapestCost;
  S.ParamKey = R.CheapestParam;
  S.ExhaustedResource = R.ExhaustedResource;
  S.ExhaustedSite = R.ExhaustedSite;
  return S;
}

void foldServiceStats(const service::ServiceStats &S, ClientResults &Out) {
  Out.ForwardRuns += static_cast<unsigned>(S.ForwardRuns);
  Out.BackwardRuns += static_cast<unsigned>(S.BackwardRuns);
  Out.CacheHits += S.CacheHits;
  Out.CacheMisses += S.CacheMisses;
  Out.CacheEvictions += S.CacheEvictions;
}

/// The service-mode backend: one AnalysisService per client run, the
/// benchmark program printed and re-registered through the textual IR, one
/// session submitting every query, verdicts collected from the futures in
/// submission order (so Out.Queries matches the direct path's order).
void runClientService(const synth::Benchmark &B,
                      const HarnessOptions &Options, const char *Client,
                      ClientResults &Out) {
  Timer Total;
  std::ostringstream IrText;
  ir::printProgram(IrText, B.P);

  service::AnalysisService::Options SvcOpts;
  SvcOpts.Base = Options.Cfg;
  service::AnalysisService Svc(std::move(SvcOpts));
  service::RegisterResult Reg = Svc.registerProgram("bench", IrText.str());
  if (!Reg.Ok) {
    Out.AuditNotes.push_back(std::string("service: register failed: ") +
                             Reg.Error);
    return;
  }

  service::SessionSpec Spec;
  Spec.Program = "bench";
  Spec.Client = Client;
  Spec.SessionConfig = Options.Cfg;
  std::string Err;
  service::Session Sess = Svc.openSession(Spec, Err);
  if (!Sess.valid()) {
    Out.AuditNotes.push_back("service: open-session failed: " + Err);
    return;
  }

  std::vector<std::future<service::QueryResult>> Futures;
  auto SubmitJob = [&](uint32_t Check, uint32_t Site) {
    service::JobSpec Job;
    Job.Check = Check;
    Job.Site = Site;
    Futures.push_back(Sess.submit(Job));
  };
  if (std::string(Client) == "escape") {
    for (ir::CheckId Check : B.EscChecks)
      SubmitJob(static_cast<uint32_t>(Check.index()), 0);
  } else {
    // Same (site -> checks) grouping as the direct path, so the result
    // vector lines up query for query.
    pointer::PointsToResult Pt = pointer::runPointsTo(B.P);
    std::map<uint32_t, std::vector<CheckId>> BySite;
    for (CheckId Check : B.TsChecks) {
      VarId V = B.P.checkSite(Check).Var;
      Pt.pointsTo(V).forEach([&](size_t H) {
        BySite[static_cast<uint32_t>(H)].push_back(Check);
      });
    }
    for (auto &[SiteIdx, Checks] : BySite)
      for (CheckId Check : Checks)
        SubmitJob(static_cast<uint32_t>(Check.index()), SiteIdx);
  }

  Svc.drain();
  for (std::future<service::QueryResult> &F : Futures) {
    service::QueryResult R = F.get();
    if (R.Status != service::JobStatus::Done)
      Out.AuditNotes.push_back("service: job " + std::to_string(R.Job) +
                               " " + service::jobStatusName(R.Status) +
                               ": " + R.Error);
    Out.Queries.push_back(statOf(R));
    if (!R.ExhaustedResource.empty())
      ++Out.BudgetExhausted;
  }
  foldServiceStats(Svc.stats(), Out);
  Out.TotalSeconds = Total.seconds();
}

} // namespace

HarnessOptions::HarnessOptions() {
  // Resolve the standard precedence chain (explicit > OPTABS_* > defaults),
  // then pin the operating point of §6 at laptop scale: bounded per-query
  // iterations standing in for the paper's 1000-minute timeout. Neither
  // knob has an OPTABS_* variable, except the time budget, which the
  // environment overrides.
  Cfg = Config::fromEnv();
  Cfg.Execution.MaxItersPerQuery = 32;
  if (Cfg.Budgets.TimeBudgetSeconds == Config().Budgets.TimeBudgetSeconds)
    Cfg.Budgets.TimeBudgetSeconds = 180;
}

HarnessOptions HarnessOptions::fromConfig(const Config &C) {
  HarnessOptions O;
  O.Cfg = C;
  return O;
}

BenchRun runBenchmark(const synth::BenchConfig &Config,
                      const HarnessOptions &Options) {
  synth::Benchmark B = synth::generate(Config);
  BenchRun Run;
  Run.Config = Config;
  Run.Procs = B.P.numProcs();
  Run.Commands = B.P.numCommands();
  Run.Vars = B.P.numVars();
  Run.Sites = B.P.numAllocs();
  Run.Fields = B.P.numFields();
  Run.EscQueries = static_cast<uint32_t>(B.EscChecks.size());

  // Audit needs the drivers' final viable sets, which the service does not
  // expose; audited runs always take the direct path.
  bool ViaService = Options.UseService && !Options.Cfg.Audit.Enabled;
  if (Options.RunEscape) {
    if (ViaService)
      runClientService(B, Options, "escape", Run.Esc);
    else
      runEscape(B, Options, Run.Esc);
  }
  if (Options.RunTypestate) {
    if (ViaService)
      runClientService(B, Options, "typestate", Run.Ts);
    else
      runTypestate(B, Options, Run.Ts);
    Run.TsQueries = static_cast<uint32_t>(Run.Ts.Queries.size());
  } else {
    Run.TsQueries = static_cast<uint32_t>(B.TsChecks.size());
  }
  return Run;
}

} // namespace reporting
} // namespace optabs
