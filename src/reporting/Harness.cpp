//===- Harness.cpp - Experiment harness shared by the benches -----------------===//

#include "reporting/Harness.h"

#include "escape/Escape.h"
#include "pointer/PointsTo.h"
#include "support/Timer.h"
#include "typestate/Typestate.h"

#include <map>

namespace optabs {
namespace reporting {

using namespace ir;

namespace {

QueryStat statOf(const tracer::QueryOutcome &O) {
  QueryStat S;
  S.V = O.V;
  S.Iterations = O.Iterations;
  S.Seconds = O.Seconds;
  S.Cost = O.CheapestCost;
  S.ParamKey = O.CheapestParam;
  return S;
}

void runEscape(const synth::Benchmark &B, const HarnessOptions &Options,
               ClientResults &Out) {
  Timer Total;
  escape::EscapeAnalysis A(B.P);
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A,
                                                     Options.Tracer);
  for (const tracer::QueryOutcome &O : Driver.run(B.EscChecks))
    Out.Queries.push_back(statOf(O));
  Out.ForwardRuns += Driver.stats().ForwardRuns;
  Out.BackwardRuns += Driver.stats().BackwardRuns;
  Out.CacheHits += Driver.stats().CacheHits;
  Out.CacheMisses += Driver.stats().CacheMisses;
  Out.CacheEvictions += Driver.stats().CacheEvictions;
  Out.TotalSeconds = Total.seconds();
}

void runTypestate(const synth::Benchmark &B, const HarnessOptions &Options,
                  ClientResults &Out) {
  Timer Total;
  pointer::PointsToResult Pt = pointer::runPointsTo(B.P);
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();

  // A TRACER query is a (check, site) pair for every application site the
  // receiver may point to (§6). Queries of one site share an analysis
  // instance and a driver run.
  std::map<uint32_t, std::vector<CheckId>> BySite;
  for (CheckId Check : B.TsChecks) {
    VarId V = B.P.checkSite(Check).Var;
    Pt.pointsTo(V).forEach(
        [&](size_t H) { BySite[static_cast<uint32_t>(H)].push_back(Check); });
  }

  double Budget = Options.Tracer.TimeBudgetSeconds;
  for (auto &[SiteIdx, Checks] : BySite) {
    typestate::TypestateAnalysis A(B.P, Spec, AllocId(SiteIdx), Pt);
    tracer::TracerOptions PerSite = Options.Tracer;
    PerSite.TimeBudgetSeconds = std::max(0.0, Budget - Total.seconds());
    tracer::QueryDriver<typestate::TypestateAnalysis> Driver(B.P, A,
                                                             PerSite);
    for (const tracer::QueryOutcome &O : Driver.run(Checks))
      Out.Queries.push_back(statOf(O));
    Out.ForwardRuns += Driver.stats().ForwardRuns;
    Out.BackwardRuns += Driver.stats().BackwardRuns;
    Out.CacheHits += Driver.stats().CacheHits;
    Out.CacheMisses += Driver.stats().CacheMisses;
    Out.CacheEvictions += Driver.stats().CacheEvictions;
  }
  Out.TotalSeconds = Total.seconds();
}

} // namespace

BenchRun runBenchmark(const synth::BenchConfig &Config,
                      const HarnessOptions &Options) {
  synth::Benchmark B = synth::generate(Config);
  BenchRun Run;
  Run.Config = Config;
  Run.Procs = B.P.numProcs();
  Run.Commands = B.P.numCommands();
  Run.Vars = B.P.numVars();
  Run.Sites = B.P.numAllocs();
  Run.Fields = B.P.numFields();
  Run.EscQueries = static_cast<uint32_t>(B.EscChecks.size());

  if (Options.RunEscape)
    runEscape(B, Options, Run.Esc);
  if (Options.RunTypestate) {
    runTypestate(B, Options, Run.Ts);
    Run.TsQueries = static_cast<uint32_t>(Run.Ts.Queries.size());
  } else {
    Run.TsQueries = static_cast<uint32_t>(B.TsChecks.size());
  }
  return Run;
}

} // namespace reporting
} // namespace optabs
