//===- Harness.h - Experiment harness shared by the benches ----*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a synthetic benchmark through both client analyses the way §6 runs
/// the Java benchmarks through Chord:
///
///  * thread-escape: one TRACER driver over all field-access queries;
///  * type-state (stress property): queries are (check, site) pairs for
///    every may-pointed application site of every call-site check; one
///    TypestateAnalysis instance per tracked site, queries of one site
///    resolved together.
///
/// The per-query outcomes feed every table and figure of the evaluation;
/// the bench binaries only format them.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_REPORTING_HARNESS_H
#define OPTABS_REPORTING_HARNESS_H

#include <optabs/optabs.h>

#include "synth/Generator.h" // internal: the synthetic benchmark suite

#include <string>
#include <vector>

namespace optabs {
namespace reporting {

/// Outcome of one query, client-agnostic.
struct QueryStat {
  tracer::Verdict V = tracer::Verdict::Unresolved;
  unsigned Iterations = 0;
  double Seconds = 0;
  uint32_t Cost = 0;          ///< |p| of the cheapest abstraction (proven)
  std::string ParamKey;       ///< canonical cheapest abstraction (proven)
  /// When the query went Unresolved because a resource ran out, which one
  /// ("steps", "wall_clock", "memory", "cancelled") and at which charge
  /// site (e.g. "forward.visit"); empty otherwise.
  std::string ExhaustedResource;
  std::string ExhaustedSite;
};

/// All outcomes of one client on one benchmark.
struct ClientResults {
  std::vector<QueryStat> Queries;
  double TotalSeconds = 0;
  unsigned ForwardRuns = 0;
  unsigned BackwardRuns = 0;
  uint64_t CacheHits = 0;      ///< forward-run cache hits (memoized runs)
  uint64_t CacheMisses = 0;    ///< forward-run cache misses (computed runs)
  uint64_t CacheEvictions = 0; ///< forward-run cache LRU evictions
  /// Per-stage wall-clock breakdown summed over every driver run of this
  /// client (tracer::DriverStats::Phases); feeds the phase columns of the
  /// CSV summary export.
  tracer::PhaseSeconds Phases;
  unsigned BudgetExhausted = 0;     ///< queries that hit a resource budget
  unsigned Degradations = 0;        ///< memory-pressure ladder escalations
  size_t InvariantViolations = 0;   ///< checked-invariant records (audit)
  unsigned CertificatesChecked = 0; ///< certificate checks performed (audit)
  unsigned CertificateFailures = 0; ///< certificate checks failed (audit)
  /// Formatted descriptions of every violation and failed certificate, for
  /// diagnostics (empty on a healthy audited run).
  std::vector<std::string> AuditNotes;

  unsigned count(tracer::Verdict V) const {
    unsigned N = 0;
    for (const QueryStat &Q : Queries)
      N += Q.V == V;
    return N;
  }
};

/// One benchmark run end to end.
struct BenchRun {
  synth::BenchConfig Config;
  // Table 1 statistics.
  uint32_t Procs = 0;
  uint32_t Commands = 0;
  uint32_t Vars = 0;   ///< log2 |P| for type-state
  uint32_t Sites = 0;  ///< log2 |P| for thread-escape
  uint32_t Fields = 0;
  uint32_t TsQueries = 0;
  uint32_t EscQueries = 0;

  ClientResults Ts, Esc;
};

/// Knobs for a harness run: the unified optabs::Config plus the three
/// harness-only switches. The deprecated per-field aliases (a writable
/// TracerOptions, Audit, EventTracePath, ...) are gone - poke Cfg
/// directly:
///
///   HarnessOptions O;
///   O.Cfg.Execution.NumThreads = 4;
///   O.Cfg.Audit.Enabled = true;
///   O.Cfg.Observability.EventTracePath = "/tmp/trace.jsonl";
///
/// Execution/Budgets reach the drivers through TracerOptions::fromConfig;
/// Audit.Enabled arms invariant recording plus certificate checking;
/// the Observability paths are honored per client (the harness stamps the
/// per-client event-trace labels - "escape", "typestate/site=N" -
/// itself; the event-trace file is appended to, never truncated).
struct HarnessOptions {
  /// The configuration surface. The default constructor resolves
  /// Config::fromEnv() (so the OPTABS_* precedence chain applies: audit
  /// arms from OPTABS_AUDIT, metrics from OPTABS_METRICS, ...) and then
  /// pins the harness operating point; fromConfig() takes an explicit
  /// Config verbatim.
  Config Cfg;
  bool RunTypestate = true;
  bool RunEscape = true;
  /// Route every query through a service::AnalysisService (one per client
  /// run) instead of standalone drivers: the program is printed, registered
  /// and re-parsed, a session per client submits every query, and the cache
  /// statistics come from the service's counters. Verdicts are bitwise
  /// identical to the direct path. Audit mode needs the drivers' final
  /// viable sets, which the service does not expose, so Audit + UseService
  /// falls back to the direct path.
  bool UseService = false;

  HarnessOptions();

  /// Harness options carrying \p C verbatim (no operating-point pinning).
  static HarnessOptions fromConfig(const Config &C);
};

/// Generates and runs one benchmark.
BenchRun runBenchmark(const synth::BenchConfig &Config,
                      const HarnessOptions &Options = HarnessOptions());

} // namespace reporting
} // namespace optabs

#endif // OPTABS_REPORTING_HARNESS_H
