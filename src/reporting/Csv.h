//===- Csv.h - CSV export of experiment results ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable export of per-query outcomes, for plotting the
/// evaluation figures outside this repository.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_REPORTING_CSV_H
#define OPTABS_REPORTING_CSV_H

#include "reporting/Harness.h"

#include <ostream>

namespace optabs {
namespace reporting {

/// Writes the CSV header row for per-query outcomes.
void writeCsvHeader(std::ostream &OS);

/// Writes one row per query of \p Run (both clients), tagged with the
/// benchmark name and client. Fields: benchmark, client, query index,
/// verdict, iterations, seconds, cheapest |p|, cheapest abstraction.
void writeCsvRows(std::ostream &OS, const BenchRun &Run);

/// Writes the CSV header row for per-client aggregate summaries (one row
/// per client per benchmark configuration): driver work counters, the
/// forward-run cache statistics, the audit counters (invariant
/// violations, certificates checked/failed), and the per-phase wall-clock
/// breakdown (plan/forward/classify/extract/backward/merge seconds).
void writeCsvSummaryHeader(std::ostream &OS);

/// Writes one aggregate summary row. \p Label tags the configuration the
/// run used (e.g. "threads=4"); pass an empty string when unused.
void writeCsvSummaryRow(std::ostream &OS, const std::string &Bench,
                        const char *Client, const std::string &Label,
                        const ClientResults &R);

} // namespace reporting
} // namespace optabs

#endif // OPTABS_REPORTING_CSV_H
