//===- Backward.h - Generic backward meta-analysis -------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backward meta-analysis B[t] of §4 / Figure 7. Given an abstract
/// counterexample trace t of the forward analysis, the abstraction p used,
/// the forward states along t, and the failure condition not(q), it
/// propagates a boolean formula backwards:
///
///   B[eps](p, d, f)   = f
///   B[a](p, d, f)     = approx(p, d, wp_a(f))
///   B[t;t'](p, d, f)  = B[t](p, d, B[t'](p, F_p[t](d), f))
///
/// The result represents a *sufficient condition for failure*: every pair
/// (p', d') in its meaning fails the query the same way (Theorem 3). The
/// under-approximation operator approx (Figure 8) keeps formulas in DNF
/// with at most K disjuncts, always retaining a disjunct containing the
/// current (p, d) so the current abstraction is guaranteed to be eliminated.
///
/// The client supplies the meta-analysis data of §4.1 for a *disjunctive*
/// meta-analysis:
///
/// \code
///   struct BackwardClient {
///     using Param = ...;   // same as the forward client's
///     using State = ...;   // same as the forward client's
///     // Weakest precondition of a single positive atom across Cmd (the
///     // [a]^b of Figures 10/11), as a formula over atoms. Must satisfy
///     // requirement (2): gamma(wp(A)) = {(p,d) | A holds of (p,[a]_p(d))}.
///     formula::Formula wpAtom(const ir::Command &Cmd,
///                             formula::AtomId A) const;
///     // Truth of atom A in a concrete pair (p, d) - the gamma function.
///     bool evalAtom(formula::AtomId A, const Param &P,
///                   const State &D) const;
///     // True if A constrains only the parameter component.
///     bool isParamAtom(formula::AtomId A) const;
///     std::string atomName(formula::AtomId A) const;
///     // Semantic cube simplification hooks (see formula/Normalize.h):
///     // exploit mutual exclusivity between atoms so formulas stay as
///     // compact as the paper's hand-written Figures 10/11.
///     std::optional<formula::Cube> refineCube(const formula::Cube &) const;
///     std::optional<formula::LocationInfo>
///     atomLocation(formula::AtomId) const;
///   };
/// \endcode
///
/// Because forward transfer functions are deterministic, wp distributes
/// over /\, \/ and negation, so the wp of a whole formula is the
/// substitution of wpAtom into its literals; this is how the driver lifts
/// the client's atom-wise transfers to formulas.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_META_BACKWARD_H
#define OPTABS_META_BACKWARD_H

#include "formula/Formula.h"
#include "formula/Normalize.h"
#include "ir/Program.h"
#include "ir/Trace.h"
#include "meta/TraceSegments.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/Invariants.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace optabs {
namespace meta {

/// Tuning knobs for the meta-analysis.
struct BackwardConfig {
  /// Beam width k of the dropk operator; 0 disables under-approximation
  /// entirely (the exact mode of Figure 6(a)).
  unsigned K = 5;
  /// Cap on intermediate cube counts during per-step substitution. Only a
  /// scalability guard; 0 disables. Irrelevant when K is small.
  size_t ProductSoftCap = 4096;
  /// Wall-clock limit per trace run; 0 disables. Exact mode (K = 0) grows
  /// formulas exponentially along long traces (the paper reports outright
  /// timeouts), so harnesses bound it and treat an expired run as a
  /// timeout: the partial formula constrains an interior trace point, not
  /// the initial state, and must be discarded.
  double TimeoutSeconds = 0;
  /// Logical-step budget per trace run: each non-skipped backward step
  /// charges 1 and each Dnf::product charges its cross-product size against
  /// one shared per-run gate. 0 disables. Unlike TimeoutSeconds this is
  /// deterministic — it trips at the same step for any worker count — and
  /// an exhausted run is discarded exactly like a timeout (nullopt), which
  /// is sound: learning nothing never prunes a viable abstraction.
  uint64_t StepBudget = 0;
  /// Optional cooperative-cancellation token polled at every step charge;
  /// a requested token makes run() unwind and return nullopt.
  const support::CancelToken *Cancel = nullptr;
  /// Hard cap on formula size before a run is declared timed out; guards
  /// against a single substitution step exhausting memory. 0 disables.
  size_t HardCubeCap = 50000;
  /// Above this size, skip the quadratic semantic merging and keep only
  /// subsumption; above SimplifyCap, skip even that (meaning-preserving
  /// either way, just less compact).
  size_t NormalizeCap = 512;
  size_t SimplifyCap = 8192;
  /// Skip commands whose weakest precondition is the identity on every
  /// literal of the current formula (the common case on long traces:
  /// commands of unrelated program regions cannot affect the query's
  /// atoms). Purely an optimization; results are unchanged.
  bool SkipIdentitySteps = true;
  /// Optional observer called after each backward step with the trace
  /// index, the command just traversed, and the formula before it (i.e.
  /// the meta-analysis state at the command's program point). Used by the
  /// examples to print Figure 1/6-style walkthroughs. The observer runs on
  /// whichever thread executes the backward run; callers sharing one
  /// callable across several BackwardMetaAnalysis instances on different
  /// threads must serialize it themselves (the TRACER driver wraps the
  /// observer in a mutex when NumThreads > 1).
  std::function<void(size_t, const ir::Command &, const formula::Dnf &)>
      StepObserver;
  /// Where violated invariants are recorded (see support/Invariants.h).
  /// A violated precondition or soundness invariant makes run() discard
  /// the tainted formula and return nullopt, exactly like a timeout, so an
  /// invariant violation can never unsoundly prune viable abstractions.
  /// Null: violations go to stderr instead.
  support::InvariantSink *Invariants = nullptr;
};

/// Statistics of one backward run.
struct BackwardStats {
  size_t MaxCubes = 0;    ///< largest formula (in cubes) ever tracked
  size_t TotalCubes = 0;  ///< sum of per-step cube counts
  size_t Steps = 0;       ///< trace length processed
};

template <typename Client> class BackwardMetaAnalysis {
public:
  using Param = typename Client::Param;
  using State = typename Client::State;

  BackwardMetaAnalysis(const ir::Program &P, const Client &C,
                       BackwardConfig Config = BackwardConfig())
      : P(P), C(C), Config(Config),
        Refiner([&C](const formula::Cube &Cube) { return C.refineCube(Cube); }),
        LocFn([&C](formula::AtomId A) { return C.atomLocation(A); }) {}

  /// Runs B[t](p, d_I, NotQ). \p States must be the forward state sequence
  /// along \p T starting from d_I (length |T| + 1, as produced by
  /// ForwardAnalysis::replay), and NotQ must hold of (p, States.back()) -
  /// i.e. the trace really is a counterexample. The result holds of
  /// (p, d_I) and is a sufficient condition for failure.
  /// Returns nullopt when the run exceeded its time or size budget (only
  /// possible with a nonzero TimeoutSeconds/HardCubeCap); a timed-out
  /// partial formula is unusable and is not returned.
  ///
  /// \p Segs, when provided, is the loop-segment plan detectSegments()
  /// derived from this exact (trace, state) pair. Once the formula reaches
  /// a fixpoint across one repetition of a segment, the remaining
  /// repetitions are skipped and their gate cost is charged in bulk; the
  /// result and all budget decisions are bitwise identical to the unrolled
  /// walk (see meta/TraceSegments.h for the argument). Compression is
  /// disabled under a StepObserver (observers must see every step) and
  /// under armed fault injection (bulk charges would shift per-site
  /// fault-hit counts, i.e. *when* an armed fault fires).
  std::optional<formula::Dnf> run(const ir::Trace &T, const Param &Prm,
                                  const std::vector<State> &States,
                                  const formula::Dnf &NotQ,
                                  const TraceSegments *Segs = nullptr) {
    Stats = BackwardStats();
    Stats.Steps = T.size();
    LastExhaustion.reset();
    SkipMemo.clear();
    support::BudgetGate Gate("backward.step", Config.StepBudget,
                             Config.Cancel, 0, Config.Invariants);
    if (States.size() != T.size() + 1) {
      support::reportInvariant(
          Config.Invariants, "backward-state-length",
          "BackwardMetaAnalysis::run",
          "state sequence length " + std::to_string(States.size()) +
              " does not match trace length " + std::to_string(T.size()) +
              " + 1; run discarded");
      return std::nullopt;
    }
    Timer Clock;

    formula::Dnf F = NotQ;
    if (!F.eval(makeEval(Prm, States.back()))) {
      support::reportInvariant(
          Config.Invariants, "backward-notq-precondition",
          "BackwardMetaAnalysis::run",
          "not(q) does not hold at the end of the supposed counterexample "
          "trace (length " +
              std::to_string(T.size()) + "); run discarded");
      return std::nullopt;
    }

    // The formula changes only at non-skipped steps; FVersion numbers those
    // changes so the identity-skip verdict can be memoized per
    // (command, formula version) below.
    uint64_t FVersion = 0;

    // Segment-compression bookkeeping. Repeats are disjoint and sorted by
    // position, so walking backwards consumes them from the back.
    const bool Compress = Segs && !Segs->empty() && !Config.StepObserver &&
                          !support::faultsEnabled();
    size_t SegIdx = Compress ? Segs->Repeats.size() : 0;
    const SegmentRepeat *Active = nullptr;
    formula::Dnf BoundaryF;
    bool HaveBoundaryF = false;
    uint64_t BoundaryUsed = 0;
    size_t BoundaryCubes = 0;

    for (size_t I = T.size(); I-- > 0;) {
      if (!Active && SegIdx > 0 && Segs->Repeats[SegIdx - 1].end() == I + 1) {
        Active = &Segs->Repeats[--SegIdx];
        HaveBoundaryF = false;
        BoundaryUsed = Gate.stepsUsed();
        BoundaryCubes = Stats.TotalCubes;
      }
      if (Config.TimeoutSeconds > 0 &&
          Clock.seconds() > Config.TimeoutSeconds) {
        LastExhaustion =
            support::Exhausted{support::Resource::WallClock, "backward.step"};
        return std::nullopt;
      }
      if (!Gate.charge()) {
        LastExhaustion = Gate.why();
        return std::nullopt; // budget/cancellation: discard like a timeout
      }
      const ir::Command &Cmd = P.command(T[I]);
      bool Skip = false;
      if (Config.SkipIdentitySteps) {
        // The exact per-literal wp check is itself a hashmap lookup per
        // literal; on long traces the same (command, formula) pair recurs
        // constantly (loops, unrelated program regions), so the verdict is
        // memoized under the formula's version. Bitwise equivalent to
        // checking every step: the formula is unchanged since FVersion was
        // last bumped.
        uint64_t SkipKey = (static_cast<uint64_t>(T[I].index()) << 32) |
                           (FVersion & 0xffffffff);
        auto SkipIt = SkipMemo.find(SkipKey);
        Skip = SkipIt != SkipMemo.end()
                   ? SkipIt->second
                   : SkipMemo.emplace(SkipKey, isIdentityStep(T[I], Cmd, F))
                         .first->second;
      }
      if (!Skip) {
        formula::AtomEval PreEval = makeEval(Prm, States[I]);
        std::optional<formula::Dnf> Wp =
            wpFormula(T[I], Cmd, F, PreEval, &Gate);
        if (!Wp) {
          // Either the shared gate ran out mid-substitution or the hard
          // cube cap tripped; the latter is a memory guard, reported as
          // such.
          LastExhaustion =
              Gate.exhausted()
                  ? Gate.why()
                  : std::optional<support::Exhausted>{support::Exhausted{
                        support::Resource::Memory, "backward.step"}};
          return std::nullopt; // formula blow-up (exact mode)
        }
        F = std::move(*Wp);
        // Semantic simplification recovers the compact forms of the paper's
        // hand-written transfer functions before the beam search prunes.
        // Its merging pass is quadratic, so very large (exact-mode)
        // formulas get progressively lighter treatment.
        if (F.size() <= Config.NormalizeCap) {
          formula::semanticNormalize(F, Refiner, LocFn);
        } else if (F.size() <= Config.SimplifyCap) {
          F.sortBySize();
          F.simplify();
        } else {
          F.sortBySize(); // subsumption is quadratic; skip when huge
        }
        if (Config.K > 0 && F.size() > Config.K) {
          F.sortBySize();
          F.dropK(Config.K, PreEval, Config.Invariants);
        }
        if (!F.eval(PreEval)) {
          // Soundness invariant (Theorem 3): the current (p, d) must stay
          // inside the formula at every trace point, or the final formula
          // is not guaranteed to eliminate the current abstraction. Discard
          // the run like a timeout - learning nothing is sound, learning
          // from a tainted formula is not.
          support::reportInvariant(
              Config.Invariants, "backward-soundness",
              "BackwardMetaAnalysis::run",
              "(p, d) escaped the formula at trace step " +
                  std::to_string(I) + " (formula size " +
                  std::to_string(F.size()) + "); run discarded");
          return std::nullopt;
        }
        ++FVersion;
        Stats.MaxCubes = std::max(Stats.MaxCubes, F.size());
      }
      Stats.TotalCubes += F.size();
      if (Config.StepObserver)
        Config.StepObserver(I, Cmd, F);
      if (!Skip && support::metricsEnabled()) {
        static auto &StepCubes = support::MetricRegistry::global().histogram(
            "optabs_backward_step_cubes");
        StepCubes.record(F.size());
      }

      if (Active && (I - Active->Pos) % Active->Period == 0) {
        if (I == Active->Pos) {
          Active = nullptr; // region fully walked without stabilizing
        } else if (HaveBoundaryF && F == BoundaryF) {
          // Fixpoint: one full repetition mapped F to itself, and every
          // remaining repetition runs the identical computation from the
          // identical states, so each maps F to F too. Skip them, charging
          // the gate exactly what the unrolled walk would have (one
          // repetition's measured cost per skipped repetition) so step
          // budgets exhaust at the same logical step either way.
          size_t Skipped = (I - Active->Pos) / Active->Period;
          uint64_t PeriodCost = Gate.stepsUsed() - BoundaryUsed;
          size_t PeriodCubes = Stats.TotalCubes - BoundaryCubes;
          if (PeriodCost > 0 && !Gate.charge(PeriodCost * Skipped)) {
            LastExhaustion = Gate.why();
            return std::nullopt;
          }
          Stats.TotalCubes += PeriodCubes * Skipped;
          if (support::metricsEnabled()) {
            static auto &SkippedSteps =
                support::MetricRegistry::global().counter(
                    "optabs_backward_segment_steps_skipped_total");
            static auto &Fixpoints =
                support::MetricRegistry::global().counter(
                    "optabs_backward_segment_fixpoints_total");
            SkippedSteps.add(Skipped * Active->Period);
            Fixpoints.add(1);
          }
          I = Active->Pos; // loop decrement resumes below the region
          Active = nullptr;
        } else {
          BoundaryF = F;
          HaveBoundaryF = true;
          BoundaryUsed = Gate.stepsUsed();
          BoundaryCubes = Stats.TotalCubes;
        }
      }
    }
    if (support::metricsEnabled()) {
      static auto &Steps = support::MetricRegistry::global().counter(
          "optabs_backward_steps_total");
      Steps.add(T.size());
    }
    return F;
  }

  /// Projects a final formula onto the parameter component at the initial
  /// state: the returned DNF is over parameter atoms only and describes
  /// exactly the abstractions p' with (p', d_I) in gamma(F) - the set
  /// Pi of Algorithm 1, line 14. State atoms are evaluated at d_I.
  formula::Dnf projectToParams(const formula::Dnf &F, const Param &Prm,
                               const State &InitState) const {
    formula::Dnf Result;
    std::vector<formula::Cube> Cubes;
    for (const formula::Cube &Cube : F.cubes()) {
      std::vector<formula::Lit> ParamLits;
      bool Feasible = true;
      for (formula::Lit L : Cube.literals()) {
        if (C.isParamAtom(L.atom())) {
          ParamLits.push_back(L);
        } else if (!L.eval([&](formula::AtomId A) {
                     return C.evalAtom(A, Prm, InitState);
                   })) {
          Feasible = false;
          break;
        }
      }
      if (!Feasible)
        continue;
      if (auto NewCube = formula::Cube::make(std::move(ParamLits)))
        Cubes.push_back(std::move(*NewCube));
    }
    Result = formula::Dnf::fromCubes(std::move(Cubes));
    formula::semanticNormalize(Result, Refiner, LocFn);
    Result.sortBySize();
    Result.simplify();
    return Result;
  }

  const BackwardStats &stats() const { return Stats; }

  /// Why the most recent run() returned nullopt for resource reasons;
  /// empty after a successful run or an invariant-discard.
  const std::optional<support::Exhausted> &lastExhaustion() const {
    return LastExhaustion;
  }

  /// Shrinks (or widens) the dropk beam between runs — the degradation
  /// ladder's rung 2. A smaller K only under-approximates harder (§5's
  /// dropK argument), so tightening mid-driver-run is sound.
  void setBeamWidth(unsigned K) { Config.K = K; }

  std::string formulaToString(const formula::Dnf &F) const {
    return F.toString([this](formula::AtomId A) { return C.atomName(A); });
  }

private:
  formula::AtomEval makeEval(const Param &Prm, const State &D) const {
    return [this, &Prm, &D](formula::AtomId A) {
      return C.evalAtom(A, Prm, D);
    };
  }

  /// True when the wp of every literal of \p F across \p Cmd is the
  /// literal itself, i.e. the whole step is the identity.
  bool isIdentityStep(ir::CommandId CmdId, const ir::Command &Cmd,
                      const formula::Dnf &F) {
    for (const formula::Cube &Cube : F.cubes()) {
      for (formula::Lit L : Cube.literals()) {
        const formula::Dnf &W = wpLit(CmdId, Cmd, L);
        if (W.size() != 1 || W.cubes()[0].size() != 1 ||
            W.cubes()[0].literals()[0] != L)
          return false;
      }
    }
    return true;
  }

  /// wp of a whole DNF across one command: substitute the wp of each
  /// literal and redistribute. Returns nullopt when the result exceeds the
  /// hard cube cap (only reachable in exact mode, where nothing prunes).
  std::optional<formula::Dnf> wpFormula(ir::CommandId CmdId,
                                        const ir::Command &Cmd,
                                        const formula::Dnf &F,
                                        const formula::AtomEval &PreEval,
                                        support::BudgetGate *Gate = nullptr) {
    formula::Dnf Result;
    std::vector<const formula::Dnf *> Wps;
    for (const formula::Cube &Cube : F.cubes()) {
      // Multiply the literal wps smallest-first: the product cube multiset
      // is order-independent (conjunction is commutative and contradictions
      // absorb), and every normalization tier canonicalizes with
      // sortBySize, so the result is unchanged while the intermediate
      // cross-products - the actual cost - stay as small as possible.
      Wps.clear();
      for (formula::Lit L : Cube.literals())
        Wps.push_back(&wpLit(CmdId, Cmd, L)); // node-stable references
      std::stable_sort(Wps.begin(), Wps.end(),
                       [](const formula::Dnf *A, const formula::Dnf *B) {
                         return A->size() < B->size();
                       });
      formula::Dnf CubeWp = formula::Dnf::constTrue();
      for (const formula::Dnf *Wp : Wps) {
        CubeWp = formula::Dnf::product(CubeWp, *Wp, Config.ProductSoftCap,
                                       PreEval, Config.Invariants, Gate);
        if (Gate && Gate->exhausted())
          return std::nullopt; // product returned an under-charged false
        if (Config.HardCubeCap > 0 &&
            Result.size() + CubeWp.size() > Config.HardCubeCap)
          return std::nullopt;
        if (CubeWp.isFalse())
          break;
      }
      Result.orWith(CubeWp);
    }
    return Result;
  }

  /// wp of one literal, memoized per (command, literal). Negative literals
  /// use wp(!A) = !wp(A), valid because transfers are deterministic.
  const formula::Dnf &wpLit(ir::CommandId CmdId, const ir::Command &Cmd,
                            formula::Lit L) {
    uint64_t Key = (static_cast<uint64_t>(CmdId.index()) << 32) | L.raw();
    auto It = WpMemo.find(Key);
    if (It != WpMemo.end())
      return It->second;
    formula::Formula Wp = C.wpAtom(Cmd, L.atom());
    if (L.isNeg())
      Wp = formula::Formula::negate(Wp);
    return WpMemo.emplace(Key, Wp.toDnf()).first->second;
  }

  const ir::Program &P;
  const Client &C;
  BackwardConfig Config;
  formula::CubeRefiner Refiner;
  formula::LocationFn LocFn;
  std::unordered_map<uint64_t, formula::Dnf> WpMemo;
  /// Per-run memo of identity-skip verdicts keyed (command, formula
  /// version); cleared at every run() entry.
  std::unordered_map<uint64_t, bool> SkipMemo;
  BackwardStats Stats;
  std::optional<support::Exhausted> LastExhaustion;
};

} // namespace meta
} // namespace optabs

#endif // OPTABS_META_BACKWARD_H
