//===- TraceSegments.h - Loop-segment detection in traces ------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HTR-style hierarchical trace compression: counterexample traces through
/// loops unroll the same body over and over, and the backward meta-analysis
/// of long traces spends most of its time re-deriving the same formula
/// across identical iterations. This header detects the repeats; the
/// backward engine (meta/Backward.h) consumes the plan and, once the
/// formula reaches a fixpoint across one repetition, skips the remaining
/// ones wholesale.
///
/// A repeat (Pos, Period, Count) asserts that for every offset
/// j in [Pos, Pos + (Count-1)*Period) both the command and the forward
/// abstract state at j equal those at j + Period. Under that condition the
/// backward propagation of each repetition is a pure function of the
/// incoming formula (every per-step evaluation point States[i] coincides
/// across repetitions), so once two adjacent repetitions map a formula F to
/// itself, all earlier repetitions provably do too - the skip is exact, not
/// an approximation. When the formula never stabilizes, the engine simply
/// walks every step (the sound fallback to unrolled replay).
///
/// Detection compares interned forward state ids, not state values: within
/// one forward run, equal ids iff equal states, which is exactly the
/// equality the argument above needs.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_META_TRACESEGMENTS_H
#define OPTABS_META_TRACESEGMENTS_H

#include "ir/Trace.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace optabs {
namespace meta {

/// One maximal adjacent repeat: Count back-to-back copies of the
/// Period-command window starting at trace index Pos.
struct SegmentRepeat {
  uint32_t Pos = 0;
  uint32_t Period = 0;
  uint32_t Count = 0;

  size_t end() const { return Pos + size_t(Count) * Period; }
};

/// The compression plan for one trace: disjoint repeats in ascending
/// position order.
struct TraceSegments {
  std::vector<SegmentRepeat> Repeats;

  bool empty() const { return Repeats.empty(); }
};

/// Detects adjacent repeats in \p T. \p StateIds are the interned forward
/// states along the trace (length |T| + 1, StateIds[i] = state before
/// command i), as produced by ForwardAnalysis::replay. \p MinCount is the
/// smallest repetition count worth recording: the backward engine must
/// process two repetitions before it can detect a fixpoint, so anything
/// below 3 can never save work.
inline TraceSegments detectSegments(const ir::Trace &T,
                                    const std::vector<uint32_t> &StateIds,
                                    uint32_t MinCount = 3) {
  TraceSegments Result;
  const size_t N = T.size();
  if (StateIds.size() != N + 1 || N < 4)
    return Result;
  auto SameAt = [&](size_t A, size_t B) {
    return T[A] == T[B] && StateIds[A] == StateIds[B];
  };
  // Most recent position of each forward state id: a repeat must revisit
  // the same abstract state, so candidate periods come from state
  // recurrences, keeping the scan near-linear instead of trying every
  // period at every offset.
  std::unordered_map<uint32_t, size_t> LastSeen;
  LastSeen.reserve(N);
  size_t J = 0;
  while (J < N) {
    auto It = LastSeen.find(StateIds[J]);
    if (It == LastSeen.end()) {
      LastSeen.emplace(StateIds[J], J);
      ++J;
      continue;
    }
    size_t Q = It->second;       // candidate repeat start
    size_t Period = J - Q;       // candidate period
    // Extend the shift-match: M = largest m with X[Q+i] == X[Q+Period+i]
    // for all i < m (X pairing command and state id).
    size_t M = 0;
    while (Q + Period + M < N && SameAt(Q + M, Q + Period + M))
      ++M;
    size_t Count = M / Period + 1; // full repetitions covered
    if (Count >= MinCount) {
      Result.Repeats.push_back({static_cast<uint32_t>(Q),
                                static_cast<uint32_t>(Period),
                                static_cast<uint32_t>(Count)});
      // Restart the scan after the region; repeats stay disjoint.
      J = Q + Count * Period;
      LastSeen.clear();
      continue;
    }
    It->second = J;
    ++J;
  }
  return Result;
}

} // namespace meta
} // namespace optabs

#endif // OPTABS_META_TRACESEGMENTS_H
