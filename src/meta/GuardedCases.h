//===- GuardedCases.h - Synthesized backward transfer functions -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §8 of the paper: "manually defining the transfer functions of the
/// meta-analysis can be tedious and error-prone. One plausible solution is
/// to devise a general recipe for synthesizing these functions
/// automatically from a given abstract domain and parametric analysis."
///
/// This header is that recipe, for the large class of analyses whose
/// transfer functions are *finite guarded case splits*: each command's
/// semantics is a list of cases (guard, effect) where
///
///   - guards are formulas over the meta-analysis atoms, mutually
///     exclusive and exhaustive over (p, d) pairs, and
///   - effects are deterministic state transformers whose per-atom
///     weakest precondition the client can state locally.
///
/// From one such description the framework derives BOTH directions:
///
///   forward:   [a]_p(d)   = effect of the unique enabled case, applied
///   backward:  wp(A)      = \/_case  guard_case  /\  wp_case(A)
///
/// which satisfies the framework's requirement (2) *by construction*:
/// gamma(wp(A)) = {(p,d) | A holds of (p, [a]_p(d))}, because exactly one
/// guard is true of any (p, d) and each case is deterministic. The
/// thread-escape client (Figures 5/11) is implemented this way, and the
/// tests derive a further toy client to show the recipe is generic.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_META_GUARDEDCASES_H
#define OPTABS_META_GUARDEDCASES_H

#include "formula/Formula.h"

#include <cassert>
#include <vector>

namespace optabs {
namespace meta {

/// One transfer function as a guarded case split over effects of
/// client-defined type \p EffectT.
template <typename EffectT> class GuardedTransfer {
public:
  struct Case {
    formula::Formula Guard;
    EffectT Effect;
  };

  GuardedTransfer() = default;

  /// Appends a case. Guards must be pairwise exclusive and jointly
  /// exhaustive; apply() asserts the latter.
  GuardedTransfer &addCase(formula::Formula Guard, EffectT Effect) {
    Cases.push_back({std::move(Guard), std::move(Effect)});
    return *this;
  }

  const std::vector<Case> &cases() const { return Cases; }

  /// Forward direction: evaluates guards under \p Eval (truth of atoms in
  /// the concrete (p, d)) and returns \p Apply of the enabled case's
  /// effect.
  template <typename ApplyFn>
  auto apply(const formula::AtomEval &Eval, ApplyFn Apply) const {
    for (const Case &C : Cases)
      if (C.Guard.eval(Eval))
        return Apply(C.Effect);
    assert(false && "guarded cases must be exhaustive");
    return Apply(Cases.front().Effect);
  }

  /// Backward direction: the synthesized weakest precondition of atom
  /// \p A. \p WpUnderEffect(Effect, A) states the precondition for A to
  /// hold after that single effect - the only piece the client writes.
  template <typename WpFn>
  formula::Formula wpAtom(formula::AtomId A, WpFn WpUnderEffect) const {
    std::vector<formula::Formula> Disjuncts;
    Disjuncts.reserve(Cases.size());
    for (const Case &C : Cases)
      Disjuncts.push_back(
          formula::Formula::conj({C.Guard, WpUnderEffect(C.Effect, A)}));
    return formula::Formula::disj(std::move(Disjuncts));
  }

private:
  std::vector<Case> Cases;
};

} // namespace meta
} // namespace optabs

#endif // OPTABS_META_GUARDEDCASES_H
