//===- Escape.cpp - Parametric thread-escape analysis ------------------------===//

#include "escape/Escape.h"

namespace optabs {
namespace escape {

using namespace ir;
using formula::AtomId;
using formula::Dnf;
using formula::Formula;

namespace {
enum AtomKind { KSite = 0, KVar = 1, KField = 2 };
}

//===----------------------------------------------------------------------===//
// State and atoms
//===----------------------------------------------------------------------===//

EscState EscapeAnalysis::initialState() const {
  EscState D;
  D.Vals.assign(P.numVars() + P.numFields(),
                static_cast<uint8_t>(AbsVal::N));
  return D;
}

Formula EscapeAnalysis::locIs(uint32_t Loc, AbsVal O) const {
  if (Loc < P.numVars())
    return Formula::atom(atomVar(VarId(Loc), O));
  return Formula::atom(atomField(FieldId(Loc - P.numVars()), O));
}

bool EscapeAnalysis::evalAtom(AtomId A, const Param &Prm,
                              const EscState &D) const {
  unsigned Kind = A & 3;
  AbsVal O = static_cast<AbsVal>((A >> 2) & 3);
  uint32_t Idx = A >> 4;
  switch (Kind) {
  case KSite:
    if (O == AbsVal::L)
      return Prm.LSites.test(Idx);
    if (O == AbsVal::E)
      return !Prm.LSites.test(Idx);
    return false; // h.N never holds: p maps sites to L or E only
  case KVar:
    return D.Vals[Idx] == static_cast<uint8_t>(O);
  case KField:
    return D.Vals[P.numVars() + Idx] == static_cast<uint8_t>(O);
  }
  return false;
}

bool EscapeAnalysis::isParamAtom(AtomId A) const { return (A & 3) == KSite; }

std::string EscapeAnalysis::atomName(AtomId A) const {
  unsigned Kind = A & 3;
  AbsVal O = static_cast<AbsVal>((A >> 2) & 3);
  uint32_t Idx = A >> 4;
  switch (Kind) {
  case KSite:
    return P.allocName(AllocId(Idx)) + "." + absValName(O);
  case KVar:
    return P.varName(VarId(Idx)) + "." + absValName(O);
  case KField:
    return P.fieldName(FieldId(Idx)) + "." + absValName(O);
  }
  return "?";
}

std::optional<optabs::formula::LocationInfo> EscapeAnalysis::atomLocation(
    AtomId A) const {
  unsigned Kind = A & 3;
  uint32_t Idx = A >> 4;
  optabs::formula::LocationInfo Info;
  if (Kind == KSite) {
    Info.Values = {atomSite(AllocId(Idx), AbsVal::L),
                   atomSite(AllocId(Idx), AbsVal::E)};
    return Info;
  }
  for (AbsVal O : {AbsVal::N, AbsVal::L, AbsVal::E})
    Info.Values.push_back(Kind == KVar
                              ? atomVar(VarId(Idx), O)
                              : atomField(FieldId(Idx), O));
  return Info;
}

std::pair<uint32_t, bool> EscapeAnalysis::decodeParamAtom(AtomId A) const {
  assert(isParamAtom(A));
  AbsVal O = static_cast<AbsVal>((A >> 2) & 3);
  assert(O != AbsVal::N && "sites are mapped to L or E only");
  return {A >> 4, O == AbsVal::L};
}

EscParam EscapeAnalysis::paramFromBits(const std::vector<bool> &Bits) const {
  EscParam Prm;
  Prm.LSites = BitSet(P.numAllocs());
  for (size_t I = 0; I < Bits.size() && I < P.numAllocs(); ++I)
    if (Bits[I])
      Prm.LSites.set(I);
  return Prm;
}

std::string EscapeAnalysis::paramToString(const Param &Prm) const {
  std::string S = "[L:";
  bool First = true;
  Prm.LSites.forEach([&](size_t I) {
    if (!First)
      S += ",";
    First = false;
    S += P.allocName(AllocId(static_cast<uint32_t>(I)));
  });
  return S + "]";
}

Dnf EscapeAnalysis::notQ(CheckId Check) const {
  const CheckSite &Site = P.checkSite(Check);
  return Dnf::singleLit(formula::Lit::pos(atomVar(Site.Var, AbsVal::E)));
}

//===----------------------------------------------------------------------===//
// Case lists (Figure 5, one entry per semantic case)
//===----------------------------------------------------------------------===//

AbsVal EscapeAnalysis::valueOf(const ValueSrc &Src, const State &D,
                               const Param &Prm) const {
  switch (Src.K) {
  case ValueSrc::Const:
    return Src.C;
  case ValueSrc::OfLoc:
    return static_cast<AbsVal>(D.Vals[Src.Loc]);
  case ValueSrc::OfSite:
    return Prm.LSites.test(Src.Site) ? AbsVal::L : AbsVal::E;
  }
  return AbsVal::N;
}

EscapeAnalysis::Transfer EscapeAnalysis::cases(const Command &Cmd) const {
  Transfer T;
  auto Identity = [&T](Formula Guard) -> Transfer & {
    return T.addCase(std::move(Guard), Effect{});
  };
  auto Escape = [&T](Formula Guard) -> Transfer & {
    Effect E;
    E.IsEsc = true;
    return T.addCase(std::move(Guard), E);
  };
  auto Assign = [&T](Formula Guard, uint32_t Loc,
                     ValueSrc Src) -> Transfer & {
    Effect E;
    E.HasAssign = true;
    E.AssignLoc = Loc;
    E.Src = Src;
    return T.addCase(std::move(Guard), E);
  };
  auto ConstSrc = [](AbsVal V) {
    ValueSrc S;
    S.K = ValueSrc::Const;
    S.C = V;
    return S;
  };
  auto LocSrc = [](uint32_t Loc) {
    ValueSrc S;
    S.K = ValueSrc::OfLoc;
    S.Loc = Loc;
    return S;
  };
  auto SiteSrc = [](uint32_t Site) {
    ValueSrc S;
    S.K = ValueSrc::OfSite;
    S.Site = Site;
    return S;
  };
  Formula True = Formula::constant(true);

  switch (Cmd.Kind) {
  case CmdKind::Assume:
  case CmdKind::Check:
  case CmdKind::MethodCall: // type-state calls do not move pointers
    Identity(True);
    return T;

  case CmdKind::New:
    // [v = new h] d = d[v -> p(h)]
    Assign(True, locOfVar(Cmd.Dst), SiteSrc(Cmd.Alloc.index()));
    return T;

  case CmdKind::Copy:
    // [v = v'] d = d[v -> d(v')]
    Assign(True, locOfVar(Cmd.Dst), LocSrc(locOfVar(Cmd.Src)));
    return T;

  case CmdKind::Null:
    Assign(True, locOfVar(Cmd.Dst), ConstSrc(AbsVal::N));
    return T;

  case CmdKind::LoadGlobal:
    // Anything read from a global may escape.
    Assign(True, locOfVar(Cmd.Dst), ConstSrc(AbsVal::E));
    return T;

  case CmdKind::StoreGlobal: {
    // [g = v] d = esc(d) if d(v) = L, else d: publishing a local object
    // lets other threads reach every L object through it.
    Formula VL = locIs(locOfVar(Cmd.Src), AbsVal::L);
    Escape(VL);
    Identity(Formula::negate(VL));
    return T;
  }

  case CmdKind::LoadField: {
    // [v = v'.f] d = d[v -> d(f)] if d(v') = L, else d[v -> E].
    Formula BaseL = locIs(locOfVar(Cmd.Src), AbsVal::L);
    Assign(BaseL, locOfVar(Cmd.Dst), LocSrc(locOfField(Cmd.Field)));
    Assign(Formula::negate(BaseL), locOfVar(Cmd.Dst), ConstSrc(AbsVal::E));
    return T;
  }

  case CmdKind::StoreField: {
    // [v.f = v'] (Figure 5): the base's abstract value decides.
    uint32_t V = locOfVar(Cmd.Dst);
    uint32_t W = locOfVar(Cmd.Src);
    uint32_t F = locOfField(Cmd.Field);
    auto Both = [&](AbsVal A, AbsVal B) {
      return Formula::conj({locIs(F, A), locIs(W, B)});
    };
    // Base null: no continuation concretely; keeping d is sound.
    Identity(locIs(V, AbsVal::N));
    // Base escaped, value local: the local object becomes reachable from
    // an escaped one, so everything L collapses.
    Escape(Formula::conj({locIs(V, AbsVal::E), locIs(W, AbsVal::L)}));
    // Base escaped, value escaped-or-null: E stays closed; nothing to do.
    Identity(Formula::conj(
        {locIs(V, AbsVal::E), Formula::negate(locIs(W, AbsVal::L))}));
    // Base local: weak update of the field summary f over all L objects.
    Identity(Formula::conj(
        {locIs(V, AbsVal::L),
         Formula::disj({Both(AbsVal::N, AbsVal::N), Both(AbsVal::L, AbsVal::L),
                        Both(AbsVal::E, AbsVal::E)})}));
    Assign(Formula::conj({locIs(V, AbsVal::L),
                          Formula::disj({Both(AbsVal::N, AbsVal::L),
                                         Both(AbsVal::L, AbsVal::N)})}),
           F, ConstSrc(AbsVal::L));
    Assign(Formula::conj({locIs(V, AbsVal::L),
                          Formula::disj({Both(AbsVal::N, AbsVal::E),
                                         Both(AbsVal::E, AbsVal::N)})}),
           F, ConstSrc(AbsVal::E));
    // Field summary and stored value are L/E in some order: a single
    // abstract value cannot cover both, so collapse.
    Escape(Formula::conj(
        {locIs(V, AbsVal::L),
         Formula::disj({Both(AbsVal::L, AbsVal::E),
                        Both(AbsVal::E, AbsVal::L)})}));
    return T;
  }

  case CmdKind::Invoke:
    break;
  }
  assert(false && "Invoke must be expanded by the engine");
  return T;
}

//===----------------------------------------------------------------------===//
// Forward transfer
//===----------------------------------------------------------------------===//

EscState EscapeAnalysis::transfer(const Command &Cmd, const EscState &In,
                                  const Param &Prm) const {
  formula::AtomEval Eval = [&](AtomId A) { return evalAtom(A, Prm, In); };
  return cases(Cmd).apply(Eval, [&](const Effect &E) {
    if (E.IsEsc) {
      // esc(d): locals keep N or become E; field summaries reset to N.
      EscState Out = In;
      for (uint32_t V = 0; V < P.numVars(); ++V)
        if (Out.Vals[V] != static_cast<uint8_t>(AbsVal::N))
          Out.Vals[V] = static_cast<uint8_t>(AbsVal::E);
      for (uint32_t F = 0; F < P.numFields(); ++F)
        Out.Vals[P.numVars() + F] = static_cast<uint8_t>(AbsVal::N);
      return Out;
    }
    if (E.HasAssign) {
      EscState Out = In;
      Out.Vals[E.AssignLoc] = static_cast<uint8_t>(valueOf(E.Src, In, Prm));
      return Out;
    }
    return In;
  });
}

//===----------------------------------------------------------------------===//
// Backward weakest preconditions
//===----------------------------------------------------------------------===//

Formula EscapeAnalysis::wpUnderEffect(const Effect &E, uint32_t Loc,
                                      AbsVal O) const {
  if (E.IsEsc) {
    if (Loc >= P.numVars()) // fields reset to N
      return Formula::constant(O == AbsVal::N);
    switch (O) {
    case AbsVal::N:
      return locIs(Loc, AbsVal::N);
    case AbsVal::E:
      return Formula::disj({locIs(Loc, AbsVal::L), locIs(Loc, AbsVal::E)});
    case AbsVal::L:
      return Formula::constant(false);
    }
    return Formula::constant(false);
  }
  if (E.HasAssign && E.AssignLoc == Loc) {
    switch (E.Src.K) {
    case ValueSrc::Const:
      return Formula::constant(E.Src.C == O);
    case ValueSrc::OfLoc:
      return locIs(E.Src.Loc, O);
    case ValueSrc::OfSite:
      if (O == AbsVal::N)
        return Formula::constant(false);
      return Formula::atom(atomSite(AllocId(E.Src.Site), O));
    }
  }
  return locIs(Loc, O);
}

Formula EscapeAnalysis::wpAtom(const Command &Cmd, AtomId A) const {
  // Parameter atoms never change across commands.
  if (isParamAtom(A))
    return Formula::atom(A);
  unsigned Kind = A & 3;
  AbsVal O = static_cast<AbsVal>((A >> 2) & 3);
  uint32_t Idx = A >> 4;
  uint32_t Loc = Kind == KVar ? Idx : P.numVars() + Idx;

  return cases(Cmd).wpAtom(A, [&](const Effect &E, AtomId) {
    return wpUnderEffect(E, Loc, O);
  });
}

} // namespace escape
} // namespace optabs
