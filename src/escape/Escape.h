//===- Escape.h - Parametric thread-escape analysis ------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parametric thread-escape analysis of §3.2 / Figure 5 together with
/// its backward meta-analysis (Figure 11), packaged as an Analysis bundle
/// for the generic engines and the TRACER driver.
///
/// Abstract states map local variables and fields (of L-summarized
/// objects) to one of three abstract values:
///   N - definitely null,
///   L - a thread-local object (or null),
///   E - a possibly thread-escaping object (or null).
/// E-summarized objects are closed under reachability, so storing an L
/// object into an escaped one collapses the state via esc(). The
/// abstraction p maps each allocation site to L or E; cost = number of
/// L-mapped sites (the paper's preorder).
///
/// Implementation note: each command's transfer function is expressed as an
/// ordered list of mutually-exclusive guarded cases (guard formula over
/// atoms; effect = identity / esc / single assignment). The forward
/// transfer evaluates the guards on the concrete state; the backward
/// weakest precondition of an atom is assembled from the same case list,
/// so requirement (2) of the framework (§4) holds by construction. The
/// resulting formulas coincide with Figure 11's hand-written table (modulo
/// propositional equivalence), which the tests verify by property testing.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_ESCAPE_ESCAPE_H
#define OPTABS_ESCAPE_ESCAPE_H

#include "formula/Formula.h"
#include "formula/Normalize.h"
#include "ir/Program.h"
#include "meta/GuardedCases.h"
#include "support/BitSet.h"

#include <string>
#include <vector>

namespace optabs {
namespace escape {

/// The three abstract values.
enum class AbsVal : uint8_t { N = 0, L = 1, E = 2 };

inline const char *absValName(AbsVal V) {
  switch (V) {
  case AbsVal::N:
    return "N";
  case AbsVal::L:
    return "L";
  case AbsVal::E:
    return "E";
  }
  return "?";
}

/// Abstract state d : (Locals u Fields) -> {N, L, E}. The flat value
/// vector is indexed by variables first, then fields.
struct EscState {
  std::vector<uint8_t> Vals;

  friend bool operator==(const EscState &A, const EscState &B) {
    return A.Vals == B.Vals;
  }
  friend bool operator<(const EscState &A, const EscState &B) {
    return A.Vals < B.Vals;
  }
};

/// The abstraction p : H -> {L, E}; bit set = site mapped to L.
struct EscParam {
  BitSet LSites;
};

class EscapeAnalysis {
public:
  using Param = EscParam;
  using State = EscState;

  struct StateHash {
    size_t operator()(const EscState &S) const {
      uint64_t H = 0xcbf29ce484222325ULL;
      for (uint8_t B : S.Vals)
        H = (H ^ B) * 0x100000001b3ULL;
      return static_cast<size_t>(H);
    }
  };

  explicit EscapeAnalysis(const ir::Program &P) : P(P) {}

  //===--- forward ---------------------------------------------------------===
  State initialState() const;
  State transfer(const ir::Command &Cmd, const State &In,
                 const Param &Prm) const;

  /// Forgets dead variables (optional engine hook, see dataflow/Forward.h):
  /// resets their slots to the initial N. Field slots are shared program
  /// state and stay untouched.
  void pruneState(State &S, const BitSet &Live) const {
    const size_t NumVars = P.numVars();
    for (size_t V = 0; V < NumVars && V < S.Vals.size(); ++V)
      if (V >= Live.size() || !Live.test(V))
        S.Vals[V] = static_cast<uint8_t>(AbsVal::N);
  }

  //===--- queries ---------------------------------------------------------===
  /// Failure condition for check(v) = "local(v)?": the queried variable may
  /// point to a potentially escaping object, i.e. the atom v.E.
  formula::Dnf notQ(ir::CheckId Check) const;

  //===--- backward meta-analysis ------------------------------------------===
  formula::Formula wpAtom(const ir::Command &Cmd, formula::AtomId A) const;
  bool evalAtom(formula::AtomId A, const Param &Prm, const State &D) const;
  bool isParamAtom(formula::AtomId A) const;
  std::string atomName(formula::AtomId A) const;

  /// Semantic normalization hooks: every variable/field holds exactly one
  /// of N/L/E, and every site maps to exactly one of L/E; these locations
  /// let the meta-analysis keep formulas as compact as Figure 11's.
  std::optional<formula::LocationInfo> atomLocation(formula::AtomId A) const;
  std::optional<formula::Cube> refineCube(const formula::Cube &C) const {
    return formula::refineCubeByLocations(
        C, [this](formula::AtomId A) { return atomLocation(A); });
  }

  //===--- parameter codec --------------------------------------------------===
  uint32_t numParamBits() const { return P.numAllocs(); }
  std::pair<uint32_t, bool> decodeParamAtom(formula::AtomId A) const;
  Param paramFromBits(const std::vector<bool> &Bits) const;
  uint32_t paramCost(const Param &Prm) const {
    return static_cast<uint32_t>(Prm.LSites.count());
  }
  std::string paramToString(const Param &Prm) const;

  //===--- atom constructors (public for tests and examples) ----------------===
  /// Atom h.o: the abstraction maps site h to o (o in {L, E}).
  static formula::AtomId atomSite(ir::AllocId H, AbsVal O) {
    return (H.index() << 4) | (static_cast<uint32_t>(O) << 2) | 0;
  }
  /// Atom v.o: the state binds variable v to o.
  static formula::AtomId atomVar(ir::VarId V, AbsVal O) {
    return (V.index() << 4) | (static_cast<uint32_t>(O) << 2) | 1;
  }
  /// Atom f.o: the state binds field f to o.
  static formula::AtomId atomField(ir::FieldId F, AbsVal O) {
    return (F.index() << 4) | (static_cast<uint32_t>(O) << 2) | 2;
  }

  /// Flat location index of a variable / field within EscState::Vals.
  uint32_t locOfVar(ir::VarId V) const { return V.index(); }
  uint32_t locOfField(ir::FieldId F) const {
    return P.numVars() + F.index();
  }

private:
  //===--- single-source-of-truth case lists --------------------------------===
  //
  // Each command's semantics is one meta::GuardedTransfer (the §8 recipe):
  // the forward transfer applies the enabled case, the backward transfer
  // is synthesized from per-effect weakest preconditions.

  /// Where an assigned value comes from.
  struct ValueSrc {
    enum Kind : uint8_t { Const, OfLoc, OfSite } K = Const;
    AbsVal C = AbsVal::N;  ///< Const
    uint32_t Loc = 0;      ///< OfLoc: flat location index
    uint32_t Site = 0;     ///< OfSite: allocation site index (reads p)
  };

  /// The effect of one case: esc(d), a single assignment, or identity.
  struct Effect {
    bool IsEsc = false;     ///< apply esc(d)
    bool HasAssign = false; ///< otherwise identity (unless IsEsc)
    uint32_t AssignLoc = 0;
    ValueSrc Src;
  };

  using Transfer = meta::GuardedTransfer<Effect>;

  /// Builds the case list of \p Cmd (Figure 5, one entry per semantic
  /// case).
  Transfer cases(const ir::Command &Cmd) const;

  /// wp of atom (Loc = O) under a single effect.
  formula::Formula wpUnderEffect(const Effect &E, uint32_t Loc,
                                 AbsVal O) const;

  /// Formula for "location Loc currently holds O".
  formula::Formula locIs(uint32_t Loc, AbsVal O) const;

  AbsVal valueOf(const ValueSrc &Src, const State &D, const Param &Prm) const;

  const ir::Program &P;
};

} // namespace escape
} // namespace optabs

#endif // OPTABS_ESCAPE_ESCAPE_H
