//===- MinCostSat.cpp - Viable-set CNF and minimum-cost models --------------===//

#include "tracer/MinCostSat.h"

#include "support/Budget.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace optabs {
namespace tracer {

namespace {

/// Order-sensitive hash of a normalized (sorted, deduped) clause. The same
/// mixing as signature() always used, factored out so addClause can index
/// clauses by it.
uint64_t hashClause(const std::vector<BoolLit> &Lits) {
  uint64_t H = 0x13198a2e03707344ULL;
  for (const BoolLit &L : Lits) {
    uint64_t X = (static_cast<uint64_t>(L.Var) << 1) | L.Positive;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    H = (H ^ X) * 0x100000001b3ULL;
  }
  return H;
}

} // namespace

void Cnf::addClause(std::vector<BoolLit> Lits) {
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  for (size_t I = 0; I + 1 < Lits.size(); ++I)
    if (Lits[I].Var == Lits[I + 1].Var)
      return; // tautology: x or !x
  if (Lits.empty())
    ContainsEmptyClause = true;
  uint64_t H = hashClause(Lits);
  auto &Bucket = ClauseIndex[H];
  // Exact comparison on collision: hash-only dedup could silently drop a
  // distinct learned clause, weakening the viable set unsoundly.
  for (uint32_t Idx : Bucket)
    if (Clauses[Idx] == Lits)
      return;
  Bucket.push_back(static_cast<uint32_t>(Clauses.size()));
  Clauses.push_back(std::move(Lits));
  ClauseHashes.push_back(H);
}

bool Cnf::eval(const std::vector<bool> &Assignment) const {
  for (const auto &Clause : Clauses) {
    bool Sat = false;
    for (const BoolLit &L : Clause) {
      bool Val = L.Var < Assignment.size() && Assignment[L.Var];
      if (Val == L.Positive) {
        Sat = true;
        break;
      }
    }
    if (!Sat)
      return false;
  }
  return true;
}

uint64_t Cnf::signature() const {
  // Order-independent: clauses are combined commutatively so that the same
  // clause set learned in different orders groups together. Reuses the
  // per-clause hashes computed at insertion time.
  uint64_t Sig = 0x243f6a8885a308d3ULL;
  for (uint64_t H : ClauseHashes)
    Sig += H * 0x9e3779b97f4a7c15ULL;
  return Sig ^ (Clauses.size() << 1) ^ ContainsEmptyClause;
}

namespace {

/// DPLL branch-and-bound over only the variables mentioned in the CNF.
class Solver {
public:
  explicit Solver(const Cnf &F) {
    for (const auto &Clause : F.clauses()) {
      Clauses.push_back({});
      for (const BoolLit &L : Clause) {
        auto [It, Inserted] =
            VarIndex.emplace(L.Var, static_cast<uint32_t>(Vars.size()));
        if (Inserted)
          Vars.push_back(L.Var);
        Clauses.back().push_back({It->second, L.Positive});
      }
    }
    Assign.assign(Vars.size(), Unassigned);
  }

  std::optional<MinCostModel> solve(uint32_t NumVars,
                                    support::BudgetGate *G = nullptr) {
    Gate = G;
    Aborted = false;
    BestCost = UINT32_MAX;
    search(0);
    if (Aborted)
      return std::nullopt; // partial search: best-so-far minimality unproven
    if (BestCost == UINT32_MAX)
      return std::nullopt;
    MinCostModel Model;
    Model.Assignment.assign(NumVars, false);
    Model.Cost = BestCost;
    for (size_t I = 0; I < Vars.size(); ++I)
      if (Best[I] == True)
        Model.Assignment[Vars[I]] = true;
    return Model;
  }

private:
  enum Value : uint8_t { False = 0, True = 1, Unassigned = 2 };

  /// Unit propagation. Returns false on conflict; appends assigned local
  /// vars to \p Trail so the caller can undo.
  bool propagate(std::vector<uint32_t> &Trail, uint32_t &TrueCount) {
    bool Again = true;
    while (Again) {
      Again = false;
      for (const auto &Clause : Clauses) {
        uint32_t Unset = 0;
        int UnsetIdx = -1;
        bool Sat = false;
        for (size_t I = 0; I < Clause.size(); ++I) {
          const BoolLit &L = Clause[I];
          Value V = Assign[L.Var];
          if (V == Unassigned) {
            ++Unset;
            UnsetIdx = static_cast<int>(I);
          } else if ((V == True) == L.Positive) {
            Sat = true;
            break;
          }
        }
        if (Sat)
          continue;
        if (Unset == 0)
          return false; // conflict
        if (Unset == 1) {
          const BoolLit &L = Clause[static_cast<size_t>(UnsetIdx)];
          Assign[L.Var] = L.Positive ? True : False;
          TrueCount += L.Positive;
          Trail.push_back(L.Var);
          Again = true;
        }
      }
    }
    return true;
  }

  /// Lower bound: each currently-unsatisfied clause whose unassigned
  /// literals are all positive needs at least one more true bit; clauses
  /// over disjoint variables need distinct bits (greedy disjoint count).
  uint32_t lowerBound() const {
    uint32_t Bound = 0;
    std::vector<bool> Used(Assign.size(), false);
    for (const auto &Clause : Clauses) {
      bool Sat = false;
      bool AllPositive = true;
      bool Disjoint = true;
      for (const BoolLit &L : Clause) {
        Value V = Assign[L.Var];
        if (V == Unassigned) {
          AllPositive &= L.Positive;
          Disjoint &= !Used[L.Var];
        } else if ((V == True) == L.Positive) {
          Sat = true;
          break;
        }
      }
      if (Sat || !AllPositive || !Disjoint)
        continue;
      ++Bound;
      for (const BoolLit &L : Clause)
        if (Assign[L.Var] == Unassigned)
          Used[L.Var] = true;
    }
    return Bound;
  }

  void search(uint32_t TrueCount) {
    std::vector<uint32_t> Trail;
    if (!propagate(Trail, TrueCount)) {
      ++Conflicts;
      undo(Trail);
      return;
    }
    if (TrueCount + lowerBound() >= BestCost) {
      undo(Trail);
      return;
    }
    // Branch on the first unassigned variable of the first unsatisfied
    // clause; if all clauses are satisfied, the remaining variables go
    // false and we have a (new best) model.
    int BranchVar = -1;
    for (const auto &Clause : Clauses) {
      bool Sat = false;
      int Candidate = -1;
      for (const BoolLit &L : Clause) {
        Value V = Assign[L.Var];
        if (V == Unassigned) {
          if (Candidate < 0)
            Candidate = static_cast<int>(L.Var);
        } else if ((V == True) == L.Positive) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        assert(Candidate >= 0 && "conflict should have been caught above");
        BranchVar = Candidate;
        break;
      }
    }
    if (BranchVar < 0) {
      BestCost = TrueCount;
      Best = Assign;
      for (Value &V : Best)
        if (V == Unassigned)
          V = False;
      undo(Trail);
      return;
    }
    // False first: finds cheap models early, sharpening the bound.
    ++Decisions;
    if (Gate && !Gate->charge()) {
      Aborted = true;
      undo(Trail);
      return;
    }
    Assign[BranchVar] = False;
    search(TrueCount);
    if (!Aborted) {
      Assign[BranchVar] = True;
      search(TrueCount + 1);
    }
    Assign[BranchVar] = Unassigned;
    undo(Trail);
  }

  /// Unassigns unit-propagated variables; TrueCount is per-frame, so there
  /// is nothing else to roll back.
  void undo(const std::vector<uint32_t> &Trail) {
    for (uint32_t V : Trail)
      Assign[V] = Unassigned;
  }

  std::vector<std::vector<BoolLit>> Clauses; ///< literals use local var ids
  std::unordered_map<uint32_t, uint32_t> VarIndex;
  std::vector<uint32_t> Vars; ///< local id -> original variable
  std::vector<Value> Assign;
  std::vector<Value> Best;
  uint32_t BestCost = UINT32_MAX;
  support::BudgetGate *Gate = nullptr;
  bool Aborted = false;

public:
  uint64_t Conflicts = 0; ///< propagation dead-ends hit during search
  uint64_t Decisions = 0; ///< branch points explored
};

} // namespace

std::optional<MinCostModel> solveMinCost(const Cnf &F, uint32_t NumVars,
                                         support::BudgetGate *Gate) {
  if (F.hasEmptyClause()) {
    if (support::metricsEnabled())
      support::MetricRegistry::global()
          .counter("optabs_mincostsat_calls_total")
          .add(1);
    return std::nullopt;
  }
  Solver S(F);
  std::optional<MinCostModel> Model = S.solve(NumVars, Gate);
  if (support::metricsEnabled()) {
    auto &Reg = support::MetricRegistry::global();
    static auto &Calls = Reg.counter("optabs_mincostsat_calls_total");
    static auto &Conflicts = Reg.counter("optabs_mincostsat_conflicts_total");
    static auto &Decisions = Reg.counter("optabs_mincostsat_decisions_total");
    static auto &Clauses = Reg.histogram("optabs_mincostsat_clauses");
    Calls.add(1);
    Conflicts.add(S.Conflicts);
    Decisions.add(S.Decisions);
    Clauses.record(F.size());
  }
  return Model;
}

} // namespace tracer
} // namespace optabs
