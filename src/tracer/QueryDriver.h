//===- QueryDriver.h - The TRACER algorithm --------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TRACER (Algorithm 1): the iterative forward-backward analysis that
/// resolves each query either with a minimum-cost abstraction that proves
/// it or with an impossibility verdict, plus the multi-query optimization
/// of §6 (queries whose sets of unviable abstractions coincide are grouped
/// and share forward runs).
///
/// The driver is generic over an Analysis bundle supplying both the forward
/// client (§3.2) and the backward meta-analysis client (§4.1):
///
/// \code
///   struct Analysis {
///     using Param = ...;
///     using State = ...;
///     struct StateHash { size_t operator()(const State &) const; };
///     // -- forward analysis (Figure 3/4/5)
///     State transfer(const ir::Command &, const State &, const Param &)
///         const;
///     State initialState() const;                  // d_I
///     // -- queries
///     formula::Dnf notQ(ir::CheckId) const;        // failure condition
///     // -- backward meta-analysis (Figures 7-11)
///     formula::Formula wpAtom(const ir::Command &, formula::AtomId) const;
///     bool evalAtom(formula::AtomId, const Param &, const State &) const;
///     bool isParamAtom(formula::AtomId) const;
///     std::string atomName(formula::AtomId) const;
///     // -- parameter-space codec (P, cost order |.|)
///     uint32_t numParamBits() const;
///     // (bit, value of that bit that makes the atom true)
///     std::pair<uint32_t, bool> decodeParamAtom(formula::AtomId) const;
///     Param paramFromBits(const std::vector<bool> &) const;
///     uint32_t paramCost(const Param &) const;     // = popcount
///     std::string paramToString(const Param &) const;
///   };
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_QUERYDRIVER_H
#define OPTABS_TRACER_QUERYDRIVER_H

#include "dataflow/Forward.h"
#include "meta/Backward.h"
#include "support/Timer.h"
#include "tracer/MinCostSat.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace optabs {
namespace tracer {

/// Per-query verdicts. Unresolved corresponds to the paper's queries that
/// exhausted the time budget (Figure 12's third category).
enum class Verdict : uint8_t { Proven, Impossible, Unresolved };

inline const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Proven:
    return "proven";
  case Verdict::Impossible:
    return "impossible";
  case Verdict::Unresolved:
    return "unresolved";
  }
  return "?";
}

/// Outcome of one query.
struct QueryOutcome {
  ir::CheckId Check;
  Verdict V = Verdict::Unresolved;
  unsigned Iterations = 0; ///< CEGAR iterations (forward runs) consumed
  double Seconds = 0;      ///< attributed resolution time
  uint32_t CheapestCost = 0;     ///< |p| of the proving abstraction
  std::string CheapestParam;     ///< canonical form, for Table 4 grouping
};

/// How the next abstraction is chosen after a failed proof attempt. The
/// non-default strategies are the baselines the paper's Related Work
/// contrasts TRACER with.
enum class SearchStrategy : uint8_t {
  /// Algorithm 1: backward meta-analysis eliminates whole sets of
  /// abstractions; next is a minimum-cost viable one.
  Tracer,
  /// Strawman CEGAR: each iteration eliminates exactly the current
  /// abstraction. Sound and (eventually) optimal, but the search space is
  /// 2^N, so it exhausts any budget beyond toy families.
  EliminateCurrent,
  /// Monotone refinement in the style of demand-driven pointer analyses
  /// (Sridharan-Bodik et al.): grow the abstraction by every parameter the
  /// failure is blamed on. Fast, but over-refines (no minimality) and can
  /// never conclude impossibility.
  GreedyGrow,
};

inline const char *strategyName(SearchStrategy S) {
  switch (S) {
  case SearchStrategy::Tracer:
    return "tracer";
  case SearchStrategy::EliminateCurrent:
    return "eliminate-current";
  case SearchStrategy::GreedyGrow:
    return "greedy-grow";
  }
  return "?";
}

/// Tuning knobs (defaults follow the paper's chosen operating point k=5).
struct TracerOptions {
  unsigned K = 5;                  ///< dropk beam width; 0 = no underapprox
  unsigned MaxItersPerQuery = 100; ///< per-query iteration budget
  double TimeBudgetSeconds = 1e12; ///< whole-driver wall-clock budget
  bool GroupQueries = true;        ///< §6 unviable-set grouping
  size_t ProductSoftCap = 4096;
  /// Per-trace budget for the backward meta-analysis; 0 = unbounded. A
  /// timed-out meta-analysis run leaves its query unresolved (this is how
  /// the exact-mode configuration of §6 times out).
  double BackwardTimeoutSeconds = 0;
  /// Abstraction-selection strategy (see SearchStrategy).
  SearchStrategy Strategy = SearchStrategy::Tracer;
  /// Counterexamples analyzed per failed iteration. 1 reproduces the
  /// paper; larger values analyze several distinct failing states' traces
  /// and conjoin everything learned - a lightweight realization of §8's
  /// "DAG counterexamples" direction.
  unsigned TracesPerIteration = 1;
};

/// Aggregate statistics of one driver run.
struct DriverStats {
  unsigned Rounds = 0;
  unsigned ForwardRuns = 0;  ///< distinct (abstraction) forward analyses
  unsigned BackwardRuns = 0; ///< meta-analysis trace runs
  unsigned SolverCalls = 0;
  size_t MaxFormulaCubes = 0; ///< largest backward formula encountered
};

template <typename Analysis> class QueryDriver {
public:
  using Param = typename Analysis::Param;
  using State = typename Analysis::State;
  using Forward = dataflow::ForwardAnalysis<Analysis>;
  using Backward = meta::BackwardMetaAnalysis<Analysis>;

  QueryDriver(const ir::Program &P, const Analysis &A,
              TracerOptions Options = TracerOptions())
      : P(P), A(A), Options(Options) {}

  /// Resolves all \p Queries; the result vector is parallel to the input.
  std::vector<QueryOutcome> run(const std::vector<ir::CheckId> &Queries) {
    if (Options.Strategy == SearchStrategy::GreedyGrow)
      return runGreedy(Queries);
    Timer Total;
    Stats = DriverStats();

    struct QueryRec {
      Cnf Viable;
      bool Done = false;
      formula::Dnf NotQ;
    };
    std::vector<QueryOutcome> Outcomes(Queries.size());
    std::vector<QueryRec> Recs(Queries.size());
    for (size_t I = 0; I < Queries.size(); ++I) {
      Outcomes[I].Check = Queries[I];
      Recs[I].NotQ = A.notQ(Queries[I]);
    }

    meta::BackwardConfig BwdConfig;
    BwdConfig.K = Options.K;
    BwdConfig.ProductSoftCap = Options.ProductSoftCap;
    BwdConfig.TimeoutSeconds = Options.BackwardTimeoutSeconds;
    Backward Bwd(P, A, BwdConfig);
    State Init = A.initialState();

    size_t Unresolved = Queries.size();
    while (Unresolved > 0 && Total.seconds() < Options.TimeBudgetSeconds) {
      ++Stats.Rounds;

      // Group unresolved queries by viable-set signature (§6). Without
      // grouping, every query is its own group but forward runs for equal
      // abstractions are still shared within the round.
      std::map<uint64_t, std::vector<size_t>> Groups;
      for (size_t I = 0; I < Queries.size(); ++I) {
        if (Recs[I].Done)
          continue;
        uint64_t Key = Options.GroupQueries
                           ? Recs[I].Viable.signature()
                           : static_cast<uint64_t>(I);
        Groups[Key].push_back(I);
      }

      // One min-cost solve per group; one forward run per distinct
      // abstraction this round.
      std::map<std::string, std::unique_ptr<Forward>> Runs;
      std::map<std::string, double> RunTime;
      std::map<std::string, size_t> RunUsers;

      struct GroupPlan {
        std::vector<size_t> Members;
        std::optional<Param> Abs;
        std::vector<bool> Bits;
        std::string AbsKey;
      };
      std::vector<GroupPlan> Plans;
      for (auto &[Sig, Members] : Groups) {
        (void)Sig;
        GroupPlan Plan;
        Plan.Members = Members;
        ++Stats.SolverCalls;
        auto Model =
            solveMinCost(Recs[Members[0]].Viable, A.numParamBits());
        if (Model) {
          Plan.Abs = A.paramFromBits(Model->Assignment);
          Plan.Bits = std::move(Model->Assignment);
          Plan.AbsKey = A.paramToString(*Plan.Abs);
          // Without grouping, each query runs its own forward analysis
          // (the "technique run separately per query" baseline of §6).
          if (!Options.GroupQueries)
            Plan.AbsKey += "#" + std::to_string(Plans.size());
          RunUsers[Plan.AbsKey] += Members.size();
        }
        Plans.push_back(std::move(Plan));
      }

      for (GroupPlan &Plan : Plans) {
        if (!Plan.Abs) {
          // Viable set empty: the analysis cannot prove these queries with
          // any abstraction (Algorithm 1, line 6).
          for (size_t I : Plan.Members) {
            Recs[I].Done = true;
            Outcomes[I].V = Verdict::Impossible;
            --Unresolved;
          }
          continue;
        }
        auto RunIt = Runs.find(Plan.AbsKey);
        if (RunIt == Runs.end()) {
          Timer RunTimer;
          auto Run = std::make_unique<Forward>(P, A, *Plan.Abs);
          Run->run(Init);
          ++Stats.ForwardRuns;
          RunTime[Plan.AbsKey] = RunTimer.seconds();
          RunIt = Runs.emplace(Plan.AbsKey, std::move(Run)).first;
        }
        Forward &Run = *RunIt->second;
        double SharedTime =
            RunTime[Plan.AbsKey] / static_cast<double>(RunUsers[Plan.AbsKey]);

        for (size_t I : Plan.Members) {
          if (Total.seconds() >= Options.TimeBudgetSeconds)
            break;
          Timer QueryTimer;
          QueryOutcome &Out = Outcomes[I];
          QueryRec &Rec = Recs[I];
          ++Out.Iterations;

          // D = F_p[s]({d_I}) restricted to the check, intersected with
          // gamma(not q) (line 9).
          std::vector<State> Fails;
          for (const State &D : Run.statesAtCheck(Out.Check)) {
            bool IsFail = Rec.NotQ.eval([&](formula::AtomId Atom) {
              return A.evalAtom(Atom, *Plan.Abs, D);
            });
            if (IsFail)
              Fails.push_back(D);
          }
          if (Fails.empty()) {
            // Proven with a minimum abstraction (line 11).
            Rec.Done = true;
            Out.V = Verdict::Proven;
            Out.CheapestCost = A.paramCost(*Plan.Abs);
            Out.CheapestParam = A.paramToString(*Plan.Abs);
            Out.Seconds += SharedTime + QueryTimer.seconds();
            --Unresolved;
            continue;
          }
          if (Out.Iterations >= Options.MaxItersPerQuery) {
            Rec.Done = true;
            Out.V = Verdict::Unresolved;
            Out.Seconds += SharedTime + QueryTimer.seconds();
            --Unresolved;
            continue;
          }

          if (Options.Strategy == SearchStrategy::EliminateCurrent) {
            // Baseline: rule out exactly the current abstraction.
            std::vector<BoolLit> Clause;
            for (uint32_t Bit = 0; Bit < A.numParamBits(); ++Bit)
              Clause.push_back(BoolLit{Bit, Bit < Plan.Bits.size()
                                                ? !Plan.Bits[Bit]
                                                : true});
            Rec.Viable.addClause(std::move(Clause));
            Out.Seconds += SharedTime + QueryTimer.seconds();
            continue;
          }

          // Lines 13-15: counterexample trace(s), backward meta-analysis,
          // and viable-set strengthening. Analyzing several distinct
          // failing states' traces per iteration conjoins everything they
          // rule out (§8's DAG-counterexample direction, in trace form).
          std::sort(Fails.begin(), Fails.end());
          size_t WantTraces = std::max(1u, Options.TracesPerIteration);
          std::vector<ir::Trace> Traces;
          for (const State &Bad : Fails) {
            if (Traces.size() >= WantTraces)
              break;
            for (ir::Trace &T : Run.extractTraces(
                     Out.Check, Bad, WantTraces - Traces.size()))
              Traces.push_back(std::move(T));
          }
          assert(!Traces.empty() &&
                 "failing state must be witnessed by a trace");
          if (Traces.empty()) {
            // Defensive: without a counterexample nothing can be learned
            // and retrying the same abstraction would not terminate.
            Rec.Done = true;
            Out.V = Verdict::Unresolved;
            Out.Seconds += SharedTime + QueryTimer.seconds();
            --Unresolved;
            continue;
          }
          bool MetaTimedOut = false;
          for (const ir::Trace &T : Traces) {
            std::vector<State> States = Run.replay(T, Init);
            ++Stats.BackwardRuns;
            std::optional<formula::Dnf> F =
                Bwd.run(T, *Plan.Abs, States, Rec.NotQ);
            Stats.MaxFormulaCubes =
                std::max(Stats.MaxFormulaCubes, Bwd.stats().MaxCubes);
            if (!F) {
              // The meta-analysis timed out on this trace: nothing sound
              // can be learned, so the query stays unresolved.
              MetaTimedOut = true;
              break;
            }
            formula::Dnf Unviable =
                Bwd.projectToParams(*F, *Plan.Abs, Init);
            addUnviable(Rec.Viable, Unviable);
          }
          if (MetaTimedOut) {
            Rec.Done = true;
            Out.V = Verdict::Unresolved;
            Out.Seconds += SharedTime + QueryTimer.seconds();
            --Unresolved;
            continue;
          }
          // Progress (Theorem 3): the current abstraction is always among
          // the eliminated ones, so the next round cannot repeat it.
          assert(!Rec.Viable.eval(Plan.Bits) &&
                 "meta-analysis failed to eliminate the current abstraction");
          Out.Seconds += SharedTime + QueryTimer.seconds();
        }
      }
    }

    for (size_t I = 0; I < Queries.size(); ++I) {
      if (!Recs[I].Done)
        Outcomes[I].V = Verdict::Unresolved;
    }
    TotalSeconds = Total.seconds();
    return Outcomes;
  }

  const DriverStats &stats() const { return Stats; }
  double totalSeconds() const { return TotalSeconds; }

private:
  /// The GreedyGrow baseline: per query, monotonically switch on every
  /// parameter bit the failed proof is blamed on. Never shrinks, never
  /// optimizes, and cannot conclude impossibility (failures with no new
  /// blame are reported unresolved) - the behavior the paper attributes to
  /// classic refinement-based analyses.
  std::vector<QueryOutcome> runGreedy(const std::vector<ir::CheckId> &Queries) {
    Timer Total;
    Stats = DriverStats();
    meta::BackwardConfig BwdConfig;
    BwdConfig.K = Options.K;
    BwdConfig.ProductSoftCap = Options.ProductSoftCap;
    BwdConfig.TimeoutSeconds = Options.BackwardTimeoutSeconds;
    Backward Bwd(P, A, BwdConfig);
    State Init = A.initialState();

    // Forward runs cache shared across queries and iterations.
    std::map<std::vector<bool>, std::unique_ptr<Forward>> Runs;
    auto GetRun = [&](const std::vector<bool> &Bits) -> Forward & {
      auto It = Runs.find(Bits);
      if (It == Runs.end()) {
        auto Run = std::make_unique<Forward>(P, A, A.paramFromBits(Bits));
        Run->run(Init);
        ++Stats.ForwardRuns;
        It = Runs.emplace(Bits, std::move(Run)).first;
      }
      return *It->second;
    };

    std::vector<QueryOutcome> Outcomes(Queries.size());
    for (size_t I = 0; I < Queries.size(); ++I) {
      QueryOutcome &Out = Outcomes[I];
      Out.Check = Queries[I];
      Timer QueryTimer;
      formula::Dnf NotQ = A.notQ(Out.Check);
      std::vector<bool> Bits(A.numParamBits(), false);

      while (true) {
        if (Total.seconds() >= Options.TimeBudgetSeconds ||
            Out.Iterations >= Options.MaxItersPerQuery)
          break; // stays Unresolved
        ++Out.Iterations;
        ++Stats.Rounds;
        Param Prm = A.paramFromBits(Bits);
        Forward &Run = GetRun(Bits);
        std::vector<State> Fails;
        for (const State &D : Run.statesAtCheck(Out.Check))
          if (NotQ.eval([&](formula::AtomId Atom) {
                return A.evalAtom(Atom, Prm, D);
              }))
            Fails.push_back(D);
        if (Fails.empty()) {
          Out.V = Verdict::Proven;
          Out.CheapestCost = A.paramCost(Prm); // NOT minimal in general
          Out.CheapestParam = A.paramToString(Prm);
          break;
        }
        std::sort(Fails.begin(), Fails.end());
        auto T = Run.extractTrace(Out.Check, Fails.front());
        assert(T && "failing state must be witnessed by a trace");
        std::vector<State> States = Run.replay(*T, Init);
        ++Stats.BackwardRuns;
        std::optional<formula::Dnf> F = Bwd.run(*T, Prm, States, NotQ);
        if (!F)
          break; // meta-analysis budget: Unresolved
        formula::Dnf Unviable = Bwd.projectToParams(*F, Prm, Init);
        // Blame: every parameter mentioned by the failure condition.
        std::vector<bool> Grown = Bits;
        for (const formula::Cube &Cube : Unviable.cubes())
          for (formula::Lit L : Cube.literals())
            Grown[A.decodeParamAtom(L.atom()).first] = true;
        if (Grown == Bits)
          break; // no new blame: give up (cannot conclude impossibility)
        Bits = std::move(Grown);
      }
      Out.Seconds = QueryTimer.seconds();
    }
    TotalSeconds = Total.seconds();
    return Outcomes;
  }

  /// Conjoins the negation of the unviable DNF into the viable CNF: each
  /// unviable cube becomes one clause of negated literals.
  void addUnviable(Cnf &Viable, const formula::Dnf &Unviable) const {
    for (const formula::Cube &Cube : Unviable.cubes()) {
      std::vector<BoolLit> Clause;
      for (formula::Lit L : Cube.literals()) {
        auto [Bit, ValueWhenTrue] = A.decodeParamAtom(L.atom());
        bool AtomTruePolarity = !L.isNeg();
        // Literal holds iff bit == (ValueWhenTrue == AtomTruePolarity
        // ? true : false)... i.e. the literal constrains the bit to
        // (ValueWhenTrue == AtomTruePolarity). The clause needs its
        // negation.
        bool BitMustBe = (ValueWhenTrue == AtomTruePolarity);
        Clause.push_back(BoolLit{Bit, !BitMustBe});
      }
      Viable.addClause(std::move(Clause));
    }
  }

  /// Deterministic tie-break for the failing state choice; clients define
  /// operator< on their states.
  static bool less(const State &A, const State &B) { return A < B; }

  const ir::Program &P;
  const Analysis &A;
  TracerOptions Options;
  DriverStats Stats;
  double TotalSeconds = 0;
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_QUERYDRIVER_H
