//===- QueryDriver.h - The TRACER algorithm --------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TRACER (Algorithm 1): the iterative forward-backward analysis that
/// resolves each query either with a minimum-cost abstraction that proves
/// it or with an impossibility verdict, plus the multi-query optimization
/// of §6 (queries whose sets of unviable abstractions coincide are grouped
/// and share forward runs).
///
/// The driver is generic over an Analysis bundle supplying both the forward
/// client (§3.2) and the backward meta-analysis client (§4.1):
///
/// \code
///   struct Analysis {
///     using Param = ...;
///     using State = ...;
///     struct StateHash { size_t operator()(const State &) const; };
///     // -- forward analysis (Figure 3/4/5)
///     State transfer(const ir::Command &, const State &, const Param &)
///         const;
///     State initialState() const;                  // d_I
///     // -- queries
///     formula::Dnf notQ(ir::CheckId) const;        // failure condition
///     // -- backward meta-analysis (Figures 7-11)
///     formula::Formula wpAtom(const ir::Command &, formula::AtomId) const;
///     bool evalAtom(formula::AtomId, const Param &, const State &) const;
///     bool isParamAtom(formula::AtomId) const;
///     std::string atomName(formula::AtomId) const;
///     // -- parameter-space codec (P, cost order |.|)
///     uint32_t numParamBits() const;
///     // (bit, value of that bit that makes the atom true)
///     std::pair<uint32_t, bool> decodeParamAtom(formula::AtomId) const;
///     Param paramFromBits(const std::vector<bool> &) const;
///     uint32_t paramCost(const Param &) const;     // = popcount
///     std::string paramToString(const Param &) const;
///   };
/// \endcode
///
/// Concurrency (TracerOptions::NumThreads): each round is a sequence of
/// barrier-separated stages - plan (sequential), forward-run construction
/// (parallel per distinct abstraction), query classification (parallel per
/// query, read-only), trace extraction (parallel per forward run), backward
/// meta-analysis (parallel per counterexample trace, one BackwardMetaAnalysis
/// instance per worker), merge (sequential, in query order). All results and
/// non-timing statistics are bitwise independent of the worker count because
/// every parallel stage writes into pre-sized slots that the sequential merge
/// folds in the same order the single-threaded driver would. Completed
/// forward runs are memoized across rounds, queries, and run() calls in a
/// ForwardRunCache keyed by the abstraction bit-vector.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_QUERYDRIVER_H
#define OPTABS_TRACER_QUERYDRIVER_H

#include "dataflow/Forward.h"
#include "ir/Liveness.h"
#include "meta/Backward.h"
#include "support/Budget.h"
#include "support/Config.h"
#include "support/FaultInjection.h"
#include "support/Invariants.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "tracer/EventTrace.h"
#include "tracer/ForwardRunCache.h"
#include "tracer/MinCostSat.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace optabs {
namespace tracer {

/// Per-query verdicts. Unresolved corresponds to the paper's queries that
/// exhausted the time budget (Figure 12's third category).
enum class Verdict : uint8_t { Proven, Impossible, Unresolved };

inline const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Proven:
    return "proven";
  case Verdict::Impossible:
    return "impossible";
  case Verdict::Unresolved:
    return "unresolved";
  }
  return "?";
}

/// Outcome of one query.
struct QueryOutcome {
  ir::CheckId Check;
  Verdict V = Verdict::Unresolved;
  unsigned Iterations = 0; ///< CEGAR iterations (forward runs) consumed
  double Seconds = 0;      ///< attributed resolution time
  uint32_t CheapestCost = 0;     ///< |p| of the proving abstraction
  std::string CheapestParam;     ///< canonical form, for Table 4 grouping
  /// Bit-vector of the proving abstraction (Proven only; empty otherwise).
  /// The witness the certificate checker re-validates independently.
  std::vector<bool> CheapestBits;
  /// For Unresolved verdicts caused by the resource governor: which
  /// resource ran out, and at which site. Empty when the query resolved or
  /// was given up for a non-budget reason (e.g. a missing trace witness).
  std::optional<support::Exhausted> Exhaustion;
  /// Replay metadata for the "verdict" event-trace line this outcome
  /// produced (the analysis service re-emits stored verdict lines when it
  /// serves a cached verdict across program versions, so incremental traces
  /// stay line-identical to a cold run). TraceRound is the "round" field;
  /// TraceForm is 0 when no verdict line applies, 1 for the short form
  /// (round/query/verdict/iterations, the empty-viable path) and 2 for the
  /// full form (adds cost/param). Stamped even when tracing is disabled.
  unsigned TraceRound = 0;
  uint8_t TraceForm = 0;
};

/// How the next abstraction is chosen after a failed proof attempt. The
/// non-default strategies are the baselines the paper's Related Work
/// contrasts TRACER with.
enum class SearchStrategy : uint8_t {
  /// Algorithm 1: backward meta-analysis eliminates whole sets of
  /// abstractions; next is a minimum-cost viable one.
  Tracer,
  /// Strawman CEGAR: each iteration eliminates exactly the current
  /// abstraction. Sound and (eventually) optimal, but the search space is
  /// 2^N, so it exhausts any budget beyond toy families.
  EliminateCurrent,
  /// Monotone refinement in the style of demand-driven pointer analyses
  /// (Sridharan-Bodik et al.): grow the abstraction by every parameter the
  /// failure is blamed on. Fast, but over-refines (no minimality) and can
  /// never conclude impossibility.
  GreedyGrow,
};

inline const char *strategyName(SearchStrategy S) {
  switch (S) {
  case SearchStrategy::Tracer:
    return "tracer";
  case SearchStrategy::EliminateCurrent:
    return "eliminate-current";
  case SearchStrategy::GreedyGrow:
    return "greedy-grow";
  }
  return "?";
}

/// Parses a strategy name; false (and \p Out untouched) when unknown. The
/// inverse of strategyName, shared by the CLI, the service protocol, and
/// the Config bridge.
inline bool parseStrategy(const std::string &Name, SearchStrategy &Out) {
  if (Name == "tracer")
    Out = SearchStrategy::Tracer;
  else if (Name == "eliminate-current")
    Out = SearchStrategy::EliminateCurrent;
  else if (Name == "greedy-grow")
    Out = SearchStrategy::GreedyGrow;
  else
    return false;
  return true;
}

/// Tuning knobs (defaults follow the paper's chosen operating point k=5).
struct TracerOptions {
  unsigned K = 5;                  ///< dropk beam width; 0 = no underapprox
  unsigned MaxItersPerQuery = 100; ///< per-query iteration budget
  double TimeBudgetSeconds = 1e12; ///< whole-driver wall-clock budget
  bool GroupQueries = true;        ///< §6 unviable-set grouping
  size_t ProductSoftCap = 4096;
  /// Per-trace budget for the backward meta-analysis; 0 = unbounded. A
  /// timed-out meta-analysis run leaves its query unresolved (this is how
  /// the exact-mode configuration of §6 times out). Note: a nonzero
  /// timeout makes results timing-dependent, so the worker-count
  /// determinism guarantee only holds when it is 0.
  double BackwardTimeoutSeconds = 0;
  /// Logical-step budget per forward fixpoint (counted state visits);
  /// 0 = unbounded. Deterministic: each fixpoint task counts its own
  /// visits, so exhaustion cuts the run at the same visit for any
  /// NumThreads — the reproducible alternative to wall-clock timeouts. An
  /// exhausted fixpoint is a partial under-fixpoint: it is never cached or
  /// classified against, and its queries end Unresolved.
  uint64_t ForwardStepBudget = 0;
  /// Logical-step budget per backward trace run (counted wp steps plus
  /// Dnf::product terms); 0 = unbounded. Deterministic like
  /// ForwardStepBudget; an exhausted run is discarded exactly like a
  /// BackwardTimeoutSeconds timeout (sound: nothing is learned).
  uint64_t BackwardStepBudget = 0;
  /// Logical-step budget per min-cost SAT solve (counted branch
  /// decisions); 0 = unbounded. An aborted solve leaves its group
  /// Unresolved — never Impossible, since an unfinished search proves no
  /// unsatisfiability.
  uint64_t SolverDecisionBudget = 0;
  /// Ceiling on the forward-run cache's resident bytes, checked at every
  /// round boundary; 0 = unbounded. Exceeding it walks the graceful-
  /// degradation ladder (spill the cache to disk when a spill store is
  /// armed, else evict it; then halve the dropk beam, then drop to one
  /// trace per iteration), each rung a sound harder
  /// under-approximation, each recorded as a `degrade` event and counted
  /// in DriverStats::Degradations. Resident bytes are a deterministic
  /// function of the cached runs, so the ladder fires identically at any
  /// NumThreads. TRACER strategy only (GreedyGrow has no rounds).
  uint64_t MemoryBudgetBytes = 0;
  /// Optional shared cancellation token. All kernels poll it cooperatively
  /// and unwind at their next unit of work when it is requested; affected
  /// queries end Unresolved with an `Exhausted{cancelled, ...}` record.
  /// Cancellation is inherently schedule-dependent, so the worker-count
  /// determinism guarantee only covers runs where it never fires.
  std::shared_ptr<support::CancelToken> Cancel;
  /// Abstraction-selection strategy (see SearchStrategy).
  SearchStrategy Strategy = SearchStrategy::Tracer;
  /// Counterexamples analyzed per failed iteration. 1 reproduces the
  /// paper; larger values analyze several distinct failing states' traces
  /// and conjoin everything learned - a lightweight realization of §8's
  /// "DAG counterexamples" direction.
  unsigned TracesPerIteration = 1;
  /// Worker threads for the per-round forward analyses and the per-trace
  /// backward meta-analysis. 1 = fully sequential (no threads spawned);
  /// 0 = one worker per hardware thread. Verdicts, costs, iteration
  /// counts, and all non-timing statistics are identical for every value.
  unsigned NumThreads = 1;
  /// Entry cap of the cross-round forward-run cache (LRU eviction);
  /// 0 = unbounded. Entries in use by the current round are never evicted,
  /// so the cache may transiently exceed the cap.
  size_t ForwardCacheCapacity = 0;
  /// Liveness-based dead-variable pruning: compute per-command live-out
  /// sets once per program and forget dead variables before interning
  /// forward states. Shrinks the interned state space (and the forward
  /// cache's resident bytes) without changing any verdict - the pruned
  /// components are exactly those no later read, check, or backward
  /// formula can observe (see DESIGN.md).
  bool PruneDeadVars = true;
  /// Loop-aware compression of extracted counterexample traces: detect
  /// repeated (command, state) segments at extraction time and let the
  /// backward meta-analysis skip repetitions once its formula stabilizes
  /// across one of them. Exact, not approximate - see meta/TraceSegments.h.
  bool CompressTraces = true;
  /// When nonempty, a JSONL CEGAR event trace (tracer/EventTrace.h) is
  /// appended to this path. The driver appends and never truncates, so a
  /// harness running several clients can interleave them into one file;
  /// truncation is the CLI's job, once, at startup.
  std::string EventTracePath;
  /// Value of the "label" field stamped on every emitted event (e.g. the
  /// client name), distinguishing interleaved runs.
  std::string EventTraceLabel;
  /// Forwarded to BackwardConfig::StepObserver for every backward run.
  /// When more than one worker is active the driver serializes the calls
  /// behind a mutex, so a single callable can observe all workers' steps.
  std::function<void(size_t, const ir::Command &, const formula::Dnf &)>
      BackwardStepObserver;
  /// When nonempty, enables the process-wide metrics layer (if not already
  /// on) and writes a Prometheus-style text dump of every registered
  /// metric to this path at the end of run(). The dump is cumulative over
  /// the process (the registry is global) and rewritten on every run(), so
  /// the last driver to finish leaves the complete picture.
  std::string MetricsPath;
  /// When nonempty, enables the metrics layer and writes a Chrome
  /// trace-event JSON (chrome://tracing / Perfetto loadable; one track per
  /// ThreadPool worker) of all spans recorded so far to this path at the
  /// end of run(). Cumulative and rewritten like MetricsPath.
  std::string ProfilePath;

  /// Builds driver options from the unified public configuration surface
  /// (support/Config.h). TracerOptions is a deprecated alias kept for the
  /// library internals: new code should carry an optabs::Config (validated
  /// once at the entry point) and convert here, at the driver boundary. An
  /// unknown strategy name falls back to Tracer - Config::validate()
  /// rejects it before any well-behaved caller gets this far.
  static TracerOptions fromConfig(const optabs::Config &C) {
    TracerOptions O;
    O.K = C.Execution.K;
    O.MaxItersPerQuery = C.Execution.MaxItersPerQuery;
    O.GroupQueries = C.Execution.GroupQueries;
    O.ProductSoftCap = C.Execution.ProductSoftCap;
    O.TracesPerIteration = C.Execution.TracesPerIteration;
    parseStrategy(C.Execution.Strategy, O.Strategy);
    O.NumThreads = C.Execution.NumThreads;
    O.ForwardCacheCapacity = C.Execution.ForwardCacheCapacity;
    O.PruneDeadVars = C.Execution.PruneDeadVars;
    O.CompressTraces = C.Execution.CompressTraces;
    O.TimeBudgetSeconds = C.Budgets.TimeBudgetSeconds;
    O.BackwardTimeoutSeconds = C.Budgets.BackwardTimeoutSeconds;
    O.ForwardStepBudget = C.Budgets.ForwardStepBudget;
    O.BackwardStepBudget = C.Budgets.BackwardStepBudget;
    O.SolverDecisionBudget = C.Budgets.SolverDecisionBudget;
    O.MemoryBudgetBytes = C.Budgets.MemoryBudgetBytes;
    O.EventTracePath = C.Observability.EventTracePath;
    O.EventTraceLabel = C.Observability.EventTraceLabel;
    O.MetricsPath = C.Observability.MetricsPath;
    O.ProfilePath = C.Observability.ProfilePath;
    return O;
  }
};

/// Wall-clock seconds attributed to each pipeline stage of the TRACER
/// driver, accumulated across rounds. Always collected (two steady_clock
/// reads per stage per round); independent of the metrics layer.
struct PhaseSeconds {
  double Plan = 0;     ///< grouping, min-cost solves, cache resolution
  double Forward = 0;  ///< stage A: parallel forward fixpoints
  double Classify = 0; ///< stage B1: parallel query classification
  double Extract = 0;  ///< stage B2: counterexample trace extraction
  double Backward = 0; ///< stage B3: parallel backward meta-analysis
  double Merge = 0;    ///< sequential ordered merge + verdicts

  double sum() const {
    return Plan + Forward + Classify + Extract + Backward + Merge;
  }

  PhaseSeconds &operator+=(const PhaseSeconds &O) {
    Plan += O.Plan;
    Forward += O.Forward;
    Classify += O.Classify;
    Extract += O.Extract;
    Backward += O.Backward;
    Merge += O.Merge;
    return *this;
  }
};

/// Aggregate statistics of one driver run.
struct DriverStats {
  unsigned Rounds = 0;
  unsigned ForwardRuns = 0;  ///< forward fixpoints actually computed
  unsigned BackwardRuns = 0; ///< meta-analysis trace runs
  unsigned SolverCalls = 0;
  size_t MaxFormulaCubes = 0; ///< largest backward formula encountered
  uint64_t CacheHits = 0;      ///< forward-run requests served memoized
  uint64_t CacheMisses = 0;    ///< forward-run requests that computed
  uint64_t CacheEvictions = 0; ///< LRU evictions (capacity overflow)
  uint64_t CacheSpillWrites = 0; ///< entries demoted to the disk tier
  uint64_t CacheSpillLoads = 0;  ///< lookups served from the disk tier
  /// Approximate bytes resident in the forward-run cache at the end of the
  /// run (gauge snapshot of ForwardRunCache::residentBytes()).
  uint64_t CacheResidentBytes = 0;
  /// Queries that ended Unresolved because a resource budget ran out
  /// (steps, wall clock, memory, or cancellation) — the count of outcomes
  /// carrying an Exhaustion record.
  unsigned BudgetExhausted = 0;
  /// Degradation-ladder rung applications triggered by memory pressure.
  unsigned Degradations = 0;
  /// Per-stage wall-clock breakdown (the TRACER path only; the GreedyGrow
  /// baseline has no barrier-separated stages and leaves this zero).
  PhaseSeconds Phases;
  /// Every invariant violation detected during the run (empty on a healthy
  /// run). Violations never abort: the violating computation recovers
  /// along a sound path (see support/Invariants.h) and the record lands
  /// here and in the event trace.
  std::vector<support::InvariantViolation> Violations;
};

template <typename Analysis> class QueryDriver {
public:
  using Param = typename Analysis::Param;
  using State = typename Analysis::State;
  using Forward = dataflow::ForwardAnalysis<Analysis>;
  using Backward = meta::BackwardMetaAnalysis<Analysis>;

  QueryDriver(const ir::Program &P, const Analysis &A,
              TracerOptions Options = TracerOptions())
      : P(P), A(A), Options(Options) {
    // Live-variable sets are a property of the program alone: computed once
    // here, shared by every forward run this driver builds.
    if (this->Options.PruneDeadVars)
      Liveness.emplace(P);
  }

  /// Service injection: runs this driver against a thread pool and a
  /// forward-run cache owned by someone else (the AnalysisService shares
  /// one pool and one cache shard across every session of a program)
  /// instead of the driver's private ones. Under borrowed execution the
  /// driver never resets the cache's capacity or counters (DriverStats
  /// reports per-run deltas instead), stamps \p ProgramEpoch / \p Family
  /// into every cache key so shards shared across program registrations
  /// and analysis families stay disjoint, and sizes its per-worker scratch
  /// from the borrowed pool (TracerOptions::NumThreads is ignored). The
  /// borrowed cache's single-threaded contract carries over: the owner
  /// must not run two drivers against one cache concurrently.
  /// The trailing trace parameters thread the service's request context
  /// into the run: while \p TraceRecorder is non-null, the borrowed
  /// cache's lookups during run() are recorded as trace events attributed
  /// to \p TraceCtx / \p TraceBatch (support/Trace.h). Every probe happens
  /// in the sequential plan phase, so the recorded sequence is identical
  /// at any worker count; a null recorder costs one pointer test per
  /// lookup.
  void borrowExecution(support::ThreadPool *Pool,
                       ForwardRunCache<Forward> *SharedCache,
                       uint64_t ProgramEpoch = 0, uint64_t Family = 0,
                       const std::vector<uint64_t> *CheckMinDataEpochs =
                           nullptr,
                       support::FlightRecorder *TraceRecorder = nullptr,
                       support::TraceContext TraceCtx = {},
                       uint64_t TraceBatch = 0) {
    BorrowedPool = Pool;
    BorrowedCache = SharedCache;
    CacheEpochScope = ProgramEpoch;
    CacheFamilyScope = Family;
    this->CheckMinDataEpochs = CheckMinDataEpochs;
    if (SharedCache)
      SharedCache->setTraceSink(TraceRecorder, TraceCtx, TraceBatch);
  }

  /// Incremental re-analysis: seeds the per-query viable CNFs of the next
  /// run() call (parallel to its Queries vector) with clauses learned by a
  /// previous run. Sound only when every seeded clause was learned for the
  /// same check against IR whose dependence footprint is unchanged (see
  /// ir/ProgramDiff.h); the caller owns that argument. Seeding shortens
  /// the CEGAR search without changing final verdicts, but the per-query
  /// iteration counts it reports will reflect the shortened search - a
  /// caller that needs cold-identical results must replay stored verdicts
  /// instead (the analysis service does).
  void seedViableSets(std::vector<Cnf> Seeds) { SeedViable = std::move(Seeds); }

  /// Resolves all \p Queries; the result vector is parallel to the input.
  std::vector<QueryOutcome> run(const std::vector<ir::CheckId> &Queries) {
    if ((!Options.MetricsPath.empty() || !Options.ProfilePath.empty()) &&
        !support::metricsEnabled())
      support::setMetricsEnabled(true);
    std::vector<QueryOutcome> Outcomes;
    {
      // Closed before export: open spans are skipped by the exporters.
      support::ScopedSpan RunSpan("tracer.run");
      Outcomes = Options.Strategy == SearchStrategy::GreedyGrow
                     ? runGreedy(Queries)
                     : runTracer(Queries);
    }
    exportMetrics();
    return Outcomes;
  }

private:
  std::vector<QueryOutcome> runTracer(const std::vector<ir::CheckId> &Queries) {
    Timer Total;
    Stats = DriverStats();
    Sink.clear();
    LastViable.clear();
    if (!BorrowedCache) {
      // A borrowed (service-shared) cache keeps its capacity and counters
      // across runs; the stats below report this run's deltas.
      OwnedCache.setCapacity(Options.ForwardCacheCapacity);
      OwnedCache.resetCounters();
    }
    BaseCounters = cache().counters();
    EventTraceWriter Trace;
    if (!Options.EventTracePath.empty())
      Trace.open(Options.EventTracePath, Options.EventTraceLabel);
    if (Trace.enabled())
      Trace.write(Trace.event("run_begin")
                      .field("queries", Queries.size())
                      .field("strategy", strategyName(Options.Strategy))
                      .field("k", Options.K)
                      .field("threads", effectiveWorkers()));

    struct QueryRec {
      Cnf Viable;
      bool Done = false;
      formula::Dnf NotQ;
    };
    std::vector<QueryOutcome> Outcomes(Queries.size());
    std::vector<QueryRec> Recs(Queries.size());
    for (size_t I = 0; I < Queries.size(); ++I) {
      Outcomes[I].Check = Queries[I];
      Recs[I].NotQ = A.notQ(Queries[I]);
    }
    if (SeedViable.size() == Queries.size())
      for (size_t I = 0; I < Queries.size(); ++I)
        Recs[I].Viable = std::move(SeedViable[I]);
    SeedViable.clear(); // one-shot, even on a size mismatch

    unsigned Workers = effectiveWorkers();
    ensurePool(Workers);
    // A token always exists so injected Cancel faults at gateless sites
    // (cache.insert, driver.schedule) have something to act on even when
    // the caller passed none.
    std::shared_ptr<support::CancelToken> CancelTok =
        Options.Cancel ? Options.Cancel
                       : std::make_shared<support::CancelToken>();
    meta::BackwardConfig BwdConfig;
    BwdConfig.K = Options.K;
    BwdConfig.ProductSoftCap = Options.ProductSoftCap;
    BwdConfig.TimeoutSeconds = Options.BackwardTimeoutSeconds;
    BwdConfig.StepBudget = Options.BackwardStepBudget;
    BwdConfig.Cancel = CancelTok.get();
    BwdConfig.Invariants = &Sink;
    if (Options.BackwardStepObserver) {
      if (Workers > 1) {
        // The backward stage clones one BackwardMetaAnalysis per worker,
        // so an unserialized shared observer would race with itself.
        auto Mx = std::make_shared<std::mutex>();
        auto Obs = Options.BackwardStepObserver;
        BwdConfig.StepObserver = [Mx, Obs](size_t I, const ir::Command &Cmd,
                                           const formula::Dnf &F) {
          std::lock_guard<std::mutex> Lock(*Mx);
          Obs(I, Cmd, F);
        };
      } else {
        BwdConfig.StepObserver = Options.BackwardStepObserver;
      }
    }
    // One backward meta-analysis per worker: its scratch (stats, wp memo)
    // never crosses threads.
    std::vector<std::unique_ptr<Backward>> Bwds;
    for (unsigned W = 0; W < Workers; ++W)
      Bwds.push_back(std::make_unique<Backward>(P, A, BwdConfig));
    State Init = A.initialState();

    /// What one query learned this round; produced by the parallel stages,
    /// folded by the sequential merge.
    enum class StepKind : uint8_t {
      Proven,     ///< no failing state under the round's abstraction
      IterBudget, ///< would exceed MaxItersPerQuery
      Eliminate,  ///< EliminateCurrent baseline: rule out this abstraction
      Traces,     ///< counterexample traces extracted, backward runs follow
      NoTrace,    ///< defensive: failing state without a witness
      Exhausted,  ///< a resource budget ran out; query ends Unresolved
    };
    struct TraceResult {
      std::optional<formula::Dnf> Unviable; ///< nullopt = meta timeout
      std::optional<support::Exhausted> Exhaustion; ///< why, if budget
      size_t MaxCubes = 0;
      double Seconds = 0;
    };
    /// One extracted counterexample: the trace, its replayed forward
    /// states, and the loop-segment compression plan derived from the
    /// replay's interned state ids (meta/TraceSegments.h).
    struct TraceData {
      ir::Trace T;
      std::vector<State> States;
      meta::TraceSegments Segs;
    };
    struct MemberStep {
      size_t PlanIdx = 0;
      size_t Query = 0;
      StepKind Kind = StepKind::NoTrace;
      std::optional<support::Exhausted> Exhaustion; ///< set when Exhausted
      std::vector<dataflow::StateId> FailIds; ///< sorted by state value
      std::vector<TraceData> Traces;
      std::vector<TraceResult> TraceResults;
      double Seconds = 0;
    };

    // Degradation-ladder state: each memory-pressure event escalates one
    // (sticky) rung, and the checks run sequentially at round boundaries
    // against deterministic resident-byte totals, so the ladder walks
    // identically at any worker count.
    unsigned LadderRung = 0;
    unsigned EffTracesPerIter = std::max(1u, Options.TracesPerIteration);
    // Why the whole run stopped early, applied to every query still open
    // when the round loop exits.
    std::optional<support::Exhausted> RunExhaustion;

    size_t Unresolved = Queries.size();
    while (Unresolved > 0 && Total.seconds() < Options.TimeBudgetSeconds &&
           !CancelTok->requested()) {
      ++Stats.Rounds;
      if (support::metricsEnabled()) {
        static auto &Rounds =
            support::MetricRegistry::global().counter("optabs_rounds_total");
        Rounds.add(1);
      }
      Timer RoundTimer;
      support::ScopedSpan RoundSpan("tracer.round");
      cache().beginEpoch();

      // Graceful degradation: when the cache's resident bytes exceed the
      // memory budget, escalate one rung and always evict as immediate
      // relief. Right after beginEpoch() nothing is pinned, so eviction
      // reclaims everything cacheable; the deeper rungs additionally shrink
      // future work. Every rung only under-approximates harder (§5's dropK
      // argument), so verdicts stay sound.
      if (Options.MemoryBudgetBytes > 0 &&
          cache().counters().ResidentBytes > Options.MemoryBudgetBytes) {
        uint64_t Resident = cache().counters().ResidentBytes;
        LadderRung = std::min(LadderRung + 1, 3u);
        // With a disk tier armed (service-owned caches), demotion to disk
        // comes before outright eviction: the entries leave memory either
        // way, but spilled runs can re-warm on a later lookup instead of
        // recomputing their fixpoints.
        size_t Evicted = cache().spillUnpinned();
        const char *Action =
            cache().spillArmed() ? "spill_cache" : "evict_cache";
        if (LadderRung >= 2) {
          unsigned NarrowK = std::max(1u, Options.K / 2);
          for (auto &B : Bwds)
            B->setBeamWidth(NarrowK);
          Action = "shrink_beam";
        }
        if (LadderRung >= 3) {
          EffTracesPerIter = 1;
          Action = "single_trace";
        }
        ++Stats.Degradations;
        if (support::metricsEnabled())
          support::MetricRegistry::global()
              .counter("optabs_degrade_total")
              .add(1);
        if (Trace.enabled())
          Trace.write(Trace.event("degrade")
                          .field("round", Stats.Rounds)
                          .field("rung", LadderRung)
                          .field("action", Action)
                          .field("trigger", "memory")
                          .field("resident_bytes", Resident)
                          .field("budget_bytes", Options.MemoryBudgetBytes)
                          .field("evicted", Evicted));
      }

      // Stage attribution: PhaseTimer is reset at every stage boundary and
      // its reading accumulated into Stats.Phases (always, two clock reads
      // per stage); PhaseSpan re-opens a published profiler span at the
      // same boundaries (no-ops when metrics are off). Publishing lets the
      // root spans of pool workers reparent under the current stage in the
      // aggregate view.
      Timer PhaseTimer;
      std::optional<support::ScopedSpan> PhaseSpan;
      PhaseSpan.emplace("tracer.plan", /*Publish=*/true);

      // Group unresolved queries by viable-set signature (§6). Without
      // grouping, every query is its own group and its forward runs stay
      // private (the "technique run separately per query" baseline).
      std::map<uint64_t, std::vector<size_t>> Groups;
      for (size_t I = 0; I < Queries.size(); ++I) {
        if (Recs[I].Done)
          continue;
        uint64_t Key = Options.GroupQueries
                           ? Recs[I].Viable.signature()
                           : static_cast<uint64_t>(I);
        Groups[Key].push_back(I);
      }
      if (Trace.enabled())
        Trace.write(Trace.event("round_begin")
                        .field("round", Stats.Rounds)
                        .field("unresolved", Unresolved)
                        .field("groups", Groups.size()));

      // One min-cost solve per group; one run slot per distinct abstraction
      // this round. Slots resolve against the cross-round cache here, in
      // deterministic plan order, so hit/miss counters are independent of
      // the worker count.
      struct GroupPlan {
        std::vector<size_t> Members;
        std::optional<Param> Abs;
        std::vector<bool> Bits;
        size_t Slot = 0;
        /// Set when the min-cost solve was cut short: its members end
        /// Unresolved, never Impossible (an aborted search proves no UNSAT).
        std::optional<support::Exhausted> SolveExhaustion;
      };
      struct RunSlot {
        CacheKey Key;
        std::optional<Param> Abs;
        Forward *Run = nullptr;        ///< cached, or set after stage A
        std::unique_ptr<Forward> Fresh; ///< built by stage A on a miss
        std::optional<support::Exhausted> Exhaustion; ///< stage A cut short
        double BuildSeconds = 0;
        size_t Users = 0;
        uint64_t MinData = 0;  ///< strongest freshness requested so far
        uint64_t ServedData = 0; ///< data epoch of a cache-served run
        bool FromCache = false;  ///< Run (if set) came from the cache
      };
      std::vector<GroupPlan> Plans;
      std::vector<RunSlot> Slots;
      std::map<CacheKey, size_t> SlotIndex;
      for (auto &[Sig, Members] : Groups) {
        (void)Sig;
        GroupPlan Plan;
        Plan.Members = Members;
        ++Stats.SolverCalls;
        std::optional<MinCostModel> Model;
        {
          support::BudgetGate SolverGate("mincostsat.decision",
                                         Options.SolverDecisionBudget,
                                         CancelTok.get(), 0, &Sink);
          try {
            Model = solveMinCost(Recs[Members[0]].Viable, A.numParamBits(),
                                 &SolverGate);
          } catch (const std::bad_alloc &) {
            SolverGate.exhaust(support::Resource::Memory);
          }
          if (SolverGate.exhausted())
            Plan.SolveExhaustion = SolverGate.why();
        }
        if (Model) {
          Plan.Abs = A.paramFromBits(Model->Assignment);
          Plan.Bits = std::move(Model->Assignment);
          CacheKey Key;
          Key.Bits = Plan.Bits;
          Key.ProgramEpoch = CacheEpochScope;
          Key.Family = CacheFamilyScope;
          // Without grouping, each query keeps its own runs (the §6
          // baseline); the salt separates them in the shared cache.
          Key.Salt = Options.GroupQueries
                         ? 0
                         : static_cast<uint32_t>(Members[0]) + 1;
          // Freshness floor for this group: a cached run computed before
          // the latest IR edit that touched any member's dependence
          // footprint cannot be served (service-injected; 0 standalone).
          uint64_t MinData = 0;
          if (CheckMinDataEpochs)
            for (size_t M : Plan.Members)
              MinData = std::max(
                  MinData, (*CheckMinDataEpochs)[Queries[M].index()]);
          auto [It, IsNew] = SlotIndex.try_emplace(Key, Slots.size());
          if (IsNew) {
            RunSlot Slot;
            Slot.Key = std::move(Key);
            Slot.Abs = Plan.Abs;
            Slot.MinData = MinData;
            Slot.Run = cache().lookup(Slot.Key, MinData, &Slot.ServedData);
            Slot.FromCache = Slot.Run != nullptr;
            Slots.push_back(std::move(Slot));
          } else if (RunSlot &Joined = Slots[It->second];
                     MinData > Joined.MinData && Joined.Run &&
                     Joined.FromCache && Joined.ServedData < MinData) {
            // A second group needs the same abstraction but fresher data
            // than the cached run an earlier group accepted: discard it
            // and rebuild (the rebuilt run serves both groups).
            Joined.MinData = MinData;
            Joined.Run = nullptr;
            Joined.FromCache = false;
            cache().noteStaleMiss();
          } else {
            // A second group solved to the same abstraction this round.
            Slots[It->second].MinData =
                std::max(Slots[It->second].MinData, MinData);
            cache().noteSharedHit();
          }
          Plan.Slot = It->second;
          Slots[Plan.Slot].Users += Members.size();
        }
        if (Trace.enabled() && Plan.Abs)
          Trace.write(Trace.event("choose")
                          .field("round", Stats.Rounds)
                          .field("members", Plan.Members.size())
                          .field("cost", A.paramCost(*Plan.Abs))
                          .field("bits", bitsToString(Plan.Bits))
                          .field("viable_clauses",
                                 Recs[Plan.Members[0]].Viable.size())
                          .hexField("viable_sig",
                                    Recs[Plan.Members[0]].Viable.signature()));
        Plans.push_back(std::move(Plan));
      }

      Stats.Phases.Plan += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.forward", /*Publish=*/true);
      PhaseTimer.reset();

      // Stage A: forward fixpoints for every missed abstraction, in
      // parallel; merged into the cache in plan order.
      std::vector<size_t> ToBuild;
      for (size_t S = 0; S < Slots.size(); ++S)
        if (!Slots[S].Run)
          ToBuild.push_back(S);
      pool().parallelFor(ToBuild.size(), [&](size_t T, unsigned) {
        support::ScopedSpan TaskSpan("tracer.forward.fixpoint");
        RunSlot &Slot = Slots[ToBuild[T]];
        Timer BuildTimer;
        try {
          // Per-task gate: this task alone counts its visits, so the cut
          // point is schedule-independent. A worker's bad_alloc is contained
          // here — it costs this abstraction's queries, not the process.
          support::BudgetGate Gate("forward.visit", Options.ForwardStepBudget,
                                   CancelTok.get(), 0, &Sink);
          auto Run = std::make_unique<Forward>(P, A, *Slot.Abs, liveness());
          Run->run(Init, &Gate);
          if (Run->exhausted())
            Slot.Exhaustion = *Run->exhaustion();
          else
            Slot.Fresh = std::move(Run);
        } catch (const std::bad_alloc &) {
          Slot.Exhaustion =
              support::Exhausted{support::Resource::Memory, "forward.visit"};
        }
        Slot.BuildSeconds = BuildTimer.seconds();
      });
      for (size_t S : ToBuild) {
        ++Stats.ForwardRuns;
        if (!Slots[S].Fresh)
          continue; // exhausted mid-fixpoint: partial runs are never cached
        try {
          if (auto K = support::faultPoint("cache.insert")) {
            if (*K == support::FaultKind::Cancel)
              CancelTok->request();
            else
              support::reportInvariant(
                  &Sink, "injected-fault", "cache.insert",
                  "fault injection: forced invariant breakage");
          }
          Slots[S].Run = cache().insert(Slots[S].Key,
                                        std::move(Slots[S].Fresh),
                                        CacheEpochScope);
        } catch (const std::bad_alloc &) {
          Slots[S].Exhaustion =
              support::Exhausted{support::Resource::Memory, "cache.insert"};
        }
      }
      if (support::metricsEnabled() && !ToBuild.empty()) {
        static auto &Runs = support::MetricRegistry::global().counter(
            "optabs_forward_runs_total");
        Runs.add(ToBuild.size());
      }
      if (Trace.enabled()) {
        std::vector<bool> Built(Slots.size(), false);
        for (size_t S : ToBuild)
          Built[S] = true;
        for (size_t S = 0; S < Slots.size(); ++S)
          Trace.write(Trace.event("forward")
                          .field("round", Stats.Rounds)
                          .field("bits", bitsToString(Slots[S].Key.Bits))
                          .field("cached", !Built[S])
                          .field("seconds", Slots[S].BuildSeconds));
      }

      Stats.Phases.Forward += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.plan", /*Publish=*/true);
      PhaseTimer.reset();

      // Viable set empty: the analysis cannot prove these queries with any
      // abstraction (Algorithm 1, line 6) — unless the solve was aborted by
      // its budget, in which case nothing was proven unsatisfiable and the
      // members end Unresolved.
      for (GroupPlan &Plan : Plans) {
        if (Plan.Abs)
          continue;
        for (size_t I : Plan.Members) {
          Recs[I].Done = true;
          if (Plan.SolveExhaustion) {
            Outcomes[I].V = Verdict::Unresolved;
            noteExhausted(Outcomes[I], *Plan.SolveExhaustion, Trace);
          } else {
            Outcomes[I].V = Verdict::Impossible;
          }
          --Unresolved;
          Outcomes[I].TraceRound = Stats.Rounds;
          Outcomes[I].TraceForm = 1;
          if (Trace.enabled())
            Trace.write(Trace.event("verdict")
                            .field("round", Stats.Rounds)
                            .field("query", Queries[I].index())
                            .field("verdict", verdictName(Outcomes[I].V))
                            .field("iterations", Outcomes[I].Iterations));
        }
      }

      // Schedule one step per (plan, member), in the order the sequential
      // driver would process them; the wall-clock budget is checked here,
      // at schedule time.
      std::vector<MemberStep> Steps;
      std::vector<std::vector<size_t>> SlotWork(Slots.size());
      bool OutOfTime = false;
      for (size_t PlanIdx = 0; PlanIdx < Plans.size() && !OutOfTime;
           ++PlanIdx) {
        GroupPlan &Plan = Plans[PlanIdx];
        if (!Plan.Abs)
          continue;
        for (size_t I : Plan.Members) {
          try {
            if (auto K = support::faultPoint("driver.schedule")) {
              if (*K == support::FaultKind::Cancel)
                CancelTok->request();
              else
                support::reportInvariant(
                    &Sink, "injected-fault", "driver.schedule",
                    "fault injection: forced invariant breakage");
            }
          } catch (const std::bad_alloc &) {
            RunExhaustion = support::Exhausted{support::Resource::Memory,
                                               "driver.schedule"};
            OutOfTime = true;
            break;
          }
          if (Total.seconds() >= Options.TimeBudgetSeconds) {
            OutOfTime = true;
            break;
          }
          if (CancelTok->requested()) {
            RunExhaustion = support::Exhausted{support::Resource::Cancelled,
                                               "driver.run"};
            OutOfTime = true;
            break;
          }
          MemberStep Step;
          Step.PlanIdx = PlanIdx;
          Step.Query = I;
          if (!Slots[Plan.Slot].Run) {
            // Stage A ran out of budget (or OOMed) on this abstraction:
            // its members resolve to Unresolved at merge time; nothing is
            // classified against the partial fixpoint.
            Step.Kind = StepKind::Exhausted;
            Step.Exhaustion =
                Slots[Plan.Slot].Exhaustion
                    ? Slots[Plan.Slot].Exhaustion
                    : std::optional<support::Exhausted>{support::Exhausted{
                          support::Resource::Memory, "forward.visit"}};
            Steps.push_back(std::move(Step));
            continue;
          }
          SlotWork[Plan.Slot].push_back(Steps.size());
          Steps.push_back(std::move(Step));
        }
      }

      Stats.Phases.Plan += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.classify", /*Publish=*/true);
      PhaseTimer.reset();

      // Stage B1: classify every step - does the abstraction prove the
      // query? Read-only on the forward runs, so fully parallel across
      // steps. D = F_p[s]({d_I}) at the check, intersected with
      // gamma(not q) (line 9).
      pool().parallelFor(Steps.size(), [&](size_t T, unsigned) {
        MemberStep &Step = Steps[T];
        if (Step.Kind == StepKind::Exhausted)
          return; // no forward run to classify against
        const GroupPlan &Plan = Plans[Step.PlanIdx];
        const RunSlot &Slot = Slots[Plan.Slot];
        Timer StepTimer;
        const QueryOutcome &Out = Outcomes[Step.Query];
        const QueryRec &Rec = Recs[Step.Query];
        try {
          for (dataflow::StateId Id : Slot.Run->statesAtCheckIds(Out.Check)) {
            bool IsFail = Rec.NotQ.eval([&](formula::AtomId Atom) {
              return A.evalAtom(Atom, *Slot.Abs, Slot.Run->state(Id));
            });
            if (IsFail)
              Step.FailIds.push_back(Id);
          }
          if (Step.FailIds.empty()) {
            Step.Kind = StepKind::Proven;
          } else if (Out.Iterations + 1 >= Options.MaxItersPerQuery) {
            Step.Kind = StepKind::IterBudget;
          } else if (Options.Strategy == SearchStrategy::EliminateCurrent) {
            Step.Kind = StepKind::Eliminate;
          } else {
            Step.Kind = StepKind::Traces;
            // Deterministic choice of counterexample states: smallest state
            // values first, exactly as the sequential driver sorts.
            std::sort(Step.FailIds.begin(), Step.FailIds.end(),
                      [&](dataflow::StateId X, dataflow::StateId Y) {
                        return Slot.Run->state(X) < Slot.Run->state(Y);
                      });
          }
        } catch (const std::bad_alloc &) {
          Step.Kind = StepKind::Exhausted;
          Step.Exhaustion = support::Exhausted{support::Resource::Memory,
                                               "driver.classify"};
        }
        Step.Seconds = StepTimer.seconds();
      });

      Stats.Phases.Classify += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.extract", /*Publish=*/true);
      PhaseTimer.reset();

      // Stage B2: counterexample trace extraction and replay (lines
      // 13-14). Extraction mutates a run's scratch tables, so steps of one
      // forward run stay sequential; distinct runs proceed in parallel.
      pool().parallelFor(Slots.size(), [&](size_t S, unsigned) {
        RunSlot &Slot = Slots[S];
        for (size_t StepIdx : SlotWork[S]) {
          MemberStep &Step = Steps[StepIdx];
          if (Step.Kind != StepKind::Traces)
            continue;
          Timer StepTimer;
          const QueryOutcome &Out = Outcomes[Step.Query];
          size_t WantTraces = EffTracesPerIter;
          try {
            std::vector<ir::Trace> Traces;
            for (dataflow::StateId Id : Step.FailIds) {
              if (Traces.size() >= WantTraces)
                break;
              State Bad = Slot.Run->state(Id);
              for (ir::Trace &T : Slot.Run->extractTraces(
                       Out.Check, Bad, WantTraces - Traces.size()))
                Traces.push_back(std::move(T));
            }
            if (Traces.empty()) {
              // Without a counterexample nothing can be learned and
              // retrying the same abstraction would not terminate, so the
              // query is left unresolved. The sink is thread-safe; this
              // stage runs on pool workers.
              support::reportInvariant(
                  &Sink, "trace-witness", "QueryDriver::run",
                  "failing state at check " +
                      std::to_string(Out.Check.index()) +
                      " has no witnessing trace; query left unresolved");
              Step.Kind = StepKind::NoTrace;
            } else {
              for (ir::Trace &T : Traces) {
                TraceData Data;
                std::vector<dataflow::StateId> Ids;
                Data.States = Slot.Run->replay(T, Init, &Ids);
                if (Options.CompressTraces)
                  Data.Segs = meta::detectSegments(T, Ids);
                if (support::metricsEnabled() && !Data.Segs.empty()) {
                  static auto &Detected =
                      support::MetricRegistry::global().counter(
                          "optabs_trace_segments_detected_total");
                  Detected.add(Data.Segs.Repeats.size());
                }
                Data.T = std::move(T);
                Step.Traces.push_back(std::move(Data));
              }
              Step.TraceResults.resize(Step.Traces.size());
            }
          } catch (const std::bad_alloc &) {
            Step.Kind = StepKind::Exhausted;
            Step.Exhaustion = support::Exhausted{support::Resource::Memory,
                                                 "driver.extract"};
            Step.Traces.clear();
            Step.TraceResults.clear();
          }
          Step.Seconds += StepTimer.seconds();
        }
      });

      Stats.Phases.Extract += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.backward", /*Publish=*/true);
      PhaseTimer.reset();

      // Stage B3: backward meta-analysis, one task per counterexample
      // trace (line 14), on per-worker Backward instances.
      std::vector<std::pair<size_t, size_t>> TraceTasks;
      for (size_t T = 0; T < Steps.size(); ++T)
        for (size_t J = 0; J < Steps[T].Traces.size(); ++J)
          TraceTasks.emplace_back(T, J);
      pool().parallelFor(TraceTasks.size(), [&](size_t T, unsigned Worker) {
        support::ScopedSpan TaskSpan("tracer.backward.trace");
        auto [StepIdx, J] = TraceTasks[T];
        MemberStep &Step = Steps[StepIdx];
        const GroupPlan &Plan = Plans[Step.PlanIdx];
        const RunSlot &Slot = Slots[Plan.Slot];
        Timer TraceTimer;
        Backward &Bwd = *Bwds[Worker];
        TraceResult &R = Step.TraceResults[J];
        try {
          const TraceData &Data = Step.Traces[J];
          std::optional<formula::Dnf> F =
              Bwd.run(Data.T, *Slot.Abs, Data.States, Recs[Step.Query].NotQ,
                      Data.Segs.empty() ? nullptr : &Data.Segs);
          R.MaxCubes = Bwd.stats().MaxCubes;
          if (F)
            R.Unviable = Bwd.projectToParams(*F, *Slot.Abs, Init);
          else
            R.Exhaustion = Bwd.lastExhaustion(); // empty on invariant-discard
        } catch (const std::bad_alloc &) {
          R.Exhaustion =
              support::Exhausted{support::Resource::Memory, "backward.step"};
        }
        R.Seconds = TraceTimer.seconds();
      });

      Stats.Phases.Backward += PhaseTimer.seconds();
      PhaseSpan.emplace("tracer.merge", /*Publish=*/true);
      PhaseTimer.reset();

      // Merge: fold every step in schedule order - the same order the
      // sequential driver processes members - so verdicts, viable sets,
      // and statistics are independent of the worker count.
      auto KindName = [](StepKind K) {
        switch (K) {
        case StepKind::Proven:
          return "proven";
        case StepKind::IterBudget:
          return "iter-budget";
        case StepKind::Eliminate:
          return "eliminate";
        case StepKind::Traces:
          return "traces";
        case StepKind::NoTrace:
          return "no-trace";
        case StepKind::Exhausted:
          return "exhausted";
        }
        return "?";
      };
      for (MemberStep &Step : Steps) {
        GroupPlan &Plan = Plans[Step.PlanIdx];
        RunSlot &Slot = Slots[Plan.Slot];
        QueryOutcome &Out = Outcomes[Step.Query];
        QueryRec &Rec = Recs[Step.Query];
        double SharedTime =
            Slot.Users ? Slot.BuildSeconds / static_cast<double>(Slot.Users)
                       : 0;
        ++Out.Iterations;
        Out.Seconds += SharedTime + Step.Seconds;
        switch (Step.Kind) {
        case StepKind::Proven:
          // Proven with a minimum abstraction (line 11).
          Rec.Done = true;
          Out.V = Verdict::Proven;
          Out.CheapestCost = A.paramCost(*Plan.Abs);
          Out.CheapestParam = A.paramToString(*Plan.Abs);
          Out.CheapestBits = Plan.Bits;
          --Unresolved;
          break;
        case StepKind::IterBudget:
          Rec.Done = true;
          Out.V = Verdict::Unresolved;
          noteExhausted(Out,
                        support::Exhausted{support::Resource::Steps,
                                           "driver.iterations"},
                        Trace);
          --Unresolved;
          break;
        case StepKind::NoTrace:
          Rec.Done = true;
          Out.V = Verdict::Unresolved;
          --Unresolved;
          break;
        case StepKind::Exhausted:
          Rec.Done = true;
          Out.V = Verdict::Unresolved;
          if (Step.Exhaustion)
            noteExhausted(Out, *Step.Exhaustion, Trace);
          --Unresolved;
          break;
        case StepKind::Eliminate:
          // Baseline: rule out exactly the current abstraction.
          Rec.Viable.addClause(eliminateClause(Plan.Bits));
          break;
        case StepKind::Traces: {
          // Lines 13-15: viable-set strengthening. Analyzing several
          // distinct failing states' traces per iteration conjoins
          // everything they rule out (§8's DAG-counterexample direction,
          // in trace form).
          bool MetaTimedOut = false;
          std::optional<support::Exhausted> MetaExhaustion;
          for (TraceResult &R : Step.TraceResults) {
            ++Stats.BackwardRuns;
            if (support::metricsEnabled()) {
              static auto &Runs = support::MetricRegistry::global().counter(
                  "optabs_backward_runs_total");
              Runs.add(1);
            }
            Stats.MaxFormulaCubes =
                std::max(Stats.MaxFormulaCubes, R.MaxCubes);
            Out.Seconds += R.Seconds;
            if (!R.Unviable) {
              // The meta-analysis timed out on this trace: nothing sound
              // can be learned, so the query stays unresolved.
              MetaTimedOut = true;
              MetaExhaustion = R.Exhaustion;
              break;
            }
            addUnviable(Rec.Viable, *R.Unviable);
          }
          if (MetaTimedOut) {
            Rec.Done = true;
            Out.V = Verdict::Unresolved;
            if (MetaExhaustion)
              noteExhausted(Out, *MetaExhaustion, Trace);
            --Unresolved;
            break;
          }
          // Progress (Theorem 3): the current abstraction is always among
          // the eliminated ones, so the next round cannot repeat it. When
          // the learned clauses fail to rule it out, fall back to
          // eliminating it explicitly - weaker learning, but termination
          // (and soundness) survive the violation.
          if (Rec.Viable.eval(Plan.Bits)) {
            support::reportInvariant(
                &Sink, "progress", "QueryDriver::run",
                "meta-analysis failed to eliminate the current abstraction "
                "for check " +
                    std::to_string(Out.Check.index()) +
                    "; eliminating it explicitly");
            Rec.Viable.addClause(eliminateClause(Plan.Bits));
          }
          break;
        }
        }
        if (Rec.Done && Outcomes[Step.Query].TraceForm == 0) {
          Outcomes[Step.Query].TraceRound = Stats.Rounds;
          Outcomes[Step.Query].TraceForm = 2;
        }
        if (Trace.enabled()) {
          std::vector<size_t> TraceLens;
          size_t MaxCubes = 0;
          for (size_t J = 0; J < Step.Traces.size(); ++J) {
            TraceLens.push_back(Step.Traces[J].T.size());
            MaxCubes = std::max(MaxCubes, Step.TraceResults[J].MaxCubes);
          }
          Trace.write(Trace.event("step")
                          .field("round", Stats.Rounds)
                          .field("query", Queries[Step.Query].index())
                          .field("kind", KindName(Step.Kind))
                          .field("fail_states", Step.FailIds.size())
                          .field("traces", Step.Traces.size())
                          .field("trace_lens", TraceLens)
                          .field("max_cubes", MaxCubes)
                          .hexField("learned_sig", Rec.Viable.signature()));
          if (Rec.Done)
            Trace.write(Trace.event("verdict")
                            .field("round", Stats.Rounds)
                            .field("query", Queries[Step.Query].index())
                            .field("verdict", verdictName(Out.V))
                            .field("iterations", Out.Iterations)
                            .field("cost", Out.CheapestCost)
                            .field("param", Out.CheapestParam));
        }
      }
      Stats.Phases.Merge += PhaseTimer.seconds();
      PhaseSpan.reset();
      if (Trace.enabled())
        Trace.write(Trace.event("round_end")
                        .field("round", Stats.Rounds)
                        .field("unresolved", Unresolved)
                        .field("cache_hits",
                               cache().counters().Hits - BaseCounters.Hits)
                        .field("cache_misses",
                               cache().counters().Misses - BaseCounters.Misses)
                        .field("cache_evictions",
                               cache().counters().Evictions -
                                   BaseCounters.Evictions)
                        .field("seconds", RoundTimer.seconds()));
    }

    if (Unresolved > 0 && !RunExhaustion) {
      // The round loop stopped with open queries: the whole-run wall-clock
      // budget or an external cancellation, whichever tripped.
      RunExhaustion =
          CancelTok->requested()
              ? support::Exhausted{support::Resource::Cancelled, "driver.run"}
              : support::Exhausted{support::Resource::WallClock,
                                   "driver.run"};
    }
    for (size_t I = 0; I < Queries.size(); ++I) {
      if (!Recs[I].Done) {
        Outcomes[I].V = Verdict::Unresolved;
        if (RunExhaustion)
          noteExhausted(Outcomes[I], *RunExhaustion, Trace);
      }
      LastViable.push_back(std::move(Recs[I].Viable));
    }
    publishCacheCounters();
    Stats.Violations = Sink.snapshot();
    TotalSeconds = Total.seconds();
    if (Trace.enabled()) {
      for (const support::InvariantViolation &V : Stats.Violations)
        Trace.write(Trace.event("invariant_violation")
                        .field("check", V.Check)
                        .field("where", V.Where)
                        .field("message", V.Message));
      Trace.write(Trace.event("run_end")
                      .field("rounds", Stats.Rounds)
                      .field("forward_runs", Stats.ForwardRuns)
                      .field("backward_runs", Stats.BackwardRuns)
                      .field("solver_calls", Stats.SolverCalls)
                      .field("violations", Stats.Violations.size())
                      .field("budget_exhausted", Stats.BudgetExhausted)
                      .field("degradations", Stats.Degradations)
                      .field("seconds", TotalSeconds));
    }
    return Outcomes;
  }

public:
  const DriverStats &stats() const { return Stats; }
  double totalSeconds() const { return TotalSeconds; }

  /// The per-query viable CNFs as of the end of the last run() call
  /// (parallel to its outcome vector; empty CNF = nothing learned). Input
  /// to the certificate checker's minimality / impossibility / eliminated
  /// checks. GreedyGrow learns no viable sets, so its entries are empty.
  const std::vector<Cnf> &finalViableSets() const { return LastViable; }

private:
  using CacheKey = typename ForwardRunCache<Forward>::Key;

  /// The GreedyGrow baseline: per query, monotonically switch on every
  /// parameter bit the failed proof is blamed on. Never shrinks, never
  /// optimizes, and cannot conclude impossibility (failures with no new
  /// blame are reported unresolved) - the behavior the paper attributes to
  /// classic refinement-based analyses.
  std::vector<QueryOutcome> runGreedy(const std::vector<ir::CheckId> &Queries) {
    Timer Total;
    Stats = DriverStats();
    Sink.clear();
    LastViable.clear();
    if (!BorrowedCache) {
      // A borrowed (service-shared) cache keeps its capacity and counters
      // across runs; the stats below report this run's deltas.
      OwnedCache.setCapacity(Options.ForwardCacheCapacity);
      OwnedCache.resetCounters();
    }
    BaseCounters = cache().counters();
    EventTraceWriter Trace;
    if (!Options.EventTracePath.empty())
      Trace.open(Options.EventTracePath, Options.EventTraceLabel);
    if (Trace.enabled())
      Trace.write(Trace.event("run_begin")
                      .field("queries", Queries.size())
                      .field("strategy", strategyName(Options.Strategy))
                      .field("k", Options.K)
                      .field("threads", 1u));
    std::shared_ptr<support::CancelToken> CancelTok =
        Options.Cancel ? Options.Cancel
                       : std::make_shared<support::CancelToken>();
    meta::BackwardConfig BwdConfig;
    BwdConfig.K = Options.K;
    BwdConfig.ProductSoftCap = Options.ProductSoftCap;
    BwdConfig.TimeoutSeconds = Options.BackwardTimeoutSeconds;
    BwdConfig.StepBudget = Options.BackwardStepBudget;
    BwdConfig.Cancel = CancelTok.get();
    BwdConfig.Invariants = &Sink;
    BwdConfig.StepObserver = Options.BackwardStepObserver; // single thread
    Backward Bwd(P, A, BwdConfig);
    State Init = A.initialState();

    // Forward runs memoized across queries, iterations, and run() calls.
    // Returns nullptr (with GreedyExhaustion set) when the fixpoint was cut
    // short by its budget: the partial run is neither cached nor usable.
    std::optional<support::Exhausted> GreedyExhaustion;
    uint64_t CurMinData = 0; // freshness floor of the query being served
    auto GetRun = [&](const std::vector<bool> &Bits) -> Forward * {
      CacheKey Key;
      Key.Bits = Bits;
      Key.ProgramEpoch = CacheEpochScope;
      Key.Family = CacheFamilyScope;
      if (Forward *Hit = cache().lookup(Key, CurMinData))
        return Hit;
      support::BudgetGate Gate("forward.visit", Options.ForwardStepBudget,
                               CancelTok.get(), 0, &Sink);
      auto Run = std::make_unique<Forward>(P, A, A.paramFromBits(Bits),
                                           liveness());
      Run->run(Init, &Gate);
      ++Stats.ForwardRuns;
      if (Run->exhausted()) {
        GreedyExhaustion = *Run->exhaustion();
        return nullptr;
      }
      return cache().insert(std::move(Key), std::move(Run), CacheEpochScope);
    };

    std::vector<QueryOutcome> Outcomes(Queries.size());
    for (size_t I = 0; I < Queries.size(); ++I) {
      QueryOutcome &Out = Outcomes[I];
      Out.Check = Queries[I];
      CurMinData = CheckMinDataEpochs
                       ? (*CheckMinDataEpochs)[Out.Check.index()]
                       : 0;
      Timer QueryTimer;
      formula::Dnf NotQ = A.notQ(Out.Check);
      std::vector<bool> Bits(A.numParamBits(), false);

      try {
      while (true) {
        if (Total.seconds() >= Options.TimeBudgetSeconds) {
          noteExhausted(Out,
                        support::Exhausted{support::Resource::WallClock,
                                           "driver.run"},
                        Trace);
          break; // stays Unresolved
        }
        if (CancelTok->requested()) {
          noteExhausted(Out,
                        support::Exhausted{support::Resource::Cancelled,
                                           "driver.run"},
                        Trace);
          break;
        }
        if (Out.Iterations >= Options.MaxItersPerQuery) {
          noteExhausted(Out,
                        support::Exhausted{support::Resource::Steps,
                                           "driver.iterations"},
                        Trace);
          break;
        }
        ++Out.Iterations;
        ++Stats.Rounds;
        cache().beginEpoch();
        Param Prm = A.paramFromBits(Bits);
        Forward *RunPtr = GetRun(Bits);
        if (!RunPtr) {
          noteExhausted(Out,
                        GreedyExhaustion
                            ? *GreedyExhaustion
                            : support::Exhausted{support::Resource::Steps,
                                                 "forward.visit"},
                        Trace);
          break; // stays Unresolved
        }
        Forward &Run = *RunPtr;
        std::vector<dataflow::StateId> Fails;
        for (dataflow::StateId Id : Run.statesAtCheckIds(Out.Check))
          if (NotQ.eval([&](formula::AtomId Atom) {
                return A.evalAtom(Atom, Prm, Run.state(Id));
              }))
            Fails.push_back(Id);
        if (Fails.empty()) {
          Out.V = Verdict::Proven;
          Out.CheapestCost = A.paramCost(Prm); // NOT minimal in general
          Out.CheapestParam = A.paramToString(Prm);
          Out.CheapestBits = Bits;
          break;
        }
        std::sort(Fails.begin(), Fails.end(),
                  [&](dataflow::StateId X, dataflow::StateId Y) {
                    return Run.state(X) < Run.state(Y);
                  });
        State Bad = Run.state(Fails.front());
        auto T = Run.extractTrace(Out.Check, Bad);
        if (!T) {
          support::reportInvariant(
              &Sink, "trace-witness", "QueryDriver::runGreedy",
              "failing state at check " + std::to_string(Out.Check.index()) +
                  " has no witnessing trace; query left unresolved");
          break;
        }
        std::vector<State> States = Run.replay(*T, Init);
        ++Stats.BackwardRuns;
        std::optional<formula::Dnf> F = Bwd.run(*T, Prm, States, NotQ);
        if (!F) {
          if (Bwd.lastExhaustion())
            noteExhausted(Out, *Bwd.lastExhaustion(), Trace);
          break; // meta-analysis budget: Unresolved
        }
        formula::Dnf Unviable = Bwd.projectToParams(*F, Prm, Init);
        // Blame: every parameter mentioned by the failure condition.
        std::vector<bool> Grown = Bits;
        for (const formula::Cube &Cube : Unviable.cubes())
          for (formula::Lit L : Cube.literals())
            Grown[A.decodeParamAtom(L.atom()).first] = true;
        if (Grown == Bits)
          break; // no new blame: give up (cannot conclude impossibility)
        Bits = std::move(Grown);
      }
      } catch (const std::bad_alloc &) {
        // One query's OOM (or injected allocation failure) resolves that
        // query, not the process; the next query starts clean.
        noteExhausted(Out,
                      support::Exhausted{support::Resource::Memory,
                                         "driver.run"},
                      Trace);
      }
      Out.Seconds = QueryTimer.seconds();
      Out.TraceRound = Stats.Rounds;
      Out.TraceForm = 2;
      if (Trace.enabled())
        Trace.write(Trace.event("verdict")
                        .field("round", Stats.Rounds)
                        .field("query", Out.Check.index())
                        .field("verdict", verdictName(Out.V))
                        .field("iterations", Out.Iterations)
                        .field("cost", Out.CheapestCost)
                        .field("param", Out.CheapestParam));
    }
    // GreedyGrow never learns viable sets; empty CNFs keep the vector
    // parallel to the outcomes for the certificate checker.
    LastViable.assign(Queries.size(), Cnf());
    publishCacheCounters();
    Stats.Violations = Sink.snapshot();
    TotalSeconds = Total.seconds();
    if (Trace.enabled()) {
      for (const support::InvariantViolation &V : Stats.Violations)
        Trace.write(Trace.event("invariant_violation")
                        .field("check", V.Check)
                        .field("where", V.Where)
                        .field("message", V.Message));
      Trace.write(Trace.event("run_end")
                      .field("rounds", Stats.Rounds)
                      .field("forward_runs", Stats.ForwardRuns)
                      .field("backward_runs", Stats.BackwardRuns)
                      .field("solver_calls", Stats.SolverCalls)
                      .field("violations", Stats.Violations.size())
                      .field("seconds", TotalSeconds));
    }
    return Outcomes;
  }

  /// Records a budget exhaustion on a query outcome: the structured
  /// Exhausted value, the stats counter, the metrics counter, and a
  /// `budget_exhausted` trace event. Called from sequential phases only
  /// (merge, plan, post-loop, and the single-threaded greedy loop), so the
  /// event stream stays worker-count independent.
  void noteExhausted(QueryOutcome &Out, const support::Exhausted &E,
                     EventTraceWriter &Trace) {
    Out.Exhaustion = E;
    ++Stats.BudgetExhausted;
    if (support::metricsEnabled())
      support::MetricRegistry::global()
          .counter("optabs_budget_exhausted_total")
          .add(1);
    if (Trace.enabled())
      Trace.write(Trace.event("budget_exhausted")
                      .field("round", Stats.Rounds)
                      .field("query", Out.Check.index())
                      .field("resource", support::resourceName(E.Res))
                      .field("site", E.Site));
  }

  /// Conjoins the negation of the unviable DNF into the viable CNF: each
  /// unviable cube becomes one clause of negated literals.
  void addUnviable(Cnf &Viable, const formula::Dnf &Unviable) const {
    for (const formula::Cube &Cube : Unviable.cubes()) {
      std::vector<BoolLit> Clause;
      for (formula::Lit L : Cube.literals()) {
        auto [Bit, ValueWhenTrue] = A.decodeParamAtom(L.atom());
        bool AtomTruePolarity = !L.isNeg();
        // Literal holds iff bit == (ValueWhenTrue == AtomTruePolarity
        // ? true : false)... i.e. the literal constrains the bit to
        // (ValueWhenTrue == AtomTruePolarity). The clause needs its
        // negation.
        bool BitMustBe = (ValueWhenTrue == AtomTruePolarity);
        Clause.push_back(BoolLit{Bit, !BitMustBe});
      }
      Viable.addClause(std::move(Clause));
    }
  }

  /// A clause satisfied by every assignment except exactly \p Bits: one
  /// negated literal per parameter bit. Used by the EliminateCurrent
  /// baseline and by the progress-violation recovery path.
  std::vector<BoolLit> eliminateClause(const std::vector<bool> &Bits) const {
    std::vector<BoolLit> Clause;
    for (uint32_t Bit = 0; Bit < A.numParamBits(); ++Bit)
      Clause.push_back(
          BoolLit{Bit, Bit < Bits.size() ? !Bits[Bit] : true});
    return Clause;
  }

  unsigned effectiveWorkers() const {
    if (BorrowedPool)
      return BorrowedPool->numWorkers();
    unsigned N = Options.NumThreads == 0
                     ? support::ThreadPool::hardwareWorkers()
                     : Options.NumThreads;
    return N < 1 ? 1 : N;
  }

  void ensurePool(unsigned Workers) {
    if (BorrowedPool)
      return; // the service owns (and sizes) the shared pool
    if (!OwnedPool || OwnedPool->numWorkers() != Workers)
      OwnedPool = std::make_unique<support::ThreadPool>(Workers, &Sink);
  }

  support::ThreadPool &pool() {
    return BorrowedPool ? *BorrowedPool : *OwnedPool;
  }

  ForwardRunCache<Forward> &cache() {
    return BorrowedCache ? *BorrowedCache : OwnedCache;
  }

  /// Cache activity attributable to this run: on a borrowed (shared) cache
  /// the process-lifetime counters keep growing across batches, so stats
  /// report the delta against the snapshot taken at run() entry.
  void publishCacheCounters() {
    ForwardCacheCounters C = cache().counters();
    Stats.CacheHits = C.Hits - BaseCounters.Hits;
    Stats.CacheMisses = C.Misses - BaseCounters.Misses;
    Stats.CacheEvictions = C.Evictions - BaseCounters.Evictions;
    Stats.CacheSpillWrites = C.SpillWrites - BaseCounters.SpillWrites;
    Stats.CacheSpillLoads = C.SpillLoads - BaseCounters.SpillLoads;
    Stats.CacheResidentBytes = C.ResidentBytes;
  }

  /// Writes the Prometheus dump and/or the Chrome trace when the
  /// corresponding TracerOptions paths are set. Both exports are
  /// cumulative process-wide snapshots, rewritten at the end of every
  /// run(); failures to open the files are silently ignored (observability
  /// must never fail the analysis).
  void exportMetrics() const {
    if (!Options.MetricsPath.empty())
      support::MetricRegistry::global().writePrometheusFile(
          Options.MetricsPath);
    if (!Options.ProfilePath.empty())
      support::Profiler::global().writeChromeTraceFile(Options.ProfilePath);
  }

  /// The shared dead-variable pruning tables; null when pruning is off.
  const ir::CommandLiveness *liveness() const {
    return Liveness ? &*Liveness : nullptr;
  }

  const ir::Program &P;
  const Analysis &A;
  TracerOptions Options;
  std::optional<ir::CommandLiveness> Liveness;
  DriverStats Stats;
  double TotalSeconds = 0;
  ForwardRunCache<Forward> OwnedCache;
  std::unique_ptr<support::ThreadPool> OwnedPool;
  /// Borrowed execution context (see borrowExecution); null = self-owned.
  ForwardRunCache<Forward> *BorrowedCache = nullptr;
  support::ThreadPool *BorrowedPool = nullptr;
  uint64_t CacheEpochScope = 0;
  uint64_t CacheFamilyScope = 0;
  /// Per-check freshness floors (indexed by CheckId), injected by the
  /// service on incremental re-registrations; null = accept any data epoch.
  const std::vector<uint64_t> *CheckMinDataEpochs = nullptr;
  /// One-shot viable-CNF seeds for the next run() (see seedViableSets).
  std::vector<Cnf> SeedViable;
  /// Counter snapshot at run() entry; publishCacheCounters reports deltas.
  ForwardCacheCounters BaseCounters;
  support::InvariantSink Sink;
  std::vector<Cnf> LastViable;
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_QUERYDRIVER_H
