//===- CachePersist.cpp - Snapshot framing implementation -----------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//

#include "tracer/CachePersist.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unistd.h>

namespace optabs {
namespace tracer {

namespace {

constexpr char SnapshotMagic[8] = {'O', 'P', 'T', 'A', 'B', 'S', 'N', 'P'};
constexpr size_t HeaderBytes = sizeof(SnapshotMagic) + sizeof(uint32_t);
constexpr size_t TrailerBytes = sizeof(uint64_t);

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

} // namespace

uint64_t snapshotHash(const void *Data, size_t Len, uint64_t Seed) {
  uint64_t H = Seed;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I)
    H = (H ^ P[I]) * 0x100000001b3ULL;
  return H;
}

void SnapshotWriter::u32(uint32_t V) { putU32(Buf, V); }
void SnapshotWriter::u64(uint64_t V) { putU64(Buf, V); }

void SnapshotWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S);
}

void SnapshotWriter::bytes(const std::vector<uint8_t> &B) {
  u32(static_cast<uint32_t>(B.size()));
  Buf.append(reinterpret_cast<const char *>(B.data()), B.size());
}

void SnapshotWriter::bits(const std::vector<bool> &B) {
  u32(static_cast<uint32_t>(B.size()));
  for (bool Bit : B)
    Buf.push_back(Bit ? 1 : 0);
}

bool SnapshotWriter::commit(const std::string &Path, std::string &Err) const {
  std::string File(SnapshotMagic, sizeof(SnapshotMagic));
  putU32(File, SnapshotFormatVersion);
  File.append(Buf);
  putU64(File, snapshotHash(File.data(), File.size()));

  // Atomic write: the full image lands under a temp name first, so a
  // crash between here and the rename can never leave a short file under
  // the final name for the next warm start to trip over.
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Err = "snapshot " + Path + ": cannot open temp file " + Tmp;
      return false;
    }
    Out.write(File.data(), static_cast<std::streamsize>(File.size()));
    Out.flush();
    if (!Out) {
      Err = "snapshot " + Path + ": short write to temp file " + Tmp;
      Out.close();
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = "snapshot " + Path + ": rename from temp file failed";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool SnapshotReader::open(const std::string &P) {
  Path = P;
  std::ifstream In(P, std::ios::binary);
  if (!In) {
    Failed = true;
    Err = "snapshot " + Path + ": cannot open file";
    return false;
  }
  Buf.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  if (Buf.size() < HeaderBytes + TrailerBytes) {
    Failed = true;
    Err = "snapshot " + Path + ": truncated header (" +
          std::to_string(Buf.size()) + " bytes)";
    return false;
  }
  if (std::memcmp(Buf.data(), SnapshotMagic, sizeof(SnapshotMagic)) != 0) {
    Failed = true;
    Err = "snapshot " + Path + ": bad magic";
    return false;
  }
  uint64_t Stored = 0;
  for (int I = 0; I < 8; ++I)
    Stored |= static_cast<uint64_t>(
                  static_cast<unsigned char>(Buf[Buf.size() - 8 + I]))
              << (8 * I);
  uint64_t Actual = snapshotHash(Buf.data(), Buf.size() - TrailerBytes);
  if (Stored != Actual) {
    Failed = true;
    Err = "snapshot " + Path + ": checksum mismatch (file is corrupt or "
          "was truncated mid-write)";
    return false;
  }
  Pos = sizeof(SnapshotMagic);
  End = Buf.size() - TrailerBytes;
  uint32_t Version = 0;
  if (!u32(Version))
    return false;
  if (Version != SnapshotFormatVersion) {
    fail("unsupported format version " + std::to_string(Version));
    return false;
  }
  return true;
}

void SnapshotReader::fail(const std::string &What) {
  if (Failed)
    return;
  Failed = true;
  Err = "snapshot " + Path + ": " + What + " at offset " +
        std::to_string(Pos);
}

bool SnapshotReader::take(void *Out, size_t N, const char *What) {
  if (Failed)
    return false;
  if (End - Pos < N) {
    fail(std::string("truncated ") + What);
    return false;
  }
  std::memcpy(Out, Buf.data() + Pos, N);
  Pos += N;
  return true;
}

bool SnapshotReader::u8(uint8_t &V) { return take(&V, 1, "u8"); }

bool SnapshotReader::u32(uint32_t &V) {
  unsigned char B[4];
  if (!take(B, 4, "u32"))
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(B[I]) << (8 * I);
  return true;
}

bool SnapshotReader::u64(uint64_t &V) {
  unsigned char B[8];
  if (!take(B, 8, "u64"))
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(B[I]) << (8 * I);
  return true;
}

bool SnapshotReader::str(std::string &S) {
  uint32_t N = 0;
  if (!u32(N))
    return false;
  if (End - Pos < N) {
    fail("truncated string of length " + std::to_string(N));
    return false;
  }
  S.assign(Buf.data() + Pos, N);
  Pos += N;
  return true;
}

bool SnapshotReader::bytes(std::vector<uint8_t> &B) {
  uint32_t N = 0;
  if (!u32(N))
    return false;
  if (End - Pos < N) {
    fail("truncated byte vector of length " + std::to_string(N));
    return false;
  }
  B.assign(Buf.data() + Pos, Buf.data() + Pos + N);
  Pos += N;
  return true;
}

bool SnapshotReader::bits(std::vector<bool> &B) {
  uint32_t N = 0;
  if (!u32(N))
    return false;
  if (End - Pos < N) {
    fail("truncated bit vector of length " + std::to_string(N));
    return false;
  }
  B.clear();
  B.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    B.push_back(Buf[Pos + I] != 0);
  Pos += N;
  return true;
}

} // namespace tracer
} // namespace optabs
