//===- EventTrace.h - JSONL CEGAR event trace ------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine-readable trace of the CEGAR loop: one JSON object per line
/// (JSONL), appended to TracerOptions::EventTracePath. Downstream tools -
/// refinement debuggers, learned-model trainers in the style of Grigore &
/// Yang's probabilistic refinement guidance - consume the rounds without
/// parsing human-oriented logs.
///
/// Schema (every event carries "v" - the schema version, currently 1 -
/// plus "event" and "label"; see DESIGN.md for the full field tables):
///
///   run_begin   queries, strategy, k, threads
///   round_begin round, unresolved, groups
///   choose      round, members, cost, bits, viable_clauses
///   forward     round, bits, cached, seconds
///   step        round, query, kind, fail_states, traces, trace_lens,
///               max_cubes, learned_sig
///   verdict     round, query, verdict, iterations, cost, param
///   round_end   round, unresolved, cache_hits, cache_misses,
///               cache_evictions, seconds (round wall clock, from the
///               driver's per-round steady-clock timer)
///   invariant_violation  check, where, message
///   budget_exhausted     round, query, resource, site (a resource budget
///               ran out: resource in {steps, wall_clock, memory,
///               cancelled}, site names the charge point, e.g.
///               "forward.visit")
///   degrade     round, rung, action, trigger, resident_bytes,
///               budget_bytes, evicted (memory-pressure ladder escalation;
///               action in {evict_cache, shrink_beam, single_trace})
///   run_end     rounds, forward_runs, backward_runs, solver_calls,
///               violations, budget_exhausted, degradations, seconds
///
/// uint64 signatures are emitted as "0x..." hex *strings*: JSON numbers
/// lose integer precision above 2^53.
///
/// The driver emits only from its sequential phases (plan and merge), so
/// with a zero backward timeout the trace is bitwise identical for every
/// worker count apart from the "seconds" fields. The writer still holds a
/// mutex per line so harness-level callers need not coordinate.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_EVENTTRACE_H
#define OPTABS_TRACER_EVENTTRACE_H

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace optabs {
namespace tracer {

/// Schema version stamped as `"v":1` on every event-trace line. Bump it
/// when a field is renamed, removed, or changes meaning; adding fields is
/// backward compatible and needs no bump. The golden-file test in
/// tests/ProtocolTest.cpp pins the exact serialized form of every event
/// kind, so accidental renames fail CI instead of silently breaking
/// downstream trace consumers.
inline constexpr int EventSchemaVersion = 1;

/// Builds one JSON object incrementally. Only the types the event trace
/// needs; strings are escaped per RFC 8259.
class JsonObject {
public:
  JsonObject &field(const char *Key, const std::string &Value) {
    beginField(Key);
    appendString(Value);
    return *this;
  }
  JsonObject &field(const char *Key, const char *Value) {
    return field(Key, std::string(Value));
  }
  /// One template for every integer width (uint64_t and size_t are the
  /// same type on LP64, so distinct overloads would collide).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonObject &field(const char *Key, T Value) {
    beginField(Key);
    Buf += std::to_string(Value);
    return *this;
  }
  JsonObject &field(const char *Key, double Value) {
    beginField(Key);
    char Tmp[32];
    std::snprintf(Tmp, sizeof(Tmp), "%.6g", Value);
    Buf += Tmp;
    return *this;
  }
  JsonObject &field(const char *Key, bool Value) {
    beginField(Key);
    Buf += Value ? "true" : "false";
    return *this;
  }
  /// uint64 as a "0x..." string (JSON numbers lose precision past 2^53).
  JsonObject &hexField(const char *Key, uint64_t Value) {
    char Tmp[24];
    std::snprintf(Tmp, sizeof(Tmp), "0x%016llx",
                  static_cast<unsigned long long>(Value));
    return field(Key, Tmp);
  }
  /// An array of unsigned numbers (e.g. per-trace lengths).
  JsonObject &field(const char *Key, const std::vector<size_t> &Values) {
    beginField(Key);
    Buf += '[';
    for (size_t I = 0; I < Values.size(); ++I) {
      if (I > 0)
        Buf += ',';
      Buf += std::to_string(Values[I]);
    }
    Buf += ']';
    return *this;
  }

  std::string str() const { return Buf + "}"; }

private:
  void beginField(const char *Key) {
    Buf += First ? "{" : ",";
    First = false;
    appendString(Key);
    Buf += ':';
  }
  void appendString(const std::string &S) {
    Buf += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Buf += "\\\"";
        break;
      case '\\':
        Buf += "\\\\";
        break;
      case '\n':
        Buf += "\\n";
        break;
      case '\r':
        Buf += "\\r";
        break;
      case '\t':
        Buf += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Tmp[8];
          std::snprintf(Tmp, sizeof(Tmp), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(C)));
          Buf += Tmp;
        } else {
          Buf += C;
        }
      }
    }
    Buf += '"';
  }

  std::string Buf;
  bool First = true;
};

/// Appends JSONL events to a file. Disabled (all calls no-ops) until
/// open() succeeds; the driver appends, so a harness running several
/// clients can interleave their runs into one trace file (truncation is
/// the CLI's job, once, at startup).
class EventTraceWriter {
public:
  EventTraceWriter() = default;

  /// Opens \p Path in append mode; \p Label is stamped on every event.
  /// Returns false (and stays disabled) when the file cannot be opened.
  bool open(const std::string &Path, std::string Label) {
    std::lock_guard<std::mutex> Lock(M);
    TraceLabel = std::move(Label);
    Out.open(Path, std::ios::app);
    return Out.is_open();
  }

  bool enabled() const {
    std::lock_guard<std::mutex> Lock(M);
    return Out.is_open();
  }

  /// Starts an event object with the common "v" (schema version), "event"
  /// and "label" fields.
  JsonObject event(const char *Kind) const {
    JsonObject O;
    O.field("v", EventSchemaVersion);
    O.field("event", Kind);
    std::lock_guard<std::mutex> Lock(M);
    O.field("label", TraceLabel);
    return O;
  }

  /// Writes one completed event as a line and flushes (audit traces must
  /// survive a crashed run - that is when they matter most).
  void write(const JsonObject &O) {
    std::lock_guard<std::mutex> Lock(M);
    if (!Out.is_open())
      return;
    Out << O.str() << '\n';
    Out.flush();
  }

private:
  mutable std::mutex M;
  std::ofstream Out;
  std::string TraceLabel;
};

/// Renders an abstraction bit-vector as a compact "0101..." string.
inline std::string bitsToString(const std::vector<bool> &Bits) {
  std::string S;
  S.reserve(Bits.size());
  for (bool B : Bits)
    S += B ? '1' : '0';
  return S;
}

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_EVENTTRACE_H
