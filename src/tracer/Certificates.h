//===- Certificates.h - Independent verdict validation ---------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-run certificate checking: every verdict TRACER emits is validated
/// by an independent computation that does not trust the CEGAR loop's
/// bookkeeping.
///
///   Proven p:     re-run the forward analysis under p and confirm no
///                 state at the check satisfies not(q); confirm the stored
///                 cost/param strings match p; replay the learned viable
///                 CNF through MinCostSat and confirm p is viable and that
///                 no strictly cheaper viable abstraction exists
///                 (minimality, Algorithm 1 line 8).
///   Impossible:   confirm the learned CNF really is unsatisfiable
///                 (line 6).
///   Eliminated:   sample N random abstractions the CNF rules out and
///                 confirm each one actually fails the query when run
///                 forward (soundness of the backward meta-analysis,
///                 Theorem 3: eliminated implies failing).
///
/// Certificate checking costs extra forward fixpoints (memoized across
/// queries), so it sits behind the --audit flag rather than always-on.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_CERTIFICATES_H
#define OPTABS_TRACER_CERTIFICATES_H

#include "dataflow/Forward.h"
#include "tracer/MinCostSat.h"
#include "tracer/QueryDriver.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace optabs {
namespace tracer {

/// One failed certificate check.
struct CertificateIssue {
  size_t Query = 0;   ///< index into the outcome vector
  std::string Kind;   ///< stable identifier, e.g. "proof-refuted"
  std::string Detail; ///< human-readable explanation
};

struct CertificateOptions {
  /// Validate minimality of proven costs against the viable CNF. Disable
  /// for strategies that do not promise minimal abstractions (GreedyGrow).
  bool CheckMinimality = true;
  /// Eliminated abstractions spot-checked per query (Theorem 3 soundness).
  unsigned SampleEliminated = 4;
  /// Seed of the deterministic sampling PRNG.
  uint64_t Seed = 0x9e3779b97f4a7c15ULL;
};

struct CertificateReport {
  unsigned ProvenChecked = 0;
  unsigned ImpossibleChecked = 0;
  unsigned MinimalityChecked = 0;
  unsigned EliminatedSampled = 0;
  std::vector<CertificateIssue> Issues;

  bool ok() const { return Issues.empty(); }
};

/// Validates driver outcomes against the program. \p Analysis is the same
/// bundle QueryDriver is instantiated with.
template <typename Analysis> class CertificateChecker {
public:
  using Param = typename Analysis::Param;
  using State = typename Analysis::State;
  using Forward = dataflow::ForwardAnalysis<Analysis>;

  CertificateChecker(const ir::Program &P, const Analysis &A,
                     CertificateOptions Options = CertificateOptions())
      : P(P), A(A), Options(Options) {}

  /// Checks every outcome. \p ViableSets must be parallel to \p Outcomes
  /// (QueryDriver::finalViableSets()); an empty vector skips the CNF-based
  /// checks (minimality, impossibility, eliminated sampling) and validates
  /// proofs only.
  CertificateReport check(const std::vector<QueryOutcome> &Outcomes,
                          const std::vector<Cnf> &ViableSets) {
    CertificateReport Report;
    bool HaveViable = ViableSets.size() == Outcomes.size();
    for (size_t I = 0; I < Outcomes.size(); ++I) {
      const QueryOutcome &Out = Outcomes[I];
      switch (Out.V) {
      case Verdict::Proven:
        checkProven(I, Out, HaveViable ? &ViableSets[I] : nullptr, Report);
        break;
      case Verdict::Impossible:
        if (HaveViable)
          checkImpossible(I, ViableSets[I], Report);
        break;
      case Verdict::Unresolved:
        break; // no claim, nothing to certify
      }
      if (HaveViable && Out.V != Verdict::Impossible)
        sampleEliminated(I, Out, ViableSets[I], Report);
    }
    return Report;
  }

private:
  void checkProven(size_t I, const QueryOutcome &Out, const Cnf *Viable,
                   CertificateReport &Report) {
    ++Report.ProvenChecked;
    if (Out.CheapestBits.size() != A.numParamBits()) {
      Report.Issues.push_back(
          {I, "missing-witness",
           "proven verdict carries no abstraction bit-vector"});
      return;
    }
    Param Prm = A.paramFromBits(Out.CheapestBits);
    if (A.paramCost(Prm) != Out.CheapestCost)
      Report.Issues.push_back(
          {I, "cost-mismatch",
           "stored cost " + std::to_string(Out.CheapestCost) +
               " != recomputed cost " + std::to_string(A.paramCost(Prm))});
    if (A.paramToString(Prm) != Out.CheapestParam)
      Report.Issues.push_back(
          {I, "param-mismatch", "stored parameter string '" +
                                    Out.CheapestParam +
                                    "' does not decode from the witness"});
    if (failsQuery(Out.CheapestBits, Prm, Out.Check))
      Report.Issues.push_back(
          {I, "proof-refuted",
           "re-running the forward analysis under the proving abstraction "
           "reaches a failing state"});
    if (Viable && Options.CheckMinimality) {
      ++Report.MinimalityChecked;
      if (!Viable->eval(Out.CheapestBits))
        Report.Issues.push_back(
            {I, "proven-not-viable",
             "the proving abstraction violates the learned viable CNF"});
      auto Model = solveMinCost(*Viable, A.numParamBits());
      if (!Model)
        Report.Issues.push_back(
            {I, "minimality-unsat",
             "proven verdict but the learned viable set is empty"});
      else if (Model->Cost != Out.CheapestCost)
        Report.Issues.push_back(
            {I, "not-minimal",
             "viable CNF admits cost " + std::to_string(Model->Cost) +
                 " but the verdict claims " +
                 std::to_string(Out.CheapestCost)});
    }
  }

  void checkImpossible(size_t I, const Cnf &Viable,
                       CertificateReport &Report) {
    ++Report.ImpossibleChecked;
    if (auto Model = solveMinCost(Viable, A.numParamBits()))
      Report.Issues.push_back(
          {I, "impossible-refuted",
           "viable CNF still admits a model of cost " +
               std::to_string(Model->Cost)});
  }

  /// Theorem 3 spot check: abstractions the CNF rules out must genuinely
  /// fail the query. A viable sample teaches nothing and is skipped.
  void sampleEliminated(size_t I, const QueryOutcome &Out, const Cnf &Viable,
                        CertificateReport &Report) {
    if (Viable.size() == 0 || Options.SampleEliminated == 0)
      return;
    uint64_t Rng = Options.Seed ^ (0x2545f4914f6cdd1dULL * (I + 1));
    unsigned Bits = A.numParamBits();
    for (unsigned S = 0; S < Options.SampleEliminated; ++S) {
      std::vector<bool> Sample(Bits);
      for (unsigned B = 0; B < Bits; ++B)
        Sample[B] = (splitmix64(Rng) & 1) != 0;
      if (Viable.eval(Sample))
        continue; // not eliminated; nothing to certify
      ++Report.EliminatedSampled;
      Param Prm = A.paramFromBits(Sample);
      if (!failsQuery(Sample, Prm, Out.Check))
        Report.Issues.push_back(
            {I, "eliminated-viable",
             "abstraction " + A.paramToString(Prm) +
                 " was eliminated by the viable CNF but proves the query"});
    }
  }

  /// True iff some forward state at \p Check satisfies not(q) under the
  /// abstraction \p Prm. Forward runs are memoized across all checks.
  bool failsQuery(const std::vector<bool> &Bits, const Param &Prm,
                  ir::CheckId Check) {
    Forward &Run = forwardRun(Bits, Prm);
    formula::Dnf NotQ = A.notQ(Check);
    for (dataflow::StateId Id : Run.statesAtCheckIds(Check)) {
      bool IsFail = NotQ.eval([&](formula::AtomId Atom) {
        return A.evalAtom(Atom, Prm, Run.state(Id));
      });
      if (IsFail)
        return true;
    }
    return false;
  }

  Forward &forwardRun(const std::vector<bool> &Bits, const Param &Prm) {
    auto It = Runs.find(Bits);
    if (It != Runs.end())
      return *It->second;
    auto Run = std::make_unique<Forward>(P, A, Prm);
    Run->run(A.initialState());
    return *Runs.emplace(Bits, std::move(Run)).first->second;
  }

  static uint64_t splitmix64(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  const ir::Program &P;
  const Analysis &A;
  CertificateOptions Options;
  std::map<std::vector<bool>, std::unique_ptr<Forward>> Runs;
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_CERTIFICATES_H
