//===- ForwardRunCache.h - Cross-round forward-run memoization -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache of completed forward analyses, keyed by the abstraction's
/// parameter bit-vector. The TRACER driver consults it across rounds and
/// across queries (and across successive run() calls on one driver), so an
/// abstraction revisited later - typically because two query groups solve
/// to the same minimum-cost model in different rounds - never recomputes
/// its forward fixpoint.
///
/// Epoch-based pinning keeps the driver's parallel rounds safe: the driver
/// calls beginEpoch() at every round start, and every entry looked up or
/// inserted during a round is pinned for that round, so LRU eviction (which
/// runs only at insert time) can never free a forward run that outstanding
/// tasks of the current round still reference. When every resident entry is
/// pinned the cache temporarily overshoots its capacity rather than evict.
///
/// The cache is deliberately single-threaded: the driver probes and inserts
/// only from its sequential planning/merge phases, while the parallel phase
/// works on raw pointers obtained before it started. All counters are
/// therefore deterministic regardless of the worker count.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_FORWARDRUNCACHE_H
#define OPTABS_TRACER_FORWARDRUNCACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace optabs {
namespace tracer {

/// Hit/miss/eviction counters of one cache, reported through DriverStats.
struct ForwardCacheCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

template <typename RunT> class ForwardRunCache {
public:
  /// Cache key: the abstraction's parameter bits, plus a salt used by the
  /// ungrouped (§6 baseline) driver mode to keep per-query runs separate.
  struct Key {
    std::vector<bool> Bits;
    uint32_t Salt = 0;

    friend bool operator<(const Key &A, const Key &B) {
      if (A.Salt != B.Salt)
        return A.Salt < B.Salt;
      return A.Bits < B.Bits;
    }
  };

  /// \p Capacity = maximum resident entries; 0 means unbounded.
  explicit ForwardRunCache(size_t Capacity = 0) : Capacity(Capacity) {}

  void setCapacity(size_t NewCapacity) { Capacity = NewCapacity; }
  size_t capacity() const { return Capacity; }
  size_t size() const { return Entries.size(); }

  const ForwardCacheCounters &counters() const { return Counters; }
  void resetCounters() { Counters = ForwardCacheCounters(); }

  /// Starts a new round: entries touched from here on are pinned until the
  /// next beginEpoch() and cannot be evicted.
  void beginEpoch() { ++CurrentEpoch; }

  /// Returns the cached run for \p K (counting a hit and pinning it for the
  /// current epoch), or nullptr (counting a miss).
  RunT *lookup(const Key &K) {
    auto It = Entries.find(K);
    if (It == Entries.end()) {
      ++Counters.Misses;
      return nullptr;
    }
    ++Counters.Hits;
    touch(It->second);
    return It->second.Run.get();
  }

  /// Counts a hit without a lookup - used when the driver resolves a second
  /// request for a key it already materialized this round.
  void noteSharedHit() { ++Counters.Hits; }

  /// Inserts a freshly computed run (pinned for the current epoch) and
  /// applies LRU eviction if the cache exceeds its capacity. Returns the
  /// now-owned run.
  RunT *insert(Key K, std::unique_ptr<RunT> Run) {
    Entry &E = Entries[std::move(K)];
    E.Run = std::move(Run);
    touch(E);
    evictOverCapacity();
    return E.Run.get();
  }

private:
  struct Entry {
    std::unique_ptr<RunT> Run;
    uint64_t Stamp = 0; ///< recency; larger = more recently used
    uint64_t Epoch = 0; ///< last epoch this entry was touched in
  };

  void touch(Entry &E) {
    E.Stamp = ++StampCounter;
    E.Epoch = CurrentEpoch;
  }

  void evictOverCapacity() {
    if (Capacity == 0)
      return;
    while (Entries.size() > Capacity) {
      auto Victim = Entries.end();
      for (auto It = Entries.begin(); It != Entries.end(); ++It) {
        if (It->second.Epoch == CurrentEpoch)
          continue; // pinned: in use by the current round
        if (Victim == Entries.end() ||
            It->second.Stamp < Victim->second.Stamp)
          Victim = It;
      }
      if (Victim == Entries.end())
        return; // everything pinned: overshoot rather than evict
      Entries.erase(Victim);
      ++Counters.Evictions;
    }
  }

  size_t Capacity;
  std::map<Key, Entry> Entries;
  ForwardCacheCounters Counters;
  uint64_t StampCounter = 0;
  uint64_t CurrentEpoch = 1;
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_FORWARDRUNCACHE_H
