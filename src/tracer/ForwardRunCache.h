//===- ForwardRunCache.h - Cross-round forward-run memoization -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache of completed forward analyses, keyed by the abstraction's
/// parameter bit-vector. The TRACER driver consults it across rounds and
/// across queries (and across successive run() calls on one driver), so an
/// abstraction revisited later - typically because two query groups solve
/// to the same minimum-cost model in different rounds - never recomputes
/// its forward fixpoint.
///
/// Epoch-based pinning keeps the driver's parallel rounds safe: the driver
/// calls beginEpoch() at every round start, and every entry looked up or
/// inserted during a round is pinned for that round, so LRU eviction (which
/// runs only at insert time) can never free a forward run that outstanding
/// tasks of the current round still reference. When every resident entry is
/// pinned the cache temporarily overshoots its capacity rather than evict.
///
/// The cache is deliberately single-threaded: the driver probes and inserts
/// only from its sequential planning/merge phases, while the parallel phase
/// works on raw pointers obtained before it started. All counters are
/// therefore deterministic regardless of the worker count. They are still
/// kept as relaxed atomics so observability readers (metrics exporters,
/// watchdog threads) can snapshot them from any thread without
/// synchronizing with the driver.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_FORWARDRUNCACHE_H
#define OPTABS_TRACER_FORWARDRUNCACHE_H

#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace optabs {
namespace tracer {

/// A point-in-time snapshot of one cache's hit/miss/eviction counters and
/// approximate resident footprint, reported through DriverStats.
struct ForwardCacheCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t ResidentBytes = 0;
  uint64_t SpillWrites = 0; ///< entries demoted to the disk tier
  uint64_t SpillLoads = 0;  ///< lookups served by re-loading a spilled run
};

template <typename RunT> class ForwardRunCache {
public:
  /// Cache key: the abstraction's parameter bits, plus a salt used by the
  /// ungrouped (§6 baseline) driver mode to keep per-query runs separate.
  /// Service-shared caches additionally scope every entry by the program
  /// registration epoch (re-registering a program bumps the epoch, so stale
  /// runs against the old IR can never be served) and an analysis family
  /// (e.g. the typestate tracked-site index), so one cache object can be
  /// shared across sessions without runs from different analyses colliding.
  struct Key {
    std::vector<bool> Bits;
    uint32_t Salt = 0;
    uint64_t ProgramEpoch = 0; ///< 0 for standalone (driver-owned) caches
    uint64_t Family = 0;       ///< analysis family within one program

    friend bool operator<(const Key &A, const Key &B) {
      if (A.ProgramEpoch != B.ProgramEpoch)
        return A.ProgramEpoch < B.ProgramEpoch;
      if (A.Family != B.Family)
        return A.Family < B.Family;
      if (A.Salt != B.Salt)
        return A.Salt < B.Salt;
      return A.Bits < B.Bits;
    }
  };

  /// \p Capacity = maximum resident entries; 0 means unbounded.
  explicit ForwardRunCache(size_t Capacity = 0) : Capacity(Capacity) {}

  void setCapacity(size_t NewCapacity) { Capacity = NewCapacity; }
  size_t capacity() const { return Capacity; }
  size_t size() const { return Entries.size(); }

  /// True when \p K is resident, without counting a hit or miss, touching
  /// recency, or consulting the disk tier (the persistence loader's
  /// skip-if-present probe).
  bool contains(const Key &K) const { return Entries.count(K) != 0; }

  /// Request tracing: while a sink is set, every lookup outcome is also
  /// recorded as a per-request trace event attributed to \p Ctx and
  /// \p Batch. The service sets this around each batch's driver run (via
  /// QueryDriver::borrowExecution) and the driver only probes the cache
  /// from its sequential plan phase, so the recorded event sequence is
  /// identical at any worker count. A null \p Recorder disables recording;
  /// the disabled cost per lookup is this one pointer test.
  void setTraceSink(support::FlightRecorder *Recorder,
                    support::TraceContext Ctx = {}, uint64_t Batch = 0) {
    TraceRec = Recorder;
    TraceCtx = Ctx;
    TraceBatch = Batch;
  }

  /// Snapshot of the counters; relaxed loads, so callable from any thread
  /// (the mutating API stays single-threaded).
  ForwardCacheCounters counters() const {
    ForwardCacheCounters C;
    C.Hits = Hits.load(std::memory_order_relaxed);
    C.Misses = Misses.load(std::memory_order_relaxed);
    C.Evictions = Evictions.load(std::memory_order_relaxed);
    C.ResidentBytes = ResidentBytes.load(std::memory_order_relaxed);
    C.SpillWrites = SpillWrites.load(std::memory_order_relaxed);
    C.SpillLoads = SpillLoads.load(std::memory_order_relaxed);
    return C;
  }

  void resetCounters() {
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
    Evictions.store(0, std::memory_order_relaxed);
    // ResidentBytes tracks live entries, not history; it survives resets.
  }

  /// Approximate bytes held by resident forward runs (a gauge, not a
  /// counter: grows on insert, shrinks on eviction).
  uint64_t residentBytes() const {
    return ResidentBytes.load(std::memory_order_relaxed);
  }

  /// Starts a new round: entries touched from here on are pinned until the
  /// next beginEpoch() and cannot be evicted. Also releases runs that were
  /// replaced while pinned during the previous round (see insert()) and
  /// reconciles the resident-bytes gauge for them.
  void beginEpoch() {
    ++CurrentEpoch;
    for (const DeferredRun &D : Deferred)
      addResident(-static_cast<int64_t>(D.Bytes));
    Deferred.clear();
  }

  /// Returns the cached run for \p K (counting a hit and pinning it for the
  /// current epoch), or nullptr (counting a miss). An entry whose data
  /// epoch is older than \p MinDataEpoch is treated as a miss without being
  /// touched: its run was computed against IR some caller-relevant check
  /// has since diverged from, and the caller is expected to recompute and
  /// insert over it. \p DataEpochOut (when non-null) receives the data
  /// epoch of a served entry.
  RunT *lookup(const Key &K, uint64_t MinDataEpoch = 0,
               uint64_t *DataEpochOut = nullptr) {
    auto It = Entries.find(K);
    if (It == Entries.end() || It->second.DataEpoch < MinDataEpoch) {
      // Absent entirely (not merely data-stale): the disk tier may still
      // hold a spilled copy that re-warms in place of a recompute.
      if (It == Entries.end() && SpillLoad) {
        uint64_t LoadedData = 0;
        if (std::unique_ptr<RunT> Run = SpillLoad(K, &LoadedData)) {
          if (LoadedData >= MinDataEpoch) {
            SpillLoads.fetch_add(1, std::memory_order_relaxed);
            if (support::metricsEnabled())
              support::MetricRegistry::global()
                  .counter("optabs_forward_cache_spill_loads_total")
                  .add(1);
            bump(Hits, "optabs_forward_cache_hits_total");
            traceLookup("cache-spill-hit", /*U0=*/LoadedData, /*U1=*/0);
            RunT *Raw = insert(K, std::move(Run), LoadedData);
            if (DataEpochOut)
              *DataEpochOut = LoadedData;
            return Raw;
          }
        }
      }
      bump(Misses, "optabs_forward_cache_misses_total");
      // U1 = 1 when an entry existed but its data epoch was too old for
      // the requesting check (re-registration shadowing), 0 = cold miss.
      traceLookup("cache-miss", /*U0=*/0,
                  /*U1=*/It == Entries.end() ? 0 : 1);
      return nullptr;
    }
    bump(Hits, "optabs_forward_cache_hits_total");
    touch(It->second);
    if (DataEpochOut)
      *DataEpochOut = It->second.DataEpoch;
    // U0 = the served run's data epoch: < the key's program epoch means a
    // migrated entry answered (computed against an older, footprint-clean
    // program version).
    traceLookup("cache-hit", /*U0=*/It->second.DataEpoch, /*U1=*/0);
    return It->second.Run.get();
  }

  /// Counts a hit without a lookup - used when the driver resolves a second
  /// request for a key it already materialized this round.
  void noteSharedHit() {
    bump(Hits, "optabs_forward_cache_hits_total");
    traceLookup("cache-shared-hit", 0, 0);
  }

  /// Counts a miss without a lookup - used when the driver discards a run
  /// it already resolved this round because a later requester needs a
  /// fresher data epoch.
  void noteStaleMiss() {
    bump(Misses, "optabs_forward_cache_misses_total");
    traceLookup("cache-stale-miss", 0, 0);
  }

  /// Inserts a freshly computed run (pinned for the current epoch) and
  /// applies LRU eviction if the cache exceeds its capacity. \p DataEpoch
  /// records which program version's IR the run was computed against (0
  /// for standalone caches, which never migrate). Returns the now-owned
  /// run.
  ///
  /// Replacing an entry that is pinned by the current round defers the old
  /// run's destruction to the next beginEpoch(): the driver may still hold
  /// a raw pointer into it from an earlier lookup this round. The deferred
  /// run's bytes stay charged to the gauge until it is actually freed, so
  /// residentBytes() keeps reflecting live memory rather than drifting.
  RunT *insert(Key K, std::unique_ptr<RunT> Run, uint64_t DataEpoch = 0) {
    Entry &E = Entries[std::move(K)];
    if (E.Run) {
      if (E.Epoch == CurrentEpoch)
        Deferred.push_back({std::move(E.Run), E.Bytes});
      else
        addResident(-static_cast<int64_t>(E.Bytes)); // re-insert, unpinned
    }
    E.Run = std::move(Run);
    E.Bytes = approxBytesOf(*E.Run, 0);
    E.DataEpoch = DataEpoch;
    addResident(static_cast<int64_t>(E.Bytes));
    touch(E);
    evictOverCapacity();
    return E.Run.get();
  }

  /// Re-keys every entry of program epoch \p From to program epoch \p To
  /// in place: runs, data epochs, recency stamps, pins, and the bytes
  /// gauge all carry over. The service's migration hook for cached runs
  /// that survived an incremental re-registration. Returns the number of
  /// entries migrated.
  size_t migrateEpoch(uint64_t From, uint64_t To) {
    if (From == To)
      return 0;
    size_t Count = 0;
    Key Probe;
    Probe.ProgramEpoch = From;
    auto It = Entries.lower_bound(Probe);
    while (It != Entries.end() && It->first.ProgramEpoch == From) {
      auto Next = std::next(It);
      auto Node = Entries.extract(It);
      Node.key().ProgramEpoch = To;
      Entries.insert(std::move(Node));
      It = Next;
      ++Count;
    }
    return Count;
  }

  /// Calls \p Fn with the data epoch of every resident entry (the service
  /// uses this to decide which retired program versions are still
  /// referenced by cached runs).
  template <typename FnT> void forEachDataEpoch(FnT Fn) const {
    for (const auto &KV : Entries)
      Fn(KV.second.DataEpoch);
  }

  /// Drops every entry whose key satisfies \p Pred, regardless of pinning
  /// or capacity - the service's invalidation hook for re-registered
  /// programs (all entries of a stale ProgramEpoch go at once, between
  /// batches, when nothing references them). Returns the number evicted.
  template <typename PredT> size_t evictKeysWhere(PredT Pred) {
    size_t Count = 0;
    for (auto It = Entries.begin(); It != Entries.end();) {
      if (!Pred(It->first)) {
        ++It;
        continue;
      }
      addResident(-static_cast<int64_t>(It->second.Bytes));
      bump(Evictions, "optabs_forward_cache_evictions_total");
      It = Entries.erase(It);
      ++Count;
    }
    return Count;
  }

  /// Drops every entry not pinned by the current epoch, regardless of
  /// capacity — the degradation ladder's immediate memory-pressure relief.
  /// Pinned entries stay because the driver may hold raw pointers into
  /// them for the rest of the round. Returns the number evicted.
  size_t evictUnpinned() {
    size_t Count = 0;
    for (auto It = Entries.begin(); It != Entries.end();) {
      if (It->second.Epoch == CurrentEpoch) {
        ++It;
        continue;
      }
      addResident(-static_cast<int64_t>(It->second.Bytes));
      bump(Evictions, "optabs_forward_cache_evictions_total");
      It = Entries.erase(It);
      ++Count;
    }
    return Count;
  }

  /// The disk tier's hook pair, installed by the owner (the analysis
  /// service binds them to its cache directory and state codecs; both run
  /// on the same single thread as every other mutating call). Save
  /// returns false to refuse an entry (e.g. the spill-byte budget is
  /// exhausted or the run's data epoch is not persistable) - the entry is
  /// then evicted outright, exactly as without a disk tier. Load returns
  /// the reconstructed run (with its data epoch through the out param) or
  /// nullptr when the disk tier has no valid copy.
  using SpillSaveFn =
      std::function<bool(const Key &, const RunT &, uint64_t DataEpoch)>;
  using SpillLoadFn =
      std::function<std::unique_ptr<RunT>(const Key &, uint64_t *DataEpoch)>;

  void setSpillStore(SpillSaveFn Save, SpillLoadFn Load) {
    SpillSave = std::move(Save);
    SpillLoad = std::move(Load);
  }
  bool spillArmed() const { return static_cast<bool>(SpillSave); }

  /// The degradation ladder's memory-pressure relief with a disk tier:
  /// demotes every unpinned entry through the spill hook (counting a
  /// spill write per accepted entry) and then evicts it from memory.
  /// Without an armed spill store this is exactly evictUnpinned().
  /// Returns the number of entries that left memory.
  size_t spillUnpinned() {
    if (!SpillSave)
      return evictUnpinned();
    for (const auto &KV : Entries) {
      if (KV.second.Epoch == CurrentEpoch)
        continue;
      if (SpillSave(KV.first, *KV.second.Run, KV.second.DataEpoch)) {
        SpillWrites.fetch_add(1, std::memory_order_relaxed);
        if (support::metricsEnabled())
          support::MetricRegistry::global()
              .counter("optabs_forward_cache_spill_writes_total")
              .add(1);
      }
    }
    return evictUnpinned();
  }

  /// Calls \p Fn(Key, Run, DataEpoch) for every resident entry, in key
  /// order. The persistence tier's enumeration hook; read-only.
  template <typename FnT> void forEachEntry(FnT Fn) const {
    for (const auto &KV : Entries)
      Fn(KV.first, *KV.second.Run, KV.second.DataEpoch);
  }

private:
  struct Entry {
    std::unique_ptr<RunT> Run;
    uint64_t Stamp = 0; ///< recency; larger = more recently used
    uint64_t Epoch = 0; ///< last epoch this entry was touched in
    uint64_t Bytes = 0; ///< approx footprint charged to ResidentBytes
    uint64_t DataEpoch = 0; ///< program version the run was computed on
  };

  /// A run replaced while pinned: kept alive (and charged to the gauge)
  /// until the round that may reference it ends.
  struct DeferredRun {
    std::unique_ptr<RunT> Run;
    uint64_t Bytes = 0;
  };

  /// Footprint estimate of a run: RunT::approxMemoryBytes() when the type
  /// provides it (ForwardAnalysis does), sizeof(RunT) otherwise (unit tests
  /// cache plain structs).
  template <typename R>
  static auto approxBytesOf(const R &Run, int)
      -> decltype(Run.approxMemoryBytes()) {
    return Run.approxMemoryBytes();
  }
  template <typename R> static size_t approxBytesOf(const R &, long) {
    return sizeof(R);
  }

  void bump(std::atomic<uint64_t> &C, const char *MetricName) {
    C.fetch_add(1, std::memory_order_relaxed);
    if (support::metricsEnabled())
      support::MetricRegistry::global().counter(MetricName).add(1);
  }

  /// One pointer test when tracing is off; otherwise a trace event
  /// attributed to the batch context installed by setTraceSink().
  void traceLookup(const char *Kind, uint64_t U0, uint64_t U1) {
    if (!TraceRec)
      return;
    support::TraceEvent E;
    E.Kind = Kind;
    E.TraceId = TraceCtx.TraceId;
    E.SpanId = TraceCtx.SpanId;
    E.Batch = TraceBatch;
    E.U0 = U0;
    E.U1 = U1;
    TraceRec->record(std::move(E));
  }

  void addResident(int64_t Delta) {
    ResidentBytes.fetch_add(static_cast<uint64_t>(Delta),
                            std::memory_order_relaxed);
    if (support::metricsEnabled())
      support::MetricRegistry::global()
          .gauge("optabs_forward_cache_resident_bytes")
          .add(Delta);
  }

  void touch(Entry &E) {
    E.Stamp = ++StampCounter;
    E.Epoch = CurrentEpoch;
  }

  void evictOverCapacity() {
    if (Capacity == 0)
      return;
    while (Entries.size() > Capacity) {
      auto Victim = Entries.end();
      for (auto It = Entries.begin(); It != Entries.end(); ++It) {
        if (It->second.Epoch == CurrentEpoch)
          continue; // pinned: in use by the current round
        if (Victim == Entries.end() ||
            It->second.Stamp < Victim->second.Stamp)
          Victim = It;
      }
      if (Victim == Entries.end())
        return; // everything pinned: overshoot rather than evict
      addResident(-static_cast<int64_t>(Victim->second.Bytes));
      Entries.erase(Victim);
      bump(Evictions, "optabs_forward_cache_evictions_total");
    }
  }

  size_t Capacity;
  std::map<Key, Entry> Entries;
  std::vector<DeferredRun> Deferred;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> ResidentBytes{0};
  std::atomic<uint64_t> SpillWrites{0};
  std::atomic<uint64_t> SpillLoads{0};
  SpillSaveFn SpillSave;
  SpillLoadFn SpillLoad;
  uint64_t StampCounter = 0;
  uint64_t CurrentEpoch = 1;
  /// Request-tracing sink (null = off); installed by setTraceSink() from
  /// the same single-threaded owner that drives every mutating call.
  support::FlightRecorder *TraceRec = nullptr;
  support::TraceContext TraceCtx;
  uint64_t TraceBatch = 0;
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_FORWARDRUNCACHE_H
