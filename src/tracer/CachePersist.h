//===- CachePersist.h - Snapshot framing for cache persistence -*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk snapshot format underneath the persistent forward-run cache
/// tier: a versioned, checksummed, little-endian record stream with atomic
/// (temp-file + rename) writes and bounds-checked, structured-error reads.
///
/// Layout of every snapshot file (spill entries and whole-program
/// snapshots both use it):
///
///   bytes 0..7    magic "OPTABSNP"
///   bytes 8..11   format version (u32 LE)
///   bytes 12..N-9 payload records (written through SnapshotWriter)
///   bytes N-8..N  FNV-1a 64 checksum of bytes [0, N-8) (u64 LE)
///
/// The contract the warm-restart path depends on:
///
///  * Writes are atomic per file. SnapshotWriter buffers the whole
///    payload in memory and commit() writes it to `<path>.tmp.<pid>`
///    before rename(2)-ing it into place, so a reader never observes a
///    half-written snapshot under the final name and a crash mid-persist
///    leaves at worst a stale temp file, never a corrupt snapshot.
///
///  * Reads never trust the file. open() verifies magic, version, and the
///    trailer checksum before any record is parsed; every primitive read
///    is bounds-checked; and the first failure latches a structured error
///    naming the file and byte offset ("snapshot <path>: truncated u32 at
///    offset 17"). Callers skip the file with that note - a damaged
///    snapshot degrades a warm start into a cold one, it is never served.
///
/// The tracer library stays client-free: this header knows nothing about
/// EscState/AbsState. Client state codecs live with the analysis service
/// (service/CacheCodecs.h) and plug into the RunSink/RunSource adapters
/// below, which bridge SnapshotWriter/Reader to the ForwardAnalysis
/// saveTo()/loadFrom() hooks.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_CACHEPERSIST_H
#define OPTABS_TRACER_CACHEPERSIST_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optabs {
namespace tracer {

/// Snapshot format version. Bump on any layout change; readers reject
/// other versions with a structured note (no cross-version migration:
/// a version-skewed snapshot just means a cold start).
inline constexpr uint32_t SnapshotFormatVersion = 1;

/// FNV-1a 64 over \p Len bytes, continuing from \p Seed (pass the default
/// to start a fresh hash). The snapshot trailer checksum and spill-file
/// key hashes both use it - deterministic across platforms by definition.
uint64_t snapshotHash(const void *Data, size_t Len,
                      uint64_t Seed = 0xcbf29ce484222325ULL);

/// Buffers one snapshot payload and commits it atomically.
class SnapshotWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  /// Length-prefixed (u32) byte string.
  void str(const std::string &S);
  void bytes(const std::vector<uint8_t> &B);
  /// Length-prefixed (u32) bit vector, one byte per bit (the parameter
  /// vectors this persists are tens of bits; simplicity over packing).
  void bits(const std::vector<bool> &B);

  size_t payloadBytes() const { return Buf.size(); }

  /// Writes header + payload + checksum trailer to `<Path>.tmp.<pid>` and
  /// renames it over \p Path. Returns false (with \p Err set) on any I/O
  /// failure; the temp file is removed on failure, so a failed commit
  /// never leaves a partial file under either name.
  bool commit(const std::string &Path, std::string &Err) const;

private:
  std::string Buf;
};

/// Reads one snapshot file: whole-file validation up front, then
/// bounds-checked record reads with structured failure notes.
class SnapshotReader {
public:
  /// Reads and validates \p P (magic, version, trailer checksum). On
  /// failure returns false with error() set; no record API may be used.
  bool open(const std::string &P);

  bool u8(uint8_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool str(std::string &S);
  bool bytes(std::vector<uint8_t> &B);
  bool bits(std::vector<bool> &B);

  /// True when every payload byte has been consumed (trailing garbage in
  /// a checksummed file still indicates a writer bug; callers may check).
  bool atEnd() const { return Pos == End; }
  /// Unread payload bytes. Callers clamp claimed element counts against
  /// this before reserving (each element costs at least one byte, so a
  /// count above remaining() is provably truncated) - a checksummed but
  /// crafted file must fail structurally, not via a giant allocation.
  size_t remaining() const { return Failed ? 0 : End - Pos; }
  /// Offset of the next unread byte, for error messages.
  size_t offset() const { return Pos; }
  bool failed() const { return Failed; }
  const std::string &error() const { return Err; }
  /// Latches a structured error ("snapshot <path>: <what> at offset N").
  /// The first failure wins; every later read returns false.
  void fail(const std::string &What);

private:
  bool take(void *Out, size_t N, const char *What);

  std::string Path;
  std::string Buf;
  size_t Pos = 0;
  size_t End = 0;
  bool Failed = false;
  std::string Err;
};

/// Adapts a SnapshotWriter (plus a client state codec) to the sink
/// interface ForwardAnalysis::saveTo() expects. \p Codec must provide
/// `void save(SnapshotWriter &, const State &) const`.
template <typename CodecT> struct RunSink {
  SnapshotWriter &W;
  const CodecT &Codec;
  void u32(uint32_t V) { W.u32(V); }
  void u64(uint64_t V) { W.u64(V); }
  template <typename StateT> void state(const StateT &S) { Codec.save(W, S); }
};

/// Adapts a SnapshotReader (plus a client state codec) to the source
/// interface ForwardAnalysis::loadFrom() expects. \p Codec must provide
/// `bool load(SnapshotReader &, State &) const`.
template <typename CodecT> struct RunSource {
  SnapshotReader &R;
  const CodecT &Codec;
  bool u32(uint32_t &V) { return R.u32(V); }
  bool u64(uint64_t &V) { return R.u64(V); }
  template <typename StateT> bool state(StateT &S) { return Codec.load(R, S); }
  void fail(const std::string &What) { R.fail(What); }
};

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_CACHEPERSIST_H
