//===- MinCostSat.h - Viable-set CNF and minimum-cost models ---*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TRACER (Algorithm 1) maintains the set of still-viable abstractions and
/// repeatedly picks a minimum-cost element of it. Both client analyses have
/// parameter spaces isomorphic to bit vectors with cost = popcount:
///
///   type-state:    p in 2^V,        bit x = "variable x is tracked"
///   thread-escape: p in {L,E}^H,    bit h = "site h is mapped to L"
///
/// Each backward meta-analysis run yields a DNF over parameter atoms whose
/// models are *unviable*; its negation is a set of clauses. The viable set
/// is therefore a CNF over the parameter bits, and "choose a minimum p in
/// viable" (line 8) is an exact minimum-cost SAT problem, solved here by
/// DPLL branch-and-bound with unit propagation. An unsatisfiable CNF is
/// the impossibility verdict (line 6).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_TRACER_MINCOSTSAT_H
#define OPTABS_TRACER_MINCOSTSAT_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace optabs {
namespace support {
class BudgetGate;
} // namespace support
namespace tracer {

/// A literal over parameter bits.
struct BoolLit {
  uint32_t Var = 0;
  bool Positive = true;

  friend bool operator==(const BoolLit &A, const BoolLit &B) {
    return A.Var == B.Var && A.Positive == B.Positive;
  }
  friend bool operator<(const BoolLit &A, const BoolLit &B) {
    return A.Var != B.Var ? A.Var < B.Var : A.Positive < B.Positive;
  }
};

/// A CNF over parameter bits. Empty CNF = `true` (everything viable); a
/// CNF containing the empty clause is unsatisfiable (nothing viable).
class Cnf {
public:
  /// Adds a clause (a disjunction). Duplicate literals are merged and
  /// tautological clauses (x or !x) dropped; duplicate clauses are dropped.
  /// Amortized O(clause length): duplicates are detected through a hash
  /// index over clause signatures (exact comparison on collision), so
  /// clause learning stays linear as CEGAR rounds accumulate.
  void addClause(std::vector<BoolLit> Lits);

  const std::vector<std::vector<BoolLit>> &clauses() const { return Clauses; }
  bool hasEmptyClause() const { return ContainsEmptyClause; }

  /// True if \p Assignment (indexed by variable) satisfies every clause.
  bool eval(const std::vector<bool> &Assignment) const;

  /// A collision-resistant-enough signature for grouping queries with
  /// identical viable sets (§6's query-grouping optimization).
  uint64_t signature() const;

  size_t size() const { return Clauses.size(); }

private:
  std::vector<std::vector<BoolLit>> Clauses;
  /// Clause hashes, parallel to Clauses; signature() folds these.
  std::vector<uint64_t> ClauseHashes;
  /// Hash -> indices into Clauses with that hash (usually one entry).
  std::unordered_map<uint64_t, std::vector<uint32_t>> ClauseIndex;
  bool ContainsEmptyClause = false;
};

/// Result of the minimum-cost search.
struct MinCostModel {
  std::vector<bool> Assignment; ///< indexed by variable, size NumVars
  uint32_t Cost = 0;            ///< number of true bits
};

/// Finds an assignment with the fewest true bits satisfying \p F, over
/// variables [0, NumVars). Variables not mentioned in any clause are false.
/// Returns nullopt iff F is unsatisfiable. Deterministic: among minimum-
/// cost models, the one found by false-first DFS over ascending variable
/// order is returned.
///
/// When \p Gate is set, every branch decision charges one unit against it;
/// an exhausted gate aborts the search and the call returns nullopt with
/// Gate->exhausted() true. A partial search's best-so-far model is
/// discarded (its minimality is unproven), and the caller MUST check the
/// gate before reading nullopt as "unsatisfiable" — an aborted search
/// proves nothing.
std::optional<MinCostModel> solveMinCost(const Cnf &F, uint32_t NumVars,
                                         support::BudgetGate *Gate = nullptr);

} // namespace tracer
} // namespace optabs

#endif // OPTABS_TRACER_MINCOSTSAT_H
