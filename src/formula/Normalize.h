//===- Normalize.h - Semantic DNF normalization ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic normalization of DNF formulas using client knowledge about the
/// atoms. The paper's hand-written backward transfer functions (Figures 10
/// and 11) are compact because they bake in facts like "a variable holds
/// exactly one of N/L/E"; a mechanical weakest-precondition construction
/// instead yields propositionally fragmented cubes such as
///
///   (v.N /\ u.E) \/ (v.E /\ u.E) \/ (v.L /\ u.E)      ==  u.E
///
/// that purely syntactic simplification cannot re-merge. This header
/// provides the semantic rules that recover the compact forms (§8 of the
/// paper calls for exactly such a "generic semantics-preserving
/// simplification process"):
///
///  * exclusivity refinement - inside a cube, two distinct positive values
///    of one location are contradictory; a positive value makes negative
///    literals of the same location redundant; for exhaustive locations,
///    negatives covering all but one value are replaced by the remaining
///    positive;
///  * complementary merge - cubes X u {l} and X u {!l} merge to X;
///  * value-complete merge - for an exhaustive location, cubes X u {a_i}
///    for every value a_i of the location merge to X;
///  * subsumption, re-run after each merge round.
///
/// All rules are semantics-preserving (they neither grow nor shrink the
/// meaning), so Theorem 3's invariants are unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_FORMULA_NORMALIZE_H
#define OPTABS_FORMULA_NORMALIZE_H

#include "formula/Dnf.h"

namespace optabs {
namespace formula {

/// Client-declared semantics of an atom that belongs to a multi-valued
/// location (e.g. "variable u holds N, L or E" makes u.N/u.L/u.E one
/// location with three values).
struct LocationInfo {
  /// All value atoms of the location, including the queried one.
  std::vector<AtomId> Values;
  /// True when exactly one value holds in every state (vs. at most one).
  bool Exhaustive = true;
};

/// Returns the location of an atom, or nullopt for independent atoms.
using LocationFn = std::function<std::optional<LocationInfo>(AtomId)>;

/// Client-specific cube refinement: returns the semantically simplified
/// cube, or nullopt when the cube is unsatisfiable. Must preserve meaning.
using CubeRefiner = std::function<std::optional<Cube>(const Cube &)>;

/// Generic exclusivity-based refinement driven by location info alone;
/// suitable as a client's CubeRefiner when locations fully describe the
/// atom semantics.
std::optional<Cube> refineCubeByLocations(const Cube &C,
                                          const LocationFn &Loc);

/// Applies refinement and the merge rules to a fixpoint. Either argument
/// may be null (no client knowledge of that kind); the complementary merge
/// and subsumption always run.
void semanticNormalize(Dnf &D, const CubeRefiner &Refine,
                       const LocationFn &Loc);

} // namespace formula
} // namespace optabs

#endif // OPTABS_FORMULA_NORMALIZE_H
