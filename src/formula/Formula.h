//===- Formula.h - Boolean formula trees -----------------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable boolean formula trees over primitive atoms (§4.1's domain M).
/// Client backward transfer functions build the weakest precondition of a
/// single literal as a Formula; the generic meta-analysis substitutes these
/// trees into the current DNF and renormalizes. Construction applies
/// peephole simplifications (constant folding, negation pushing), so trees
/// stay close to NNF.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_FORMULA_FORMULA_H
#define OPTABS_FORMULA_FORMULA_H

#include "formula/Dnf.h"

#include <memory>
#include <vector>

namespace optabs {
namespace formula {

/// An immutable formula tree node handle. Copying is cheap (shared nodes).
class Formula {
public:
  enum class Kind : uint8_t { True, False, Literal, And, Or };

  /// Constructs `true` (the default).
  Formula();

  static Formula constant(bool B);
  static Formula lit(Lit L);
  static Formula atom(AtomId A) { return lit(Lit::pos(A)); }
  static Formula negAtom(AtomId A) { return lit(Lit::neg(A)); }
  static Formula conj(std::vector<Formula> Fs);
  static Formula disj(std::vector<Formula> Fs);
  /// Negation; pushed inward eagerly (De Morgan), so no Not nodes exist.
  static Formula negate(const Formula &F);
  /// if C then T else E, i.e. (C and T) or (!C and E).
  static Formula ite(const Formula &C, const Formula &T, const Formula &E);

  Kind kind() const;
  Lit literal() const;
  const std::vector<Formula> &children() const;

  bool isTrue() const { return kind() == Kind::True; }
  bool isFalse() const { return kind() == Kind::False; }

  /// Evaluates under an atom assignment.
  bool eval(const AtomEval &Eval) const;

  /// Exact conversion to DNF (no pruning). Intended for small formulas such
  /// as per-literal weakest preconditions; the meta-analysis applies budgets
  /// at the substitution level instead.
  Dnf toDnf() const;

  std::string toString(
      const std::function<std::string(AtomId)> &AtomName) const;

  /// Implementation detail, public only so that file-local helpers in the
  /// implementation can allocate nodes.
  struct Node;

private:
  explicit Formula(std::shared_ptr<const Node> N);
  std::shared_ptr<const Node> N;
};

} // namespace formula
} // namespace optabs

#endif // OPTABS_FORMULA_FORMULA_H
