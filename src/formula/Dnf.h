//===- Dnf.h - Literals, cubes and DNF formulas ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DNF machinery of §4.1 and Figure 8. Meta-analysis states are boolean
/// formulas over client-defined primitive atoms; the generic
/// under-approximation operator keeps them in disjunctive normal form:
///
///   toDNF(f)      converts to DNF and sorts disjuncts by size,
///   simplify(f)   drops disjuncts subsumed by earlier (shorter) ones,
///   dropk(p,d,f)  keeps the first k-1 disjuncts plus the shortest disjunct
///                 containing the current (p, d) - a beam search.
///
/// Atoms are opaque 32-bit ids whose meaning (the gamma function of the
/// paper) is supplied by the client analysis through evaluation callbacks.
///
/// Representation invariant: every cube keeps its literals sorted (by raw
/// literal value) and duplicate-free, and carries a 64-bit atom-presence
/// signature (bit `atom mod 64`). The sort order lets conjunction run as a
/// linear two-way merge and subsumption as std::includes; the signature
/// lets both short-circuit on single word ops (disjoint-atom conjunctions
/// cannot clash, and a cube whose signature covers atoms the other lacks
/// cannot be a subset).
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_FORMULA_DNF_H
#define OPTABS_FORMULA_DNF_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace optabs {
namespace support {
class BudgetGate;
class InvariantSink;
} // namespace support
namespace formula {

/// An opaque primitive-formula identifier. Clients pack their own structure
/// (e.g. "var x in must-alias set", "p maps h to L") into the 32 bits.
using AtomId = uint32_t;

/// Evaluates the truth of an atom in a concrete pair (p, d). Used by dropk
/// and by projection of final formulas onto the parameter component.
using AtomEval = std::function<bool(AtomId)>;

/// A literal: an atom or its negation.
class Lit {
public:
  Lit() : Bits(UINT32_MAX) {}
  static Lit pos(AtomId A) { return Lit(A << 1); }
  static Lit neg(AtomId A) { return Lit((A << 1) | 1); }

  AtomId atom() const { return Bits >> 1; }
  bool isNeg() const { return Bits & 1; }
  Lit negate() const { return Lit(Bits ^ 1); }

  bool eval(const AtomEval &Eval) const { return Eval(atom()) != isNeg(); }

  friend bool operator==(Lit A, Lit B) { return A.Bits == B.Bits; }
  friend bool operator!=(Lit A, Lit B) { return A.Bits != B.Bits; }
  friend bool operator<(Lit A, Lit B) { return A.Bits < B.Bits; }

  uint32_t raw() const { return Bits; }

private:
  explicit Lit(uint32_t Bits) : Bits(Bits) {}
  uint32_t Bits;
};

/// A small-size-optimized literal array: up to InlineCap literals live
/// inside the object, larger cubes spill to the heap. Cubes in this
/// codebase are overwhelmingly short (a handful of atoms constrain one
/// trace step), so the inline path removes the per-cube heap allocation
/// std::vector paid on every conjoin/copy in Dnf::product. Exposes the
/// read-only slice of the std::vector interface that Cube's clients use.
class LitVec {
public:
  static constexpr uint32_t InlineCap = 6;

  LitVec() = default;
  LitVec(const LitVec &O) { assignRaw(O.data(), O.Count); }
  LitVec(LitVec &&O) noexcept {
    if (O.isInline()) {
      std::memcpy(InlineBuf, O.InlineBuf, O.Count * sizeof(Lit));
    } else {
      Heap = O.Heap;
      Cap = O.Cap;
      O.Heap = nullptr;
      O.Cap = InlineCap;
    }
    Count = O.Count;
    O.Count = 0;
  }
  LitVec &operator=(const LitVec &O) {
    if (this != &O)
      assignRaw(O.data(), O.Count);
    return *this;
  }
  LitVec &operator=(LitVec &&O) noexcept {
    if (this == &O)
      return *this;
    if (!isInline())
      delete[] Heap;
    if (O.isInline()) {
      Cap = InlineCap;
      std::memcpy(InlineBuf, O.InlineBuf, O.Count * sizeof(Lit));
    } else {
      Heap = O.Heap;
      Cap = O.Cap;
      O.Heap = nullptr;
      O.Cap = InlineCap;
    }
    Count = O.Count;
    O.Count = 0;
    return *this;
  }
  ~LitVec() {
    if (!isInline())
      delete[] Heap;
  }

  const Lit *begin() const { return data(); }
  const Lit *end() const { return data() + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  Lit operator[](size_t I) const { return data()[I]; }
  Lit back() const { return data()[Count - 1]; }

  /// Grows capacity to at least \p N (never shrinks).
  void reserve(size_t N) {
    if (N > Cap)
      grow(static_cast<uint32_t>(N));
  }

  void push_back(Lit L) {
    if (Count == Cap)
      grow(Cap * 2);
    mutableData()[Count++] = L;
  }

  /// Replaces the contents with \p N literals from \p Src.
  void assign(const Lit *Src, size_t N) { assignRaw(Src, N); }

  friend bool operator==(const LitVec &A, const LitVec &B) {
    return A.Count == B.Count &&
           std::memcmp(A.data(), B.data(), A.Count * sizeof(Lit)) == 0;
  }
  friend bool operator!=(const LitVec &A, const LitVec &B) { return !(A == B); }
  /// Lexicographic, matching std::vector<Lit> ordering.
  friend bool operator<(const LitVec &A, const LitVec &B) {
    const Lit *PA = A.begin(), *PB = B.begin();
    const Lit *EA = A.end(), *EB = B.end();
    for (; PA != EA && PB != EB; ++PA, ++PB) {
      if (*PA < *PB)
        return true;
      if (*PB < *PA)
        return false;
    }
    return PA == EA && PB != EB;
  }
  friend bool operator==(const LitVec &A, const std::vector<Lit> &B) {
    return A.Count == B.size() &&
           std::equal(A.begin(), A.end(), B.begin(), B.end());
  }
  friend bool operator==(const std::vector<Lit> &A, const LitVec &B) {
    return B == A;
  }

private:
  bool isInline() const { return Cap == InlineCap; }
  const Lit *data() const {
    return isInline() ? reinterpret_cast<const Lit *>(InlineBuf) : Heap;
  }
  Lit *mutableData() {
    return isInline() ? reinterpret_cast<Lit *>(InlineBuf) : Heap;
  }
  void grow(uint32_t NewCap) {
    Lit *Fresh = new Lit[NewCap];
    std::memcpy(Fresh, data(), Count * sizeof(Lit));
    if (!isInline())
      delete[] Heap;
    Heap = Fresh;
    Cap = NewCap;
  }
  void assignRaw(const Lit *Src, size_t N) {
    if (N > Cap)
      grow(static_cast<uint32_t>(N));
    std::memcpy(mutableData(), Src, N * sizeof(Lit));
    Count = static_cast<uint32_t>(N);
  }

  union {
    alignas(Lit) unsigned char InlineBuf[InlineCap * sizeof(Lit)];
    Lit *Heap;
  };
  uint32_t Count = 0;
  uint32_t Cap = InlineCap;
};

/// A conjunction of literals, stored sorted and duplicate-free. The empty
/// cube is `true`. Contradictory literal sets (a and !a) are rejected at
/// construction time (make returns nullopt), so every Cube is satisfiable
/// at the propositional level.
class Cube {
public:
  Cube() = default;

  /// Normalizes \p Lits; returns nullopt if they contain a and !a.
  static std::optional<Cube> make(std::vector<Lit> Lits);

  /// Conjunction of two cubes; nullopt if contradictory. Both inputs are
  /// sorted by construction, so this is a linear merge - no re-sort.
  static std::optional<Cube> conjoin(const Cube &A, const Cube &B);

  size_t size() const { return Lits.size(); }
  bool isTrue() const { return Lits.empty(); }
  const LitVec &literals() const { return Lits; }

  /// 64-bit atom-presence filter: bit (atom mod 64) is set for every atom
  /// occurring in the cube (positively or negatively).
  uint64_t signature() const { return Sig; }

  /// Entailment this => Other: every literal of Other occurs in this.
  /// (The paper's fast, incomplete syntactic subsumption check.)
  bool implies(const Cube &Other) const;

  bool eval(const AtomEval &Eval) const {
    for (Lit L : Lits)
      if (!L.eval(Eval))
        return false;
    return true;
  }

  friend bool operator==(const Cube &A, const Cube &B) {
    return A.Sig == B.Sig && A.Lits == B.Lits;
  }

private:
  static uint64_t sigBit(AtomId A) { return uint64_t(1) << (A & 63); }

  LitVec Lits;
  uint64_t Sig = 0;
};

/// A disjunction of cubes. No cubes = `false`; a lone empty cube = `true`.
class Dnf {
public:
  Dnf() = default;

  static Dnf constFalse() { return Dnf(); }
  static Dnf constTrue() {
    Dnf D;
    D.Cubes.push_back(Cube());
    return D;
  }
  static Dnf singleLit(Lit L) {
    Dnf D;
    D.Cubes.push_back(*Cube::make({L}));
    return D;
  }
  static Dnf fromCubes(std::vector<Cube> Cubes) {
    Dnf D;
    D.Cubes = std::move(Cubes);
    return D;
  }

  bool isFalse() const { return Cubes.empty(); }
  bool isTrue() const { return Cubes.size() == 1 && Cubes[0].isTrue(); }
  size_t size() const { return Cubes.size(); }
  const std::vector<Cube> &cubes() const { return Cubes; }

  /// Moves the cube list out, leaving this formula false. The inverse of
  /// fromCubes; lets normalization passes shuttle cubes in and out of Dnf
  /// form without copying them.
  std::vector<Cube> takeCubes() { return std::move(Cubes); }

  /// Capacity hint for cube-producing loops (orWith, product callers).
  void reserve(size_t N) { Cubes.reserve(N); }

  bool eval(const AtomEval &Eval) const {
    for (const Cube &C : Cubes)
      if (C.eval(Eval))
        return true;
    return false;
  }

  /// Sorts disjuncts by size (shortest first), ties broken by literal order
  /// for determinism. This is the ordering assumed by simplify and dropk.
  void sortBySize();

  /// Figure 8 simplify: removes disjunct i when some earlier disjunct j < i
  /// implies it. Assumes sortBySize() was applied; keeps the order.
  void simplify();

  /// Figure 8 dropk: under-approximates to at most K disjuncts. When one of
  /// the first K disjuncts is satisfied under \p Eval (which encodes the
  /// current pair (p, d)), the first K are kept; otherwise the first K-1
  /// plus the shortest satisfied disjunct beyond them. Requires the formula
  /// to be satisfied under Eval (Theorem 3's progress guarantee); a
  /// violation is reported to \p Sink (see support/Invariants.h) and the
  /// first K disjuncts are kept - a sound under-approximation, minus the
  /// progress guarantee the report flags.
  void dropK(unsigned K, const AtomEval &Eval,
             support::InvariantSink *Sink = nullptr);

  /// The full approx operator of §4.1: sortBySize + simplify, then dropK
  /// only when more than K disjuncts remain. K = 0 means "no bound".
  void approx(unsigned K, const AtomEval &Eval,
              support::InvariantSink *Sink = nullptr);

  /// Disjunction (concatenates cube lists; call approx/simplify after).
  void orWith(const Dnf &Other);

  /// Distributes (this AND Other) into DNF. \p SoftCap bounds the number of
  /// result cubes before pruning: when exceeded, cubes satisfied under
  /// \p Eval and the shortest remaining cubes are preferred (a sound
  /// under-approximation in the sense of the approx operator). SoftCap = 0
  /// means unbounded. The retention invariant of the pruning path (a
  /// satisfied cube survives whenever one existed) is checked and reported
  /// to \p Sink on violation. When \p Gate is set the cross-product size is
  /// charged against it before any term is built; an exhausted gate makes
  /// product return false (the empty Dnf) — a sound under-approximation the
  /// caller must detect via Gate->exhausted() and treat as "budget ran out",
  /// not as a proved-unreachable condition.
  static Dnf product(const Dnf &A, const Dnf &B, size_t SoftCap,
                     const AtomEval &Eval,
                     support::InvariantSink *Sink = nullptr,
                     support::BudgetGate *Gate = nullptr);

  /// Structural equality of the cube lists (order-sensitive; two Dnfs that
  /// went through the same normalization pipeline compare equal iff they
  /// denote the same normalized formula). Used by the backward engine's
  /// loop-segment fixpoint detection.
  friend bool operator==(const Dnf &A, const Dnf &B) {
    return A.Cubes == B.Cubes;
  }
  friend bool operator!=(const Dnf &A, const Dnf &B) { return !(A == B); }

  std::string toString(
      const std::function<std::string(AtomId)> &AtomName) const;

private:
  std::vector<Cube> Cubes;
};

} // namespace formula
} // namespace optabs

#endif // OPTABS_FORMULA_DNF_H
