//===- Dnf.h - Literals, cubes and DNF formulas ----------------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DNF machinery of §4.1 and Figure 8. Meta-analysis states are boolean
/// formulas over client-defined primitive atoms; the generic
/// under-approximation operator keeps them in disjunctive normal form:
///
///   toDNF(f)      converts to DNF and sorts disjuncts by size,
///   simplify(f)   drops disjuncts subsumed by earlier (shorter) ones,
///   dropk(p,d,f)  keeps the first k-1 disjuncts plus the shortest disjunct
///                 containing the current (p, d) - a beam search.
///
/// Atoms are opaque 32-bit ids whose meaning (the gamma function of the
/// paper) is supplied by the client analysis through evaluation callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_FORMULA_DNF_H
#define OPTABS_FORMULA_DNF_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace optabs {
namespace support {
class BudgetGate;
class InvariantSink;
} // namespace support
namespace formula {

/// An opaque primitive-formula identifier. Clients pack their own structure
/// (e.g. "var x in must-alias set", "p maps h to L") into the 32 bits.
using AtomId = uint32_t;

/// Evaluates the truth of an atom in a concrete pair (p, d). Used by dropk
/// and by projection of final formulas onto the parameter component.
using AtomEval = std::function<bool(AtomId)>;

/// A literal: an atom or its negation.
class Lit {
public:
  Lit() : Bits(UINT32_MAX) {}
  static Lit pos(AtomId A) { return Lit(A << 1); }
  static Lit neg(AtomId A) { return Lit((A << 1) | 1); }

  AtomId atom() const { return Bits >> 1; }
  bool isNeg() const { return Bits & 1; }
  Lit negate() const { return Lit(Bits ^ 1); }

  bool eval(const AtomEval &Eval) const { return Eval(atom()) != isNeg(); }

  friend bool operator==(Lit A, Lit B) { return A.Bits == B.Bits; }
  friend bool operator!=(Lit A, Lit B) { return A.Bits != B.Bits; }
  friend bool operator<(Lit A, Lit B) { return A.Bits < B.Bits; }

  uint32_t raw() const { return Bits; }

private:
  explicit Lit(uint32_t Bits) : Bits(Bits) {}
  uint32_t Bits;
};

/// A conjunction of literals, stored sorted and duplicate-free. The empty
/// cube is `true`. Contradictory literal sets (a and !a) are rejected at
/// construction time (make returns nullopt), so every Cube is satisfiable
/// at the propositional level.
class Cube {
public:
  Cube() = default;

  /// Normalizes \p Lits; returns nullopt if they contain a and !a.
  static std::optional<Cube> make(std::vector<Lit> Lits);

  /// Conjunction of two cubes; nullopt if contradictory.
  static std::optional<Cube> conjoin(const Cube &A, const Cube &B);

  size_t size() const { return Lits.size(); }
  bool isTrue() const { return Lits.empty(); }
  const std::vector<Lit> &literals() const { return Lits; }

  /// Entailment this => Other: every literal of Other occurs in this.
  /// (The paper's fast, incomplete syntactic subsumption check.)
  bool implies(const Cube &Other) const;

  bool eval(const AtomEval &Eval) const {
    for (Lit L : Lits)
      if (!L.eval(Eval))
        return false;
    return true;
  }

  friend bool operator==(const Cube &A, const Cube &B) {
    return A.Lits == B.Lits;
  }

private:
  std::vector<Lit> Lits;
};

/// A disjunction of cubes. No cubes = `false`; a lone empty cube = `true`.
class Dnf {
public:
  Dnf() = default;

  static Dnf constFalse() { return Dnf(); }
  static Dnf constTrue() {
    Dnf D;
    D.Cubes.push_back(Cube());
    return D;
  }
  static Dnf singleLit(Lit L) {
    Dnf D;
    D.Cubes.push_back(*Cube::make({L}));
    return D;
  }
  static Dnf fromCubes(std::vector<Cube> Cubes) {
    Dnf D;
    D.Cubes = std::move(Cubes);
    return D;
  }

  bool isFalse() const { return Cubes.empty(); }
  bool isTrue() const { return Cubes.size() == 1 && Cubes[0].isTrue(); }
  size_t size() const { return Cubes.size(); }
  const std::vector<Cube> &cubes() const { return Cubes; }

  bool eval(const AtomEval &Eval) const {
    for (const Cube &C : Cubes)
      if (C.eval(Eval))
        return true;
    return false;
  }

  /// Sorts disjuncts by size (shortest first), ties broken by literal order
  /// for determinism. This is the ordering assumed by simplify and dropk.
  void sortBySize();

  /// Figure 8 simplify: removes disjunct i when some earlier disjunct j < i
  /// implies it. Assumes sortBySize() was applied; keeps the order.
  void simplify();

  /// Figure 8 dropk: under-approximates to at most K disjuncts. When one of
  /// the first K disjuncts is satisfied under \p Eval (which encodes the
  /// current pair (p, d)), the first K are kept; otherwise the first K-1
  /// plus the shortest satisfied disjunct beyond them. Requires the formula
  /// to be satisfied under Eval (Theorem 3's progress guarantee); a
  /// violation is reported to \p Sink (see support/Invariants.h) and the
  /// first K disjuncts are kept - a sound under-approximation, minus the
  /// progress guarantee the report flags.
  void dropK(unsigned K, const AtomEval &Eval,
             support::InvariantSink *Sink = nullptr);

  /// The full approx operator of §4.1: sortBySize + simplify, then dropK
  /// only when more than K disjuncts remain. K = 0 means "no bound".
  void approx(unsigned K, const AtomEval &Eval,
              support::InvariantSink *Sink = nullptr);

  /// Disjunction (concatenates cube lists; call approx/simplify after).
  void orWith(const Dnf &Other);

  /// Distributes (this AND Other) into DNF. \p SoftCap bounds the number of
  /// result cubes before pruning: when exceeded, cubes satisfied under
  /// \p Eval and the shortest remaining cubes are preferred (a sound
  /// under-approximation in the sense of the approx operator). SoftCap = 0
  /// means unbounded. The retention invariant of the pruning path (a
  /// satisfied cube survives whenever one existed) is checked and reported
  /// to \p Sink on violation. When \p Gate is set the cross-product size is
  /// charged against it before any term is built; an exhausted gate makes
  /// product return false (the empty Dnf) — a sound under-approximation the
  /// caller must detect via Gate->exhausted() and treat as "budget ran out",
  /// not as a proved-unreachable condition.
  static Dnf product(const Dnf &A, const Dnf &B, size_t SoftCap,
                     const AtomEval &Eval,
                     support::InvariantSink *Sink = nullptr,
                     support::BudgetGate *Gate = nullptr);

  std::string toString(
      const std::function<std::string(AtomId)> &AtomName) const;

private:
  std::vector<Cube> Cubes;
};

} // namespace formula
} // namespace optabs

#endif // OPTABS_FORMULA_DNF_H
