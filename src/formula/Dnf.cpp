//===- Dnf.cpp - Literals, cubes and DNF formulas ---------------------------===//

#include "formula/Dnf.h"

#include "support/Budget.h"
#include "support/Invariants.h"
#include "support/Metrics.h"

#include <algorithm>

namespace optabs {
namespace formula {

std::optional<Cube> Cube::make(std::vector<Lit> Lits) {
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  // Complementary literals of one atom are adjacent after sorting.
  for (size_t I = 0; I + 1 < Lits.size(); ++I)
    if (Lits[I].atom() == Lits[I + 1].atom())
      return std::nullopt;
  Cube C;
  C.Lits.assign(Lits.data(), Lits.size());
  for (Lit L : Lits)
    C.Sig |= sigBit(L.atom());
  return C;
}

std::optional<Cube> Cube::conjoin(const Cube &A, const Cube &B) {
  if (A.isTrue())
    return B;
  if (B.isTrue())
    return A;
  Cube R;
  R.Lits.reserve(A.Lits.size() + B.Lits.size());
  R.Sig = A.Sig | B.Sig;
  const Lit *PA = A.Lits.begin(), *EA = A.Lits.end();
  const Lit *PB = B.Lits.begin(), *EB = B.Lits.end();
  if ((A.Sig & B.Sig) == 0) {
    // Disjoint atom signatures: the cubes share no atom (equal atoms would
    // share a signature bit), so neither duplicates nor complementary pairs
    // can arise - a plain unchecked merge suffices.
    while (PA != EA && PB != EB)
      R.Lits.push_back(*PB < *PA ? *PB++ : *PA++);
  } else {
    while (PA != EA && PB != EB) {
      if (*PA == *PB) {
        R.Lits.push_back(*PA);
        ++PA;
        ++PB;
      } else if (PA->atom() == PB->atom()) {
        return std::nullopt; // a and !a: contradiction
      } else {
        R.Lits.push_back(*PB < *PA ? *PB++ : *PA++);
      }
    }
  }
  // Both inputs are sorted and duplicate-free, so the merged tail needs no
  // further checks.
  for (; PA != EA; ++PA)
    R.Lits.push_back(*PA);
  for (; PB != EB; ++PB)
    R.Lits.push_back(*PB);
  return R;
}

bool Cube::implies(const Cube &Other) const {
  // this => Other iff Other's literals are a subset of ours. An atom
  // present in Other but absent here shows up as a signature bit Other has
  // that we lack - reject on one word op before the literal scan.
  if ((Other.Sig & ~Sig) != 0 || Other.Lits.size() > Lits.size())
    return false;
  return std::includes(Lits.begin(), Lits.end(), Other.Lits.begin(),
                       Other.Lits.end());
}

void Dnf::sortBySize() {
  std::sort(Cubes.begin(), Cubes.end(), [](const Cube &A, const Cube &B) {
    if (A.size() != B.size())
      return A.size() < B.size();
    return A.literals() < B.literals();
  });
  Cubes.erase(std::unique(Cubes.begin(), Cubes.end()), Cubes.end());
}

void Dnf::simplify() {
  std::vector<Cube> Kept;
  for (Cube &Candidate : Cubes) {
    bool Subsumed = false;
    for (const Cube &Earlier : Kept) {
      if (Candidate.implies(Earlier)) {
        Subsumed = true;
        break;
      }
    }
    if (!Subsumed)
      Kept.push_back(std::move(Candidate));
  }
  Cubes = std::move(Kept);
}

void Dnf::dropK(unsigned K, const AtomEval &Eval,
                support::InvariantSink *Sink) {
  if (K < 1) {
    support::reportInvariant(Sink, "dropk-beam-width", "Dnf::dropK",
                             "beam width must be at least 1; formula left "
                             "unpruned");
    return;
  }
  if (Cubes.size() <= K)
    return;
  if (support::metricsEnabled()) {
    auto &Reg = support::MetricRegistry::global();
    static auto &Calls = Reg.counter("optabs_dnf_dropk_calls_total");
    static auto &Dropped = Reg.counter("optabs_dnf_dropk_cubes_dropped_total");
    Calls.add(1);
    Dropped.add(Cubes.size() - K);
  }
  bool HaveSatisfied = false;
  for (size_t I = 0; I < K; ++I) {
    if (Cubes[I].eval(Eval)) {
      HaveSatisfied = true;
      break;
    }
  }
  std::vector<Cube> Kept(Cubes.begin(), Cubes.begin() + K);
  if (!HaveSatisfied) {
    // A satisfied cube must be retained but none sits in the prefix: trade
    // the K-th cube for the shortest satisfied one beyond it (cubes are
    // sorted by size, so the first satisfied one is the shortest).
    Kept.pop_back();
    bool Found = false;
    for (size_t I = K - 1; I < Cubes.size(); ++I) {
      if (Cubes[I].eval(Eval)) {
        Kept.push_back(Cubes[I]);
        Found = true;
        break;
      }
    }
    if (!Found) {
      // Theorem 3's progress guarantee requires the current (p, d) to
      // satisfy the formula here. Keep the first K cubes - still a sound
      // under-approximation - and flag that progress is no longer
      // guaranteed so the driver can recover (it falls back to eliminating
      // the current abstraction explicitly).
      support::reportInvariant(
          Sink, "dropk-progress", "Dnf::dropK",
          "no disjunct of the " + std::to_string(Cubes.size()) +
              "-cube formula is satisfied by the current (p, d); Theorem 3 "
              "progress guarantee lost");
      Kept.push_back(Cubes[K - 1]);
    }
  }
  Cubes = std::move(Kept);
}

void Dnf::approx(unsigned K, const AtomEval &Eval,
                 support::InvariantSink *Sink) {
  sortBySize();
  simplify();
  if (K > 0 && Cubes.size() > K)
    dropK(K, Eval, Sink);
}

void Dnf::orWith(const Dnf &Other) {
  Cubes.insert(Cubes.end(), Other.Cubes.begin(), Other.Cubes.end());
}

Dnf Dnf::product(const Dnf &A, const Dnf &B, size_t SoftCap,
                 const AtomEval &Eval, support::InvariantSink *Sink,
                 support::BudgetGate *Gate) {
  Dnf Result;
  if (support::faultsEnabled()) {
    // This site runs under the caller's gate (if any), so armed faults are
    // consulted by name here: Alloc throws from faultPoint itself;
    // Cancel/Invariant are realized against the gate when one exists.
    if (auto K = support::faultPoint("dnf.product"); K && Gate) {
      if (*K == support::FaultKind::Invariant)
        reportInvariant(Sink, "injected-fault", "dnf.product",
                        "fault injection: forced invariant breakage");
      Gate->exhaust(support::Resource::Cancelled);
    }
  }
  if (Gate) {
    // Charge the full cross-product size up front: the cost of this call is
    // |A| * |B| conjunctions whether or not they survive pruning, and the
    // count is schedule-independent, so a step budget trips here at the
    // same term on every NumThreads. An exhausted gate yields false — a
    // sound under-approximation, flagged to the caller via the gate itself.
    if (!Gate->charge(A.Cubes.size() * B.Cubes.size()))
      return Result;
  }
  // Reserve for the full cross product, clamped so a huge (soon-pruned)
  // product does not balloon the allocation.
  size_t Hint = A.Cubes.size() * B.Cubes.size();
  Result.Cubes.reserve(SoftCap > 0 ? std::min(Hint, SoftCap + 1) : Hint);
  for (const Cube &CA : A.Cubes) {
    for (const Cube &CB : B.Cubes) {
      if (auto C = Cube::conjoin(CA, CB))
        Result.Cubes.push_back(std::move(*C));
    }
  }
  if (support::metricsEnabled()) {
    auto &Reg = support::MetricRegistry::global();
    static auto &Calls = Reg.counter("optabs_dnf_product_calls_total");
    static auto &Cubes = Reg.histogram("optabs_dnf_product_cubes");
    Calls.add(1);
    Cubes.record(Result.Cubes.size());
  }
  if (SoftCap > 0 && Result.Cubes.size() > SoftCap) {
    // Sound mid-product pruning: keep the cap's worth of shortest cubes,
    // preferring a satisfied cube when one exists so the progress invariant
    // can be maintained downstream. Unlike dropK, no satisfied cube need
    // exist here: the product of a single source cube's substitution may
    // well be unsatisfied under the current (p, d) even though the overall
    // formula is satisfied.
    Result.sortBySize();
    Result.simplify();
    if (Result.Cubes.size() > SoftCap) {
      std::vector<Cube> Kept(Result.Cubes.begin(),
                             Result.Cubes.begin() + (SoftCap - 1));
      bool HaveSatisfied = false;
      for (const Cube &C : Kept) {
        if (C.eval(Eval)) {
          HaveSatisfied = true;
          break;
        }
      }
      size_t Extra = SoftCap - 1;
      for (size_t I = SoftCap - 1; !HaveSatisfied && I < Result.Cubes.size();
           ++I) {
        if (Result.Cubes[I].eval(Eval)) {
          Extra = I;
          HaveSatisfied = true;
        }
      }
      Kept.push_back(Result.Cubes[Extra]);
      // Retention invariant of the pruning path: whenever a satisfied cube
      // existed anywhere in the full product, the kept prefix must still
      // contain one - otherwise the downstream dropk progress guarantee is
      // silently broken mid-product.
      if (HaveSatisfied && !Kept.back().eval(Eval)) {
        bool KeptSatisfied = false;
        for (const Cube &C : Kept) {
          if (C.eval(Eval)) {
            KeptSatisfied = true;
            break;
          }
        }
        if (!KeptSatisfied)
          support::reportInvariant(
              Sink, "product-softcap-retention", "Dnf::product",
              "soft-cap pruning dropped every satisfied cube of a " +
                  std::to_string(Result.Cubes.size()) + "-cube product");
      }
      Result.Cubes = std::move(Kept);
    }
  }
  return Result;
}

std::string Dnf::toString(
    const std::function<std::string(AtomId)> &AtomName) const {
  if (isFalse())
    return "false";
  if (isTrue())
    return "true";
  std::string S;
  for (size_t I = 0; I < Cubes.size(); ++I) {
    if (I > 0)
      S += " \\/ ";
    const Cube &C = Cubes[I];
    if (C.isTrue()) {
      S += "true";
      continue;
    }
    if (C.size() > 1 && Cubes.size() > 1)
      S += "(";
    for (size_t J = 0; J < C.size(); ++J) {
      if (J > 0)
        S += " /\\ ";
      Lit L = C.literals()[J];
      if (L.isNeg())
        S += "!";
      S += AtomName(L.atom());
    }
    if (C.size() > 1 && Cubes.size() > 1)
      S += ")";
  }
  return S;
}

} // namespace formula
} // namespace optabs
