//===- Normalize.cpp - Semantic DNF normalization ----------------------------===//

#include "formula/Normalize.h"

#include <algorithm>
#include <map>

namespace optabs {
namespace formula {

std::optional<Cube> refineCubeByLocations(const Cube &C,
                                          const LocationFn &Loc) {
  // Group the cube's literals by location (identified by the sorted value
  // list's first atom, which is stable per location).
  struct Group {
    LocationInfo Info;
    std::vector<Lit> Present;
  };
  std::map<AtomId, Group> Groups;
  std::vector<Lit> Independent;
  for (Lit L : C.literals()) {
    auto Info = Loc(L.atom());
    if (!Info) {
      Independent.push_back(L);
      continue;
    }
    assert(!Info->Values.empty());
    AtomId Key = *std::min_element(Info->Values.begin(), Info->Values.end());
    auto &G = Groups[Key];
    if (G.Present.empty())
      G.Info = std::move(*Info);
    G.Present.push_back(L);
  }

  std::vector<Lit> Result = std::move(Independent);
  for (auto &[Key, G] : Groups) {
    (void)Key;
    std::vector<AtomId> Positive;
    std::vector<AtomId> Negative;
    for (Lit L : G.Present)
      (L.isNeg() ? Negative : Positive).push_back(L.atom());

    std::sort(Positive.begin(), Positive.end());
    Positive.erase(std::unique(Positive.begin(), Positive.end()),
                   Positive.end());
    if (Positive.size() > 1)
      return std::nullopt; // two distinct values of one location
    if (Positive.size() == 1) {
      // Any negative literal of the same location is implied (different
      // value) or contradictory (same value, impossible here since Cube
      // construction rejects complementary pairs).
      Result.push_back(Lit::pos(Positive[0]));
      continue;
    }
    // Negatives only.
    std::sort(Negative.begin(), Negative.end());
    Negative.erase(std::unique(Negative.begin(), Negative.end()),
                   Negative.end());
    if (G.Info.Exhaustive) {
      std::vector<AtomId> Remaining;
      for (AtomId V : G.Info.Values)
        if (!std::binary_search(Negative.begin(), Negative.end(), V))
          Remaining.push_back(V);
      if (Remaining.empty())
        return std::nullopt; // no value left for this location
      if (Remaining.size() == 1) {
        Result.push_back(Lit::pos(Remaining[0]));
        continue;
      }
    }
    for (AtomId V : Negative)
      Result.push_back(Lit::neg(V));
  }
  return Cube::make(std::move(Result));
}

namespace {

/// One round of complementary-literal and value-complete merging. Returns
/// true if anything changed.
bool mergeRound(std::vector<Cube> &Cubes, const LocationFn &Loc) {
  // Index cubes by their literal vectors for O(log n) membership tests.
  auto Find = [&](const std::vector<Lit> &Lits) -> int {
    for (size_t I = 0; I < Cubes.size(); ++I)
      if (Cubes[I].literals() == Lits)
        return static_cast<int>(I);
    return -1;
  };
  auto Without = [](const Cube &C, Lit L) {
    std::vector<Lit> Lits;
    for (Lit X : C.literals())
      if (X != L)
        Lits.push_back(X);
    return Lits;
  };
  auto WithExtra = [](std::vector<Lit> Base, Lit L) {
    auto It = std::lower_bound(Base.begin(), Base.end(), L);
    Base.insert(It, L);
    return Base;
  };

  for (size_t I = 0; I < Cubes.size(); ++I) {
    for (Lit L : Cubes[I].literals()) {
      std::vector<Lit> Rest = Without(Cubes[I], L);

      // Complementary merge: X u {l} and X u {!l} -> X.
      int Partner = Find(WithExtra(Rest, L.negate()));
      if (Partner >= 0 && Partner != static_cast<int>(I)) {
        Cube Merged = *Cube::make(Rest);
        size_t A = std::min(I, static_cast<size_t>(Partner));
        size_t B = std::max(I, static_cast<size_t>(Partner));
        Cubes.erase(Cubes.begin() + B);
        Cubes[A] = std::move(Merged);
        return true;
      }

      // Value-complete merge: X u {a_i} present for every value of an
      // exhaustive location -> X.
      if (L.isNeg())
        continue;
      auto Info = Loc(L.atom());
      if (!Info || !Info->Exhaustive || Info->Values.size() < 2)
        continue;
      std::vector<size_t> Members;
      bool Complete = true;
      for (AtomId V : Info->Values) {
        int At = Find(WithExtra(Rest, Lit::pos(V)));
        if (At < 0) {
          Complete = false;
          break;
        }
        Members.push_back(static_cast<size_t>(At));
      }
      if (!Complete)
        continue;
      std::sort(Members.begin(), Members.end());
      Members.erase(std::unique(Members.begin(), Members.end()),
                    Members.end());
      Cube Merged = *Cube::make(Rest);
      for (size_t J = Members.size(); J-- > 0;)
        Cubes.erase(Cubes.begin() + Members[J]);
      Cubes.push_back(std::move(Merged));
      return true;
    }
  }
  return false;
}

} // namespace

void semanticNormalize(Dnf &D, const CubeRefiner &Refine,
                       const LocationFn &Loc) {
  std::vector<Cube> Cubes;
  for (const Cube &C : D.cubes()) {
    if (!Refine) {
      Cubes.push_back(C);
      continue;
    }
    if (auto R = Refine(C))
      Cubes.push_back(std::move(*R));
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Subsumption first keeps the candidate set small for merging.
    Dnf Tmp = Dnf::fromCubes(std::move(Cubes));
    Tmp.sortBySize();
    Tmp.simplify();
    Cubes.assign(Tmp.cubes().begin(), Tmp.cubes().end());

    if (Loc && mergeRound(Cubes, Loc)) {
      Changed = true;
      continue;
    }
    // Complementary merging alone (no location info).
    if (!Loc) {
      LocationFn None = [](AtomId) { return std::nullopt; };
      if (mergeRound(Cubes, None))
        Changed = true;
    }
  }
  D = Dnf::fromCubes(std::move(Cubes));
}

} // namespace formula
} // namespace optabs
