//===- Normalize.cpp - Semantic DNF normalization ----------------------------===//

#include "formula/Normalize.h"

#include <algorithm>
#include <unordered_map>

namespace optabs {
namespace formula {

std::optional<Cube> refineCubeByLocations(const Cube &C,
                                          const LocationFn &Loc) {
  // Group the cube's literals by location (identified by the sorted value
  // list's first atom, which is stable per location). Cubes hold a handful
  // of literals, so flat vectors beat a node-based map here.
  struct Group {
    AtomId Key;
    LocationInfo Info;
    std::vector<Lit> Present;
  };
  std::vector<Group> Groups;
  std::vector<Lit> Independent;
  for (Lit L : C.literals()) {
    auto Info = Loc(L.atom());
    if (!Info) {
      Independent.push_back(L);
      continue;
    }
    assert(!Info->Values.empty());
    AtomId Key = *std::min_element(Info->Values.begin(), Info->Values.end());
    auto It = std::find_if(Groups.begin(), Groups.end(),
                           [Key](const Group &G) { return G.Key == Key; });
    if (It == Groups.end()) {
      Groups.push_back(Group{Key, std::move(*Info), {}});
      It = Groups.end() - 1;
    }
    It->Present.push_back(L);
  }
  std::sort(Groups.begin(), Groups.end(),
            [](const Group &A, const Group &B) { return A.Key < B.Key; });

  std::vector<Lit> Result = std::move(Independent);
  for (Group &G : Groups) {
    std::vector<AtomId> Positive;
    std::vector<AtomId> Negative;
    for (Lit L : G.Present)
      (L.isNeg() ? Negative : Positive).push_back(L.atom());

    std::sort(Positive.begin(), Positive.end());
    Positive.erase(std::unique(Positive.begin(), Positive.end()),
                   Positive.end());
    if (Positive.size() > 1)
      return std::nullopt; // two distinct values of one location
    if (Positive.size() == 1) {
      // Any negative literal of the same location is implied (different
      // value) or contradictory (same value, impossible here since Cube
      // construction rejects complementary pairs).
      Result.push_back(Lit::pos(Positive[0]));
      continue;
    }
    // Negatives only.
    std::sort(Negative.begin(), Negative.end());
    Negative.erase(std::unique(Negative.begin(), Negative.end()),
                   Negative.end());
    if (G.Info.Exhaustive) {
      std::vector<AtomId> Remaining;
      for (AtomId V : G.Info.Values)
        if (!std::binary_search(Negative.begin(), Negative.end(), V))
          Remaining.push_back(V);
      if (Remaining.empty())
        return std::nullopt; // no value left for this location
      if (Remaining.size() == 1) {
        Result.push_back(Lit::pos(Remaining[0]));
        continue;
      }
    }
    for (AtomId V : Negative)
      Result.push_back(Lit::neg(V));
  }
  return Cube::make(std::move(Result));
}

namespace {

/// Order-independent (commutative) hash of one literal, mixed well enough
/// that sums of literal hashes rarely collide. Collisions are handled by an
/// exact check, so this only affects speed.
uint64_t litHash(Lit L) {
  uint64_t X = L.raw() + 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Commutative hash of a whole cube: the sum of its literal hashes. A
/// one-literal substitution is a constant-time hash update, which is what
/// lets mergeRound probe for partner cubes without materializing them.
uint64_t cubeHash(const Cube &C) {
  uint64_t H = 0;
  for (Lit L : C.literals())
    H += litHash(L);
  return H;
}

/// True when A with \p La removed equals B with \p Lb removed, i.e. B is A
/// with one literal substituted. Both literal lists are sorted and
/// duplicate-free; La must occur in A and Lb in B for a match.
bool sameExcept(const Cube &A, Lit La, const Cube &B, Lit Lb) {
  if (A.size() != B.size())
    return false;
  const Lit *PA = A.literals().begin(), *EA = A.literals().end();
  const Lit *PB = B.literals().begin(), *EB = B.literals().end();
  bool SkippedA = false, SkippedB = false;
  while (PA != EA && PB != EB) {
    if (!SkippedA && *PA == La) {
      ++PA;
      SkippedA = true;
      continue;
    }
    if (!SkippedB && *PB == Lb) {
      ++PB;
      SkippedB = true;
      continue;
    }
    if (*PA != *PB)
      return false;
    ++PA;
    ++PB;
  }
  if (PA != EA && !SkippedA && *PA == La) {
    ++PA;
    SkippedA = true;
  }
  if (PB != EB && !SkippedB && *PB == Lb) {
    ++PB;
    SkippedB = true;
  }
  return PA == EA && PB == EB && SkippedA && SkippedB;
}

/// One round of complementary-literal and value-complete merging. Returns
/// true if anything changed. The candidate scan order (ascending cube
/// index, literal order within the cube, complementary before
/// value-complete) fixes which merge fires first, so the fixpoint result
/// is deterministic.
bool mergeRound(std::vector<Cube> &Cubes, const LocationFn &Loc) {
  // Index cubes by commutative hash: the partner of a one-literal
  // substitution is found by adjusting the hash in O(1) and verifying the
  // (rare) candidates exactly. Cubes are duplicate-free here (subsumption
  // ran just before), so a verified match is unique.
  std::unordered_multimap<uint64_t, size_t> Index;
  std::vector<uint64_t> Hashes(Cubes.size());
  Index.reserve(Cubes.size());
  for (size_t I = 0; I < Cubes.size(); ++I) {
    Hashes[I] = cubeHash(Cubes[I]);
    Index.emplace(Hashes[I], I);
  }
  // First cube whose literals are Cubes[I] with La replaced by Lb; -1 if
  // absent. Equivalent to a linear scan for the substituted literal list.
  auto FindSubst = [&](size_t I, Lit La, Lit Lb) -> int {
    uint64_t H = Hashes[I] - litHash(La) + litHash(Lb);
    int Best = -1;
    for (auto [It, End] = Index.equal_range(H); It != End; ++It)
      if (sameExcept(Cubes[I], La, Cubes[It->second], Lb) &&
          (Best < 0 || static_cast<int>(It->second) < Best))
        Best = static_cast<int>(It->second);
    return Best;
  };
  auto Without = [](const Cube &C, Lit L) {
    std::vector<Lit> Lits;
    for (Lit X : C.literals())
      if (X != L)
        Lits.push_back(X);
    return Lits;
  };

  for (size_t I = 0; I < Cubes.size(); ++I) {
    for (Lit L : Cubes[I].literals()) {
      // Complementary merge: X u {l} and X u {!l} -> X.
      int Partner = FindSubst(I, L, L.negate());
      if (Partner >= 0 && Partner != static_cast<int>(I)) {
        Cube Merged = *Cube::make(Without(Cubes[I], L));
        size_t A = std::min(I, static_cast<size_t>(Partner));
        size_t B = std::max(I, static_cast<size_t>(Partner));
        Cubes.erase(Cubes.begin() + B);
        Cubes[A] = std::move(Merged);
        return true;
      }

      // Value-complete merge: X u {a_i} present for every value of an
      // exhaustive location -> X.
      if (L.isNeg())
        continue;
      auto Info = Loc(L.atom());
      if (!Info || !Info->Exhaustive || Info->Values.size() < 2)
        continue;
      std::vector<size_t> Members;
      bool Complete = true;
      for (AtomId V : Info->Values) {
        int At = FindSubst(I, L, Lit::pos(V));
        if (At < 0) {
          Complete = false;
          break;
        }
        Members.push_back(static_cast<size_t>(At));
      }
      if (!Complete)
        continue;
      std::sort(Members.begin(), Members.end());
      Members.erase(std::unique(Members.begin(), Members.end()),
                    Members.end());
      Cube Merged = *Cube::make(Without(Cubes[I], L));
      for (size_t J = Members.size(); J-- > 0;)
        Cubes.erase(Cubes.begin() + Members[J]);
      Cubes.push_back(std::move(Merged));
      return true;
    }
  }
  return false;
}

} // namespace

void semanticNormalize(Dnf &D, const CubeRefiner &Refine,
                       const LocationFn &Loc) {
  std::vector<Cube> Cubes;
  for (const Cube &C : D.cubes()) {
    if (!Refine) {
      Cubes.push_back(C);
      continue;
    }
    if (auto R = Refine(C))
      Cubes.push_back(std::move(*R));
  }

  // The client's atomLocation builds a fresh LocationInfo per call; the
  // same few atoms are queried over and over across merge rounds, so one
  // per-call cache pays for itself immediately.
  std::unordered_map<AtomId, std::optional<LocationInfo>> LocCache;
  LocationFn CachedLoc;
  if (Loc)
    CachedLoc = [&Loc, &LocCache](AtomId A) -> std::optional<LocationInfo> {
      auto It = LocCache.find(A);
      if (It == LocCache.end())
        It = LocCache.emplace(A, Loc(A)).first;
      return It->second;
    };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Subsumption first keeps the candidate set small for merging.
    Dnf Tmp = Dnf::fromCubes(std::move(Cubes));
    Tmp.sortBySize();
    Tmp.simplify();
    Cubes = Tmp.takeCubes();

    if (CachedLoc && mergeRound(Cubes, CachedLoc)) {
      Changed = true;
      continue;
    }
    // Complementary merging alone (no location info).
    if (!Loc) {
      LocationFn None = [](AtomId) { return std::nullopt; };
      if (mergeRound(Cubes, None))
        Changed = true;
    }
  }
  D = Dnf::fromCubes(std::move(Cubes));
}

} // namespace formula
} // namespace optabs
