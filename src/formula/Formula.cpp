//===- Formula.cpp - Boolean formula trees -----------------------------------===//

#include "formula/Formula.h"

#include <algorithm>

namespace optabs {
namespace formula {

struct Formula::Node {
  Kind K = Kind::True;
  Lit L;
  std::vector<Formula> Kids;
};

namespace {
const std::shared_ptr<const Formula::Node> &trueNode() {
  static const auto N = std::make_shared<const Formula::Node>();
  return N;
}
const std::shared_ptr<const Formula::Node> &falseNode() {
  static const auto N = [] {
    auto M = std::make_shared<Formula::Node>();
    M->K = Formula::Kind::False;
    return std::shared_ptr<const Formula::Node>(std::move(M));
  }();
  return N;
}
} // namespace

Formula::Formula() : N(trueNode()) {}
Formula::Formula(std::shared_ptr<const Node> N) : N(std::move(N)) {}

Formula Formula::constant(bool B) {
  return Formula(B ? trueNode() : falseNode());
}

Formula Formula::lit(Lit L) {
  auto M = std::make_shared<Node>();
  M->K = Kind::Literal;
  M->L = L;
  return Formula(std::move(M));
}

Formula Formula::conj(std::vector<Formula> Fs) {
  std::vector<Formula> Kids;
  for (Formula &F : Fs) {
    if (F.isFalse())
      return constant(false);
    if (F.isTrue())
      continue;
    // Flatten nested conjunctions.
    if (F.kind() == Kind::And) {
      for (const Formula &Kid : F.children())
        Kids.push_back(Kid);
    } else {
      Kids.push_back(std::move(F));
    }
  }
  if (Kids.empty())
    return constant(true);
  if (Kids.size() == 1)
    return Kids[0];
  auto M = std::make_shared<Node>();
  M->K = Kind::And;
  M->Kids = std::move(Kids);
  return Formula(std::move(M));
}

Formula Formula::disj(std::vector<Formula> Fs) {
  std::vector<Formula> Kids;
  for (Formula &F : Fs) {
    if (F.isTrue())
      return constant(true);
    if (F.isFalse())
      continue;
    if (F.kind() == Kind::Or) {
      for (const Formula &Kid : F.children())
        Kids.push_back(Kid);
    } else {
      Kids.push_back(std::move(F));
    }
  }
  if (Kids.empty())
    return constant(false);
  if (Kids.size() == 1)
    return Kids[0];
  auto M = std::make_shared<Node>();
  M->K = Kind::Or;
  M->Kids = std::move(Kids);
  return Formula(std::move(M));
}

Formula Formula::negate(const Formula &F) {
  switch (F.kind()) {
  case Kind::True:
    return constant(false);
  case Kind::False:
    return constant(true);
  case Kind::Literal:
    return lit(F.literal().negate());
  case Kind::And: {
    std::vector<Formula> Kids;
    Kids.reserve(F.children().size());
    for (const Formula &Kid : F.children())
      Kids.push_back(negate(Kid));
    return disj(std::move(Kids));
  }
  case Kind::Or: {
    std::vector<Formula> Kids;
    Kids.reserve(F.children().size());
    for (const Formula &Kid : F.children())
      Kids.push_back(negate(Kid));
    return conj(std::move(Kids));
  }
  }
  return constant(true);
}

Formula Formula::ite(const Formula &C, const Formula &T, const Formula &E) {
  return disj({conj({C, T}), conj({negate(C), E})});
}

Formula::Kind Formula::kind() const { return N->K; }

Lit Formula::literal() const {
  assert(kind() == Kind::Literal);
  return N->L;
}

const std::vector<Formula> &Formula::children() const { return N->Kids; }

bool Formula::eval(const AtomEval &Eval) const {
  switch (kind()) {
  case Kind::True:
    return true;
  case Kind::False:
    return false;
  case Kind::Literal:
    return literal().eval(Eval);
  case Kind::And:
    for (const Formula &Kid : children())
      if (!Kid.eval(Eval))
        return false;
    return true;
  case Kind::Or:
    for (const Formula &Kid : children())
      if (Kid.eval(Eval))
        return true;
    return false;
  }
  return false;
}

Dnf Formula::toDnf() const {
  switch (kind()) {
  case Kind::True:
    return Dnf::constTrue();
  case Kind::False:
    return Dnf::constFalse();
  case Kind::Literal:
    return Dnf::singleLit(literal());
  case Kind::Or: {
    Dnf Result;
    for (const Formula &Kid : children())
      Result.orWith(Kid.toDnf());
    Result.sortBySize();
    Result.simplify();
    return Result;
  }
  case Kind::And: {
    Dnf Result = Dnf::constTrue();
    AtomEval Unused;
    for (const Formula &Kid : children())
      Result = Dnf::product(Result, Kid.toDnf(), /*SoftCap=*/0, Unused);
    Result.sortBySize();
    Result.simplify();
    return Result;
  }
  }
  return Dnf::constFalse();
}

std::string Formula::toString(
    const std::function<std::string(AtomId)> &AtomName) const {
  switch (kind()) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Literal: {
    Lit L = literal();
    return (L.isNeg() ? "!" : "") + AtomName(L.atom());
  }
  case Kind::And:
  case Kind::Or: {
    const char *Sep = kind() == Kind::And ? " /\\ " : " \\/ ";
    std::string S = "(";
    for (size_t I = 0; I < children().size(); ++I) {
      if (I > 0)
        S += Sep;
      S += children()[I].toString(AtomName);
    }
    return S + ")";
  }
  }
  return "?";
}

} // namespace formula
} // namespace optabs
