//===- quickstart.cpp - The paper's Figure 1, end to end ----------------------===//
//
// Walks through the optimum-abstraction machinery on the running example
// of the paper (Figure 1): a parametric type-state analysis for a File
// object that must alternate open() and close(). Two queries are posed:
//
//   check(x, closed)  - provable; the cheapest abstraction tracks {x, y}
//   check(x, opened)  - not provable by ANY abstraction (the query is
//                       false), which TRACER detects as impossibility.
//
// The example drives every layer of the public API directly - program
// parsing, the parametric forward analysis, counterexample extraction, the
// backward meta-analysis (printing the Figure 1(c)/(d) formulas), the
// viable-set bookkeeping - and then re-runs everything through the
// one-call TRACER driver.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "meta/Backward.h"
#include "pointer/PointsTo.h"
#include "tracer/QueryDriver.h"
#include "typestate/Typestate.h"

#include <iostream>

using namespace optabs;
using namespace optabs::ir;

static const char *Fig1Program = R"(
  proc main {
    x = new h1;
    y = x;
    if { z = x; }
    x.open();
    y.close();
    choice { check(x, closed); } or { check(x, opened); }
  }
)";

int main() {
  //===--- 1. Parse the program and build the File type-state property ----===
  Program P;
  std::string Error;
  if (!parseProgram(Fig1Program, P, Error)) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  std::cout << "Program (Figure 1 of the paper):\n";
  printProgram(std::cout, P);

  typestate::TypestateSpec Spec("closed");
  uint32_t Closed = 0;
  uint32_t Opened = Spec.addState("opened");
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  Spec.addTransition(Open, Closed, Opened);
  Spec.addErrorTransition(Open, Opened); // open() on an opened File errs
  Spec.addTransition(Close, Opened, Closed);
  Spec.addErrorTransition(Close, Closed); // close() on a closed File errs

  pointer::PointsToResult Pt = pointer::runPointsTo(P);
  typestate::TypestateAnalysis A(P, Spec, P.findAlloc("h1"), Pt);
  auto AtomName = [&A](formula::AtomId At) { return A.atomName(At); };

  //===--- 2. One CEGAR iteration by hand: cheapest abstraction p = {} ----===
  std::cout << "\n== Manual iteration 1 for check(x, closed), p = {} ==\n";
  typestate::TsParam Empty = A.paramFromBits({});
  dataflow::ForwardAnalysis<typestate::TypestateAnalysis> Fwd(P, A, Empty);
  Fwd.run(A.initialState());

  CheckId Check1(0), Check2(1);
  formula::Dnf NotQ1 = A.notQ(Check1);
  std::cout << "failure condition not(q): " << NotQ1.toString(AtomName)
            << "\n";

  std::optional<typestate::AbsState> Bad;
  for (const auto &D : Fwd.statesAtCheck(Check1))
    if (NotQ1.eval([&](formula::AtomId At) {
          return A.evalAtom(At, Empty, D);
        }))
      Bad = D;
  if (!Bad) {
    std::cerr << "unexpected: p = {} should fail to prove check 1\n";
    return 1;
  }

  auto T = Fwd.extractTrace(Check1, *Bad);
  std::cout << "abstract counterexample trace:\n";
  printTrace(std::cout, P, *T);

  // Backward meta-analysis with k = 1, printing each step (Figure 1(c)).
  meta::BackwardConfig BwdConfig;
  BwdConfig.K = 1;
  BwdConfig.StepObserver = [&](size_t I, const Command &,
                               const formula::Dnf &F) {
    std::cout << "  phi before '" << commandToString(P, (*T)[I])
              << "' = " << F.toString(AtomName) << "\n";
  };
  meta::BackwardMetaAnalysis<typestate::TypestateAnalysis> Bwd(P, A,
                                                               BwdConfig);
  auto States = Fwd.replay(*T, A.initialState());
  std::cout << "backward meta-analysis (k = 1):\n";
  auto F = Bwd.run(*T, Empty, States, NotQ1);
  formula::Dnf Unviable = Bwd.projectToParams(*F, Empty, A.initialState());
  std::cout << "abstractions that CANNOT prove the query: "
            << Unviable.toString(AtomName)
            << "  (i.e. every p without x is eliminated)\n";

  //===--- 3. The full TRACER loop through the driver ---------------------===
  std::cout << "\n== TRACER on both queries (k = 1) ==\n";
  tracer::TracerOptions Options;
  Options.K = 1;
  tracer::QueryDriver<typestate::TypestateAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({Check1, Check2});
  const char *Names[] = {"check(x, closed)", "check(x, opened)"};
  for (size_t I = 0; I < Outcomes.size(); ++I) {
    const auto &O = Outcomes[I];
    std::cout << Names[I] << ": " << tracer::verdictName(O.V);
    if (O.V == tracer::Verdict::Proven)
      std::cout << " with cheapest abstraction " << O.CheapestParam
                << " (|p| = " << O.CheapestCost << ")";
    std::cout << " after " << O.Iterations << " iterations\n";
  }
  std::cout << "\nAs in the paper: the first query is proven with {x, y} "
               "(z is never tracked),\nthe second is impossible for every "
               "abstraction in the family.\n";
  return 0;
}
