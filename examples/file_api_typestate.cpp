//===- file_api_typestate.cpp - Type-state verification of a file API ---------===//
//
// Uses the parametric type-state analysis as a verifier for the classic
// File discipline (closed -> open() -> opened -> close() -> closed; any
// other order is a bug). The program below opens files through wrapper
// procedures, with aliases, branches and a retry loop; one path
// double-closes. For every check the example reports either a proof -
// together with the cheapest set of variables whose must-alias tracking
// suffices - or that no abstraction of the analysis can prove it, i.e. a
// potential API-misuse warning.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pointer/PointsTo.h"
#include "tracer/QueryDriver.h"
#include "typestate/Typestate.h"

#include <iostream>

using namespace optabs;
using namespace optabs::ir;

static const char *FileProgram = R"(
  proc main {
    f = new h_log;
    handle = f;
    call open_log;
    loop { call write_log; }
    call close_log;
    check(f, closed);        // correct usage: provable

    f2 = new h_tmp;
    alias = f2;
    f2.open();
    choice { alias.close(); } or { }
    f2.close();              // double close on one path!
    check(f2, closed);       // NOT provable by any abstraction
  }
  proc open_log  { handle.open(); }
  proc write_log { w = handle; check(w, opened); }
  proc close_log { handle.close(); }
)";

int main() {
  Program P;
  std::string Error;
  if (!parseProgram(FileProgram, P, Error)) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  std::cout << "File-API program:\n";
  printProgram(std::cout, P);

  // The File property automaton.
  typestate::TypestateSpec Spec("closed");
  uint32_t Closed = 0;
  uint32_t Opened = Spec.addState("opened");
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  Spec.addTransition(Open, Closed, Opened);
  Spec.addErrorTransition(Open, Opened);
  Spec.addTransition(Close, Opened, Closed);
  Spec.addErrorTransition(Close, Closed);

  pointer::PointsToResult Pt = pointer::runPointsTo(P);

  // Each query is a (check, allocation site) pair; the queried variable's
  // may-points-to set decides which sites are relevant.
  std::cout << "\nVerification report:\n";
  for (uint32_t H = 0; H < P.numAllocs(); ++H) {
    typestate::TypestateAnalysis A(P, Spec, AllocId(H), Pt);
    std::vector<CheckId> Queries;
    for (uint32_t I = 0; I < P.numChecks(); ++I)
      if (Pt.mayPoint(P.checkSite(CheckId(I)).Var, AllocId(H)))
        Queries.push_back(CheckId(I));
    if (Queries.empty())
      continue;
    tracer::QueryDriver<typestate::TypestateAnalysis> Driver(P, A);
    auto Outcomes = Driver.run(Queries);
    for (const auto &O : Outcomes) {
      const CheckSite &Site = P.checkSite(O.Check);
      std::cout << "  " << commandToString(P, Site.Command) << " for site "
                << P.allocName(AllocId(H)) << ": ";
      if (O.V == tracer::Verdict::Proven) {
        std::cout << "SAFE - object is '" << P.symbolName(Site.Payload)
                  << "' here; proof tracks " << O.CheapestParam << " ("
                  << O.Iterations << " iteration(s))\n";
      } else if (O.V == tracer::Verdict::Impossible) {
        std::cout << "WARNING - possible API misuse; no abstraction of "
                     "this analysis proves it ("
                  << O.Iterations << " iteration(s) to refute)\n";
      } else {
        std::cout << "unresolved within budget\n";
      }
    }
  }
  return 0;
}
