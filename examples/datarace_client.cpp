//===- datarace_client.cpp - Thread-escape as a datarace front-end ------------===//
//
// The paper motivates the thread-escape analysis as a building block for
// concurrency clients such as static datarace detection (§6): a field
// access on a thread-local object can never race. This example models a
// small producer/consumer program in which some buffers stay thread-local
// while others are published through a shared registry, poses a
// local(v)? query at every field access, resolves all of them with
// TRACER, and reports the race-candidate accesses - exactly the workflow
// a datarace detector would run.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "tracer/QueryDriver.h"

#include <iostream>

using namespace optabs;
using namespace optabs::ir;

// "registry" is the shared global; "worker" publishes its task object into
// it, while its scratch buffer stays private. The helper routine is called
// from two contexts, so the analysis must be context-sensitive to prove
// the scratch accesses safe.
static const char *Producer = R"(
  global registry;
  proc main {
    call worker;
    loop { call worker; }
  }
  proc worker {
    scratch = new h_scratch;
    task = new h_task;
    check(scratch);        // scratch.data = ... (private: no race)
    scratch.data = scratch;
    call fill;
    registry = task;       // publish: task escapes here
    check(task);           // task.state = ...  (RACE candidate)
    task.state = task;
    shared = registry;
    check(shared);         // shared.state = ... (RACE candidate)
    shared.state = shared;
    scratch = null; task = null; shared = null;
  }
  proc fill {
    check(scratch);        // scratch.data read in the callee: still private
    tmp = scratch.data;
    check(task);           // task.state written BEFORE publication: safe
    task.state = tmp;
    tmp = null;
  }
)";

int main() {
  Program P;
  std::string Error;
  if (!parseProgram(Producer, P, Error)) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  std::cout << "Producer/consumer program:\n";
  printProgram(std::cout, P);

  escape::EscapeAnalysis A(P);
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  std::vector<CheckId> Queries;
  for (uint32_t I = 0; I < P.numChecks(); ++I)
    Queries.push_back(CheckId(I));
  auto Outcomes = Driver.run(Queries);

  std::cout << "\nDatarace report (an access can race only if the object "
               "may be thread-shared):\n";
  unsigned Safe = 0, Candidates = 0;
  for (const auto &O : Outcomes) {
    const CheckSite &Site = P.checkSite(O.Check);
    std::cout << "  access on '" << P.varName(Site.Var) << "' in "
              << P.proc(Site.Proc).Name << ": ";
    switch (O.V) {
    case tracer::Verdict::Proven:
      std::cout << "thread-local (no race), proven with "
                << O.CheapestParam << " in " << O.Iterations
                << " iteration(s)\n";
      ++Safe;
      break;
    case tracer::Verdict::Impossible:
      std::cout << "RACE CANDIDATE - unprovable under every abstraction ("
                << O.Iterations << " iteration(s) to refute)\n";
      ++Candidates;
      break;
    case tracer::Verdict::Unresolved:
      std::cout << "unresolved within budget - treated as a candidate\n";
      ++Candidates;
      break;
    }
  }
  std::cout << "\n" << Safe << " accesses proven race-free, " << Candidates
            << " remain for the detector to inspect.\n";
  return 0;
}
