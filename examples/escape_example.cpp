//===- escape_example.cpp - The paper's Figure 6, end to end ------------------===//
//
// Reproduces Figure 6: the thread-escape analysis on
//
//   u = new h1; v = new h2; v.f = u; pc: local(u)?
//
// first WITHOUT under-approximation (part (a): a single backward pass
// learns the full failure condition h1.E \/ (h1.L /\ h2.E), so the second
// forward run already uses the cheapest proving abstraction), then WITH
// beam width k = 1 (parts (b1)/(b2): one extra iteration, but each
// backward formula stays a single conjunction). Both routes find the same
// cheapest abstraction [h1 -> L, h2 -> L].
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "meta/Backward.h"
#include "tracer/QueryDriver.h"

#include <iostream>

using namespace optabs;
using namespace optabs::ir;

static const char *Fig6Program = R"(
  proc main {
    u = new h1;
    v = new h2;
    v.f = u;
    check(u);
  }
)";

/// Runs one manual CEGAR iteration with the given beam width and starting
/// abstraction bits, printing the backward formulas.
static void manualIteration(const Program &P,
                            const escape::EscapeAnalysis &A, unsigned K,
                            const std::vector<bool> &Bits) {
  escape::EscParam Prm = A.paramFromBits(Bits);
  auto AtomName = [&A](formula::AtomId At) { return A.atomName(At); };
  std::cout << "forward run with p = " << A.paramToString(Prm)
            << (K ? " (k = " + std::to_string(K) + ")"
                  : " (no under-approximation)")
            << "\n";

  dataflow::ForwardAnalysis<escape::EscapeAnalysis> Fwd(P, A, Prm);
  Fwd.run(A.initialState());
  CheckId Check(0);
  formula::Dnf NotQ = A.notQ(Check);
  std::optional<escape::EscState> Bad;
  for (const auto &D : Fwd.statesAtCheck(Check))
    if (NotQ.eval(
            [&](formula::AtomId At) { return A.evalAtom(At, Prm, D); }))
      Bad = D;
  if (!Bad) {
    std::cout << "  query PROVEN: u cannot escape under this abstraction\n";
    return;
  }
  auto T = Fwd.extractTrace(Check, *Bad);
  meta::BackwardConfig Config;
  Config.K = K;
  Config.StepObserver = [&](size_t I, const Command &,
                            const formula::Dnf &F) {
    std::cout << "  phi before '" << commandToString(P, (*T)[I])
              << "' = " << F.toString(AtomName) << "\n";
  };
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(P, A, Config);
  auto States = Fwd.replay(*T, A.initialState());
  auto F = Bwd.run(*T, Prm, States, NotQ);
  std::cout << "  => unviable abstractions: "
            << Bwd.projectToParams(*F, Prm, A.initialState())
                   .toString(AtomName)
            << "\n";
}

int main() {
  Program P;
  std::string Error;
  if (!parseProgram(Fig6Program, P, Error)) {
    std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  std::cout << "Program (Figure 6 of the paper):\n";
  printProgram(std::cout, P);
  escape::EscapeAnalysis A(P);

  std::cout << "\n== Figure 6(a): no under-approximation ==\n";
  manualIteration(P, A, /*K=*/0, {false, false});
  manualIteration(P, A, /*K=*/0, {true, true});

  std::cout << "\n== Figure 6(b1)/(b2): beam width k = 1 ==\n";
  manualIteration(P, A, /*K=*/1, {false, false}); // learns h1.E
  manualIteration(P, A, /*K=*/1, {true, false});  // learns h1.L /\ h2.E
  manualIteration(P, A, /*K=*/1, {true, true});   // proven

  std::cout << "\n== TRACER end-to-end, both settings ==\n";
  for (unsigned K : {0u, 1u}) {
    tracer::TracerOptions Options;
    Options.K = K;
    tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
    auto Outcomes = Driver.run({CheckId(0)});
    std::cout << "k = " << (K ? std::to_string(K) : std::string("off"))
              << ": " << tracer::verdictName(Outcomes[0].V) << " with "
              << Outcomes[0].CheapestParam << " in "
              << Outcomes[0].Iterations << " iterations\n";
  }
  return 0;
}
