//===- GuardedCasesTest.cpp - The §8 synthesis recipe on a third client -------===//
//
// §8 of the paper proposes synthesizing the backward meta-analysis's
// transfer functions automatically from the forward analysis. The
// meta::GuardedTransfer recipe does this for guarded-case transfer
// functions; the thread-escape client uses it in production. To show the
// recipe is generic, this test derives a THIRD parametric client - a
// little taint analysis (parameter: which allocation sites are trusted) -
// writing only the forward case lists, and property-checks that the
// synthesized weakest preconditions satisfy requirement (2) exactly.
//
//===----------------------------------------------------------------------===//

#include "meta/GuardedCases.h"

#include "ir/Parser.h"
#include "support/BitSet.h"
#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using formula::AtomId;
using formula::Formula;

/// A toy parametric taint analysis. State: taint bit per variable.
/// Parameter: the set of allocation sites considered trusted (cost =
/// number of trusted sites). Globals are tainted; copies propagate.
class TaintAnalysis {
public:
  struct Param {
    BitSet Trusted;
  };
  struct State {
    std::vector<uint8_t> Taint; // per variable

    friend bool operator==(const State &A, const State &B) {
      return A.Taint == B.Taint;
    }
  };

  // Atom encoding: (id << 1) | kind; kind 0 = "site id is trusted"
  // (parameter atom), kind 1 = "variable id is tainted" (state atom).
  static AtomId atomTrusted(AllocId H) { return H.index() << 1; }
  static AtomId atomTaint(VarId V) { return (V.index() << 1) | 1; }

  explicit TaintAnalysis(const Program &P) : P(P) {}

  bool evalAtom(AtomId A, const Param &Prm, const State &D) const {
    if ((A & 1) == 0)
      return Prm.Trusted.test(A >> 1);
    return D.Taint[A >> 1];
  }

  /// Where an assigned taint bit comes from.
  struct Src {
    enum Kind : uint8_t { Const, OfVar, OfSite } K = Const;
    bool C = false;
    uint32_t Id = 0;
  };
  struct Effect {
    bool HasAssign = false;
    uint32_t Var = 0;
    Src S;
  };
  using Transfer = meta::GuardedTransfer<Effect>;

  /// The ONLY analysis-specific definitions: forward case lists and the
  /// per-effect atom precondition. Everything else is synthesized.
  Transfer cases(const Command &Cmd) const {
    Transfer T;
    auto Assign = [&T](Formula Guard, VarId V, Src S) {
      Effect E;
      E.HasAssign = true;
      E.Var = V.index();
      E.S = S;
      T.addCase(std::move(Guard), E);
    };
    Formula True = Formula::constant(true);
    switch (Cmd.Kind) {
    case CmdKind::New:
      // Fresh objects are clean iff their site is trusted.
      Assign(True, Cmd.Dst, Src{Src::OfSite, false, Cmd.Alloc.index()});
      return T;
    case CmdKind::Copy:
      Assign(True, Cmd.Dst, Src{Src::OfVar, false, Cmd.Src.index()});
      return T;
    case CmdKind::Null:
      Assign(True, Cmd.Dst, Src{Src::Const, false, 0});
      return T;
    case CmdKind::LoadGlobal:
      Assign(True, Cmd.Dst, Src{Src::Const, true, 0}); // globals taint
      return T;
    case CmdKind::LoadField: {
      // Loading through a tainted base taints; else propagate nothing
      // (fields are not modeled in this toy domain).
      Formula BaseTaint = Formula::atom(atomTaint(Cmd.Src));
      Assign(BaseTaint, Cmd.Dst, Src{Src::Const, true, 0});
      Assign(Formula::negate(BaseTaint), Cmd.Dst, Src{Src::Const, false, 0});
      return T;
    }
    default:
      T.addCase(True, Effect{});
      return T;
    }
  }

  State transfer(const Command &Cmd, const State &In,
                 const Param &Prm) const {
    formula::AtomEval Eval = [&](AtomId A) { return evalAtom(A, Prm, In); };
    return cases(Cmd).apply(Eval, [&](const Effect &E) {
      if (!E.HasAssign)
        return In;
      State Out = In;
      switch (E.S.K) {
      case Src::Const:
        Out.Taint[E.Var] = E.S.C;
        break;
      case Src::OfVar:
        Out.Taint[E.Var] = In.Taint[E.S.Id];
        break;
      case Src::OfSite:
        Out.Taint[E.Var] = !Prm.Trusted.test(E.S.Id);
        break;
      }
      return Out;
    });
  }

  /// Synthesized backward transfer (requirement (2) by construction).
  Formula wpAtom(const Command &Cmd, AtomId A) const {
    if ((A & 1) == 0)
      return Formula::atom(A); // parameter atoms never change
    return cases(Cmd).wpAtom(A, [&](const Effect &E, AtomId Atom) {
      uint32_t V = Atom >> 1;
      if (!E.HasAssign || E.Var != V)
        return Formula::atom(Atom);
      switch (E.S.K) {
      case Src::Const:
        return Formula::constant(E.S.C);
      case Src::OfVar:
        return Formula::atom(atomTaint(VarId(E.S.Id)));
      case Src::OfSite:
        return Formula::negAtom(atomTrusted(AllocId(E.S.Id)));
      }
      return Formula::constant(false);
    });
  }

private:
  const Program &P;
};

TEST(GuardedCases, SynthesizedWpIsExactForTheToyClient) {
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(R"(
    global g;
    proc main {
      a = new h1;
      b = new h2;
      c = a;
      c = null;
      c = g;
      c = a.f;
      b.work();
      assume(*);
      check(a);
    }
  )", P, Error)) << Error;
  TaintAnalysis A(P);
  Prng Rng(0x7A197);

  for (int Round = 0; Round < 400; ++Round) {
    TaintAnalysis::Param Prm;
    Prm.Trusted = BitSet(P.numAllocs());
    for (uint32_t H = 0; H < P.numAllocs(); ++H)
      if (Rng.chance(1, 2))
        Prm.Trusted.set(H);
    TaintAnalysis::State D;
    D.Taint.resize(P.numVars());
    for (auto &B : D.Taint)
      B = Rng.chance(1, 2);

    for (uint32_t CI = 0; CI < P.numCommands(); ++CI) {
      const Command &Cmd = P.command(CommandId(CI));
      if (Cmd.Kind == CmdKind::Invoke)
        continue;
      TaintAnalysis::State Post = A.transfer(Cmd, D, Prm);
      for (uint32_t V = 0; V < P.numVars(); ++V) {
        AtomId Atom = TaintAnalysis::atomTaint(VarId(V));
        bool PostHolds = A.evalAtom(Atom, Prm, Post);
        bool WpHolds = A.wpAtom(Cmd, Atom).eval([&](AtomId B) {
          return A.evalAtom(B, Prm, D);
        });
        ASSERT_EQ(WpHolds, PostHolds)
            << "cmd " << CI << " var " << V << " round " << Round;
      }
    }
  }
}

TEST(GuardedCases, ApplyPicksTheEnabledCase) {
  meta::GuardedTransfer<int> T;
  T.addCase(Formula::atom(1), 10);
  T.addCase(Formula::negAtom(1), 20);
  formula::AtomEval True1 = [](AtomId A) { return A == 1; };
  formula::AtomEval False1 = [](AtomId) { return false; };
  EXPECT_EQ(T.apply(True1, [](int E) { return E; }), 10);
  EXPECT_EQ(T.apply(False1, [](int E) { return E; }), 20);
}

TEST(GuardedCases, WpAtomIsGuardWeightedDisjunction) {
  meta::GuardedTransfer<bool> T; // effect: does atom 5 hold afterwards?
  T.addCase(Formula::atom(1), true);
  T.addCase(Formula::negAtom(1), false);
  Formula Wp = T.wpAtom(5, [](bool E, AtomId) {
    return Formula::constant(E);
  });
  // wp(atom5) = (a1 /\ true) \/ (!a1 /\ false) = a1.
  for (unsigned Mask = 0; Mask < 4; ++Mask) {
    formula::AtomEval Eval = [Mask](AtomId A) { return (Mask >> A) & 1; };
    EXPECT_EQ(Wp.eval(Eval), Eval(1));
  }
}

} // namespace
