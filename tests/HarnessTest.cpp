//===- HarnessTest.cpp - Integration tests for the experiment harness ---------===//

#include "reporting/Aggregates.h"
#include "reporting/Harness.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using reporting::BenchRun;
using tracer::Verdict;

/// One shared run of the smallest benchmark (the harness is deterministic
/// apart from wall-clock fields).
const BenchRun &tspRun() {
  static const BenchRun Run =
      reporting::runBenchmark(synth::paperSuite()[0]);
  return Run;
}

TEST(Harness, Table1FieldsPopulated) {
  const BenchRun &Run = tspRun();
  EXPECT_GT(Run.Procs, 0u);
  EXPECT_GT(Run.Commands, 0u);
  EXPECT_GT(Run.Vars, 0u);
  EXPECT_GT(Run.Sites, 0u);
  EXPECT_EQ(Run.TsQueries, Run.Ts.Queries.size());
  EXPECT_EQ(Run.EscQueries, Run.Esc.Queries.size());
}

TEST(Harness, TypestateFullyResolved) {
  // The paper: "All queries are resolved in the type-state analysis."
  const BenchRun &Run = tspRun();
  EXPECT_EQ(Run.Ts.count(Verdict::Unresolved), 0u);
  EXPECT_GT(Run.Ts.count(Verdict::Proven), 0u);
  EXPECT_GT(Run.Ts.count(Verdict::Impossible), 0u);
  // Impossible notably outnumbers proven under the stress property.
  EXPECT_GT(Run.Ts.count(Verdict::Impossible),
            Run.Ts.count(Verdict::Proven));
}

TEST(Harness, EscapeMostlyResolved) {
  const BenchRun &Run = tspRun();
  unsigned Resolved =
      Run.Esc.count(Verdict::Proven) + Run.Esc.count(Verdict::Impossible);
  EXPECT_GE(Resolved * 10, Run.Esc.Queries.size() * 9); // >= 90%
  EXPECT_GT(Run.Esc.count(Verdict::Proven), 0u);
  EXPECT_GT(Run.Esc.count(Verdict::Impossible), 0u);
}

TEST(Harness, ProvenQueriesCarryAbstractions) {
  const BenchRun &Run = tspRun();
  for (const auto &Q : Run.Esc.Queries) {
    if (Q.V != Verdict::Proven)
      continue;
    EXPECT_FALSE(Q.ParamKey.empty());
    EXPECT_GE(Q.Iterations, 1u);
  }
}

TEST(Aggregates, IterationAndSizeStats) {
  const BenchRun &Run = tspRun();
  MinMaxAvg ProvenIters =
      reporting::iterationStats(Run.Esc, Verdict::Proven);
  EXPECT_FALSE(ProvenIters.empty());
  EXPECT_GE(ProvenIters.min(), 1.0);
  EXPECT_LE(ProvenIters.min(), ProvenIters.avg());
  EXPECT_LE(ProvenIters.avg(), ProvenIters.max());

  MinMaxAvg Sizes = reporting::cheapestSizeStats(Run.Esc);
  EXPECT_FALSE(Sizes.empty());
  // Thread-escape cheapest abstractions are mostly 1-2 sites (Table 3).
  EXPECT_LE(Sizes.avg(), 4.0);
  EXPECT_GE(Sizes.min(), 0.0);
}

TEST(Aggregates, ReuseGroupsPartitionProvenQueries) {
  const BenchRun &Run = tspRun();
  reporting::ReuseStats Reuse = reporting::reuseStats(Run.Esc);
  unsigned Proven = Run.Esc.count(Verdict::Proven);
  EXPECT_GT(Reuse.NumGroups, 0u);
  EXPECT_LE(Reuse.NumGroups, Proven);
  // Group sizes sum back to the number of proven queries.
  EXPECT_DOUBLE_EQ(Reuse.GroupSize.avg() * Reuse.NumGroups,
                   static_cast<double>(Proven));
}

TEST(Aggregates, HistogramCoversAllProven) {
  const BenchRun &Run = tspRun();
  Histogram H = reporting::cheapestSizeHistogram(Run.Esc);
  EXPECT_EQ(H.total(), Run.Esc.count(Verdict::Proven));
}

TEST(Harness, IterationCountsAreModest) {
  // Table 2's shape: queries resolve within ten iterations on average for
  // the small benchmarks.
  const BenchRun &Run = tspRun();
  EXPECT_LE(reporting::iterationStats(Run.Esc, Verdict::Proven).avg(), 10.0);
  EXPECT_LE(reporting::iterationStats(Run.Ts, Verdict::Proven).avg(), 10.0);
  EXPECT_LE(reporting::iterationStats(Run.Ts, Verdict::Impossible).avg(),
            6.0);
}

TEST(Harness, EscapeOnlyMode) {
  reporting::HarnessOptions Options;
  Options.RunTypestate = false;
  reporting::BenchRun Run =
      reporting::runBenchmark(synth::paperSuite()[1], Options);
  EXPECT_TRUE(Run.Ts.Queries.empty());
  EXPECT_FALSE(Run.Esc.Queries.empty());
}

} // namespace

//===----------------------------------------------------------------------===//
// CSV export
//===----------------------------------------------------------------------===//

#include "reporting/Csv.h"

#include <sstream>

namespace {

TEST(Csv, ExportsOneRowPerQuery) {
  const reporting::BenchRun &Run = tspRun();
  std::ostringstream OS;
  reporting::writeCsvHeader(OS);
  reporting::writeCsvRows(OS, Run);
  std::string Out = OS.str();
  size_t Lines = std::count(Out.begin(), Out.end(), '\n');
  EXPECT_EQ(Lines, 1 + Run.Ts.Queries.size() + Run.Esc.Queries.size());
  EXPECT_NE(Out.find("benchmark,client,query,verdict"), std::string::npos);
  EXPECT_NE(Out.find("tsp,typestate,0,"), std::string::npos);
  EXPECT_NE(Out.find("tsp,thread-escape,0,"), std::string::npos);
  // Proven rows carry a quoted abstraction; others leave it empty.
  EXPECT_NE(Out.find("\"[L:"), std::string::npos);
}

} // namespace
