//===- IrTest.cpp - Unit tests for the mini-IR -------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Program.h"

#include "gtest/gtest.h"

#include <sstream>

namespace {

using namespace optabs::ir;

TEST(Program, InterningIsIdempotent) {
  Program P;
  VarId X1 = P.makeVar("x");
  VarId X2 = P.makeVar("x");
  VarId Y = P.makeVar("y");
  EXPECT_EQ(X1, X2);
  EXPECT_NE(X1, Y);
  EXPECT_EQ(P.numVars(), 2u);
  EXPECT_EQ(P.varName(X1), "x");
  EXPECT_EQ(P.findVar("y"), Y);
  EXPECT_FALSE(P.findVar("zz").isValid());
}

TEST(Program, BuilderProducesCommands) {
  Program P;
  ProcId Main = P.makeProc("main");
  VarId X = P.makeVar("x");
  AllocId H = P.makeAlloc("h1");
  CommandId New = P.cmdNew(X, H);
  CommandId Check = P.cmdCheck(X, SymbolId(), Main);
  P.setProcBody(Main, P.stmtSeq({P.stmtAtom(New), P.stmtAtom(Check)}));
  P.setMain(Main);

  EXPECT_EQ(P.command(New).Kind, CmdKind::New);
  EXPECT_EQ(P.command(New).Dst, X);
  EXPECT_EQ(P.numChecks(), 1u);
  EXPECT_EQ(P.checkSite(CheckId(0)).Var, X);
  EXPECT_EQ(P.checkSite(CheckId(0)).Command, Check);
}

TEST(Parser, ParsesRepresentativeProgram) {
  const char *Src = R"(
    // Figure 1 of the paper.
    global g;
    proc main {
      x = new h1;
      y = x;
      if { z = x; }
      x.open();
      y.close();
      choice { check(x, closed); } or { check(x, opened); }
      call helper;
    }
    proc helper {
      loop { w = x.f; x.f = w; g = x; w = g; assume(*); }
      w = null;
    }
  )";
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(Src, P, Error)) << Error;
  EXPECT_TRUE(P.main().isValid());
  EXPECT_EQ(P.proc(P.main()).Name, "main");
  EXPECT_EQ(P.numProcs(), 2u);
  EXPECT_EQ(P.numGlobals(), 1u);
  EXPECT_EQ(P.numChecks(), 2u);
  EXPECT_EQ(P.numAllocs(), 1u);
  EXPECT_EQ(P.numMethods(), 2u); // open, close
  EXPECT_TRUE(P.findVar("w").isValid());
  EXPECT_FALSE(P.findVar("g").isValid()); // globals are not locals
}

TEST(Parser, ReportsErrors) {
  auto Fails = [](const char *Src) {
    Program P;
    std::string Error;
    bool Ok = parseProgram(Src, P, Error);
    EXPECT_FALSE(Ok);
    EXPECT_FALSE(Error.empty());
    return Error;
  };
  EXPECT_NE(Fails("proc main { x = ; }").find("line"), std::string::npos);
  Fails("proc main { x = new ; }");
  Fails("proc main { call missing; }");      // undefined procedure
  Fails("proc other { x = null; }");          // no main
  Fails("global g; proc main { g = new h; }"); // globals cannot be alloc'ed
  Fails("proc main { x = null; } proc main { }"); // redefinition
  Fails("proc main { x = null }");             // missing semicolon
}

TEST(Parser, GlobalLoadStoreDisambiguation) {
  const char *Src = R"(
    global g;
    proc main { x = g; g = x; y = x; }
  )";
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(Src, P, Error)) << Error;
  // Walk main's commands.
  std::vector<CmdKind> Kinds;
  for (uint32_t I = 0; I < P.numCommands(); ++I)
    Kinds.push_back(P.command(CommandId(I)).Kind);
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_EQ(Kinds[0], CmdKind::LoadGlobal);
  EXPECT_EQ(Kinds[1], CmdKind::StoreGlobal);
  EXPECT_EQ(Kinds[2], CmdKind::Copy);
}

TEST(Printer, RoundTripsThroughParser) {
  const char *Src = R"(
    global g;
    proc main {
      x = new h1;
      choice { y = x; } or { y = null; } or { y = g; }
      loop { x.f = y; }
      x.open();
      check(x, closed);
      call sub;
    }
    proc sub { z = x.f; g = z; assume(*); }
  )";
  Program P1;
  std::string Error;
  ASSERT_TRUE(parseProgram(Src, P1, Error)) << Error;
  std::ostringstream OS1;
  printProgram(OS1, P1);

  Program P2;
  ASSERT_TRUE(parseProgram(OS1.str(), P2, Error)) << Error << "\n"
                                                  << OS1.str();
  std::ostringstream OS2;
  printProgram(OS2, P2);
  EXPECT_EQ(OS1.str(), OS2.str());
  EXPECT_EQ(P1.numCommands(), P2.numCommands());
  EXPECT_EQ(P1.numChecks(), P2.numChecks());
}

TEST(Printer, CommandToString) {
  Program P;
  ProcId Main = P.makeProc("main");
  VarId X = P.makeVar("x");
  VarId Y = P.makeVar("y");
  FieldId F = P.makeField("f");
  GlobalId G = P.makeGlobal("g");
  EXPECT_EQ(commandToString(P, P.cmdNew(X, P.makeAlloc("h1"))), "x = new h1");
  EXPECT_EQ(commandToString(P, P.cmdCopy(X, Y)), "x = y");
  EXPECT_EQ(commandToString(P, P.cmdNull(X)), "x = null");
  EXPECT_EQ(commandToString(P, P.cmdLoadGlobal(X, G)), "x = g");
  EXPECT_EQ(commandToString(P, P.cmdStoreGlobal(G, Y)), "g = y");
  EXPECT_EQ(commandToString(P, P.cmdLoadField(X, Y, F)), "x = y.f");
  EXPECT_EQ(commandToString(P, P.cmdStoreField(X, F, Y)), "x.f = y");
  EXPECT_EQ(commandToString(P, P.cmdMethodCall(X, P.makeMethod("open"))),
            "x.open()");
  EXPECT_EQ(commandToString(P, P.cmdInvoke(Main)), "call main");
  EXPECT_EQ(commandToString(P, P.cmdCheck(X, SymbolId(), Main)), "check(x)");
}

} // namespace
