//===- PropertiesTest.cpp - Tests for the type-state property library ---------===//

#include "typestate/Properties.h"

#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "tracer/QueryDriver.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using namespace optabs::typestate;
using tracer::Verdict;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// Runs TRACER for the query (check 0, site h1) under \p Spec.
tracer::QueryOutcome resolve(Program &P, const TypestateSpec &Spec) {
  pointer::PointsToResult Pt = pointer::runPointsTo(P);
  TypestateAnalysis A(P, Spec, P.findAlloc("h1"), Pt);
  tracer::QueryDriver<TypestateAnalysis> Driver(P, A);
  return Driver.run({CheckId(0)})[0];
}

TEST(FileProperty, Automaton) {
  Program P;
  TypestateSpec Spec = makeFileProperty(P);
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  EXPECT_EQ(Spec.numStates(), 2u);
  EXPECT_EQ(Spec.apply(Open, 0), std::optional<uint32_t>(1));
  EXPECT_EQ(Spec.apply(Close, 0), std::nullopt);
  EXPECT_EQ(Spec.apply(Close, 1), std::optional<uint32_t>(0));
}

TEST(IteratorProperty, NextRequiresHasNext) {
  // Correct idiom: provable.
  Program Good = parse(R"(
    proc main {
      it = new h1;
      loop { it.hasNext(); it.next(); }
      it.hasNext();
      check(it, ready);
    }
  )");
  TypestateSpec Spec = makeIteratorProperty(Good);
  EXPECT_EQ(resolve(Good, Spec).V, Verdict::Proven);

  // next() without hasNext(): impossible.
  Program Bad = parse(R"(
    proc main {
      it = new h1;
      it.next();
      check(it, unknown);
    }
  )");
  TypestateSpec BadSpec = makeIteratorProperty(Bad);
  EXPECT_EQ(resolve(Bad, BadSpec).V, Verdict::Impossible);
}

TEST(SocketProperty, SendBeforeConnectErrs) {
  Program Good = parse(R"(
    proc main {
      s = new h1;
      s.connect();
      loop { s.send(); s.recv(); }
      s.close();
      check(s, closed);
    }
  )");
  TypestateSpec Spec = makeSocketProperty(Good);
  EXPECT_EQ(resolve(Good, Spec).V, Verdict::Proven);

  Program Bad = parse(R"(
    proc main {
      s = new h1;
      s.send();
      check(s, fresh);
    }
  )");
  TypestateSpec BadSpec = makeSocketProperty(Bad);
  EXPECT_EQ(resolve(Bad, BadSpec).V, Verdict::Impossible);
}

TEST(ResourceProperty, AlternationThroughAliases) {
  // The release goes through an alias: the proof must track both names.
  Program P = parse(R"(
    proc main {
      r = new h1;
      guard = r;
      r.acquire();
      guard.release();
      check(r, idle);
    }
  )");
  TypestateSpec Spec = makeResourceProperty(P);
  auto Out = resolve(P, Spec);
  EXPECT_EQ(Out.V, Verdict::Proven);
  EXPECT_EQ(Out.CheapestCost, 2u); // {r, guard}
}

TEST(ResourceProperty, DoubleAcquireImpossible) {
  Program P = parse(R"(
    proc main {
      r = new h1;
      r.acquire();
      if { r.acquire(); }
      check(r, held);
    }
  )");
  TypestateSpec Spec = makeResourceProperty(P);
  EXPECT_EQ(resolve(P, Spec).V, Verdict::Impossible);
}

TEST(Properties, UnrelatedMethodsKeepState) {
  Program P = parse(R"(
    proc main {
      s = new h1;
      s.connect();
      s.log();
      s.send();
      s.close();
      check(s, closed);
    }
  )");
  TypestateSpec Spec = makeSocketProperty(P);
  EXPECT_EQ(resolve(P, Spec).V, Verdict::Proven);
}

} // namespace
