//===- MetricsTest.cpp - Tests for the metrics registry and profiler ----------===//

#include "support/Metrics.h"

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "support/ThreadPool.h"
#include "tracer/QueryDriver.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

//===----------------------------------------------------------------------===//
// Allocation counting (disabled-mode zero-allocation test)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GlobalAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

// The nothrow overloads must be replaced alongside the throwing ones:
// libstdc++'s std::get_temporary_buffer (stable_sort) allocates through
// operator new(nothrow), and leaving it to the default (or a sanitizer's
// interceptor) while the deletes below free() is an alloc/dealloc
// mismatch.
void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}

void *operator new[](std::size_t Size, const std::nothrow_t &T) noexcept {
  return ::operator new(Size, T);
}

// GCC pairs the (opaque, replaceable) operator-new calls it sees in
// libstdc++ with the free() below and reports a mismatch it cannot see
// through; every overload above allocates with malloc, so the pairing
// is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
#pragma GCC diagnostic pop

namespace {

using namespace optabs;
using support::Counter;
using support::Gauge;
using support::LogHistogram;
using support::MetricRegistry;
using support::Profiler;
using support::ScopedSpan;

/// Minimal recursive-descent JSON validity checker (same technique as the
/// event-trace checker in AuditTest.cpp): enough to assert the Chrome
/// trace export is well-formed standalone JSON.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }
  bool object() {
    ++Pos;
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++Pos;
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      // Control characters must have been escaped by the writer.
      if (static_cast<unsigned char>(S[Pos]) < 0x20)
        return false;
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos;
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool literal(const char *L) {
    size_t Len = std::string(L).size();
    if (S.compare(Pos, Len, L) != 0)
      return false;
    Pos += Len;
    return true;
  }
  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\n' || S[Pos] == '\t' ||
            S[Pos] == '\r'))
      ++Pos;
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }

  const std::string &S;
  size_t Pos = 0;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Enables metrics and resets all global metric state; restores disabled
/// on teardown so the other test binaries' invariants (metrics default
/// off) also hold between tests here.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::setMetricsEnabled(true);
    MetricRegistry::global().resetAll();
    Profiler::global().reset();
  }
  void TearDown() override { support::setMetricsEnabled(false); }
};

//===----------------------------------------------------------------------===//
// Counter / Gauge / LogHistogram
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter &C = MetricRegistry::global().counter("test_counter");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  Counter &A = MetricRegistry::global().counter("stable");
  // Force growth with many other entries; A must stay valid.
  for (int I = 0; I < 100; ++I)
    MetricRegistry::global().counter("filler_" + std::to_string(I)).add(1);
  Counter &B = MetricRegistry::global().counter("stable");
  EXPECT_EQ(&A, &B);
  A.add(7);
  EXPECT_EQ(B.value(), 7u);
}

TEST_F(MetricsTest, CounterIsThreadSafeUnderPool) {
  // One counter bumped from every pool worker; the sharded total must be
  // exact. Run at 1 worker (inline sequential) and 8 (oversubscribed on
  // this container, which is exactly what TSan wants to see).
  for (unsigned Workers : {1u, 8u}) {
    Counter &C = MetricRegistry::global().counter(
        "pool_counter_" + std::to_string(Workers));
    support::ThreadPool Pool(Workers);
    constexpr size_t Tasks = 10000;
    Pool.parallelFor(Tasks, [&](size_t, unsigned) { C.add(3); });
    EXPECT_EQ(C.value(), 3 * Tasks);
  }
}

TEST_F(MetricsTest, HistogramIsThreadSafeUnderPool) {
  LogHistogram &H = MetricRegistry::global().histogram("pool_hist");
  support::ThreadPool Pool(8);
  constexpr size_t Tasks = 10000;
  Pool.parallelFor(Tasks, [&](size_t I, unsigned) { H.record(I % 16); });
  EXPECT_EQ(H.count(), Tasks);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 15u);
  uint64_t BucketTotal = 0;
  for (unsigned B = 0; B < LogHistogram::NumBuckets; ++B)
    BucketTotal += H.bucketCount(B);
  EXPECT_EQ(BucketTotal, Tasks);
}

TEST_F(MetricsTest, GaugeTracksDeltas) {
  Gauge &G = MetricRegistry::global().gauge("test_gauge");
  G.set(100);
  G.add(-30);
  EXPECT_EQ(G.value(), 70);
  G.add(-100);
  EXPECT_EQ(G.value(), -30); // gauges may go negative (it's a bug upstream,
                             // but the gauge must not mask it)
  G.reset();
  EXPECT_EQ(G.value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket B >= 1 = [2^(B-1), 2^B - 1].
  EXPECT_EQ(LogHistogram::bucketOf(0), 0u);
  EXPECT_EQ(LogHistogram::bucketOf(1), 1u);
  EXPECT_EQ(LogHistogram::bucketOf(2), 2u);
  EXPECT_EQ(LogHistogram::bucketOf(3), 2u);
  EXPECT_EQ(LogHistogram::bucketOf(4), 3u);
  EXPECT_EQ(LogHistogram::bucketOf(7), 3u);
  EXPECT_EQ(LogHistogram::bucketOf(8), 4u);
  EXPECT_EQ(LogHistogram::bucketOf(UINT64_MAX), 64u);
  for (unsigned B = 0; B < LogHistogram::NumBuckets; ++B) {
    EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketLow(B)), B);
    EXPECT_EQ(LogHistogram::bucketOf(LogHistogram::bucketHigh(B)), B);
  }
  // Boundaries are adjacent: high(B) + 1 == low(B + 1).
  for (unsigned B = 0; B + 1 < LogHistogram::NumBuckets; ++B)
    EXPECT_EQ(LogHistogram::bucketHigh(B) + 1, LogHistogram::bucketLow(B + 1));
}

TEST_F(MetricsTest, HistogramStatsAndConversions) {
  LogHistogram H;
  for (uint64_t V : {0u, 1u, 2u, 3u, 4u, 100u})
    H.record(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 110u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_NEAR(H.avg(), 110.0 / 6.0, 1e-9);
  EXPECT_EQ(H.bucketCount(0), 1u); // {0}
  EXPECT_EQ(H.bucketCount(1), 1u); // {1}
  EXPECT_EQ(H.bucketCount(2), 2u); // {2, 3}
  EXPECT_EQ(H.bucketCount(3), 1u); // {4}
  EXPECT_EQ(H.bucketCount(7), 1u); // {100} in [64, 127]

  MinMaxAvg S = H.summary();
  EXPECT_EQ(S.count(), 6u);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 100.0);

  Histogram Fig = H.toHistogram();
  EXPECT_EQ(Fig.total(), 6u);
  EXPECT_EQ(Fig.buckets().at(2), 2u);

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX
  EXPECT_EQ(H.max(), 0u);
}

//===----------------------------------------------------------------------===//
// Spans and the profiler
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, SpansNestWithinAThread) {
  {
    ScopedSpan Outer("outer");
    { ScopedSpan Inner("inner"); }
    { ScopedSpan Inner("inner"); }
  }
  Profiler::AggNode Root = Profiler::global().aggregate();
  const Profiler::AggNode *Outer = Root.child("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Count, 1u);
  const Profiler::AggNode *Inner = Outer->child("inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Count, 2u);
  // Children are sub-intervals of the parent.
  EXPECT_LE(Inner->Nanos, Outer->Nanos);
  EXPECT_EQ(Profiler::global().spanCount(), 3u);
}

TEST_F(MetricsTest, WorkerSpansReparentUnderPublishedPhase) {
  constexpr size_t Tasks = 64;
  {
    ScopedSpan Phase("phase.forward", /*Publish=*/true);
    support::ThreadPool Pool(4);
    Pool.parallelFor(Tasks, [](size_t, unsigned) {
      ScopedSpan Task("task"); // thread-root on workers 1..3, nested
                               // under the phase span on worker 0
    });
  }
  Profiler::AggNode Root = Profiler::global().aggregate();
  const Profiler::AggNode *Phase = Root.child("phase.forward");
  ASSERT_NE(Phase, nullptr);
  const Profiler::AggNode *Task = Phase->child("task");
  ASSERT_NE(Task, nullptr);
  // Every task span lands under the phase regardless of which thread ran
  // it: worker 0's nest lexically, workers 1..3 reparent via the published
  // phase hint.
  EXPECT_EQ(Task->Count, Tasks);
  EXPECT_EQ(Root.child("task"), nullptr);
}

TEST_F(MetricsTest, DisabledSpansRecordNothing) {
  support::setMetricsEnabled(false);
  {
    ScopedSpan Span("ghost");
    MetricRegistry::global().counter("armed_counter"); // creation is fine
  }
  support::setMetricsEnabled(true);
  EXPECT_EQ(Profiler::global().spanCount(), 0u);
  Profiler::AggNode Root = Profiler::global().aggregate();
  EXPECT_EQ(Root.child("ghost"), nullptr);
}

TEST_F(MetricsTest, DisabledModeAllocatesNothing) {
  support::setMetricsEnabled(false);
  // Warm the thread-local shard index and the registry entry outside the
  // measured window.
  Counter &C = MetricRegistry::global().counter("cold_counter");
  C.add(0);

  uint64_t Before = GlobalAllocs.load(std::memory_order_relaxed);
  for (int I = 0; I < 1000; ++I) {
    ScopedSpan Span("disabled"); // must not touch the profiler
    if (support::metricsEnabled())
      C.add(1); // the guard every instrumentation site uses
  }
  uint64_t After = GlobalAllocs.load(std::memory_order_relaxed);
  EXPECT_EQ(After, Before);
  EXPECT_EQ(C.value(), 0u);
  support::setMetricsEnabled(true);
}

TEST_F(MetricsTest, ChromeTraceIsValidJson) {
  {
    ScopedSpan Phase("phase", /*Publish=*/true);
    support::ThreadPool Pool(2);
    // submit() tasks drain through the queue, which only the helper
    // thread services - guarantees a "worker-1" track even when the main
    // thread is faster (parallelFor would let main steal every task on
    // this 1-hardware-thread container).
    Pool.submit([] { ScopedSpan S("work"); }).get();
    // A name needing escaping must not break the JSON.
    ScopedSpan Weird("quote\"back\\slash\nnewline");
  }
  std::ostringstream OS;
  Profiler::global().writeChromeTrace(OS);
  std::string Trace = OS.str();

  EXPECT_TRUE(JsonChecker(Trace).valid()) << Trace;
  // Schema spot checks: the trace-event envelope, complete events, and
  // thread-name metadata for main and at least one pool worker.
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Trace.find("thread_name"), std::string::npos);
  EXPECT_NE(Trace.find("\"main\""), std::string::npos);
  EXPECT_NE(Trace.find("worker-1"), std::string::npos);
  EXPECT_NE(Trace.find("\"phase\""), std::string::npos);
}

TEST_F(MetricsTest, PrometheusDumpFormat) {
  MetricRegistry &Reg = MetricRegistry::global();
  Reg.counter("optabs_test_total").add(5);
  Reg.gauge("optabs_test_bytes").set(1234);
  LogHistogram &H = Reg.histogram("optabs_test_sizes");
  H.record(1);
  H.record(3);
  { ScopedSpan Span("dump.span"); }

  std::ostringstream OS;
  Reg.dumpPrometheus(OS);
  std::string Dump = OS.str();

  EXPECT_NE(Dump.find("# TYPE optabs_test_total counter"), std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_total 5"), std::string::npos);
  EXPECT_NE(Dump.find("# TYPE optabs_test_bytes gauge"), std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_bytes 1234"), std::string::npos);
  // Histogram: cumulative buckets plus the +Inf catch-all and the
  // sum/count/min/max series.
  EXPECT_NE(Dump.find("optabs_test_sizes_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_sizes_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_sizes_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_sizes_sum 4"), std::string::npos);
  EXPECT_NE(Dump.find("optabs_test_sizes_count 2"), std::string::npos);
  // Span totals appear as labeled counters.
  EXPECT_NE(Dump.find("optabs_span_calls_total{span=\"dump.span\"} 1"),
            std::string::npos);
  EXPECT_NE(Dump.find("optabs_span_nanos_total{span=\"dump.span\"}"),
            std::string::npos);
}

TEST_F(MetricsTest, ResetAllZeroesEverything) {
  MetricRegistry &Reg = MetricRegistry::global();
  Counter &C = Reg.counter("reset_counter");
  Gauge &G = Reg.gauge("reset_gauge");
  LogHistogram &H = Reg.histogram("reset_hist");
  C.add(3);
  G.set(9);
  H.record(7);
  Reg.resetAll();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
}

//===----------------------------------------------------------------------===//
// End to end: a driver run exports metrics and a Chrome trace
//===----------------------------------------------------------------------===//

TEST_F(MetricsTest, DriverRunExportsMetricsAndTrace) {
  const char *Src = R"(
    proc main {
      u = new h1;
      v = new h2;
      w = new h3;
      v.f = u;
      check(u);
    }
  )";
  ir::Program P;
  std::string Err;
  ASSERT_TRUE(ir::parseProgram(Src, P, Err)) << Err;

  std::string Dir = ::testing::TempDir();
  std::string MetricsPath = Dir + "/optabs_metrics_test.prom";
  std::string TracePath = Dir + "/optabs_metrics_test.trace.json";

  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Options;
  Options.MetricsPath = MetricsPath;
  Options.ProfilePath = TracePath;
  Options.NumThreads = 2;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({ir::CheckId(0)});
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].V, tracer::Verdict::Proven);

  // The driver populated the pipeline metrics...
  MetricRegistry &Reg = MetricRegistry::global();
  EXPECT_GT(Reg.counter("optabs_rounds_total").value(), 0u);
  EXPECT_GT(Reg.counter("optabs_forward_runs_total").value(), 0u);
  EXPECT_GT(Reg.counter("optabs_mincostsat_calls_total").value(), 0u);
  EXPECT_GT(Reg.histogram("optabs_forward_fixpoint_rounds").count(), 0u);

  // ...and the per-phase timers: the TRACER stages partition each round,
  // so their sum is positive and bounded by the whole run's wall clock
  // (generous slack for the 1-hardware-thread container).
  const tracer::DriverStats &Stats = Driver.stats();
  EXPECT_GT(Stats.Phases.sum(), 0.0);
  EXPECT_LE(Stats.Phases.sum(), Driver.totalSeconds() * 1.5 + 0.05);

  // The exports landed on disk: a Prometheus dump naming the driver
  // counters and a Chrome trace that is valid JSON with the phase spans.
  std::string Dump = slurp(MetricsPath);
  EXPECT_NE(Dump.find("optabs_rounds_total"), std::string::npos);
  EXPECT_NE(Dump.find("optabs_span_nanos_total{span=\"tracer.run"),
            std::string::npos);

  std::string Trace = slurp(TracePath);
  ASSERT_FALSE(Trace.empty());
  EXPECT_TRUE(JsonChecker(Trace).valid());
  EXPECT_NE(Trace.find("tracer.round"), std::string::npos);
  EXPECT_NE(Trace.find("tracer.forward"), std::string::npos);

  std::remove(MetricsPath.c_str());
  std::remove(TracePath.c_str());
}

} // namespace
