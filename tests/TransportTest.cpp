//===- TransportTest.cpp - Socket/stdio line transport tests --------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The byte layer under the protocol (service/Transport.h): spec parsing,
// buffered line reads with timeouts, the bounded-line overflow contract
// (consume through the newline, stay line-aligned), and real unix/tcp
// listen-connect roundtrips.
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include "gtest/gtest.h"

#include <csignal>
#include <cstdio>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace optabs {
namespace service {
namespace {

class TransportTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() { signal(SIGPIPE, SIG_IGN); }
};

//===----------------------------------------------------------------------===//
// ListenSpec
//===----------------------------------------------------------------------===//

TEST_F(TransportTest, SpecParsesStdio) {
  ListenSpec S;
  std::string Err;
  ASSERT_TRUE(ListenSpec::parse("stdio", S, Err)) << Err;
  EXPECT_EQ(S.K, ListenSpec::Kind::Stdio);
  EXPECT_EQ(S.str(), "stdio");
}

TEST_F(TransportTest, SpecParsesUnix) {
  ListenSpec S;
  std::string Err;
  ASSERT_TRUE(ListenSpec::parse("unix:/tmp/x.sock", S, Err)) << Err;
  EXPECT_EQ(S.K, ListenSpec::Kind::Unix);
  EXPECT_EQ(S.Path, "/tmp/x.sock");
  EXPECT_EQ(S.str(), "unix:/tmp/x.sock");
}

TEST_F(TransportTest, SpecParsesTcp) {
  ListenSpec S;
  std::string Err;
  ASSERT_TRUE(ListenSpec::parse("tcp:7077", S, Err)) << Err;
  EXPECT_EQ(S.K, ListenSpec::Kind::Tcp);
  EXPECT_EQ(S.Port, 7077);
  EXPECT_EQ(S.str(), "tcp:7077");
}

TEST_F(TransportTest, SpecRejectsGarbage) {
  ListenSpec S;
  std::string Err;
  EXPECT_FALSE(ListenSpec::parse("", S, Err));
  EXPECT_FALSE(ListenSpec::parse("udp:99", S, Err));
  EXPECT_FALSE(ListenSpec::parse("unix:", S, Err));
  EXPECT_FALSE(ListenSpec::parse("tcp:", S, Err));
  EXPECT_FALSE(ListenSpec::parse("tcp:notaport", S, Err));
  EXPECT_FALSE(ListenSpec::parse("tcp:70000", S, Err));
  // sun_path is a fixed-size buffer; an overlong path must be rejected at
  // parse time, not truncated at bind time.
  EXPECT_FALSE(ListenSpec::parse("unix:/" + std::string(200, 'x'), S, Err));
  EXPECT_NE(Err.find("path"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// LineChannel over a socketpair
//===----------------------------------------------------------------------===//

struct ChannelPair {
  LineChannel A, B;
  ChannelPair(size_t MaxLineBytes = DefaultMaxLineBytes) {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = LineChannel(Fds[0], Fds[0], /*OwnsFds=*/true, MaxLineBytes);
    B = LineChannel(Fds[1], Fds[1], /*OwnsFds=*/true, MaxLineBytes);
  }
};

TEST_F(TransportTest, RoundTripsLines) {
  ChannelPair P;
  ASSERT_TRUE(P.A.writeLine("hello"));
  ASSERT_TRUE(P.A.writeLine("world"));
  std::string L;
  ASSERT_EQ(P.B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "hello");
  ASSERT_EQ(P.B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "world");
}

TEST_F(TransportTest, SplitsCoalescedAndPartialWrites) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  LineChannel B(Fds[1], Fds[1], /*OwnsFds=*/true);
  // Two lines in one write, then a line dribbled in two pieces.
  ASSERT_EQ(::write(Fds[0], "one\ntwo\nthr", 11), 11);
  std::string L;
  ASSERT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "one");
  ASSERT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "two");
  ASSERT_EQ(::write(Fds[0], "ee\n", 3), 3);
  ASSERT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "three");
  ::close(Fds[0]);
}

TEST_F(TransportTest, TimesOutWithoutData) {
  ChannelPair P;
  std::string L;
  EXPECT_EQ(P.B.readLine(L, 50), LineChannel::ReadStatus::Timeout);
  // The channel stays usable after a timeout.
  ASSERT_TRUE(P.A.writeLine("late"));
  ASSERT_EQ(P.B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "late");
}

TEST_F(TransportTest, ReportsEofAndFinalUnterminatedLine) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  LineChannel B(Fds[1], Fds[1], /*OwnsFds=*/true);
  ASSERT_EQ(::write(Fds[0], "done\npartial", 12), 12);
  ::close(Fds[0]);
  std::string L;
  ASSERT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "done");
  // An unterminated final fragment still counts as a line...
  ASSERT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "partial");
  // ...and only then EOF.
  EXPECT_EQ(B.readLine(L, 1000), LineChannel::ReadStatus::Eof);
}

TEST_F(TransportTest, OverflowConsumesThroughNewlineAndStaysAligned) {
  ChannelPair P(/*MaxLineBytes=*/16);
  std::string Long(100, 'x');
  ASSERT_TRUE(P.A.writeLine(Long));
  ASSERT_TRUE(P.A.writeLine("after"));
  std::string L;
  // The over-long line is reported once and fully discarded...
  ASSERT_EQ(P.B.readLine(L, 1000), LineChannel::ReadStatus::Overflow);
  // ...and the stream is still line-aligned: the next line is intact.
  ASSERT_EQ(P.B.readLine(L, 1000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(L, "after");
}

TEST_F(TransportTest, OverflowSpanningManyReadsThenEof) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  LineChannel B(Fds[1], Fds[1], /*OwnsFds=*/true, /*MaxLineBytes=*/8);
  std::string Huge(64 * 1024, 'y'); // far beyond one kernel buffer read
  ASSERT_EQ(::write(Fds[0], Huge.data(), 4096), 4096);
  std::thread Writer([&] {
    ::write(Fds[0], Huge.data(), Huge.size());
    ::close(Fds[0]);
  });
  std::string L;
  EXPECT_EQ(B.readLine(L, 5000), LineChannel::ReadStatus::Overflow);
  EXPECT_EQ(B.readLine(L, 5000), LineChannel::ReadStatus::Eof);
  Writer.join();
}

TEST_F(TransportTest, WriteToClosedPeerFails) {
  ChannelPair P;
  P.B.close();
  // The first write may land in the kernel buffer; keep writing until the
  // RST surfaces. Requires SIGPIPE ignored (SetUpTestSuite).
  bool Failed = false;
  for (int I = 0; I < 64 && !Failed; ++I)
    Failed = !P.A.writeLine(std::string(4096, 'z'));
  EXPECT_TRUE(Failed);
}

//===----------------------------------------------------------------------===//
// Listener + connectChannel
//===----------------------------------------------------------------------===//

void roundTrip(Listener &L) {
  std::thread Client([&] {
    std::string CErr;
    LineChannel Ch = connectChannel(L.spec(), 5000, CErr);
    ASSERT_TRUE(Ch.valid()) << CErr;
    ASSERT_TRUE(Ch.writeLine("ping"));
    std::string R;
    ASSERT_EQ(Ch.readLine(R, 5000), LineChannel::ReadStatus::Line);
    EXPECT_EQ(R, "pong");
  });

  bool TimedOut = false, Interrupted = false;
  LineChannel Server = L.acceptChannel(5000, TimedOut, Interrupted);
  ASSERT_TRUE(Server.valid()) << "timeout=" << TimedOut;
  std::string R;
  ASSERT_EQ(Server.readLine(R, 5000), LineChannel::ReadStatus::Line);
  EXPECT_EQ(R, "ping");
  ASSERT_TRUE(Server.writeLine("pong"));
  Client.join();
}

TEST_F(TransportTest, UnixListenConnectRoundTrip) {
  ListenSpec Spec;
  std::string Err;
  std::string Path = "/tmp/optabs-transport-test-" +
                     std::to_string(::getpid()) + ".sock";
  ASSERT_TRUE(ListenSpec::parse("unix:" + Path, Spec, Err)) << Err;
  {
    Listener L;
    ASSERT_TRUE(Listener::open(Spec, L, Err)) << Err;
    roundTrip(L);
  }
  // The listener unlinks its socket file on destruction.
  EXPECT_NE(::access(Path.c_str(), F_OK), 0);
}

TEST_F(TransportTest, TcpEphemeralPortRoundTrip) {
  // tcp:0 asks the kernel for a port; spec() reports the real one.
  ListenSpec Spec;
  std::string Err;
  ASSERT_TRUE(ListenSpec::parse("tcp:0", Spec, Err)) << Err;
  Listener L;
  ASSERT_TRUE(Listener::open(Spec, L, Err)) << Err;
  ASSERT_NE(L.spec().Port, 0);
  roundTrip(L);
}

TEST_F(TransportTest, StaleUnixSocketFileIsReplaced) {
  std::string Path = "/tmp/optabs-transport-stale-" +
                     std::to_string(::getpid()) + ".sock";
  ListenSpec Spec;
  std::string Err;
  ASSERT_TRUE(ListenSpec::parse("unix:" + Path, Spec, Err)) << Err;
  // Simulate a crashed server: a bound socket file with no process behind
  // it (bind by hand, close the fd, never unlink).
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  struct sockaddr_un SA = {};
  SA.sun_family = AF_UNIX;
  std::snprintf(SA.sun_path, sizeof(SA.sun_path), "%s", Path.c_str());
  ::unlink(Path.c_str());
  ASSERT_EQ(::bind(Fd, reinterpret_cast<struct sockaddr *>(&SA), sizeof(SA)),
            0);
  ::close(Fd);
  ASSERT_EQ(::access(Path.c_str(), F_OK), 0);
  // The dead server's socket file must not block the next bind.
  Listener Second;
  ASSERT_TRUE(Listener::open(Spec, Second, Err)) << Err;
}

TEST_F(TransportTest, ConnectTimesOutWhenNobodyListens) {
  ListenSpec Spec;
  std::string Err;
  ASSERT_TRUE(
      ListenSpec::parse("unix:/tmp/optabs-nobody-home.sock", Spec, Err));
  std::string CErr;
  LineChannel Ch = connectChannel(Spec, 100, CErr);
  EXPECT_FALSE(Ch.valid());
  EXPECT_FALSE(CErr.empty());
}

} // namespace
} // namespace service
} // namespace optabs
