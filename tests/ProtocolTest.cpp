//===- ProtocolTest.cpp - Versioned JSONL schema tests ------------------------===//
//
// Both JSONL surfaces of the project - the CEGAR event trace
// (tracer/EventTrace.h, `"v":1`) and the optabs-serve request/response
// protocol (service/Protocol.h, `"v":1`) - are versioned, and their exact
// serialized forms are pinned by a golden file: a renamed, re-typed, or
// re-ordered field fails here instead of silently breaking downstream
// trace consumers. The flat-JSON request parser is exercised over its
// whole grammar, including everything it must reject.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "service/Protocol.h"
#include "support/Prng.h"
#include "tracer/EventTrace.h"
#include "tracer/QueryDriver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

using namespace optabs;
using tracer::JsonObject;

namespace {

#ifndef OPTABS_GOLDEN_DIR
#define OPTABS_GOLDEN_DIR "golden"
#endif

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.is_open()) << "cannot open " << Path;
  std::vector<std::string> Lines;
  std::string Line;
  while (std::getline(In, Line))
    Lines.push_back(Line);
  return Lines;
}

/// Mirrors EventTraceWriter::event(): the common prefix every trace line
/// carries.
JsonObject event(const char *Kind) {
  JsonObject O;
  O.field("v", tracer::EventSchemaVersion);
  O.field("event", Kind);
  O.field("label", "golden");
  return O;
}

/// One sample line per event kind and per protocol response form, with
/// fixed values, built exactly like the emitting code builds them. The
/// golden file pins the serialized bytes.
std::vector<std::string> sampleSchemaLines() {
  std::vector<std::string> L;
  L.push_back(event("run_begin")
                  .field("queries", size_t(2))
                  .field("strategy", "tracer")
                  .field("k", 5u)
                  .field("threads", 1u)
                  .str());
  L.push_back(event("round_begin")
                  .field("round", 1u)
                  .field("unresolved", 2u)
                  .field("groups", size_t(1))
                  .str());
  L.push_back(event("choose")
                  .field("round", 1u)
                  .field("members", size_t(2))
                  .field("cost", uint32_t(1))
                  .field("bits", tracer::bitsToString({false, true, false}))
                  .field("viable_clauses", size_t(3))
                  .hexField("viable_sig", 0x1234)
                  .str());
  L.push_back(event("forward")
                  .field("round", 1u)
                  .field("bits", "010")
                  .field("cached", false)
                  .field("seconds", 0.25)
                  .str());
  L.push_back(event("step")
                  .field("round", 1u)
                  .field("query", uint32_t(0))
                  .field("kind", "backward")
                  .field("fail_states", size_t(1))
                  .field("traces", size_t(1))
                  .field("trace_lens", std::vector<size_t>{4, 7})
                  .field("max_cubes", size_t(2))
                  .hexField("learned_sig", 0xdeadbeef)
                  .str());
  L.push_back(event("verdict")
                  .field("round", 2u)
                  .field("query", uint32_t(0))
                  .field("verdict", "proven")
                  .field("iterations", 2u)
                  .field("cost", uint32_t(1))
                  .field("param", "[L:h1]")
                  .str());
  L.push_back(event("round_end")
                  .field("round", 1u)
                  .field("unresolved", 1u)
                  .field("cache_hits", uint64_t(0))
                  .field("cache_misses", uint64_t(1))
                  .field("cache_evictions", uint64_t(0))
                  .field("seconds", 0.5)
                  .str());
  L.push_back(event("invariant_violation")
                  .field("check", uint32_t(0))
                  .field("where", "forward.postcheck")
                  .field("message", "fixpoint not inductive")
                  .str());
  L.push_back(event("budget_exhausted")
                  .field("round", 1u)
                  .field("query", uint32_t(0))
                  .field("resource", "steps")
                  .field("site", "forward.visit")
                  .str());
  L.push_back(event("degrade")
                  .field("round", 2u)
                  .field("rung", 1u)
                  .field("action", "evict_cache")
                  .field("trigger", "memory")
                  .field("resident_bytes", uint64_t(2048))
                  .field("budget_bytes", uint64_t(1024))
                  .field("evicted", size_t(3))
                  .str());
  L.push_back(event("run_end")
                  .field("rounds", 3u)
                  .field("forward_runs", 4u)
                  .field("backward_runs", 2u)
                  .field("solver_calls", 3u)
                  .field("violations", size_t(0))
                  .field("budget_exhausted", 1u)
                  .field("degradations", 1u)
                  .field("seconds", 1.5)
                  .str());
  // Service protocol response forms (service/Protocol.h).
  L.push_back(service::response(true).str());
  L.push_back(service::response(false).str());
  L.push_back(service::errorLine("submit", "unknown or closed session"));
  L.push_back(service::errorLine("", "not json"));
  // A job-result line as optabs-serve emits it after a drain.
  L.push_back(service::response(true)
                  .field("op", "result")
                  .field("job", uint64_t(1))
                  .field("session", uint64_t(1))
                  .field("status", "done")
                  .field("verdict", "proven")
                  .field("iterations", 3u)
                  .field("cost", uint32_t(2))
                  .field("param", "[L:h1,h2]")
                  .str());
  return L;
}

TEST(SchemaGoldenTest, SerializedFormsMatchGoldenFile) {
  std::vector<std::string> Want =
      readLines(std::string(OPTABS_GOLDEN_DIR) + "/schema_v1.golden");
  std::vector<std::string> Got = sampleSchemaLines();
  ASSERT_EQ(Want.size(), Got.size())
      << "schema sample count changed; regenerate the golden file "
         "deliberately and bump the schema version if a field changed";
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Want[I], Got[I]) << "line " << (I + 1);
}

TEST(SchemaGoldenTest, VersionsAreStillOne) {
  // Bumping either version is a deliberate act: it must come with a new
  // golden file and a schema note in DESIGN.md.
  EXPECT_EQ(tracer::EventSchemaVersion, 1);
  EXPECT_EQ(service::ProtocolVersion, 1);
}

TEST(JsonObjectTest, EscapesStringsPerRfc8259) {
  JsonObject O;
  O.field("s", std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(O.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonObjectTest, FieldsKeepInsertionOrder) {
  JsonObject O;
  O.field("z", 1u).field("a", 2u).field("m", true);
  EXPECT_EQ(O.str(), "{\"z\":1,\"a\":2,\"m\":true}");
}

//===----------------------------------------------------------------------===//
// service::JsonLine - the request parser.
//===----------------------------------------------------------------------===//

service::JsonLine parseOk(const std::string &Text) {
  service::JsonLine L;
  std::string Err;
  EXPECT_TRUE(service::JsonLine::parse(Text, L, Err)) << Err;
  return L;
}

std::string parseErr(const std::string &Text) {
  service::JsonLine L;
  std::string Err;
  EXPECT_FALSE(service::JsonLine::parse(Text, L, Err)) << Text;
  return Err;
}

TEST(JsonLineTest, ParsesFlatObjects) {
  service::JsonLine L = parseOk(
      R"({"op":"submit","session":3,"priority":-2,"ok":true,"bad":false,)"
      R"("text":"a\nb\t\"q\" \\ A","f":1.5})");
  EXPECT_EQ(L.getString("op"), "submit");
  EXPECT_EQ(L.getUInt("session"), 3u);
  EXPECT_EQ(L.getInt("priority"), -2);
  EXPECT_EQ(L.getString("text"), "a\nb\t\"q\" \\ A");
  EXPECT_TRUE(L.has("ok"));
  EXPECT_TRUE(L.has("f"));
  EXPECT_FALSE(L.has("missing"));
  service::JsonLine Empty = parseOk("{}");
  EXPECT_FALSE(Empty.has("op"));
}

TEST(JsonLineTest, AccessorsRejectTypeMismatches) {
  service::JsonLine L =
      parseOk(R"({"s":"five","n":5,"neg":-1,"d":2.5,"b":true})");
  EXPECT_EQ(L.getUInt("s"), std::nullopt);   // string where a uint goes
  EXPECT_EQ(L.getString("n"), std::nullopt); // number where a string goes
  EXPECT_EQ(L.getUInt("neg"), std::nullopt); // negative is not unsigned
  EXPECT_EQ(L.getUInt("d"), std::nullopt);   // doubles are not valid uints
  EXPECT_EQ(L.getUInt("b"), std::nullopt);   // bools are not numbers
  EXPECT_EQ(L.getInt("neg"), -1);
  EXPECT_EQ(L.getUInt("n"), 5u);
}

TEST(JsonLineTest, RejectsEverythingThatIsNotAFlatObject) {
  EXPECT_EQ(parseErr("this is not json"), "expected a JSON object");
  EXPECT_EQ(parseErr("[1,2]"), "expected a JSON object");
  EXPECT_EQ(parseErr(R"({"a":1} trailing)"),
            "trailing characters after object");
  EXPECT_NE(parseErr(R"({"a":"unterminated)").find("unterminated"),
            std::string::npos);
  EXPECT_NE(parseErr(R"({42:"key"})").find("string key"),
            std::string::npos);
  EXPECT_NE(parseErr(R"({"a" 1})").find("':'"), std::string::npos);
  EXPECT_NE(parseErr(R"({"a":})").find("value"), std::string::npos);
  EXPECT_NE(parseErr(R"({"a":1 "b":2})").find("','"), std::string::npos);
  // Nested structures are not protocol lines.
  EXPECT_NE(parseErr(R"({"a":{"b":1}})").size(), 0u);
  // \u escapes beyond ASCII and unknown escapes are rejected (non-ASCII
  // text travels as raw UTF-8 instead, which the parser passes through).
  EXPECT_NE(parseErr("{\"a\":\"\\u00ff\"}").size(), 0u);
  EXPECT_NE(parseErr("{\"a\":\"\\x41\"}").size(), 0u);
  service::JsonLine Utf8 = parseOk("{\"a\":\"\xc3\xbf\"}");
  EXPECT_EQ(Utf8.getString("a"), "\xc3\xbf");
}

TEST(JsonLineTest, AcceptsEveryRfc8259SingleCharEscape) {
  // \b and \f were missing from the escape table for a while, so protocol
  // strings produced by stricter JSON writers failed to parse. Pin the
  // full RFC 8259 set.
  service::JsonLine L =
      parseOk(R"({"s":"\"\\\/\b\f\n\r\t","u":"A\u000a\u007F"})");
  EXPECT_EQ(L.getString("s"), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(L.getString("u"), "A\n\x7f");
}

TEST(JsonLineTest, ReportsTheExactEscapeDefect) {
  // A bad escape used to surface as "unterminated string value", sending
  // people hunting for a quote that was never the problem. The parser now
  // names the defect, where it sits (key vs value), and which key.
  EXPECT_EQ(parseErr(R"({"a":"bad\qescape"})"),
            "invalid escape '\\q' in string value for key 'a'");
  EXPECT_EQ(parseErr(R"({"bad\qkey":1})"),
            "invalid escape '\\q' in object key");
  EXPECT_EQ(parseErr(R"({"a":"\u00zz"})"),
            "non-hex digit 'z' in \\u escape in string value for key 'a'");
  EXPECT_EQ(parseErr(R"({"a":"\u00ff"})"),
            "\\u00ff is above 0x7f (send non-ASCII as raw UTF-8) in string "
            "value for key 'a'");
  EXPECT_EQ(parseErr(R"({"a":"\u0a)"),
            "truncated \\u escape (needs 4 hex digits) in string value for "
            "key 'a'");
  EXPECT_EQ(parseErr("{\"a\":\"trail\\"),
            "truncated escape at end of line in string value for key 'a'");
  // A plain missing close quote still reports as unterminated.
  EXPECT_EQ(parseErr(R"({"a":"unterminated)"),
            "unterminated string value for key 'a'");
}

TEST(JsonLineTest, RoundTripsThroughJsonObject) {
  // What the serve tool writes, the parser (a test client, effectively)
  // must read back unchanged - including every escaped character.
  std::string Tricky = "path\\with \"quotes\"\nand\ttabs";
  JsonObject O = service::response(true);
  O.field("op", "register-program").field("name", Tricky);
  O.field("epoch", uint64_t(7));
  service::JsonLine L = parseOk(O.str());
  EXPECT_EQ(L.getUInt("v"),
            static_cast<uint64_t>(service::ProtocolVersion));
  EXPECT_EQ(L.getString("name"), Tricky);
  EXPECT_EQ(L.getUInt("epoch"), 7u);
}

TEST(JsonLineTest, GetBoolReadsOnlyBooleans) {
  service::JsonLine L = parseOk(R"({"t":true,"f":false,"n":1,"s":"true"})");
  EXPECT_EQ(L.getBool("t"), true);
  EXPECT_EQ(L.getBool("f"), false);
  EXPECT_EQ(L.getBool("n"), std::nullopt); // numbers are not booleans
  EXPECT_EQ(L.getBool("s"), std::nullopt); // nor are spelled-out strings
  EXPECT_EQ(L.getBool("missing"), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Property/fuzz tests: the parser fronts untrusted sockets (optabs-serve
// --listen), so no input may crash it, and every rejection must carry a
// structured, non-empty error. Deterministic PRNG - failures reproduce.
//===----------------------------------------------------------------------===//

/// The property every input must satisfy: parse() returns cleanly, and
/// when it rejects, it says why.
void expectParseTotal(const std::string &Text) {
  service::JsonLine L;
  std::string Err;
  if (!service::JsonLine::parse(Text, L, Err)) {
    EXPECT_FALSE(Err.empty()) << "silent rejection of: " << Text;
  }
}

TEST(JsonLineFuzzTest, RandomGarbageNeverCrashes) {
  Prng R(0xf00d0001);
  for (int Iter = 0; Iter < 4000; ++Iter) {
    std::string Text;
    size_t Len = R.nextBelow(64);
    for (size_t I = 0; I < Len; ++I)
      Text += static_cast<char>(R.nextBelow(256));
    expectParseTotal(Text);
  }
}

TEST(JsonLineFuzzTest, StructureHeavyGarbageNeverCrashes) {
  // Garbage drawn from JSON's own alphabet reaches much deeper into the
  // parser than uniform bytes do.
  static const char Alphabet[] = "{}[]\":,\\un0123456789.-eEtrufalse \t";
  Prng R(0xf00d0002);
  for (int Iter = 0; Iter < 4000; ++Iter) {
    std::string Text;
    size_t Len = R.nextBelow(48);
    for (size_t I = 0; I < Len; ++I)
      Text += Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
    expectParseTotal(Text);
  }
}

TEST(JsonLineFuzzTest, MutatedValidLinesNeverCrash) {
  // Start from real protocol lines and corrupt them: truncations,
  // byte flips, insertions, deletions. This is the shape of damage a
  // half-written socket line or a buggy client actually produces.
  const std::string Seeds[] = {
      R"({"op":"submit","session":3,"check":0,"priority":-2})",
      R"({"op":"register-program","name":"fig6","text":"proc main {\n}"})",
      R"({"op":"open-session","program":"fig6","client":"escape","k":1})",
      R"({"v":1,"ok":true,"op":"ping","uptime_s":0.25,"pending":0})",
      "{\"s\":\"\\\"\\\\\\/\\b\\f\\n\\r\\t\\u0041\"}",
  };
  Prng R(0xf00d0003);
  for (int Iter = 0; Iter < 6000; ++Iter) {
    std::string Text = Seeds[R.nextBelow(std::size(Seeds))];
    unsigned Mutations = 1 + R.nextBelow(4);
    for (unsigned M = 0; M < Mutations; ++M) {
      if (Text.empty())
        break;
      size_t Pos = R.nextBelow(Text.size());
      switch (R.nextBelow(4)) {
      case 0: // truncate
        Text.resize(Pos);
        break;
      case 1: // flip one byte
        Text[Pos] = static_cast<char>(R.nextBelow(256));
        break;
      case 2: // insert one byte
        Text.insert(Text.begin() + Pos,
                    static_cast<char>(R.nextBelow(256)));
        break;
      default: // delete one byte
        Text.erase(Text.begin() + Pos);
        break;
      }
    }
    expectParseTotal(Text);
  }
}

TEST(JsonLineFuzzTest, RandomLinesRoundTripThroughJsonObject) {
  // The constructive property: anything JsonObject can write, JsonLine
  // reads back value-identical - arbitrary bytes in strings included.
  Prng R(0xf00d0004);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    std::string S;
    size_t Len = R.nextBelow(24);
    for (size_t I = 0; I < Len; ++I) {
      // Raw bytes, but keep multi-byte range out: the writer emits
      // non-ASCII as raw UTF-8, and random lone continuation bytes are
      // not valid UTF-8 the parser must accept.
      S += static_cast<char>(R.nextBelow(0x80));
    }
    uint64_t N = R.next() >> 11; // < 2^53: JSON-number safe
    bool B = R.chance(1, 2);
    JsonObject O;
    O.field("op", "fuzz").field("s", S).field("n", N).field("b", B);
    service::JsonLine L = parseOk(O.str());
    EXPECT_EQ(L.getString("s"), S);
    EXPECT_EQ(L.getUInt("n"), N);
    EXPECT_EQ(L.getBool("b"), B);
  }
}

//===----------------------------------------------------------------------===//
// Live event trace: schema stamped on every emitted line.
//===----------------------------------------------------------------------===//

TEST(EventTraceTest, EveryEmittedLineCarriesTheSchemaVersion) {
  const char *Text = "proc main {\n"
                     "  u = new h1;\n"
                     "  v = new h2;\n"
                     "  v.f = u;\n"
                     "  check(u);\n"
                     "}\n";
  ir::Program P;
  std::string Err;
  ASSERT_TRUE(ir::parseProgram(Text, P, Err)) << Err;

  std::string Path = "protocol_event_trace_smoke.jsonl";
  std::ofstream(Path, std::ios::trunc).close();
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  Opts.EventTracePath = Path;
  Opts.EventTraceLabel = "smoke";
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  Driver.run({ir::CheckId(0)});

  std::vector<std::string> Lines = readLines(Path);
  ASSERT_FALSE(Lines.empty());
  const std::string Prefix = "{\"v\":1,\"event\":\"";
  bool SawRunBegin = false, SawRunEnd = false;
  for (const std::string &Line : Lines) {
    EXPECT_EQ(Line.compare(0, Prefix.size(), Prefix), 0) << Line;
    EXPECT_NE(Line.find("\"label\":\"smoke\""), std::string::npos) << Line;
    SawRunBegin |= Line.find("\"event\":\"run_begin\"") != std::string::npos;
    SawRunEnd |= Line.find("\"event\":\"run_end\"") != std::string::npos;
  }
  EXPECT_TRUE(SawRunBegin);
  EXPECT_TRUE(SawRunEnd);
  std::remove(Path.c_str());
}

} // namespace
