//===- SynthTest.cpp - Unit tests for the benchmark generator -----------------===//

#include "synth/Generator.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pointer/PointsTo.h"

#include "gtest/gtest.h"

#include <sstream>

namespace {

using namespace optabs;
using namespace optabs::ir;

TEST(Synth, DeterministicForSeed) {
  const auto &Config = synth::paperSuite()[0];
  synth::Benchmark A = synth::generate(Config);
  synth::Benchmark B = synth::generate(Config);
  std::ostringstream OA, OB;
  printProgram(OA, A.P);
  printProgram(OB, B.P);
  EXPECT_EQ(OA.str(), OB.str());
  EXPECT_EQ(A.TsChecks.size(), B.TsChecks.size());
  EXPECT_EQ(A.EscChecks.size(), B.EscChecks.size());
}

TEST(Synth, DifferentSeedsDiffer) {
  synth::BenchConfig C = synth::paperSuite()[0];
  synth::Benchmark A = synth::generate(C);
  C.Seed += 1;
  synth::Benchmark B = synth::generate(C);
  std::ostringstream OA, OB;
  printProgram(OA, A.P);
  printProgram(OB, B.P);
  EXPECT_NE(OA.str(), OB.str());
}

TEST(Synth, GeneratedProgramsRoundTripThroughParser) {
  for (const auto &Config : synth::smallSuite()) {
    synth::Benchmark B = synth::generate(Config);
    std::ostringstream OS;
    printProgram(OS, B.P);
    Program P2;
    std::string Error;
    ASSERT_TRUE(parseProgram(OS.str(), P2, Error))
        << Config.Name << ": " << Error;
    EXPECT_EQ(P2.numCommands(), B.P.numCommands());
    EXPECT_EQ(P2.numChecks(), B.P.numChecks());
    EXPECT_EQ(P2.numProcs(), B.P.numProcs());
  }
}

TEST(Synth, StructuralInvariants) {
  for (const auto &Config : synth::paperSuite()) {
    synth::Benchmark B = synth::generate(Config);
    EXPECT_TRUE(B.P.main().isValid());
    EXPECT_EQ(B.P.proc(B.P.main()).Name, "main");
    // Every check is tagged and belongs to exactly one query list.
    SymbolId Ts = B.P.findSymbol("ts");
    SymbolId Esc = B.P.findSymbol("esc");
    ASSERT_TRUE(Ts.isValid() && Esc.isValid());
    EXPECT_EQ(B.TsChecks.size() + B.EscChecks.size(), B.P.numChecks());
    for (CheckId C : B.TsChecks)
      EXPECT_EQ(B.P.checkSite(C).Payload, Ts);
    for (CheckId C : B.EscChecks)
      EXPECT_EQ(B.P.checkSite(C).Payload, Esc);
    // All procedures defined, all checks in reachable code.
    auto Pt = pointer::runPointsTo(B.P);
    for (uint32_t I = 0; I < B.P.numProcs(); ++I)
      EXPECT_TRUE(B.P.proc(ProcId(I)).Body.isValid());
    for (uint32_t I = 0; I < B.P.numChecks(); ++I)
      EXPECT_TRUE(Pt.isReachable(B.P.checkSite(CheckId(I)).Proc))
          << Config.Name;
  }
}

TEST(Synth, SuiteSizesGrowRoughlyLikeTable1) {
  const auto &Suite = synth::paperSuite();
  ASSERT_EQ(Suite.size(), 7u);
  synth::Benchmark Tsp = synth::generate(Suite[0]);
  synth::Benchmark Avrora = synth::generate(Suite[5]);
  // avrora is the largest benchmark in every dimension.
  EXPECT_GT(Avrora.P.numCommands(), 3 * Tsp.P.numCommands());
  EXPECT_GT(Avrora.P.numVars(), 3 * Tsp.P.numVars());
  EXPECT_GT(Avrora.P.numAllocs(), 3 * Tsp.P.numAllocs());
  EXPECT_EQ(Suite[5].Name, "avrora");
}

TEST(Synth, SmallSuiteIsPrefixOfFour) {
  auto Small = synth::smallSuite();
  ASSERT_EQ(Small.size(), 4u);
  EXPECT_EQ(Small[0].Name, "tsp");
  EXPECT_EQ(Small[3].Name, "weblech");
}

TEST(Synth, EveryBenchmarkHasBothQueryKinds) {
  for (const auto &Config : synth::paperSuite()) {
    synth::Benchmark B = synth::generate(Config);
    EXPECT_GT(B.TsChecks.size(), 0u) << Config.Name;
    EXPECT_GT(B.EscChecks.size(), 0u) << Config.Name;
  }
}

TEST(Synth, MayPointSetsAreUnitSizedForChainChecks) {
  // Type-state checks in chain units reference variables whose points-to
  // sets contain only the unit's own site, keeping queries well-scoped.
  synth::Benchmark B = synth::generate(synth::paperSuite()[0]);
  auto Pt = pointer::runPointsTo(B.P);
  size_t Queries = 0;
  for (CheckId C : B.TsChecks)
    Queries += Pt.pointsTo(B.P.checkSite(C).Var).count();
  // Every ts check maps to at least one query and at most two (kill units).
  EXPECT_GE(Queries, B.TsChecks.size());
  EXPECT_LE(Queries, 2 * B.TsChecks.size());
}

} // namespace
