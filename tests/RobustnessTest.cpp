//===- RobustnessTest.cpp - Fuzz-lite and misuse robustness -------------------===//
//
// The parser must reject (never crash on) arbitrary input; the analyses
// must behave sensibly at API boundaries; documented imprecisions of the
// substrates hold as documented.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pointer/PointsTo.h"
#include "reporting/Harness.h"
#include "support/FaultInjection.h"
#include "support/Prng.h"
#include "synth/Generator.h"
#include "tracer/MinCostSat.h"
#include "typestate/Typestate.h"

#include "gtest/gtest.h"

#include <sstream>

namespace {

using namespace optabs;
using namespace optabs::ir;

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const char *Tokens[] = {"proc",  "main", "{",    "}",    "global", ";",
                          "x",     "=",    "new",  "h1",   "null",   "if",
                          "else",  "loop", "choice", "or", "check",  "(",
                          ")",     ",",    ".",    "call", "assume", "*",
                          "f",     "g",    "open"};
  constexpr size_t NumTokens = sizeof(Tokens) / sizeof(Tokens[0]);
  Prng Rng(0xF022);
  unsigned Accepted = 0;
  for (int Round = 0; Round < 500; ++Round) {
    std::string Src;
    unsigned Len = 1 + Rng.nextBelow(40);
    for (unsigned I = 0; I < Len; ++I) {
      Src += Tokens[Rng.nextBelow(NumTokens)];
      Src += " ";
    }
    Program P;
    std::string Error;
    if (parseProgram(Src, P, Error)) {
      ++Accepted;
      EXPECT_TRUE(P.main().isValid());
    } else {
      EXPECT_FALSE(Error.empty()) << Src;
    }
  }
  // Sanity: most soup is rejected, with an error message, without crashing.
  EXPECT_LT(Accepted, 100u);
}

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Prng Rng(0xB17E5);
  for (int Round = 0; Round < 300; ++Round) {
    std::string Src;
    unsigned Len = Rng.nextBelow(120);
    for (unsigned I = 0; I < Len; ++I)
      Src += static_cast<char>(32 + Rng.nextBelow(95));
    Program P;
    std::string Error;
    parseProgram(Src, P, Error); // must simply not crash
  }
}

TEST(ParserFuzz, PrintedProgramsAlwaysReparse) {
  // Generator round-trips are covered in SynthTest; here, hand-built
  // programs with every command kind.
  Program P;
  ProcId Main = P.makeProc("main");
  GlobalId G = P.makeGlobal("g");
  VarId X = P.makeVar("x"), Y = P.makeVar("y");
  FieldId F = P.makeField("f");
  std::vector<StmtId> Body;
  Body.push_back(P.stmtAtom(P.cmdAssume()));
  Body.push_back(P.stmtAtom(P.cmdNew(X, P.makeAlloc("h1"))));
  Body.push_back(P.stmtAtom(P.cmdCopy(Y, X)));
  Body.push_back(P.stmtAtom(P.cmdNull(Y)));
  Body.push_back(P.stmtAtom(P.cmdLoadGlobal(Y, G)));
  Body.push_back(P.stmtAtom(P.cmdStoreGlobal(G, X)));
  Body.push_back(P.stmtAtom(P.cmdLoadField(Y, X, F)));
  Body.push_back(P.stmtAtom(P.cmdStoreField(X, F, Y)));
  Body.push_back(P.stmtAtom(P.cmdMethodCall(X, P.makeMethod("open"))));
  Body.push_back(
      P.stmtAtom(P.cmdCheck(X, P.makeSymbol("closed"), Main)));
  Body.push_back(P.stmtStar(P.stmtChoice({P.stmtAtom(P.cmdNull(X)),
                                          P.stmtSkip()})));
  P.setProcBody(Main, P.stmtSeq(std::move(Body)));
  P.setMain(Main);

  std::ostringstream OS;
  printProgram(OS, P);
  Program P2;
  std::string Error;
  ASSERT_TRUE(parseProgram(OS.str(), P2, Error)) << Error << "\n"
                                                 << OS.str();
  EXPECT_EQ(P2.numCommands(), P.numCommands());
}

TEST(Robustness, CnfEvalWithShortAssignment) {
  tracer::Cnf F;
  F.addClause({{7, true}});
  std::vector<bool> Short(3, true); // variable 7 out of range => false
  EXPECT_FALSE(F.eval(Short));
  std::vector<bool> Long(8, false);
  Long[7] = true;
  EXPECT_TRUE(F.eval(Long));
}

TEST(Robustness, PointsToFieldSummariesAreFieldBased) {
  // Documented imprecision of the 0-CFA substrate: field reads merge over
  // all bases that may be non-empty.
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(R"(
    proc main {
      a = new h1;
      b = new h2;
      a.f = a;
      c = b.f;
    }
  )", P, Error)) << Error;
  auto R = pointer::runPointsTo(P);
  // c reads b.f, which was never written through b, but field-based
  // merging still reports h1.
  EXPECT_TRUE(R.mayPoint(P.findVar("c"), P.findAlloc("h1")));
}

TEST(Robustness, ForwardNeedsMultipleRoundsOnRecursion) {
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(R"(
    proc main { call rec; check(a); }
    proc rec { a = new h1; if { call rec; } }
  )", P, Error)) << Error;
  escape::EscapeAnalysis A(P);
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(P, A,
                                                       A.paramFromBits({}));
  FA.run(A.initialState());
  // Recursive summaries stabilize over more than one chaotic round.
  EXPECT_GE(FA.stats().NumRounds, 2u);
}

TEST(Robustness, EscapeAnalysisOnEmptyishProgram) {
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram("proc main { check(v); v = null; }", P, Error))
      << Error;
  escape::EscapeAnalysis A(P);
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(P, A,
                                                       A.paramFromBits({}));
  FA.run(A.initialState());
  auto States = FA.statesAtCheck(CheckId(0));
  ASSERT_EQ(States.size(), 1u);
  // v starts definitely-null: the query is trivially proven.
  formula::Dnf NotQ = A.notQ(CheckId(0));
  EXPECT_FALSE(NotQ.eval([&](formula::AtomId At) {
    return A.evalAtom(At, A.paramFromBits({}), States[0]);
  }));
}

TEST(Robustness, StressSpecIgnoresAutomatonQueries) {
  // In stress mode the check payload is ignored: notQ is err alone.
  Program P;
  std::string Error;
  ASSERT_TRUE(parseProgram(
      "proc main { x = new h1; check(x, whatever); }", P, Error))
      << Error;
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();
  auto Pt = pointer::runPointsTo(P);
  typestate::TypestateAnalysis A(P, Spec, P.findAlloc("h1"), Pt);
  formula::Dnf NotQ = A.notQ(CheckId(0));
  EXPECT_EQ(NotQ.size(), 1u);
  EXPECT_EQ(NotQ.toString([&](formula::AtomId At) { return A.atomName(At); }),
            "err");
}

TEST(FaultMatrix, EverySiteEveryKindRecoversSoundly) {
  // One injected fault per run - every registered site, every fault kind,
  // sequential and parallel. The contract is sound recovery: the harness
  // run completes (no crash, no deadlock), and under audit every verdict
  // the driver still hands out carries a valid certificate. Injected
  // invariant faults leave violation records by design, so those are not
  // asserted empty - only that no verdict is wrong.
  for (unsigned Threads : {1u, 8u}) {
    for (const std::string &Site : support::FaultRegistry::knownSites()) {
      for (const char *Kind : {"alloc", "cancel", "invariant"}) {
        std::string Spec = Site + ":" + Kind;
        std::string Err;
        ASSERT_TRUE(support::FaultRegistry::global().arm(Spec, Err)) << Err;
        reporting::HarnessOptions Options;
        Options.RunTypestate = false; // escape exercises every fault site
        Options.Cfg.Audit.Enabled = true;
        Options.Cfg.Execution.NumThreads = Threads;
        reporting::BenchRun Run =
            reporting::runBenchmark(synth::paperSuite()[0], Options);
        support::FaultRegistry::global().disarm();
        EXPECT_FALSE(Run.Esc.Queries.empty());
        EXPECT_EQ(Run.Esc.CertificateFailures, 0u)
            << Spec << " threads=" << Threads;
        for (const std::string &Note : Run.Esc.AuditNotes)
          if (Note.find("certificate") != std::string::npos)
            ADD_FAILURE() << Spec << " threads=" << Threads << ": " << Note;
      }
    }
  }
}

TEST(FaultMatrix, DelayedFaultsFireMidRun) {
  // An @n arm lets the run make progress before the failure lands; the
  // driver must still recover. The 3rd forward fixpoint dying exercises
  // recovery with a warm cache and learned clauses in play.
  std::string Err;
  ASSERT_TRUE(
      support::FaultRegistry::global().arm("forward.visit:alloc@3", Err))
      << Err;
  reporting::HarnessOptions Options;
  Options.RunTypestate = false;
  Options.Cfg.Audit.Enabled = true;
  reporting::BenchRun Run =
      reporting::runBenchmark(synth::paperSuite()[0], Options);
  support::FaultRegistry::global().disarm();
  EXPECT_EQ(Run.Esc.CertificateFailures, 0u);
}

TEST(Robustness, GeneratedSuiteUsesLoopsAndBranches) {
  // Biggest benchmark: wrappers are statistically certain to appear.
  synth::Benchmark B = synth::generate(synth::paperSuite()[5]);
  std::ostringstream OS;
  printProgram(OS, B.P);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("loop {"), std::string::npos);
  EXPECT_NE(Out.find("choice {"), std::string::npos);
  EXPECT_NE(Out.find("call lib"), std::string::npos);
}

} // namespace
