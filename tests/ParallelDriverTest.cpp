//===- ParallelDriverTest.cpp - Determinism of the parallel driver ------------===//
//
// The parallel TRACER driver promises bitwise-identical results for every
// worker count: verdicts, iteration counts, cheapest abstractions, and all
// non-timing statistics must match the sequential run exactly (only the
// Seconds fields may differ). These tests pin that contract on both client
// analyses over the synthetic integration programs, and cover the
// cross-round forward-run cache (hit accounting, LRU eviction, pinning).
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "reporting/Harness.h"
#include "synth/Generator.h"
#include "tracer/ForwardRunCache.h"
#include "tracer/QueryDriver.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>
#include <vector>

namespace {

using namespace optabs;
using tracer::ForwardRunCache;
using tracer::QueryOutcome;
using tracer::TracerOptions;
using tracer::Verdict;

/// Everything the determinism contract covers, in comparable form.
struct Fingerprint {
  std::vector<std::string> Queries; ///< verdict/iters/cost/param/exhaustion
  unsigned ForwardRuns = 0;
  unsigned BackwardRuns = 0;
  unsigned BudgetExhausted = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;

  bool operator==(const Fingerprint &) const = default;
};

Fingerprint fingerprintOf(const reporting::ClientResults &R,
                          unsigned ForwardRuns, unsigned BackwardRuns) {
  Fingerprint F;
  for (const reporting::QueryStat &Q : R.Queries)
    F.Queries.push_back(std::string(tracer::verdictName(Q.V)) + "/" +
                        std::to_string(Q.Iterations) + "/" +
                        std::to_string(Q.Cost) + "/" + Q.ParamKey + "/" +
                        Q.ExhaustedResource + "/" + Q.ExhaustedSite);
  F.ForwardRuns = ForwardRuns;
  F.BackwardRuns = BackwardRuns;
  F.BudgetExhausted = R.BudgetExhausted;
  F.CacheHits = R.CacheHits;
  F.CacheMisses = R.CacheMisses;
  F.CacheEvictions = R.CacheEvictions;
  return F;
}

/// Runs both clients over one integration benchmark at a given worker
/// count and fingerprints everything that must not depend on it.
std::pair<Fingerprint, Fingerprint> runAt(const synth::BenchConfig &Config,
                                          unsigned NumThreads,
                                          size_t CacheCapacity = 0) {
  reporting::HarnessOptions Options;
  Options.Cfg.Execution.NumThreads = NumThreads;
  Options.Cfg.Execution.ForwardCacheCapacity = CacheCapacity;
  reporting::BenchRun Run = reporting::runBenchmark(Config, Options);
  return {fingerprintOf(Run.Esc, Run.Esc.ForwardRuns, Run.Esc.BackwardRuns),
          fingerprintOf(Run.Ts, Run.Ts.ForwardRuns, Run.Ts.BackwardRuns)};
}

TEST(ParallelDriver, WorkerCountDoesNotChangeResults) {
  // Both clients (escape + typestate) over the first two integration
  // programs: the full Algorithm 1 pipeline including §6 grouping.
  for (size_t BenchIdx : {size_t(0), size_t(1)}) {
    const synth::BenchConfig &Config = synth::paperSuite()[BenchIdx];
    auto Baseline = runAt(Config, 1);
    EXPECT_FALSE(Baseline.first.Queries.empty());
    EXPECT_FALSE(Baseline.second.Queries.empty());
    for (unsigned Threads : {2u, 8u}) {
      auto Parallel = runAt(Config, Threads);
      EXPECT_EQ(Baseline.first, Parallel.first)
          << Config.Name << " escape, threads=" << Threads;
      EXPECT_EQ(Baseline.second, Parallel.second)
          << Config.Name << " typestate, threads=" << Threads;
    }
  }
}

TEST(ParallelDriver, StepBudgetExhaustionIsWorkerCountInvariant) {
  // Logical-step budgets are counted per task, not per worker, so a budget
  // timeout cuts the very same unit of work at any thread count: with zero
  // wall-clock limits in play, the budgeted run - including which queries
  // exhausted, at which site, after how many iterations - must be bitwise
  // identical for 1, 2 and 8 workers.
  auto RunAt = [](unsigned Threads) {
    reporting::HarnessOptions Options;
    Options.Cfg.Execution.NumThreads = Threads;
    Options.Cfg.Budgets.ForwardStepBudget = 400;
    Options.Cfg.Budgets.BackwardStepBudget = 300;
    Options.Cfg.Budgets.SolverDecisionBudget = 64;
    reporting::BenchRun Run =
        reporting::runBenchmark(synth::paperSuite()[0], Options);
    return std::make_pair(
        fingerprintOf(Run.Esc, Run.Esc.ForwardRuns, Run.Esc.BackwardRuns),
        fingerprintOf(Run.Ts, Run.Ts.ForwardRuns, Run.Ts.BackwardRuns));
  };
  auto Baseline = RunAt(1);
  EXPECT_FALSE(Baseline.first.Queries.empty());
  // The budgets must actually bite for this test to pin anything.
  EXPECT_GT(Baseline.first.BudgetExhausted + Baseline.second.BudgetExhausted,
            0u);
  for (unsigned Threads : {2u, 8u}) {
    auto Parallel = RunAt(Threads);
    EXPECT_EQ(Baseline.first, Parallel.first) << "escape, threads="
                                              << Threads;
    EXPECT_EQ(Baseline.second, Parallel.second) << "typestate, threads="
                                                << Threads;
  }
}

TEST(ParallelDriver, CacheCapDoesNotChangeResults) {
  // A capacity-1 cache forces evictions but only costs recomputation;
  // verdicts and driver statistics other than the cache counters are
  // unchanged, and forward runs can only go up.
  const synth::BenchConfig &Config = synth::paperSuite()[0];
  auto Unbounded = runAt(Config, 4);
  auto Capped = runAt(Config, 4, 1);
  EXPECT_EQ(Unbounded.first.Queries, Capped.first.Queries);
  EXPECT_EQ(Unbounded.second.Queries, Capped.second.Queries);
  EXPECT_GE(Capped.first.ForwardRuns, Unbounded.first.ForwardRuns);
}

TEST(ParallelDriver, RevisitedAbstractionHitsTheCache) {
  // A second run() on the same driver replays the CEGAR search from
  // scratch; every abstraction of the first run is already cached, so the
  // forward fixpoint never recomputes and the second run counts hits.
  synth::Benchmark B = synth::generate(synth::paperSuite()[0]);
  escape::EscapeAnalysis A(B.P);
  tracer::TracerOptions Options;
  Options.MaxItersPerQuery = 32;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);

  std::vector<QueryOutcome> First = Driver.run(B.EscChecks);
  unsigned FirstForwardRuns = Driver.stats().ForwardRuns;
  EXPECT_GT(FirstForwardRuns, 0u);

  std::vector<QueryOutcome> Second = Driver.run(B.EscChecks);
  EXPECT_EQ(Driver.stats().ForwardRuns, 0u)
      << "revisited abstractions must not recompute their forward runs";
  EXPECT_GT(Driver.stats().CacheHits, 0u);
  EXPECT_EQ(Driver.stats().CacheMisses, 0u);

  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].V, Second[I].V);
    EXPECT_EQ(First[I].Iterations, Second[I].Iterations);
    EXPECT_EQ(First[I].CheapestParam, Second[I].CheapestParam);
  }
}

//===----------------------------------------------------------------------===//
// ForwardRunCache unit tests
//===----------------------------------------------------------------------===//

using IntCache = ForwardRunCache<int>;

IntCache::Key key(std::initializer_list<bool> Bits, uint32_t Salt = 0) {
  IntCache::Key K;
  K.Bits = Bits;
  K.Salt = Salt;
  return K;
}

TEST(ForwardRunCache, LookupCountsHitsAndMisses) {
  IntCache Cache;
  EXPECT_EQ(Cache.lookup(key({true})), nullptr);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  int *Run = Cache.insert(key({true}), std::make_unique<int>(7));
  ASSERT_NE(Run, nullptr);
  EXPECT_EQ(*Cache.lookup(key({true})), 7);
  EXPECT_EQ(Cache.counters().Hits, 1u);
  // The salt separates otherwise-equal abstractions (§6 ungrouped mode).
  EXPECT_EQ(Cache.lookup(key({true}, /*Salt=*/5)), nullptr);
  EXPECT_EQ(Cache.counters().Misses, 2u);
}

TEST(ForwardRunCache, LruEvictionRespectsCapacity) {
  IntCache Cache(/*Capacity=*/2);
  Cache.insert(key({true, false}), std::make_unique<int>(1));
  Cache.beginEpoch(); // unpin entry 1
  Cache.insert(key({false, true}), std::make_unique<int>(2));
  Cache.beginEpoch(); // unpin entry 2
  // Entry 1 is least recently used; inserting a third entry evicts it.
  Cache.insert(key({true, true}), std::make_unique<int>(3));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.counters().Evictions, 1u);
  Cache.beginEpoch();
  EXPECT_EQ(Cache.lookup(key({true, false})), nullptr); // evicted
  EXPECT_NE(Cache.lookup(key({false, true})), nullptr);
  EXPECT_NE(Cache.lookup(key({true, true})), nullptr);
}

TEST(ForwardRunCache, LookupRefreshesRecency) {
  IntCache Cache(2);
  Cache.insert(key({true, false}), std::make_unique<int>(1));
  Cache.insert(key({false, true}), std::make_unique<int>(2));
  Cache.beginEpoch();
  EXPECT_NE(Cache.lookup(key({true, false})), nullptr); // refresh entry 1
  Cache.beginEpoch();
  Cache.insert(key({true, true}), std::make_unique<int>(3));
  // Entry 2 was the least recently used one.
  Cache.beginEpoch();
  EXPECT_NE(Cache.lookup(key({true, false})), nullptr);
  EXPECT_EQ(Cache.lookup(key({false, true})), nullptr);
}

TEST(ForwardRunCache, PinnedEntriesAreNeverEvicted) {
  IntCache Cache(1);
  // Both entries touched in the current epoch: the cache overshoots its
  // capacity rather than evict a run the current round still references.
  Cache.insert(key({true, false}), std::make_unique<int>(1));
  int *Pinned = Cache.insert(key({false, true}), std::make_unique<int>(2));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.counters().Evictions, 0u);
  EXPECT_EQ(*Pinned, 2);
  // Next epoch unpins: the next insert shrinks the cache back to its cap.
  Cache.beginEpoch();
  Cache.insert(key({true, true}), std::make_unique<int>(3));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.counters().Evictions, 2u);
}

TEST(ForwardRunCache, OvershootKeepsGrowingWhileEverythingIsPinned) {
  IntCache Cache(1);
  // One round that touches three distinct abstractions: all three stay
  // resident (3x overshoot), every pointer stays valid, nothing is
  // evicted until the epoch rolls over.
  int *A = Cache.insert(key({true, false, false}), std::make_unique<int>(1));
  int *B = Cache.insert(key({false, true, false}), std::make_unique<int>(2));
  int *C = Cache.insert(key({false, false, true}), std::make_unique<int>(3));
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.counters().Evictions, 0u);
  EXPECT_EQ(*A, 1);
  EXPECT_EQ(*B, 2);
  EXPECT_EQ(*C, 3);
  // After unpinning, one insert drains the overshoot back to capacity in
  // LRU order (A, then B, then C are the stalest).
  Cache.beginEpoch();
  int *D = Cache.insert(key({true, true, true}), std::make_unique<int>(4));
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.counters().Evictions, 3u);
  EXPECT_EQ(*D, 4);
  Cache.beginEpoch();
  EXPECT_EQ(Cache.lookup(key({true, false, false})), nullptr);
  EXPECT_NE(Cache.lookup(key({true, true, true})), nullptr);
}

TEST(ForwardRunCache, ResidentBytesGaugeTracksInsertReplaceAndEviction) {
  IntCache Cache(/*Capacity=*/1);
  EXPECT_EQ(Cache.residentBytes(), 0u);
  // Plain runs report sizeof(RunT); real forward runs report
  // approxMemoryBytes(), which shrinks when dead-variable pruning
  // collapses interned states (see ForwardTest).
  Cache.insert(key({true}), std::make_unique<int>(1));
  EXPECT_EQ(Cache.residentBytes(), sizeof(int));
  // Replacing a resident key in a later round swaps the charge instead of
  // double-counting. (A same-round replacement defers the old run instead;
  // see ReplacingAPinnedRunDefersItsBytesUntilEpochEnd.)
  Cache.beginEpoch();
  Cache.insert(key({true}), std::make_unique<int>(2));
  EXPECT_EQ(Cache.residentBytes(), sizeof(int));
  // Eviction releases the evicted run's bytes.
  Cache.beginEpoch();
  Cache.insert(key({false}), std::make_unique<int>(3));
  EXPECT_EQ(Cache.counters().Evictions, 1u);
  EXPECT_EQ(Cache.residentBytes(), sizeof(int));
}

TEST(ForwardRunCache, ReplacingAPinnedRunDefersItsBytesUntilEpochEnd) {
  // Regression: replacing a key that was looked up this round must keep
  // the old run alive (the driver may hold a raw pointer into it) and keep
  // its bytes charged to the gauge until beginEpoch() actually frees it -
  // releasing the charge early made residentBytes() under-report live
  // memory, and freeing the run early was a use-after-free.
  IntCache Cache;
  int *Old = Cache.insert(key({true}), std::make_unique<int>(1));
  // Same round: the old run is pinned by this lookup.
  EXPECT_EQ(Cache.lookup(key({true})), Old);
  int *New = Cache.insert(key({true}), std::make_unique<int>(2));
  EXPECT_NE(New, Old);
  EXPECT_EQ(*Old, 1); // still alive and readable
  EXPECT_EQ(Cache.residentBytes(), 2 * sizeof(int)); // both charged
  // The epoch roll frees the deferred run and reconciles the gauge.
  Cache.beginEpoch();
  EXPECT_EQ(Cache.residentBytes(), sizeof(int));
  EXPECT_EQ(*Cache.lookup(key({true})), 2);
}

TEST(ForwardRunCache, EvictUnpinnedReleasesBytesAndCountsEvictions) {
  IntCache Cache;
  Cache.insert(key({true, false}), std::make_unique<int>(1));
  Cache.insert(key({false, true}), std::make_unique<int>(2));
  Cache.beginEpoch(); // unpin both
  int *Pinned = Cache.insert(key({true, true}), std::make_unique<int>(3));
  // The degradation ladder's relief valve: both unpinned entries go, the
  // pinned one stays, and the gauge drops by exactly what was freed.
  EXPECT_EQ(Cache.evictUnpinned(), 2u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.counters().Evictions, 2u);
  EXPECT_EQ(Cache.residentBytes(), sizeof(int));
  EXPECT_EQ(*Pinned, 3);
}

TEST(ForwardRunCache, MinDataEpochTreatsOlderEntriesAsMisses) {
  IntCache Cache;
  IntCache::Key K = key({true});
  K.ProgramEpoch = 4;
  Cache.insert(K, std::make_unique<int>(1), /*DataEpoch=*/2);
  uint64_t Served = 0;
  // Fresh enough for a check last dirtied at epoch 2, stale for one
  // dirtied at epoch 3.
  EXPECT_NE(Cache.lookup(K, /*MinDataEpoch=*/2, &Served), nullptr);
  EXPECT_EQ(Served, 2u);
  EXPECT_EQ(Cache.lookup(K, /*MinDataEpoch=*/3), nullptr);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  // Recomputing against the new version overwrites in place.
  Cache.insert(K, std::make_unique<int>(9), /*DataEpoch=*/4);
  EXPECT_NE(Cache.lookup(K, /*MinDataEpoch=*/3), nullptr);
}

TEST(ForwardRunCache, MigrateEpochCarriesRunsBytesAndDataEpochs) {
  IntCache Cache;
  IntCache::Key A = key({true});
  A.ProgramEpoch = 1;
  IntCache::Key B = key({false});
  B.ProgramEpoch = 1;
  IntCache::Key Other = key({true});
  Other.ProgramEpoch = 7; // a different program's entries stay put
  Cache.insert(A, std::make_unique<int>(1), /*DataEpoch=*/1);
  Cache.insert(B, std::make_unique<int>(2), /*DataEpoch=*/1);
  Cache.insert(Other, std::make_unique<int>(3), /*DataEpoch=*/7);
  uint64_t BytesBefore = Cache.residentBytes();

  EXPECT_EQ(Cache.migrateEpoch(1, 2), 2u);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.residentBytes(), BytesBefore);
  Cache.beginEpoch();
  EXPECT_EQ(Cache.lookup(A), nullptr); // old epoch keys are gone
  A.ProgramEpoch = B.ProgramEpoch = 2;
  EXPECT_EQ(*Cache.lookup(A), 1);
  EXPECT_EQ(*Cache.lookup(B), 2);
  EXPECT_EQ(*Cache.lookup(Other), 3);
  // Data epochs rode along (the runs were computed on version 1's IR and
  // remain exact for checks not dirtied since).
  uint64_t Served = 0;
  EXPECT_NE(Cache.lookup(A, /*MinDataEpoch=*/1, &Served), nullptr);
  EXPECT_EQ(Served, 1u);
  EXPECT_EQ(Cache.migrateEpoch(3, 3), 0u); // self-migration is a no-op
}

TEST(ForwardRunCache, InsertOverResidentKeyReplacesInPlace) {
  IntCache Cache(2);
  Cache.insert(key({true}), std::make_unique<int>(1));
  Cache.insert(key({false}), std::make_unique<int>(2));
  // Re-inserting an already-resident key must replace the run without
  // growing the cache or evicting the other entry.
  int *Replaced = Cache.insert(key({true}), std::make_unique<int>(7));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.counters().Evictions, 0u);
  EXPECT_EQ(*Replaced, 7);
  Cache.beginEpoch();
  EXPECT_EQ(*Cache.lookup(key({true})), 7);
  EXPECT_EQ(*Cache.lookup(key({false})), 2);
}

} // namespace
