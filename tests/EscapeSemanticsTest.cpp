//===- EscapeSemanticsTest.cpp - Exhaustive Figure 5 semantics tests ----------===//
//
// Parameterized sweep over every combination of abstract values for the
// locations a command reads, checking the transfer function against an
// independently hand-written oracle of Figure 5. Complements the
// random-state wp property test in EscapeTest with exhaustive coverage of
// the store/load case analysis.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"

#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using escape::AbsVal;
using escape::EscapeAnalysis;
using escape::EscParam;
using escape::EscState;

struct Fixture {
  Program P;
  std::unique_ptr<EscapeAnalysis> A;
  VarId V, W, U;
  FieldId F, K;

  Fixture() {
    std::string Error;
    bool Ok = parseProgram(R"(
      global g;
      proc main {
        v = new h1;
        w = new h2;
        v.f = w;
        u = v.f;
        u.k = u;
        g = v;
        check(v);
      }
    )", P, Error);
    EXPECT_TRUE(Ok) << Error;
    A = std::make_unique<EscapeAnalysis>(P);
    V = P.findVar("v");
    W = P.findVar("w");
    U = P.findVar("u");
    F = P.findField("f");
    K = P.findField("k");
  }

  EscState stateWith(AbsVal Vv, AbsVal Wv, AbsVal Fv, AbsVal Kv) const {
    EscState D = A->initialState();
    D.Vals[A->locOfVar(V)] = static_cast<uint8_t>(Vv);
    D.Vals[A->locOfVar(W)] = static_cast<uint8_t>(Wv);
    D.Vals[A->locOfField(F)] = static_cast<uint8_t>(Fv);
    D.Vals[A->locOfField(K)] = static_cast<uint8_t>(Kv);
    return D;
  }

  CommandId cmd(size_t I) const { return CommandId(static_cast<uint32_t>(I)); }
};

constexpr AbsVal Vals[] = {AbsVal::N, AbsVal::L, AbsVal::E};

/// The esc() of Figure 5, written independently of the implementation.
EscState oracleEsc(const EscapeAnalysis &A, const Program &P,
                   const EscState &D) {
  EscState Out = D;
  for (uint32_t I = 0; I < P.numVars(); ++I)
    if (Out.Vals[I] != static_cast<uint8_t>(AbsVal::N))
      Out.Vals[I] = static_cast<uint8_t>(AbsVal::E);
  for (uint32_t I = 0; I < P.numFields(); ++I)
    Out.Vals[P.numVars() + I] = static_cast<uint8_t>(AbsVal::N);
  (void)A;
  return Out;
}

using Triple = std::tuple<int, int, int>;

class StoreFieldSemantics : public ::testing::TestWithParam<Triple> {};

TEST_P(StoreFieldSemantics, MatchesFigure5Oracle) {
  Fixture Fx;
  auto [VI, WI, FI] = GetParam();
  AbsVal Vv = Vals[VI], Wv = Vals[WI], Fv = Vals[FI];
  EscState D = Fx.stateWith(Vv, Wv, Fv, AbsVal::N);
  EscParam Prm = Fx.A->paramFromBits({});
  // Command 2 is "v.f = w".
  EscState Got = Fx.A->transfer(Fx.P.command(Fx.cmd(2)), D, Prm);

  EscState Expect = D;
  if (Vv == AbsVal::N) {
    // Null base: no continuation; identity is a sound choice.
  } else if (Vv == AbsVal::E) {
    if (Wv == AbsVal::L)
      Expect = oracleEsc(*Fx.A, Fx.P, D); // L reachable from E: collapse
  } else {
    // Base L: weak update of the f summary.
    if (Fv == Wv) {
      // Nothing to change.
    } else if ((Fv == AbsVal::N && Wv == AbsVal::L) ||
               (Fv == AbsVal::L && Wv == AbsVal::N)) {
      Expect.Vals[Fx.A->locOfField(Fx.F)] = static_cast<uint8_t>(AbsVal::L);
    } else if ((Fv == AbsVal::N && Wv == AbsVal::E) ||
               (Fv == AbsVal::E && Wv == AbsVal::N)) {
      Expect.Vals[Fx.A->locOfField(Fx.F)] = static_cast<uint8_t>(AbsVal::E);
    } else {
      Expect = oracleEsc(*Fx.A, Fx.P, D); // {L, E}: not representable
    }
  }
  EXPECT_EQ(Got, Expect) << "v=" << escape::absValName(Vv)
                         << " w=" << escape::absValName(Wv)
                         << " f=" << escape::absValName(Fv);
}

INSTANTIATE_TEST_SUITE_P(
    AllValueCombinations, StoreFieldSemantics,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<Triple> &Info) {
      return std::string("v") +
             escape::absValName(Vals[std::get<0>(Info.param)]) + "_w" +
             escape::absValName(Vals[std::get<1>(Info.param)]) + "_f" +
             escape::absValName(Vals[std::get<2>(Info.param)]);
    });

using Pair = std::tuple<int, int>;

class LoadFieldSemantics : public ::testing::TestWithParam<Pair> {};

TEST_P(LoadFieldSemantics, MatchesFigure5Oracle) {
  Fixture Fx;
  auto [VI, FI] = GetParam();
  AbsVal Vv = Vals[VI], Fv = Vals[FI];
  EscState D = Fx.stateWith(Vv, AbsVal::N, Fv, AbsVal::N);
  EscParam Prm = Fx.A->paramFromBits({});
  // Command 3 is "u = v.f".
  EscState Got = Fx.A->transfer(Fx.P.command(Fx.cmd(3)), D, Prm);
  AbsVal ExpectU = Vv == AbsVal::L ? Fv : AbsVal::E;
  EXPECT_EQ(static_cast<AbsVal>(Got.Vals[Fx.A->locOfVar(Fx.U)]), ExpectU);
  // Nothing else changes.
  EscState Rest = Got;
  Rest.Vals[Fx.A->locOfVar(Fx.U)] = D.Vals[Fx.A->locOfVar(Fx.U)];
  EXPECT_EQ(Rest, D);
}

INSTANTIATE_TEST_SUITE_P(AllValueCombinations, LoadFieldSemantics,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 3)));

class StoreGlobalSemantics : public ::testing::TestWithParam<int> {};

TEST_P(StoreGlobalSemantics, MatchesFigure5Oracle) {
  Fixture Fx;
  AbsVal Vv = Vals[GetParam()];
  EscState D = Fx.stateWith(Vv, AbsVal::L, AbsVal::L, AbsVal::E);
  EscParam Prm = Fx.A->paramFromBits({});
  // Command 5 is "g = v".
  EscState Got = Fx.A->transfer(Fx.P.command(Fx.cmd(5)), D, Prm);
  EscState Expect = Vv == AbsVal::L ? oracleEsc(*Fx.A, Fx.P, D) : D;
  EXPECT_EQ(Got, Expect);
}

INSTANTIATE_TEST_SUITE_P(AllValues, StoreGlobalSemantics,
                         ::testing::Range(0, 3));

TEST(EscapeSemantics, NewBindsToParameterValue) {
  Fixture Fx;
  EscState D = Fx.A->initialState();
  // Command 0 is "v = new h1".
  std::vector<bool> L{true, false};
  EscState GotL =
      Fx.A->transfer(Fx.P.command(Fx.cmd(0)), D, Fx.A->paramFromBits(L));
  EXPECT_EQ(static_cast<AbsVal>(GotL.Vals[Fx.A->locOfVar(Fx.V)]), AbsVal::L);
  EscState GotE =
      Fx.A->transfer(Fx.P.command(Fx.cmd(0)), D, Fx.A->paramFromBits({}));
  EXPECT_EQ(static_cast<AbsVal>(GotE.Vals[Fx.A->locOfVar(Fx.V)]), AbsVal::E);
}

} // namespace
