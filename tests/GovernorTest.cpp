//===- GovernorTest.cpp - Resource governor: budgets, faults, degradation ----===//
//
// The deterministic resource governor must (a) cut every kernel at a
// reproducible logical step, (b) surface every exhaustion as a structured
// Exhausted{resource, site} record mapped to an Unresolved verdict, never a
// wrong one, (c) walk the memory-pressure degradation ladder soundly, and
// (d) survive every injected fault. These tests pin each layer: the
// BudgetGate and FaultRegistry primitives, the per-kernel cut points, the
// driver's Unresolved mapping, the harness budget carve-out, and the
// thread pool's exception routing.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "reporting/Harness.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "synth/Generator.h"
#include "tracer/MinCostSat.h"
#include "tracer/QueryDriver.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace {

using namespace optabs;
using namespace optabs::ir;
using support::BudgetGate;
using support::CancelToken;
using support::FaultKind;
using support::FaultRegistry;
using support::Resource;
using tracer::QueryDriver;
using tracer::TracerOptions;
using tracer::Verdict;

//===----------------------------------------------------------------------===//
// BudgetGate / CancelToken primitives
//===----------------------------------------------------------------------===//

TEST(BudgetGate, StepLimitCutsAfterExactlyNCharges) {
  BudgetGate Gate("test.site", /*StepLimit=*/3);
  EXPECT_TRUE(Gate.charge());
  EXPECT_TRUE(Gate.charge());
  EXPECT_TRUE(Gate.charge());
  EXPECT_FALSE(Gate.charge()); // 4th unit exceeds the limit
  ASSERT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.why()->Res, Resource::Steps);
  EXPECT_STREQ(Gate.why()->Site, "test.site");
  // Sticky: once exhausted, every further charge is refused.
  EXPECT_FALSE(Gate.charge());
  EXPECT_EQ(Gate.stepsUsed(), 4u);
}

TEST(BudgetGate, BulkChargesCountTheirWeight) {
  BudgetGate Gate("test.site", /*StepLimit=*/10);
  EXPECT_TRUE(Gate.charge(10)); // exactly at the limit: still fine
  EXPECT_FALSE(Gate.charge(1));
  EXPECT_EQ(Gate.why()->Res, Resource::Steps);
}

TEST(BudgetGate, ZeroLimitMeansUnbounded) {
  BudgetGate Gate("test.site", /*StepLimit=*/0);
  for (int I = 0; I < 10000; ++I)
    EXPECT_TRUE(Gate.charge());
  EXPECT_FALSE(Gate.exhausted());
}

TEST(BudgetGate, CancelTokenStopsTheGate) {
  CancelToken Tok;
  BudgetGate Gate("test.site", 0, &Tok);
  EXPECT_TRUE(Gate.charge());
  Tok.request();
  EXPECT_FALSE(Gate.charge());
  ASSERT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.why()->Res, Resource::Cancelled);
}

TEST(BudgetGate, WallClockDeadlineFires) {
  // The deadline is polled every 1024 charges; with an (elapsed) deadline
  // of essentially zero the poll at charge 1024 must trip it.
  BudgetGate Gate("test.site", 0, nullptr, /*DeadlineSeconds=*/1e-9);
  unsigned Allowed = 0;
  while (Gate.charge() && Allowed < 100000)
    ++Allowed;
  ASSERT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.why()->Res, Resource::WallClock);
  EXPECT_LT(Allowed, 100000u);
}

TEST(BudgetGate, ExhaustIsStickyAndFirstCauseWins) {
  BudgetGate Gate("test.site");
  Gate.exhaust(Resource::Memory);
  Gate.exhaust(Resource::Cancelled); // ignored: first cause is kept
  ASSERT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.why()->Res, Resource::Memory);
}

TEST(Budget, ResourceNamesAreStable) {
  EXPECT_STREQ(support::resourceName(Resource::Steps), "steps");
  EXPECT_STREQ(support::resourceName(Resource::WallClock), "wall_clock");
  EXPECT_STREQ(support::resourceName(Resource::Memory), "memory");
  EXPECT_STREQ(support::resourceName(Resource::Cancelled), "cancelled");
}

//===----------------------------------------------------------------------===//
// FaultRegistry spec parsing and firing
//===----------------------------------------------------------------------===//

/// Every registry test disarms on scope exit: the registry is process-wide.
struct DisarmGuard {
  ~DisarmGuard() { FaultRegistry::global().disarm(); }
};

TEST(FaultRegistry, ArmsAValidSpecAndFiresOnce) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("forward.visit:cancel", Err)) << Err;
  EXPECT_TRUE(support::faultsEnabled());
  auto K = FaultRegistry::global().hit("forward.visit");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, FaultKind::Cancel);
  // Each arm fires exactly once.
  EXPECT_FALSE(FaultRegistry::global().hit("forward.visit").has_value());
}

TEST(FaultRegistry, NthHitDelaysTheFault) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("dnf.product:invariant@3", Err))
      << Err;
  EXPECT_FALSE(FaultRegistry::global().hit("dnf.product").has_value());
  EXPECT_FALSE(FaultRegistry::global().hit("dnf.product").has_value());
  auto K = FaultRegistry::global().hit("dnf.product");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(*K, FaultKind::Invariant);
}

TEST(FaultRegistry, SemicolonJoinsIndependentArms) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm(
      "backward.step:cancel;cache.insert:invariant", Err))
      << Err;
  EXPECT_TRUE(FaultRegistry::global().hit("backward.step").has_value());
  EXPECT_TRUE(FaultRegistry::global().hit("cache.insert").has_value());
}

TEST(FaultRegistry, RejectsUnknownSitesAtomically) {
  DisarmGuard G;
  std::string Err;
  // The first arm is valid, the second is not: nothing must be armed.
  EXPECT_FALSE(
      FaultRegistry::global().arm("forward.visit:alloc;no.such.site:cancel",
                                  Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(support::faultsEnabled());
  EXPECT_FALSE(FaultRegistry::global().hit("forward.visit").has_value());
}

TEST(FaultRegistry, RejectsMalformedSpecs) {
  DisarmGuard G;
  std::string Err;
  EXPECT_FALSE(FaultRegistry::global().arm("forward.visit", Err));
  EXPECT_FALSE(FaultRegistry::global().arm("forward.visit:explode", Err));
  EXPECT_FALSE(FaultRegistry::global().arm("forward.visit:alloc@zero", Err));
  EXPECT_FALSE(FaultRegistry::global().arm("forward.visit:alloc@0", Err));
  EXPECT_FALSE(support::faultsEnabled());
}

TEST(FaultRegistry, DisarmResetsEverything) {
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("driver.schedule:cancel", Err));
  FaultRegistry::global().disarm();
  EXPECT_FALSE(support::faultsEnabled());
  EXPECT_FALSE(FaultRegistry::global().hit("driver.schedule").has_value());
}

TEST(FaultPoint, AllocFaultThrowsBadAlloc) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("cache.insert:alloc", Err));
  EXPECT_THROW(support::faultPoint("cache.insert"), std::bad_alloc);
  // Fired once: the site is quiet afterwards.
  EXPECT_FALSE(support::faultPoint("cache.insert").has_value());
}

TEST(FaultPoint, DisarmedCostsOneRelaxedLoad) {
  // Nothing armed: faultPoint must return nullopt without touching the
  // registry (observable here only as "no fault fires").
  EXPECT_FALSE(support::faultsEnabled());
  EXPECT_FALSE(support::faultPoint("forward.visit").has_value());
}

//===----------------------------------------------------------------------===//
// Min-cost SAT abort semantics
//===----------------------------------------------------------------------===//

TEST(SolverBudget, AbortedSearchIsNotUnsat) {
  // Two disjoint positive clauses need two branch decisions; a one-decision
  // budget aborts mid-search. The same CNF without a gate is satisfiable
  // with cost 2 - so reading the aborted nullopt as "unsatisfiable" would
  // be wrong, and the exhausted gate is what tells the caller not to.
  tracer::Cnf F;
  F.addClause({{0, true}, {1, true}});
  F.addClause({{2, true}, {3, true}});
  ASSERT_TRUE(tracer::solveMinCost(F, 4).has_value());
  EXPECT_EQ(tracer::solveMinCost(F, 4)->Cost, 2u);

  BudgetGate Gate("mincostsat.decision", /*StepLimit=*/1);
  auto Aborted = tracer::solveMinCost(F, 4, &Gate);
  EXPECT_FALSE(Aborted.has_value());
  ASSERT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.why()->Res, Resource::Steps);
}

TEST(SolverBudget, GenerousBudgetChangesNothing) {
  tracer::Cnf F;
  F.addClause({{0, true}, {1, true}});
  F.addClause({{1, true}, {2, true}});
  BudgetGate Gate("mincostsat.decision", /*StepLimit=*/1000000);
  auto Gated = tracer::solveMinCost(F, 3, &Gate);
  auto Free = tracer::solveMinCost(F, 3);
  ASSERT_TRUE(Gated.has_value());
  ASSERT_TRUE(Free.has_value());
  EXPECT_EQ(Gated->Cost, Free->Cost);
  EXPECT_EQ(Gated->Assignment, Free->Assignment);
  EXPECT_FALSE(Gate.exhausted());
}

//===----------------------------------------------------------------------===//
// Driver-level exhaustion mapping
//===----------------------------------------------------------------------===//

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

const char *TwoSiteSrc = R"(
  proc main {
    u = new h1;
    v = new h2;
    v.f = u;
    check(u);
  }
)";

TEST(DriverGovernor, ForwardStepBudgetMapsToUnresolved) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.ForwardStepBudget = 1; // no fixpoint finishes in one visit
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Steps);
  EXPECT_STREQ(Outcomes[0].Exhaustion->Site, "forward.visit");
  EXPECT_GE(Driver.stats().BudgetExhausted, 1u);
  // A partial fixpoint must never be cached: a rerun recomputes it.
  EXPECT_EQ(Driver.stats().CacheHits, 0u);
}

TEST(DriverGovernor, BackwardStepBudgetMapsToUnresolved) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.BackwardStepBudget = 1; // the meta-analysis dies on its 2nd step
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Steps);
  EXPECT_STREQ(Outcomes[0].Exhaustion->Site, "backward.step");
}

TEST(DriverGovernor, GenerousStepBudgetsChangeNothing) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Free(P, A);
  auto Baseline = Free.run({CheckId(0)});

  TracerOptions Options;
  Options.ForwardStepBudget = 1u << 30;
  Options.BackwardStepBudget = 1u << 30;
  Options.SolverDecisionBudget = 1u << 30;
  QueryDriver<escape::EscapeAnalysis> Gated(P, A, Options);
  auto Outcomes = Gated.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Baseline[0].V);
  EXPECT_EQ(Outcomes[0].Iterations, Baseline[0].Iterations);
  EXPECT_EQ(Outcomes[0].CheapestParam, Baseline[0].CheapestParam);
  EXPECT_FALSE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Gated.stats().BudgetExhausted, 0u);
}

TEST(DriverGovernor, PreCancelledRunResolvesNothing) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Cancel = std::make_shared<CancelToken>();
  Options.Cancel->request();
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_EQ(Outcomes[0].Iterations, 0u);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Cancelled);
  EXPECT_EQ(Driver.stats().ForwardRuns, 0u);
}

TEST(DriverGovernor, GreedyForwardBudgetMapsToUnresolved) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = tracer::SearchStrategy::GreedyGrow;
  Options.ForwardStepBudget = 1;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Steps);
  EXPECT_STREQ(Outcomes[0].Exhaustion->Site, "forward.visit");
}

TEST(DriverGovernor, InjectedForwardAllocFaultIsContained) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("forward.visit:alloc", Err)) << Err;
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  // The first fixpoint dies with bad_alloc; its query ends Unresolved with
  // a memory exhaustion record instead of taking the process down.
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Memory);
  EXPECT_STREQ(Outcomes[0].Exhaustion->Site, "forward.visit");
}

TEST(DriverGovernor, InjectedCancelFaultUnwindsCleanly) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("driver.schedule:cancel", Err))
      << Err;
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  ASSERT_TRUE(Outcomes[0].Exhaustion.has_value());
  EXPECT_EQ(Outcomes[0].Exhaustion->Res, Resource::Cancelled);
}

//===----------------------------------------------------------------------===//
// Memory budget and the degradation ladder
//===----------------------------------------------------------------------===//

TEST(DegradationLadder, MemoryPressureDegradesButStaysSound) {
  // A 1-byte budget is below any real footprint, so every round triggers
  // the ladder. The run must still complete, every rung must be recorded,
  // and - audited - every verdict must carry a valid certificate.
  std::string TracePath =
      ::testing::TempDir() + "governor_degrade_trace.jsonl";
  std::remove(TracePath.c_str());

  reporting::HarnessOptions Options;
  Options.RunTypestate = false;
  Options.Cfg.Audit.Enabled = true;
  Options.Cfg.Observability.EventTracePath = TracePath;
  Options.Cfg.Budgets.MemoryBudgetBytes = 1;
  reporting::BenchRun Run =
      reporting::runBenchmark(synth::paperSuite()[0], Options);

  ASSERT_FALSE(Run.Esc.Queries.empty());
  EXPECT_GT(Run.Esc.Degradations, 0u);
  EXPECT_EQ(Run.Esc.CertificateFailures, 0u);
  EXPECT_EQ(Run.Esc.InvariantViolations, 0u);
  EXPECT_GT(Run.Esc.CertificatesChecked, 0u);

  // The degrade events landed in the trace with the ladder's actions.
  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good());
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_NE(Trace.find("\"event\":\"degrade\""), std::string::npos);
  EXPECT_NE(Trace.find("\"action\":\"evict_cache\""), std::string::npos);
  EXPECT_NE(Trace.find("\"trigger\":\"memory\""), std::string::npos);
  std::remove(TracePath.c_str());
}

TEST(DegradationLadder, DegradedVerdictsNeverContradictBaseline) {
  reporting::HarnessOptions Baseline;
  Baseline.RunTypestate = false;
  reporting::BenchRun Free =
      reporting::runBenchmark(synth::paperSuite()[0], Baseline);

  reporting::HarnessOptions Options;
  Options.RunTypestate = false;
  Options.Cfg.Budgets.MemoryBudgetBytes = 1;
  reporting::BenchRun Degraded =
      reporting::runBenchmark(synth::paperSuite()[0], Options);

  ASSERT_EQ(Free.Esc.Queries.size(), Degraded.Esc.Queries.size());
  for (size_t I = 0; I < Free.Esc.Queries.size(); ++I) {
    // A degraded run may resolve fewer queries, never differently.
    if (Degraded.Esc.Queries[I].V == Verdict::Unresolved)
      continue;
    EXPECT_EQ(Degraded.Esc.Queries[I].V, Free.Esc.Queries[I].V)
        << "query " << I;
  }
}

//===----------------------------------------------------------------------===//
// Harness budget carve-out
//===----------------------------------------------------------------------===//

TEST(HarnessGovernor, SpentBudgetShortCircuitsPerSiteDrivers) {
  // With the whole budget already spent, the per-site type-state loop must
  // emit clean wall-clock exhaustion verdicts without running any doomed
  // driver (previously it constructed a driver per site just to time out).
  reporting::HarnessOptions Options;
  Options.RunEscape = false;
  Options.Cfg.Budgets.TimeBudgetSeconds = 0;
  reporting::BenchRun Run =
      reporting::runBenchmark(synth::paperSuite()[0], Options);

  ASSERT_FALSE(Run.Ts.Queries.empty());
  EXPECT_EQ(Run.Ts.ForwardRuns, 0u);
  EXPECT_EQ(Run.Ts.BudgetExhausted,
            static_cast<unsigned>(Run.Ts.Queries.size()));
  for (const reporting::QueryStat &Q : Run.Ts.Queries) {
    EXPECT_EQ(Q.V, Verdict::Unresolved);
    EXPECT_EQ(Q.ExhaustedResource, "wall_clock");
    EXPECT_EQ(Q.ExhaustedSite, "harness.budget");
    EXPECT_EQ(Q.Iterations, 0u);
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool exception routing
//===----------------------------------------------------------------------===//

TEST(ThreadPoolGovernor, TaskExceptionsReachSinkAndRethrow) {
  support::InvariantSink Sink;
  support::ThreadPool Pool(4, &Sink);
  EXPECT_THROW(Pool.parallelFor(16,
                                [](size_t I, unsigned) {
                                  if (I == 5)
                                    throw std::runtime_error("task 5 died");
                                }),
               std::runtime_error);
  ASSERT_GE(Sink.count(), 1u);
  auto Records = Sink.snapshot();
  EXPECT_EQ(Records[0].Check, "task-exception");
  EXPECT_EQ(Records[0].Where, "ThreadPool::runBatch");
  EXPECT_NE(Records[0].Message.find("task 5 died"), std::string::npos);
  // The pool survives: the next batch runs normally.
  std::atomic<int> Ran{0};
  Pool.parallelFor(8, [&](size_t, unsigned) { ++Ran; });
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ThreadPoolGovernor, DriverSurfacesWorkerExceptionsAsViolations) {
  // An alloc fault inside the parallel forward stage is contained by the
  // driver; the pool's sink routing additionally leaves a structured
  // record among the driver's violations... unless the driver's own
  // per-task catch fires first, which is also fine - the contract is "no
  // crash, sound verdicts", pinned above. Here we only require the run to
  // survive with the pool wired to the driver's sink.
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(FaultRegistry::global().arm("forward.visit:invariant", Err))
      << Err;
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.NumThreads = 4;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  // The injected invariant breakage is recorded and the affected fixpoint
  // discarded; the query ends Unresolved (cancelled at the fault site).
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_GE(Driver.stats().Violations.size(), 1u);
  EXPECT_EQ(Driver.stats().Violations[0].Check, "injected-fault");
}

} // namespace
