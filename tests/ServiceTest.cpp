//===- ServiceTest.cpp - Multi-tenant analysis service tests ------------------===//
//
// The service-layer contract: verdicts through an AnalysisService are
// bitwise identical to standalone QueryDriver runs at every worker count,
// batching strictly reduces the number of forward fixpoints (the
// amortization the service exists for, observed through the shared
// ForwardRunCache counters), caches are shared across sessions, tenant
// quotas isolate the offending session, and program re-registration
// invalidates stale cached runs through the epoch mechanism.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "reporting/Harness.h"
#include "service/AnalysisService.h"
#include "synth/Generator.h"
#include "tracer/QueryDriver.h"
#include "typestate/Typestate.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>

using namespace optabs;
using namespace optabs::ir;

namespace {

// Three escape queries over three allocation sites; u is reachable from v
// through a field, so its query needs a non-trivial abstraction.
const char *EscapeProgram = R"(
proc main {
  u = new h1;
  v = new h2;
  w = new h3;
  v.f = u;
  check(u);
  check(v);
  check(w);
}
)";

// The paper's Figure 1 file protocol, for type-state sessions.
const char *FileProgram = R"(
proc main {
  x = new h1;
  y = x;
  if { z = x; }
  x.open();
  y.close();
  choice { check(x, closed); } or { check(x, opened); }
}
)";

void parseInto(const char *Text, Program &P) {
  std::string Err;
  ASSERT_TRUE(parseProgram(Text, P, Err)) << Err;
}

service::Session openOrDie(service::AnalysisService &Svc,
                           const service::SessionSpec &Spec) {
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  EXPECT_TRUE(S.valid()) << Err;
  return S;
}

/// Drains and asserts every future resolved Done, returning the results in
/// submission order.
std::vector<service::QueryResult>
collect(service::AnalysisService &Svc,
        std::vector<std::future<service::QueryResult>> &Futures) {
  Svc.drain();
  std::vector<service::QueryResult> Out;
  for (auto &F : Futures) {
    Out.push_back(F.get());
    EXPECT_EQ(Out.back().Status, service::JobStatus::Done)
        << Out.back().Error;
  }
  return Out;
}

void expectSameVerdict(const tracer::QueryOutcome &Want,
                       const service::QueryResult &Got) {
  EXPECT_EQ(Want.V, Got.V);
  EXPECT_EQ(Want.Iterations, Got.Iterations);
  EXPECT_EQ(Want.CheapestCost, Got.CheapestCost);
  EXPECT_EQ(Want.CheapestParam, Got.CheapestParam);
}

TEST(ServiceTest, EscapeVerdictsMatchStandaloneAtEveryWorkerCount) {
  Program P;
  parseInto(EscapeProgram, P);
  std::vector<CheckId> Queries = {CheckId(0), CheckId(1), CheckId(2)};

  for (unsigned Threads : {1u, 8u}) {
    escape::EscapeAnalysis A(P);
    tracer::TracerOptions Opts;
    Opts.NumThreads = Threads;
    tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
    std::vector<tracer::QueryOutcome> Want = Driver.run(Queries);

    service::AnalysisService::Options SvcOpts;
    SvcOpts.Base.Execution.NumThreads = Threads;
    service::AnalysisService Svc(std::move(SvcOpts));
    ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
    service::SessionSpec Spec;
    Spec.Program = "p";
    Spec.Client = "escape";
    service::Session S = openOrDie(Svc, Spec);
    std::vector<std::future<service::QueryResult>> Futures;
    for (CheckId C : Queries)
      Futures.push_back(
          S.submit({static_cast<uint32_t>(C.index()), 0, 0}));
    std::vector<service::QueryResult> Got = collect(Svc, Futures);

    ASSERT_EQ(Want.size(), Got.size());
    for (size_t I = 0; I < Want.size(); ++I)
      expectSameVerdict(Want[I], Got[I]);
  }
}

TEST(ServiceTest, TypestateVerdictsMatchStandaloneAtEveryWorkerCount) {
  Program P;
  parseInto(FileProgram, P);
  pointer::PointsToResult Pt = pointer::runPointsTo(P);
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();

  for (unsigned Threads : {1u, 8u}) {
    // Standalone: one driver per tracked site, as the CLI and the harness
    // run the type-state client.
    std::vector<tracer::QueryOutcome> Want;
    std::vector<std::pair<uint32_t, uint32_t>> Pairs; // (check, site)
    for (uint32_t H = 0; H < P.numAllocs(); ++H) {
      std::vector<CheckId> Queries;
      for (uint32_t I = 0; I < P.numChecks(); ++I)
        if (Pt.mayPoint(P.checkSite(CheckId(I)).Var, AllocId(H)))
          Queries.push_back(CheckId(I));
      if (Queries.empty())
        continue;
      typestate::TypestateAnalysis A(P, Spec, AllocId(H), Pt);
      tracer::TracerOptions Opts;
      Opts.NumThreads = Threads;
      tracer::QueryDriver<typestate::TypestateAnalysis> Driver(P, A, Opts);
      for (const tracer::QueryOutcome &O : Driver.run(Queries))
        Want.push_back(O);
      for (CheckId C : Queries)
        Pairs.push_back({static_cast<uint32_t>(C.index()), H});
    }
    ASSERT_FALSE(Pairs.empty());

    service::AnalysisService::Options SvcOpts;
    SvcOpts.Base.Execution.NumThreads = Threads;
    service::AnalysisService Svc(std::move(SvcOpts));
    ASSERT_TRUE(Svc.registerProgram("p", FileProgram).Ok);
    service::SessionSpec SessSpec;
    SessSpec.Program = "p";
    SessSpec.Client = "typestate"; // empty property = stress spec
    service::Session S = openOrDie(Svc, SessSpec);
    std::vector<std::future<service::QueryResult>> Futures;
    for (auto [Check, Site] : Pairs)
      Futures.push_back(S.submit({Check, Site, 0}));
    std::vector<service::QueryResult> Got = collect(Svc, Futures);

    ASSERT_EQ(Want.size(), Got.size());
    for (size_t I = 0; I < Want.size(); ++I)
      expectSameVerdict(Want[I], Got[I]);
  }
}

// The acceptance criterion of the service layer: a batch of N queries costs
// strictly fewer forward fixpoints than N standalone QueryDriver::run()
// calls, with identical verdicts.
TEST(ServiceTest, BatchedQueriesComputeStrictlyFewerForwardFixpoints) {
  Program P;
  parseInto(EscapeProgram, P);

  uint64_t StandaloneForwardRuns = 0, StandaloneMisses = 0;
  std::vector<tracer::QueryOutcome> Want;
  for (uint32_t I = 0; I < P.numChecks(); ++I) {
    escape::EscapeAnalysis A(P);
    tracer::TracerOptions StandaloneOpts;
    tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, StandaloneOpts);
    std::vector<tracer::QueryOutcome> Out = Driver.run({CheckId(I)});
    ASSERT_EQ(Out.size(), 1u);
    Want.push_back(Out[0]);
    StandaloneForwardRuns += Driver.stats().ForwardRuns;
    StandaloneMisses += Driver.stats().CacheMisses;
  }

  service::AnalysisService Svc;
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  service::Session S = openOrDie(Svc, Spec);
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t I = 0; I < P.numChecks(); ++I)
    Futures.push_back(S.submit({I, 0, 0}));
  std::vector<service::QueryResult> Got = collect(Svc, Futures);

  ASSERT_EQ(Want.size(), Got.size());
  for (size_t I = 0; I < Want.size(); ++I)
    expectSameVerdict(Want[I], Got[I]);

  service::ServiceStats Stats = Svc.stats();
  EXPECT_LT(Stats.ForwardRuns, StandaloneForwardRuns);
  // The shared cache observes the same economy: strictly fewer fixpoints
  // are computed (missed) than the N isolated caches computed in total.
  EXPECT_LT(Stats.CacheMisses, StandaloneMisses);
  EXPECT_EQ(Stats.JobsCompleted, static_cast<uint64_t>(Want.size()));
}

TEST(ServiceTest, CacheIsSharedAcrossSessions) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false; // two waves = two batches, deterministically
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);

  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  service::Session A = openOrDie(Svc, Spec);
  service::Session B = openOrDie(Svc, Spec);

  std::vector<std::future<service::QueryResult>> Wave1, Wave2;
  Wave1.push_back(A.submit({0, 0, 0}));
  std::vector<service::QueryResult> First = collect(Svc, Wave1);
  uint64_t HitsAfterFirst = Svc.stats().CacheHits;
  uint64_t MissesAfterFirst = Svc.stats().CacheMisses;

  // Session B repeats session A's query: every forward fixpoint of the
  // second batch is already memoized in the shared per-program cache.
  Wave2.push_back(B.submit({0, 0, 0}));
  std::vector<service::QueryResult> Second = collect(Svc, Wave2);

  EXPECT_EQ(First[0].V, Second[0].V);
  EXPECT_EQ(First[0].Iterations, Second[0].Iterations);
  EXPECT_EQ(First[0].CheapestCost, Second[0].CheapestCost);
  EXPECT_EQ(First[0].CheapestParam, Second[0].CheapestParam);
  EXPECT_GT(Svc.stats().CacheHits, HitsAfterFirst);
  EXPECT_EQ(Svc.stats().CacheMisses, MissesAfterFirst);
}

TEST(ServiceTest, PendingQuotaExhaustionOnlyDegradesTheOffendingSession) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false; // keep jobs pending so the quota binds
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);

  service::SessionSpec Greedy;
  Greedy.Program = "p";
  Greedy.Client = "escape";
  Greedy.SessionConfig.Service.MaxPendingPerSession = 1;
  service::Session A = openOrDie(Svc, Greedy);

  service::SessionSpec Normal;
  Normal.Program = "p";
  Normal.Client = "escape";
  service::Session B = openOrDie(Svc, Normal);

  std::vector<std::future<service::QueryResult>> Ok;
  Ok.push_back(A.submit({0, 0, 0}));
  std::future<service::QueryResult> Over = A.submit({1, 0, 0});
  service::QueryResult Rejected = Over.get(); // ready immediately
  EXPECT_EQ(Rejected.Status, service::JobStatus::Rejected);
  EXPECT_NE(Rejected.Error.find("pending"), std::string::npos)
      << Rejected.Error;

  // The other tenant is unaffected by A's exhaustion.
  for (uint32_t I = 0; I < 3; ++I)
    Ok.push_back(B.submit({I, 0, 0}));
  std::vector<service::QueryResult> Results = collect(Svc, Ok);
  EXPECT_EQ(Results.size(), 4u);
  EXPECT_GE(Svc.stats().JobsRejected, 1u);
}

TEST(ServiceTest, LifetimeQuotaBindsAcrossBatches) {
  service::AnalysisService Svc;
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  Spec.SessionConfig.Service.MaxJobsPerSession = 1;
  service::Session S = openOrDie(Svc, Spec);

  std::vector<std::future<service::QueryResult>> Futures;
  Futures.push_back(S.submit({0, 0, 0}));
  collect(Svc, Futures); // first job runs fine
  service::QueryResult Second = S.submit({1, 0, 0}).get();
  EXPECT_EQ(Second.Status, service::JobStatus::Rejected);
  EXPECT_NE(Second.Error.find("quota"), std::string::npos) << Second.Error;
}

TEST(ServiceTest, SessionQuotaAndInvalidSpecsRejectStructurally) {
  service::AnalysisService::Options Opts;
  Opts.Base.Service.MaxSessions = 1;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);

  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  service::Session First = openOrDie(Svc, Spec);
  std::string Err;
  EXPECT_FALSE(Svc.openSession(Spec, Err).valid());
  EXPECT_NE(Err.find("session"), std::string::npos) << Err;

  First.close();
  service::Session Again = openOrDie(Svc, Spec); // slot freed by close()
  EXPECT_TRUE(Again.valid());

  service::SessionSpec Bad = Spec;
  Bad.Program = "nope";
  EXPECT_FALSE(Svc.openSession(Bad, Err).valid());
  Bad = Spec;
  Bad.Client = "bogus";
  EXPECT_FALSE(Svc.openSession(Bad, Err).valid());
  Bad = Spec;
  Bad.SessionConfig.Execution.TracesPerIteration = 0;
  EXPECT_FALSE(Svc.openSession(Bad, Err).valid());
  EXPECT_NE(Err.find("traces_per_iteration"), std::string::npos) << Err;

  service::Session Invalid;
  service::QueryResult R = Invalid.submit({0, 0, 0}).get();
  EXPECT_EQ(R.Status, service::JobStatus::Rejected);
  EXPECT_EQ(R.Error, "invalid session handle");
}

TEST(ServiceTest, ReRegistrationBumpsEpochAndInvalidatesCachedRuns) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  service::AnalysisService Svc(std::move(Opts));
  service::RegisterResult R1 = Svc.registerProgram("p", EscapeProgram);
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Checks, 3u);

  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  service::Session S = openOrDie(Svc, Spec);
  std::vector<std::future<service::QueryResult>> Futures;
  Futures.push_back(S.submit({0, 0, 0}));
  collect(Svc, Futures);
  EXPECT_GT(Svc.stats().CacheMisses, 0u);

  // Same name, different program: the epoch bumps, the session keeps
  // working against the new program, and the stale cached runs are
  // reclaimed before the next batch on it.
  const char *Smaller = "proc main {\n  u = new h1;\n  check(u);\n}\n";
  service::RegisterResult R2 = Svc.registerProgram("p", Smaller);
  ASSERT_TRUE(R2.Ok);
  EXPECT_GT(R2.Epoch, R1.Epoch);
  EXPECT_EQ(R2.Checks, 1u);

  std::vector<std::future<service::QueryResult>> After;
  After.push_back(S.submit({0, 0, 0}));
  std::vector<service::QueryResult> Got = collect(Svc, After);
  EXPECT_EQ(Got[0].V, tracer::Verdict::Proven);
  EXPECT_EQ(Got[0].CheapestParam, "[L:h1]");
  EXPECT_GT(Svc.stats().StaleEntriesInvalidated, 0u);

  // Queries against check indices of the retired program fail structurally.
  service::QueryResult OutOfRange = [&] {
    std::future<service::QueryResult> F = S.submit({2, 0, 0});
    Svc.drain();
    return F.get();
  }();
  EXPECT_EQ(OutOfRange.Status, service::JobStatus::Failed);
  EXPECT_NE(OutOfRange.Error.find("check"), std::string::npos)
      << OutOfRange.Error;
}

TEST(ServiceTest, ConcurrentTenantsSubmitSafely) {
  service::AnalysisService::Options Opts;
  Opts.Base.Execution.NumThreads = 4;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);

  constexpr unsigned Tenants = 4, JobsPer = 6;
  std::vector<std::vector<service::QueryResult>> Results(Tenants);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Tenants; ++T)
    Workers.emplace_back([&, T] {
      service::SessionSpec Spec;
      Spec.Program = "p";
      Spec.Client = "escape";
      std::string Err;
      service::Session S = Svc.openSession(Spec, Err);
      ASSERT_TRUE(S.valid()) << Err;
      std::vector<std::future<service::QueryResult>> Futures;
      for (unsigned J = 0; J < JobsPer; ++J)
        Futures.push_back(S.submit({J % 3, 0, static_cast<int32_t>(J)}));
      for (auto &F : Futures)
        Results[T].push_back(F.get());
    });
  for (std::thread &W : Workers)
    W.join();
  // Futures resolve before the scheduler folds a batch's accounting into
  // the aggregate counters; drain() returns only after the fold.
  Svc.drain();

  // Every tenant saw every job resolve, and identical queries resolved
  // identically regardless of which batch carried them.
  for (unsigned T = 0; T < Tenants; ++T) {
    ASSERT_EQ(Results[T].size(), static_cast<size_t>(JobsPer));
    for (const service::QueryResult &R : Results[T]) {
      EXPECT_EQ(R.Status, service::JobStatus::Done) << R.Error;
      EXPECT_EQ(R.V, Results[0][0].V);
    }
  }
  EXPECT_EQ(Svc.stats().JobsCompleted,
            static_cast<uint64_t>(Tenants) * JobsPer);
}

TEST(ServiceTest, HarnessServiceBackendMatchesDirectPath) {
  synth::BenchConfig Config = synth::paperSuite()[0];
  for (unsigned Threads : {1u, 8u}) {
    reporting::HarnessOptions Direct;
    Direct.Cfg.Execution.NumThreads = Threads;
    reporting::HarnessOptions Service = Direct;
    Service.UseService = true;

    reporting::BenchRun Want = reporting::runBenchmark(Config, Direct);
    reporting::BenchRun Got = reporting::runBenchmark(Config, Service);

    auto Compare = [](const reporting::ClientResults &W,
                      const reporting::ClientResults &G) {
      ASSERT_EQ(W.Queries.size(), G.Queries.size());
      for (size_t I = 0; I < W.Queries.size(); ++I) {
        EXPECT_EQ(W.Queries[I].V, G.Queries[I].V) << "query " << I;
        EXPECT_EQ(W.Queries[I].Iterations, G.Queries[I].Iterations);
        EXPECT_EQ(W.Queries[I].Cost, G.Queries[I].Cost);
        EXPECT_EQ(W.Queries[I].ParamKey, G.Queries[I].ParamKey);
      }
    };
    Compare(Want.Esc, Got.Esc);
    Compare(Want.Ts, Got.Ts);
    EXPECT_TRUE(Got.Esc.AuditNotes.empty())
        << Got.Esc.AuditNotes.front();
    EXPECT_TRUE(Got.Ts.AuditNotes.empty()) << Got.Ts.AuditNotes.front();
  }
}

} // namespace
