//===- TraceTest.cpp - Flight recorder and quantile-summary tests -------------===//
//
// Unit coverage for the request-tracing substrate: the FlightRecorder's
// bounded ring (oldest-first eviction under pressure), its JSONL and
// merged Chrome-trace exports, the LogHistogram quantile walk feeding the
// Prometheus p50/p90/p99 lines, and the disabled-mode overhead pin - a
// null recorder pointer costs one branch and zero allocations, the same
// contract support/Metrics.h makes for disabled metrics.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Metrics.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

//===----------------------------------------------------------------------===//
// Allocation counting (disabled-mode zero-allocation test)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GlobalAllocs{0};
} // namespace

void *operator new(std::size_t Size) {
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

// The nothrow overloads must be replaced alongside the throwing ones:
// libstdc++'s std::get_temporary_buffer (stable_sort) allocates through
// operator new(nothrow), and leaving it to the default (or a sanitizer's
// interceptor) while the deletes below free() is an alloc/dealloc
// mismatch.
void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}

void *operator new[](std::size_t Size, const std::nothrow_t &T) noexcept {
  return ::operator new(Size, T);
}

// GCC pairs the (opaque, replaceable) operator-new calls it sees in
// libstdc++ with the free() below and reports a mismatch it cannot see
// through; every overload above allocates with malloc, so the pairing
// is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
#pragma GCC diagnostic pop

namespace {

using namespace optabs;
using support::FlightRecorder;
using support::LogHistogram;
using support::TraceEvent;

TraceEvent event(const char *Kind, uint64_t Job) {
  TraceEvent E;
  E.Kind = Kind;
  E.Job = Job;
  E.TraceId = Job;
  E.SpanId = Job;
  return E;
}

TEST(TraceTest, RecordsInOrderWithMonotonicSeq) {
  FlightRecorder R(16);
  R.record(event("submitted", 1));
  R.record(event("batched", 1));
  R.record(event("fulfilled", 1));
  std::vector<TraceEvent> Events = R.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Seq, 1u);
  EXPECT_EQ(Events[1].Seq, 2u);
  EXPECT_EQ(Events[2].Seq, 3u);
  EXPECT_STREQ(Events[0].Kind, "submitted");
  EXPECT_STREQ(Events[2].Kind, "fulfilled");
  EXPECT_EQ(R.size(), 3u);
  EXPECT_EQ(R.recorded(), 3u);
  EXPECT_EQ(R.dropped(), 0u);
  // Timestamps are stamped at record() from the shared profiler timebase.
  EXPECT_GT(Events[0].TsNs, 0u);
  EXPECT_LE(Events[0].TsNs, Events[1].TsNs);
}

TEST(TraceTest, RingEvictsOldestFirstUnderPressure) {
  FlightRecorder R(4);
  for (uint64_t J = 1; J <= 6; ++J)
    R.record(event("submitted", J));
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.dropped(), 2u);
  EXPECT_EQ(R.recorded(), 6u);
  std::vector<TraceEvent> Events = R.drain();
  ASSERT_EQ(Events.size(), 4u);
  // Events 1 and 2 were evicted; 3..6 survive in order.
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Events[I].Seq, I + 3);
    EXPECT_EQ(Events[I].Job, I + 3);
  }
  // drain() empties the ring but keeps the lifetime pressure counters.
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.dropped(), 2u);
  EXPECT_EQ(R.recorded(), 6u);
  EXPECT_TRUE(R.drain().empty());
}

TEST(TraceTest, ZeroCapacityClampsToOne) {
  FlightRecorder R(0);
  EXPECT_EQ(R.capacity(), 1u);
  R.record(event("submitted", 1));
  R.record(event("submitted", 2));
  std::vector<TraceEvent> Events = R.snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Job, 2u);
  EXPECT_EQ(R.dropped(), 1u);
}

TEST(TraceTest, JsonlExportHasStableSchemaAndEscapes) {
  FlightRecorder R(8);
  TraceEvent E = event("rejected", 0);
  E.Session = 7;
  E.Note = "quote \" and\nnewline";
  R.record(E);
  std::ostringstream OS;
  R.writeJsonl(OS);
  std::string Out = OS.str();
  // Every field is always present, so scrub steps and offline tooling can
  // rely on one fixed schema.
  EXPECT_NE(Out.find("\"seq\":1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"kind\":\"rejected\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"session\":7"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"ts_ns\":"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"seconds\":"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\\\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\\n"), std::string::npos) << Out;
  // One line per event, newline-terminated.
  EXPECT_EQ(Out.back(), '\n');
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 1);
}

TEST(TraceTest, ChromeTraceMergesServiceTrack) {
  FlightRecorder R(8);
  TraceEvent Done = event("fulfilled", 3);
  Done.Session = 1;
  Done.Batch = 2;
  Done.D0 = 0.25; // end-to-end seconds: renders as a complete span
  R.record(Done);
  R.record(event("submitted", 4)); // renders as an instant
  std::ostringstream OS;
  R.writeChromeTrace(OS);
  std::string Out = OS.str();
  EXPECT_EQ(Out.rfind("{\"traceEvents\":[", 0), 0u) << Out;
  EXPECT_NE(Out.find("\"name\":\"service\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"job 3\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"ph\":\"X\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"ph\":\"i\""), std::string::npos) << Out;
}

TEST(TraceTest, HistogramQuantilesWalkTheBuckets) {
  LogHistogram H;
  EXPECT_EQ(H.quantile(0.5), 0u); // empty: 0 by definition
  // A single-valued distribution reports that value at every quantile
  // (what keeps transcript quantiles deterministic).
  for (int I = 0; I < 10; ++I)
    H.record(7);
  EXPECT_EQ(H.quantile(0.5), 7u);
  EXPECT_EQ(H.quantile(0.99), 7u);
  EXPECT_EQ(H.quantile(0.0), 7u);  // clamps to min
  EXPECT_EQ(H.quantile(1.0), 7u);  // clamps to max

  LogHistogram Skewed;
  for (int I = 0; I < 99; ++I)
    Skewed.record(1);
  Skewed.record(1000);
  EXPECT_EQ(Skewed.quantile(0.5), 1u);
  EXPECT_EQ(Skewed.quantile(0.9), 1u);
  // p99 = rank 99 of 100: still in the ones; p100 clamps to the max.
  EXPECT_EQ(Skewed.quantile(0.99), 1u);
  EXPECT_EQ(Skewed.quantile(1.0), 1000u);
}

TEST(TraceTest, PrometheusExposesQuantileSummaries) {
  auto &Reg = support::MetricRegistry::global();
  support::setMetricsEnabled(true);
  Reg.histogram("trace_test_latency").record(16);
  Reg.histogram("trace_test_latency").record(16);
  std::ostringstream OS;
  Reg.dumpPrometheus(OS);
  support::setMetricsEnabled(false);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("trace_test_latency_p50 16"), std::string::npos) << Out;
  EXPECT_NE(Out.find("trace_test_latency_p90 16"), std::string::npos) << Out;
  EXPECT_NE(Out.find("trace_test_latency_p99 16"), std::string::npos) << Out;
}

TEST(TraceTest, DisabledModeAllocatesNothing) {
  // The service's disabled state is a null recorder pointer; every
  // recording site is `if (Recorder) { ... }`. Pin that to zero
  // allocations per check, like MetricsTest does for disabled metrics
  // (volatile so the loop's branch is not folded away).
  FlightRecorder *volatile Rec = nullptr;
  ASSERT_FALSE(support::metricsEnabled());
  uint64_t Before = GlobalAllocs.load(std::memory_order_relaxed);
  uint64_t Sink = 0;
  for (int I = 0; I < 1000; ++I) {
    if (FlightRecorder *R = Rec) {
      TraceEvent E;
      E.Kind = "cache-hit";
      R->record(E);
    }
    if (support::metricsEnabled())
      ++Sink;
  }
  EXPECT_EQ(GlobalAllocs.load(std::memory_order_relaxed), Before);
  EXPECT_EQ(Sink, 0u);
}

} // namespace
