//===- ForwardTest.cpp - Unit tests for the forward analysis engine ----------===//
//
// Exercises the generic engine with a deliberately simple client (a
// saturating counter of New commands) so that reachable state sets and
// witness traces can be predicted by hand.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"

#include "ir/Parser.h"
#include "ir/Printer.h"

#include "gtest/gtest.h"

#include <set>

namespace {

using namespace optabs::ir;
using optabs::dataflow::ForwardAnalysis;

/// Counts New commands, saturating at Max; Null resets to zero.
struct CounterClient {
  struct Param {
    unsigned Max = 5;
  };
  using State = unsigned;
  struct StateHash {
    size_t operator()(unsigned S) const { return S; }
  };

  State transfer(const Command &Cmd, const State &In, const Param &P) const {
    if (Cmd.Kind == CmdKind::New)
      return std::min(In + 1, P.Max);
    if (Cmd.Kind == CmdKind::Null)
      return 0;
    return In;
  }
};

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

std::set<unsigned> statesAt(const Program &P, CheckId Check,
                            unsigned Max = 5) {
  CounterClient C;
  CounterClient::Param Prm{Max};
  ForwardAnalysis<CounterClient> FA(P, C, Prm);
  FA.run(0);
  std::set<unsigned> Result;
  for (unsigned S : FA.statesAtCheck(Check))
    Result.insert(S);
  return Result;
}

TEST(Forward, StraightLine) {
  Program P = parse(R"(
    proc main { x = new h1; x = new h2; check(x); x = new h3; }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{2}));
}

TEST(Forward, ChoiceProducesBothStates) {
  Program P = parse(R"(
    proc main {
      choice { x = new h1; } or { }
      check(x);
    }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{0, 1}));
}

TEST(Forward, LoopSaturates) {
  Program P = parse(R"(
    proc main {
      loop { x = new h1; }
      check(x);
    }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{0, 1, 2, 3, 4, 5}));
}

TEST(Forward, ProcedureSummariesAreContextSensitive) {
  // two() adds exactly two; called from two different contexts.
  Program P = parse(R"(
    proc main {
      call two;
      check(x);
      call two;
      check(x);
    }
    proc two { x = new h1; x = new h1; }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{2}));
  EXPECT_EQ(statesAt(P, CheckId(1)), (std::set<unsigned>{4}));
}

TEST(Forward, RecursionReachesFixpoint) {
  Program P = parse(R"(
    proc main { call rec; check(x); }
    proc rec { x = new h1; if { call rec; } }
  )");
  // rec adds 1..Max (saturating): recursion depth is unbounded.
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{1, 2, 3, 4, 5}));
}

TEST(Forward, ChecksInsideCalleesSeeAllContexts) {
  Program P = parse(R"(
    proc main {
      call probe;
      x = new h1;
      call probe;
    }
    proc probe { check(x); }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{0, 1}));
}

TEST(Forward, NestedLoopsAndReset) {
  Program P = parse(R"(
    proc main {
      loop {
        x = null;
        loop { x = new h1; }
      }
      check(x);
    }
  )");
  EXPECT_EQ(statesAt(P, CheckId(0)), (std::set<unsigned>{0, 1, 2, 3, 4, 5}));
}

//===----------------------------------------------------------------------===//
// Trace extraction
//===----------------------------------------------------------------------===//

/// Extracts a trace for every state reaching the check and validates it by
/// replaying: the replayed final state must be the target and the replayed
/// prefix must match the engine's state sequence.
void checkAllTracesValid(const char *Src, CheckId Check = CheckId(0)) {
  Program P = parse(Src);
  CounterClient C;
  CounterClient::Param Prm{5};
  ForwardAnalysis<CounterClient> FA(P, C, Prm);
  FA.run(0);
  std::vector<unsigned> AtCheck = FA.statesAtCheck(Check);
  EXPECT_FALSE(AtCheck.empty());
  for (unsigned Target : AtCheck) {
    auto T = FA.extractTrace(Check, Target);
    ASSERT_TRUE(T.has_value()) << "no trace for target " << Target;
    for (CommandId Cmd : *T)
      EXPECT_NE(P.command(Cmd).Kind, CmdKind::Invoke)
          << "traces must expand procedure calls";
    std::vector<unsigned> States = FA.replay(*T, 0);
    EXPECT_EQ(States.size(), T->size() + 1);
    EXPECT_EQ(States.back(), Target);
  }
}

TEST(TraceExtraction, StraightLine) {
  checkAllTracesValid("proc main { x = new h1; x = new h2; check(x); }");
}

TEST(TraceExtraction, Choice) {
  checkAllTracesValid(R"(
    proc main {
      choice { x = new h1; } or { x = null; } or { x = new h1; x = new h2; }
      check(x);
    }
  )");
}

TEST(TraceExtraction, LoopNeedsUnrolling) {
  checkAllTracesValid(R"(
    proc main { loop { x = new h1; } check(x); }
  )");
}

TEST(TraceExtraction, AcrossProcedures) {
  checkAllTracesValid(R"(
    proc main { call a; call a; check(x); }
    proc a { if { x = new h1; } else { call b; } }
    proc b { x = new h1; x = new h1; }
  )");
}

TEST(TraceExtraction, InsideCalleeCheck) {
  checkAllTracesValid(R"(
    proc main { x = new h1; call probe; x = new h1; call probe; }
    proc probe { check(x); }
  )");
}

TEST(TraceExtraction, ThroughRecursion) {
  checkAllTracesValid(R"(
    proc main { call rec; check(x); }
    proc rec { x = new h1; if { call rec; } }
  )");
}

TEST(TraceExtraction, LoopInsideCalleeWithReset) {
  checkAllTracesValid(R"(
    proc main { loop { call body; } check(x); }
    proc body { choice { x = new h1; } or { x = null; } }
  )");
}

TEST(TraceExtraction, TraceForUnreachedStateFails) {
  Program P = parse("proc main { x = new h1; check(x); }");
  CounterClient C;
  ForwardAnalysis<CounterClient> FA(P, C, CounterClient::Param{5});
  FA.run(0);
  EXPECT_FALSE(FA.extractTrace(CheckId(0), 3u).has_value());
}

//===----------------------------------------------------------------------===//
// State-interner footprint and dead-variable pruning
//===----------------------------------------------------------------------===//

TEST(StateInterner, ApproxBytesGrowsWithDistinctStatesOnly) {
  optabs::dataflow::StateInterner<unsigned, CounterClient::StateHash> I;
  size_t Empty = I.approxBytes();
  for (unsigned S = 0; S < 64; ++S)
    I.intern(S);
  EXPECT_EQ(I.size(), 64u);
  size_t Full = I.approxBytes();
  EXPECT_GT(Full, Empty);
  // The estimate covers at least the stored states themselves.
  EXPECT_GE(Full, 64 * sizeof(unsigned));
  // Re-interning existing states mints no ids and allocates nothing.
  for (unsigned S = 0; S < 64; ++S)
    EXPECT_LT(I.intern(S), 64u);
  EXPECT_EQ(I.size(), 64u);
  EXPECT_EQ(I.approxBytes(), Full);
}

/// Tracks per variable whether it currently holds a fresh allocation (one
/// bit per variable index). Exposes the optional pruneState hook, so the
/// engine can forget dead variables and collapse states that differ only
/// in them.
struct BitsClient {
  struct Param {};
  using State = uint32_t;
  struct StateHash {
    size_t operator()(uint32_t S) const { return S; }
  };

  State transfer(const Command &Cmd, const State &In, const Param &) const {
    auto Bit = [](VarId V) { return 1u << V.index(); };
    switch (Cmd.Kind) {
    case CmdKind::New:
      return In | Bit(Cmd.Dst);
    case CmdKind::Null:
      return In & ~Bit(Cmd.Dst);
    case CmdKind::Copy:
      return (In & Bit(Cmd.Src)) ? (In | Bit(Cmd.Dst)) : (In & ~Bit(Cmd.Dst));
    default:
      return In;
    }
  }

  void pruneState(State &S, const optabs::BitSet &Live) const {
    State Keep = 0;
    for (size_t I = 0; I < Live.size() && I < 32; ++I)
      if (Live.test(I))
        Keep |= 1u << I;
    S &= Keep;
  }
};

TEST(Forward, PruningCollapsesDeadVariableStates) {
  // x and w are dead the moment they are assigned; only y reaches the
  // check. Without pruning the two choices make four distinct states at
  // the check; with pruning they collapse to one.
  Program P = parse(R"(
    proc main {
      choice { x = new h1; } or { x = null; }
      choice { w = new h2; } or { w = null; }
      y = new h3;
      check(y);
    }
  )");
  BitsClient C;
  ForwardAnalysis<BitsClient> Plain(P, C, BitsClient::Param{});
  Plain.run(0);
  CommandLiveness L(P);
  ForwardAnalysis<BitsClient> Pruned(P, C, BitsClient::Param{}, &L);
  Pruned.run(0);

  // The live variable's verdict bit is identical in every reached state.
  unsigned YBit = 1u << P.findVar("y").index();
  for (BitsClient::State S : Plain.statesAtCheck(CheckId(0)))
    EXPECT_TRUE(S & YBit);
  ASSERT_EQ(Pruned.statesAtCheck(CheckId(0)).size(), 1u);
  EXPECT_TRUE(Pruned.statesAtCheck(CheckId(0)).front() & YBit);
  EXPECT_EQ(Plain.statesAtCheck(CheckId(0)).size(), 4u);

  // Collapsing dead-variable diversity shrinks the interner and the
  // footprint estimate the forward-run cache's resident-bytes gauge uses.
  EXPECT_LT(Pruned.stats().NumStates, Plain.stats().NumStates);
  EXPECT_LE(Pruned.approxMemoryBytes(), Plain.approxMemoryBytes());
}

TEST(Forward, LoadFromRejectsOversizedStateSetClaims) {
  Program P = parse("proc main { x = new h1; check(x); }");
  CounterClient C;
  ForwardAnalysis<CounterClient> FA(P, C, CounterClient::Param{5});

  // A crafted record stream: two interned states, then a value cell
  // claiming a ~4 billion element state set. A valid set is bounded by
  // the interned table, so the claim must fail structurally before it
  // can size a 16 GiB reservation.
  struct FakeSource {
    std::vector<uint64_t> Vals;
    size_t I = 0;
    std::string Err;
    bool next(uint64_t &V) {
      if (I >= Vals.size())
        return false;
      V = Vals[I++];
      return true;
    }
    bool u32(uint32_t &V) {
      uint64_t X = 0;
      if (!next(X))
        return false;
      V = static_cast<uint32_t>(X);
      return true;
    }
    bool u64(uint64_t &V) { return next(V); }
    bool state(unsigned &S) {
      uint32_t X = 0;
      if (!u32(X))
        return false;
      S = X;
      return true;
    }
    void fail(const std::string &What) { Err = What; }
  };
  FakeSource S;
  S.Vals = {0,           // fixpoint round
            2, 7, 9,     // two distinct interned states
            0,           // initial state id
            1,           // one tabulated value cell
            42,          // its key
            0xffffffffu}; // claimed set size
  EXPECT_FALSE(FA.loadFrom(S));
  EXPECT_NE(S.Err.find("state set larger"), std::string::npos) << S.Err;
}

TEST(Forward, StatsArePopulated) {
  Program P = parse("proc main { loop { x = new h1; } check(x); }");
  CounterClient C;
  ForwardAnalysis<CounterClient> FA(P, C, CounterClient::Param{5});
  FA.run(0);
  const auto &S = FA.stats();
  EXPECT_GE(S.NumStates, 6u);
  EXPECT_GT(S.NumPairs, 0u);
  EXPECT_GT(S.NumVisits, 0u);
  EXPECT_GE(S.NumRounds, 1u);
}

} // namespace
