//===- ServiceTraceTest.cpp - Request-tracing contract at the service ---------===//
//
// The tracing subsystem's three load-bearing promises:
//
//  1. Observational purity: verdicts, iteration counts, witnesses and the
//     event-trace verdict lines are bitwise identical with tracing on or
//     off, at 1 and 8 worker threads.
//  2. Determinism: the recorded lifecycle timeline - event kinds, causal
//     order, job/session/batch attribution; everything but timestamps and
//     measured seconds - is identical at any worker count, because every
//     recording site runs on the scheduler thread or in the driver's
//     sequential plan phase.
//  3. Exact latency decomposition: end-to-end = queue-wait + batch-wait +
//     run, as ns identities (one shared clock reading per boundary), so
//     the per-tenant SLO histograms decompose by construction.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

using namespace optabs;

namespace {

const char *ProgramText = "proc main {\n"
                          "  call p1;\n"
                          "  call p2;\n"
                          "}\n"
                          "proc p1 {\n"
                          "  a = new h1;\n"
                          "  check(a);\n"
                          "}\n"
                          "proc p2 {\n"
                          "  b = new h2;\n"
                          "  b.f = b;\n"
                          "  check(b);\n"
                          "}\n";

service::Session openEscape(service::AnalysisService &Svc,
                            const Config &SessionConfig = Config()) {
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  Spec.SessionConfig = SessionConfig;
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  EXPECT_TRUE(S.valid()) << Err;
  return S;
}

/// Runs the reference workload (two checks, drain, repeat-submit check 0,
/// drain) and returns the results in submission order.
std::vector<service::QueryResult> runWorkload(service::AnalysisService &Svc,
                                              const Config &SessionConfig,
                                              std::vector<uint64_t> *JobIds) {
  service::Session S = openEscape(Svc, SessionConfig);
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t C : {0u, 1u}) {
    uint64_t Id = 0;
    Futures.push_back(S.submit({C, 0, 0}, &Id));
    if (JobIds)
      JobIds->push_back(Id);
  }
  Svc.drain();
  uint64_t Id = 0;
  Futures.push_back(S.submit({0, 0, 0}, &Id));
  if (JobIds)
    JobIds->push_back(Id);
  Svc.drain();
  std::vector<service::QueryResult> Out;
  for (auto &F : Futures)
    Out.push_back(F.get());
  return Out;
}

/// A trace event's thread-count-invariant signature: everything except
/// timestamps and measured seconds.
std::string signature(const support::TraceEvent &E) {
  return std::to_string(E.Seq) + "|" + E.Kind + "|" +
         std::to_string(E.TraceId) + "|" + std::to_string(E.SpanId) + "|" +
         std::to_string(E.Job) + "|" + std::to_string(E.Session) + "|" +
         std::to_string(E.Batch) + "|" + std::to_string(E.U0) + "|" +
         std::to_string(E.U1) + "|" + E.Note;
}

std::vector<std::string> verdictLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Out;
  std::string Line;
  while (std::getline(In, Line))
    if (Line.find("\"event\":\"verdict\"") != std::string::npos)
      Out.push_back(Line);
  return Out;
}

TEST(ServiceTraceTest, TimelineDeterministicAcrossThreadCounts) {
  std::vector<std::vector<std::string>> PerThreadCount;
  for (unsigned Threads : {1u, 8u}) {
    service::AnalysisService::Options Opts;
    Opts.AutoDispatch = false;
    Opts.Base.Execution.NumThreads = Threads;
    Opts.Base.Observability.ServiceTrace = true;
    service::AnalysisService Svc(std::move(Opts));
    ASSERT_TRUE(Svc.registerProgram("p", ProgramText).Ok);
    ASSERT_TRUE(Svc.tracingEnabled());
    runWorkload(Svc, Config(), nullptr);
    std::vector<support::TraceEvent> Events = Svc.drainTrace();
    ASSERT_FALSE(Events.empty());
    std::vector<std::string> Sigs;
    for (const support::TraceEvent &E : Events)
      Sigs.push_back(signature(E));
    PerThreadCount.push_back(std::move(Sigs));
  }
  // Same events, same causal order; only timestamps may differ.
  EXPECT_EQ(PerThreadCount[0], PerThreadCount[1]);
}

TEST(ServiceTraceTest, TracingIsObservationallyPure) {
  for (unsigned Threads : {1u, 8u}) {
    std::vector<std::vector<service::QueryResult>> Runs;
    std::vector<std::vector<std::string>> Verdicts;
    for (bool Trace : {false, true}) {
      const std::string TracePath =
          "svc_trace_purity_" + std::to_string(Threads) +
          (Trace ? "_on" : "_off") + ".jsonl";
      std::ofstream(TracePath, std::ios::trunc).close();
      Config SessionConfig;
      SessionConfig.Observability.EventTracePath = TracePath;
      service::AnalysisService::Options Opts;
      Opts.AutoDispatch = false;
      Opts.Base.Execution.NumThreads = Threads;
      Opts.Base.Observability.ServiceTrace = Trace;
      Opts.Base.Observability.SlowQuerySeconds = Trace ? 1e-12 : 0;
      service::AnalysisService Svc(std::move(Opts));
      ASSERT_TRUE(Svc.registerProgram("p", ProgramText).Ok);
      Runs.push_back(runWorkload(Svc, SessionConfig, nullptr));
      Verdicts.push_back(verdictLines(TracePath));
      std::remove(TracePath.c_str());
    }
    ASSERT_EQ(Runs[0].size(), Runs[1].size());
    for (size_t I = 0; I < Runs[0].size(); ++I) {
      const service::QueryResult &Off = Runs[0][I];
      const service::QueryResult &On = Runs[1][I];
      std::string Ctx = "job " + std::to_string(I) + " at " +
                        std::to_string(Threads) + " threads";
      EXPECT_EQ(Off.Status, On.Status) << Ctx;
      EXPECT_EQ(Off.V, On.V) << Ctx;
      EXPECT_EQ(Off.Iterations, On.Iterations) << Ctx;
      EXPECT_EQ(Off.CheapestCost, On.CheapestCost) << Ctx;
      EXPECT_EQ(Off.CheapestParam, On.CheapestParam) << Ctx;
    }
    // The CEGAR event trace (verdict lines included) is byte-identical:
    // tracing writes only to the flight recorder, never the event trace.
    EXPECT_EQ(Verdicts[0], Verdicts[1]) << Threads << " threads";
  }
}

TEST(ServiceTraceTest, LatencyDecompositionIsExact) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Observability.ServiceTrace = true;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", ProgramText).Ok);
  std::vector<uint64_t> JobIds;
  runWorkload(Svc, Config(), &JobIds);
  ASSERT_EQ(JobIds.size(), 3u);
  for (uint64_t Id : JobIds) {
    service::JobTimeline T = Svc.explain(Id);
    ASSERT_TRUE(T.Found) << "job " << Id;
    EXPECT_EQ(T.Job, Id);
    EXPECT_EQ(T.Status, "done");
    EXPECT_EQ(T.Verdict, "proven");
    EXPECT_GT(T.Batch, 0u);
    EXPECT_GE(T.Peers, 1u);
    // The stamps are one shared clock reading per boundary, so the
    // decomposition is an identity, not an approximation.
    EXPECT_LE(T.SubmitNs, T.PickNs);
    EXPECT_LE(T.PickNs, T.RunStartNs);
    EXPECT_LE(T.RunStartNs, T.FulfillNs);
    EXPECT_EQ(T.endToEndNs(),
              T.queueWaitNs() + T.batchWaitNs() + T.runNs());
    EXPECT_GT(T.endToEndNs(), 0u);
  }
  // The third submission repeats check 0 in the same epoch: it exercises
  // the driver (same-epoch repeats never replay), with cache attribution.
  service::JobTimeline Repeat = Svc.explain(JobIds[2]);
  EXPECT_FALSE(Repeat.Replayed);
  EXPECT_GT(Repeat.CacheHits + Repeat.CacheMisses, 0u);
}

TEST(ServiceTraceTest, ExplainIsStructuralOnUnknownJobs) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Observability.ServiceTrace = true;
  service::AnalysisService Svc(std::move(Opts));
  EXPECT_FALSE(Svc.explain(42).Found);

  // With tracing off, explain answers structurally too (and the recorder
  // drains empty) - callers need no mode check before asking.
  service::AnalysisService::Options Off;
  Off.AutoDispatch = false;
  service::AnalysisService Plain(std::move(Off));
  EXPECT_FALSE(Plain.tracingEnabled());
  EXPECT_FALSE(Plain.explain(1).Found);
  EXPECT_TRUE(Plain.drainTrace().empty());
  EXPECT_EQ(Plain.traceDropped(), 0u);
}

TEST(ServiceTraceTest, RejectionsAndSlowQueriesAreRecorded) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Observability.ServiceTrace = true;
  // Every job is a slow query under a subnanosecond threshold, making the
  // slow-query path deterministic without sleeping.
  Opts.Base.Observability.SlowQuerySeconds = 1e-12;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", ProgramText).Ok);
  runWorkload(Svc, Config(), nullptr);
  // A submit against a closed session records a rejection with the
  // reason; the job never gets an id. Close through a second handle -
  // close() nulls the handle it is called on, and only a submission that
  // reaches the service is the admission rejection under test.
  service::Session S = openEscape(Svc);
  service::Session Closer = S;
  Closer.close();
  uint64_t Id = 7;
  S.submit({0, 0, 0}, &Id).get();
  EXPECT_EQ(Id, 0u);

  bool SawSlow = false, SawRejected = false;
  for (const support::TraceEvent &E : Svc.drainTrace()) {
    if (std::string(E.Kind) == "slow-query")
      SawSlow = true;
    if (std::string(E.Kind) == "rejected") {
      SawRejected = true;
      EXPECT_EQ(E.Note, "unknown or closed session");
    }
  }
  EXPECT_TRUE(SawSlow);
  EXPECT_TRUE(SawRejected);
  EXPECT_GE(Svc.stats().SlowQueries, 3u);
}

TEST(ServiceTraceTest, StatsCarryBatchShapeAndPendingBySession) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Observability.ServiceTrace = true;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", ProgramText).Ok);
  service::Session S = openEscape(Svc);
  std::vector<std::future<service::QueryResult>> Futures;
  Futures.push_back(S.submit({0, 0, 0}));
  Futures.push_back(S.submit({1, 0, 0}));
  service::ServiceStats Queued = Svc.stats();
  ASSERT_EQ(Queued.PendingBySession.size(), 1u);
  EXPECT_EQ(Queued.PendingBySession[0].first, S.id());
  EXPECT_EQ(Queued.PendingBySession[0].second, 2u);
  Svc.drain();
  for (auto &F : Futures)
    F.get();
  service::ServiceStats Done = Svc.stats();
  ASSERT_EQ(Done.PendingBySession.size(), 1u);
  EXPECT_EQ(Done.PendingBySession[0].second, 0u);
  // One batch of two jobs: every quantile of the jobs-per-batch
  // distribution reads 2.
  EXPECT_EQ(Done.BatchJobsP50, 2u);
  EXPECT_EQ(Done.BatchJobsP90, 2u);
  EXPECT_EQ(Done.BatchJobsP99, 2u);
}

} // namespace
