//===- TraceSegmentsTest.cpp - Loop-segment detection and compression ---------===//
//
// Pins detectSegments() on hand-built traces (repeat found, repeat too
// short, states diverging) and proves the backward engine's segment
// compression is exact: the same trace run with and without a segment
// plan produces the identical formula, and a StepObserver forces the
// unrolled walk even when a plan is supplied.
//
//===----------------------------------------------------------------------===//

#include "meta/TraceSegments.h"

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "ir/Parser.h"
#include "meta/Backward.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using escape::EscapeAnalysis;
using escape::EscParam;
using escape::EscState;

TEST(DetectSegments, FindsAdjacentRepeat) {
  // Commands a b a b a b a b with states cycling 0 1 0 1 ... 0: four
  // back-to-back copies of the two-command window at position 0.
  Trace T;
  std::vector<uint32_t> Ids{0};
  for (int I = 0; I < 4; ++I) {
    T.push_back(CommandId(0));
    Ids.push_back(1);
    T.push_back(CommandId(1));
    Ids.push_back(0);
  }
  meta::TraceSegments Segs = meta::detectSegments(T, Ids);
  ASSERT_EQ(Segs.Repeats.size(), 1u);
  EXPECT_EQ(Segs.Repeats[0].Pos, 0u);
  EXPECT_EQ(Segs.Repeats[0].Period, 2u);
  EXPECT_EQ(Segs.Repeats[0].Count, 4u);
}

TEST(DetectSegments, IgnoresRepeatsBelowMinCount) {
  // Two repetitions only: the backward engine needs two to detect a
  // fixpoint, so nothing can be saved and nothing is recorded.
  Trace T{CommandId(0), CommandId(1), CommandId(0), CommandId(1)};
  std::vector<uint32_t> Ids{0, 1, 0, 1, 0};
  EXPECT_TRUE(meta::detectSegments(T, Ids).empty());
}

TEST(DetectSegments, DivergingStatesBreakTheRepeat) {
  // Same command over and over, but every state is fresh - a loop whose
  // abstract state keeps growing is not a repeat.
  Trace T(8, CommandId(0));
  std::vector<uint32_t> Ids;
  for (uint32_t I = 0; I <= 8; ++I)
    Ids.push_back(I);
  EXPECT_TRUE(meta::detectSegments(T, Ids).empty());
}

TEST(DetectSegments, RejectsMismatchedStateSequence) {
  Trace T(6, CommandId(0));
  std::vector<uint32_t> Ids(3, 0); // wrong length: must be |T| + 1
  EXPECT_TRUE(meta::detectSegments(T, Ids).empty());
}

/// Builds a counterexample trace with an artificial 6-fold repeat by
/// replaying a hand-assembled command sequence: the repeated command is
/// idempotent on the abstract state, so detectSegments sees a period-1
/// repeat backed by identical interned states.
struct RepeatFixture {
  Program P;
  std::unique_ptr<EscapeAnalysis> A;
  std::unique_ptr<dataflow::ForwardAnalysis<EscapeAnalysis>> Fwd;
  EscParam Prm;
  Trace T;
  std::vector<EscState> States;
  std::vector<uint32_t> Ids;
  meta::TraceSegments Segs;
  formula::Dnf NotQ;

  RepeatFixture() {
    std::string Error;
    bool Ok = parseProgram(R"(
      proc main { u = new h1; v = new h2; v.f = u; check(u); }
    )", P, Error);
    EXPECT_TRUE(Ok) << Error;
    A = std::make_unique<EscapeAnalysis>(P);
    Prm = A->paramFromBits({});
    Fwd = std::make_unique<dataflow::ForwardAnalysis<EscapeAnalysis>>(
        P, *A, Prm);
    Fwd->run(A->initialState());
    NotQ = A->notQ(CheckId(0));
    // u = new h1; then v = new h2 six times (idempotent after the first);
    // then v.f = u. Commands are numbered in source order.
    T.push_back(CommandId(0));
    for (int I = 0; I < 6; ++I)
      T.push_back(CommandId(1));
    T.push_back(CommandId(2));
    States = Fwd->replay(T, A->initialState(), &Ids);
    Segs = meta::detectSegments(T, Ids);
  }
};

TEST(SegmentCompression, PlanDetectedOnRepeatedReplay) {
  RepeatFixture F;
  ASSERT_FALSE(F.Segs.empty());
  EXPECT_EQ(F.Segs.Repeats[0].Period, 1u);
  EXPECT_GE(F.Segs.Repeats[0].Count, 3u);
}

TEST(SegmentCompression, CompressedRunMatchesUnrolledRun) {
  RepeatFixture F;
  ASSERT_FALSE(F.Segs.empty());
  meta::BackwardMetaAnalysis<EscapeAnalysis> Plain(F.P, *F.A);
  meta::BackwardMetaAnalysis<EscapeAnalysis> Compressed(F.P, *F.A);
  auto Want = Plain.run(F.T, F.Prm, F.States, F.NotQ);
  auto Got = Compressed.run(F.T, F.Prm, F.States, F.NotQ, &F.Segs);
  ASSERT_TRUE(Want.has_value());
  ASSERT_TRUE(Got.has_value());
  auto Name = [&](formula::AtomId At) { return F.A->atomName(At); };
  EXPECT_EQ(Want->toString(Name), Got->toString(Name));
  // And the projected parameter conditions agree too.
  formula::Dnf PW = Plain.projectToParams(*Want, F.Prm, F.A->initialState());
  formula::Dnf PG =
      Compressed.projectToParams(*Got, F.Prm, F.A->initialState());
  EXPECT_EQ(PW.toString(Name), PG.toString(Name));
}

TEST(SegmentCompression, ObserverForcesUnrolledWalk) {
  RepeatFixture F;
  ASSERT_FALSE(F.Segs.empty());
  meta::BackwardConfig Config;
  std::vector<size_t> Seen;
  Config.StepObserver = [&](size_t I, const Command &,
                            const formula::Dnf &) { Seen.push_back(I); };
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A, Config);
  auto Formula = Bwd.run(F.T, F.Prm, F.States, F.NotQ, &F.Segs);
  ASSERT_TRUE(Formula.has_value());
  // Observers must see every step, so the plan is ignored.
  EXPECT_EQ(Seen.size(), F.T.size());
}

} // namespace
